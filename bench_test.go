// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, per DESIGN.md's experiment index (E1-E13). Each benchmark
// reports the experiment's key quantity (simulated CONGEST rounds,
// quantum queries, charged messages) as a custom metric, so
// `go test -bench=. -benchmem` regenerates the paper's artifacts.
package qcongest_test

import (
	"math/rand"
	"testing"

	"qcongest/internal/baseline"
	"qcongest/internal/congest"
	"qcongest/internal/core"
	"qcongest/internal/dist"
	"qcongest/internal/exp"
	"qcongest/internal/gadget"
	"qcongest/internal/graph"
	"qcongest/internal/qsim"
)

// --- E1: Table 1 (measured rows) ---------------------------------------

func BenchmarkTable1Measured(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := exp.MeasuredTable1(60, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, e := range entries {
				b.ReportMetric(float64(e.Measured), "rounds_"+shortLabel(e.Label))
			}
		}
	}
}

func shortLabel(s string) string {
	out := make([]rune, 0, 20)
	for _, r := range s {
		switch {
		case r == ' ' || r == '(' || r == ')' || r == '[' || r == ']':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
		if len(out) == 20 {
			break
		}
	}
	return string(out)
}

// --- E2: Theorem 1.1 scaling in n (Figure-equivalent of the upper bound) -

func benchScalingN(b *testing.B, n int) {
	b.ReportAllocs()
	var rounds int64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(n + i)))
		g := graph.RandomWeights(graph.DiameterControlled(n, 6, rng), 16, rng)
		res, err := core.Approximate(g, core.DiameterMode, core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "congest-rounds")
}

func BenchmarkQuantumDiameterN48(b *testing.B)  { benchScalingN(b, 48) }
func BenchmarkQuantumDiameterN96(b *testing.B)  { benchScalingN(b, 96) }
func BenchmarkQuantumDiameterN192(b *testing.B) { benchScalingN(b, 192) }

// --- E3: Theorem 1.1 scaling in D ---------------------------------------

func benchScalingD(b *testing.B, d int) {
	var rounds int64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(d*100 + i)))
		g := graph.RandomWeights(graph.DiameterControlled(96, d, rng), 16, rng)
		res, err := core.Approximate(g, core.DiameterMode, core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "congest-rounds")
}

func BenchmarkQuantumDiameterD4(b *testing.B)  { benchScalingD(b, 4) }
func BenchmarkQuantumDiameterD8(b *testing.B)  { benchScalingD(b, 8) }
func BenchmarkQuantumDiameterD16(b *testing.B) { benchScalingD(b, 16) }

// --- E4: quantum/classical crossover ------------------------------------

func BenchmarkCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.Crossover(64, []int{4, 16}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(pts) == 2 {
			b.ReportMetric(float64(pts[0].QuantumRounds)/float64(pts[0].ClassicalRounds), "q/c-ratio-lowD")
			b.ReportMetric(float64(pts[1].QuantumRounds)/float64(pts[1].ClassicalRounds), "q/c-ratio-highD")
		}
	}
}

// --- E5: approximation quality -------------------------------------------

func BenchmarkApproxQuality(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rep, err := exp.Quality(2, 40, core.DiameterMode, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		worst = rep.WorstRatio
	}
	b.ReportMetric(worst, "worst-ratio")
}

// --- E6: Figure 1 construction -------------------------------------------

func BenchmarkGadgetFig1(b *testing.B) {
	x, y, err := exp.GadgetInputs(4, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := gadget.BuildDiameter(4, x, y, 3, 5)
		if err != nil {
			b.Fatal(err)
		}
		if c.G.N() != 447 {
			b.Fatal("wrong size")
		}
	}
}

// --- E7: Figure 2 + Lemma 4.4 gap ----------------------------------------

func BenchmarkGadgetDiameterGap(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		reps, err := exp.GapExperiment(2, false, 2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reps {
			if !r.Satisfied {
				b.Fatal("dichotomy violated")
			}
		}
		gap = float64(reps[1].Metric) / float64(reps[0].Metric)
	}
	b.ReportMetric(gap, "no/yes-gap")
}

// --- E8: Figure 3 + Table 2 ----------------------------------------------

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vio, _, err := exp.Table2Experiment(2, 1, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if vio != 0 {
			b.Fatalf("%d Table 2 violations", vio)
		}
	}
}

// --- E9: Figure 4 + Lemma 4.9 gap ----------------------------------------

func BenchmarkGadgetRadiusGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := exp.GapExperiment(2, true, 2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reps {
			if !r.Satisfied {
				b.Fatal("dichotomy violated")
			}
		}
	}
}

// --- E10: Lemma 4.1 simulation --------------------------------------------

func BenchmarkSimulationLemma(b *testing.B) {
	var charged int64
	for i := 0; i < b.N; i++ {
		rep, err := exp.SimulationExperiment(4, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !rep.WithinLemmaBounds {
			b.Fatal("lemma bounds violated")
		}
		charged = rep.ChargedMessages
	}
	b.ReportMetric(float64(charged), "charged-msgs")
}

// --- E11: end-to-end reduction ---------------------------------------------

func BenchmarkReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := exp.ReductionExperiment(2, 2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reps {
			if !r.Outcome.Correct {
				b.Fatal("reduction incorrect")
			}
		}
	}
}

// --- E12: quantum search substrate -----------------------------------------

func BenchmarkGroverExact(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		res := qsim.BBHT(qsim.Exact, 256, func(x uint64) bool { return x == 99 }, rng)
		if !res.Found {
			b.Fatal("missed")
		}
	}
}

func BenchmarkGroverSampled(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var queries int64
	for i := 0; i < b.N; i++ {
		res := qsim.BBHT(qsim.Sampled, 1<<16, func(x uint64) bool { return x == 12345 }, rng)
		if !res.Found {
			b.Fatal("missed")
		}
		queries = res.Queries
	}
	b.ReportMetric(float64(queries), "oracle-queries")
}

func BenchmarkDurrHoyerMax(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	b.ResetTimer()
	var queries int64
	for i := 0; i < b.N; i++ {
		res := qsim.DurrHoyerMax(qsim.Sampled, uint64(len(vals)), func(x uint64) int64 { return vals[x] }, rng)
		queries = res.Queries
	}
	b.ReportMetric(float64(queries), "oracle-queries")
}

// --- E13: formula machinery --------------------------------------------------

func BenchmarkFormulas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := exp.FormulaExperiment(4)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.FReadOnce || !rep.VEROk {
			b.Fatal("formula machinery broken")
		}
	}
}

// --- E14: spine-leaf DCN fabric (constant-D regime) -----------------------

func BenchmarkSimSpineLeafE14(b *testing.B) {
	cfgs := []exp.SpineLeafConfig{{Spines: 2, Leaves: 4, Hosts: 6}}
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := exp.SpineLeafSweep(cfgs, 8, int64(i), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(pts[0].QuantumRounds) / float64(pts[0].ClassicalRounds)
	}
	b.ReportMetric(ratio, "q/c-ratio")
}

// --- Ablations: the design choices of Eq. (1) --------------------------------

func BenchmarkAblationR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := exp.AblateR(48, []float64{0.5, 1, 2}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range rep.Points {
				b.ReportMetric(float64(p.Rounds), "rounds_"+shortLabel(p.Label))
			}
		}
	}
}

func BenchmarkAblationK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := exp.AblateK(48, []int{1, 3, 6}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range rep.Points {
				b.ReportMetric(float64(p.Rounds), "rounds_"+shortLabel(p.Label))
			}
		}
	}
}

func BenchmarkAblationEps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := exp.AblateEps(48, []int64{2, 6, 12}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range rep.Points {
				b.ReportMetric(p.Ratio, "ratio_"+shortLabel(p.Label))
			}
		}
	}
}

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkDijkstra(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomWeights(graph.RandomConnected(1000, 4000, rng), 50, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i % g.N())
	}
}

func BenchmarkCongestBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomConnected(400, 1200, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := dist.RunBFSTree(g, 0, 400, congest.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkeletonBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomWeights(graph.RandomConnected(200, 800, rng), 12, rng)
	var s []int
	for v := 0; v < g.N(); v += 16 {
		s = append(s, v)
	}
	eps := dist.EpsForN(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.BuildSkeleton(g, s, 80, 3, eps)
	}
}

func BenchmarkAPSPBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomWeights(graph.RandomConnected(100, 300, rng), 9, rng)
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := baseline.RunAPSP(g, 0, congest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "congest-rounds")
}
