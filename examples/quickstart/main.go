// Quickstart: build a weighted network, run the paper's quantum CONGEST
// algorithm for the weighted diameter, and compare against the exact
// value and the classical baseline.
package main

import (
	"fmt"
	"log"

	"qcongest"
)

func main() {
	// A 120-node low-diameter network with random weights in [1, 10] —
	// the regime where Theorem 1.1 beats the classical Θ(n) bound.
	rng := qcongest.NewRand(7)
	g := qcongest.RandomWeights(qcongest.LowDiameter(120, 4, rng), 10, rng)

	fmt.Printf("network: %v\n", g)
	fmt.Printf("exact weighted diameter: %d\n", g.Diameter())

	// The paper's algorithm: a nested quantum search over sampled vertex
	// sets, evaluating approximate eccentricities through Nanongkai's
	// skeleton machinery.
	res, err := qcongest.Approximate(g, qcongest.DiameterMode, qcongest.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quantum estimate: %.2f (ratio %.4f, bound (1+ε)² = %.4f)\n",
		res.Estimate,
		res.Estimate/float64(g.Diameter()),
		(1+res.Params.Eps.Float())*(1+res.Params.Eps.Float()))
	fmt.Printf("quantum rounds (simulated): %d\n", res.Rounds)
	fmt.Printf("theorem shape min{n^0.9·D^0.3, n} = %.0f\n", res.TheoremBound)

	// The classical comparator: exact APSP in Θ(n) rounds.
	diam, radius, stats, err := qcongest.ClassicalDiameter(g, qcongest.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical APSP: diameter %d, radius %d in %d measured rounds\n",
		diam, radius, stats.Rounds)

	// Note on absolute numbers: the simulated quantum rounds include every
	// polylog factor and scheduling constant the paper's Õ(·) hides, so at
	// this size the classical baseline wins outright. The paper's claim is
	// the growth rate — rounds ~ n^0.9 vs n — which cmd/sweep measures.
	fmt.Println("(absolute quantum rounds carry the model's polylog constants; see cmd/sweep for the scaling claim)")
}
