// wansensor: the paper's motivating scenario — a wide-area sensor /
// datacenter overlay wants to know its worst-case and best-case
// communication latency (weighted diameter and radius) without collecting
// the full topology at a coordinator.
//
// The overlay has a low hop count between any two sites (small unweighted
// D) but very heterogeneous link latencies (weights), which is exactly
// the regime where the quantum algorithm's Õ(n^0.9·D^0.3) beats the
// classical Ω̃(n) lower bound for any (3/2-ε) approximation.
package main

import (
	"fmt"
	"log"

	"qcongest"
)

func main() {
	rng := qcongest.NewRand(2026)

	// Topology: 3 regional hubs, each a dense cluster of sites, with a few
	// expensive cross-region trunks. Weights model millisecond latencies.
	const perRegion = 60
	const regions = 3
	n := perRegion * regions
	g := qcongest.NewGraph(n)
	site := func(region, i int) int { return region*perRegion + i }

	for r := 0; r < regions; r++ {
		// Intra-region: a random low-diameter mesh, 1-9 ms links.
		for i := 0; i < perRegion; i++ {
			for k := 0; k < 3; k++ {
				j := rng.Intn(perRegion)
				if j != i {
					g.MustAddEdge(site(r, i), site(r, j), 1+rng.Int63n(9))
				}
			}
		}
	}
	// Cross-region trunks: 40-90 ms.
	for r := 0; r < regions; r++ {
		for t := r + 1; t < regions; t++ {
			for k := 0; k < 3; k++ {
				g.MustAddEdge(site(r, rng.Intn(perRegion)), site(t, rng.Intn(perRegion)), 40+rng.Int63n(50))
			}
		}
	}
	gs := g.Simplify()
	fmt.Printf("overlay: %v, hop diameter %d\n", gs, gs.UnweightedDiameter())

	trueDiam, trueRad := gs.Diameter(), gs.Radius()
	fmt.Printf("ground truth: worst-case latency %d ms, best-center latency %d ms\n", trueDiam, trueRad)

	for _, mode := range []qcongest.Mode{qcongest.DiameterMode, qcongest.RadiusMode} {
		res, err := qcongest.Approximate(gs, mode, qcongest.Options{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		truth := trueDiam
		if mode == qcongest.RadiusMode {
			truth = trueRad
		}
		fmt.Printf("%-8s estimate %.1f ms (ratio %.4f) in %d simulated quantum rounds\n",
			mode, res.Estimate, res.Estimate/float64(truth), res.Rounds)
	}

	// Operational question the paper answers: is running this quantum
	// protocol worthwhile versus classical APSP? Only when hop diameter is
	// below ~n^(1/3).
	_, _, stats, err := qcongest.ClassicalDiameter(gs, qcongest.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical exact APSP for comparison: %d rounds (Θ(n) regime)\n", stats.Rounds)
}
