// The service walk-through: start an in-process qcongestd handler,
// register a spine-leaf datacenter fabric through the typed client, and
// run the full query round trip — exact metrics, a cached sketch, and a
// batch APSP sweep — printing the cache counters and a Prometheus
// scrape excerpt at the end.
//
// Against a separately launched daemon (cmd/qcongestd), drop the
// httptest server and point qcongest.NewServiceClient at its address.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"qcongest"
)

func main() {
	// In-process daemon; swap for a real deployment's URL in production.
	// Rate limits and quotas are per X-API-Key (generous here: this
	// walk-through runs single-threaded).
	srv := httptest.NewServer(qcongest.NewService(qcongest.ServiceConfig{
		CacheCapacity: 8,
		RatePerKey:    100,
		RateBurst:     100,
	}))
	defer srv.Close()
	client := qcongest.NewServiceClient(srv.URL)
	client.APIKey = "example"      // attribute this traffic to one tenant bucket
	client.RequireRequestID = true // assert the X-Request-Id contract on every call

	// Register a two-tier leaf-spine fabric server-side: 4 spines, 8
	// leaves, 8 hosts per leaf, random weights in [1, 16].
	up, err := client.Generate(qcongest.GenSpec{
		Kind: "spineleaf", Spines: 4, Leaves: 8, Hosts: 8, MaxW: 16, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s: n=%d m=%d W=%d (created=%v)\n",
		up.Digest, up.N, up.M, up.MaxWeight, up.Created)

	// Exact metrics are memoized per graph after the first touch.
	diam, err := client.Diameter(up.Digest)
	if err != nil {
		log.Fatal(err)
	}
	rad, err := client.Radius(up.Digest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact weighted diameter %d, radius %d\n", diam, rad)

	// A Lemma 3.2 sketch: approximate eccentricities of the spine
	// switches through the skeleton of sources {0,1,2,3}. The second
	// call is a cache hit answering from memory.
	req := qcongest.SketchRequest{Sources: []int{0, 1, 2, 3}, L: 8, K: 4}
	sk, err := client.Sketch(up.Digest, req)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range sk.Eccentricities {
		fmt.Printf("  ẽ(%d) = %d/%d\n", e.V, e.Num, sk.Den)
	}
	if _, err := client.Sketch(up.Digest, req); err != nil {
		log.Fatal(err)
	}

	// Batch: the classical APSP baseline over the same fabric twice,
	// riding congest.RunBatch on the daemon.
	batch, err := client.Batch(qcongest.BatchRequest{Digests: []string{up.Digest, up.Digest}})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range batch.Results {
		fmt.Printf("batch %s: diameter %d radius %d in %d rounds\n",
			r.Digest, r.Diameter, r.Radius, r.Rounds)
	}

	m, err := client.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache: %d hits, %d misses, hit rate %.2f\n",
		m.Cache.Hits, m.Cache.Misses, m.Cache.HitRate)
	if k, ok := m.RateLimits["example"]; ok {
		fmt.Printf("key \"example\": %d allowed, %d limited\n", k.Allowed, k.Limited)
	}

	// The same /metrics endpoint answers a Prometheus scraper with the
	// text exposition format — print this run's request counters.
	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("prometheus exposition excerpt:")
	for sc := bufio.NewScanner(resp.Body); sc.Scan(); {
		if line := sc.Text(); strings.HasPrefix(line, "qcongest_requests_total") {
			fmt.Println("  " + line)
		}
	}
}
