// lowerbound: the full Theorem 4.2 pipeline, end to end.
//
// Alice and Bob hold private inputs x, y and want to compute
// F(x,y) = AND_i OR_j (x_ij AND y_ij), a problem whose quantum two-party
// communication complexity is Ω(√(2^s·ℓ)) (Lemmas 4.5-4.7). The paper
// embeds F into a weighted network (Figure 2) so that any fast quantum
// CONGEST algorithm for (3/2-ε)-approximating the weighted diameter would
// solve F too cheaply — yielding the Ω̃(n^(2/3)) round lower bound.
//
// This example builds the gadget for concrete inputs, verifies the
// Lemma 4.4 diameter gap, runs the Lemma 4.1 Server-model simulation of a
// real distributed algorithm with exact charged-communication accounting,
// and executes the final decision rule.
package main

import (
	"fmt"
	"log"

	"qcongest"
	"qcongest/internal/exp"
)

func main() {
	const h = 4 // n = Θ(2^(3h/2)) = 447 nodes
	alpha, beta, err := qcongest.TheoremWeights(h)
	if err != nil {
		log.Fatal(err)
	}
	s, l, err := qcongest.EqTwoParams(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameters (Eq. 2): h=%d, s=%d, ℓ=%d, α=n²=%d, β=2n²=%d\n", h, s, l, alpha, beta)

	for _, fval := range []bool{true, false} {
		x, y, err := exp.GadgetInputs(h, fval, 42)
		if err != nil {
			log.Fatal(err)
		}
		c, err := qcongest.BuildDiameterGap(h, x, y, alpha, beta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- F(x,y) = %v ---\n", qcongest.F(x, y))
		fmt.Printf("gadget: n=%d, unweighted diameter %d = Θ(log n)\n",
			c.G.N(), c.G.UnweightedDiameter())

		rep := c.VerifyLemma44(x, y)
		fmt.Printf("Lemma 4.4: exact weighted diameter %d (F=1 bound ≤ %d, F=0 bound ≥ %d) — ok=%v\n",
			rep.Metric, rep.YesBound, rep.NoBound, rep.Satisfied)

		out := qcongest.DecideDiameterRed(c, x, y)
		fmt.Printf("decision rule [D̂ < 3α]: decided F=%v, truth F=%v, correct=%v\n",
			out.Decided, out.Truth, out.Correct)
	}

	// The Server-model simulation: a real distributed algorithm runs on
	// the gadget while Alice, Bob, and the free server simulate it; only
	// Alice/Bob messages into the server's region are charged.
	sim, err := exp.SimulationExperiment(h, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLemma 4.1 simulation of a %d-round distributed algorithm:\n", sim.Rounds)
	fmt.Printf("  charged messages %d of %d total (cap 2h·T = %d) — within bounds: %v\n",
		sim.ChargedMessages, sim.TotalMessages, sim.LemmaTotalCap, sim.WithinLemmaBounds)
	fmt.Printf("  ⇒ any (3/2−ε)-approximation needs Ω̃(n^(2/3)) ≈ %.0f rounds here\n",
		qcongest.LowerBoundRounds(447))
}
