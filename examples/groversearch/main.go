// groversearch: the quantum search substrate in isolation.
//
// The paper's algorithm is, at its core, nested quantum maximum finding:
// Lemma 3.1's distributed optimization framework charges
// T0 + O(√(log(1/δ)/ρ))·T rounds, where the √ comes from amplitude
// amplification. This example demonstrates the three layers the library
// builds that on:
//
//  1. Exact state-vector Grover search and its sin²((2j+1)θ) success law.
//  2. BBHT search with an unknown number of marked items.
//  3. Dürr-Høyer maximum finding with O(√N) oracle queries.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"qcongest/internal/qsim"
)

func main() {
	// 1. Grover's law, exactly, on a 6-qubit state vector.
	const domain = 64
	marked := func(x uint64) bool { return x == 42 }
	fmt.Println("Grover success probability for 1 marked item in 64 (exact state vector vs law):")
	for j := 0; j <= 6; j++ {
		s := qsim.GroverIterate(domain, marked, j)
		law := qsim.SuccessProbability(domain, 1, j)
		fmt.Printf("  j=%d: measured %.6f, sin²((2j+1)θ) = %.6f\n", j, s.Prob(42), law)
	}
	opt := int(math.Round(math.Pi/(4*math.Asin(math.Sqrt(1.0/domain))) - 0.5))
	fmt.Printf("  optimal iterations ≈ (π/4)√N = %d\n\n", opt)

	// 2. BBHT: unknown number of marked items.
	rng := rand.New(rand.NewSource(1))
	res := qsim.BBHT(qsim.Exact, domain, func(x uint64) bool { return x%9 == 0 }, rng)
	fmt.Printf("BBHT over 64 items (8 marked, count unknown): found=%v x=%d after %d oracle queries\n\n",
		res.Found, res.Outcome, res.Queries)

	// 3. Dürr-Høyer maximum finding: the primitive behind "find the node
	// with maximum eccentricity".
	vals := make([]int64, 512)
	for i := range vals {
		vals[i] = rng.Int63n(1_000_000)
	}
	dh := qsim.DurrHoyerMax(qsim.Sampled, uint64(len(vals)), func(x uint64) int64 { return vals[x] }, rng)
	var want int64
	for _, v := range vals {
		if v > want {
			want = v
		}
	}
	fmt.Printf("Dürr-Høyer max over 512 values: found %d (true max %d) with %d queries (classical needs 512)\n",
		dh.Value, want, dh.Queries)
	fmt.Printf("√N = %.1f — the quantum speedup the paper's round bound inherits\n", math.Sqrt(512))
}
