package qcongest_test

import (
	"testing"

	"qcongest"
)

// Tests of the public API facade: everything a downstream user can reach
// without touching internal packages.

func TestPublicApproximateDiameter(t *testing.T) {
	rng := qcongest.NewRand(1)
	g := qcongest.RandomWeights(qcongest.LowDiameter(50, 4, rng), 8, rng)
	res, err := qcongest.Approximate(g, qcongest.DiameterMode, qcongest.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Diameter())
	eps := res.Params.Eps.Float()
	if res.Estimate < truth || res.Estimate > (1+eps)*(1+eps)*truth+1e-9 {
		t.Fatalf("estimate %f outside [%f, %f]", res.Estimate, truth, (1+eps)*(1+eps)*truth)
	}
	if res.Rounds <= 0 || res.TheoremBound <= 0 {
		t.Fatalf("bad ledger: %+v", res)
	}
}

func TestPublicSketchServing(t *testing.T) {
	rng := qcongest.NewRand(5)
	g := qcongest.RandomWeights(qcongest.LowDiameter(40, 4, rng), 8, rng)
	s := []int{0, 9, 17, 26, 33}
	eps := qcongest.EpsForN(g.N())

	cache := qcongest.NewSketchCache(4, 0)
	sk := cache.Skeleton(g, s, 12, 2, eps)
	if again := cache.Skeleton(g, s, 12, 2, eps); again != sk {
		t.Fatal("identical query missed the cache")
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats: %+v", st)
	}
	// Cached answers match a direct parallel build, which never
	// undershoots the true eccentricity.
	direct := qcongest.BuildSkeleton(g, s, 12, 2, eps, qcongest.SketchOpts{Workers: 2})
	for _, v := range s {
		num, den := cache.ApproxEccentricity(g, s, 12, 2, eps, v)
		if num != direct.ApproxEccentricity(v) || den != direct.DenOut {
			t.Fatalf("cached ẽ(%d) = %d/%d, direct build says %d/%d",
				v, num, den, direct.ApproxEccentricity(v), direct.DenOut)
		}
		if num < g.Eccentricity(v)*den {
			t.Fatalf("ẽ(%d) undershoots the true eccentricity", v)
		}
	}
	direct.Release()
}

func TestPublicApproximateRadius(t *testing.T) {
	rng := qcongest.NewRand(2)
	g := qcongest.RandomWeights(qcongest.LowDiameter(50, 4, rng), 8, rng)
	res, err := qcongest.Approximate(g, qcongest.RadiusMode, qcongest.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate < float64(g.Radius()) {
		t.Fatalf("radius estimate %f below truth %d", res.Estimate, g.Radius())
	}
}

func TestPublicGenerators(t *testing.T) {
	rng := qcongest.NewRand(3)
	graphs := map[string]*qcongest.Graph{
		"path":     qcongest.Path(10),
		"cycle":    qcongest.Cycle(10),
		"star":     qcongest.Star(10),
		"complete": qcongest.Complete(6),
		"grid":     qcongest.Grid(3, 5),
		"tree":     qcongest.RandomTree(20, rng),
		"conn":     qcongest.RandomConnected(20, 40, rng),
		"lowd":     qcongest.LowDiameter(30, 4, rng),
		"dctrl":    qcongest.DiameterControlled(30, 6, rng),
		"barbell":  qcongest.Barbell(4, 3),
	}
	for name, g := range graphs {
		if !g.Connected() {
			t.Errorf("%s: not connected", name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPublicNewGraphAndMetrics(t *testing.T) {
	g := qcongest.NewGraph(3)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 2, 5)
	if d := g.Diameter(); d != 9 {
		t.Fatalf("diameter %d, want 9", d)
	}
	if r := g.Radius(); r != 5 {
		t.Fatalf("radius %d, want 5", r)
	}
}

func TestPublicLowerBoundPipeline(t *testing.T) {
	s, l, err := qcongest.EqTwoParams(2)
	if err != nil {
		t.Fatal(err)
	}
	rows := 1 << uint(s)
	x := qcongest.NewInput(rows, l)
	y := qcongest.NewInput(rows, l)
	// All-ones: F = 1.
	for i := 0; i < rows; i++ {
		for j := 0; j < l; j++ {
			x.Set(i, j, true)
			y.Set(i, j, true)
		}
	}
	if !qcongest.F(x, y) || !qcongest.FPrime(x, y) {
		t.Fatal("all-ones input should satisfy F and F'")
	}
	alpha, beta, err := qcongest.TheoremWeights(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := qcongest.BuildDiameterGap(2, x, y, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	out := qcongest.DecideDiameterRed(c, x, y)
	if !out.Correct || !out.Decided {
		t.Fatalf("reduction on all-ones: %+v", out)
	}
	cr, err := qcongest.BuildRadiusGap(2, x, y, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	rout := qcongest.DecideRadiusRed(cr, x, y)
	if !rout.Correct {
		t.Fatalf("radius reduction: %+v", rout)
	}
}

func TestPublicBaselines(t *testing.T) {
	rng := qcongest.NewRand(4)
	g := qcongest.RandomWeights(qcongest.RandomConnected(20, 40, rng), 6, rng)
	diam, radius, stats, err := qcongest.ClassicalDiameter(g, qcongest.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diam != g.Diameter() || radius != g.Radius() {
		t.Fatalf("baseline mismatch: %d/%d vs %d/%d", diam, radius, g.Diameter(), g.Radius())
	}
	if stats.Rounds <= 0 {
		t.Fatal("no rounds")
	}
	q, err := qcongest.QuantumUnweightedDiameter(g.Unweighted(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Diameter != g.UnweightedDiameter() {
		t.Fatalf("quantum baseline %d, want %d", q.Diameter, g.UnweightedDiameter())
	}
}

func TestPublicLowerBoundRoundsShape(t *testing.T) {
	if qcongest.LowerBoundRounds(1_000_000) <= qcongest.LowerBoundRounds(1_000) {
		t.Fatal("lower bound not growing")
	}
}
