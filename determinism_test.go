// Determinism regression suite for the parallel CONGEST engine and the
// parallel distance kernel: the engine contract (DESIGN.md §2.3) is
// that Stats and the ordered Trace sequence are byte-identical across
// Options.Workers values, and the skeleton-build contract (DESIGN.md
// §3.6) is that every numerator is byte-identical across
// BuildSkeletonOpts.Workers values. Part A pins the engine contract on
// every congest.Proc in the repository with raw trace logs; Part B
// re-runs the E1–E13 experiment drivers under the parallel engine (via
// congest.DefaultWorkers) and asserts their full reports are unchanged;
// Part C does the same for the distance kernel (direct skeleton builds
// and the skeleton-heavy drivers, via dist.DefaultSkeletonWorkers);
// Part D extends the contract over the kernel's relaxation engines:
// every KernelMode × worker-count cell must reproduce the sparse
// sequential numerators byte for byte (direct builds over the E-family
// plus adversarial shapes, and the skeleton-heavy drivers via
// dist.DefaultKernelMode); Part E extends it over the wire codecs:
// a graph decoded from the text edge list and from the binary
// varint-delta format must be indistinguishable — same digest, same
// exact eccentricities, byte-identical sketch numerators — so the
// serving layer may accept either encoding of a graph and answer from
// either without the caller being able to tell; Part F extends it over
// the cluster: a leader and its WAL-shipped replicas — each configured
// with a different sketch worker count, answering under every pinned
// kernel — must serve byte-identical sketch numerators and exact
// metrics for every replicated graph, both directly and through the
// digest-routing proxy, which is the invariant that makes any-replica
// reads sound. CI runs this file with -count=3 under the
// `determinism` and `kernel-differential` jobs.
package qcongest_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"qcongest/internal/baseline"
	"qcongest/internal/cluster"
	"qcongest/internal/congest"
	"qcongest/internal/core"
	"qcongest/internal/dist"
	"qcongest/internal/exp"
	"qcongest/internal/graph"
	"qcongest/internal/qsim"
	"qcongest/internal/svc"
)

type traceEntry struct {
	Round, From, To int
	Msg             congest.Message
}

// chatterProc exercises the engine's densest path: every node sends one
// message per incident edge per round, payload derived from its private
// PRNG, for a fixed number of rounds.
type chatterProc struct {
	rounds int
	env    *congest.Env
}

func (p *chatterProc) Init(env *congest.Env) { p.env = env }

func (p *chatterProc) Step(round int, inbox []congest.Received) ([]congest.Send, bool) {
	if round >= p.rounds {
		return nil, true
	}
	out := make([]congest.Send, 0, len(p.env.Neighbors))
	for _, a := range p.env.Neighbors {
		out = append(out, congest.Send{To: a.To, Msg: congest.Message{
			Kind: 9, A: int64(round), B: p.env.Rand.Int63(), C: int64(len(inbox)),
		}})
	}
	return out, round == p.rounds-1
}

// workerCounts are the engine configurations the satellite task pins:
// sequential, small shard pool, and GOMAXPROCS.
func workerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

func TestDeterminismEngineWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gRand := graph.RandomConnected(60, 180, rng)
	gW := graph.RandomWeights(gRand, 9, rng)
	gFabric := graph.RandomWeights(graph.SpineLeaf(3, 5, 4, 2, 1), 7, rng)
	gBarbell := graph.Barbell(6, 5)
	eps := dist.EpsForN(gW.N())
	delays := dist.SampleDelays(3, gW.N(), rand.New(rand.NewSource(7)))

	workloads := []struct {
		name string
		run  func(opts congest.Options) (congest.Stats, error)
	}{
		{"bfs-tree/random", func(opts congest.Options) (congest.Stats, error) {
			_, _, stats, err := dist.RunBFSTree(gRand, 0, gRand.N(), opts)
			return stats, err
		}},
		{"alg1/weighted", func(opts congest.Options) (congest.Stats, error) {
			_, stats, err := dist.RunAlg1(gW, 1, 8, eps, opts)
			return stats, err
		}},
		{"alg3/weighted", func(opts congest.Options) (congest.Stats, error) {
			_, stats, err := dist.RunAlg3(gW, []int{0, 7, 19}, delays, 6, eps, opts)
			return stats, err
		}},
		{"apsp/barbell", func(opts congest.Options) (congest.Stats, error) {
			_, stats, err := baseline.RunAPSP(gBarbell, 0, opts)
			return stats, err
		}},
		{"chatter/spine-leaf", func(opts congest.Options) (congest.Stats, error) {
			opts.MaxRounds = 34
			opts.Seed = 5
			return congest.RunProcs(gFabric, func(int) congest.Proc { return &chatterProc{rounds: 32} }, opts)
		}},
	}

	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			capture := func(workers int) (congest.Stats, []traceEntry, error) {
				var log []traceEntry
				opts := congest.Options{
					Workers: workers,
					Trace: func(round, from, to int, msg congest.Message) {
						log = append(log, traceEntry{round, from, to, msg})
					},
				}
				stats, err := w.run(opts)
				return stats, log, err
			}
			refStats, refLog, refErr := capture(1)
			if refErr != nil {
				t.Fatalf("sequential run failed: %v", refErr)
			}
			if len(refLog) == 0 {
				t.Fatalf("workload produced no traffic; not a useful determinism probe")
			}
			for _, workers := range workerCounts()[1:] {
				stats, log, err := capture(workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if stats != refStats {
					t.Errorf("workers=%d: stats %+v != sequential %+v", workers, stats, refStats)
				}
				if !reflect.DeepEqual(log, refLog) {
					t.Errorf("workers=%d: trace log diverged (%d vs %d entries)", workers, len(log), len(refLog))
				}
			}
		})
	}
}

// TestDeterminismExperimentDrivers runs each E1–E13 driver under the
// sequential and parallel engines by flipping congest.DefaultWorkers
// (E2/E3/E5/E6–E9/E12/E13 exercise no simulator rounds — their inclusion
// pins exactly that) and asserts the full reports are identical.
func TestDeterminismExperimentDrivers(t *testing.T) {
	drivers := []struct {
		name string
		run  func() (interface{}, error)
	}{
		{"E1/table1", func() (interface{}, error) { return exp.MeasuredTable1(40, 3) }},
		{"E2/scaling-n", func() (interface{}, error) {
			pts, fit, err := exp.ScalingInN([]int{16, 24}, 4, core.DiameterMode, 3)
			return []interface{}{pts, fit}, err
		}},
		{"E3/scaling-d", func() (interface{}, error) {
			pts, fit, err := exp.ScalingInD(24, []int{4, 6}, core.DiameterMode, 3)
			return []interface{}{pts, fit}, err
		}},
		{"E4/crossover", func() (interface{}, error) { return exp.Crossover(32, []int{4, 8}, 3) }},
		{"E5/quality", func() (interface{}, error) { return exp.Quality(2, 24, core.DiameterMode, 3) }},
		{"E6/figure1", func() (interface{}, error) { return exp.Figure1Suite([]int{2, 3}, 3), nil }},
		{"E7/diameter-gap", func() (interface{}, error) { return exp.GapExperiment(2, false, 2, 3) }},
		{"E8/table2", func() (interface{}, error) {
			vio, checked, err := exp.Table2Experiment(2, 1, 3)
			return []int{vio, checked}, err
		}},
		{"E9/radius-gap", func() (interface{}, error) { return exp.GapExperiment(2, true, 2, 3) }},
		{"E10/simulation", func() (interface{}, error) { return exp.SimulationExperiment(4, 3) }},
		{"E11/reduction", func() (interface{}, error) { return exp.ReductionExperiment(2, 1, 3) }},
		{"E12/grover", func() (interface{}, error) {
			rng := rand.New(rand.NewSource(3))
			return qsim.BBHT(qsim.Sampled, 1<<10, func(x uint64) bool { return x == 77 }, rng), nil
		}},
		{"E13/formulas", func() (interface{}, error) { return exp.FormulaExperiment(4) }},
		{"E14/spineleaf", func() (interface{}, error) {
			return exp.SpineLeafSweep([]exp.SpineLeafConfig{{Spines: 2, Leaves: 3, Hosts: 3}}, 4, 3, 0, 0)
		}},
	}

	defer func() { congest.DefaultWorkers = 0 }()
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			congest.DefaultWorkers = 0
			ref, err := d.run()
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			for _, workers := range workerCounts() {
				congest.DefaultWorkers = workers
				got, err := d.run()
				congest.DefaultWorkers = 0
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("workers=%d: report diverged from sequential run:\n got %s\nwant %s",
						workers, fmt.Sprintf("%+v", got), fmt.Sprintf("%+v", ref))
				}
			}
		})
	}
}

// TestDeterminismSkeletonWorkers pins the distance kernel's worker
// contract on the exported surface: skeleton numerators (queried as
// approximate eccentricities over every vertex, plus the TopMass
// aggregate the outer search consumes) are byte-identical for
// Workers ∈ {1, 4, GOMAXPROCS}.
func TestDeterminismSkeletonWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	graphs := []*graph.Graph{
		graph.RandomWeights(graph.RandomConnected(48, 140, rng), 11, rng),
		graph.RandomWeights(graph.SpineLeaf(3, 5, 4, 2, 1), 7, rng),
		graph.Barbell(6, 5),
		graph.RandomWeights(graph.DiameterControlled(40, 8, rng), 16, rng),
	}
	for gi, g := range graphs {
		var s []int
		for v := 0; v < g.N(); v += 3 {
			s = append(s, v)
		}
		eps := dist.EpsForN(g.N())
		capture := func(workers int) ([]int64, float64) {
			sk := dist.BuildSkeletonWith(g, s, g.N()/2, 2, eps, dist.BuildSkeletonOpts{Workers: workers})
			eccs := make([]int64, g.N())
			for v := range eccs {
				eccs[v] = sk.ApproxEccentricity(v)
			}
			mass := dist.TopMass(sk, eccs[s[0]])
			sk.Release()
			return eccs, mass
		}
		refEccs, refMass := capture(1)
		for _, workers := range workerCounts()[1:] {
			eccs, mass := capture(workers)
			if !reflect.DeepEqual(eccs, refEccs) || mass != refMass {
				t.Errorf("graph %d, workers=%d: skeleton numerators diverged from sequential build", gi, workers)
			}
		}
	}
}

// TestDeterminismSkeletonDrivers re-runs the skeleton-heavy experiment
// drivers with dist.DefaultSkeletonWorkers flipped across the worker
// grid and asserts the full reports are identical: the parallel
// distance kernel must be invisible in every reported number.
func TestDeterminismSkeletonDrivers(t *testing.T) {
	drivers := []struct {
		name string
		run  func() (interface{}, error)
	}{
		{"E1/table1", func() (interface{}, error) { return exp.MeasuredTable1(40, 3) }},
		{"E2/scaling-n", func() (interface{}, error) {
			pts, fit, err := exp.ScalingInN([]int{16, 24}, 4, core.DiameterMode, 3)
			return []interface{}{pts, fit}, err
		}},
		{"E5/quality", func() (interface{}, error) { return exp.Quality(2, 24, core.DiameterMode, 3) }},
		{"E14/spineleaf", func() (interface{}, error) {
			return exp.SpineLeafSweep([]exp.SpineLeafConfig{{Spines: 2, Leaves: 3, Hosts: 3}}, 4, 3, 0, 0)
		}},
	}
	defer func() { dist.DefaultSkeletonWorkers = 0 }()
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			dist.DefaultSkeletonWorkers = 0
			ref, err := d.run()
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			for _, workers := range workerCounts() {
				dist.DefaultSkeletonWorkers = workers
				got, err := d.run()
				dist.DefaultSkeletonWorkers = 0
				if err != nil {
					t.Fatalf("distworkers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("distworkers=%d: report diverged from sequential run", workers)
				}
			}
		})
	}
}

// kernelDeterminismGraphs is the Part D corpus: the E-family shapes of
// Part C plus the kernel-adversarial ones — a star (instant
// sparse→dense flip), a long path (dense must never engage), a
// high-degree fabric (the bottom-up BFS regime), and a disconnected
// graph (unreached vertices stay Inf in every engine).
func kernelDeterminismGraphs() []*graph.Graph {
	rng := rand.New(rand.NewSource(73))
	disconnected := graph.New(40)
	for v := 1; v < 24; v++ {
		disconnected.MustAddEdge(rng.Intn(v), v, 1+rng.Int63n(9))
	}
	for v := 25; v < 40; v++ {
		disconnected.MustAddEdge(24+rng.Intn(v-24), v, 1+rng.Int63n(9))
	}
	return []*graph.Graph{
		graph.RandomWeights(graph.RandomConnected(48, 140, rng), 11, rng),
		graph.RandomWeights(graph.SpineLeaf(4, 6, 6, 2, 1), 7, rng),
		graph.Barbell(6, 5),
		graph.RandomWeights(graph.Star(65), 9, rng),
		graph.Path(70),
		disconnected,
	}
}

// TestDeterminismKernelModes is Part D's direct-build half: for every
// relaxation engine and every worker count, the full-vertex sketch
// numerators (every approximate eccentricity, which exhausts the rows
// and overlay) must be byte-identical to the sparse sequential build.
func TestDeterminismKernelModes(t *testing.T) {
	for gi, g := range kernelDeterminismGraphs() {
		var s []int
		for v := 0; v < g.N(); v += 3 {
			s = append(s, v)
		}
		eps := dist.EpsForN(g.N())
		capture := func(mode graph.KernelMode, workers int) []int64 {
			sk := dist.BuildSkeletonWith(g, s, g.N()/2, 2, eps,
				dist.BuildSkeletonOpts{Workers: workers, Kernel: mode})
			eccs := make([]int64, g.N())
			for v := range eccs {
				eccs[v] = sk.ApproxEccentricity(v)
			}
			sk.Release()
			return eccs
		}
		ref := capture(graph.KernelSparse, 1)
		for _, mode := range graph.KernelModes() {
			for _, workers := range workerCounts() {
				if got := capture(mode, workers); !reflect.DeepEqual(got, ref) {
					t.Errorf("graph %d, mode=%v, workers=%d: sketch numerators diverged from sparse sequential build",
						gi, mode, workers)
				}
			}
		}
	}
}

// TestDeterminismCodecParity is Part E: the cross-codec differential
// suite. Every corpus graph (the Part D kernel-adversarial family plus
// a scrambled-insertion-order shape that forces the binary codec's
// permutation section) is round-tripped through both wire codecs, and
// the three copies — original, text-decoded, binary-decoded — must
// agree on the digest, the exact eccentricity vector, and the full
// sketch-numerator vector. Because sketches are cached by digest, any
// codec divergence here would poison answers served for the other
// encoding of the same graph.
func TestDeterminismCodecParity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	corpus := kernelDeterminismGraphs()
	scrambled := graph.New(48)
	type raw struct {
		u, v int
		w    int64
	}
	var pending []raw
	for v := 1; v < 48; v++ {
		pending = append(pending, raw{rng.Intn(v), v, 1 + rng.Int63n(50)})
	}
	rng.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
	for _, e := range pending {
		scrambled.MustAddEdge(e.u, e.v, e.w)
	}
	corpus = append(corpus, scrambled)

	sketchNumerators := func(g *graph.Graph) []int64 {
		var s []int
		for v := 0; v < g.N(); v += 3 {
			s = append(s, v)
		}
		sk := dist.BuildSkeletonWith(g, s, g.N()/2, 2, dist.EpsForN(g.N()), dist.BuildSkeletonOpts{})
		eccs := make([]int64, g.N())
		for v := range eccs {
			eccs[v] = sk.ApproxEccentricity(v)
		}
		sk.Release()
		return eccs
	}

	for gi, g := range corpus {
		fromText, err := graph.ParseEdgeList(graph.FormatEdgeList(g))
		if err != nil {
			t.Fatalf("graph %d: text round trip: %v", gi, err)
		}
		fromBin, err := graph.ParseBinary(graph.FormatBinary(g))
		if err != nil {
			t.Fatalf("graph %d: binary round trip: %v", gi, err)
		}
		if fromText.Digest() != g.Digest() || fromBin.Digest() != g.Digest() {
			t.Errorf("graph %d: digest diverges across codecs (orig %x, text %x, binary %x)",
				gi, g.Digest(), fromText.Digest(), fromBin.Digest())
			continue
		}
		refEcc := g.Eccentricities()
		if !reflect.DeepEqual(fromText.Eccentricities(), refEcc) || !reflect.DeepEqual(fromBin.Eccentricities(), refEcc) {
			t.Errorf("graph %d: exact eccentricities diverge across codecs", gi)
		}
		refSketch := sketchNumerators(g)
		if !reflect.DeepEqual(sketchNumerators(fromText), refSketch) || !reflect.DeepEqual(sketchNumerators(fromBin), refSketch) {
			t.Errorf("graph %d: sketch numerators diverge across codecs", gi)
		}
	}
}

// TestDeterminismKernelModeDrivers is Part D's driver half: the
// skeleton-heavy experiment reports must be unchanged under every
// process-wide kernel mode (dist.DefaultKernelMode), exactly as Part C
// pins them across worker counts.
func TestDeterminismKernelModeDrivers(t *testing.T) {
	drivers := []struct {
		name string
		run  func() (interface{}, error)
	}{
		{"E1/table1", func() (interface{}, error) { return exp.MeasuredTable1(40, 3) }},
		{"E5/quality", func() (interface{}, error) { return exp.Quality(2, 24, core.DiameterMode, 3) }},
		{"E14/spineleaf", func() (interface{}, error) {
			return exp.SpineLeafSweep([]exp.SpineLeafConfig{{Spines: 2, Leaves: 3, Hosts: 3}}, 4, 3, 0, 0)
		}},
	}
	defer func() { dist.DefaultKernelMode = graph.KernelAuto }()
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			dist.DefaultKernelMode = graph.KernelSparse
			ref, err := d.run()
			if err != nil {
				t.Fatalf("sparse: %v", err)
			}
			for _, mode := range graph.KernelModes() {
				dist.DefaultKernelMode = mode
				got, err := d.run()
				dist.DefaultKernelMode = graph.KernelAuto
				if err != nil {
					t.Fatalf("mode=%v: %v", mode, err)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("mode=%v: report diverged from the sparse run", mode)
				}
			}
		})
	}
}

// TestDeterminismClusterReplicaParity is Part F: the determinism
// contract across a live replication cluster. One shard — a durable
// leader plus a durable and an in-memory follower, each tailing the
// leader's log over /v1/replicate — behind a digest-routing proxy. The
// three nodes deliberately run DIFFERENT sketch worker counts (1, 4,
// GOMAXPROCS), so equality across replicas is simultaneously equality
// across the parallel kernel's fan-out; each assertion additionally
// pins both relaxation engines. Every replicated graph must answer the
// same digest, the same exact diameter, and byte-identical sketch
// numerators from every node and through the router.
func TestDeterminismClusterReplicaParity(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster parity is not a -short test")
	}
	poll := 20 * time.Millisecond
	workers := []int{1, 4, runtime.GOMAXPROCS(0)}

	leader, err := svc.Open(svc.Config{DataDir: t.TempDir(), SketchWorkers: workers[0]})
	if err != nil {
		t.Fatalf("leader: %v", err)
	}
	defer leader.Close()
	lts := httptest.NewServer(leader)
	defer lts.Close()

	durable, err := svc.Open(svc.Config{
		DataDir: t.TempDir(), SketchWorkers: workers[1],
		FollowURL: lts.URL, FollowPoll: poll,
	})
	if err != nil {
		t.Fatalf("durable follower: %v", err)
	}
	defer durable.Close()
	dts := httptest.NewServer(durable)
	defer dts.Close()

	inmem, err := svc.Open(svc.Config{
		SketchWorkers: workers[2],
		FollowURL:     lts.URL, FollowPoll: poll,
	})
	if err != nil {
		t.Fatalf("in-memory follower: %v", err)
	}
	defer inmem.Close()
	its := httptest.NewServer(inmem)
	defer its.Close()

	topo, err := cluster.ParseTopology(lts.URL + ";" + dts.URL + ";" + its.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(cluster.Config{Topology: topo, ProbeEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()

	rc := svc.NewClient(rts.URL)
	// Let the router's seed probe sweep mark every node ready before the
	// first write; an unprobed leader reads as down and writes shed.
	probeDeadline := time.Now().Add(5 * time.Second)
	for {
		if h, err := rc.Health(); err == nil && h.Status == "ok" {
			break
		}
		if time.Now().After(probeDeadline) {
			t.Fatal("router never reported the shard ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	nodes := map[string]*svc.Client{
		"leader":             svc.NewClient(lts.URL),
		"durable-follower":   svc.NewClient(dts.URL),
		"in-memory-follower": svc.NewClient(its.URL),
	}

	// The corpus: kernel-adversarial shapes small enough that the dense
	// engine cells stay cheap under CI's -count=3.
	rng := rand.New(rand.NewSource(77))
	corpus := []*graph.Graph{
		graph.Star(33),
		graph.Cycle(48),
		graph.Grid(6, 7),
		graph.RandomWeights(graph.RandomConnected(56, 224, rng), 16, rng),
	}
	var digests []string
	for gi, g := range corpus {
		up, err := rc.UploadWire(g, gi%2 == 0)
		if err != nil {
			t.Fatalf("uploading corpus graph %d via router: %v", gi, err)
		}
		if up.Digest != fmt.Sprintf("%016x", g.Digest()) {
			t.Fatalf("graph %d: router acknowledged digest %s, client computed %016x", gi, up.Digest, g.Digest())
		}
		digests = append(digests, up.Digest)
	}

	// Both followers must converge on the full replicated set.
	for name, c := range nodes {
		name, c := name, c
		deadline := time.Now().Add(10 * time.Second)
		for {
			infos, err := c.Graphs()
			if err == nil && len(infos) == len(corpus) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never converged on %d graphs (last: %d, %v)", name, len(corpus), len(infos), err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	for gi, d := range digests {
		n := corpus[gi].N()
		refDia, err := nodes["leader"].Diameter(d)
		if err != nil {
			t.Fatalf("leader diameter(%s): %v", d, err)
		}
		for _, kernel := range []string{"sparse", "dense"} {
			req := svc.SketchRequest{
				Sources: []int{0, 1 % n, (n / 2) % n},
				L:       n / 2,
				K:       2,
				Kernel:  kernel,
			}
			ref, err := nodes["leader"].Sketch(d, req)
			if err != nil {
				t.Fatalf("leader sketch(%s, %s): %v", d, kernel, err)
			}
			for name, c := range nodes {
				got, err := c.Sketch(d, req)
				if err != nil {
					t.Fatalf("%s sketch(%s, %s): %v", name, d, kernel, err)
				}
				if got.Den != ref.Den || !reflect.DeepEqual(got.Eccentricities, ref.Eccentricities) {
					t.Errorf("graph %d kernel %s: %s sketch numerators diverge from the leader's", gi, kernel, name)
				}
				dia, err := c.Diameter(d)
				if err != nil {
					t.Fatalf("%s diameter(%s): %v", name, d, err)
				}
				if dia != refDia {
					t.Errorf("graph %d: %s answers diameter %d, leader %d", gi, name, dia, refDia)
				}
			}
			via, err := rc.Sketch(d, req)
			if err != nil {
				t.Fatalf("router sketch(%s, %s): %v", d, kernel, err)
			}
			if via.Den != ref.Den || !reflect.DeepEqual(via.Eccentricities, ref.Eccentricities) {
				t.Errorf("graph %d kernel %s: the router's answer diverges from the leader's", gi, kernel)
			}
		}
	}
}
