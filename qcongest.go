// Package qcongest is a reproduction of Wu & Yao, "Quantum Complexity of
// Weighted Diameter and Radius in CONGEST Networks" (PODC 2022,
// arXiv:2206.02767), as a production Go library.
//
// The package re-exports the library's stable surface:
//
//   - Weighted graphs and generators (the network substrate).
//   - Approximate: the paper's Theorem 1.1 algorithm — a quantum CONGEST
//     procedure that (1+o(1))-approximates the weighted diameter or radius
//     in Õ(min{n^(9/10)·D^(3/10), n}) simulated rounds.
//   - The lower-bound pipeline of Theorems 4.2/4.8: gadget constructions,
//     the F/F' communication problems, and the Server-model simulation of
//     Lemma 4.1.
//   - The classical and quantum baselines of Table 1.
//
// See README.md for a quickstart and DESIGN.md for how the quantum and
// network substrates are simulated.
package qcongest

import (
	"math/rand"

	"qcongest/internal/baseline"
	"qcongest/internal/cluster"
	"qcongest/internal/congest"
	"qcongest/internal/core"
	"qcongest/internal/dist"
	"qcongest/internal/gadget"
	"qcongest/internal/graph"
	"qcongest/internal/server"
	"qcongest/internal/svc"
)

// Graph is an undirected weighted network (w : E -> N+).
type Graph = graph.Graph

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// Generators for experiment workloads.
var (
	Path               = graph.Path
	Cycle              = graph.Cycle
	Star               = graph.Star
	Complete           = graph.Complete
	Grid               = graph.Grid
	RandomTree         = graph.RandomTree
	RandomConnected    = graph.RandomConnected
	RandomWeights      = graph.RandomWeights
	LowDiameter        = graph.LowDiameterExpanderish
	DiameterControlled = graph.DiameterControlled
	Barbell            = graph.Barbell
	SpineLeaf          = graph.SpineLeaf
)

// Mode selects the metric for Approximate.
type Mode = core.Mode

// Modes.
const (
	DiameterMode = core.DiameterMode
	RadiusMode   = core.RadiusMode
)

// Options configure Approximate.
type Options = core.Options

// Result is the outcome of Approximate, including the round ledger.
type Result = core.Result

// Params are the paper's Eq. (1) parameter choices.
type Params = core.Params

// Approximate runs the Theorem 1.1 quantum CONGEST algorithm on the
// weighted network g and returns a (1+o(1))-approximation of the chosen
// metric with its measured round complexity.
func Approximate(g *Graph, mode Mode, opts Options) (*Result, error) {
	return core.Approximate(g, mode, opts)
}

// Lower-bound pipeline (§4).
type (
	// Input is a two-party lower-bound input x ∈ {0,1}^(2^s × ℓ).
	Input = gadget.Input
	// Construction is an instantiated Figure 2/4 gadget network.
	Construction = gadget.Construction
	// GapReport is a Lemma 4.4/4.9 verification outcome.
	GapReport = gadget.GapReport
	// SimulationReport is the Lemma 4.1 Server-model accounting.
	SimulationReport = server.Report
)

// Lower-bound functions and builders.
var (
	NewInput          = gadget.NewInput
	F                 = gadget.F
	FPrime            = gadget.FPrime
	BuildDiameterGap  = gadget.BuildDiameter
	BuildRadiusGap    = gadget.BuildRadius
	TheoremWeights    = gadget.TheoremWeights
	EqTwoParams       = gadget.EqTwoParams
	LowerBoundRounds  = server.LowerBoundRounds
	DecideDiameterRed = server.DecideDiameter
	DecideRadiusRed   = server.DecideRadius
)

// Sketch-serving layer: repeated distance queries against a fixed
// topology are answered from a bounded LRU cache of Lemma 3.2
// skeletons with single-flight deduplication (DESIGN.md §3.6).
type (
	// SketchCache is the bounded, thread-safe skeleton cache.
	SketchCache = server.SketchCache
	// CacheStats is a snapshot of cache effectiveness counters.
	CacheStats = server.CacheStats
	// Skeleton answers approximate eccentricity queries ẽ_{G,w,i}(·).
	Skeleton = dist.Skeleton
	// Eps is the paper's rounding parameter ε = 1/T.
	Eps = dist.Eps
)

// Sketch-serving constructors and parameter helpers.
var (
	NewSketchCache = server.NewSketchCache
	EpsForN        = dist.EpsForN
	BuildSkeleton  = dist.BuildSkeletonWith
)

// SketchOpts configure a skeleton build (worker fan-out).
type SketchOpts = dist.BuildSkeletonOpts

// Serving layer (internal/svc): the qcongestd daemon's handler and the
// typed client of its HTTP/JSON API. See API.md for the endpoint
// reference and DESIGN.md §8 for the architecture. Note the naming
// split: this is deployment infrastructure, distinct from the paper's
// three-party Server model of Lemma 4.1 (SimulationReport above).
type (
	// Service is the daemon's state and http.Handler (mount on an
	// http.Server, or on httptest for in-process use).
	Service = svc.Server
	// ServiceConfig tunes cache capacity, admission gates, limits, and
	// the observability surface (per-key rate limits and quotas,
	// structured access logging — DESIGN.md §8.5).
	ServiceConfig = svc.Config
	// ServiceClient is the typed client of the qcongestd API. Set
	// APIKey to attribute traffic to one tenant bucket, and
	// RequireRequestID to assert the X-Request-Id contract per call.
	ServiceClient = svc.Client
	// GraphInfo identifies one registered graph (digest, n, m, W).
	GraphInfo = svc.GraphInfo
	// GenSpec asks the daemon to generate a workload graph server-side.
	GenSpec = svc.GenSpec
	// SketchRequest is the Lemma 3.2 parameter tuple of one sketch query.
	SketchRequest = svc.SketchRequest
	// SketchResponse carries the ẽ numerators over their common denominator.
	SketchResponse = svc.SketchResponse
	// BatchRequest runs the classical APSP baseline over registered graphs.
	BatchRequest = svc.BatchRequest
	// BatchResponse is the per-graph batch outcome.
	BatchResponse = svc.BatchResponse
	// ServiceMetrics is the /metrics JSON snapshot (cache hit rate,
	// latency quantiles, admission occupancy, per-key rate-limit
	// ledgers). The same endpoint also serves the Prometheus text
	// exposition under content negotiation — see API.md "GET /metrics".
	ServiceMetrics = svc.MetricsSnapshot
)

// Serving-layer constructors and the wire codecs of POST /v1/graphs:
// the text edge list and the varint-delta binary format (DESIGN.md §10).
// Both round-trip a graph exactly, including the edge insertion order
// its Digest hashes. OpenService is NewService plus durability: with
// ServiceConfig.DataDir set it opens the crash-safe graph store there,
// replays every committed graph, and pre-warms the
// ServiceConfig.WarmStart hottest ones (API.md "Persistence and warm
// restarts", DESIGN.md §9); the caller owns Service.Close.
var (
	NewService       = svc.New
	OpenService      = svc.Open
	NewServiceClient = svc.NewClient
	FormatEdgeList   = graph.FormatEdgeList
	ParseEdgeList    = graph.ParseEdgeList
	FormatBinary     = graph.FormatBinary
	ParseBinary      = graph.ParseBinary
)

// Cluster tier (internal/cluster): the qrouter proxy that consistent-
// hashes graph digests across qcongestd shards, sheds writes for a
// downed leader with 503 + Retry-After, and fails reads over to any
// in-sync WAL-shipped replica (DESIGN.md §11, API.md "Cluster
// routing"). Replication itself lives in the daemons — set
// ServiceConfig.FollowURL to run a Service as a read-only follower.
type (
	// ClusterRouter is the routing proxy's state and http.Handler; the
	// caller owns Close.
	ClusterRouter = cluster.Router
	// ClusterRouterConfig tunes the probe cadence, body caps, and parse
	// limits of a router.
	ClusterRouterConfig = cluster.Config
	// ClusterTopology is the static shard layout: shards of replica
	// URLs, leader first.
	ClusterTopology = cluster.Topology
	// ClusterInfo is the live topology descriptor GET /v1/cluster
	// answers (per-node role and probe state).
	ClusterInfo = cluster.ClusterInfo
)

// Cluster-tier constructors: ParseClusterTopology reads the -peers
// spelling ("leader;replica,leader;replica" — shards comma-separated,
// replicas semicolon-separated), NewClusterRouter builds the proxy and
// starts its health prober.
var (
	ParseClusterTopology = cluster.ParseTopology
	NewClusterRouter     = cluster.NewRouter
)

// SimOptions configure a CONGEST simulation run.
type SimOptions = congest.Options

// SimStats is the exact round/message accounting of a simulation.
type SimStats = congest.Stats

// ClassicalDiameter runs the classical exact APSP baseline and returns
// the exact weighted diameter and radius with measured CONGEST rounds.
func ClassicalDiameter(g *Graph, opts SimOptions) (diam, radius int64, stats SimStats, err error) {
	return baseline.ClassicalDiameter(g, opts)
}

// QuantumUnweightedDiameter runs the Le Gall-Magniez-style quantum
// baseline for the unweighted diameter.
func QuantumUnweightedDiameter(g *Graph, seed int64) (baseline.QuantumUnweightedResult, error) {
	return baseline.QuantumUnweightedDiameter(g, seed)
}

// NewRand returns a deterministic PRNG for workload generation; the
// library never uses global randomness.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
