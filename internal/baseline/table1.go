package baseline

import "math"

// CostFn is an asymptotic round-cost shape as a function of n and D,
// with all constants and polylog factors set to 1.
type CostFn func(n, d float64) float64

// Row is one line of the paper's Table 1: the complexity of computing the
// diameter or radius in the CONGEST model.
type Row struct {
	Problem        string // "diameter" or "radius"
	Variant        string // "unweighted" or "weighted"
	Approx         string // approximation regime
	UpperClassical CostFn
	UpperQuantum   CostFn
	LowerClassical CostFn
	LowerQuantum   CostFn
	SourceUpper    string
	SourceLower    string
	ThisWork       bool
}

// Named cost shapes used by Table 1.
func costN(n, _ float64) float64       { return n }
func costSqrtND(n, d float64) float64  { return math.Sqrt(n * d) }
func costCbrt(n, d float64) float64    { return math.Cbrt(n*d*d) + math.Sqrt(n) }
func costSqrtN(n, d float64) float64   { return math.Sqrt(n) + d }
func costCbrtND(n, d float64) float64  { return math.Cbrt(n*d) + d }
func costChechik(n, d float64) float64 { return math.Sqrt(n)*math.Pow(d, 0.25) + d }
func costN23(n, _ float64) float64 {
	l := math.Log2(n)
	return math.Pow(n, 2.0/3.0) / (l * l)
}

// CostThisWork is the paper's upper bound min{n^(9/10)·D^(3/10), n}.
func CostThisWork(n, d float64) float64 {
	return math.Min(math.Pow(n, 0.9)*math.Pow(d, 0.3), n)
}

// Table1 returns the full complexity landscape of the paper's Table 1.
// Rows marked ThisWork are the paper's contributions.
func Table1() []Row {
	return []Row{
		{
			Problem: "diameter", Variant: "unweighted", Approx: "exact",
			UpperClassical: costN, UpperQuantum: costSqrtND,
			LowerClassical: costN, LowerQuantum: costCbrt,
			SourceUpper: "[17,22] / [12]", SourceLower: "[11] / [20]",
		},
		{
			Problem: "diameter", Variant: "unweighted", Approx: "3/2-eps",
			UpperClassical: costN, UpperQuantum: costSqrtND,
			LowerClassical: costN, LowerQuantum: costSqrtN,
			SourceUpper: "[17,22] / [12]", SourceLower: "[2] / [12]",
		},
		{
			Problem: "diameter", Variant: "unweighted", Approx: "3/2",
			UpperClassical: costSqrtN, UpperQuantum: costCbrtND,
			SourceUpper: "[15,3] / [12]", SourceLower: "open",
		},
		{
			Problem: "diameter", Variant: "weighted", Approx: "exact",
			UpperClassical: costN, UpperQuantum: costN,
			LowerClassical: costN, LowerQuantum: costN23,
			SourceUpper: "[6]", SourceLower: "[2] / (this work)",
		},
		{
			Problem: "diameter", Variant: "weighted", Approx: "(1,3/2)",
			UpperClassical: costN, UpperQuantum: CostThisWork,
			LowerClassical: costN, LowerQuantum: costN23,
			SourceUpper: "[6] / THIS WORK", SourceLower: "[2] / THIS WORK",
			ThisWork: true,
		},
		{
			Problem: "diameter", Variant: "weighted", Approx: "2-eps",
			UpperClassical: costN, UpperQuantum: CostThisWork,
			LowerClassical: costN, LowerQuantum: costSqrtN,
			SourceUpper: "THIS WORK", SourceLower: "[16] / [12]",
			ThisWork: true,
		},
		{
			Problem: "diameter", Variant: "weighted", Approx: "2",
			UpperClassical: costChechik, UpperQuantum: costChechik,
			SourceUpper: "[8]", SourceLower: "open",
		},
		{
			Problem: "radius", Variant: "unweighted", Approx: "exact",
			UpperClassical: costN, UpperQuantum: costSqrtND,
			LowerClassical: costN, LowerQuantum: costCbrt,
			SourceUpper: "[17,22] / [12]", SourceLower: "",
		},
		{
			Problem: "radius", Variant: "unweighted", Approx: "3/2-eps",
			UpperClassical: costN, UpperQuantum: costSqrtND,
			LowerClassical: costN, LowerQuantum: costSqrtN,
			SourceUpper: "", SourceLower: "[2]",
		},
		{
			Problem: "radius", Variant: "unweighted", Approx: "3/2",
			UpperClassical: costSqrtN, UpperQuantum: costSqrtN,
			SourceUpper: "[3]", SourceLower: "open",
		},
		{
			Problem: "radius", Variant: "weighted", Approx: "exact",
			UpperClassical: costN, UpperQuantum: costN,
			LowerClassical: costN, LowerQuantum: costN23,
			SourceUpper: "[6]", SourceLower: "(this work)",
		},
		{
			Problem: "radius", Variant: "weighted", Approx: "(1,3/2)",
			UpperClassical: costN, UpperQuantum: CostThisWork,
			LowerClassical: costN, LowerQuantum: costN23,
			SourceUpper: "THIS WORK", SourceLower: "THIS WORK",
			ThisWork: true,
		},
		{
			Problem: "radius", Variant: "weighted", Approx: "2",
			UpperClassical: costChechik, UpperQuantum: costChechik,
			SourceUpper: "[8]", SourceLower: "open",
		},
	}
}

// CrossoverD returns the D at which the paper's bound stops beating the
// classical Θ(n): n^(9/10)·D^(3/10) = n at D = n^(1/3).
func CrossoverD(n float64) float64 { return math.Cbrt(n) }
