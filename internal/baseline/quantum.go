package baseline

import (
	"fmt"
	"math/rand"

	"qcongest/internal/graph"
	"qcongest/internal/qdist"
	"qcongest/internal/qsim"
)

// QuantumUnweightedResult reports the Le Gall-Magniez-style run.
type QuantumUnweightedResult struct {
	Diameter int64
	Rounds   int64 // measured via the optimization framework's ledger
	Budget   int64
}

// QuantumUnweightedDiameter runs the Le Gall-Magniez-style quantum
// unweighted diameter: quantum maximum finding over all nodes'
// eccentricities, where each Evaluation is a BFS plus converge-cast of
// fixed schedule O(D). The measured rounds scale as Õ(√n·D) — the √n
// quantum signature of their Theorem (their full algorithm reaches
// Õ(√(nD)) with additional pipelining, which the analytic Table 1 row
// reports).
func QuantumUnweightedDiameter(g *graph.Graph, seed int64) (QuantumUnweightedResult, error) {
	n := g.N()
	if n < 2 {
		return QuantumUnweightedResult{}, fmt.Errorf("baseline: need n >= 2, got %d", n)
	}
	d := g.UnweightedDiameter()
	if d < 1 {
		d = 1
	}
	// Eccentricities computed centrally as the value oracle; the round
	// ledger charges the BFS + converge-cast schedule 2D+2 per evaluation.
	ecc := make([]int64, n)
	for v := 0; v < n; v++ {
		ecc[v] = g.UnweightedEccentricity(v)
	}
	p := qdist.Procedure{
		Name:        "legall-magniez-unweighted-diameter",
		InitRounds:  d,     // leader election / BFS-tree setup
		SetupRounds: d,     // broadcast of the superposed source id
		EvalRounds:  d + 1, // BFS wave + converge-cast of the farthest distance
		Domain:      uint64(n),
		Value:       func(x uint64) int64 { return ecc[x] },
	}
	rng := rand.New(rand.NewSource(seed))
	res, err := qdist.Maximize(p, 1/float64(n), 1e-9, qsim.Sampled, rng)
	if err != nil {
		return QuantumUnweightedResult{}, err
	}
	return QuantumUnweightedResult{Diameter: res.Value, Rounds: res.MeasuredRounds, Budget: res.BudgetRounds}, nil
}
