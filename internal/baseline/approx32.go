package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"qcongest/internal/graph"
)

// Approx32Result reports the classical 3/2-approximation run.
type Approx32Result struct {
	Estimate int64 // D̂ with 2D/3 <= D̂ <= D (w.h.p.)
	Rounds   int64 // the Õ(√n + D) schedule of [15, 3]
	Sampled  int
}

// ClassicalDiameter32 implements the Holzer-Peleg-Roditty-Wattenhofer
// style 3/2-approximation of the unweighted diameter: BFS from a random
// set S of Θ(√n·log n) nodes plus BFS from the node farthest from S and
// its neighborhood; the estimate is the maximum eccentricity seen.
// Values are computed centrally; the round ledger charges the paper's
// Õ(√n + D) schedule (the s BFS waves pipeline over a BFS tree, giving
// c·(|S| + D) rounds rather than |S|·D).
//
// Guarantee: D̂ <= D always, and D̂ >= ⌊2D/3⌋ with high probability.
func ClassicalDiameter32(g *graph.Graph, seed int64) (Approx32Result, error) {
	n := g.N()
	if n < 2 {
		return Approx32Result{}, fmt.Errorf("baseline: need n >= 2, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	sampleSize := int(math.Ceil(math.Sqrt(float64(n)) * math.Log2(float64(n))))
	if sampleSize > n {
		sampleSize = n
	}

	// Sample S and run BFS from each member.
	perm := rng.Perm(n)
	sample := perm[:sampleSize]
	var est int64
	distToS := make([]int64, n)
	for v := range distToS {
		distToS[v] = graph.Inf
	}
	for _, s := range sample {
		d := g.BFS(s)
		for v, dv := range d {
			if dv != graph.Inf && dv < distToS[v] {
				distToS[v] = dv
			}
			if dv != graph.Inf && dv > est {
				est = dv
			}
		}
	}
	// w: the node farthest from S; BFS from w and from w's neighbors-ball
	// representative (the [15] refinement uses the BFS tree of w; the
	// eccentricity of w is the part that matters for the 2D/3 bound).
	w, far := 0, int64(-1)
	for v, dv := range distToS {
		if dv != graph.Inf && dv > far {
			w, far = v, dv
		}
	}
	dw := g.BFS(w)
	for _, dv := range dw {
		if dv != graph.Inf && dv > est {
			est = dv
		}
	}

	d := g.UnweightedDiameter()
	rounds := int64(sampleSize) + 2*d + 2 // pipelined waves + the extra BFS
	return Approx32Result{Estimate: est, Rounds: rounds, Sampled: sampleSize}, nil
}
