// Package baseline implements the comparators the paper's Table 1 is
// measured against:
//
//   - An executable classical exact APSP in the CONGEST simulator
//     (queued multi-source Bellman-Ford, the Θ(n)-round regime of
//     Holzer-Wattenhofer / Peleg-Roditty-Tal for unweighted graphs and
//     the exact-weighted baseline of Bernstein-Nanongkai's Õ(n) row;
//     measured, not asymptotically optimal — see DESIGN.md).
//   - An executable quantum unweighted diameter in the style of
//     Le Gall-Magniez: quantum maximum finding over node eccentricities
//     with an O(D)-round BFS evaluation, giving Õ(√n·D) measured rounds
//     (their Õ(√(nD)) uses additional tricks; the analytic row keeps the
//     paper's exponent, and the executable one preserves the √n scaling
//     that separates quantum from classical).
//   - Analytic Õ(·) cost models for every row of Table 1.
package baseline

import (
	"fmt"
	"sort"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

const kindAPSP uint8 = 41

// apspProc is a queued multi-source Bellman-Ford node: every node floods
// (source, distance) tokens, forwarding at most one token per edge per
// round. The protocol is exact on convergence for any positive weights.
// Bookkeeping is flat: queue membership is a []bool indexed by source
// (not a map), the queue is a head-indexed slice preallocated to n that
// rewinds whenever it drains (it can still grow past n if sources
// re-improve faster than the queue empties), and incoming tokens
// resolve their arc weight through a sorted neighbor index built once
// at Init instead of a linear scan per token.
type apspProc struct {
	budget int

	env    *congest.Env
	dist   []int64
	queued []bool
	queue  []int
	qhead  int
	// nbTo/nbW is the neighbor table sorted by node id: the arc index of
	// a sender is a binary search, and parallel edges resolve to the
	// minimum weight (the only one a shortest-path token can use).
	nbTo []int32
	nbW  []int64
}

var _ congest.Proc = (*apspProc)(nil)

func (p *apspProc) Init(env *congest.Env) {
	p.env = env
	p.dist = make([]int64, env.N)
	for i := range p.dist {
		p.dist[i] = graph.Inf
	}
	p.dist[env.ID] = 0
	p.queued = make([]bool, env.N)
	p.queued[env.ID] = true
	p.queue = make([]int, 1, env.N)
	p.queue[0] = env.ID
	p.qhead = 0

	p.nbTo = make([]int32, 0, len(env.Neighbors))
	p.nbW = make([]int64, 0, len(env.Neighbors))
	for _, a := range env.Neighbors {
		p.nbTo = append(p.nbTo, int32(a.To))
		p.nbW = append(p.nbW, a.W)
	}
	sort.Sort(&neighborIndex{to: p.nbTo, w: p.nbW})
}

func (p *apspProc) Step(round int, inbox []congest.Received) ([]congest.Send, bool) {
	for _, rcv := range inbox {
		if rcv.Msg.Kind != kindAPSP {
			continue
		}
		src := int(rcv.Msg.A)
		w := p.weightTo(rcv.From)
		if nd := rcv.Msg.B + w; nd < p.dist[src] {
			p.dist[src] = nd
			if !p.queued[src] {
				p.queued[src] = true
				p.queue = append(p.queue, src)
			}
		}
	}
	var out []congest.Send
	if p.qhead < len(p.queue) {
		src := p.queue[p.qhead]
		p.qhead++
		if p.qhead == len(p.queue) {
			p.queue = p.queue[:0]
			p.qhead = 0
		}
		p.queued[src] = false
		out = make([]congest.Send, 0, len(p.env.Neighbors))
		for _, a := range p.env.Neighbors {
			out = append(out, congest.Send{To: a.To, Msg: congest.Message{Kind: kindAPSP, A: int64(src), B: p.dist[src]}})
		}
	}
	return out, p.qhead == len(p.queue) || round >= p.budget
}

// weightTo resolves the (minimum) arc weight from a neighbor by binary
// search over the sorted neighbor index.
func (p *apspProc) weightTo(from int) int64 {
	lo, hi := 0, len(p.nbTo)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(p.nbTo[mid]) < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.nbTo) && int(p.nbTo[lo]) == from {
		return p.nbW[lo]
	}
	panic("baseline: message from non-neighbor")
}

// neighborIndex sorts the (to, w) columns together by node id, weight
// ascending within parallel edges so the binary search lands on the
// minimum weight.
type neighborIndex struct {
	to []int32
	w  []int64
}

func (s *neighborIndex) Len() int { return len(s.to) }
func (s *neighborIndex) Less(i, j int) bool {
	if s.to[i] != s.to[j] {
		return s.to[i] < s.to[j]
	}
	return s.w[i] < s.w[j]
}
func (s *neighborIndex) Swap(i, j int) {
	s.to[i], s.to[j] = s.to[j], s.to[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// RunAPSP executes the classical exact APSP baseline and returns the full
// distance matrix plus the measured round statistics. The budget bounds
// pathological schedules; quiescence normally ends the run much earlier.
func RunAPSP(g *graph.Graph, budget int, opts congest.Options) ([][]int64, congest.Stats, error) {
	budget, opts = apspDefaults(g.N(), budget, opts)
	nodes := make([]*apspProc, g.N())
	procs := make([]congest.Proc, g.N())
	for i := range procs {
		nodes[i] = &apspProc{budget: budget}
		procs[i] = nodes[i]
	}
	sim, err := congest.NewSim(g, procs, opts)
	if err != nil {
		return nil, congest.Stats{}, err
	}
	stats, err := sim.Run()
	if err != nil {
		return nil, stats, err
	}
	out := make([][]int64, g.N())
	for v, p := range nodes {
		row := make([]int64, g.N())
		for s := 0; s < g.N(); s++ {
			row[s] = p.dist[s]
		}
		out[v] = row
	}
	return out, stats, nil
}

// ClassicalDiameter computes the exact weighted diameter (and radius) via
// the APSP baseline, returning the measured CONGEST rounds: the paper's
// "classical exact / (3/2−ε)" Table 1 rows, all Θ(n) in this regime.
func ClassicalDiameter(g *graph.Graph, opts congest.Options) (diam, radius int64, stats congest.Stats, err error) {
	d, stats, err := RunAPSP(g, 0, opts)
	if err != nil {
		return 0, 0, stats, err
	}
	diam, radius = diamRadius(d)
	return diam, radius, stats, nil
}

// apspDefaults is the single source of the APSP run defaults: RunAPSP and
// ClassicalDiameterBatch must hit the same round limits or the batch's
// "identical to ClassicalDiameter" guarantee silently breaks.
func apspDefaults(n, budget int, opts congest.Options) (int, congest.Options) {
	if budget <= 0 {
		budget = 8 * n * n
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = budget + 8
	}
	return budget, opts
}

func diamRadius(d [][]int64) (diam, radius int64) {
	radius = graph.Inf
	for v := range d {
		ecc := int64(0)
		for s := range d[v] {
			if d[v][s] > ecc {
				ecc = d[v][s]
			}
		}
		if ecc > diam {
			diam = ecc
		}
		if ecc < radius {
			radius = ecc
		}
	}
	return diam, radius
}

// ClassicalDiameterBatch runs the APSP baseline over many networks
// concurrently through congest.RunBatch (at most `parallelism` sims in
// flight; <= 0 selects GOMAXPROCS). Per-network results are identical to
// ClassicalDiameter — each simulation is independent and seeded from its
// own Options — and are returned in input order. The first simulation
// error aborts the batch report.
func ClassicalDiameterBatch(gs []*graph.Graph, opts congest.Options, parallelism int) (diams, radii []int64, stats []congest.Stats, err error) {
	jobs := make([]congest.BatchJob, len(gs))
	nodes := make([][]*apspProc, len(gs))
	for i, g := range gs {
		budget, jobOpts := apspDefaults(g.N(), 0, opts)
		nodes[i] = make([]*apspProc, g.N())
		procs := nodes[i]
		jobs[i] = congest.BatchJob{
			G: g,
			Mk: func(id int) congest.Proc {
				p := &apspProc{budget: budget}
				procs[id] = p
				return p
			},
			Opts: jobOpts,
		}
	}
	results := congest.RunBatch(jobs, parallelism)
	diams = make([]int64, len(gs))
	radii = make([]int64, len(gs))
	stats = make([]congest.Stats, len(gs))
	for i, res := range results {
		stats[i] = res.Stats
		if res.Err != nil {
			return nil, nil, stats, fmt.Errorf("baseline: batch APSP on graph %d: %w", i, res.Err)
		}
		d := make([][]int64, len(nodes[i]))
		for v, p := range nodes[i] {
			d[v] = p.dist
		}
		diams[i], radii[i] = diamRadius(d)
	}
	return diams, radii, stats, nil
}
