package baseline

import (
	"math"
	"math/rand"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

func TestAPSPMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := 10 + rng.Intn(15)
		g := graph.RandomWeights(graph.RandomConnected(n, 2*n, rng), 7, rng)
		got, stats, err := RunAPSP(g, 0, congest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := g.APSP()
		for v := range want {
			for s := range want[v] {
				if got[v][s] != want[v][s] {
					t.Fatalf("trial %d: d(%d,%d) = %d, want %d", trial, v, s, got[v][s], want[v][s])
				}
			}
		}
		if stats.MaxEdgeLoad > 1 {
			t.Fatal("APSP baseline violated unit bandwidth")
		}
	}
}

func TestAPSPUnweightedRoundsLinear(t *testing.T) {
	// On unweighted low-diameter graphs the baseline completes in O(n)
	// rounds (the Θ(n) Table 1 regime), not O(n·D) or worse.
	rng := rand.New(rand.NewSource(2))
	g := graph.LowDiameterExpanderish(60, 4, rng)
	_, stats, err := RunAPSP(g, 0, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > 6*g.N() {
		t.Fatalf("unweighted APSP took %d rounds for n=%d; want O(n)", stats.Rounds, g.N())
	}
}

func TestClassicalDiameterAndRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomWeights(graph.RandomConnected(18, 40, rng), 9, rng)
	diam, radius, _, err := ClassicalDiameter(g, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if diam != g.Diameter() {
		t.Fatalf("diameter %d, want %d", diam, g.Diameter())
	}
	if radius != g.Radius() {
		t.Fatalf("radius %d, want %d", radius, g.Radius())
	}
}

func TestQuantumUnweightedDiameterCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		g := graph.LowDiameterExpanderish(40, 4, rng)
		res, err := QuantumUnweightedDiameter(g, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Diameter != g.UnweightedDiameter() {
			t.Fatalf("trial %d: diameter %d, want %d", trial, res.Diameter, g.UnweightedDiameter())
		}
		if res.Rounds <= 0 {
			t.Fatal("no rounds charged")
		}
	}
}

func TestQuantumScalingBeatsClassical(t *testing.T) {
	// The Table 1 separation is asymptotic: growing n by 9x at fixed low D
	// should grow classical APSP rounds ~9x but quantum diameter rounds
	// only ~3x (√n scaling). Constants favor classical at these sizes;
	// slopes are what the paper claims.
	quantumAvg := func(n int) float64 {
		var total int64
		const trials = 5
		for i := 0; i < trials; i++ {
			rng := rand.New(rand.NewSource(int64(n*10 + i)))
			g := graph.LowDiameterExpanderish(n, 5, rng)
			q, err := QuantumUnweightedDiameter(g, int64(i))
			if err != nil {
				t.Fatal(err)
			}
			total += q.Rounds
		}
		return float64(total) / trials
	}
	classicalRounds := func(n int) float64 {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.LowDiameterExpanderish(n, 5, rng)
		_, stats, err := RunAPSP(g, 0, congest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(stats.Rounds)
	}
	qRatio := quantumAvg(360) / quantumAvg(40)
	cRatio := classicalRounds(360) / classicalRounds(40)
	if qRatio >= cRatio {
		t.Fatalf("quantum round growth %.2fx not below classical %.2fx over 9x n", qRatio, cRatio)
	}
	if qRatio > 6 {
		t.Fatalf("quantum growth %.2fx too steep for √n scaling (want ≈3, classical ≈9)", qRatio)
	}
}

func TestTable1Shapes(t *testing.T) {
	rows := Table1()
	if len(rows) != 13 {
		t.Fatalf("Table 1 has %d rows, want 13", len(rows))
	}
	thisWork := 0
	for _, r := range rows {
		if r.ThisWork {
			thisWork++
			// The paper's rows: quantum upper bound min{n^0.9 D^0.3, n}.
			if got := r.UpperQuantum(1_000_000, 8); got >= 1_000_000 {
				t.Errorf("%s/%s: this-work bound not sublinear at low D", r.Problem, r.Approx)
			}
		}
		if r.UpperClassical == nil {
			t.Errorf("%s/%s/%s: missing classical upper bound", r.Problem, r.Variant, r.Approx)
		}
	}
	if thisWork != 3 {
		t.Fatalf("found %d this-work rows, want 3", thisWork)
	}
}

func TestCostThisWorkMin(t *testing.T) {
	// Below the crossover the n^0.9 D^0.3 term wins; above, n caps it.
	n := 1000.0
	dLow, dHigh := 2.0, 2000.0
	if CostThisWork(n, dLow) >= n {
		t.Error("low-D cost should be sublinear")
	}
	if CostThisWork(n, dHigh) != n {
		t.Error("high-D cost should cap at n")
	}
	cross := CrossoverD(n)
	if math.Abs(CostThisWork(n, cross)-n) > n*0.01 {
		t.Errorf("at D = n^(1/3) the two branches should meet: got %f vs %f", CostThisWork(n, cross), n)
	}
}

func TestClassicalDiameter32Guarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		n := 30 + rng.Intn(60)
		g := graph.RandomConnected(n, n+rng.Intn(2*n), rng)
		res, err := ClassicalDiameter32(g, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		d := g.UnweightedDiameter()
		if res.Estimate > d {
			t.Fatalf("trial %d: estimate %d above diameter %d", trial, res.Estimate, d)
		}
		if 3*res.Estimate < 2*d {
			t.Fatalf("trial %d: estimate %d below 2D/3 for D=%d", trial, res.Estimate, d)
		}
		if res.Rounds <= 0 {
			t.Fatal("no rounds charged")
		}
	}
}

func TestClassicalDiameter32SublinearRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.LowDiameterExpanderish(400, 4, rng)
	res, err := ClassicalDiameter32(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds >= int64(g.N()) {
		t.Fatalf("3/2-approx took %d rounds for n=%d; want Õ(√n + D)", res.Rounds, g.N())
	}
}

func TestClassicalDiameter32TooSmall(t *testing.T) {
	if _, err := ClassicalDiameter32(graph.New(1), 0); err == nil {
		t.Fatal("n=1 accepted")
	}
}
