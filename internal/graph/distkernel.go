package graph

// This file is the multi-source distance kernel: a reusable workspace
// that answers many shortest-path queries on one graph without
// re-allocating per call and without scanning the full edge list per
// Bellman-Ford hop.
//
// The naive per-call algorithms in shortestpath.go stay as the
// readable reference implementations; everything that computes
// distances from many sources (APSP, eccentricities, the skeleton
// builds of internal/dist, the sketch-serving layer of
// internal/server) goes through a DistWorkspace. Results are
// bit-identical to the reference implementations: the frontier-based
// Bellman-Ford below is level-synchronous — hop h relaxes only nodes
// improved during hop h-1, using their end-of-hop-(h-1) values — which
// computes exactly the same d^l arrays as the full edge scan, because a
// relaxation from a node whose value did not change last hop was
// already applied the hop before.

// DistWorkspace is a scratch arena for repeated distance computations
// on one graph: a flat CSR adjacency (built once, shared by clones),
// distance/frontier arrays, a BFS queue, and a Dijkstra heap, all
// reused across calls. A workspace is NOT safe for concurrent use;
// worker pools give each worker its own Clone (clones share the
// read-only CSR and own their scratch).
type DistWorkspace struct {
	adj *csrAdj

	hops  []int64 // hop-count scratch for DijkstraInto callers
	fval  []int64 // frontier value snapshot (start-of-hop distances)
	front []int32 // current frontier
	next  []int32 // next frontier
	inNxt []bool  // membership mark for next (sparsely cleared)
	heap  distHeap
}

// csrAdj is the flat adjacency shared by a workspace and its clones:
// node u's directed arcs occupy to[head[u]:head[u+1]] with weights
// w[head[u]:head[u+1]], in the order AddEdge produced them. maxW is the
// hoisted maximum edge weight (computed once, not per query).
type csrAdj struct {
	n    int
	head []int32
	to   []int32
	w    []int64
	maxW int64
}

// NewDistWorkspace builds the CSR adjacency of g and returns a
// workspace over it. The graph must not gain edges while the workspace
// is in use.
func NewDistWorkspace(g *Graph) *DistWorkspace {
	ws := &DistWorkspace{}
	ws.Reset(g)
	return ws
}

// Reset rebinds the workspace to g, rebuilding the CSR adjacency in
// place with the existing array capacity. It exists for pooled reuse
// (internal/dist recycles skeleton build arenas through a sync.Pool):
// a recycled workspace serves a different graph without re-allocating
// its arrays. Clones taken before Reset observe the new adjacency —
// callers must not Reset a workspace whose clones are still in use.
func (ws *DistWorkspace) Reset(g *Graph) {
	adj := ws.adj
	if adj == nil {
		adj = &csrAdj{}
		ws.adj = adj
	}
	n := g.N()
	total := 0
	for u := 0; u < n; u++ {
		total += g.Degree(u)
	}
	adj.n = n
	if cap(adj.head) < n+1 {
		adj.head = make([]int32, n+1)
	} else {
		adj.head = adj.head[:n+1]
		adj.head[0] = 0
	}
	if cap(adj.to) < total {
		adj.to = make([]int32, 0, total)
		adj.w = make([]int64, 0, total)
	} else {
		adj.to = adj.to[:0]
		adj.w = adj.w[:0]
	}
	adj.maxW = 0
	for u := 0; u < n; u++ {
		for _, a := range g.Neighbors(u) {
			adj.to = append(adj.to, int32(a.To))
			adj.w = append(adj.w, a.W)
			if a.W > adj.maxW {
				adj.maxW = a.W
			}
		}
		adj.head[u+1] = int32(len(adj.to))
	}
}

// Clone returns a workspace sharing this one's read-only CSR adjacency
// with private scratch, for use on another goroutine.
func (ws *DistWorkspace) Clone() *DistWorkspace { return &DistWorkspace{adj: ws.adj} }

// N returns the node count of the underlying graph.
func (ws *DistWorkspace) N() int { return ws.adj.n }

// ArcCount returns the number of directed arcs (2·|E|); per-arc weight
// overlays passed to BoundedHopInto must have this length.
func (ws *DistWorkspace) ArcCount() int { return len(ws.adj.to) }

// MaxWeight returns the hoisted maximum edge weight (0 for an edgeless
// graph), so multi-source callers stop rescanning the edge list per
// source.
func (ws *DistWorkspace) MaxWeight() int64 { return ws.adj.maxW }

// ArcWeights copies the CSR arc weights into dst (grown as needed) and
// returns it: the layout for per-arc weight overlays. dst[a] corresponds
// to the a-th directed arc in CSR order.
func (ws *DistWorkspace) ArcWeights(dst []int64) []int64 {
	dst = growInt64(dst, len(ws.adj.w))
	copy(dst, ws.adj.w)
	return dst
}

// grow helpers keep scratch capacity across calls (and across graphs of
// different sizes when a workspace is recycled through a pool).
func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	return s[:n]
}

// BoundedHopDistInto writes the l-hop distances d^l_{G,w}(src, ·) into
// dst (grown as needed) and returns it — the workspace counterpart of
// Graph.BoundedHopDist, with frontier relaxation instead of full edge
// scans and no per-call allocation at steady state.
func (ws *DistWorkspace) BoundedHopDistInto(dst []int64, src, l int) []int64 {
	return ws.BoundedHopInto(dst, src, l, nil, 0, Inf)
}

// BoundedHopInto is the general bounded-hop kernel: level-synchronous
// Bellman-Ford from src for at most l hops, where arc a has weight
// ⌈arcNum[a]/2^shift⌉ (arcNum nil selects the graph's own weights with
// shift 0), and any relaxation whose tentative distance would exceed
// cap is discarded. It writes the resulting distances into dst (grown
// as needed) and returns it; unreached nodes get Inf. The shifted-
// ceiling weight form is exactly the per-scale rounding of the paper's
// Algorithm 1 (⌈w·2Tℓ/2^i⌉), hoisted here so the inner loop is an add
// and a shift instead of a 64-bit division.
//
// The hop-h frontier contains exactly the nodes whose distance improved
// during hop h-1, and relaxations read the snapshotted end-of-hop
// values, so the output is bit-identical to l full-edge-scan
// Bellman-Ford rounds (see the file comment). The loop exits as soon as
// a hop improves nothing.
func (ws *DistWorkspace) BoundedHopInto(dst []int64, src, l int, arcNum []int64, shift uint, cap64 int64) []int64 {
	adj := ws.adj
	n := adj.n
	if src < 0 || src >= n {
		panic("graph: BoundedHopInto source out of range")
	}
	if arcNum == nil {
		arcNum = adj.w
	} else if len(arcNum) != len(adj.to) {
		panic("graph: BoundedHopInto arc weight overlay has wrong length")
	}
	round := int64(1)<<shift - 1

	dst = growInt64(dst, n)
	for i := range dst {
		dst[i] = Inf
	}
	dst[src] = 0

	ws.front = append(ws.front[:0], int32(src))
	ws.next = ws.next[:0]
	ws.inNxt = growBool(ws.inNxt, n)

	for hop := 0; hop < l && len(ws.front) > 0; hop++ {
		// Snapshot the frontier's start-of-hop values: relaxations during
		// this hop must not read distances improved this hop (that would
		// use l+1-hop paths).
		ws.fval = growInt64(ws.fval, len(ws.front))
		for i, u := range ws.front {
			ws.fval[i] = dst[u]
		}
		for i, u := range ws.front {
			du := ws.fval[i]
			for a := adj.head[u]; a < adj.head[u+1]; a++ {
				nd := du + (arcNum[a]+round)>>shift
				v := adj.to[a]
				if nd < dst[v] && nd <= cap64 {
					dst[v] = nd
					if !ws.inNxt[v] {
						ws.inNxt[v] = true
						ws.next = append(ws.next, v)
					}
				}
			}
		}
		for _, v := range ws.next {
			ws.inNxt[v] = false
		}
		ws.front, ws.next = ws.next, ws.front[:0]
	}
	ws.front = ws.front[:0]
	return dst
}

// DijkstraInto writes d_{G,w}(src, ·) into dst (grown as needed) and
// returns it — the workspace counterpart of Graph.Dijkstra. The hop
// counts the algorithm tracks land in workspace scratch, not a
// per-call allocation.
func (ws *DistWorkspace) DijkstraInto(dst []int64, src int) []int64 {
	dst, ws.hops = ws.DijkstraHopsInto(dst, ws.hops, src)
	return dst
}

// DijkstraHopsInto is the workspace counterpart of Graph.DijkstraHops:
// weighted distances plus exact hop counts of minimum-weight paths
// (ties on weight broken by hops), with the heap and both output arrays
// reused across calls.
func (ws *DistWorkspace) DijkstraHopsInto(dst, hops []int64, src int) ([]int64, []int64) {
	adj := ws.adj
	n := adj.n
	if src < 0 || src >= n {
		panic("graph: DijkstraHopsInto source out of range")
	}
	dst = growInt64(dst, n)
	hops = growInt64(hops, n)
	for i := 0; i < n; i++ {
		dst[i] = Inf
		hops[i] = Inf
	}
	dst[src], hops[src] = 0, 0
	ws.heap = append(ws.heap[:0], distItem{node: src})
	for len(ws.heap) > 0 {
		it := ws.heapPop()
		if it.d > dst[it.node] || (it.d == dst[it.node] && it.hops > hops[it.node]) {
			continue
		}
		for a := adj.head[it.node]; a < adj.head[it.node+1]; a++ {
			v := int(adj.to[a])
			nd, nh := it.d+adj.w[a], it.hops+1
			if nd < dst[v] || (nd == dst[v] && nh < hops[v]) {
				dst[v], hops[v] = nd, nh
				ws.heapPush(distItem{node: v, d: nd, hops: nh})
			}
		}
	}
	return dst, hops
}

// heapPush and heapPop are the distHeap sift operations open-coded on
// the workspace's reusable slice: container/heap would box every
// distItem into an interface value, allocating per push.
func (ws *DistWorkspace) heapPush(it distItem) {
	h := append(ws.heap, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.Less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	ws.heap = h
}

func (ws *DistWorkspace) heapPop() distItem {
	h := ws.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < last && h.Less(l, least) {
			least = l
		}
		if r < last && h.Less(r, least) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	ws.heap = h
	return top
}

// BFSInto writes unweighted hop counts from src into dst (grown as
// needed) and returns it — the workspace counterpart of Graph.BFS.
func (ws *DistWorkspace) BFSInto(dst []int64, src int) []int64 {
	adj := ws.adj
	n := adj.n
	if src < 0 || src >= n {
		panic("graph: BFSInto source out of range")
	}
	dst = growInt64(dst, n)
	for i := range dst {
		dst[i] = Inf
	}
	dst[src] = 0
	queue := append(ws.front[:0], int32(src))
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for a := adj.head[u]; a < adj.head[u+1]; a++ {
			v := adj.to[a]
			if dst[v] == Inf {
				dst[v] = dst[u] + 1
				queue = append(queue, v)
			}
		}
	}
	ws.front = queue[:0]
	return dst
}
