package graph

// This file is the multi-source distance kernel: a reusable workspace
// that answers many shortest-path queries on one graph without
// re-allocating per call and without scanning the full edge list per
// Bellman-Ford hop.
//
// The naive per-call algorithms in shortestpath.go stay as the
// readable reference implementations; everything that computes
// distances from many sources (APSP, eccentricities, the skeleton
// builds of internal/dist, the sketch-serving layer of
// internal/server) goes through a DistWorkspace.
//
// The workspace runs one of several relaxation engines, selected by
// KernelMode (see kernelmode.go). All engines are bit-identical to the
// reference implementations and to each other:
//
//   - sparse: the level-synchronous frontier worklist — hop h relaxes
//     only nodes improved during hop h-1, using their end-of-hop-(h-1)
//     values, which computes exactly the same d^l arrays as the full
//     edge scan, because a relaxation from a node whose value did not
//     change last hop was already applied the hop before.
//   - dense: the direction-optimizing variant — the frontier is a
//     bitset and each hop scans every vertex, pulling relaxations from
//     marked neighbors against the same start-of-hop snapshot. The set
//     of relaxations applied per hop is identical to the sparse push,
//     and min over int64 is order-independent, so the distances (and
//     hence the next frontier) are bit-equal hop by hop.
//   - delta: delta-stepping buckets for the weighted passes. Bucket
//     draining computes the unbounded shortest distances (an
//     order-independent fixpoint), so bounded-hop calls verify the hop
//     budget never bound — tracking the minimum hop count among
//     min-weight paths — and fall back to the hop-synchronous engines
//     when it did.
//
// The auto mode flips sparse↔dense at hop boundaries only, so a hop
// always runs one engine start to finish; the differential suite and
// FuzzKernelEquivalence pin all modes against each other and the
// references.

// DistWorkspace is a scratch arena for repeated distance computations
// on one graph: a flat CSR adjacency (built once, shared by clones),
// distance/frontier arrays, frontier bitsets, delta-stepping buckets,
// a BFS queue, and a Dijkstra heap, all reused across calls. A
// workspace is NOT safe for concurrent use; worker pools give each
// worker its own Clone (clones share the read-only CSR and own their
// scratch).
type DistWorkspace struct {
	adj       *csrAdj
	mode      KernelMode
	sharedAdj bool // set on clones: Reset must detach, never mutate the shared CSR

	hops  []int64 // hop-count scratch for DijkstraInto and delta verification
	fval  []int64 // frontier value snapshot (start-of-hop distances)
	front []int32 // current frontier
	next  []int32 // next frontier
	inNxt []bool  // membership mark for next (sparsely cleared)
	heap  distHeap

	// Dense-mode scratch: frontier bitsets and the start-of-hop value
	// snapshot the pull relaxations read.
	curBits frontierBits
	nxtBits frontierBits
	prev    []int64

	// Delta-stepping scratch: the cyclic bucket array, the spare batch
	// slice bucket draining swaps through, and the per-bucket settled
	// set the heavy phase relaxes.
	buckets   [][]int32
	batch     []int32
	settled   []int32
	inSettled []bool

	// hopModes records the engine each hop of the last bounded-hop or
	// optimized-BFS call ran on, one entry per executed hop, and
	// hopFronts the frontier size each of those hops started from: the
	// mode-switch property tests replay the pure heuristics of
	// kernelmode.go over hopFronts and assert the decisions happened
	// only at hop boundaries and match the trace.
	hopModes  []KernelMode
	hopFronts []int32
}

// csrAdj is the flat adjacency shared by a workspace and its clones:
// node u's directed arcs occupy to[head[u]:head[u+1]] with weights
// w[head[u]:head[u+1]], in the order AddEdge produced them. maxW is the
// hoisted maximum edge weight (computed once, not per query).
type csrAdj struct {
	n    int
	head []int32
	to   []int32
	w    []int64
	maxW int64
}

// NewDistWorkspace builds the CSR adjacency of g and returns a
// workspace over it. The graph must not gain edges while the workspace
// is in use.
func NewDistWorkspace(g *Graph) *DistWorkspace {
	ws := &DistWorkspace{}
	ws.Reset(g)
	return ws
}

// Reset rebinds the workspace to g, rebuilding the CSR adjacency in
// place with the existing array capacity. It exists for pooled reuse
// (internal/dist recycles skeleton build arenas through a sync.Pool):
// a recycled workspace serves a different graph without re-allocating
// its arrays. On a Clone, Reset detaches onto a fresh CSR instead —
// the shared adjacency may still be in use by the parent or sibling
// clones and is never mutated through a clone. Resetting the original
// workspace while its clones are in use remains the caller's bug
// (clones would observe the new adjacency).
func (ws *DistWorkspace) Reset(g *Graph) {
	adj := ws.adj
	if adj == nil || ws.sharedAdj {
		adj = &csrAdj{}
		ws.adj = adj
		ws.sharedAdj = false
	}
	n := g.N()
	total := 0
	for u := 0; u < n; u++ {
		total += g.Degree(u)
	}
	adj.n = n
	if cap(adj.head) < n+1 {
		adj.head = make([]int32, n+1)
	} else {
		adj.head = adj.head[:n+1]
		adj.head[0] = 0
	}
	if cap(adj.to) < total {
		adj.to = make([]int32, 0, total)
		adj.w = make([]int64, 0, total)
	} else {
		adj.to = adj.to[:0]
		adj.w = adj.w[:0]
	}
	adj.maxW = 0
	for u := 0; u < n; u++ {
		for _, a := range g.Neighbors(u) {
			adj.to = append(adj.to, int32(a.To))
			adj.w = append(adj.w, a.W)
			if a.W > adj.maxW {
				adj.maxW = a.W
			}
		}
		adj.head[u+1] = int32(len(adj.to))
	}
}

// Clone returns a workspace sharing this one's read-only CSR adjacency
// with private scratch, for use on another goroutine. The clone
// inherits the kernel mode.
func (ws *DistWorkspace) Clone() *DistWorkspace {
	return &DistWorkspace{adj: ws.adj, mode: ws.mode, sharedAdj: true}
}

// SetKernelMode selects the relaxation engine for subsequent calls.
// Every mode returns bit-identical results; clones taken after the
// call inherit the mode.
func (ws *DistWorkspace) SetKernelMode(m KernelMode) { ws.mode = m }

// Kernel returns the workspace's kernel mode.
func (ws *DistWorkspace) Kernel() KernelMode { return ws.mode }

// N returns the node count of the underlying graph.
func (ws *DistWorkspace) N() int { return ws.adj.n }

// ArcCount returns the number of directed arcs (2·|E|); per-arc weight
// overlays passed to BoundedHopInto must have this length.
func (ws *DistWorkspace) ArcCount() int { return len(ws.adj.to) }

// MaxWeight returns the hoisted maximum edge weight (0 for an edgeless
// graph), so multi-source callers stop rescanning the edge list per
// source.
func (ws *DistWorkspace) MaxWeight() int64 { return ws.adj.maxW }

// ArcWeights copies the CSR arc weights into dst (grown as needed) and
// returns it: the layout for per-arc weight overlays. dst[a] corresponds
// to the a-th directed arc in CSR order.
func (ws *DistWorkspace) ArcWeights(dst []int64) []int64 {
	dst = growInt64(dst, len(ws.adj.w))
	copy(dst, ws.adj.w)
	return dst
}

// grow helpers keep scratch capacity across calls (and across graphs of
// different sizes when a workspace is recycled through a pool).
func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	return s[:n]
}

// growInt32Cap returns an empty slice with capacity at least n, so
// frontier transitions (bitset → worklist) can append n members without
// allocating on a warm workspace.
func growInt32Cap(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, 0, n)
	}
	return s[:0]
}

// BoundedHopDistInto writes the l-hop distances d^l_{G,w}(src, ·) into
// dst (grown as needed) and returns it — the workspace counterpart of
// Graph.BoundedHopDist, with frontier relaxation instead of full edge
// scans and no per-call allocation at steady state.
func (ws *DistWorkspace) BoundedHopDistInto(dst []int64, src, l int) []int64 {
	return ws.BoundedHopInto(dst, src, l, nil, 0, Inf)
}

// BoundedHopInto is the general bounded-hop kernel: at most l hops of
// relaxation from src, where arc a has weight ⌈arcNum[a]/2^shift⌉
// (arcNum nil selects the graph's own weights with shift 0), and any
// relaxation whose tentative distance would exceed cap is discarded.
// It writes the resulting distances into dst (grown as needed) and
// returns it; unreached nodes get Inf. The shifted-ceiling weight form
// is exactly the per-scale rounding of the paper's Algorithm 1
// (⌈w·2Tℓ/2^i⌉), hoisted here so the inner loop is an add and a shift
// instead of a 64-bit division. Overlays must assign both directed
// copies of an undirected edge the same numerator (ArcWeights-derived
// overlays do): the dense engine pulls along the reverse arc.
//
// The engine is selected by the workspace's KernelMode; every mode
// computes bit-identical distances (see the file comment). The loop
// exits as soon as a hop improves nothing.
func (ws *DistWorkspace) BoundedHopInto(dst []int64, src, l int, arcNum []int64, shift uint, cap64 int64) []int64 {
	adj := ws.adj
	n := adj.n
	if src < 0 || src >= n {
		panic("graph: BoundedHopInto source out of range")
	}
	if arcNum == nil {
		arcNum = adj.w
	} else if len(arcNum) != len(adj.to) {
		panic("graph: BoundedHopInto arc weight overlay has wrong length")
	}
	dst = growInt64(dst, n)
	for i := range dst {
		dst[i] = Inf
	}
	dst[src] = 0
	ws.hopModes = ws.hopModes[:0]
	ws.hopFronts = ws.hopFronts[:0]
	if l <= 0 {
		return dst
	}
	mode := ws.mode
	if mode == KernelDelta {
		if ws.deltaBounded(dst, src, l, arcNum, shift, cap64) {
			return dst
		}
		// The hop budget bound some vertex (or the overlay rounds to a
		// non-positive weight): bucket order is not hop order, so rerun
		// on the hop-synchronous engines for exact d^l semantics.
		for i := range dst {
			dst[i] = Inf
		}
		dst[src] = 0
		mode = KernelAuto
	}
	ws.runHops(dst, src, l, arcNum, shift, cap64, mode)
	return dst
}

// runHops is the hop-synchronous engine loop: l level-synchronous
// relaxation rounds, each run entirely on the sparse worklist or
// entirely on the dense bitset, with the auto crossover consulted only
// between hops.
func (ws *DistWorkspace) runHops(dst []int64, src, l int, arcNum []int64, shift uint, cap64 int64, mode KernelMode) {
	n := ws.adj.n
	round := int64(1)<<shift - 1
	ws.front = growInt32Cap(ws.front, n)
	ws.front = append(ws.front, int32(src))
	ws.next = growInt32Cap(ws.next, n)
	ws.inNxt = growBool(ws.inNxt, n)
	dense := mode == KernelDense
	if dense {
		ws.curBits = growBits(ws.curBits, n)
		ws.curBits.fillFrom(ws.front)
		ws.nxtBits = growBits(ws.nxtBits, n)
	}
	frontN := 1
	for hop := 0; hop < l && frontN > 0; hop++ {
		ws.hopFronts = append(ws.hopFronts, int32(frontN))
		if mode == KernelAuto {
			if !dense && hopGoesDense(frontN, n) {
				dense = true
				ws.curBits = growBits(ws.curBits, n)
				ws.curBits.fillFrom(ws.front)
				ws.nxtBits = growBits(ws.nxtBits, n)
			} else if dense && hopGoesSparse(frontN, n) {
				dense = false
				ws.front = ws.curBits.appendMembers(ws.front[:0])
			}
		}
		if dense {
			ws.hopModes = append(ws.hopModes, KernelDense)
			frontN = ws.denseHop(dst, arcNum, round, shift, cap64)
		} else {
			ws.hopModes = append(ws.hopModes, KernelSparse)
			frontN = ws.sparseHop(dst, arcNum, round, shift, cap64)
		}
	}
	ws.front = ws.front[:0]
}

// sparseHop runs one worklist hop: snapshot the frontier's start-of-hop
// values (relaxations during the hop must not read distances improved
// this hop — that would use l+1-hop paths), push relaxations along
// frontier arcs, and collect the improved nodes as the next frontier.
// Returns the next frontier's size.
func (ws *DistWorkspace) sparseHop(dst []int64, arcNum []int64, round int64, shift uint, cap64 int64) int {
	adj := ws.adj
	ws.fval = growInt64(ws.fval, len(ws.front))
	for i, u := range ws.front {
		ws.fval[i] = dst[u]
	}
	for i, u := range ws.front {
		du := ws.fval[i]
		for a := adj.head[u]; a < adj.head[u+1]; a++ {
			nd := du + (arcNum[a]+round)>>shift
			v := adj.to[a]
			if nd < dst[v] && nd <= cap64 {
				dst[v] = nd
				if !ws.inNxt[v] {
					ws.inNxt[v] = true
					ws.next = append(ws.next, v)
				}
			}
		}
	}
	for _, v := range ws.next {
		ws.inNxt[v] = false
	}
	ws.front, ws.next = ws.next, ws.front[:0]
	return len(ws.front)
}

// denseHop runs one bitset hop: every vertex pulls relaxations from
// frontier-marked neighbors against the prev snapshot. The relaxation
// set equals the sparse push of the same frontier, so the resulting
// distances — and the next frontier, collected as the improved bits —
// are bit-identical. Returns the next frontier's population.
func (ws *DistWorkspace) denseHop(dst []int64, arcNum []int64, round int64, shift uint, cap64 int64) int {
	adj := ws.adj
	n := adj.n
	ws.prev = growInt64(ws.prev, n)
	prev := ws.prev
	copy(prev, dst)
	nxt := ws.nxtBits
	nxt.zero()
	cur := ws.curBits
	improved := 0
	for v := 0; v < n; v++ {
		dv := dst[v]
		for a := adj.head[v]; a < adj.head[v+1]; a++ {
			u := adj.to[a]
			if !cur.test(u) {
				continue
			}
			nd := prev[u] + (arcNum[a]+round)>>shift
			if nd < dv && nd <= cap64 {
				dv = nd
			}
		}
		if dv < dst[v] {
			dst[v] = dv
			nxt.set(int32(v))
			improved++
		}
	}
	ws.curBits, ws.nxtBits = nxt, cur
	return improved
}

// deltaBounded answers a bounded-hop call through the delta-stepping
// engine and reports whether the result is valid for hop budget l. The
// engine computes unbounded shortest distances plus the minimum hop
// count among min-weight paths; when every reached vertex has such a
// path within the budget (always true for l >= n-1: no simple path is
// longer, and positive weights make non-simple paths never shorter),
// the bounded-hop answer coincides and dst is final. Otherwise the
// caller falls back.
func (ws *DistWorkspace) deltaBounded(dst []int64, src, l int, arcNum []int64, shift uint, cap64 int64) bool {
	n := ws.adj.n
	ws.hops = growInt64(ws.hops, n)
	if !ws.deltaRun(dst, ws.hops, src, arcNum, shift, cap64) {
		return false
	}
	if l >= n-1 {
		return true
	}
	for v := 0; v < n; v++ {
		if dst[v] != Inf && ws.hops[v] > int64(l) {
			return false
		}
	}
	return true
}

// deltaRun is the delta-stepping bucket engine (Meyer & Sanders): it
// writes the shortest shifted-ceiling distances from src into dst and
// the minimum hop count among min-weight paths into hops (Dijkstra's
// hop tie-break), discarding any relaxation whose tentative distance
// exceeds cap (sound under positive weights: prefixes of a path are
// never longer than the path). The bucket width is derived from the
// maximum rounded arc weight, Δ = ⌈(W+1)/4⌉-ish (W/4+1), so the cyclic
// bucket array needs W/Δ+2 slots and a run touches at most
// maxdist/Δ ≈ 4·maxdist/W bucket indices.
//
// Draining order: buckets are settled in increasing index order; within
// a bucket, light arcs (weight < Δ) are re-relaxed until the bucket
// reaches its fixpoint, then each settled node relaxes its heavy arcs
// once at its final distance. Every improvement re-queues the improved
// node, so each label is eventually relaxed at its final value and the
// output is the order-independent lexicographic (distance, hops)
// fixpoint — which is what keeps the numerators byte-identical to the
// hop-synchronous engines regardless of batch order.
//
// Returns false without completing if any rounded arc weight is
// non-positive (a degenerate overlay the bucket invariants cannot
// carry); callers fall back to the hop-synchronous engines.
func (ws *DistWorkspace) deltaRun(dst, hops []int64, src int, arcNum []int64, shift uint, cap64 int64) bool {
	adj := ws.adj
	n := adj.n
	round := int64(1)<<shift - 1

	// Hoist the extreme rounded weights: the graph's own weights have a
	// precomputed max (and AddEdge guarantees positivity); overlays are
	// scanned once, which is O(m) against the run's Ω(m) work.
	maxw := int64(1)
	if len(arcNum) > 0 {
		if shift == 0 && &arcNum[0] == &adj.w[0] {
			maxw = adj.maxW
		} else {
			minw := int64(1) << 62
			maxw = 0
			for _, num := range arcNum {
				w := (num + round) >> shift
				if w > maxw {
					maxw = w
				}
				if w < minw {
					minw = w
				}
			}
			if minw < 1 {
				return false
			}
		}
	}
	if maxw < 1 {
		maxw = 1
	}

	for i := 0; i < n; i++ {
		dst[i] = Inf
		hops[i] = Inf
	}
	dst[src], hops[src] = 0, 0

	delta := maxw/4 + 1
	nb := int(maxw/delta) + 2
	if cap(ws.buckets) < nb {
		ws.buckets = make([][]int32, nb)
	} else {
		ws.buckets = ws.buckets[:nb]
		for i := range ws.buckets {
			ws.buckets[i] = ws.buckets[i][:0]
		}
	}
	ws.settled = growInt32Cap(ws.settled, n)
	ws.inSettled = growBool(ws.inSettled, n)

	ws.buckets[0] = append(ws.buckets[0], int32(src))
	pending := 1
	// relax applies one (distance, hops)-lexicographic relaxation and
	// re-queues on improvement. Queued distances never precede the
	// bucket being settled, and span less than nb·Δ, so the cyclic
	// array never aliases two live indices.
	for b := int64(0); pending > 0; b++ {
		slot := int(b % int64(nb))
		if len(ws.buckets[slot]) == 0 {
			continue
		}
		settled := ws.settled[:0]
		for len(ws.buckets[slot]) > 0 {
			batch := ws.buckets[slot]
			ws.buckets[slot] = ws.batch[:0]
			for _, u := range batch {
				pending--
				if dst[u]/delta != b {
					continue // stale queue entry: u settled in an earlier bucket
				}
				if !ws.inSettled[u] {
					ws.inSettled[u] = true
					settled = append(settled, u)
				}
				du, hu := dst[u], hops[u]
				for a := adj.head[u]; a < adj.head[u+1]; a++ {
					w := (arcNum[a] + round) >> shift
					if w >= delta {
						continue // heavy: relaxed once the bucket settles
					}
					v := adj.to[a]
					nd, nh := du+w, hu+1
					if nd > cap64 {
						continue
					}
					if nd < dst[v] || (nd == dst[v] && nh < hops[v]) {
						dst[v], hops[v] = nd, nh
						s2 := int((nd / delta) % int64(nb))
						ws.buckets[s2] = append(ws.buckets[s2], v)
						pending++
					}
				}
			}
			ws.batch = batch[:0]
		}
		for _, u := range settled {
			ws.inSettled[u] = false
			du, hu := dst[u], hops[u]
			for a := adj.head[u]; a < adj.head[u+1]; a++ {
				w := (arcNum[a] + round) >> shift
				if w < delta {
					continue
				}
				v := adj.to[a]
				nd, nh := du+w, hu+1
				if nd > cap64 {
					continue
				}
				if nd < dst[v] || (nd == dst[v] && nh < hops[v]) {
					dst[v], hops[v] = nd, nh
					s2 := int((nd / delta) % int64(nb))
					ws.buckets[s2] = append(ws.buckets[s2], v)
					pending++
				}
			}
		}
		ws.settled = settled[:0]
	}
	return true
}

// DijkstraInto writes d_{G,w}(src, ·) into dst (grown as needed) and
// returns it — the workspace counterpart of Graph.Dijkstra. The hop
// counts the algorithm tracks land in workspace scratch, not a
// per-call allocation.
func (ws *DistWorkspace) DijkstraInto(dst []int64, src int) []int64 {
	dst, ws.hops = ws.DijkstraHopsInto(dst, ws.hops, src)
	return dst
}

// DijkstraHopsInto is the workspace counterpart of Graph.DijkstraHops:
// weighted distances plus exact hop counts of minimum-weight paths
// (ties on weight broken by hops), with the heap and both output arrays
// reused across calls. Under KernelDelta the labels are computed by the
// delta-stepping bucket engine instead of the binary heap — both settle
// to the same lexicographic (distance, hops) fixpoint, so the outputs
// are bit-identical.
func (ws *DistWorkspace) DijkstraHopsInto(dst, hops []int64, src int) ([]int64, []int64) {
	adj := ws.adj
	n := adj.n
	if src < 0 || src >= n {
		panic("graph: DijkstraHopsInto source out of range")
	}
	dst = growInt64(dst, n)
	hops = growInt64(hops, n)
	if ws.mode == KernelDelta && ws.deltaRun(dst, hops, src, adj.w, 0, Inf) {
		return dst, hops
	}
	for i := 0; i < n; i++ {
		dst[i] = Inf
		hops[i] = Inf
	}
	dst[src], hops[src] = 0, 0
	ws.heap = append(ws.heap[:0], distItem{node: src})
	for len(ws.heap) > 0 {
		it := ws.heapPop()
		if it.d > dst[it.node] || (it.d == dst[it.node] && it.hops > hops[it.node]) {
			continue
		}
		for a := adj.head[it.node]; a < adj.head[it.node+1]; a++ {
			v := int(adj.to[a])
			nd, nh := it.d+adj.w[a], it.hops+1
			if nd < dst[v] || (nd == dst[v] && nh < hops[v]) {
				dst[v], hops[v] = nd, nh
				ws.heapPush(distItem{node: v, d: nd, hops: nh})
			}
		}
	}
	return dst, hops
}

// heapPush and heapPop are the distHeap sift operations open-coded on
// the workspace's reusable slice: container/heap would box every
// distItem into an interface value, allocating per push.
func (ws *DistWorkspace) heapPush(it distItem) {
	h := append(ws.heap, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.Less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	ws.heap = h
}

func (ws *DistWorkspace) heapPop() distItem {
	h := ws.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < last && h.Less(l, least) {
			least = l
		}
		if r < last && h.Less(r, least) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	ws.heap = h
	return top
}

// BFSInto writes unweighted hop counts from src into dst (grown as
// needed) and returns it — the workspace counterpart of Graph.BFS.
// Under the auto and dense modes it runs the direction-optimizing
// (Beamer) variant: top-down levels flip to bottom-up pulls — which
// break at the first parented neighbor — when the frontier's arc
// volume dominates the unexplored arc volume, and back when the
// frontier thins. Levels are canonical (a vertex's level is its hop
// distance, whatever order discovers it), so every mode returns
// bit-identical arrays.
func (ws *DistWorkspace) BFSInto(dst []int64, src int) []int64 {
	adj := ws.adj
	n := adj.n
	if src < 0 || src >= n {
		panic("graph: BFSInto source out of range")
	}
	dst = growInt64(dst, n)
	for i := range dst {
		dst[i] = Inf
	}
	dst[src] = 0
	ws.hopModes = ws.hopModes[:0]
	if ws.mode == KernelSparse || ws.mode == KernelDelta {
		// Delta-stepping over unit weights is exactly top-down BFS; the
		// sparse mode is the verbatim PR 3 queue.
		ws.bfsTopDown(dst, src)
		return dst
	}
	ws.bfsOptimized(dst, src, ws.mode)
	return dst
}

// bfsTopDown is the single-queue top-down BFS.
func (ws *DistWorkspace) bfsTopDown(dst []int64, src int) {
	adj := ws.adj
	queue := append(ws.front[:0], int32(src))
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for a := adj.head[u]; a < adj.head[u+1]; a++ {
			v := adj.to[a]
			if dst[v] == Inf {
				dst[v] = dst[u] + 1
				queue = append(queue, v)
			}
		}
	}
	ws.front = queue[:0]
}

// bfsOptimized is the level-synchronous direction-optimizing BFS. The
// crossover is consulted only at level boundaries, on the pure
// heuristics of kernelmode.go.
func (ws *DistWorkspace) bfsOptimized(dst []int64, src int, mode KernelMode) {
	adj := ws.adj
	n := adj.n
	ws.front = growInt32Cap(ws.front, n)
	ws.front = append(ws.front, int32(src))
	ws.next = growInt32Cap(ws.next, n)
	deg := func(v int32) int { return int(adj.head[v+1] - adj.head[v]) }
	frontN, frontArcs := 1, deg(int32(src))
	unexplored := len(adj.to) - frontArcs
	bottomUp := mode == KernelDense
	if bottomUp {
		ws.curBits = growBits(ws.curBits, n)
		ws.curBits.fillFrom(ws.front)
		ws.nxtBits = growBits(ws.nxtBits, n)
	}
	for level := int64(0); frontN > 0; level++ {
		if mode == KernelAuto {
			if !bottomUp && bfsGoesBottomUp(frontArcs, unexplored) {
				bottomUp = true
				ws.curBits = growBits(ws.curBits, n)
				ws.curBits.fillFrom(ws.front)
				ws.nxtBits = growBits(ws.nxtBits, n)
			} else if bottomUp && bfsGoesTopDown(frontN, n) {
				bottomUp = false
				ws.front = ws.curBits.appendMembers(ws.front[:0])
			}
		}
		if bottomUp {
			ws.hopModes = append(ws.hopModes, KernelDense)
			frontN, frontArcs = ws.bfsBottomUpLevel(dst, level)
		} else {
			ws.hopModes = append(ws.hopModes, KernelSparse)
			frontN, frontArcs = ws.bfsTopDownLevel(dst, level)
		}
		unexplored -= frontArcs
	}
	ws.front = ws.front[:0]
}

// bfsTopDownLevel expands one level through the worklist, returning the
// next frontier's size and incident arc volume.
func (ws *DistWorkspace) bfsTopDownLevel(dst []int64, level int64) (int, int) {
	adj := ws.adj
	next := ws.next[:0]
	arcs := 0
	for _, u := range ws.front {
		for a := adj.head[u]; a < adj.head[u+1]; a++ {
			v := adj.to[a]
			if dst[v] == Inf {
				dst[v] = level + 1
				next = append(next, v)
				arcs += int(adj.head[v+1] - adj.head[v])
			}
		}
	}
	ws.front, ws.next = next, ws.front[:0]
	return len(next), arcs
}

// bfsBottomUpLevel expands one level by pulling: every unvisited vertex
// scans its arcs until it finds a frontier-marked neighbor (the early
// break is the direction-optimizing win on high-degree graphs).
func (ws *DistWorkspace) bfsBottomUpLevel(dst []int64, level int64) (int, int) {
	adj := ws.adj
	n := adj.n
	nxt := ws.nxtBits
	nxt.zero()
	cur := ws.curBits
	found, arcs := 0, 0
	for v := 0; v < n; v++ {
		if dst[v] != Inf {
			continue
		}
		for a := adj.head[v]; a < adj.head[v+1]; a++ {
			if cur.test(adj.to[a]) {
				dst[v] = level + 1
				nxt.set(int32(v))
				found++
				arcs += int(adj.head[v+1] - adj.head[v])
				break
			}
		}
	}
	ws.curBits, ws.nxtBits = nxt, cur
	return found, arcs
}
