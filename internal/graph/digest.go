package graph

import "fmt"

// DigestString renders a digest in the canonical 16-hex-digit form
// ("%016x") used in URLs, JSON responses, and the durable store's
// persisted documents. Both internal/svc and internal/store format
// digests through this one function; their parsers differ (the HTTP
// layer is lenient, the store is strict) but the rendered form is one.
func DigestString(d uint64) string { return fmt.Sprintf("%016x", d) }

// Digest returns a 64-bit FNV-1a digest of the graph's structure: the
// node count followed by every edge (U, V, W) in insertion order. Two
// graphs with the same digest are, modulo hash collisions, the same
// network — the sketch-serving cache of internal/server keys on this
// (with the full parameter tuple) so repeated queries against one
// deployment topology hit the cache. The digest reflects the graph at
// call time: the bulk decoders precompute it in-stream (AddEdge
// invalidates that memo), and otherwise each call walks the edge list.
func (g *Graph) Digest() uint64 {
	if g.digestOK {
		return g.digestVal
	}
	h := digestInit(g.n)
	for _, e := range g.edges {
		h = digestMixEdge(h, e)
	}
	return h
}

// digestInit starts a running graph digest: the FNV-1a offset basis with
// the node count mixed in. Feed every edge in insertion order through
// digestMixEdge to finish.
func digestInit(n int) uint64 {
	return fnvMix(fnvOffset64, uint64(n))
}

// digestMixEdge folds one edge into a running digest.
func digestMixEdge(h uint64, e Edge) uint64 {
	h = fnvMix(h, uint64(e.U))
	h = fnvMix(h, uint64(e.V))
	return fnvMix(h, uint64(e.W))
}

// fnvMix is FNV-1a over the 8 little-endian bytes of x. Once the
// remaining bytes of x are all zero, each step degenerates to
// h = (h ^ 0) * prime — so the tail folds into one multiply by a
// precomputed prime power. Node ids and weights are small in practice,
// which turns 24 sequential multiplies per edge into ~10; the result is
// bit-identical to the plain loop (pinned by TestDigestReference), so no
// persisted digest moves.
func fnvMix(h, x uint64) uint64 {
	k := 8
	for x != 0 {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
		k--
	}
	return h * fnvPrimePow[k]
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvPrimePow[k] is fnvPrime64^k mod 2^64 — the effect of FNV-mixing k
// zero bytes.
var fnvPrimePow = func() (p [9]uint64) {
	p[0] = 1
	for i := 1; i < len(p); i++ {
		p[i] = p[i-1] * fnvPrime64
	}
	return
}()
