package graph

import "fmt"

// DigestString renders a digest in the canonical 16-hex-digit form
// ("%016x") used in URLs, JSON responses, and the durable store's
// persisted documents. Both internal/svc and internal/store format
// digests through this one function; their parsers differ (the HTTP
// layer is lenient, the store is strict) but the rendered form is one.
func DigestString(d uint64) string { return fmt.Sprintf("%016x", d) }

// Digest returns a 64-bit FNV-1a digest of the graph's structure: the
// node count followed by every edge (U, V, W) in insertion order. Two
// graphs with the same digest are, modulo hash collisions, the same
// network — the sketch-serving cache of internal/server keys on this
// (with the full parameter tuple) so repeated queries against one
// deployment topology hit the cache. The digest reflects the graph at
// call time; it is not memoized, so mutating the graph changes it.
func (g *Graph) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(g.n))
	for _, e := range g.edges {
		mix(uint64(e.U))
		mix(uint64(e.V))
		mix(uint64(e.W))
	}
	return h
}
