package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// kernelCases is the graph family the workspace kernel is pinned
// against the reference implementations on: the deterministic shapes
// plus random weighted topologies (including the E14 spine-leaf fabric
// and parallel edges, which generators produce transiently).
func kernelCases() []*Graph {
	rng := rand.New(rand.NewSource(19))
	parallel := New(6)
	parallel.MustAddEdge(0, 1, 3)
	parallel.MustAddEdge(0, 1, 1) // parallel edge, different weight
	parallel.MustAddEdge(1, 2, 2)
	parallel.MustAddEdge(2, 3, 5)
	parallel.MustAddEdge(3, 4, 1)
	parallel.MustAddEdge(0, 4, 9)
	// node 5 isolated: unreachable pairs stay Inf
	return []*Graph{
		Path(9),
		Cycle(7),
		Star(8),
		Grid(4, 5),
		Barbell(5, 4),
		parallel,
		RandomWeights(RandomConnected(40, 110, rng), 11, rng),
		RandomWeights(LowDiameterExpanderish(48, 4, rng), 16, rng),
		RandomWeights(SpineLeaf(3, 5, 4, 2, 1), 7, rng),
		RandomWeights(DiameterControlled(36, 6, rng), 9, rng),
	}
}

func TestWorkspaceBoundedHopMatchesReference(t *testing.T) {
	for gi, g := range kernelCases() {
		ws := NewDistWorkspace(g)
		var got []int64
		for src := 0; src < g.N(); src += 1 + g.N()/7 {
			for _, l := range []int{0, 1, 2, 3, g.N() / 2, g.N(), 3 * g.N()} {
				want := g.BoundedHopDist(src, l)
				got = ws.BoundedHopDistInto(got, src, l)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("graph %d: BoundedHopDistInto(%d, %d) diverged from reference", gi, src, l)
				}
			}
		}
	}
}

func TestWorkspaceDijkstraMatchesReference(t *testing.T) {
	for gi, g := range kernelCases() {
		ws := NewDistWorkspace(g)
		var d, h []int64
		for src := 0; src < g.N(); src++ {
			wantD, wantH := g.DijkstraHops(src)
			d, h = ws.DijkstraHopsInto(d, h, src)
			if !reflect.DeepEqual(d, wantD) || !reflect.DeepEqual(h, wantH) {
				t.Fatalf("graph %d: DijkstraHopsInto(%d) diverged from reference", gi, src)
			}
		}
	}
}

func TestWorkspaceBFSMatchesReference(t *testing.T) {
	for gi, g := range kernelCases() {
		ws := NewDistWorkspace(g)
		var d []int64
		for src := 0; src < g.N(); src++ {
			want := g.BFS(src)
			d = ws.BFSInto(d, src)
			if !reflect.DeepEqual(d, want) {
				t.Fatalf("graph %d: BFSInto(%d) diverged from reference", gi, src)
			}
		}
	}
}

// TestWorkspaceScaledBoundedHop pins the shifted-ceiling overlay form
// against a direct Bellman-Ford under pre-rounded weights: the kernel's
// (num + 2^shift - 1) >> shift must equal relaxing with ⌈num/2^shift⌉.
func TestWorkspaceScaledBoundedHop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for gi, g := range kernelCases() {
		ws := NewDistWorkspace(g)
		num := ws.ArcWeights(nil)
		den := int64(2 * 5 * 8) // a 2Tℓ-style common denominator
		for a := range num {
			num[a] *= den
		}
		for _, shift := range []uint{0, 1, 3, 5} {
			scaled := g.Reweight(func(w int64) int64 {
				return (w*den + int64(1)<<shift - 1) >> shift
			})
			src := rng.Intn(g.N())
			l := 1 + rng.Intn(g.N())
			want := scaled.BoundedHopDist(src, l)
			got := ws.BoundedHopInto(nil, src, l, num, shift, Inf)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("graph %d shift %d: scaled kernel diverged from reweighted reference", gi, shift)
			}
		}
	}
}

// TestWorkspaceCapPruning: with a cap, every finite output must be a
// path length <= cap, and uncapped outputs <= cap must be preserved —
// the exact pruning contract the rounded-distance scales rely on.
func TestWorkspaceCapPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := RandomWeights(RandomConnected(30, 70, rng), 13, rng)
	ws := NewDistWorkspace(g)
	full := g.BoundedHopDist(4, 12)
	for _, cap64 := range []int64{1, 5, 20, 100} {
		got := ws.BoundedHopInto(nil, 4, 12, nil, 0, cap64)
		for v, dv := range got {
			if dv != Inf && dv > cap64 {
				t.Fatalf("cap %d: output %d at node %d exceeds cap", cap64, dv, v)
			}
			if full[v] != Inf && full[v] <= cap64 && dv > full[v] {
				t.Fatalf("cap %d: node %d got %d, reference reaches %d within cap", cap64, v, dv, full[v])
			}
		}
	}
}

func TestWorkspaceCloneSharesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := RandomWeights(RandomConnected(25, 60, rng), 8, rng)
	ws := NewDistWorkspace(g)
	cl := ws.Clone()
	if cl.adj != ws.adj {
		t.Fatal("clone rebuilt the CSR instead of sharing it")
	}
	a := ws.DijkstraInto(nil, 3)
	b := cl.DijkstraInto(nil, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("clone computes different distances")
	}
	if ws.ArcCount() != 2*g.M() {
		t.Fatalf("ArcCount %d != 2m = %d", ws.ArcCount(), 2*g.M())
	}
	if ws.MaxWeight() != g.MaxWeight() {
		t.Fatalf("hoisted MaxWeight %d != %d", ws.MaxWeight(), g.MaxWeight())
	}
}

func TestDigestDistinguishesGraphs(t *testing.T) {
	a := Path(6)
	b := Path(6)
	if a.Digest() != b.Digest() {
		t.Fatal("identical graphs digest differently")
	}
	c := Path(7)
	if a.Digest() == c.Digest() {
		t.Fatal("different sizes digest equal")
	}
	d := Path(6)
	d.MustAddEdge(0, 5, 3)
	if a.Digest() == d.Digest() {
		t.Fatal("extra edge not reflected in digest")
	}
	rng := rand.New(rand.NewSource(37))
	e := RandomWeights(Path(6), 9, rng)
	if a.Digest() == e.Digest() {
		t.Fatal("weights not reflected in digest")
	}
}
