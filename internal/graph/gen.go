package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the workloads used in the experiments. Every generator is
// deterministic given its *rand.Rand, so experiments are reproducible from a
// seed.

// Path returns the path graph on n nodes with unit weights.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

// Cycle returns the cycle on n nodes (n >= 3) with unit weights.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	g := Path(n)
	g.MustAddEdge(n-1, 0, 1)
	return g
}

// Star returns the star with center 0 and n-1 leaves, unit weights.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i, 1)
	}
	return g
}

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j, 1)
		}
	}
	return g
}

// Grid returns the rows x cols grid graph with unit weights.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(at(r, c), at(r, c+1), 1)
			}
			if r+1 < rows {
				g.MustAddEdge(at(r, c), at(r+1, c), 1)
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n nodes with unit
// weights, built by attaching node i to a uniform predecessor.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, rng.Intn(i), 1)
	}
	return g
}

// RandomConnected returns a connected graph with n nodes and approximately m
// edges: a random spanning tree plus m-(n-1) uniform extra edges (duplicates
// are retried a bounded number of times, so the final count can be slightly
// below m on dense requests). Weights are 1.
func RandomConnected(n, m int, rng *rand.Rand) *Graph {
	if m < n-1 {
		panic(fmt.Sprintf("graph: m=%d below spanning-tree size %d", m, n-1))
	}
	g := RandomTree(n, rng)
	type key struct{ u, v int }
	have := make(map[key]bool, m)
	for _, e := range g.Edges() {
		have[key{e.U, e.V}] = true
	}
	extra := m - (n - 1)
	for i := 0; i < extra; i++ {
		placed := false
		for try := 0; try < 32 && !placed; try++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if have[key{u, v}] {
				continue
			}
			have[key{u, v}] = true
			g.MustAddEdge(u, v, 1)
			placed = true
		}
	}
	return g
}

// RandomWeights returns a copy of g with each edge weight drawn uniformly
// from [1, maxW].
func RandomWeights(g *Graph, maxW int64, rng *rand.Rand) *Graph {
	if maxW < 1 {
		panic(fmt.Sprintf("graph: maxW=%d < 1", maxW))
	}
	out := New(g.N())
	for _, e := range g.Edges() {
		out.MustAddEdge(e.U, e.V, 1+rng.Int63n(maxW))
	}
	return out
}

// LowDiameterExpanderish returns a connected n-node graph whose unweighted
// diameter is O(log n): a random tree of low depth (each node attaches to a
// predecessor among the most recent window) plus extra random chords. This
// is the "small D" workload family for Theorem 1.1 sweeps.
func LowDiameterExpanderish(n int, avgDeg int, rng *rand.Rand) *Graph {
	if avgDeg < 2 {
		avgDeg = 2
	}
	g := New(n)
	for i := 1; i < n; i++ {
		// Attach near-uniformly to any predecessor: random recursive trees
		// have O(log n) depth with high probability.
		g.MustAddEdge(i, rng.Intn(i), 1)
	}
	extra := n * (avgDeg - 2) / 2
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1)
		}
	}
	return g.Simplify()
}

// DiameterControlled returns a connected graph on ~n nodes whose unweighted
// diameter is close to the requested d (d >= 2): a backbone path of d+1
// nodes, with the remaining nodes attached in balanced bushy clusters along
// the backbone so eccentricities stay within the backbone's. Used to sweep
// the round complexity as a function of D at fixed n.
func DiameterControlled(n int, d int, rng *rand.Rand) *Graph {
	if d < 2 {
		panic(fmt.Sprintf("graph: DiameterControlled needs d >= 2, got %d", d))
	}
	if d+1 > n {
		panic(fmt.Sprintf("graph: DiameterControlled needs n >= d+1, got n=%d d=%d", n, d))
	}
	g := New(n)
	for i := 0; i < d; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	// Attach remaining nodes to interior backbone positions so they do not
	// extend the diameter: node v attaches to a backbone node at positions
	// 1..d-1 and also to its neighbor on the backbone, keeping ecc bounded.
	for v := d + 1; v < n; v++ {
		pos := 1 + rng.Intn(d-1)
		g.MustAddEdge(v, pos, 1)
		g.MustAddEdge(v, pos+1, 1)
	}
	return g.Simplify()
}

// SpineLeaf returns a two-tier leaf-spine datacenter fabric, the DCN
// topology family of the OWC spine-and-leaf architecture line of work:
// `spines` spine switches each connected to all `leaves` leaf switches
// (core links of weight wCore), and `hosts` hosts per leaf, each attached
// to its leaf by an edge link of weight wEdge. Node layout: spines occupy
// [0, spines), leaves [spines, spines+leaves), and the hosts of leaf j
// follow in order. Any host-to-host route crosses at most 4 hops
// (host-leaf-spine-leaf-host), so the family has constant unweighted
// diameter at arbitrary scale — the extreme low-D regime of the
// Theorem 1.1 bound, where n^0.9·D^0.3 is farthest below the classical
// Θ(n).
func SpineLeaf(spines, leaves, hosts int, wCore, wEdge int64) *Graph {
	if spines < 1 || leaves < 1 || hosts < 0 {
		panic(fmt.Sprintf("graph: SpineLeaf needs spines,leaves >= 1 and hosts >= 0, got %d,%d,%d", spines, leaves, hosts))
	}
	if wCore < 1 || wEdge < 1 {
		panic(fmt.Sprintf("graph: SpineLeaf needs positive weights, got %d,%d", wCore, wEdge))
	}
	n := spines + leaves + leaves*hosts
	g := New(n)
	for l := 0; l < leaves; l++ {
		leaf := spines + l
		for s := 0; s < spines; s++ {
			g.MustAddEdge(s, leaf, wCore)
		}
		base := spines + leaves + l*hosts
		for h := 0; h < hosts; h++ {
			g.MustAddEdge(leaf, base+h, wEdge)
		}
	}
	return g
}

// Barbell returns two k-cliques joined by a path of length bridgeLen (unit
// weights). It is the classic high-diameter, high-density stress workload.
func Barbell(k, bridgeLen int) *Graph {
	if k < 1 || bridgeLen < 1 {
		panic(fmt.Sprintf("graph: barbell needs k,bridgeLen >= 1, got %d,%d", k, bridgeLen))
	}
	n := 2*k + bridgeLen - 1
	g := New(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.MustAddEdge(i, j, 1)
			g.MustAddEdge(n-1-i, n-1-j, 1)
		}
	}
	for i := k - 1; i < n-k; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}
