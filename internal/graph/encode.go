package graph

// This file is the wire codec for the service upload path (internal/svc):
// a line-oriented edge-list format that round-trips a Graph exactly —
// including edge insertion order, which Digest hashes — so a graph
// uploaded to one daemon and re-exported from another keeps its digest.
//
// Format, one record per line:
//
//	# anything after '#' is a comment
//	v <version>
//	n <nodes>
//	<u> <v> <w>
//
// The "v" version header is optional (its absence means version 1, the
// only version defined so far) and, when present, must precede the "n"
// header. The "n" header must come before any edge (blank and comment
// lines may appear anywhere); every following non-empty line is one
// undirected edge. Fields are separated by any run of spaces or tabs.
//
// The durable store (internal/store) always writes the explicit version
// header so a future format bump is detected by the parser instead of
// being misread as edges.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
)

// EdgeListVersion is the current edge-list wire-format version, written
// by FormatEdgeListVersioned and the only version ParseEdgeList accepts.
const EdgeListVersion = 1

// FormatEdgeList renders g in the edge-list wire format. The output
// parses back (ParseEdgeList) to a graph with the same node count, the
// same edges in the same insertion order, and therefore the same Digest.
func FormatEdgeList(g *Graph) []byte {
	return formatEdgeList(g, false)
}

// FormatEdgeListVersioned is FormatEdgeList with an explicit
// "v <EdgeListVersion>" header line, the form persisted by the durable
// store so format evolution is detectable on replay. The parse result
// (and therefore the digest) is identical to the unversioned form.
func FormatEdgeListVersioned(g *Graph) []byte {
	return formatEdgeList(g, true)
}

func formatEdgeList(g *Graph, versioned bool) []byte {
	// Build straight into the returned slice: a strings.Builder here
	// would cost one extra full-buffer copy at the []byte conversion.
	b := make([]byte, 0, 20+24*len(g.edges))
	if versioned {
		b = append(b, 'v', ' ')
		b = strconv.AppendInt(b, EdgeListVersion, 10)
		b = append(b, '\n')
	}
	b = append(b, 'n', ' ')
	b = strconv.AppendInt(b, int64(g.n), 10)
	b = append(b, '\n')
	for _, e := range g.edges {
		b = strconv.AppendInt(b, int64(e.U), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(e.V), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, e.W, 10)
		b = append(b, '\n')
	}
	return b
}

// ParseEdgeList parses the edge-list wire format produced by
// FormatEdgeList (or written by hand). Errors carry the 1-based line
// number. Edge validation is AddEdge's: endpoints in range, no self
// loops, weights >= 1.
func ParseEdgeList(data []byte) (*Graph, error) {
	return ParseEdgeListLimits(data, 0, 0)
}

// ParseEdgeListLimits is ParseEdgeList with hard size bounds checked
// before anything is allocated: a header node count above maxNodes (or
// an edge count crossing maxEdges) fails immediately, so an untrusted
// few-byte input cannot request an enormous adjacency allocation.
// Limits <= 0 are unbounded.
//
// The scan is zero-copy over data: lines and fields are sliced in
// place, never split into fresh strings, so the parser's allocation is
// the graph being built — an over-limit upload is rejected after O(1)
// allocations however large its body is (pinned by
// TestParseEdgeListAllocGuard).
func ParseEdgeListLimits(data []byte, maxNodes, maxEdges int) (*Graph, error) {
	p := edgeListParser{maxNodes: maxNodes, maxEdges: maxEdges}
	for lineNo := 1; len(data) > 0; lineNo++ {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if err := p.line(lineNo, line); err != nil {
			return nil, err
		}
	}
	return p.finish()
}

// DecodeEdgeList reads one edge-list graph from r with the same
// grammar, limits, and line-numbered errors as ParseEdgeListLimits, but
// streaming: one bufio window of the input is resident at a time, so an
// arbitrarily large upload never buffers whole in memory. Lines longer
// than the window (64 KiB — a valid line is under 70 bytes) are
// rejected rather than silently split.
func DecodeEdgeList(r io.Reader, maxNodes, maxEdges int) (*Graph, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	p := edgeListParser{maxNodes: maxNodes, maxEdges: maxEdges}
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadSlice('\n')
		// ErrBufferFull first: the returned prefix is NOT a whole line
		// and must never reach the parser looking like one.
		if err == bufio.ErrBufferFull {
			return nil, fmt.Errorf("graph: line %d: line exceeds %d bytes", lineNo, br.Size())
		}
		if len(line) > 0 {
			if line[len(line)-1] == '\n' {
				line = line[:len(line)-1]
			}
			if perr := p.line(lineNo, line); perr != nil {
				return nil, perr
			}
		}
		if err == io.EOF {
			return p.finish()
		}
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
}

// edgeListParser is the shared per-line state machine behind
// ParseEdgeListLimits (whole-buffer) and DecodeEdgeList (streaming). It
// accumulates the edge list and a per-node degree tally instead of
// calling AddEdge per line, so finish hands both to newDeferred and the
// parse never builds adjacency — ingest-only consumers (Digest, the
// store's re-encode) skip that cost entirely.
// Feed each line (without its trailing '\n') to line, then call finish.
type edgeListParser struct {
	maxNodes, maxEdges int
	n                  int
	haveN              bool
	edges              []Edge
	deg                []int32
	h                  uint64 // running Digest, folded in as edges stream past
	sawVersion         bool
}

func (p *edgeListParser) line(lineNo int, line []byte) error {
	if i := bytes.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	f0, rest := nextField(line)
	if len(f0) == 0 {
		return nil
	}
	f1, rest := nextField(rest)
	f2, rest := nextField(rest)
	extra, _ := nextField(rest)
	nf := 1
	switch {
	case len(extra) > 0:
		nf = 4 // "too many fields" marker; exact count never matters
	case len(f2) > 0:
		nf = 3
	case len(f1) > 0:
		nf = 2
	}
	if !p.haveN && !p.sawVersion && len(f0) == 1 && f0[0] == 'v' {
		if nf != 2 {
			return fmt.Errorf("graph: line %d: expected version header \"v <version>\", got %q", lineNo, line)
		}
		ver, ok := atoiBytes(f1)
		if !ok {
			return fmt.Errorf("graph: line %d: bad version %q", lineNo, f1)
		}
		if ver != EdgeListVersion {
			return fmt.Errorf("graph: line %d: unsupported edge-list version %d (this build reads version %d)", lineNo, ver, EdgeListVersion)
		}
		p.sawVersion = true
		return nil
	}
	if !p.haveN {
		if nf != 2 || len(f0) != 1 || f0[0] != 'n' {
			return fmt.Errorf("graph: line %d: expected header \"n <nodes>\", got %q", lineNo, line)
		}
		n, ok := atoiBytes(f1)
		if !ok || n < 0 {
			return fmt.Errorf("graph: line %d: bad node count %q", lineNo, f1)
		}
		if p.maxNodes > 0 && n > int64(p.maxNodes) {
			return fmt.Errorf("graph: line %d: node count %d exceeds limit %d", lineNo, n, p.maxNodes)
		}
		// The int32 ceiling matches the binary decoder's degree tally; a
		// graph that large could not be expressed in this format anyway
		// (every edge line is at least six bytes). Checked after the
		// configured limit so a bounded parse still reports the limit.
		if n > math.MaxInt32 {
			return fmt.Errorf("graph: line %d: bad node count %q", lineNo, f1)
		}
		p.n = int(n)
		p.haveN = true
		p.deg = make([]int32, n)
		p.h = digestInit(p.n)
		return nil
	}
	// A second "n" header is always a mistake worth naming precisely:
	// it would otherwise fall through to the edge branch and report a
	// misleading "expected \"<u> <v> <w>\"".
	if len(f0) == 1 && f0[0] == 'n' && nf == 2 {
		if len(p.edges) > 0 {
			return fmt.Errorf("graph: line %d: \"n\" header after edges", lineNo)
		}
		return fmt.Errorf("graph: line %d: duplicate \"n\" header", lineNo)
	}
	if nf != 3 {
		return fmt.Errorf("graph: line %d: expected \"<u> <v> <w>\", got %q", lineNo, line)
	}
	u, ok1 := atoiBytes(f0)
	v, ok2 := atoiBytes(f1)
	w, ok3 := atoiBytes(f2)
	if !ok1 || !ok2 || !ok3 || u > math.MaxInt || v > math.MaxInt {
		return fmt.Errorf("graph: line %d: non-numeric edge %q", lineNo, line)
	}
	if p.maxEdges > 0 && len(p.edges) >= p.maxEdges {
		return fmt.Errorf("graph: line %d: edge count exceeds limit %d", lineNo, p.maxEdges)
	}
	if err := validateEdge(p.n, int(u), int(v), w); err != nil {
		return fmt.Errorf("graph: line %d: %w", lineNo, err)
	}
	if u > v {
		u, v = v, u
	}
	e := Edge{U: int(u), V: int(v), W: w}
	p.edges = append(p.edges, e)
	p.deg[u]++
	p.deg[v]++
	// Folding the digest into the parse loop hides the hash's serial
	// multiply chain behind the scanning work; the upload handler's
	// Digest call then costs nothing instead of a second edge-list walk.
	p.h = digestMixEdge(p.h, e)
	return nil
}

func (p *edgeListParser) finish() (*Graph, error) {
	if !p.haveN {
		return nil, fmt.Errorf("graph: empty edge list (missing \"n <nodes>\" header)")
	}
	g := newDeferred(p.n, p.edges, p.deg)
	g.digestVal, g.digestOK = p.h, true
	return g, nil
}

// isFieldSep reports the in-line separators of the wire format: the
// ASCII whitespace set strings.Fields split on (minus '\n', which the
// line scanner already consumed). Including '\r' keeps CRLF inputs
// parsing as before.
func isFieldSep(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// nextField slices the first separator-delimited field off line,
// returning the field (empty when the line is blank) and the remainder.
func nextField(line []byte) (field, rest []byte) {
	i := 0
	for i < len(line) && isFieldSep(line[i]) {
		i++
	}
	j := i
	for j < len(line) && !isFieldSep(line[j]) {
		j++
	}
	return line[i:j], line[j:]
}

// atoiBytes is strconv.ParseInt(string(b), 10, 64) without the string
// conversion, so the hot parse loop stays allocation-free. ok is false
// on empty input, stray bytes, or int64 overflow.
func atoiBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := int64(c - '0')
		if n > (math.MaxInt64-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	if neg {
		n = -n
	}
	return n, true
}
