package graph

// This file is the wire codec for the service upload path (internal/svc):
// a line-oriented edge-list format that round-trips a Graph exactly —
// including edge insertion order, which Digest hashes — so a graph
// uploaded to one daemon and re-exported from another keeps its digest.
//
// Format, one record per line:
//
//	# anything after '#' is a comment
//	n <nodes>
//	<u> <v> <w>
//
// The "n" header must come first (blank and comment lines may precede
// it); every following non-empty line is one undirected edge. Fields are
// separated by any run of spaces or tabs.

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatEdgeList renders g in the edge-list wire format. The output
// parses back (ParseEdgeList) to a graph with the same node count, the
// same edges in the same insertion order, and therefore the same Digest.
func FormatEdgeList(g *Graph) []byte {
	var b strings.Builder
	b.Grow(16 + 24*len(g.edges))
	b.WriteString("n ")
	b.WriteString(strconv.Itoa(g.n))
	b.WriteByte('\n')
	for _, e := range g.edges {
		b.WriteString(strconv.Itoa(e.U))
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(e.V))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(e.W, 10))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseEdgeList parses the edge-list wire format produced by
// FormatEdgeList (or written by hand). Errors carry the 1-based line
// number. Edge validation is AddEdge's: endpoints in range, no self
// loops, weights >= 1.
func ParseEdgeList(data []byte) (*Graph, error) {
	return ParseEdgeListLimits(data, 0, 0)
}

// ParseEdgeListLimits is ParseEdgeList with hard size bounds checked
// before anything is allocated: a header node count above maxNodes (or
// an edge count crossing maxEdges) fails immediately, so an untrusted
// few-byte input cannot request an enormous adjacency allocation.
// Limits <= 0 are unbounded.
func ParseEdgeListLimits(data []byte, maxNodes, maxEdges int) (*Graph, error) {
	var g *Graph
	for lineNo, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if g == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <nodes>\", got %q", lineNo+1, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo+1, fields[1])
			}
			if maxNodes > 0 && n > maxNodes {
				return nil, fmt.Errorf("graph: line %d: node count %d exceeds limit %d", lineNo+1, n, maxNodes)
			}
			g = New(n)
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected \"<u> <v> <w>\", got %q", lineNo+1, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		w, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: line %d: non-numeric edge %q", lineNo+1, line)
		}
		if maxEdges > 0 && g.M() >= maxEdges {
			return nil, fmt.Errorf("graph: line %d: edge count exceeds limit %d", lineNo+1, maxEdges)
		}
		if err := g.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo+1, err)
		}
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty edge list (missing \"n <nodes>\" header)")
	}
	return g, nil
}
