package graph

// This file is the wire codec for the service upload path (internal/svc):
// a line-oriented edge-list format that round-trips a Graph exactly —
// including edge insertion order, which Digest hashes — so a graph
// uploaded to one daemon and re-exported from another keeps its digest.
//
// Format, one record per line:
//
//	# anything after '#' is a comment
//	v <version>
//	n <nodes>
//	<u> <v> <w>
//
// The "v" version header is optional (its absence means version 1, the
// only version defined so far) and, when present, must precede the "n"
// header. The "n" header must come before any edge (blank and comment
// lines may appear anywhere); every following non-empty line is one
// undirected edge. Fields are separated by any run of spaces or tabs.
//
// The durable store (internal/store) always writes the explicit version
// header so a future format bump is detected by the parser instead of
// being misread as edges.

import (
	"fmt"
	"strconv"
	"strings"
)

// EdgeListVersion is the current edge-list wire-format version, written
// by FormatEdgeListVersioned and the only version ParseEdgeList accepts.
const EdgeListVersion = 1

// FormatEdgeList renders g in the edge-list wire format. The output
// parses back (ParseEdgeList) to a graph with the same node count, the
// same edges in the same insertion order, and therefore the same Digest.
func FormatEdgeList(g *Graph) []byte {
	return formatEdgeList(g, false)
}

// FormatEdgeListVersioned is FormatEdgeList with an explicit
// "v <EdgeListVersion>" header line, the form persisted by the durable
// store so format evolution is detectable on replay. The parse result
// (and therefore the digest) is identical to the unversioned form.
func FormatEdgeListVersioned(g *Graph) []byte {
	return formatEdgeList(g, true)
}

func formatEdgeList(g *Graph, versioned bool) []byte {
	var b strings.Builder
	b.Grow(20 + 24*len(g.edges))
	if versioned {
		b.WriteString("v ")
		b.WriteString(strconv.Itoa(EdgeListVersion))
		b.WriteByte('\n')
	}
	b.WriteString("n ")
	b.WriteString(strconv.Itoa(g.n))
	b.WriteByte('\n')
	for _, e := range g.edges {
		b.WriteString(strconv.Itoa(e.U))
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(e.V))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(e.W, 10))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseEdgeList parses the edge-list wire format produced by
// FormatEdgeList (or written by hand). Errors carry the 1-based line
// number. Edge validation is AddEdge's: endpoints in range, no self
// loops, weights >= 1.
func ParseEdgeList(data []byte) (*Graph, error) {
	return ParseEdgeListLimits(data, 0, 0)
}

// ParseEdgeListLimits is ParseEdgeList with hard size bounds checked
// before anything is allocated: a header node count above maxNodes (or
// an edge count crossing maxEdges) fails immediately, so an untrusted
// few-byte input cannot request an enormous adjacency allocation.
// Limits <= 0 are unbounded.
func ParseEdgeListLimits(data []byte, maxNodes, maxEdges int) (*Graph, error) {
	var g *Graph
	sawVersion := false
	for lineNo, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if g == nil && !sawVersion && fields[0] == "v" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: expected version header \"v <version>\", got %q", lineNo+1, line)
			}
			ver, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad version %q", lineNo+1, fields[1])
			}
			if ver != EdgeListVersion {
				return nil, fmt.Errorf("graph: line %d: unsupported edge-list version %d (this build reads version %d)", lineNo+1, ver, EdgeListVersion)
			}
			sawVersion = true
			continue
		}
		if g == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <nodes>\", got %q", lineNo+1, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo+1, fields[1])
			}
			if maxNodes > 0 && n > maxNodes {
				return nil, fmt.Errorf("graph: line %d: node count %d exceeds limit %d", lineNo+1, n, maxNodes)
			}
			g = New(n)
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected \"<u> <v> <w>\", got %q", lineNo+1, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		w, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: line %d: non-numeric edge %q", lineNo+1, line)
		}
		if maxEdges > 0 && g.M() >= maxEdges {
			return nil, fmt.Errorf("graph: line %d: edge count exceeds limit %d", lineNo+1, maxEdges)
		}
		if err := g.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo+1, err)
		}
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty edge list (missing \"n <nodes>\" header)")
	}
	return g, nil
}
