package graph

// This file is the wire codec for the service upload path (internal/svc):
// a line-oriented edge-list format that round-trips a Graph exactly —
// including edge insertion order, which Digest hashes — so a graph
// uploaded to one daemon and re-exported from another keeps its digest.
//
// Format, one record per line:
//
//	# anything after '#' is a comment
//	v <version>
//	n <nodes>
//	<u> <v> <w>
//
// The "v" version header is optional (its absence means version 1, the
// only version defined so far) and, when present, must precede the "n"
// header. The "n" header must come before any edge (blank and comment
// lines may appear anywhere); every following non-empty line is one
// undirected edge. Fields are separated by any run of spaces or tabs.
//
// The durable store (internal/store) always writes the explicit version
// header so a future format bump is detected by the parser instead of
// being misread as edges.

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// EdgeListVersion is the current edge-list wire-format version, written
// by FormatEdgeListVersioned and the only version ParseEdgeList accepts.
const EdgeListVersion = 1

// FormatEdgeList renders g in the edge-list wire format. The output
// parses back (ParseEdgeList) to a graph with the same node count, the
// same edges in the same insertion order, and therefore the same Digest.
func FormatEdgeList(g *Graph) []byte {
	return formatEdgeList(g, false)
}

// FormatEdgeListVersioned is FormatEdgeList with an explicit
// "v <EdgeListVersion>" header line, the form persisted by the durable
// store so format evolution is detectable on replay. The parse result
// (and therefore the digest) is identical to the unversioned form.
func FormatEdgeListVersioned(g *Graph) []byte {
	return formatEdgeList(g, true)
}

func formatEdgeList(g *Graph, versioned bool) []byte {
	var b strings.Builder
	b.Grow(20 + 24*len(g.edges))
	if versioned {
		b.WriteString("v ")
		b.WriteString(strconv.Itoa(EdgeListVersion))
		b.WriteByte('\n')
	}
	b.WriteString("n ")
	b.WriteString(strconv.Itoa(g.n))
	b.WriteByte('\n')
	for _, e := range g.edges {
		b.WriteString(strconv.Itoa(e.U))
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(e.V))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(e.W, 10))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseEdgeList parses the edge-list wire format produced by
// FormatEdgeList (or written by hand). Errors carry the 1-based line
// number. Edge validation is AddEdge's: endpoints in range, no self
// loops, weights >= 1.
func ParseEdgeList(data []byte) (*Graph, error) {
	return ParseEdgeListLimits(data, 0, 0)
}

// ParseEdgeListLimits is ParseEdgeList with hard size bounds checked
// before anything is allocated: a header node count above maxNodes (or
// an edge count crossing maxEdges) fails immediately, so an untrusted
// few-byte input cannot request an enormous adjacency allocation.
// Limits <= 0 are unbounded.
//
// The scan is zero-copy over data: lines and fields are sliced in
// place, never split into fresh strings, so the parser's allocation is
// the graph being built — an over-limit upload is rejected after O(1)
// allocations however large its body is (pinned by
// TestParseEdgeListAllocGuard).
func ParseEdgeListLimits(data []byte, maxNodes, maxEdges int) (*Graph, error) {
	var g *Graph
	sawVersion := false
	for lineNo := 1; len(data) > 0; lineNo++ {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if i := bytes.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f0, rest := nextField(line)
		if len(f0) == 0 {
			continue
		}
		f1, rest := nextField(rest)
		f2, rest := nextField(rest)
		extra, _ := nextField(rest)
		nf := 1
		switch {
		case len(extra) > 0:
			nf = 4 // "too many fields" marker; exact count never matters
		case len(f2) > 0:
			nf = 3
		case len(f1) > 0:
			nf = 2
		}
		if g == nil && !sawVersion && len(f0) == 1 && f0[0] == 'v' {
			if nf != 2 {
				return nil, fmt.Errorf("graph: line %d: expected version header \"v <version>\", got %q", lineNo, line)
			}
			ver, ok := atoiBytes(f1)
			if !ok {
				return nil, fmt.Errorf("graph: line %d: bad version %q", lineNo, f1)
			}
			if ver != EdgeListVersion {
				return nil, fmt.Errorf("graph: line %d: unsupported edge-list version %d (this build reads version %d)", lineNo, ver, EdgeListVersion)
			}
			sawVersion = true
			continue
		}
		if g == nil {
			if nf != 2 || len(f0) != 1 || f0[0] != 'n' {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <nodes>\", got %q", lineNo, line)
			}
			n, ok := atoiBytes(f1)
			if !ok || n < 0 || n > math.MaxInt {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, f1)
			}
			if maxNodes > 0 && n > int64(maxNodes) {
				return nil, fmt.Errorf("graph: line %d: node count %d exceeds limit %d", lineNo, n, maxNodes)
			}
			g = New(int(n))
			continue
		}
		if nf != 3 {
			return nil, fmt.Errorf("graph: line %d: expected \"<u> <v> <w>\", got %q", lineNo, line)
		}
		u, ok1 := atoiBytes(f0)
		v, ok2 := atoiBytes(f1)
		w, ok3 := atoiBytes(f2)
		if !ok1 || !ok2 || !ok3 || u > math.MaxInt || v > math.MaxInt {
			return nil, fmt.Errorf("graph: line %d: non-numeric edge %q", lineNo, line)
		}
		if maxEdges > 0 && g.M() >= maxEdges {
			return nil, fmt.Errorf("graph: line %d: edge count exceeds limit %d", lineNo, maxEdges)
		}
		if err := g.AddEdge(int(u), int(v), w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty edge list (missing \"n <nodes>\" header)")
	}
	return g, nil
}

// isFieldSep reports the in-line separators of the wire format: the
// ASCII whitespace set strings.Fields split on (minus '\n', which the
// line scanner already consumed). Including '\r' keeps CRLF inputs
// parsing as before.
func isFieldSep(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// nextField slices the first separator-delimited field off line,
// returning the field (empty when the line is blank) and the remainder.
func nextField(line []byte) (field, rest []byte) {
	i := 0
	for i < len(line) && isFieldSep(line[i]) {
		i++
	}
	j := i
	for j < len(line) && !isFieldSep(line[j]) {
		j++
	}
	return line[i:j], line[j:]
}

// atoiBytes is strconv.ParseInt(string(b), 10, 64) without the string
// conversion, so the hot parse loop stays allocation-free. ok is false
// on empty input, stray bytes, or int64 overflow.
func atoiBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := int64(c - '0')
		if n > (math.MaxInt64-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	if neg {
		n = -n
	}
	return n, true
}
