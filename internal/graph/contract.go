package graph

// Contraction of unit-weight edges (Lemma 4.3). Contracting an edge merges
// its endpoints; parallel edges arising from a contraction keep only the
// minimum weight. Lemma 4.3 sandwiches the metrics of the original graph by
// those of the contracted graph: D_{G',w} <= D_{G,w} <= D_{G',w} + n, and
// the same for the radius.

// Contraction is the result of contracting all weight-1 edges of a graph.
type Contraction struct {
	// Graph is the contracted graph G'.
	Graph *Graph
	// Super maps each original node to its supernode in G'.
	Super []int
	// Members lists, for each supernode, the original nodes merged into it.
	Members [][]int
}

// ContractUnitEdges contracts every edge of weight exactly 1 and returns the
// contracted graph with the node mapping. Edges with both endpoints in the
// same supernode vanish; parallel edges keep the minimum weight.
func (g *Graph) ContractUnitEdges() *Contraction {
	// Union-find over unit edges.
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range g.edges {
		if e.W == 1 {
			union(e.U, e.V)
		}
	}

	// Renumber roots densely, preserving original node order.
	super := make([]int, g.n)
	id := make(map[int]int, g.n)
	for u := 0; u < g.n; u++ {
		r := find(u)
		s, ok := id[r]
		if !ok {
			s = len(id)
			id[r] = s
		}
		super[u] = s
	}
	members := make([][]int, len(id))
	for u := 0; u < g.n; u++ {
		members[super[u]] = append(members[super[u]], u)
	}

	// Build contracted multigraph then simplify.
	raw := New(len(id))
	for _, e := range g.edges {
		su, sv := super[e.U], super[e.V]
		if su != sv {
			raw.MustAddEdge(su, sv, e.W)
		}
	}
	return &Contraction{Graph: raw.Simplify(), Super: super, Members: members}
}

// CheckSandwich verifies Lemma 4.3 on this contraction: for the original
// graph g it checks D_{G'} <= D_G <= D_{G'} + n and R_{G'} <= R_G <= R_{G'}
// + n, returning the four metric values. It is exact and intended for tests
// and experiment harnesses on small graphs.
func (c *Contraction) CheckSandwich(original *Graph) (dOrig, dContr, rOrig, rContr int64, ok bool) {
	dOrig, rOrig = original.Diameter(), original.Radius()
	dContr, rContr = c.Graph.Diameter(), c.Graph.Radius()
	n := int64(original.N())
	ok = dContr <= dOrig && dOrig <= dContr+n && rContr <= rOrig && rOrig <= rContr+n
	return dOrig, dContr, rOrig, rContr, ok
}
