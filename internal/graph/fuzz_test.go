package graph

import "testing"

// FuzzSpineLeafGen checks the spine-leaf generator over its whole
// parameter domain: structural invariants hold (Validate), the fabric is
// connected, every weight is positive, and every node's degree matches
// the two-tier spec exactly.
func FuzzSpineLeafGen(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(0), uint16(1), uint16(1))
	f.Add(uint8(2), uint8(4), uint8(8), uint16(3), uint16(1))
	f.Add(uint8(16), uint8(32), uint8(4), uint16(100), uint16(7))
	f.Add(uint8(3), uint8(2), uint8(1), uint16(65535), uint16(2))
	f.Fuzz(func(t *testing.T, spinesRaw, leavesRaw, hostsRaw uint8, wCoreRaw, wEdgeRaw uint16) {
		spines := 1 + int(spinesRaw)%32
		leaves := 1 + int(leavesRaw)%32
		hosts := int(hostsRaw) % 16
		wCore := 1 + int64(wCoreRaw)
		wEdge := 1 + int64(wEdgeRaw)

		g := SpineLeaf(spines, leaves, hosts, wCore, wEdge)

		if err := g.Validate(); err != nil {
			t.Fatalf("invalid graph: %v", err)
		}
		if !g.Connected() {
			t.Fatal("fabric not connected")
		}
		if want := spines + leaves + leaves*hosts; g.N() != want {
			t.Fatalf("n = %d, want %d", g.N(), want)
		}
		if want := spines*leaves + leaves*hosts; g.M() != want {
			t.Fatalf("m = %d, want %d", g.M(), want)
		}
		for _, e := range g.Edges() {
			if e.W != wCore && e.W != wEdge {
				t.Fatalf("edge {%d,%d} has weight %d, want %d or %d", e.U, e.V, e.W, wCore, wEdge)
			}
		}
		for v := 0; v < g.N(); v++ {
			deg := g.Degree(v)
			switch {
			case v < spines:
				if deg != leaves {
					t.Fatalf("spine %d has degree %d, want %d", v, deg, leaves)
				}
			case v < spines+leaves:
				if deg != spines+hosts {
					t.Fatalf("leaf %d has degree %d, want %d", v, deg, spines+hosts)
				}
			default:
				if deg != 1 {
					t.Fatalf("host %d has degree %d, want 1", v, deg)
				}
			}
		}
		// Hop structure: any two hosts are within 4 unweighted hops.
		if hosts > 0 {
			d := g.Unweighted().BFS(spines + leaves)
			for v := spines + leaves; v < g.N(); v++ {
				if d[v] > 4 {
					t.Fatalf("host %d is %d hops from host %d, want <= 4", v, d[v], spines+leaves)
				}
			}
		}
	})
}
