package graph

// Component benchmarks for the ingest path: the two wire decoders and
// the digest, each over the same million-edge graph BENCH_ingest.json's
// end-to-end runs use. -order in cmd/qload switches between the two
// layouts priced here: sorted insertion order is the canonical
// bulk-export layout (FormatBinary omits its permutation section and the
// decoder streams edges in insertion order), random order pays the
// permuted decode.

import (
	"math/rand"
	"sort"
	"testing"
)

func benchIngestGraph(sorted bool) *Graph {
	rng := rand.New(rand.NewSource(7))
	g := RandomWeights(RandomConnected(125000, 1000000, rng), 16, rng)
	if !sorted {
		return g
	}
	es := append([]Edge(nil), g.Edges()...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	sg := New(g.N())
	for _, e := range es {
		sg.MustAddEdge(e.U, e.V, e.W)
	}
	return sg
}

func BenchmarkIngestParseText(b *testing.B) {
	body := FormatEdgeListVersioned(benchIngestGraph(true))
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseEdgeListLimits(body, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestParseBinarySorted(b *testing.B) {
	body := FormatBinary(benchIngestGraph(true))
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseBinary(body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestParseBinaryPermuted(b *testing.B) {
	body := FormatBinary(benchIngestGraph(false))
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseBinary(body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestDigest(b *testing.B) {
	// Force the uncached walk: the decoders memoize the digest they fold
	// into their parse loops, so this prices the standalone pass a
	// permuted decode or an AddEdge-built graph would pay.
	g := benchIngestGraph(false)
	g.digestOK = false
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= g.Digest()
	}
	_ = sink
}
