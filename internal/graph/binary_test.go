package graph

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

// binaryTestGraphs is the round-trip corpus: every generator family
// plus the adversarial insertion orders the permutation section exists
// for (shuffled edges, parallel edges, extreme weights).
func binaryTestGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	shuffled := New(32)
	perm := rng.Perm(31)
	for _, i := range perm {
		shuffled.MustAddEdge(i, i+1, int64(1+rng.Intn(100)))
	}
	parallel := New(4)
	parallel.MustAddEdge(0, 1, 3)
	parallel.MustAddEdge(1, 0, 7) // parallel copy, reversed endpoints
	parallel.MustAddEdge(0, 1, 3) // exact duplicate
	parallel.MustAddEdge(2, 3, 1)
	extreme := New(3)
	extreme.MustAddEdge(0, 2, math.MaxInt64)
	extreme.MustAddEdge(0, 1, 1)
	return map[string]*Graph{
		"empty":    New(0),
		"edgeless": New(5),
		"path":     Path(17),
		"star":     Star(9),
		"grid":     Grid(5, 7),
		"complete": Complete(8),
		"barbell":  Barbell(6, 4),
		"spine":    SpineLeaf(3, 4, 5, 2, 7),
		"random":   RandomWeights(RandomConnected(64, 200, rng), 1000, rng),
		"expander": RandomWeights(LowDiameterExpanderish(64, 4, rng), 100, rng),
		"shuffled": shuffled,
		"parallel": parallel,
		"extreme":  extreme,
	}
}

// TestBinaryRoundTrip checks that FormatBinary/ParseBinary preserve the
// node count, every edge in insertion order (hence the digest), and the
// exact adjacency-list order the CONGEST schedule iterates.
func TestBinaryRoundTrip(t *testing.T) {
	for name, g := range binaryTestGraphs(t) {
		wire := FormatBinary(g)
		if !IsBinary(wire) {
			t.Fatalf("%s: encode does not start with the binary magic", name)
		}
		got, err := ParseBinary(wire)
		if err != nil {
			t.Fatalf("%s: round trip failed: %v", name, err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("%s: round trip changed shape: (%d,%d) != (%d,%d)", name, got.N(), got.M(), g.N(), g.M())
		}
		if got.Digest() != g.Digest() {
			t.Fatalf("%s: round trip changed digest: %x != %x", name, got.Digest(), g.Digest())
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: decoded graph invalid: %v", name, err)
		}
		if !reflect.DeepEqual(got.Edges(), g.Edges()) && !(got.M() == 0 && g.M() == 0) {
			t.Fatalf("%s: edge list changed: %v != %v", name, got.Edges(), g.Edges())
		}
		for u := 0; u < g.N(); u++ {
			a, b := got.Neighbors(u), g.Neighbors(u)
			if len(a) != len(b) || (len(a) > 0 && !reflect.DeepEqual(a, b)) {
				t.Fatalf("%s: adjacency of %d changed: %v != %v", name, u, a, b)
			}
		}
	}
}

// TestBinaryFootprint pins the size win: a generator-ordered graph
// (sorted insertion, no permutation section) costs <= 5 bytes/edge at
// small weights, and even a randomly-ordered graph stays well under
// half the text codec.
func TestBinaryFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sorted := RandomWeights(LowDiameterExpanderish(4096, 8, rng), 16, rng)
	bin, txt := FormatBinary(sorted), FormatEdgeList(sorted)
	perEdge := float64(len(bin)) / float64(sorted.M())
	t.Logf("sorted: %d edges, binary %.2f B/edge, text %.2f B/edge",
		sorted.M(), perEdge, float64(len(txt))/float64(sorted.M()))
	if perEdge > 5 {
		t.Fatalf("sorted-order binary footprint %.2f B/edge exceeds the 5 B/edge target", perEdge)
	}
	// Random insertion order pays ~log2(m)/8*2 extra bytes/edge for the
	// permutation (near the entropy bound for an arbitrary order) but
	// must still beat text by a wide margin.
	shuffled := New(4096)
	edges := append([]Edge(nil), sorted.Edges()...)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		shuffled.MustAddEdge(e.U, e.V, e.W)
	}
	sbin, stxt := FormatBinary(shuffled), FormatEdgeList(shuffled)
	t.Logf("shuffled: binary %.2f B/edge, text %.2f B/edge",
		float64(len(sbin))/float64(shuffled.M()), float64(len(stxt))/float64(shuffled.M()))
	if len(sbin)*2 >= len(stxt) {
		t.Fatalf("shuffled binary (%d B) not under half of text (%d B)", len(sbin), len(stxt))
	}
}

// TestBinaryErrors checks that corrupt and adversarial inputs fail with
// the right diagnostics and that size limits reject straight off the
// header prefix.
func TestBinaryErrors(t *testing.T) {
	valid := FormatBinary(Path(10))
	flip := func(i int) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= 0x40
		return b
	}
	for _, tc := range []struct {
		name string
		in   []byte
		want string
	}{
		{"empty", nil, "shorter than the header"},
		{"bad magic", flip(0), "bad binary magic"},
		{"text input", []byte("n 3\n0 1 2\n"), "bad binary magic"},
		{"bad version", flip(4), "unsupported binary graph version"},
		{"flipped body byte", flip(10), "checksum mismatch"},
		{"flipped crc", flip(len(valid) - 1), "checksum mismatch"},
		{"truncated", valid[:len(valid)-3], "too short"},
	} {
		_, err := ParseBinary(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}

	// Limits reject from the header prefix, with the "exceeds limit"
	// phrasing the serving layer maps to 413.
	big := FormatBinary(Path(1000))
	if _, err := ParseBinaryLimits(big, 10, 0); err == nil || !strings.Contains(err.Error(), "node count 1000 exceeds limit 10") {
		t.Fatalf("node limit: %v", err)
	}
	if _, err := ParseBinaryLimits(big, 0, 8); err == nil || !strings.Contains(err.Error(), "edge count 999 exceeds limit 8") {
		t.Fatalf("edge limit: %v", err)
	}
}

// TestBinaryLimitsAllocGuard pins the allocation-bounded-decode
// contract: rejecting an over-limit body never allocates anything
// proportional to the declared graph, however large the body is.
func TestBinaryLimitsAllocGuard(t *testing.T) {
	big := FormatBinary(Path(200_000))
	overNodes := testing.AllocsPerRun(10, func() {
		if _, err := ParseBinaryLimits(big, 10, 0); err == nil {
			t.Fatal("expected the node limit to reject")
		}
	})
	if overNodes > 8 {
		t.Fatalf("node-limit rejection cost %.0f allocations, want O(1)", overNodes)
	}
	overEdges := testing.AllocsPerRun(10, func() {
		if _, err := ParseBinaryLimits(big, 0, 8); err == nil {
			t.Fatal("expected the edge limit to reject")
		}
	})
	if overEdges > 8 {
		t.Fatalf("edge-limit rejection cost %.0f allocations, want O(1)", overEdges)
	}
}

// TestDecodeBinaryStream checks the streaming decoder: identical result
// to the buffer parser byte-for-byte of input, limits enforced from the
// framed header before the body is read, truncation diagnosed.
func TestDecodeBinaryStream(t *testing.T) {
	for name, g := range binaryTestGraphs(t) {
		wire := FormatBinary(g)
		got, err := DecodeBinary(iotest.OneByteReader(bytes.NewReader(wire)), 0, 0)
		if err != nil {
			t.Fatalf("%s: stream decode: %v", name, err)
		}
		if got.Digest() != g.Digest() {
			t.Fatalf("%s: stream decode changed digest", name)
		}
	}
	big := FormatBinary(Path(1000))
	if _, err := DecodeBinary(bytes.NewReader(big), 10, 0); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("node limit over stream: %v", err)
	}
	if _, err := DecodeBinary(bytes.NewReader(big[:20]), 0, 0); err == nil {
		t.Fatal("truncated stream decoded")
	}
	if _, err := DecodeBinary(strings.NewReader("n 3\n0 1 2\n"), 0, 0); err == nil || !strings.Contains(err.Error(), "bad binary magic") {
		t.Fatalf("text over the binary decoder: %v", err)
	}
	// Trailing bytes after a complete graph are a framing error, not
	// silently ignored (the store frames records itself; the upload
	// path must reject concatenations).
	if _, err := DecodeBinary(bytes.NewReader(append(append([]byte(nil), big...), 0xff)), 0, 0); err == nil {
		t.Fatal("trailing byte after the checksum decoded cleanly")
	}
}

// TestBinaryTextParity is the differential check at the graph layer:
// both codecs of the same graph decode to the same digest and the same
// exact eccentricity vector. (The sketch-numerator leg lives in the
// root determinism suite, Part E.)
func TestBinaryTextParity(t *testing.T) {
	for name, g := range binaryTestGraphs(t) {
		if g.N() == 0 {
			continue
		}
		fromText, err := ParseEdgeList(FormatEdgeList(g))
		if err != nil {
			t.Fatalf("%s: text: %v", name, err)
		}
		fromBin, err := ParseBinary(FormatBinary(g))
		if err != nil {
			t.Fatalf("%s: binary: %v", name, err)
		}
		if fromText.Digest() != fromBin.Digest() {
			t.Fatalf("%s: digest diverges across codecs", name)
		}
		if !reflect.DeepEqual(fromText.Eccentricities(), fromBin.Eccentricities()) {
			t.Fatalf("%s: eccentricities diverge across codecs", name)
		}
	}
}

// FuzzBinaryCodec feeds arbitrary bytes to the limited parser: it must
// never panic, never allocate past the limits, and on success produce a
// valid graph whose re-encode round-trips to the same digest — and the
// streaming decoder must agree with the buffer parser on every input.
func FuzzBinaryCodec(f *testing.F) {
	for _, g := range []*Graph{New(0), Path(5), SpineLeaf(2, 3, 2, 1, 2), Complete(4)} {
		f.Add(FormatBinary(g))
	}
	shuffled := New(8)
	shuffled.MustAddEdge(5, 6, 2)
	shuffled.MustAddEdge(0, 3, 9)
	shuffled.MustAddEdge(0, 1, 1)
	f.Add(FormatBinary(shuffled))
	f.Add([]byte{0xf1, 'Q', 'C', 'G', 1, 5, 3})
	f.Add([]byte("n 3\n0 1 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseBinaryLimits(data, 1<<12, 1<<14)
		sg, serr := DecodeBinary(bytes.NewReader(data), 1<<12, 1<<14)
		if (err == nil) != (serr == nil) {
			t.Fatalf("buffer and stream disagree: %v vs %v", err, serr)
		}
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("decoded graph invalid: %v", verr)
		}
		if g.Digest() != sg.Digest() {
			t.Fatalf("buffer and stream digests diverge")
		}
		re, rerr := ParseBinary(FormatBinary(g))
		if rerr != nil {
			t.Fatalf("re-encode failed to parse: %v", rerr)
		}
		if re.Digest() != g.Digest() {
			t.Fatalf("re-encode changed digest")
		}
	})
}
