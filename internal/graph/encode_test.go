package graph

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/iotest"
)

// TestEdgeListRoundTrip checks that FormatEdgeList/ParseEdgeList
// preserve the node count, the edge insertion order, and therefore the
// digest — the property the service upload path depends on.
func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range []*Graph{
		New(0),
		New(3),
		Path(17),
		RandomWeights(LowDiameterExpanderish(64, 4, rng), 100, rng),
		SpineLeaf(3, 4, 5, 2, 7),
	} {
		for name, wire := range map[string][]byte{
			"plain":     FormatEdgeList(g),
			"versioned": FormatEdgeListVersioned(g),
		} {
			got, err := ParseEdgeList(wire)
			if err != nil {
				t.Fatalf("%s round trip of %v failed: %v", name, g, err)
			}
			if got.N() != g.N() || got.M() != g.M() {
				t.Fatalf("%s round trip of %v changed shape: got %v", name, g, got)
			}
			if got.Digest() != g.Digest() {
				t.Fatalf("%s round trip of %v changed digest: %x != %x", name, g, got.Digest(), g.Digest())
			}
		}
	}
}

// TestEdgeListVersionHeader checks the optional "v" header: version 1
// parses identically with and without it, and any other version is a
// clean unsupported-version error (never misread as edges).
func TestEdgeListVersionHeader(t *testing.T) {
	if g, err := ParseEdgeList([]byte("# c\n\nv 1\nn 3\n0 1 2\n")); err != nil || g.M() != 1 {
		t.Fatalf("versioned parse: (%v, %v)", g, err)
	}
	for _, tc := range []struct{ name, in, want string }{
		{"future version", "v 2\nn 3\n0 1 2\n", "unsupported edge-list version 2"},
		{"bad version", "v one\nn 3\n", "bad version"},
		{"short version", "v\nn 3\n", "header"},
		{"version after header", "n 3\nv 1\n", "line 2"},
		{"duplicate version", "v 1\nv 1\nn 3\n", "header"},
	} {
		_, err := ParseEdgeList([]byte(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestParseEdgeListFormat checks comment and whitespace handling.
func TestParseEdgeListFormat(t *testing.T) {
	g, err := ParseEdgeList([]byte("# header comment\n\n  n   4 \n0 1 2 # trailing\n\t2 3\t9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("parsed wrong shape: %v", g)
	}
	if w, ok := g.HasEdge(2, 3); !ok || w != 9 {
		t.Fatalf("edge {2,3}: got (%d, %v)", w, ok)
	}
	// CRLF line endings parse identically (the '\r' is a field
	// separator, exactly as strings.Fields treated it).
	g, err = ParseEdgeList([]byte("n 4\r\n0 1 2\r\n2 3 9\r\n"))
	if err != nil || g.N() != 4 || g.M() != 2 {
		t.Fatalf("CRLF parse: (%v, %v)", g, err)
	}
	// A missing trailing newline still parses the last edge.
	g, err = ParseEdgeList([]byte("n 2\n0 1 5"))
	if err != nil || g.M() != 1 {
		t.Fatalf("no trailing newline: (%v, %v)", g, err)
	}
}

// TestParseEdgeListAllocGuard pins the zero-copy contract of
// ParseEdgeListLimits: rejecting an over-limit body must not copy or
// split the body first, so the allocation count of a rejection is O(1)
// in the input size. The old strings.Split implementation copied the
// whole body and allocated per line (~3 allocations per input line);
// this guard fails loudly if that ever regresses.
func TestParseEdgeListAllocGuard(t *testing.T) {
	// ~1.4 MB body, ~100k edge lines against a maxEdges=8 limit.
	var sb strings.Builder
	sb.WriteString("n 100\n")
	for i := 0; i < 100_000; i++ {
		sb.WriteString("0 1 1\n")
	}
	data := []byte(sb.String())

	overEdges := testing.AllocsPerRun(10, func() {
		if _, err := ParseEdgeListLimits(data, 0, 8); err == nil {
			t.Fatal("expected the edge limit to reject")
		}
	})
	if overEdges > 64 {
		t.Fatalf("edge-limit rejection cost %.0f allocations; the parser is copying the body again", overEdges)
	}

	// A header above maxNodes rejects before any adjacency allocation,
	// whatever follows it.
	overNodes := testing.AllocsPerRun(10, func() {
		if _, err := ParseEdgeListLimits(data, 10, 0); err == nil {
			t.Fatal("expected the node limit to reject")
		}
	})
	if overNodes > 8 {
		t.Fatalf("node-limit rejection cost %.0f allocations, want O(1)", overNodes)
	}
}

// TestDecodeEdgeListStream checks that the streaming decoder is
// behaviorally identical to the whole-buffer parser: same graphs, same
// digests, same line-numbered errors — even when the reader dribbles
// one byte at a time across bufio refills.
func TestDecodeEdgeListStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, g := range []*Graph{
		New(3),
		Path(17),
		RandomWeights(LowDiameterExpanderish(64, 4, rng), 100, rng),
	} {
		wire := FormatEdgeListVersioned(g)
		for name, r := range map[string]io.Reader{
			"buffered": bytes.NewReader(wire),
			"dribble":  iotest.OneByteReader(bytes.NewReader(wire)),
		} {
			got, err := DecodeEdgeList(r, 0, 0)
			if err != nil {
				t.Fatalf("%s decode: %v", name, err)
			}
			if got.Digest() != g.Digest() {
				t.Fatalf("%s decode changed digest: %x != %x", name, got.Digest(), g.Digest())
			}
		}
	}

	// Error parity with the buffer parser, line numbers included.
	for _, in := range []string{
		"", "0 1 2\n", "n 4\nn 5\n", "n 4\n0 1 2\nn 5\n", "n 4\n0 1\n", "n 2\n0 5 1\n",
	} {
		_, bufErr := ParseEdgeList([]byte(in))
		_, strErr := DecodeEdgeList(strings.NewReader(in), 0, 0)
		if bufErr == nil || strErr == nil || bufErr.Error() != strErr.Error() {
			t.Fatalf("error mismatch on %q: buffer=%v stream=%v", in, bufErr, strErr)
		}
	}

	// Limits apply identically.
	if _, err := DecodeEdgeList(strings.NewReader("n 100\n"), 10, 0); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("node limit not enforced: %v", err)
	}

	// A line longer than the bufio window is rejected, not split into
	// two lines that might each parse.
	long := "n 3\n# " + strings.Repeat("x", 128<<10) + "\n0 1 2\n"
	if _, err := DecodeEdgeList(strings.NewReader(long), 0, 0); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized line not rejected: %v", err)
	}

	// A missing trailing newline still parses the last edge.
	g, err := DecodeEdgeList(strings.NewReader("n 2\n0 1 5"), 0, 0)
	if err != nil || g.M() != 1 {
		t.Fatalf("no trailing newline: (%v, %v)", g, err)
	}
}

// TestParseEdgeListErrors checks that malformed inputs are rejected
// with the offending line number.
func TestParseEdgeListErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"empty", "", "missing"},
		{"no header", "0 1 2\n", "header"},
		{"bad count", "n -3\n", "bad node count"},
		{"short edge", "n 4\n0 1\n", "line 2"},
		{"non-numeric", "n 4\n0 one 2\n", "line 2"},
		{"duplicate n", "n 4\nn 5\n0 1 2\n", `line 2: duplicate "n" header`},
		{"n after edges", "n 4\n0 1 2\nn 5\n", `line 3: "n" header after edges`},
		{"self loop", "n 4\n1 1 2\n", "self loop"},
		{"out of range", "n 2\n0 5 1\n", "out of range"},
		{"zero weight", "n 3\n0 1 0\n", "non-positive weight"},
	} {
		_, err := ParseEdgeList([]byte(tc.in))
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
