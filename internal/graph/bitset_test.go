package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestFrontierBitsPrimitives drives set/clear/test/count through a
// model map over sizes straddling word boundaries (n not a multiple of
// 64 included), then checks member enumeration is exactly the model in
// ascending order.
func TestFrontierBitsPrimitives(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 130, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		b := growBits(nil, n)
		b.zero()
		if len(b) != bitWords(n) {
			t.Fatalf("n=%d: %d words, want %d", n, len(b), bitWords(n))
		}
		model := make(map[int32]bool)
		for i := 0; i < 4*n; i++ {
			v := int32(rng.Intn(n))
			if i%3 == 2 {
				b.clear(v)
				delete(model, v)
			} else {
				b.set(v)
				model[v] = true
			}
			if b.count() != len(model) {
				t.Fatalf("n=%d step %d: popcount %d, model %d", n, i, b.count(), len(model))
			}
		}
		for v := int32(0); v < int32(n); v++ {
			if b.test(v) != model[v] {
				t.Fatalf("n=%d: test(%d) = %v, model says %v", n, v, b.test(v), model[v])
			}
		}
		members := b.appendMembers(make([]int32, 0, n))
		if len(members) != len(model) {
			t.Fatalf("n=%d: %d members enumerated, model holds %d", n, len(members), len(model))
		}
		for i, v := range members {
			if !model[v] {
				t.Fatalf("n=%d: enumerated %d which is not set", n, v)
			}
			if v < 0 || int(v) >= n {
				t.Fatalf("n=%d: enumerated out-of-range vertex %d", n, v)
			}
			if i > 0 && members[i-1] >= v {
				t.Fatalf("n=%d: members not strictly ascending at %d", n, i)
			}
		}
		// fillFrom round-trips the member list back to the same words.
		c := growBits(nil, n)
		c.fillFrom(members)
		if !reflect.DeepEqual(c, b) {
			t.Fatalf("n=%d: fillFrom(appendMembers) is not the identity", n)
		}
	}
}

// TestFrontierBitsWordBoundaries pins the exact boundary vertices: bits
// 63/64/65 land in the right words, and a tail word covering fewer than
// 64 vertices behaves like any other.
func TestFrontierBitsWordBoundaries(t *testing.T) {
	b := growBits(nil, 130)
	b.zero()
	for _, v := range []int32{0, 63, 64, 65, 127, 128, 129} {
		if b.test(v) {
			t.Fatalf("fresh bitset has %d set", v)
		}
		b.set(v)
		if !b.test(v) {
			t.Fatalf("set(%d) not visible", v)
		}
	}
	if b[0] != 1|1<<63 {
		t.Fatalf("word 0 = %#x, want bits 0 and 63", b[0])
	}
	if b[1] != 1|1<<1|1<<63 {
		t.Fatalf("word 1 = %#x, want bits 64, 65, 127", b[1])
	}
	if b[2] != 1|1<<1 {
		t.Fatalf("word 2 = %#x, want bits 128, 129", b[2])
	}
	if b.count() != 7 {
		t.Fatalf("count = %d, want 7", b.count())
	}
	b.clear(64)
	if b.test(64) || !b.test(63) || !b.test(65) {
		t.Fatal("clear(64) touched a neighboring bit")
	}
	want := []int32{0, 63, 65, 127, 128, 129}
	if got := b.appendMembers(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
}

// TestGrowBitsReuse: growth to a larger size reallocates, shrinking
// reuses the array, and contents after growBits are unspecified until
// zero()/fillFrom — the workspace invariant is "zero at point of use".
func TestGrowBitsReuse(t *testing.T) {
	b := growBits(nil, 100)
	b.zero()
	b.set(99)
	same := growBits(b, 64)
	if &same[0] != &b[0] {
		t.Fatal("shrinking reallocated")
	}
	if len(same) != 1 {
		t.Fatalf("shrunk to %d words, want 1", len(same))
	}
	bigger := growBits(same, 1000)
	if len(bigger) != bitWords(1000) {
		t.Fatalf("grew to %d words, want %d", len(bigger), bitWords(1000))
	}
	bigger.zero()
	if bigger.count() != 0 {
		t.Fatal("zero left bits set")
	}
}
