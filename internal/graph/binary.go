package graph

// This file is the binary wire codec: the compact counterpart of the
// text edge list in encode.go, used by the raw upload path of
// internal/svc (Content-Type application/x-qcongest-graph) and by the
// durable store's graph records (internal/store). Layout:
//
//	magic    4 bytes  f1 'Q' 'C' 'G'  (0xf1 is non-ASCII on purpose:
//	                  a text parser fed binary fails on byte one)
//	version  1 byte   BinaryVersion
//	n        uvarint  node count
//	m        uvarint  undirected-edge count
//	flags    1 byte   bit 0: permutation section present
//	permutation       m uvarints, zigzag(i_j - j), where CSR edge j is
//	                  insertion edge i_j. Present only when the
//	                  insertion order differs from CSR order — Digest
//	                  hashes edges in insertion order, so the codec
//	                  must round-trip it exactly, not just the edge
//	                  set. Stored CSR-to-insertion (not the inverse)
//	                  and ahead of the adjacency stream so the decoder
//	                  can write each CSR edge straight into its
//	                  insertion slot — one edge array, no gather pass.
//	adjacency         for each node u = 0..n-1, CSR order by the lower
//	                  endpoint: uvarint edge count, then per edge
//	                  (neighbors ascending) uvarint delta-of-v and
//	                  uvarint zigzag(w). The first delta is v-u (>= 1,
//	                  so a self loop is unrepresentable); later deltas
//	                  are v-prev (>= 0: parallel edges encode as 0).
//	crc32    4 bytes  IEEE, little-endian, over every preceding byte.
//
// Everything after magic+version+n+m is the "body"; the prefix is
// fixed-position so a decoder can enforce node/edge limits — and bound
// every later allocation — before reading another byte.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// BinaryVersion is the current binary wire-format version, written by
// FormatBinary and the only version ParseBinary accepts.
const BinaryVersion = 1

// binaryMagic opens every binary-codec graph. The first byte is
// non-ASCII so the text parser (and the store's payload sniffer) can
// never mistake one codec for the other.
var binaryMagic = [4]byte{0xf1, 'Q', 'C', 'G'}

const (
	binFlagPerm   = 0x01 // permutation section present
	binPrefixMax  = 4 + 1 + 2*binary.MaxVarintLen64
	binTrailerLen = 4
)

// IsBinary reports whether data begins with the binary codec's magic —
// the disambiguation the durable store uses to replay mixed-codec
// records (text payloads start with 'v', 'n', or '#').
func IsBinary(data []byte) bool {
	return len(data) >= len(binaryMagic) && bytes.Equal(data[:len(binaryMagic)], binaryMagic[:])
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// FormatBinary renders g in the binary wire format. The output parses
// back (ParseBinary) to a graph with the same node count, the same
// edges in the same insertion order — and therefore the same Digest
// and the same adjacency order, which the CONGEST simulation's message
// schedule depends on.
func FormatBinary(g *Graph) []byte {
	n, m := g.n, len(g.edges)
	// CSR order: by (U, V) ascending, insertion-stable among equal
	// pairs. Generators that emit edges node by node are already
	// sorted, which drops the permutation section entirely.
	sorted := true
	for i := 1; i < m; i++ {
		a, b := g.edges[i-1], g.edges[i]
		if a.U > b.U || (a.U == b.U && a.V > b.V) {
			sorted = false
			break
		}
	}
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	if !sorted {
		sort.Slice(order, func(i, j int) bool {
			a, b := g.edges[order[i]], g.edges[order[j]]
			if a.U != b.U {
				return a.U < b.U
			}
			if a.V != b.V {
				return a.V < b.V
			}
			return order[i] < order[j]
		})
	}

	// Typical footprint: 1-byte counts, 1-3-byte deltas, 1-2-byte
	// weights; append grows past the estimate when weights are huge.
	est := binPrefixMax + 1 + binTrailerLen + 2*n + 7*m
	if !sorted {
		est += 4 * m
	}
	buf := make([]byte, 0, est)
	buf = append(buf, binaryMagic[:]...)
	buf = append(buf, BinaryVersion)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(m))
	var flags byte
	if !sorted {
		flags |= binFlagPerm
	}
	buf = append(buf, flags)

	if !sorted {
		// order[j] is the insertion index of CSR edge j; the deltas
		// against j keep near-sorted insertion orders to a byte or two.
		for j, idx := range order {
			buf = binary.AppendUvarint(buf, zigzag(int64(idx)-int64(j)))
		}
	}
	i := 0
	for u := 0; u < n; u++ {
		start := i
		for i < m && g.edges[order[i]].U == u {
			i++
		}
		buf = binary.AppendUvarint(buf, uint64(i-start))
		prev := u
		for j := start; j < i; j++ {
			e := g.edges[order[j]]
			buf = binary.AppendUvarint(buf, uint64(e.V-prev))
			buf = binary.AppendUvarint(buf, zigzag(e.W))
			prev = e.V
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// ParseBinary parses the binary wire format produced by FormatBinary.
func ParseBinary(data []byte) (*Graph, error) {
	return ParseBinaryLimits(data, 0, 0)
}

// ParseBinaryLimits is ParseBinary with hard size bounds checked from
// the header prefix before anything proportional to the graph is
// allocated; limits <= 0 are unbounded. Even unbounded, allocation is
// capped by the input: a valid body carries at least one byte per node
// and two per edge, so a corrupt few-byte header cannot request an
// enormous graph (pinned by FuzzBinaryCodec).
func ParseBinaryLimits(data []byte, maxNodes, maxEdges int) (*Graph, error) {
	if err := checkBinaryHeader(data); err != nil {
		return nil, err
	}
	off := len(binaryMagic) + 1
	un, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return nil, fmt.Errorf("graph: binary header: truncated node count")
	}
	off += k
	um, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return nil, fmt.Errorf("graph: binary header: truncated edge count")
	}
	off += k
	n, m, err := checkBinarySizes(un, um, maxNodes, maxEdges)
	if err != nil {
		return nil, err
	}
	body := data[off:]
	if int64(len(body)) < 1+int64(n)+2*int64(m)+binTrailerLen {
		return nil, fmt.Errorf("graph: binary body of %d bytes is too short for n=%d m=%d", len(body), n, m)
	}
	return parseBinaryBody(data[:off], body, n, m)
}

// DecodeBinary reads one binary-codec graph from r: the header prefix
// is framed and size-checked first — before anything proportional to
// the graph is read or allocated — then the remaining body (bounded by
// the format's worst case for the declared n and m) is read and
// decoded in place with the checksum verified over the whole stream.
func DecodeBinary(r io.Reader, maxNodes, maxEdges int) (*Graph, error) {
	var prefix [binPrefixMax]byte
	if _, err := io.ReadFull(r, prefix[:len(binaryMagic)+1]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if err := checkBinaryHeader(prefix[:len(binaryMagic)+1]); err != nil {
		return nil, err
	}
	plen := len(binaryMagic) + 1
	readUvarint := func(what string) (uint64, error) {
		var x uint64
		var s uint
		for i := 0; ; i++ {
			if plen == len(prefix) || i == binary.MaxVarintLen64 {
				return 0, fmt.Errorf("graph: binary header: %s overflows", what)
			}
			if _, err := io.ReadFull(r, prefix[plen:plen+1]); err != nil {
				return 0, fmt.Errorf("graph: binary header: truncated %s: %w", what, err)
			}
			b := prefix[plen]
			plen++
			if b < 0x80 {
				if i == binary.MaxVarintLen64-1 && b > 1 {
					return 0, fmt.Errorf("graph: binary header: %s overflows", what)
				}
				return x | uint64(b)<<s, nil
			}
			x |= uint64(b&0x7f) << s
			s += 7
		}
	}
	un, err := readUvarint("node count")
	if err != nil {
		return nil, err
	}
	um, err := readUvarint("edge count")
	if err != nil {
		return nil, err
	}
	n, m, err := checkBinarySizes(un, um, maxNodes, maxEdges)
	if err != nil {
		return nil, err
	}
	// The body cannot legitimately exceed the per-field varint maxima,
	// so the read is bounded by the already-validated n and m.
	bound := int64(1) + binTrailerLen +
		int64(n)*binary.MaxVarintLen64 + 3*int64(m)*binary.MaxVarintLen64
	body, err := io.ReadAll(io.LimitReader(r, bound+1))
	if err != nil {
		return nil, fmt.Errorf("graph: reading binary body: %w", err)
	}
	if int64(len(body)) > bound {
		return nil, fmt.Errorf("graph: binary body exceeds the format bound for n=%d m=%d", n, m)
	}
	if int64(len(body)) < 1+int64(n)+2*int64(m)+binTrailerLen {
		return nil, fmt.Errorf("graph: binary body of %d bytes is too short for n=%d m=%d", len(body), n, m)
	}
	return parseBinaryBody(prefix[:plen], body, n, m)
}

// checkBinaryHeader validates the fixed magic + version prefix.
func checkBinaryHeader(data []byte) error {
	if len(data) < len(binaryMagic)+1 {
		return fmt.Errorf("graph: binary input of %d bytes is shorter than the header", len(data))
	}
	if !IsBinary(data) {
		return fmt.Errorf("graph: bad binary magic % x", data[:len(binaryMagic)])
	}
	if v := data[len(binaryMagic)]; v != BinaryVersion {
		return fmt.Errorf("graph: unsupported binary graph version %d (this build reads version %d)", v, BinaryVersion)
	}
	return nil
}

// checkBinarySizes enforces the node/edge limits straight off the
// header — the "exceeds limit" phrasing is load-bearing: the serving
// layer maps it to 413.
func checkBinarySizes(un, um uint64, maxNodes, maxEdges int) (n, m int, err error) {
	if un > math.MaxInt32 {
		return 0, 0, fmt.Errorf("graph: binary node count %d out of range", un)
	}
	if um > math.MaxInt32/2 {
		return 0, 0, fmt.Errorf("graph: binary edge count %d out of range", um)
	}
	if maxNodes > 0 && un > uint64(maxNodes) {
		return 0, 0, fmt.Errorf("graph: node count %d exceeds limit %d", un, maxNodes)
	}
	if maxEdges > 0 && um > uint64(maxEdges) {
		return 0, 0, fmt.Errorf("graph: edge count %d exceeds limit %d", um, maxEdges)
	}
	return int(un), int(um), nil
}

// parseBinaryBody decodes flags + adjacency + permutation + checksum.
// prefix is the already-consumed header (hashed into the checksum);
// body is everything after it, ending in the 4-byte CRC. n and m are
// already limit-checked, so every allocation below is admitted.
func parseBinaryBody(prefix, body []byte, n, m int) (*Graph, error) {
	// Checksum first: every later validation assumes intact bytes.
	stored := binary.LittleEndian.Uint32(body[len(body)-binTrailerLen:])
	sum := crc32.ChecksumIEEE(prefix)
	sum = crc32.Update(sum, crc32.IEEETable, body[:len(body)-binTrailerLen])
	if sum != stored {
		return nil, fmt.Errorf("graph: binary checksum mismatch (computed %08x, stored %08x)", sum, stored)
	}
	sec := body[:len(body)-binTrailerLen]
	flags := sec[0]
	if flags&^byte(binFlagPerm) != 0 {
		return nil, fmt.Errorf("graph: unknown binary flags %#02x", flags)
	}
	off := 1

	// Inverse permutation first (when present): inv[j] is the insertion
	// slot of CSR edge j, so the adjacency decode below writes every
	// edge straight into insertion order — one edge array, no staging
	// buffer, no gather pass over it afterwards.
	var inv []int32
	if flags&binFlagPerm != 0 {
		inv = make([]int32, m)
		// Duplicate detection lives here, on a bitset that stays
		// cache-resident, so the scatter writes below never have to
		// read the (much larger) edge array before storing into it.
		seen := make([]uint64, (m+63)/64)
		for j := 0; j < m; j++ {
			pz, k := binary.Uvarint(sec[off:])
			if k <= 0 {
				return nil, fmt.Errorf("graph: binary permutation truncated at entry %d", j)
			}
			off += k
			p := int64(j) + unzigzag(pz)
			if p < 0 || p >= int64(m) || seen[p>>6]&(1<<(p&63)) != 0 {
				return nil, fmt.Errorf("graph: binary permutation entry %d is not a permutation of [0,%d)", j, m)
			}
			seen[p>>6] |= 1 << (p & 63)
			inv[j] = int32(p)
		}
	}

	// Adjacency: decode the CSR edge stream. Validation reproduces
	// AddEdge's exactly (range, no self loops, w >= 1), so a decoded
	// graph is structurally indistinguishable from a built one.
	// Degrees are tallied in the same pass (the CSR count gives one
	// endpoint in bulk), sparing the adjacency build a full re-read of
	// the edge array.
	edges := make([]Edge, m)
	deg := make([]int32, n)
	// With no permutation, decode order IS insertion order, so the
	// digest folds into this loop for free: its serial multiply chain
	// hides behind the varint decoding. Permuted streams hash in a
	// separate pass below once the edges land in insertion order.
	h := digestInit(n)
	idx := 0
	for u := 0; u < n; u++ {
		cnt, k := binary.Uvarint(sec[off:])
		if k <= 0 {
			return nil, fmt.Errorf("graph: binary adjacency truncated at node %d", u)
		}
		off += k
		if cnt > uint64(m-idx) {
			return nil, fmt.Errorf("graph: binary adjacency counts exceed edge count %d", m)
		}
		v := u
		for c := uint64(0); c < cnt; c++ {
			dv, k := binary.Uvarint(sec[off:])
			if k <= 0 {
				return nil, fmt.Errorf("graph: binary edge truncated at node %d", u)
			}
			off += k
			if dv > uint64(n) {
				return nil, fmt.Errorf("graph: binary edge delta %d out of range at node %d", dv, u)
			}
			v += int(dv)
			if v <= u || v >= n {
				return nil, fmt.Errorf("graph: binary edge {%d,%d} out of range [%d,%d)", u, v, u+1, n)
			}
			wz, k := binary.Uvarint(sec[off:])
			if k <= 0 {
				return nil, fmt.Errorf("graph: binary weight truncated at edge {%d,%d}", u, v)
			}
			off += k
			w := unzigzag(wz)
			if w < 1 {
				return nil, fmt.Errorf("graph: binary edge {%d,%d} has non-positive weight %d", u, v, w)
			}
			e := Edge{U: u, V: v, W: w}
			if inv != nil {
				edges[inv[idx]] = e
			} else {
				edges[idx] = e
				h = digestMixEdge(h, e)
			}
			deg[v]++
			idx++
		}
		deg[u] += int32(cnt)
	}
	if idx != m {
		return nil, fmt.Errorf("graph: binary adjacency counts sum to %d, want m=%d", idx, m)
	}
	if off != len(sec) {
		return nil, fmt.Errorf("graph: %d trailing bytes after binary graph", len(sec)-off)
	}

	if inv != nil {
		for _, e := range edges {
			h = digestMixEdge(h, e)
		}
	}

	// Adjacency is deferred: the decoder hands the edge list and degree
	// tally to newDeferred and the first adjacency read builds the arc
	// arena (exactly as m AddEdge calls in insertion order would, but as
	// one allocation). Uploads and store replays that never get queried
	// never pay for it.
	g := newDeferred(n, edges, deg)
	g.digestVal, g.digestOK = h, true
	return g, nil
}
