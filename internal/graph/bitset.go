package graph

// Bitset frontier primitives for the dense (direction-optimizing)
// kernel mode: a frontier over n vertices packed 64 per word, so a
// bottom-up relaxation hop tests membership with a shift and a mask
// instead of chasing a worklist, and a dense→sparse transition
// enumerates members with trailing-zero scans. All storage comes from
// the owning DistWorkspace's scratch arenas — these helpers never
// allocate once the workspace is warm.

import "math/bits"

// frontierBits is a fixed-capacity bitset over vertex ids. Word i holds
// vertices 64i..64i+63; the tail word's high bits (when n is not a
// multiple of 64) are kept zero by construction — set is only ever
// called with in-range vertices, and zero clears whole words.
type frontierBits []uint64

// bitWords returns the word count covering n vertices.
func bitWords(n int) int { return (n + 63) / 64 }

// growBits returns s with capacity for n vertices. Contents are
// unspecified (callers zero at point of use): growth must not force an
// O(n) clear on the hops that never go dense.
func growBits(s frontierBits, n int) frontierBits {
	w := bitWords(n)
	if cap(s) < w {
		return make(frontierBits, w)
	}
	return s[:w]
}

// zero clears every word.
func (b frontierBits) zero() {
	for i := range b {
		b[i] = 0
	}
}

// set marks vertex v.
func (b frontierBits) set(v int32) { b[v>>6] |= 1 << (uint(v) & 63) }

// clear unmarks vertex v.
func (b frontierBits) clear(v int32) { b[v>>6] &^= 1 << (uint(v) & 63) }

// test reports whether vertex v is marked.
func (b frontierBits) test(v int32) bool { return b[v>>6]&(1<<(uint(v)&63)) != 0 }

// count returns the number of marked vertices.
func (b frontierBits) count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// appendMembers appends the marked vertices to dst in ascending order
// and returns it — the dense→sparse frontier transition. The caller
// guarantees dst has the capacity (the workspace frontier slices are
// sized to n), so the append never allocates on a warm workspace.
func (b frontierBits) appendMembers(dst []int32) []int32 {
	for i, w := range b {
		base := int32(i << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// fillFrom zeroes b and marks every vertex in src — the sparse→dense
// frontier transition.
func (b frontierBits) fillFrom(src []int32) {
	b.zero()
	for _, v := range src {
		b.set(v)
	}
}
