// Package graph provides the weighted-graph substrate used throughout the
// reproduction: adjacency structures, exact shortest-path algorithms,
// eccentricity/diameter/radius computation, hop-bounded distances, the
// unit-edge contraction of Lemma 4.3, and graph generators.
//
// All weights are positive integers (w : E -> N+), matching the paper's
// model. Distances are int64 and the sentinel Inf marks unreachable pairs.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Inf is the distance sentinel for unreachable node pairs. It is small
// enough that Inf+Inf does not overflow int64.
const Inf int64 = 1 << 60

// Arc is one directed half of an undirected weighted edge.
type Arc struct {
	To int   // endpoint
	W  int64 // weight, >= 1
}

// Edge is an undirected weighted edge with U < V by convention.
type Edge struct {
	U, V int
	W    int64
}

// Graph is an undirected weighted graph on nodes 0..n-1. The zero value is
// an empty graph with no nodes; use New to create a graph with n nodes.
//
// Graphs built by the bulk decoders (ParseEdgeList, ParseBinary) defer
// their adjacency structure: the decoder records only the edge list and a
// per-node degree tally, and the first adjacency read (Neighbors, Degree,
// a shortest-path call) materializes the arc arena. Ingest-path consumers
// — Digest, Edges, the store's re-encode — never touch adjacency, so an
// upload or a store replay pays for edges it serves queries on, not for
// every edge it parses. The deferred build is safe under concurrent
// readers; mutating calls (AddEdge) remain single-goroutine-only as
// before.
type Graph struct {
	n     int
	adj   [][]Arc
	edges []Edge

	// Deferred-adjacency state: lazyDeg holds the per-node degree tally
	// while the arc arena is still unbuilt; adjReady flips (with
	// release/acquire ordering) once adj is safe to read concurrently.
	adjMu    sync.Mutex
	adjReady atomic.Bool
	lazyDeg  []int32

	// Digest memo, set only by the bulk decoders (which fold the hash
	// into their parse loop) and cleared by AddEdge. Digest never writes
	// it: self-memoization on first call would race concurrent readers.
	digestVal uint64
	digestOK  bool
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]Arc, n)}
}

// newDeferred assembles a graph from a complete edge list and its
// per-node degree tally without building adjacency; the first adjacency
// read materializes it via ensureAdj. Every edge must already satisfy
// AddEdge's invariants (normalized U < V, in range, W >= 1) and deg must
// be its exact degree tally — the bulk decoders validate both as they go.
func newDeferred(n int, edges []Edge, deg []int32) *Graph {
	return &Graph{n: n, edges: edges, lazyDeg: deg}
}

// ensureAdj materializes a deferred adjacency structure. The fast path
// is one atomic load; the build itself runs once under adjMu, so any
// number of readers may race to be first.
func (g *Graph) ensureAdj() {
	if g.adjReady.Load() {
		return
	}
	g.adjMu.Lock()
	defer g.adjMu.Unlock()
	if !g.adjReady.Load() {
		g.buildAdj()
		g.adjReady.Store(true)
	}
}

// buildAdj fills the arc arena from the edge list and degree tally of a
// deferred graph; on an eagerly-built graph it is a no-op. Callers hold
// adjMu. One arena holds both directed halves of every edge, with each
// node's row handed out by a cursor sweep, so the build is two stores
// per edge and a single allocation however many nodes there are.
func (g *Graph) buildAdj() {
	if g.lazyDeg == nil {
		return
	}
	deg := g.lazyDeg
	g.lazyDeg = nil
	g.adj = make([][]Arc, g.n)
	if len(g.edges) == 0 {
		return
	}
	arena := make([]Arc, 2*len(g.edges))
	cur := make([]int32, g.n)
	off := int32(0)
	for u := range g.adj {
		end := off + deg[u]
		// Three-index slicing pins each row's capacity so a later
		// AddEdge append reallocates the row instead of clobbering its
		// neighbor in the shared arena.
		g.adj[u] = arena[off:end:end]
		cur[u] = off
		off = end
	}
	for _, e := range g.edges {
		arena[cur[e.U]] = Arc{To: e.V, W: e.W}
		cur[e.U]++
		arena[cur[e.V]] = Arc{To: e.U, W: e.W}
		cur[e.V]++
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int {
	g.ensureAdj()
	return len(g.adj[u])
}

// Neighbors returns the adjacency list of u. Callers must not modify the
// returned slice.
func (g *Graph) Neighbors(u int) []Arc {
	g.ensureAdj()
	return g.adj[u]
}

// Edges returns all undirected edges. Callers must not modify the returned
// slice.
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge adds the undirected edge {u, v} with weight w. It returns an error
// for self loops, out-of-range endpoints, or non-positive weights. Parallel
// edges are permitted (generators may produce them transiently); Simplify
// collapses them keeping the minimum weight.
func (g *Graph) AddEdge(u, v int, w int64) error {
	if err := validateEdge(g.n, u, v, w); err != nil {
		return err
	}
	g.digestOK = false
	g.ensureAdj()
	g.adj[u] = append(g.adj[u], Arc{To: v, W: w})
	g.adj[v] = append(g.adj[v], Arc{To: u, W: w})
	if u > v {
		u, v = v, u
	}
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	return nil
}

// validateEdge is AddEdge's argument check, shared with the bulk
// decoders so a rejected edge reports the same error whichever path saw
// it first.
func validateEdge(n, u, v int, w int64) error {
	switch {
	case u < 0 || u >= n || v < 0 || v >= n:
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
	case u == v:
		return fmt.Errorf("graph: self loop at node %d", u)
	case w < 1:
		return fmt.Errorf("graph: edge {%d,%d} has non-positive weight %d", u, v, w)
	}
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators and
// tests where the arguments are statically valid.
func (g *Graph) MustAddEdge(u, v int, w int64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// HasEdge reports whether an edge {u, v} exists and returns the minimum
// weight among parallel copies.
func (g *Graph) HasEdge(u, v int) (int64, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	g.ensureAdj()
	best, found := int64(0), false
	for _, a := range g.adj[u] {
		if a.To == v && (!found || a.W < best) {
			best, found = a.W, true
		}
	}
	return best, found
}

// MaxWeight returns the maximum edge weight W = max_e w(e), or 0 for an
// edgeless graph. The paper assumes every node initially knows W.
func (g *Graph) MaxWeight() int64 {
	var w int64
	for _, e := range g.edges {
		if e.W > w {
			w = e.W
		}
	}
	return w
}

// Simplify returns a copy of g with parallel edges collapsed to the single
// minimum-weight edge. Node identities are preserved.
func (g *Graph) Simplify() *Graph {
	type key struct{ u, v int }
	best := make(map[key]int64, len(g.edges))
	for _, e := range g.edges {
		k := key{e.U, e.V}
		if w, ok := best[k]; !ok || e.W < w {
			best[k] = e.W
		}
	}
	keys := make([]key, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].u != keys[j].u {
			return keys[i].u < keys[j].u
		}
		return keys[i].v < keys[j].v
	})
	out := New(g.n)
	for _, k := range keys {
		out.MustAddEdge(k.u, k.v, best[k])
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for _, e := range g.edges {
		out.MustAddEdge(e.U, e.V, e.W)
	}
	return out
}

// Reweight returns a copy of g with every edge weight mapped through f.
// It panics if f produces a non-positive weight.
func (g *Graph) Reweight(f func(int64) int64) *Graph {
	out := New(g.n)
	for _, e := range g.edges {
		out.MustAddEdge(e.U, e.V, f(e.W))
	}
	return out
}

// Unweighted returns a copy of g with all weights set to 1 (the w* of §2.1).
func (g *Graph) Unweighted() *Graph {
	return g.Reweight(func(int64) int64 { return 1 })
}

// Connected reports whether g is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	g.ensureAdj()
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.adj[u] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == g.n
}

// Validate checks structural invariants (adjacency symmetry, weight
// positivity, edge-list consistency) and returns the first violation found.
func (g *Graph) Validate() error {
	g.ensureAdj()
	deg := 0
	for u := range g.adj {
		deg += len(g.adj[u])
		for _, a := range g.adj[u] {
			if a.To < 0 || a.To >= g.n {
				return fmt.Errorf("graph: node %d has arc to out-of-range node %d", u, a.To)
			}
			if a.W < 1 {
				return fmt.Errorf("graph: arc %d->%d has weight %d < 1", u, a.To, a.W)
			}
		}
	}
	if deg != 2*len(g.edges) {
		return fmt.Errorf("graph: degree sum %d != 2*|E| = %d", deg, 2*len(g.edges))
	}
	for _, e := range g.edges {
		if e.U >= e.V {
			return fmt.Errorf("graph: edge list entry {%d,%d} not normalized", e.U, e.V)
		}
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, W=%d)", g.n, len(g.edges), g.MaxWeight())
}
