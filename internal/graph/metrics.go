package graph

// This file computes the distance metrics studied by the paper: weighted and
// unweighted eccentricity, diameter D_{G,w}, radius R_{G,w}, the unweighted
// diameter D_G of the underlying network, and the hop diameter H_{G,w}
// (§2.1, §3.1). All functions return Inf-based values on disconnected
// graphs: the diameter of a disconnected graph is Inf.

// Eccentricity returns e_{G,w}(u) = max_v d_{G,w}(u, v).
func (g *Graph) Eccentricity(u int) int64 {
	return maxOf(g.Dijkstra(u))
}

// Eccentricities returns e_{G,w}(u) for every node u. The n Dijkstra
// runs share one DistWorkspace, so the sweep allocates two arrays
// total instead of per source.
func (g *Graph) Eccentricities() []int64 {
	out := make([]int64, g.n)
	ws := NewDistWorkspace(g)
	var d []int64
	for u := 0; u < g.n; u++ {
		d = ws.DijkstraInto(d, u)
		out[u] = maxOf(d)
	}
	return out
}

// Diameter returns D_{G,w} = max_u e_{G,w}(u).
func (g *Graph) Diameter() int64 {
	return maxOf(g.Eccentricities())
}

// Radius returns R_{G,w} = min_u e_{G,w}(u).
func (g *Graph) Radius() int64 {
	return minOf(g.Eccentricities())
}

// Center returns a node with minimum eccentricity and that eccentricity.
func (g *Graph) Center() (node int, ecc int64) {
	eccs := g.Eccentricities()
	node, ecc = 0, Inf
	for u, e := range eccs {
		if e < ecc {
			node, ecc = u, e
		}
	}
	return node, ecc
}

// Peripheral returns a node with maximum eccentricity and that eccentricity.
func (g *Graph) Peripheral() (node int, ecc int64) {
	eccs := g.Eccentricities()
	node, ecc = 0, -1
	for u, e := range eccs {
		if e > ecc {
			node, ecc = u, e
		}
	}
	return node, ecc
}

// UnweightedEccentricity returns the eccentricity of u under w* = 1.
func (g *Graph) UnweightedEccentricity(u int) int64 {
	return maxOf(g.BFS(u))
}

// UnweightedDiameter returns D_G, the hop diameter of the underlying
// unweighted network. This is the parameter D in the paper's round bounds.
func (g *Graph) UnweightedDiameter() int64 {
	var d int64
	ws := NewDistWorkspace(g)
	var bfs []int64
	for u := 0; u < g.n; u++ {
		bfs = ws.BFSInto(bfs, u)
		if e := maxOf(bfs); e > d {
			d = e
		}
	}
	return d
}

// UnweightedRadius returns the radius under w* = 1.
func (g *Graph) UnweightedRadius() int64 {
	r := Inf
	ws := NewDistWorkspace(g)
	var bfs []int64
	for u := 0; u < g.n; u++ {
		bfs = ws.BFSInto(bfs, u)
		if e := maxOf(bfs); e < r {
			r = e
		}
	}
	return r
}

// HopDiameter returns H_{G,w}: the maximum over node pairs of the minimum
// edge count among minimum-weight paths (§3.1).
func (g *Graph) HopDiameter() int64 {
	var h int64
	ws := NewDistWorkspace(g)
	var d, hops []int64
	for u := 0; u < g.n; u++ {
		d, hops = ws.DijkstraHopsInto(d, hops, u)
		if m := maxOf(hops); m > h {
			h = m
		}
	}
	return h
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []int64) int64 {
	m := Inf
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	if len(xs) == 0 {
		return 0
	}
	return m
}
