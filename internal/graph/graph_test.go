package graph

import (
	"math/rand"
	"testing"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    int
		w       int64
		wantErr bool
	}{
		{"valid", 0, 1, 5, false},
		{"self loop", 1, 1, 1, true},
		{"zero weight", 0, 2, 0, true},
		{"negative weight", 0, 2, -3, true},
		{"u out of range", -1, 2, 1, true},
		{"v out of range", 0, 3, 1, true},
		{"parallel allowed", 0, 1, 7, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.u, tt.v, tt.w)
			if (err != nil) != tt.wantErr {
				t.Errorf("AddEdge(%d,%d,%d) err = %v, wantErr %v", tt.u, tt.v, tt.w, err, tt.wantErr)
			}
		})
	}
}

func TestHasEdgeMinWeight(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 9)
	g.MustAddEdge(0, 1, 4)
	w, ok := g.HasEdge(0, 1)
	if !ok || w != 4 {
		t.Fatalf("HasEdge = (%d,%v), want (4,true)", w, ok)
	}
	if _, ok := g.HasEdge(1, 0); !ok {
		t.Fatal("HasEdge not symmetric")
	}
	if _, ok := g.HasEdge(0, 5); ok {
		t.Fatal("HasEdge accepted out-of-range node")
	}
}

func TestSimplifyKeepsMin(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 9)
	g.MustAddEdge(1, 0, 4)
	g.MustAddEdge(1, 2, 2)
	s := g.Simplify()
	if s.M() != 2 {
		t.Fatalf("simplified m=%d, want 2", s.M())
	}
	if w, _ := s.HasEdge(0, 1); w != 4 {
		t.Fatalf("simplified weight %d, want 4", w)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.MustAddEdge(0, 3, 2)
	if g.M() == c.M() {
		t.Fatal("clone shares edge storage with original")
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"single", New(1), true},
		{"two isolated", New(2), false},
		{"path", Path(6), true},
		{"cycle", Cycle(5), true},
		{"star", Star(7), true},
		{"complete", Complete(4), true},
		{"grid", Grid(3, 4), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Connected(); got != tt.want {
				t.Errorf("Connected() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMaxWeight(t *testing.T) {
	g := New(3)
	if g.MaxWeight() != 0 {
		t.Fatal("edgeless graph should have MaxWeight 0")
	}
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 11)
	if g.MaxWeight() != 11 {
		t.Fatalf("MaxWeight = %d, want 11", g.MaxWeight())
	}
}

func TestReweightAndUnweighted(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 5)
	u := g.Unweighted()
	if w, _ := u.HasEdge(0, 1); w != 1 {
		t.Fatalf("unweighted edge weight %d, want 1", w)
	}
	doubled := g.Reweight(func(w int64) int64 { return 2 * w })
	if w, _ := doubled.HasEdge(0, 1); w != 10 {
		t.Fatalf("reweighted edge weight %d, want 10", w)
	}
}

func TestDijkstraPath(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(2, 3, 1)
	d := g.Dijkstra(0)
	want := []int64{0, 2, 5, 6}
	for i, w := range want {
		if d[i] != w {
			t.Errorf("d[%d] = %d, want %d", i, d[i], w)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	d := g.Dijkstra(0)
	if d[2] != Inf {
		t.Fatalf("unreachable distance = %d, want Inf", d[2])
	}
	if g.Diameter() != Inf {
		t.Fatal("diameter of disconnected graph should be Inf")
	}
}

func TestDijkstraHopsMinimal(t *testing.T) {
	// Two shortest paths of weight 4 from 0 to 3: one with 2 hops (0-2-3),
	// one with 4 hops. Hop distance must pick 2.
	g := New(6)
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(0, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(5, 1, 1)
	g.MustAddEdge(1, 3, 1)
	dist, hops := g.DijkstraHops(0)
	if dist[3] != 4 {
		t.Fatalf("dist[3] = %d, want 4", dist[3])
	}
	if hops[3] != 2 {
		t.Fatalf("hops[3] = %d, want 2 (minimum-hop shortest path)", hops[3])
	}
}

func TestBFSMatchesUnweightedDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomConnected(40, 80, rng)
	for src := 0; src < g.N(); src += 7 {
		bfs := g.BFS(src)
		dij := g.Dijkstra(src) // unit weights
		for v := range bfs {
			if bfs[v] != dij[v] {
				t.Fatalf("src=%d v=%d: BFS %d != Dijkstra %d", src, v, bfs[v], dij[v])
			}
		}
	}
}

func TestBoundedHopDist(t *testing.T) {
	// Path 0-1-2-3 with weight 1 each, plus heavy shortcut 0-3 of weight 10.
	g := Path(4)
	g.MustAddEdge(0, 3, 10)
	tests := []struct {
		l    int
		want int64
	}{
		{0, Inf}, {1, 10}, {2, 10}, {3, 3}, {5, 3},
	}
	for _, tt := range tests {
		got := g.BoundedHopDist(0, tt.l)[3]
		if got != tt.want {
			t.Errorf("d^%d(0,3) = %d, want %d", tt.l, got, tt.want)
		}
	}
}

func TestBoundedHopConvergesToDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomWeights(RandomConnected(30, 70, rng), 50, rng)
	d := g.Dijkstra(0)
	bh := g.BoundedHopDist(0, g.N()) // n hops suffice for any shortest path
	for v := range d {
		if d[v] != bh[v] {
			t.Fatalf("v=%d: Dijkstra %d != n-hop Bellman-Ford %d", v, d[v], bh[v])
		}
	}
}

func TestBoundedDistanceSSSP(t *testing.T) {
	g := Path(5) // distances 0..4 from node 0
	d := g.BoundedDistanceSSSP(0, 2)
	want := []int64{0, 1, 2, Inf, Inf}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestMetricsPath(t *testing.T) {
	g := Path(5)
	if d := g.Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
	if r := g.Radius(); r != 2 {
		t.Errorf("radius = %d, want 2", r)
	}
	if c, e := g.Center(); c != 2 || e != 2 {
		t.Errorf("center = (%d,%d), want (2,2)", c, e)
	}
	if _, e := g.Peripheral(); e != 4 {
		t.Errorf("peripheral ecc = %d, want 4", e)
	}
}

func TestMetricsWeighted(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 7)
	g.MustAddEdge(0, 2, 20)
	if d := g.Diameter(); d != 12 {
		t.Errorf("diameter = %d, want 12", d)
	}
	if r := g.Radius(); r != 7 {
		t.Errorf("radius = %d, want 7", r)
	}
	if ud := g.UnweightedDiameter(); ud != 1 {
		t.Errorf("unweighted diameter = %d, want 1 (triangle)", ud)
	}
}

func TestUnweightedMetrics(t *testing.T) {
	tests := []struct {
		name   string
		g      *Graph
		diam   int64
		radius int64
	}{
		{"path5", Path(5), 4, 2},
		{"cycle6", Cycle(6), 3, 3},
		{"star8", Star(8), 2, 1},
		{"complete5", Complete(5), 1, 1},
		{"grid3x4", Grid(3, 4), 5, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if d := tt.g.UnweightedDiameter(); d != tt.diam {
				t.Errorf("diameter = %d, want %d", d, tt.diam)
			}
			if r := tt.g.UnweightedRadius(); r != tt.radius {
				t.Errorf("radius = %d, want %d", r, tt.radius)
			}
		})
	}
}

func TestHopDiameter(t *testing.T) {
	// Heavy direct edges force shortest paths through many light hops.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 3, 100)
	if h := g.HopDiameter(); h != 3 {
		t.Fatalf("hop diameter = %d, want 3", h)
	}
	// Make the shortcut competitive: now the weight-3 path and the direct
	// edge tie is impossible (direct edge weight 3 wins on hops).
	g2 := New(4)
	g2.MustAddEdge(0, 1, 1)
	g2.MustAddEdge(1, 2, 1)
	g2.MustAddEdge(2, 3, 1)
	g2.MustAddEdge(0, 3, 3)
	if h := g2.HopDiameter(); h != 2 {
		t.Fatalf("hop diameter with tie = %d, want 2", h)
	}
}

func TestContractUnitEdges(t *testing.T) {
	// Triangle of unit edges plus a pendant heavy edge: contraction merges
	// the triangle into one supernode.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 9)
	c := g.ContractUnitEdges()
	if c.Graph.N() != 2 {
		t.Fatalf("contracted n = %d, want 2", c.Graph.N())
	}
	if c.Graph.M() != 1 {
		t.Fatalf("contracted m = %d, want 1", c.Graph.M())
	}
	if w, ok := c.Graph.HasEdge(c.Super[2], c.Super[3]); !ok || w != 9 {
		t.Fatalf("contracted edge = (%d,%v), want (9,true)", w, ok)
	}
	if c.Super[0] != c.Super[1] || c.Super[1] != c.Super[2] {
		t.Fatal("triangle nodes not merged")
	}
	if c.Super[3] == c.Super[0] {
		t.Fatal("heavy-edge endpoint wrongly merged")
	}
	if got := len(c.Members[c.Super[0]]); got != 3 {
		t.Fatalf("supernode member count = %d, want 3", got)
	}
}

func TestContractParallelKeepsMin(t *testing.T) {
	// Two nodes connected to a unit triangle by different weights: after
	// contraction, the parallel edges collapse to the minimum.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 0, 5)
	g.MustAddEdge(2, 1, 3)
	g.MustAddEdge(3, 0, 8)
	c := g.ContractUnitEdges()
	if w, _ := c.Graph.HasEdge(c.Super[2], c.Super[0]); w != 3 {
		t.Fatalf("parallel contraction kept weight %d, want 3", w)
	}
}

func TestContractionSandwichLemma43(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := RandomConnected(24, 50, rng)
		// Mix unit and heavy edges.
		mixed := New(g.N())
		for _, e := range g.Edges() {
			w := int64(1)
			if rng.Intn(2) == 0 {
				w = 2 + rng.Int63n(20)
			}
			mixed.MustAddEdge(e.U, e.V, w)
		}
		c := mixed.ContractUnitEdges()
		if _, _, _, _, ok := c.CheckSandwich(mixed); !ok {
			t.Fatalf("trial %d: Lemma 4.3 sandwich violated", trial)
		}
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests := []struct {
		name string
		g    *Graph
		n    int
	}{
		{"random tree", RandomTree(30, rng), 30},
		{"random connected", RandomConnected(30, 60, rng), 30},
		{"expanderish", LowDiameterExpanderish(100, 4, rng), 100},
		{"barbell", Barbell(5, 4), 13},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n {
				t.Errorf("n = %d, want %d", tt.g.N(), tt.n)
			}
			if !tt.g.Connected() {
				t.Error("not connected")
			}
			if err := tt.g.Validate(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestRandomTreeEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomTree(50, rng)
	if g.M() != 49 {
		t.Fatalf("tree m = %d, want 49", g.M())
	}
}

func TestDiameterControlled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, d := range []int{2, 4, 8, 16} {
		g := DiameterControlled(80, d, rng)
		got := g.UnweightedDiameter()
		if got < int64(d) || got > int64(d)+2 {
			t.Errorf("d=%d: unweighted diameter = %d, want within [d, d+2]", d, got)
		}
		if !g.Connected() {
			t.Errorf("d=%d: not connected", d)
		}
	}
}

func TestBarbellDiameter(t *testing.T) {
	g := Barbell(4, 6)
	// clique(1 hop) + bridge(6) + clique(1 hop)
	if d := g.UnweightedDiameter(); d != 8 {
		t.Fatalf("barbell diameter = %d, want 8", d)
	}
}

func TestRandomWeightsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomWeights(Complete(8), 10, rng)
	for _, e := range g.Edges() {
		if e.W < 1 || e.W > 10 {
			t.Fatalf("weight %d outside [1,10]", e.W)
		}
	}
}

func TestAPSPSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := RandomWeights(RandomConnected(20, 40, rng), 9, rng)
	d := g.APSP()
	for u := range d {
		for v := range d[u] {
			if d[u][v] != d[v][u] {
				t.Fatalf("APSP not symmetric at (%d,%d)", u, v)
			}
		}
		if d[u][u] != 0 {
			t.Fatalf("APSP diagonal nonzero at %d", u)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := Path(3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := g.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestCenterAndPeripheralOnCycle(t *testing.T) {
	g := Cycle(6)
	if _, e := g.Center(); e != 3 {
		t.Fatalf("cycle center ecc = %d, want 3", e)
	}
	if _, e := g.Peripheral(); e != 3 {
		t.Fatalf("cycle peripheral ecc = %d, want 3", e)
	}
}

func TestGridGeneratorShape(t *testing.T) {
	g := Grid(4, 5)
	if g.N() != 20 {
		t.Fatalf("grid n = %d, want 20", g.N())
	}
	// m = rows*(cols-1) + (rows-1)*cols = 16 + 15 = 31.
	if g.M() != 31 {
		t.Fatalf("grid m = %d, want 31", g.M())
	}
}
