package graph

import (
	"container/heap"
	"fmt"
)

// distItem is a priority-queue entry for Dijkstra variants.
type distItem struct {
	node int
	d    int64
	hops int64 // secondary key for hop-distance Dijkstra
}

type distHeap []distItem

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].hops < h[j].hops
}
func (h distHeap) Swap(i, j int)     { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)       { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() (out any)   { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
func (h *distHeap) push(it distItem) { heap.Push(h, it) }
func (h *distHeap) pop() distItem    { return heap.Pop(h).(distItem) }

// Dijkstra returns d_{G,w}(src, v) for every node v. Unreachable nodes get
// Inf.
func (g *Graph) Dijkstra(src int) []int64 {
	d, _ := g.DijkstraHops(src)
	return d
}

// DijkstraHops returns, for every node v, the weighted distance
// d_{G,w}(src, v) and the hop distance h_{G,w}(src, v): the minimum number
// of edges over all shortest (minimum-weight) paths from src to v (§3.1).
// Ties on weight are broken by hop count, which computes h exactly.
func (g *Graph) DijkstraHops(src int) (dist, hops []int64) {
	if src < 0 || src >= g.n {
		panic(fmt.Sprintf("graph: Dijkstra source %d out of range [0,%d)", src, g.n))
	}
	g.ensureAdj()
	dist = make([]int64, g.n)
	hops = make([]int64, g.n)
	for i := range dist {
		dist[i] = Inf
		hops[i] = Inf
	}
	dist[src], hops[src] = 0, 0
	pq := &distHeap{{node: src}}
	for pq.Len() > 0 {
		it := pq.pop()
		if it.d > dist[it.node] || (it.d == dist[it.node] && it.hops > hops[it.node]) {
			continue
		}
		for _, a := range g.adj[it.node] {
			nd, nh := it.d+a.W, it.hops+1
			if nd < dist[a.To] || (nd == dist[a.To] && nh < hops[a.To]) {
				dist[a.To], hops[a.To] = nd, nh
				pq.push(distItem{node: a.To, d: nd, hops: nh})
			}
		}
	}
	return dist, hops
}

// BFS returns unweighted hop counts from src (distances under w* = 1).
func (g *Graph) BFS(src int) []int64 {
	if src < 0 || src >= g.n {
		panic(fmt.Sprintf("graph: BFS source %d out of range [0,%d)", src, g.n))
	}
	g.ensureAdj()
	d := make([]int64, g.n)
	for i := range d {
		d[i] = Inf
	}
	d[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[u] {
			if d[a.To] == Inf {
				d[a.To] = d[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return d
}

// BoundedHopDist returns the l-hop distances d^l_{G,w}(src, v): the least
// length over all paths from src using at most l edges (§3.1). It runs l
// rounds of Bellman-Ford relaxation in O(l*m) time.
func (g *Graph) BoundedHopDist(src int, l int) []int64 {
	if src < 0 || src >= g.n {
		panic(fmt.Sprintf("graph: BoundedHopDist source %d out of range [0,%d)", src, g.n))
	}
	if l < 0 {
		panic(fmt.Sprintf("graph: negative hop bound %d", l))
	}
	cur := make([]int64, g.n)
	for i := range cur {
		cur[i] = Inf
	}
	cur[src] = 0
	next := make([]int64, g.n)
	for round := 0; round < l; round++ {
		copy(next, cur)
		changed := false
		for _, e := range g.edges {
			if cur[e.U] != Inf && cur[e.U]+e.W < next[e.V] {
				next[e.V] = cur[e.U] + e.W
				changed = true
			}
			if cur[e.V] != Inf && cur[e.V]+e.W < next[e.U] {
				next[e.U] = cur[e.V] + e.W
				changed = true
			}
		}
		cur, next = next, cur
		if !changed {
			break
		}
	}
	return cur
}

// BoundedDistanceSSSP returns, for every node v, d_{G,w}(src, v) if it is at
// most L, and Inf otherwise. This is the centralized reference for
// Algorithm 2 of the paper's Appendix A.
func (g *Graph) BoundedDistanceSSSP(src int, limit int64) []int64 {
	d := g.Dijkstra(src)
	for i, v := range d {
		if v > limit {
			d[i] = Inf
		}
	}
	return d
}

// APSP returns the full distance matrix via n Dijkstra runs sharing one
// DistWorkspace.
func (g *Graph) APSP() [][]int64 {
	out := make([][]int64, g.n)
	ws := NewDistWorkspace(g)
	for s := 0; s < g.n; s++ {
		out[s] = ws.DijkstraInto(nil, s)
	}
	return out
}

// HopAPSP returns the full hop-distance matrix h_{G,w}(u, v).
func (g *Graph) HopAPSP() [][]int64 {
	out := make([][]int64, g.n)
	ws := NewDistWorkspace(g)
	var d []int64
	for s := 0; s < g.n; s++ {
		d, out[s] = ws.DijkstraHopsInto(d, nil, s)
	}
	return out
}
