package graph

import (
	"math"
	"math/rand"
	"testing"
)

// digestReference is the original byte-at-a-time FNV-1a digest loop,
// kept verbatim as the oracle for the zero-byte-folding fast path in
// Digest. The two must agree bit for bit forever: digests are persisted
// in the store and addressed over the API.
func digestReference(g *Graph) uint64 {
	h := uint64(fnvOffset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= fnvPrime64
			x >>= 8
		}
	}
	mix(uint64(g.n))
	for _, e := range g.edges {
		mix(uint64(e.U))
		mix(uint64(e.V))
		mix(uint64(e.W))
	}
	return h
}

func TestDigestReference(t *testing.T) {
	// A known-good digest recorded before the fast path existed, so the
	// oracle itself cannot drift with the implementation.
	pinned := New(3)
	pinned.MustAddEdge(0, 1, 2)
	pinned.MustAddEdge(1, 2, 300)
	if got := pinned.Digest(); got != 0x126d456935585765 {
		t.Fatalf("pinned digest moved: got %016x, want 126d456935585765", got)
	}

	graphs := []*Graph{New(0), New(1), New(7), pinned}
	// Extreme weights exercise every byte count the mix loop can see,
	// including the full-width case where no zero tail folds.
	wide := New(4)
	for _, w := range []int64{1, 0xff, 0x100, 0xffff, 1 << 24, 1<<32 - 1, 1 << 40, 1 << 56, math.MaxInt64} {
		wide.MustAddEdge(0, 1, w)
		wide.MustAddEdge(2, 3, w)
	}
	graphs = append(graphs, wide)
	rng := rand.New(rand.NewSource(41))
	graphs = append(graphs,
		RandomWeights(RandomConnected(64, 200, rng), math.MaxInt64, rng),
		RandomWeights(RandomConnected(300, 900, rng), 16, rng),
	)
	for i, g := range graphs {
		if got, want := g.Digest(), digestReference(g); got != want {
			t.Fatalf("graph %d: Digest() = %016x, reference loop = %016x", i, got, want)
		}
	}
}
