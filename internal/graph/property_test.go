package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomInstance decodes a seeded random weighted connected graph for
// property tests.
func randomInstance(seed int64, maxN int, maxW int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(maxN-3)
	m := n - 1 + rng.Intn(n)
	return RandomWeights(RandomConnected(n, m, rng), maxW, rng)
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := randomInstance(seed, 24, 30)
		d := g.APSP()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				for w := 0; w < g.N(); w++ {
					if d[u][v] > d[u][w]+d[w][v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistanceSymmetryAndIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := randomInstance(seed, 30, 50)
		d := g.APSP()
		for u := 0; u < g.N(); u++ {
			if d[u][u] != 0 {
				return false
			}
			for v := u + 1; v < g.N(); v++ {
				if d[u][v] != d[v][u] || d[u][v] <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBoundedHopMonotoneInL(t *testing.T) {
	f := func(seed int64) bool {
		g := randomInstance(seed, 20, 20)
		src := int(uint64(seed) % uint64(g.N()))
		prev := g.BoundedHopDist(src, 0)
		for l := 1; l <= g.N(); l++ {
			cur := g.BoundedHopDist(src, l)
			for v := range cur {
				if cur[v] > prev[v] {
					return false // more hops can only improve
				}
			}
			prev = cur
		}
		// At l = n, bounded-hop equals true distance.
		d := g.Dijkstra(src)
		for v := range d {
			if d[v] != prev[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHopDistanceConsistency(t *testing.T) {
	// d^l(u,v) = d(u,v) whenever h(u,v) <= l (§3.1).
	f := func(seed int64) bool {
		g := randomInstance(seed, 18, 15)
		for u := 0; u < g.N(); u++ {
			dist, hops := g.DijkstraHops(u)
			for v := 0; v < g.N(); v++ {
				l := int(hops[v])
				if l > g.N() {
					continue
				}
				if got := g.BoundedHopDist(u, l)[v]; got != dist[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRadiusDiameterSandwich(t *testing.T) {
	// R <= D <= 2R for any connected graph.
	f := func(seed int64) bool {
		g := randomInstance(seed, 25, 40)
		d, r := g.Diameter(), g.Radius()
		return r <= d && d <= 2*r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContractionSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(18)
		base := RandomConnected(n, n-1+rng.Intn(n), rng)
		g := New(n)
		for _, e := range base.Edges() {
			w := int64(1)
			if rng.Intn(3) > 0 {
				w = 2 + rng.Int63n(15)
			}
			g.MustAddEdge(e.U, e.V, w)
		}
		c := g.ContractUnitEdges()
		_, _, _, _, ok := c.CheckSandwich(g)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnweightedDiameterLowerBoundsWeighted(t *testing.T) {
	// With integer weights >= 1, the weighted diameter is at least the
	// unweighted diameter of the same graph.
	f := func(seed int64) bool {
		g := randomInstance(seed, 22, 12)
		return g.Diameter() >= g.UnweightedDiameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
