package graph

// KernelMode selects the relaxation engine a DistWorkspace runs its
// distance computations on. Every mode computes bit-identical results
// — the mode is an execution knob, never a semantic one — which is what
// lets the repo's determinism contract (same digest + params ⇒
// byte-identical numerators) extend over all of them. The differential
// suite and FuzzKernelEquivalence pin the equivalence on every mode.

import "fmt"

// KernelMode selects the DistWorkspace relaxation engine.
type KernelMode uint8

// Kernel modes. The zero value (KernelAuto) switches between the
// sparse worklist and the dense bitset scan per hop with the hysteresis
// heuristic below; the explicit modes force one engine.
const (
	// KernelAuto switches sparse↔dense at hop boundaries based on the
	// frontier occupancy (weighted hops) or frontier edge volume
	// (unweighted BFS), and is the default everywhere.
	KernelAuto KernelMode = iota
	// KernelSparse forces the PR 3 level-synchronous worklist kernel:
	// hop h relaxes only the nodes improved during hop h-1.
	KernelSparse
	// KernelDense forces the bitset frontier: every hop scans all
	// vertices, pulling relaxations from marked neighbors.
	KernelDense
	// KernelDelta runs weighted passes through the delta-stepping
	// bucket engine (Meyer & Sanders); bounded-hop calls verify the hop
	// budget never bound and fall back to the hop-synchronous engine
	// when it did, so results stay bit-identical.
	KernelDelta
)

// KernelModes returns every mode, for differential suites that sweep
// all engines.
func KernelModes() []KernelMode {
	return []KernelMode{KernelAuto, KernelSparse, KernelDense, KernelDelta}
}

// String returns the flag spelling of the mode.
func (m KernelMode) String() string {
	switch m {
	case KernelAuto:
		return "auto"
	case KernelSparse:
		return "sparse"
	case KernelDense:
		return "dense"
	case KernelDelta:
		return "delta"
	}
	return fmt.Sprintf("KernelMode(%d)", uint8(m))
}

// ParseKernelMode parses a -distkernel flag or wire value. The empty
// string selects KernelAuto.
func ParseKernelMode(s string) (KernelMode, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "sparse":
		return KernelSparse, nil
	case "dense":
		return KernelDense, nil
	case "delta":
		return KernelDelta, nil
	}
	return KernelAuto, fmt.Errorf("graph: unknown kernel mode %q (want auto, sparse, dense, or delta)", s)
}

// Auto-mode crossover heuristics. All four are pure monotone functions
// of the frontier measure, consulted only at hop boundaries (a hop runs
// one engine start to finish), and the up/down thresholds are separated
// so the mode cannot oscillate on a frontier sitting at the crossover:
// hopGoesDense and hopGoesSparse are never true for the same size.
//
// Weighted hops switch on frontier occupancy, and the bar is high: a
// dense weighted hop costs one full CSR scan (O(n + m)) no matter how
// full the frontier is, and — unlike bottom-up BFS — a weighted pull
// cannot break at the first parented neighbor, so it only competes with
// the push worklist when the frontier covers most of the graph and the
// push's per-arc dedup/bookkeeping is the marginal cost. Unweighted BFS
// switches on Beamer's edge-volume test: bottom-up pulls do break at
// the first parented neighbor, so that flip engages far earlier
// (frontier arcs exceeding a fraction of the arcs still unexplored)
// and disengages when the frontier thins below a small occupancy.
const (
	denseUpMul    = 16 // go dense when f·16 ≥ n·15, i.e. frontier ≥ 15/16·n
	denseUpFrac   = 15
	denseDownMul  = 4 // return sparse when f·4 < n·3, i.e. frontier < 3/4·n
	denseDownFrac = 3
	bfsUpArcDiv   = 14 // bottom-up when frontier arcs > unexplored arcs / 14
	bfsDownDiv    = 24 // top-down when frontier < n/24
)

// hopGoesDense reports whether a weighted hop over a frontier of f
// nodes should run the dense bitset engine. Monotone in f.
func hopGoesDense(f, n int) bool { return f*denseUpMul >= n*denseUpFrac }

// hopGoesSparse reports whether a dense weighted hop should flip back
// to the sparse worklist. Antitone in f, and disjoint from hopGoesDense
// for every n.
func hopGoesSparse(f, n int) bool { return f*denseDownMul < n*denseDownFrac }

// bfsGoesBottomUp reports whether a BFS level with frontierArcs
// incident arcs should pull bottom-up, given the arc volume still
// incident to unvisited vertices. Monotone in frontierArcs, antitone in
// unexploredArcs.
func bfsGoesBottomUp(frontierArcs, unexploredArcs int) bool {
	return frontierArcs*bfsUpArcDiv > unexploredArcs
}

// bfsGoesTopDown reports whether a bottom-up BFS should return to
// top-down once the frontier holds f of n vertices. Antitone in f.
func bfsGoesTopDown(f, n int) bool { return f*bfsDownDiv < n }
