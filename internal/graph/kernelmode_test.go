package graph

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// disjointUnion concatenates the parts into one graph with no edges
// between them: the adversarial disconnected shape of the differential
// corpus (every engine must agree on which vertices stay Inf).
func disjointUnion(parts ...*Graph) *Graph {
	n := 0
	for _, p := range parts {
		n += p.N()
	}
	g := New(n)
	off := 0
	for _, p := range parts {
		for _, e := range p.Edges() {
			g.MustAddEdge(e.U+off, e.V+off, e.W)
		}
		off += p.N()
	}
	return g
}

// adversarialGraphs are the shapes the kernel modes disagree on first
// if anything is wrong: stars (the frontier jumps from 1 to n-1 in one
// hop, forcing an immediate sparse→dense flip), long paths (the
// frontier never grows, so dense must never engage under auto),
// high-degree spine-leaf fabrics (the Beamer bottom-up regime), and
// disconnected unions (unreached components must stay Inf in every
// engine). Sizes straddle the 64-bit word boundary of the bitset.
func adversarialGraphs() []*Graph {
	rng := rand.New(rand.NewSource(67))
	return []*Graph{
		Star(65),
		RandomWeights(Star(64), 9, rng),
		Path(130),
		RandomWeights(Path(63), 5, rng),
		RandomWeights(SpineLeaf(4, 8, 8, 2, 1), 11, rng),
		disjointUnion(Star(17), Path(9), RandomWeights(RandomConnected(20, 50, rng), 7, rng)),
		disjointUnion(New(3), Cycle(5)),
		New(1),
	}
}

// refCappedMul is the golden reference for BoundedHopInto with the
// overlay num[a] = w(a)·mul: Bellman-Ford on weights ⌈w·mul/2^shift⌉
// (computed by Reweight, a pure function of the edge weight),
// post-filtered at the cap (exact: rounded weights are positive, see
// refCappedScaled's comment).
func refCappedMul(g *Graph, src, l int, mul int64, shift uint, cap64 int64) []int64 {
	scaled := g.Reweight(func(w int64) int64 {
		return (w*mul + int64(1)<<shift - 1) >> shift
	})
	ref := scaled.BoundedHopDist(src, l)
	for v, dv := range ref {
		if dv != Inf && dv > cap64 {
			ref[v] = Inf
		}
	}
	return ref
}

// TestKernelModesBoundedHopDifferential is the graph-layer differential
// suite: every kernel mode against the sparse (PR 3) engine and against
// the golden full-edge-scan reference, over the kernel corpus plus the
// adversarial shapes, sweeping hop budgets, rounding shifts, and prune
// caps. Distances must be bit-identical in every cell, and the
// hop-synchronous modes must execute the same number of hops.
func TestKernelModesBoundedHopDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	graphs := append(kernelCases(), adversarialGraphs()...)
	for gi, g := range graphs {
		n := g.N()
		ws := NewDistWorkspace(g)
		const mul = int64(48) // a 2Tℓ-style common multiplier
		num := ws.ArcWeights(nil)
		for a := range num {
			num[a] *= mul
		}
		var sparse, got []int64
		srcs := []int{0, n / 2, n - 1}
		if n > 3 {
			srcs = append(srcs, rng.Intn(n))
		}
		for _, src := range srcs {
			for _, l := range []int{1, 2, n/2 + 1, n, 2 * n} {
				for _, shift := range []uint{0, 2, 5} {
					for _, cap64 := range []int64{Inf, 40 * mul, 3 * mul} {
						ws.SetKernelMode(KernelSparse)
						sparse = ws.BoundedHopInto(sparse, src, l, num, shift, cap64)
						hops := len(ws.hopModes)
						if want := refCappedMul(g, src, l, mul, shift, cap64); !reflect.DeepEqual(sparse, want) {
							t.Fatalf("graph %d src=%d l=%d shift=%d cap=%d: sparse diverged from golden reference",
								gi, src, l, shift, cap64)
						}
						for _, m := range []KernelMode{KernelAuto, KernelDense, KernelDelta} {
							ws.SetKernelMode(m)
							got = ws.BoundedHopInto(got, src, l, num, shift, cap64)
							if !reflect.DeepEqual(got, sparse) {
								t.Fatalf("graph %d src=%d l=%d shift=%d cap=%d: mode %v diverged from sparse",
									gi, src, l, shift, cap64, m)
							}
							if m != KernelDelta && len(ws.hopModes) != hops {
								t.Fatalf("graph %d src=%d l=%d: mode %v executed %d hops, sparse %d",
									gi, src, l, m, len(ws.hopModes), hops)
							}
						}
					}
				}
			}
		}
	}
}

// TestKernelModesBFSDifferential pins every mode's BFSInto against the
// reference Graph.BFS (levels are canonical, so direction optimization
// must be invisible in the output).
func TestKernelModesBFSDifferential(t *testing.T) {
	for gi, g := range append(kernelCases(), adversarialGraphs()...) {
		ws := NewDistWorkspace(g)
		var got []int64
		for src := 0; src < g.N(); src += 1 + g.N()/7 {
			want := g.BFS(src)
			for _, m := range KernelModes() {
				ws.SetKernelMode(m)
				got = ws.BFSInto(got, src)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("graph %d src=%d: BFS mode %v diverged from reference", gi, src, m)
				}
			}
		}
	}
}

// TestKernelModesDijkstraDifferential pins the delta-stepping engine's
// (distance, hops) labels against the heap engine and the reference
// Graph.DijkstraHops — both settle the same lexicographic fixpoint.
func TestKernelModesDijkstraDifferential(t *testing.T) {
	for gi, g := range append(kernelCases(), adversarialGraphs()...) {
		ws := NewDistWorkspace(g)
		var d, h []int64
		for src := 0; src < g.N(); src += 1 + g.N()/7 {
			wantD, wantH := g.DijkstraHops(src)
			for _, m := range KernelModes() {
				ws.SetKernelMode(m)
				d, h = ws.DijkstraHopsInto(d, h, src)
				if !reflect.DeepEqual(d, wantD) || !reflect.DeepEqual(h, wantH) {
					t.Fatalf("graph %d src=%d: Dijkstra mode %v diverged from reference", gi, src, m)
				}
			}
		}
	}
}

// TestSwitchHeuristicsMonotoneAndDisjoint is the property suite of the
// pure crossover functions: each is monotone (or antitone) in its
// frontier measure, and the weighted up/down pair is disjoint for every
// n — the hysteresis band that prevents oscillation on a frontier
// sitting at the crossover.
func TestSwitchHeuristicsMonotoneAndDisjoint(t *testing.T) {
	for _, n := range []int{1, 2, 7, 31, 64, 65, 1000} {
		prevDense, prevSparse, prevTD := false, true, true
		for f := 0; f <= n; f++ {
			d, s, td := hopGoesDense(f, n), hopGoesSparse(f, n), bfsGoesTopDown(f, n)
			if prevDense && !d {
				t.Fatalf("n=%d: hopGoesDense not monotone at f=%d", n, f)
			}
			if !prevSparse && s {
				t.Fatalf("n=%d: hopGoesSparse not antitone at f=%d", n, f)
			}
			if !prevTD && td {
				t.Fatalf("n=%d: bfsGoesTopDown not antitone at f=%d", n, f)
			}
			if d && s {
				t.Fatalf("n=%d f=%d: hopGoesDense and hopGoesSparse overlap — the hysteresis band is gone", n, f)
			}
			prevDense, prevSparse, prevTD = d, s, td
		}
		if !hopGoesDense(n, n) {
			t.Fatalf("n=%d: a full frontier must go dense", n)
		}
		if n > 1 && hopGoesSparse(n, n) {
			t.Fatalf("n=%d: a full frontier must not flip back to sparse", n)
		}
	}
	for _, unexplored := range []int{0, 10, 997, 100000} {
		prev := false
		for fa := 0; fa <= 2*unexplored+30; fa += 1 + unexplored/50 {
			b := bfsGoesBottomUp(fa, unexplored)
			if prev && !b {
				t.Fatalf("unexplored=%d: bfsGoesBottomUp not monotone at frontierArcs=%d", unexplored, fa)
			}
			prev = b
		}
	}
	for _, fa := range []int{1, 10, 500} {
		prev := true
		for u := 0; u <= 30*fa; u += 1 + fa/10 {
			b := bfsGoesBottomUp(fa, u)
			if !prev && b {
				t.Fatalf("frontierArcs=%d: bfsGoesBottomUp not antitone at unexplored=%d", fa, u)
			}
			prev = b
		}
	}
}

// TestAutoModeTraceMatchesHeuristic replays the hysteresis state
// machine over the frontier sizes of a sparse run (frontiers are
// bit-identical across modes) and asserts the auto run's per-hop engine
// trace matches exactly — switching happens only at hop boundaries, and
// only when the pure heuristics say so.
func TestAutoModeTraceMatchesHeuristic(t *testing.T) {
	for gi, g := range append(kernelCases(), adversarialGraphs()...) {
		n := g.N()
		ws := NewDistWorkspace(g)
		var buf []int64
		for src := 0; src < n; src += 1 + n/5 {
			for _, l := range []int{2, n/2 + 1, 2 * n} {
				ws.SetKernelMode(KernelSparse)
				buf = ws.BoundedHopDistInto(buf, src, l)
				fronts := append([]int32(nil), ws.hopFronts...)

				ws.SetKernelMode(KernelAuto)
				buf = ws.BoundedHopDistInto(buf, src, l)
				if !reflect.DeepEqual(ws.hopFronts, fronts) {
					t.Fatalf("graph %d src=%d l=%d: auto frontier sizes diverged from sparse", gi, src, l)
				}
				if len(ws.hopModes) != len(fronts) {
					t.Fatalf("graph %d src=%d l=%d: %d hop modes for %d hops", gi, src, l, len(ws.hopModes), len(fronts))
				}
				dense := false
				for hop, f := range fronts {
					if !dense && hopGoesDense(int(f), n) {
						dense = true
					} else if dense && hopGoesSparse(int(f), n) {
						dense = false
					}
					want := KernelSparse
					if dense {
						want = KernelDense
					}
					if ws.hopModes[hop] != want {
						t.Fatalf("graph %d src=%d l=%d hop %d (frontier %d): ran %v, heuristic says %v",
							gi, src, l, hop, f, ws.hopModes[hop], want)
					}
				}
			}
		}
	}
}

// TestCloneResetCannotCorruptSharedCSR is the Clone/Reset regression
// test: Reset on a clone must detach onto a fresh CSR — the shared
// adjacency may still be serving the parent and sibling clones — and
// both workspaces must keep answering correctly afterwards.
func TestCloneResetCannotCorruptSharedCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g1 := RandomWeights(RandomConnected(30, 80, rng), 9, rng)
	g2 := RandomWeights(Star(12), 5, rng)

	ws := NewDistWorkspace(g1)
	want1 := append([]int64(nil), ws.DijkstraInto(nil, 0)...)

	cl := ws.Clone()
	cl.Reset(g2)
	if cl.adj == ws.adj {
		t.Fatal("Reset on a clone mutated the shared CSR in place")
	}
	want2 := g2.Dijkstra(0)
	if got := cl.DijkstraInto(nil, 0); !reflect.DeepEqual(got, want2) {
		t.Fatal("reset clone answers wrong distances for its new graph")
	}
	if got := ws.DijkstraInto(nil, 0); !reflect.DeepEqual(got, want1) {
		t.Fatal("parent workspace corrupted by a clone's Reset")
	}
	// A detached clone is a full owner: a second Reset may rebuild in
	// place again, and further Clones chain off the new CSR.
	cl.Reset(g1)
	if got := cl.DijkstraInto(nil, 0); !reflect.DeepEqual(got, want1) {
		t.Fatal("re-reset clone answers wrong distances")
	}
}

// TestClonesRaceCleanly runs several clones concurrently on overlapping
// sources under every kernel mode and checks each result against a
// sequential pass. Run under -race in CI: the clones must share only
// the read-only CSR.
func TestClonesRaceCleanly(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := RandomWeights(SpineLeaf(3, 6, 5, 2, 1), 9, rng)
	n := g.N()
	ws := NewDistWorkspace(g)
	l := n / 2

	for _, m := range KernelModes() {
		ws.SetKernelMode(m)
		want := make([][]int64, n)
		ref := ws.Clone()
		for src := 0; src < n; src++ {
			want[src] = append([]int64(nil), ref.BoundedHopDistInto(nil, src, l)...)
		}
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		var wg sync.WaitGroup
		errs := make([]string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cl := ws.Clone()
				var buf []int64
				// Overlapping stride: every worker touches every source.
				for src := 0; src < n; src++ {
					s := (src + w*3) % n
					buf = cl.BoundedHopDistInto(buf, s, l)
					if !reflect.DeepEqual(buf, want[s]) {
						errs[w] = "clone diverged from sequential pass"
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for w, e := range errs {
			if e != "" {
				t.Fatalf("mode %v worker %d: %s", m, w, e)
			}
		}
	}
}

// TestKernelModeAllocGuard: the dense engine's bitset arenas (and every
// other mode's scratch) must come from the workspace pool — a warm
// workspace computes with zero allocations. This is the CI allocation
// guard for the dense-mode steady state.
func TestKernelModeAllocGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := RandomWeights(RandomConnected(200, 800, rng), 9, rng)
	for _, m := range KernelModes() {
		ws := NewDistWorkspace(g)
		ws.SetKernelMode(m)
		var dst []int64
		// Warm every engine path this mode can take (delta may fall back
		// to the hop-synchronous engines when the budget binds).
		for src := 0; src < 3; src++ {
			dst = ws.BoundedHopDistInto(dst, src, 32)
			dst = ws.BFSInto(dst, src)
		}
		allocs := testing.AllocsPerRun(50, func() {
			dst = ws.BoundedHopDistInto(dst, 5, 32)
			dst = ws.BFSInto(dst, 6)
		})
		if allocs != 0 {
			t.Fatalf("mode %v: warm workspace allocates %.0f objects per call, want 0", m, allocs)
		}
	}
}

func TestParseKernelMode(t *testing.T) {
	for _, m := range KernelModes() {
		got, err := ParseKernelMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round-trip of %v: got %v, err %v", m, got, err)
		}
	}
	if m, err := ParseKernelMode(""); err != nil || m != KernelAuto {
		t.Fatalf("empty string: got %v, err %v", m, err)
	}
	if _, err := ParseKernelMode("quantum"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// FuzzKernelEquivalence fuzzes random graphs, sources, and scale
// parameters across every kernel mode: distance vectors must be
// bit-identical, hop-synchronous modes must execute identical hop
// counts, and BFS levels must agree — all against the golden
// full-edge-scan reference. The corpus is seeded with the adversarial
// shapes (star, long path, spine-leaf, disconnected union).
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(40), uint8(3), uint8(10), uint8(0), uint8(0)) // random connected
	f.Add(int64(2), uint8(1), uint8(64), uint8(8), uint8(2), uint8(1), uint8(1))  // star, word boundary
	f.Add(int64(3), uint8(2), uint8(90), uint8(1), uint8(80), uint8(0), uint8(2)) // long path
	f.Add(int64(4), uint8(3), uint8(70), uint8(12), uint8(6), uint8(3), uint8(0)) // spine-leaf
	f.Add(int64(5), uint8(4), uint8(50), uint8(5), uint8(4), uint8(2), uint8(1))  // disconnected union
	f.Add(int64(6), uint8(5), uint8(33), uint8(7), uint8(9), uint8(5), uint8(2))  // grid
	f.Fuzz(func(t *testing.T, seed int64, shape, nRaw, wRaw, lRaw, shiftRaw, capRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%96
		maxw := 1 + int64(wRaw)%24
		var g *Graph
		switch shape % 6 {
		case 0:
			g = RandomWeights(RandomConnected(n, 3*n, rng), maxw, rng)
		case 1:
			g = RandomWeights(Star(n), maxw, rng)
		case 2:
			g = Path(n)
		case 3:
			g = RandomWeights(SpineLeaf(2+n/24, 3+n/16, 4, 2, 1), maxw, rng)
		case 4:
			g = disjointUnion(Star(2+n/2), RandomWeights(Path(2+n/3), maxw, rng))
		default:
			g = RandomWeights(Grid(2+n/16, 3), maxw, rng)
		}
		n = g.N()
		src := rng.Intn(n)
		l := 1 + int(lRaw)%(n+3)
		shift := uint(shiftRaw) % 6
		cap64 := Inf
		if capRaw%3 == 1 {
			cap64 = 1 + rng.Int63n(int64(n)*maxw+1)
		}

		ws := NewDistWorkspace(g)
		ws.SetKernelMode(KernelSparse)
		sparse := ws.BoundedHopInto(nil, src, l, nil, shift, cap64)
		hops := len(ws.hopModes)
		bfsRef := ws.BFSInto(nil, src)
		if want := refCappedMul(g, src, l, 1, shift, cap64); !reflect.DeepEqual(sparse, want) {
			t.Fatalf("sparse diverged from golden reference (n=%d src=%d l=%d shift=%d cap=%d)", n, src, l, shift, cap64)
		}
		for _, m := range []KernelMode{KernelAuto, KernelDense, KernelDelta} {
			ws.SetKernelMode(m)
			if got := ws.BoundedHopInto(nil, src, l, nil, shift, cap64); !reflect.DeepEqual(got, sparse) {
				t.Fatalf("mode %v distances diverged (n=%d src=%d l=%d shift=%d cap=%d)", m, n, src, l, shift, cap64)
			}
			if m != KernelDelta && len(ws.hopModes) != hops {
				t.Fatalf("mode %v executed %d hops, sparse %d", m, len(ws.hopModes), hops)
			}
			if got := ws.BFSInto(nil, src); !reflect.DeepEqual(got, bfsRef) {
				t.Fatalf("mode %v BFS diverged (n=%d src=%d)", m, n, src)
			}
		}
	})
}
