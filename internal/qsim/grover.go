package qsim

import (
	"math"
	"math/rand"
)

// Engine abstracts how amplitude amplification is executed: Exact runs the
// full state vector; Sampled draws outcomes from the closed-form success
// law sin²((2j+1)θ) with θ = asin(√(k/N)). Tests verify the two agree, so
// large-domain runs can use Sampled without losing fidelity of either the
// outcome distribution or the query counts.
type Engine int

// Engines.
const (
	Exact Engine = iota
	Sampled
)

// SearchResult reports one search run.
type SearchResult struct {
	Found    bool   // a marked element was located
	Outcome  uint64 // the located element (valid when Found)
	Queries  int64  // oracle invocations (Grover iterations + verification)
	Rounds   int64  // Grover iterations only (each costs Setup+Eval+inverses)
	Measures int64  // number of measurements (each costs one verification)
}

// GroverIterate runs j Grover iterations on the uniform superposition over
// domain and returns the resulting state (Exact engine building block).
func GroverIterate(domain uint64, marked func(uint64) bool, j int) *State {
	s := NewUniform(domain)
	axis := NewUniform(domain)
	// Padding states above the domain carry zero amplitude; guard the
	// oracle so predicates defined only on [0, domain) stay safe.
	guarded := func(x uint64) bool { return x < domain && marked(x) }
	for it := 0; it < j; it++ {
		s.OraclePhaseFlip(guarded)
		s.ReflectAbout(axis)
	}
	return s
}

// SuccessProbability returns the exact Grover success law
// sin²((2j+1)·asin(√(k/N))) for k marked items among N after j iterations.
func SuccessProbability(n, k uint64, j int) float64 {
	if k == 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	theta := math.Asin(math.Sqrt(float64(k) / float64(n)))
	v := math.Sin(float64(2*j+1) * theta)
	return v * v
}

// countMarked enumerates the domain (the simulator stands in for physics;
// the algorithm itself never uses this number).
func countMarked(domain uint64, marked func(uint64) bool) uint64 {
	var k uint64
	for x := uint64(0); x < domain; x++ {
		if marked(x) {
			k++
		}
	}
	return k
}

// runGrover executes j Grover iterations and one measurement, via the
// chosen engine, returning the measured basis state.
func runGrover(e Engine, domain uint64, marked func(uint64) bool, j int, rng *rand.Rand) uint64 {
	if e == Exact {
		s := GroverIterate(domain, marked, j)
		// Restrict measurement to the domain (padding amplitudes are 0).
		return s.Measure(rng)
	}
	k := countMarked(domain, marked)
	p := SuccessProbability(domain, k, j)
	if rng.Float64() < p {
		// Uniform over marked items.
		idx := rng.Int63n(int64(k))
		for x := uint64(0); x < domain; x++ {
			if marked(x) {
				if idx == 0 {
					return x
				}
				idx--
			}
		}
	}
	if k == domain {
		return uint64(rng.Int63n(int64(domain)))
	}
	// Uniform over unmarked items.
	idx := rng.Int63n(int64(domain - k))
	for x := uint64(0); x < domain; x++ {
		if !marked(x) {
			if idx == 0 {
				return x
			}
			idx--
		}
	}
	return 0
}

// BBHT runs the Boyer-Brassard-Høyer-Tapp search for a marked element when
// the number of marked elements is unknown. It returns the element if one
// exists (with the canonical expected O(√(N/k)) oracle queries) and gives
// up after the standard timeout when none does.
func BBHT(e Engine, domain uint64, marked func(uint64) bool, rng *rand.Rand) SearchResult {
	var res SearchResult
	m := 1.0
	lambda := 6.0 / 5.0
	sqrtN := math.Sqrt(float64(domain))
	// After the total query count (iterations plus verification
	// measurements — the latter matter on tiny domains where the iteration
	// counts round to zero) exceeds ~9√N, a marked element would have been
	// found with overwhelming probability; conclude none exists.
	budget := int64(9*sqrtN) + 16
	for res.Queries <= budget {
		j := rng.Intn(int(m))
		x := runGrover(e, domain, marked, j, rng)
		res.Rounds += int64(j)
		res.Measures++
		res.Queries += int64(j) + 1 // +1: classical verification of x
		if marked(x) {
			res.Found = true
			res.Outcome = x
			return res
		}
		m = math.Min(lambda*m, sqrtN)
		if m < 1 {
			m = 1
		}
	}
	return res
}

// MaxResult reports a maximum-finding run.
type MaxResult struct {
	Index   uint64 // argmax over the domain
	Value   int64  // f(Index)
	Queries int64  // total oracle invocations across all BBHT phases
	Rounds  int64  // total Grover iterations across all BBHT phases
}

// DurrHoyerMax finds argmax f over [0, domain) by the Dürr-Høyer threshold
// method: keep a threshold element, BBHT-search for a strictly better one,
// repeat until the search fails. Expected O(√N) total oracle queries.
func DurrHoyerMax(e Engine, domain uint64, f func(uint64) int64, rng *rand.Rand) MaxResult {
	best := uint64(rng.Int63n(int64(domain)))
	var out MaxResult
	out.Queries++ // initial classical evaluation of the random start
	for {
		bv := f(best)
		res := BBHT(e, domain, func(x uint64) bool { return f(x) > bv }, rng)
		out.Queries += res.Queries
		out.Rounds += res.Rounds
		if !res.Found {
			out.Index = best
			out.Value = bv
			return out
		}
		best = res.Outcome
	}
}

// DurrHoyerMin is the minimizing variant of DurrHoyerMax.
func DurrHoyerMin(e Engine, domain uint64, f func(uint64) int64, rng *rand.Rand) MaxResult {
	r := DurrHoyerMax(e, domain, func(x uint64) int64 { return -f(x) }, rng)
	r.Value = -r.Value
	return r
}

// ThresholdSearch implements the Lemma 3.1 interface: given that the
// fraction of domain elements with f(x) >= M is at least rho (M unknown to
// the caller), find such an element with probability >= 1-delta. It runs
// ceil(√(ln(1/δ)/ρ)) rounds of fixed-schedule amplitude amplification: the
// standard "repeat Grover with exponentially growing iteration counts"
// driver, giving up after the budget implied by rho and delta.
//
// Marked is the predicate "f(x) >= M", supplied by the caller's Evaluation
// procedure (classically simulated; each invocation is a charged query).
func ThresholdSearch(e Engine, domain uint64, marked func(uint64) bool, rho, delta float64, rng *rand.Rand) SearchResult {
	if rho <= 0 || rho > 1 {
		rho = 1 / float64(domain)
	}
	if delta <= 0 || delta >= 1 {
		delta = 1e-9
	}
	attempts := int(math.Ceil(math.Log(1/delta))) + 1
	var res SearchResult
	for a := 0; a < attempts; a++ {
		r := BBHT(e, domain, marked, rng)
		res.Queries += r.Queries
		res.Rounds += r.Rounds
		res.Measures += r.Measures
		if r.Found {
			res.Found = true
			res.Outcome = r.Outcome
			return res
		}
	}
	return res
}
