// Package qsim is an exact state-vector quantum simulator with the search
// primitives the paper's algorithm relies on: Grover iteration, the
// Boyer-Brassard-Høyer-Tapp (BBHT) search with an unknown number of marked
// items, and Dürr-Høyer maximum finding. The simulator validates the
// success law sin²((2t+1)θ) that the large-domain sampled engine
// (internal/qdist) charges rounds against.
//
// The paper's quantum CONGEST algorithm uses these primitives through the
// distributed quantum optimization framework (Lemma 3.1); the number of
// amplitude-amplification iterations is the quantity that drives round
// complexity, and both engines here reproduce its exact distribution.
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// State is a pure quantum state on n qubits, stored as 2^n complex
// amplitudes in computational-basis order.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0> on n qubits (1 <= n <= 24; 24 qubits is 256 MiB
// of amplitudes, the practical cap for tests).
func NewState(n int) *State {
	if n < 1 || n > 24 {
		panic(fmt.Sprintf("qsim: qubit count %d outside [1,24]", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// NewUniform returns the uniform superposition over basis states
// 0..domain-1 (domain need not be a power of two), on the fewest qubits
// that can hold it. This is the Setup state of the optimization framework.
func NewUniform(domain uint64) *State {
	if domain == 0 {
		panic("qsim: empty domain")
	}
	n := 1
	for uint64(1)<<uint(n) < domain {
		n++
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	a := complex(1/math.Sqrt(float64(domain)), 0)
	for x := uint64(0); x < domain; x++ {
		s.amp[x] = a
	}
	return s
}

// Qubits returns the number of qubits.
func (s *State) Qubits() int { return s.n }

// Dim returns the state dimension 2^n.
func (s *State) Dim() int { return len(s.amp) }

// Amplitude returns the amplitude of basis state x.
func (s *State) Amplitude(x uint64) complex128 { return s.amp[x] }

// Prob returns the measurement probability of basis state x.
func (s *State) Prob(x uint64) float64 {
	a := s.amp[x]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Norm returns the 2-norm of the state (1 up to float error for valid
// states).
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// H applies the Hadamard gate to qubit q (qubit 0 is the least-significant
// bit).
func (s *State) H(q int) {
	s.checkQubit(q)
	mask := uint64(1) << uint(q)
	inv := complex(1/math.Sqrt2, 0)
	for x := uint64(0); x < uint64(len(s.amp)); x++ {
		if x&mask == 0 {
			a, b := s.amp[x], s.amp[x|mask]
			s.amp[x] = inv * (a + b)
			s.amp[x|mask] = inv * (a - b)
		}
	}
}

// X applies the Pauli-X (NOT) gate to qubit q.
func (s *State) X(q int) {
	s.checkQubit(q)
	mask := uint64(1) << uint(q)
	for x := uint64(0); x < uint64(len(s.amp)); x++ {
		if x&mask == 0 {
			s.amp[x], s.amp[x|mask] = s.amp[x|mask], s.amp[x]
		}
	}
}

// Z applies the Pauli-Z gate to qubit q.
func (s *State) Z(q int) {
	s.checkQubit(q)
	mask := uint64(1) << uint(q)
	for x := uint64(0); x < uint64(len(s.amp)); x++ {
		if x&mask != 0 {
			s.amp[x] = -s.amp[x]
		}
	}
}

// Phase applies the phase gate diag(1, e^{iθ}) to qubit q.
func (s *State) Phase(q int, theta float64) {
	s.checkQubit(q)
	mask := uint64(1) << uint(q)
	p := cmplx.Exp(complex(0, theta))
	for x := uint64(0); x < uint64(len(s.amp)); x++ {
		if x&mask != 0 {
			s.amp[x] *= p
		}
	}
}

// CNOT applies a controlled-NOT with the given control and target qubits.
func (s *State) CNOT(control, target int) {
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("qsim: CNOT control equals target")
	}
	cm := uint64(1) << uint(control)
	tm := uint64(1) << uint(target)
	for x := uint64(0); x < uint64(len(s.amp)); x++ {
		if x&cm != 0 && x&tm == 0 {
			s.amp[x], s.amp[x|tm] = s.amp[x|tm], s.amp[x]
		}
	}
}

// CZ applies a controlled-Z between two qubits.
func (s *State) CZ(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("qsim: CZ control equals target")
	}
	am := uint64(1) << uint(a)
	bm := uint64(1) << uint(b)
	for x := uint64(0); x < uint64(len(s.amp)); x++ {
		if x&am != 0 && x&bm != 0 {
			s.amp[x] = -s.amp[x]
		}
	}
}

// OraclePhaseFlip multiplies the amplitude of every basis state x with
// marked(x) by -1. This is the standard phase oracle built from a
// reversible evaluation of the predicate.
func (s *State) OraclePhaseFlip(marked func(uint64) bool) {
	for x := uint64(0); x < uint64(len(s.amp)); x++ {
		if marked(x) {
			s.amp[x] = -s.amp[x]
		}
	}
}

// ReflectAbout reflects the state about the given axis state:
// |ψ> -> 2|a><a|ψ> - |ψ>. The axis must be normalized and of the same
// dimension.
func (s *State) ReflectAbout(axis *State) {
	if axis.n != s.n {
		panic("qsim: reflection axis dimension mismatch")
	}
	var inner complex128
	for x := range s.amp {
		inner += cmplx.Conj(axis.amp[x]) * s.amp[x]
	}
	for x := range s.amp {
		s.amp[x] = 2*inner*axis.amp[x] - s.amp[x]
	}
}

// Measure samples a basis state from the current distribution. The state
// is not collapsed (callers re-prepare between runs, as the distributed
// framework does).
func (s *State) Measure(rng *rand.Rand) uint64 {
	u := rng.Float64()
	var acc float64
	for x := uint64(0); x < uint64(len(s.amp)); x++ {
		acc += s.Prob(x)
		if u < acc {
			return x
		}
	}
	return uint64(len(s.amp) - 1)
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(out.amp, s.amp)
	return out
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("qsim: qubit %d outside [0,%d)", q, s.n))
	}
}
