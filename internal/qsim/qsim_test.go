package qsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func TestNewStateIsZero(t *testing.T) {
	s := NewState(3)
	if s.Dim() != 8 {
		t.Fatalf("dim = %d, want 8", s.Dim())
	}
	if p := s.Prob(0); math.Abs(p-1) > tol {
		t.Fatalf("P(|000>) = %f, want 1", p)
	}
}

func TestHadamardUniform(t *testing.T) {
	s := NewState(3)
	for q := 0; q < 3; q++ {
		s.H(q)
	}
	for x := uint64(0); x < 8; x++ {
		if p := s.Prob(x); math.Abs(p-0.125) > tol {
			t.Fatalf("P(%d) = %f, want 1/8", x, p)
		}
	}
	if n := s.Norm(); math.Abs(n-1) > tol {
		t.Fatalf("norm = %f", n)
	}
}

func TestHadamardSelfInverse(t *testing.T) {
	s := NewState(2)
	s.H(0)
	s.H(1)
	s.H(0)
	s.H(1)
	if p := s.Prob(0); math.Abs(p-1) > tol {
		t.Fatalf("HH != I: P(|00>) = %f", p)
	}
}

func TestXGate(t *testing.T) {
	s := NewState(2)
	s.X(1)
	if p := s.Prob(0b10); math.Abs(p-1) > tol {
		t.Fatalf("X on qubit 1 gave P(10) = %f", p)
	}
}

func TestCNOTBellState(t *testing.T) {
	s := NewState(2)
	s.H(0)
	s.CNOT(0, 1)
	if p00, p11 := s.Prob(0b00), s.Prob(0b11); math.Abs(p00-0.5) > tol || math.Abs(p11-0.5) > tol {
		t.Fatalf("Bell state probs = %f, %f, want 0.5, 0.5", p00, p11)
	}
	if p01, p10 := s.Prob(0b01), s.Prob(0b10); p01 > tol || p10 > tol {
		t.Fatalf("Bell state has weight on 01/10: %f, %f", p01, p10)
	}
}

func TestZAndCZSigns(t *testing.T) {
	s := NewState(2)
	s.H(0)
	s.H(1)
	s.Z(0)
	if a := s.Amplitude(0b01); real(a) >= 0 {
		t.Fatal("Z did not flip sign of |01> component")
	}
	s2 := NewState(2)
	s2.H(0)
	s2.H(1)
	s2.CZ(0, 1)
	if a := s2.Amplitude(0b11); real(a) >= 0 {
		t.Fatal("CZ did not flip sign of |11> component")
	}
	if a := s2.Amplitude(0b01); real(a) <= 0 {
		t.Fatal("CZ flipped sign of |01> component")
	}
}

func TestPhaseGate(t *testing.T) {
	s := NewState(1)
	s.H(0)
	s.Phase(0, math.Pi) // equivalent to Z
	s.H(0)
	if p := s.Prob(1); math.Abs(p-1) > tol {
		t.Fatalf("HZH != X: P(|1>) = %f", p)
	}
}

func TestNewUniformNonPowerOfTwo(t *testing.T) {
	s := NewUniform(5)
	for x := uint64(0); x < 5; x++ {
		if p := s.Prob(x); math.Abs(p-0.2) > tol {
			t.Fatalf("P(%d) = %f, want 0.2", x, p)
		}
	}
	for x := uint64(5); x < uint64(s.Dim()); x++ {
		if s.Prob(x) > tol {
			t.Fatalf("padding state %d has weight %f", x, s.Prob(x))
		}
	}
}

func TestGroverSingleMarkedExactLaw(t *testing.T) {
	// 16 items, 1 marked: the success probability after j iterations must
	// match sin²((2j+1)θ) exactly.
	const domain = 16
	marked := func(x uint64) bool { return x == 11 }
	for j := 0; j <= 6; j++ {
		s := GroverIterate(domain, marked, j)
		want := SuccessProbability(domain, 1, j)
		if got := s.Prob(11); math.Abs(got-want) > 1e-9 {
			t.Fatalf("j=%d: P(marked) = %.12f, want %.12f", j, got, want)
		}
	}
}

func TestGroverOptimalIterations(t *testing.T) {
	// At j ≈ (π/4)√N the success probability is near 1.
	const domain = 256
	marked := func(x uint64) bool { return x == 200 }
	theta := math.Asin(math.Sqrt(1.0 / domain))
	j := int(math.Round(math.Pi/(4*theta) - 0.5))
	s := GroverIterate(domain, marked, j)
	if p := s.Prob(200); p < 0.999 {
		t.Fatalf("P(marked) after %d iterations = %f, want > 0.999", j, p)
	}
}

func TestGroverMultipleMarked(t *testing.T) {
	const domain = 64
	markedSet := map[uint64]bool{3: true, 17: true, 42: true, 63: true}
	marked := func(x uint64) bool { return markedSet[x] }
	for j := 0; j <= 4; j++ {
		s := GroverIterate(domain, marked, j)
		var got float64
		for x := range markedSet {
			got += s.Prob(x)
		}
		want := SuccessProbability(domain, 4, j)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("j=%d: total marked prob %.12f, want %.12f", j, got, want)
		}
	}
}

func TestBBHTFindsMarked(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, e := range []Engine{Exact, Sampled} {
		for trial := 0; trial < 20; trial++ {
			target := uint64(rng.Intn(128))
			res := BBHT(e, 128, func(x uint64) bool { return x == target }, rng)
			if !res.Found || res.Outcome != target {
				t.Fatalf("engine %v trial %d: BBHT missed the marked item", e, trial)
			}
		}
	}
}

func TestBBHTNoMarked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res := BBHT(Sampled, 64, func(uint64) bool { return false }, rng)
	if res.Found {
		t.Fatal("BBHT found a marked item in an unmarked domain")
	}
	if res.Queries == 0 {
		t.Fatal("BBHT reported zero queries")
	}
}

func TestBBHTQueryScaling(t *testing.T) {
	// Average queries for a single marked item should grow ~√N: going from
	// N=64 to N=1024 (16x) should grow queries by roughly 4x, certainly
	// less than 16x (which would be classical).
	rng := rand.New(rand.NewSource(3))
	avg := func(domain uint64) float64 {
		var total int64
		const trials = 200
		for i := 0; i < trials; i++ {
			target := uint64(rng.Int63n(int64(domain)))
			res := BBHT(Sampled, domain, func(x uint64) bool { return x == target }, rng)
			if !res.Found {
				t.Fatal("BBHT missed")
			}
			total += res.Queries
		}
		return float64(total) / trials
	}
	small, large := avg(64), avg(1024)
	ratio := large / small
	if ratio > 8 {
		t.Fatalf("query ratio %f for 16x domain growth; want ~4 (quantum), got classical-like scaling", ratio)
	}
	if ratio < 1.5 {
		t.Fatalf("query ratio %f is implausibly flat", ratio)
	}
}

func TestEnginesAgreeOnSuccessRate(t *testing.T) {
	// Exact and Sampled engines must have statistically indistinguishable
	// success rates for a fixed iteration count.
	const domain = 32
	const j = 2
	marked := func(x uint64) bool { return x < 3 }
	want := SuccessProbability(domain, 3, j)
	for _, e := range []Engine{Exact, Sampled} {
		rng := rand.New(rand.NewSource(7))
		hits := 0
		const trials = 3000
		for i := 0; i < trials; i++ {
			if marked(runGrover(e, domain, marked, j, rng)) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-want) > 0.04 {
			t.Fatalf("engine %v: success rate %f, law %f", e, got, want)
		}
	}
}

func TestDurrHoyerMaxCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, e := range []Engine{Exact, Sampled} {
		for trial := 0; trial < 15; trial++ {
			n := uint64(20 + rng.Intn(100))
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = rng.Int63n(1000)
			}
			res := DurrHoyerMax(e, n, func(x uint64) int64 { return vals[x] }, rng)
			var want int64 = -1
			for _, v := range vals {
				if v > want {
					want = v
				}
			}
			if res.Value != want {
				t.Fatalf("engine %v trial %d: max = %d, want %d", e, trial, res.Value, want)
			}
		}
	}
}

func TestDurrHoyerMinCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := []int64{9, 4, 7, 1, 8, 3, 6}
	res := DurrHoyerMin(Sampled, uint64(len(vals)), func(x uint64) int64 { return vals[x] }, rng)
	if res.Value != 1 || res.Index != 3 {
		t.Fatalf("min = (%d, %d), want (1, 3)", res.Value, res.Index)
	}
}

func TestDurrHoyerQueryScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	avg := func(n uint64) float64 {
		var total int64
		const trials = 60
		for i := 0; i < trials; i++ {
			vals := make([]int64, n)
			for j := range vals {
				vals[j] = rng.Int63n(1 << 30)
			}
			res := DurrHoyerMax(Sampled, n, func(x uint64) int64 { return vals[x] }, rng)
			total += res.Queries
		}
		return float64(total) / trials
	}
	small, large := avg(64), avg(1024)
	if ratio := large / small; ratio > 8 {
		t.Fatalf("Dürr-Høyer query ratio %f for 16x domain; want ~4", ratio)
	}
}

func TestThresholdSearchRespectsPromise(t *testing.T) {
	// 10% of items are above the hidden threshold; the search must find one
	// with high probability.
	rng := rand.New(rand.NewSource(11))
	const domain = 200
	marked := func(x uint64) bool { return x%10 == 0 }
	misses := 0
	for trial := 0; trial < 50; trial++ {
		res := ThresholdSearch(Sampled, domain, marked, 0.1, 1e-6, rng)
		if !res.Found {
			misses++
		} else if !marked(res.Outcome) {
			t.Fatal("threshold search returned an unmarked item as found")
		}
	}
	if misses > 1 {
		t.Fatalf("%d/50 threshold searches missed despite the promise", misses)
	}
}

func TestPropertyGateUnitarity(t *testing.T) {
	// Random circuits preserve the norm.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState(4)
		for i := 0; i < 30; i++ {
			q := rng.Intn(4)
			switch rng.Intn(5) {
			case 0:
				s.H(q)
			case 1:
				s.X(q)
			case 2:
				s.Z(q)
			case 3:
				s.Phase(q, rng.Float64()*2*math.Pi)
			case 4:
				r := rng.Intn(4)
				if r != q {
					s.CNOT(q, r)
				}
			}
		}
		return math.Abs(s.Norm()-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGatePanics(t *testing.T) {
	s := NewState(2)
	for name, f := range map[string]func(){
		"H out of range":   func() { s.H(2) },
		"CNOT same qubit":  func() { s.CNOT(1, 1) },
		"CZ same qubit":    func() { s.CZ(0, 0) },
		"too many qubits":  func() { NewState(25) },
		"zero qubits":      func() { NewState(0) },
		"empty uniform":    func() { NewUniform(0) },
		"reflect mismatch": func() { s.ReflectAbout(NewState(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMeasureDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewState(2)
	s.H(0) // uniform over {00, 01}
	counts := map[uint64]int{}
	const trials = 4000
	for i := 0; i < trials; i++ {
		counts[s.Measure(rng)]++
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatal("measured a zero-amplitude state")
	}
	if f := float64(counts[0]) / trials; math.Abs(f-0.5) > 0.05 {
		t.Fatalf("P(00) estimated %f, want 0.5", f)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewState(2)
	s.H(0)
	c := s.Clone()
	c.X(1)
	if s.Prob(0b10)+s.Prob(0b11) > tol {
		t.Fatal("mutating the clone changed the original")
	}
	if c.Qubits() != 2 {
		t.Fatalf("clone qubits = %d", c.Qubits())
	}
}

func TestReflectAboutUniformIsDiffusion(t *testing.T) {
	// Reflecting |0> about the uniform state gives amplitudes 2/N - δ_x0.
	s := NewState(3)
	axis := NewUniform(8)
	s.ReflectAbout(axis)
	want0 := 2.0/8 - 1
	if a := real(s.Amplitude(0)); math.Abs(a-want0) > tol {
		t.Fatalf("amp(0) = %f, want %f", a, want0)
	}
	for x := uint64(1); x < 8; x++ {
		if a := real(s.Amplitude(x)); math.Abs(a-0.25) > tol {
			t.Fatalf("amp(%d) = %f, want 0.25", x, a)
		}
	}
}

func TestSuccessProbabilityEdgeCases(t *testing.T) {
	if p := SuccessProbability(16, 0, 5); p != 0 {
		t.Fatalf("k=0 gave %f", p)
	}
	if p := SuccessProbability(16, 16, 0); p != 1 {
		t.Fatalf("k=n gave %f", p)
	}
	if p := SuccessProbability(16, 20, 3); p != 1 {
		t.Fatalf("k>n gave %f", p)
	}
}
