package gadget

import (
	"fmt"

	"qcongest/internal/graph"
)

// Construction is an instantiated lower-bound network: the Figure 1 base
// (binary tree of height h plus m paths of length 2^h − 1) with the
// input-dependent Alice/Bob sides of Figure 2 (diameter) or Figure 4
// (radius). Node identities for every named vertex of the paper are
// retained so experiments can reference them directly.
type Construction struct {
	// G is the assembled weighted network.
	G *graph.Graph

	// Parameters (Eq. 2): h even, s = 3h/2, ℓ = 2^(s−h).
	H, S, L int
	// Alpha and Beta are the two gadget weights α < β (the theorems use
	// α = n², β = 2n²).
	Alpha, Beta int64

	// Tree is the Figure 1 binary tree: Tree[i][j] is t_{i+0,j+1}
	// (depth i, 0-based column).
	Tree [][]int
	// Paths holds the Figure 1 paths: Paths[i][j] is p_{i+1,j+1}.
	Paths [][]int

	// A is the Alice row vertices: A[i] is a_{i+1}.
	A []int
	// A01 is Alice's selector pairs: A01[i][c] is a^c_{i+1}.
	A01 [][2]int
	// AStar is Alice's star vertices: AStar[j] is a*_{j+1}.
	AStar []int
	// AZero is the radius hub a_0 (−1 for the diameter gadget).
	AZero int

	// B is the Bob row vertices, mirroring A.
	B []int
	// B01 is Bob's selector pairs, mirroring A01.
	B01 [][2]int
	// BStar is Bob's star vertices, mirroring AStar.
	BStar []int

	// VS, VA, VB partition the nodes for the Server-model simulation
	// (server / Alice / Bob initial ownership).
	VS, VA, VB []int
}

// EqTwoParams returns the Eq. (2) parameter triple for an even h:
// s = 3h/2 and ℓ = 2^(s−h) = 2^(h/2).
func EqTwoParams(h int) (s, l int, err error) {
	if h < 2 || h%2 != 0 {
		return 0, 0, fmt.Errorf("gadget: h must be even and >= 2, got %d", h)
	}
	s = 3 * h / 2
	l = 1 << uint(s-h)
	return s, l, nil
}

// NodeCount returns the paper's closed-form node count
// (2^(h+1) − 1) + (2s + ℓ)(2^h + 2) + 2·2^s for the diameter gadget.
func NodeCount(h int) (int, error) {
	s, l, err := EqTwoParams(h)
	if err != nil {
		return 0, err
	}
	return (1<<uint(h+1) - 1) + (2*s+l)*(1<<uint(h)+2) + 2*(1<<uint(s)), nil
}

// BuildDiameter constructs the Figure 2 weighted network for inputs
// x, y ∈ {0,1}^(2^s × ℓ) with weights α < β. Input dimensions must be
// 2^s rows by ℓ columns for the Eq. (2) parameters of h.
func BuildDiameter(h int, x, y *Input, alpha, beta int64) (*Construction, error) {
	return build(h, x, y, alpha, beta, false)
}

// BuildRadius constructs the Figure 4 network: the diameter gadget plus
// the hub a_0 joined to every a_i by weight-2α edges.
func BuildRadius(h int, x, y *Input, alpha, beta int64) (*Construction, error) {
	return build(h, x, y, alpha, beta, true)
}

func build(h int, x, y *Input, alpha, beta int64, radius bool) (*Construction, error) {
	s, l, err := EqTwoParams(h)
	if err != nil {
		return nil, err
	}
	if alpha < 1 || beta <= alpha {
		return nil, fmt.Errorf("gadget: need 1 <= α < β, got α=%d β=%d", alpha, beta)
	}
	rows := 1 << uint(s)
	for name, in := range map[string]*Input{"x": x, "y": y} {
		if in == nil || in.Rows != rows || in.Cols != l {
			return nil, fmt.Errorf("gadget: input %s must be %d x %d", name, rows, l)
		}
	}

	width := 1 << uint(h) // 2^h: path length and leaf count
	m := 2*s + l          // number of paths
	n := (2*width - 1) + m*(width+2) + 2*rows
	if radius {
		n++
	}
	g := graph.New(n)
	c := &Construction{G: g, H: h, S: s, L: l, Alpha: alpha, Beta: beta, AZero: -1}

	next := 0
	alloc := func() int { id := next; next++; return id }

	// Binary tree: Tree[i] has 2^i nodes.
	c.Tree = make([][]int, h+1)
	for i := 0; i <= h; i++ {
		c.Tree[i] = make([]int, 1<<uint(i))
		for j := range c.Tree[i] {
			c.Tree[i][j] = alloc()
		}
	}
	for i := 1; i <= h; i++ {
		for j, id := range c.Tree[i] {
			g.MustAddEdge(id, c.Tree[i-1][j/2], 1)
		}
	}

	// Paths: m paths of 2^h nodes (length 2^h − 1), plus leaf attachments
	// of weight α.
	c.Paths = make([][]int, m)
	for i := 0; i < m; i++ {
		c.Paths[i] = make([]int, width)
		for j := range c.Paths[i] {
			c.Paths[i][j] = alloc()
			if j > 0 {
				g.MustAddEdge(c.Paths[i][j], c.Paths[i][j-1], 1)
			}
			g.MustAddEdge(c.Tree[h][j], c.Paths[i][j], alpha)
		}
	}

	// Alice side.
	c.A = make([]int, rows)
	for i := range c.A {
		c.A[i] = alloc()
	}
	c.A01 = make([][2]int, s)
	for i := range c.A01 {
		c.A01[i][0] = alloc()
		c.A01[i][1] = alloc()
	}
	c.AStar = make([]int, l)
	for j := range c.AStar {
		c.AStar[j] = alloc()
	}

	// Bob side.
	c.B = make([]int, rows)
	for i := range c.B {
		c.B[i] = alloc()
	}
	c.B01 = make([][2]int, s)
	for i := range c.B01 {
		c.B01[i][0] = alloc()
		c.B01[i][1] = alloc()
	}
	c.BStar = make([]int, l)
	for j := range c.BStar {
		c.BStar[j] = alloc()
	}

	// E': weight-1 attachments of selector and star nodes to path ends
	// ("including the endpoints in VA and VB" — §4.2 weight rules).
	for i := 0; i < s; i++ {
		g.MustAddEdge(c.A01[i][0], c.Paths[2*i][0], 1)
		g.MustAddEdge(c.B01[i][1], c.Paths[2*i][width-1], 1)
		g.MustAddEdge(c.A01[i][1], c.Paths[2*i+1][0], 1)
		g.MustAddEdge(c.B01[i][0], c.Paths[2*i+1][width-1], 1)
	}
	for j := 0; j < l; j++ {
		g.MustAddEdge(c.AStar[j], c.Paths[2*s+j][0], 1)
		g.MustAddEdge(c.BStar[j], c.Paths[2*s+j][width-1], 1)
	}

	// EA / EB: selector edges a_i — a^{bin(i,j)}_j of weight α, star edges
	// of weight α or β by the inputs, and the α-cliques.
	for i := 0; i < rows; i++ {
		for j := 0; j < s; j++ {
			bit := (i >> uint(j)) & 1
			g.MustAddEdge(c.A[i], c.A01[j][bit], alpha)
			g.MustAddEdge(c.B[i], c.B01[j][bit], alpha)
		}
		for j := 0; j < l; j++ {
			wx, wy := beta, beta
			if x.Get(i, j) {
				wx = alpha
			}
			if y.Get(i, j) {
				wy = alpha
			}
			g.MustAddEdge(c.A[i], c.AStar[j], wx)
			g.MustAddEdge(c.B[i], c.BStar[j], wy)
		}
		for k := i + 1; k < rows; k++ {
			g.MustAddEdge(c.A[i], c.A[k], alpha)
			g.MustAddEdge(c.B[i], c.B[k], alpha)
		}
	}

	if radius {
		c.AZero = alloc()
		for i := 0; i < rows; i++ {
			g.MustAddEdge(c.AZero, c.A[i], 2*alpha)
		}
	}
	if next != n {
		return nil, fmt.Errorf("gadget: allocated %d nodes, expected %d", next, n)
	}

	// Partition.
	for i := 0; i <= h; i++ {
		c.VS = append(c.VS, c.Tree[i]...)
	}
	for i := 0; i < m; i++ {
		c.VS = append(c.VS, c.Paths[i]...)
	}
	c.VA = append(c.VA, c.A...)
	for i := range c.A01 {
		c.VA = append(c.VA, c.A01[i][0], c.A01[i][1])
	}
	c.VA = append(c.VA, c.AStar...)
	if c.AZero >= 0 {
		c.VA = append(c.VA, c.AZero)
	}
	c.VB = append(c.VB, c.B...)
	for i := range c.B01 {
		c.VB = append(c.VB, c.B01[i][0], c.B01[i][1])
	}
	c.VB = append(c.VB, c.BStar...)

	return c, nil
}

// bin returns the j-th bit (0-based) of the 0-based row index i, matching
// the paper's bin(i, j) on 1-based arguments.
func bin(i, j int) int { return (i >> uint(j)) & 1 }

// Contract returns the Figure 3 / Figure 4 view: the graph after
// contracting all weight-1 edges.
func (c *Construction) Contract() *graph.Contraction {
	return c.G.ContractUnitEdges()
}

// TheoremWeights returns the α = n², β = 2n² choice used in the proofs of
// Theorems 4.2 and 4.8.
func TheoremWeights(h int) (alpha, beta int64, err error) {
	n, err := NodeCount(h)
	if err != nil {
		return 0, 0, err
	}
	alpha = int64(n) * int64(n)
	return alpha, 2 * alpha, nil
}
