package gadget

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormulaBasics(t *testing.T) {
	f := And(Or(Var(0), Var(1)), Not(Var(2)))
	tests := []struct {
		in   []bool
		want bool
	}{
		{[]bool{true, false, false}, true},
		{[]bool{false, true, false}, true},
		{[]bool{false, false, false}, false},
		{[]bool{true, true, true}, false},
	}
	for _, tt := range tests {
		if got := f.Eval(tt.in); got != tt.want {
			t.Errorf("Eval(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if !f.ReadOnce() {
		t.Error("formula should be read-once")
	}
	if f.Size() != 3 {
		t.Errorf("size = %d, want 3", f.Size())
	}
	dup := And(Var(0), Var(0))
	if dup.ReadOnce() {
		t.Error("duplicate variable not detected")
	}
}

func TestFMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rows, cols = 4, 3
	shell := FFormula(rows, cols)
	if !shell.ReadOnce() {
		t.Fatal("F formula must be read-once (Lemma 4.6 hypothesis)")
	}
	if shell.Size() != rows*cols {
		t.Fatalf("F formula size %d, want %d", shell.Size(), rows*cols)
	}
	for trial := 0; trial < 200; trial++ {
		x, y := NewInput(rows, cols), NewInput(rows, cols)
		z := make([]bool, rows*cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				x.Set(i, j, rng.Intn(2) == 0)
				y.Set(i, j, rng.Intn(2) == 0)
				z[i*cols+j] = x.Get(i, j) && y.Get(i, j)
			}
		}
		if F(x, y) != shell.Eval(z) {
			t.Fatal("F disagrees with its read-once formula")
		}
		if FPrime(x, y) != FPrimeFormula(rows, cols).Eval(z) {
			t.Fatal("F' disagrees with its read-once formula")
		}
	}
}

func TestVERPromiseEmbedsInGDT(t *testing.T) {
	// Lemma 4.7: VER is the promise restriction of GDT under the stated
	// encodings.
	aliceSet := map[uint8]bool{0b0011: true, 0b1001: true, 0b1100: true, 0b0110: true}
	bobSet := map[uint8]bool{0b0001: true, 0b0010: true, 0b0100: true, 0b1000: true}
	for x := uint8(0); x < 4; x++ {
		if !aliceSet[VEREncodeAlice(x)] {
			t.Errorf("Alice encoding of %d = %04b outside the promise set", x, VEREncodeAlice(x))
		}
		for y := uint8(0); y < 4; y++ {
			if !bobSet[VEREncodeBob(y)] {
				t.Errorf("Bob encoding of %d outside the promise set", y)
			}
			if GDT(VEREncodeAlice(x), VEREncodeBob(y)) != VER(x, y) {
				t.Errorf("GDT∘encode(%d,%d) != VER(%d,%d)", x, y, x, y)
			}
		}
	}
}

func TestVERTruthTable(t *testing.T) {
	// VER(x,y) = 1 iff x+y ≡ 0 or 1 (mod 4).
	want := map[[2]uint8]bool{
		{0, 0}: true, {0, 1}: true, {1, 0}: true, {2, 3}: true, {3, 2}: true,
		{1, 1}: false, {2, 1}: false, {3, 3}: false, {1, 2}: false,
	}
	for k, v := range want {
		if VER(k[0], k[1]) != v {
			t.Errorf("VER(%d,%d) = %v, want %v", k[0], k[1], !v, v)
		}
	}
}

func TestEqTwoParams(t *testing.T) {
	tests := []struct {
		h       int
		s, l    int
		wantErr bool
	}{
		{2, 3, 2, false},
		{4, 6, 4, false},
		{6, 9, 8, false},
		{3, 0, 0, true},
		{0, 0, 0, true},
	}
	for _, tt := range tests {
		s, l, err := EqTwoParams(tt.h)
		if (err != nil) != tt.wantErr {
			t.Errorf("h=%d: err = %v", tt.h, err)
			continue
		}
		if err == nil && (s != tt.s || l != tt.l) {
			t.Errorf("h=%d: (s,ℓ) = (%d,%d), want (%d,%d)", tt.h, s, l, tt.s, tt.l)
		}
	}
}

func TestNodeCountFormula(t *testing.T) {
	// h=2: (2^3-1) + (2·3+2)(2^2+2) + 2·2^3 = 7 + 48 + 16 = 71.
	n, err := NodeCount(2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 71 {
		t.Fatalf("NodeCount(2) = %d, want 71", n)
	}
	// h=4: 31 + 16·18 + 128 = 447.
	n, err = NodeCount(4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 447 {
		t.Fatalf("NodeCount(4) = %d, want 447", n)
	}
}

func buildInputs(t *testing.T, h int, seed int64, force bool) (*Input, *Input) {
	t.Helper()
	s, l, err := EqTwoParams(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	return RandomInput(1<<uint(s), l, force, func() bool { return rng.Intn(2) == 0 }, rng.Intn)
}

func TestBuildDiameterStructure(t *testing.T) {
	for _, h := range []int{2, 4} {
		x, y := buildInputs(t, h, int64(h), true)
		c, err := BuildDiameter(h, x, y, 100, 200)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.CheckStructure()
		if err != nil {
			t.Fatalf("h=%d: %v (report %+v)", h, err, rep)
		}
		if err := c.G.Validate(); err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	x, y := buildInputs(t, 2, 1, true)
	if _, err := BuildDiameter(3, x, y, 1, 2); err == nil {
		t.Error("odd h accepted")
	}
	if _, err := BuildDiameter(2, x, y, 5, 5); err == nil {
		t.Error("α = β accepted")
	}
	if _, err := BuildDiameter(2, x, y, 0, 5); err == nil {
		t.Error("α = 0 accepted")
	}
	bad := NewInput(3, 3)
	if _, err := BuildDiameter(2, bad, y, 1, 2); err == nil {
		t.Error("wrong input shape accepted")
	}
	if _, err := BuildDiameter(2, nil, y, 1, 2); err == nil {
		t.Error("nil input accepted")
	}
}

func TestRandomInputForcesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		x, y := RandomInput(8, 2, true, func() bool { return rng.Intn(2) == 0 }, rng.Intn)
		if !F(x, y) {
			t.Fatal("forced F=1 produced F=0")
		}
		x, y = RandomInput(8, 2, false, func() bool { return rng.Intn(2) == 0 }, rng.Intn)
		if F(x, y) {
			t.Fatal("forced F=0 produced F=1")
		}
	}
}

func TestLemma44DiameterGap(t *testing.T) {
	alpha, beta, err := TheoremWeights(2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		force := seed%2 == 0
		x, y := buildInputs(t, 2, seed, force)
		c, err := BuildDiameter(2, x, y, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		rep := c.VerifyLemma44(x, y)
		if rep.FValue != force {
			t.Fatalf("seed %d: F = %v, forced %v", seed, rep.FValue, force)
		}
		if !rep.Satisfied {
			t.Fatalf("seed %d: Lemma 4.4 dichotomy violated: %v", seed, rep)
		}
	}
}

func TestLemma44DistinguishesF(t *testing.T) {
	// With α=n², β=2n² the two cases are separated by a (3/2−ε) factor:
	// F=1 gives D <= 2n²+n, F=0 gives D >= 3n² (Theorem 4.2's gap).
	alpha, beta, err := TheoremWeights(2)
	if err != nil {
		t.Fatal(err)
	}
	xYes, yYes := buildInputs(t, 2, 10, true)
	cYes, err := BuildDiameter(2, xYes, yYes, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	dYes := cYes.G.Diameter()

	xNo, yNo := buildInputs(t, 2, 11, false)
	cNo, err := BuildDiameter(2, xNo, yNo, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	dNo := cNo.G.Diameter()

	n := int64(cYes.G.N())
	if dYes > 2*alpha+n {
		t.Fatalf("F=1 diameter %d above max{2α,β}+n = %d", dYes, 2*alpha+n)
	}
	if dNo < 3*alpha {
		t.Fatalf("F=0 diameter %d below min{α+β,3α} = %d", dNo, 3*alpha)
	}
	// A (3/2−ε)-approximation distinguishes the cases (Theorem 4.2 uses
	// any constant ε ∈ (0, 1/2]; ε = 0.05 suffices at this gadget size).
	if float64(dYes)*1.45 >= float64(dNo) {
		t.Fatalf("gap too small: %d vs %d", dYes, dNo)
	}
}

func TestLemma49RadiusGap(t *testing.T) {
	alpha, beta, err := TheoremWeights(2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		force := seed%2 == 0
		s, l, _ := EqTwoParams(2)
		rng := rand.New(rand.NewSource(seed + 100))
		// For F' the force semantics differ: F'=1 needs any common 1;
		// F'=0 needs none anywhere.
		x := NewInput(1<<uint(s), l)
		y := NewInput(1<<uint(s), l)
		for i := 0; i < x.Rows; i++ {
			for j := 0; j < x.Cols; j++ {
				x.Set(i, j, rng.Intn(2) == 0)
				y.Set(i, j, rng.Intn(2) == 0)
				if !force && x.Get(i, j) && y.Get(i, j) {
					y.Set(i, j, false)
				}
			}
		}
		if force {
			x.Set(0, 0, true)
			y.Set(0, 0, true)
		}
		c, err := BuildRadius(2, x, y, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		rep := c.VerifyLemma49(x, y)
		if rep.FValue != force {
			t.Fatalf("seed %d: F' = %v, forced %v", seed, rep.FValue, force)
		}
		if !rep.Satisfied {
			t.Fatalf("seed %d: Lemma 4.9 dichotomy violated: %v", seed, rep)
		}
	}
}

func TestRadiusGadgetHasHub(t *testing.T) {
	x, y := buildInputs(t, 2, 5, true)
	c, err := BuildRadius(2, x, y, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.AZero < 0 {
		t.Fatal("radius gadget missing a_0")
	}
	if c.G.N() != 72 { // 71 + hub
		t.Fatalf("radius gadget n = %d, want 72", c.G.N())
	}
	if c.G.Degree(c.AZero) != len(c.A) {
		t.Fatalf("a_0 degree %d, want %d", c.G.Degree(c.AZero), len(c.A))
	}
	for _, a := range c.G.Neighbors(c.AZero) {
		if a.W != 100 { // 2α
			t.Fatalf("a_0 edge weight %d, want 2α = 100", a.W)
		}
	}
}

func TestTable2Holds(t *testing.T) {
	alpha, beta, err := TheoremWeights(2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 4; seed++ {
		x, y := buildInputs(t, 2, seed+50, seed%2 == 0)
		c, err := BuildDiameter(2, x, y, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		if vio := c.CheckTable2(x, y); len(vio) != 0 {
			t.Fatalf("seed %d: %d Table 2 violations, first: %v", seed, len(vio), vio[0])
		}
	}
}

func TestContractionMatchesFigure3(t *testing.T) {
	x, y := buildInputs(t, 2, 7, true)
	c, err := BuildDiameter(2, x, y, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	con := c.Contract()
	// Figure 3 node classes: t, 2s selector supernodes, ℓ star supernodes,
	// 2^s a-nodes, 2^s b-nodes → 1 + 2s + ℓ + 2·2^s.
	want := 1 + 2*c.S + c.L + 2*(1<<uint(c.S))
	if con.Graph.N() != want {
		t.Fatalf("contracted n = %d, want %d", con.Graph.N(), want)
	}
	// The tree collapses to a single supernode.
	root := con.Super[c.Tree[0][0]]
	for i := range c.Tree {
		for _, id := range c.Tree[i] {
			if con.Super[id] != root {
				t.Fatal("tree not fully contracted")
			}
		}
	}
	// Path 2i merges a^0_i with b^1_i (Figure 3's selector identification).
	for i := 0; i < c.S; i++ {
		if con.Super[c.A01[i][0]] != con.Super[c.B01[i][1]] {
			t.Fatal("a^0_i and b^1_i not merged")
		}
		if con.Super[c.A01[i][1]] != con.Super[c.B01[i][0]] {
			t.Fatal("a^1_i and b^0_i not merged")
		}
	}
	// Star nodes merge with their Bob counterparts.
	for j := 0; j < c.L; j++ {
		if con.Super[c.AStar[j]] != con.Super[c.BStar[j]] {
			t.Fatal("a*_j and b*_j not merged")
		}
	}
	// Lemma 4.3 sandwich.
	if _, _, _, _, ok := con.CheckSandwich(c.G); !ok {
		t.Fatal("Lemma 4.3 sandwich violated on the gadget")
	}
}

func TestPropertyGapDichotomy(t *testing.T) {
	alpha, beta, err := TheoremWeights(2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, force bool) bool {
		rng := rand.New(rand.NewSource(seed))
		s, l, _ := EqTwoParams(2)
		x, y := RandomInput(1<<uint(s), l, force, func() bool { return rng.Intn(2) == 0 }, rng.Intn)
		c, err := BuildDiameter(2, x, y, alpha, beta)
		if err != nil {
			return false
		}
		return c.VerifyLemma44(x, y).Satisfied
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
