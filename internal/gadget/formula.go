// Package gadget implements the paper's lower-bound constructions (§4):
// the base network of Figure 1, the diameter gadget of Figure 2, the
// radius gadget of Figure 4, the contracted views of Figure 3, the
// read-once formulas F and F' with the VER/GDT gadget functions
// (Lemmas 4.5-4.7), and exact verifiers for the diameter/radius gaps of
// Lemmas 4.4/4.9 and the distance table (Table 2).
package gadget

import "fmt"

// Op is a boolean gate type.
type Op int

// Gate operators.
const (
	OpVar Op = iota
	OpNot
	OpAnd
	OpOr
)

// Formula is a boolean formula tree. A formula is read-once when every
// variable index appears exactly once (ReadOnce verifies this), which is
// the hypothesis of the approximate-degree bound (Lemma 4.6).
type Formula struct {
	// Op is the node kind (variable, negation, conjunction, disjunction).
	Op Op
	// Var is the variable index (meaningful for OpVar only).
	Var int
	// Children are the sub-formulas (one for OpNot, any number for
	// OpAnd/OpOr, none for OpVar).
	Children []*Formula
}

// Var returns a variable leaf.
func Var(i int) *Formula { return &Formula{Op: OpVar, Var: i} }

// Not negates a formula.
func Not(f *Formula) *Formula { return &Formula{Op: OpNot, Children: []*Formula{f}} }

// And conjoins formulas.
func And(fs ...*Formula) *Formula { return &Formula{Op: OpAnd, Children: fs} }

// Or disjoins formulas.
func Or(fs ...*Formula) *Formula { return &Formula{Op: OpOr, Children: fs} }

// Eval evaluates the formula on an assignment.
func (f *Formula) Eval(assignment []bool) bool {
	switch f.Op {
	case OpVar:
		return assignment[f.Var]
	case OpNot:
		return !f.Children[0].Eval(assignment)
	case OpAnd:
		for _, c := range f.Children {
			if !c.Eval(assignment) {
				return false
			}
		}
		return true
	case OpOr:
		for _, c := range f.Children {
			if c.Eval(assignment) {
				return true
			}
		}
		return false
	}
	panic(fmt.Sprintf("gadget: unknown op %d", f.Op))
}

// Vars collects the variable indices appearing in the formula, in
// depth-first order (with repetitions, if any).
func (f *Formula) Vars() []int {
	var out []int
	var walk func(*Formula)
	walk = func(g *Formula) {
		if g.Op == OpVar {
			out = append(out, g.Var)
			return
		}
		for _, c := range g.Children {
			walk(c)
		}
	}
	walk(f)
	return out
}

// ReadOnce reports whether every variable appears exactly once.
func (f *Formula) ReadOnce() bool {
	seen := make(map[int]bool)
	for _, v := range f.Vars() {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Size returns the number of leaves.
func (f *Formula) Size() int { return len(f.Vars()) }

// Input is a lower-bound input x ∈ {0,1}^(2^s · ℓ), indexed x_{i,j} with
// i ∈ [0, 2^s) and j ∈ [0, ℓ).
type Input struct {
	Rows int // 2^s
	Cols int // ℓ
	// Bits is the row-major bit matrix; use Get/Set for (i, j) access.
	Bits []bool
}

// NewInput allocates an all-zero input.
func NewInput(rows, cols int) *Input {
	return &Input{Rows: rows, Cols: cols, Bits: make([]bool, rows*cols)}
}

// Get returns x_{i,j}.
func (in *Input) Get(i, j int) bool { return in.Bits[i*in.Cols+j] }

// Set assigns x_{i,j}.
func (in *Input) Set(i, j int, v bool) { in.Bits[i*in.Cols+j] = v }

// F computes F(x,y) = AND_i OR_j (x_{i,j} AND y_{i,j}) — the diameter
// lower-bound function (§4.2).
func F(x, y *Input) bool {
	for i := 0; i < x.Rows; i++ {
		rowHit := false
		for j := 0; j < x.Cols; j++ {
			if x.Get(i, j) && y.Get(i, j) {
				rowHit = true
				break
			}
		}
		if !rowHit {
			return false
		}
	}
	return true
}

// FPrime computes F'(x,y) = OR_{i,j} (x_{i,j} AND y_{i,j}) — the radius
// lower-bound function (§4.3).
func FPrime(x, y *Input) bool {
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			if x.Get(i, j) && y.Get(i, j) {
				return true
			}
		}
	}
	return false
}

// FFormula builds F as an explicit read-once formula over the variables
// z_{i,j} = x_{i,j} AND y_{i,j} (indices i·cols+j), i.e. the outer shell
// f = AND_rows ∘ OR_cols of the GDT composition in Lemma 4.7.
func FFormula(rows, cols int) *Formula {
	ands := make([]*Formula, rows)
	for i := 0; i < rows; i++ {
		ors := make([]*Formula, cols)
		for j := 0; j < cols; j++ {
			ors[j] = Var(i*cols + j)
		}
		ands[i] = Or(ors...)
	}
	return And(ands...)
}

// FPrimeFormula builds F' = OR over all pairs, the outer shell of
// Lemma 4.10.
func FPrimeFormula(rows, cols int) *Formula {
	vars := make([]*Formula, rows*cols)
	for i := range vars {
		vars[i] = Var(i)
	}
	return Or(vars...)
}

// GDT is the gadget function OR_4 ∘ AND_2^4 of Lemma 4.7: inputs are 4-bit
// strings, GDT(a, b) = OR_j (a_j AND b_j).
func GDT(a, b uint8) bool { return a&b&0xF != 0 }

// VER is the promise function of Lemma 4.5: VER(x, y) = 1 iff x + y ≡ 0 or
// 1 (mod 4), for x, y ∈ {0, 1, 2, 3}.
func VER(x, y uint8) bool {
	m := (x + y) % 4
	return m == 0 || m == 1
}

// VEREncodeAlice maps Alice's VER input x ∈ {0..3} to the 4-bit GDT string
// with ones at positions (-x) mod 4 and (1-x) mod 4 — the promise set
// {0011, 1001, 1100, 0110} of Lemma 4.7.
func VEREncodeAlice(x uint8) uint8 {
	p0 := (4 - x) % 4
	p1 := (5 - x) % 4
	return 1<<p0 | 1<<p1
}

// VEREncodeBob maps Bob's VER input y ∈ {0..3} to the one-hot 4-bit string
// — the promise set {0001, 0010, 0100, 1000} of Lemma 4.7.
func VEREncodeBob(y uint8) uint8 { return 1 << (y % 4) }
