package gadget

import "fmt"

// GapReport is the outcome of an exact gap verification (Lemma 4.4 or 4.9).
type GapReport struct {
	FValue    bool  // F(x,y) (diameter) or F'(x,y) (radius)
	Metric    int64 // exact D_{G,w} or R_{G,w}
	YesBound  int64 // max{2α, β} + n: upper bound when the function is 1
	NoBound   int64 // min{α+β, 3α}: lower bound when the function is 0
	Satisfied bool  // the dichotomy held for this input
}

// String summarizes the verification outcome on one line.
func (r GapReport) String() string {
	return fmt.Sprintf("F=%v metric=%d yes<=%d no>=%d ok=%v", r.FValue, r.Metric, r.YesBound, r.NoBound, r.Satisfied)
}

// VerifyLemma44 computes the exact weighted diameter of the Figure 2
// network and checks the Lemma 4.4 dichotomy.
func (c *Construction) VerifyLemma44(x, y *Input) GapReport {
	rep := GapReport{
		FValue:   F(x, y),
		Metric:   c.G.Diameter(),
		YesBound: maxInt64(2*c.Alpha, c.Beta) + int64(c.G.N()),
		NoBound:  minInt64(c.Alpha+c.Beta, 3*c.Alpha),
	}
	if rep.FValue {
		rep.Satisfied = rep.Metric <= rep.YesBound
	} else {
		rep.Satisfied = rep.Metric >= rep.NoBound
	}
	return rep
}

// VerifyLemma49 computes the exact weighted radius of the Figure 4 network
// and checks the Lemma 4.9 dichotomy.
func (c *Construction) VerifyLemma49(x, y *Input) GapReport {
	rep := GapReport{
		FValue:   FPrime(x, y),
		Metric:   c.G.Radius(),
		YesBound: maxInt64(2*c.Alpha, c.Beta) + int64(c.G.N()),
		NoBound:  minInt64(c.Alpha+c.Beta, 3*c.Alpha),
	}
	if rep.FValue {
		rep.Satisfied = rep.Metric <= rep.YesBound
	} else {
		rep.Satisfied = rep.Metric >= rep.NoBound
	}
	return rep
}

// Table2Violation describes one failed row of Table 2.
type Table2Violation struct {
	// Row names the Table 2 row that failed (e.g. "t-router").
	Row string
	// U and V are the violating contracted-graph node pair.
	U, V int
	// Dist is the measured distance; Want is the row's bound.
	Dist, Want int64
}

// String formats the violation as the failed inequality.
func (v Table2Violation) String() string {
	return fmt.Sprintf("table2 %s: d(%d,%d) = %d > %d", v.Row, v.U, v.V, v.Dist, v.Want)
}

// CheckTable2 verifies every row of Table 2 on the contracted graph G'
// (Figure 3): the upper bounds on distances between t, the routers
// (selector and star supernodes), a_i, and b_i. It returns all violations
// (nil means the table holds).
//
// The special pair (a_i, b_i) is checked against the input-dependent
// dichotomy stated in Lemma 4.4's proof.
func (c *Construction) CheckTable2(x, y *Input) []Table2Violation {
	con := c.Contract()
	gp := con.Graph
	alpha := c.Alpha
	sup := func(orig int) int { return con.Super[orig] }

	t := sup(c.Tree[0][0])
	var routers []int
	for i := range c.A01 {
		routers = append(routers, sup(c.A01[i][0]), sup(c.A01[i][1]))
	}
	for j := range c.AStar {
		routers = append(routers, sup(c.AStar[j]))
	}

	var out []Table2Violation
	check := func(row string, u, v int, distRow []int64, want int64) {
		if d := distRow[v]; d > want {
			out = append(out, Table2Violation{Row: row, U: u, V: v, Dist: d, Want: want})
		}
	}

	fromT := gp.Dijkstra(t)
	for _, r := range routers {
		check("t-router", t, r, fromT, alpha)
	}
	for i := range c.A {
		check("t-a", t, sup(c.A[i]), fromT, 2*alpha)
		check("t-b", t, sup(c.B[i]), fromT, 2*alpha)
	}

	rows := len(c.A)
	for i := 0; i < rows; i++ {
		fromA := gp.Dijkstra(sup(c.A[i]))
		fromB := gp.Dijkstra(sup(c.B[i]))
		for j := 0; j < rows; j++ {
			if j != i {
				check("a-a", sup(c.A[i]), sup(c.A[j]), fromA, alpha)
				check("b-b", sup(c.B[i]), sup(c.B[j]), fromB, alpha)
				check("a-b(offdiag)", sup(c.A[i]), sup(c.B[j]), fromA, 2*alpha)
			}
		}
		for j := range c.A01 {
			same := bin(i, j)
			check("a-selector(same)", sup(c.A[i]), sup(c.A01[j][same]), fromA, alpha)
			check("a-selector(flip)", sup(c.A[i]), sup(c.A01[j][same^1]), fromA, 2*alpha)
			// b_i attaches to b^{bin}_j, whose supernode is a^{bin⊕1}_j.
			check("b-selector(same)", sup(c.B[i]), sup(c.A01[j][same^1]), fromB, alpha)
			check("b-selector(flip)", sup(c.B[i]), sup(c.A01[j][same]), fromB, 2*alpha)
		}
		for j := range c.AStar {
			check("a-star", sup(c.A[i]), sup(c.AStar[j]), fromA, c.Beta)
			check("b-star", sup(c.B[i]), sup(c.AStar[j]), fromB, c.Beta)
		}

		// The input-dependent diagonal pair.
		hit := false
		for j := 0; j < x.Cols; j++ {
			if x.Get(i, j) && y.Get(i, j) {
				hit = true
				break
			}
		}
		d := fromA[sup(c.B[i])]
		if hit && d > 2*alpha {
			out = append(out, Table2Violation{Row: "a-b(diag,hit)", U: sup(c.A[i]), V: sup(c.B[i]), Dist: d, Want: 2 * alpha})
		}
		if !hit && d < minInt64(alpha+c.Beta, 3*alpha) {
			out = append(out, Table2Violation{Row: "a-b(diag,miss)", U: sup(c.A[i]), V: sup(c.B[i]), Dist: d, Want: minInt64(alpha+c.Beta, 3*alpha)})
		}
	}

	// router-router <= 2α via t.
	for _, r1 := range routers {
		from := gp.Dijkstra(r1)
		for _, r2 := range routers {
			if r1 != r2 {
				check("router-router", r1, r2, from, 2*alpha)
			}
		}
	}
	return out
}

// StructureReport summarizes the Figure 1/2 structural invariants.
type StructureReport struct {
	// N is the constructed node count; NFormula is the paper's closed
	// form it must equal.
	N, NFormula int
	// UnweightedDiameter is D of the gadget, which must be Θ(h).
	UnweightedDiameter int64
	// H is the height parameter the construction was built for.
	H int
	// Connected reports connectivity of the gadget network.
	Connected bool
}

// CheckStructure verifies the closed-form node count, connectivity, and
// that the unweighted diameter is Θ(h) = Θ(log n) — the property that
// makes the lower bound bite (Theorem 4.2 holds "even when D = Θ(log n)").
func (c *Construction) CheckStructure() (StructureReport, error) {
	want, err := NodeCount(c.H)
	if err != nil {
		return StructureReport{}, err
	}
	if c.AZero >= 0 {
		want++
	}
	rep := StructureReport{
		N:                  c.G.N(),
		NFormula:           want,
		UnweightedDiameter: c.G.UnweightedDiameter(),
		H:                  c.H,
		Connected:          c.G.Connected(),
	}
	if rep.N != rep.NFormula {
		return rep, fmt.Errorf("gadget: node count %d != closed form %d", rep.N, rep.NFormula)
	}
	if !rep.Connected {
		return rep, fmt.Errorf("gadget: construction is disconnected")
	}
	if rep.UnweightedDiameter < int64(c.H) || rep.UnweightedDiameter > int64(8*c.H+16) {
		return rep, fmt.Errorf("gadget: unweighted diameter %d not Θ(h) for h=%d", rep.UnweightedDiameter, c.H)
	}
	return rep, nil
}

// RandomInput draws x, y with the requested value of F (diameter variant)
// using the provided PRNG-like function for bits. forceValue selects
// whether F(x,y) must be 1 or 0.
func RandomInput(rows, cols int, forceValue bool, randBit func() bool, randInt func(int) int) (x, y *Input) {
	x = NewInput(rows, cols)
	y = NewInput(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			x.Set(i, j, randBit())
			y.Set(i, j, randBit())
		}
	}
	if forceValue {
		// Ensure every row has a common 1.
		for i := 0; i < rows; i++ {
			j := randInt(cols)
			x.Set(i, j, true)
			y.Set(i, j, true)
		}
	} else {
		// Kill one row entirely.
		i := randInt(rows)
		for j := 0; j < cols; j++ {
			if randBit() {
				x.Set(i, j, false)
			} else {
				y.Set(i, j, false)
			}
			if x.Get(i, j) && y.Get(i, j) {
				x.Set(i, j, false)
			}
		}
	}
	return x, y
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
