package svc

// The request middleware layer: every request — metered or not — is
// wrapped once at the top of ServeHTTP with
//
//   - a per-request correlation ID, generated here (or echoed from a
//     well-formed inbound X-Request-Id), set on the response header
//     before any handler runs so it is present on every 2xx/4xx/5xx
//     path and embedded in error bodies by writeError;
//   - a hard body cap (http.MaxBytesReader at Config.MaxBodyBytes)
//     installed before any handler parses, so a rejected upload never
//     pays an unbounded body read — crossing the cap surfaces as the
//     documented 413;
//   - a structured JSON access log line (log/slog) carrying the ID,
//     method, path, status, class, API key, latency, and response
//     bytes, written when Config.AccessLog is set.
//
// DESIGN.md §8.5 has the layer diagram.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"time"
)

const (
	// requestIDHeader is the correlation header: echoed from the
	// request when well-formed, generated otherwise, always set on the
	// response.
	requestIDHeader = "X-Request-Id"
	// apiKeyHeader attributes a request to a tenant for rate limits,
	// graph quotas, and the per-key ledgers.
	apiKeyHeader = "X-API-Key"
	// anonymousKey is the bucket requests without an API key share.
	anonymousKey = "anonymous"
	// maxKeyLen bounds one API key's length; longer keys are truncated
	// for ledger identity so a client cannot mint unbounded label
	// cardinality.
	maxKeyLen = 64
	// maxInboundIDLen bounds an echoed inbound request ID.
	maxInboundIDLen = 64
)

// responseState wraps every response writer once per request: it
// records the status and byte count for the metrics ledger and the
// access log, and carries the request class once routing resolves it.
type responseState struct {
	http.ResponseWriter
	status      int
	bytes       int64
	class       string
	wroteHeader bool
}

// WriteHeader records the first explicit status before delegating.
func (r *responseState) WriteHeader(code int) {
	if !r.wroteHeader {
		r.status = code
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write counts response bytes for the access log.
func (r *responseState) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// newBootID draws the daemon's boot-unique request-ID prefix.
func newBootID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to a fixed
		// prefix rather than refusing to serve.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// requestID resolves the request's correlation ID: a well-formed
// inbound X-Request-Id is echoed (so a proxy or client-assigned ID
// correlates across hops), anything else gets a fresh
// "<bootID>-<sequence>" — unique per daemon boot, monotonic within it.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get(requestIDHeader); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("%s-%08x", s.bootID, s.reqSeq.Add(1))
}

// validRequestID accepts 1-64 characters of [A-Za-z0-9._-] — enough
// for every common ID scheme, and safe to echo into headers and logs.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > maxInboundIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// apiKeyOf resolves the request's tenant key: the X-API-Key header,
// truncated to maxKeyLen, with the empty key normalized to "anonymous".
func apiKeyOf(r *http.Request) string {
	key := r.Header.Get(apiKeyHeader)
	if key == "" {
		return anonymousKey
	}
	if len(key) > maxKeyLen {
		key = key[:maxKeyLen]
	}
	return key
}

// logRequest emits one JSON access-log line. 5xx lines log at ERROR so
// a plain grep for "ERROR" finds server-side failures; everything else
// is INFO.
func (s *Server) logRequest(r *http.Request, rs *responseState, id string, d time.Duration) {
	level := slog.LevelInfo
	if rs.status >= 500 {
		level = slog.LevelError
	}
	s.logger.LogAttrs(context.Background(), level, "request",
		slog.String("id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", rs.status),
		slog.String("class", rs.class),
		slog.String("key", apiKeyOf(r)),
		slog.Float64("durMs", float64(d.Microseconds())/1000),
		slog.Int64("bytes", rs.bytes),
		slog.String("remote", r.RemoteAddr),
	)
}
