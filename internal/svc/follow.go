package svc

// The follower side of replication. A follower is a read-only replica
// of one leader: a background loop long-polls GET /v1/replicate from
// its catch-up cursor, digest-verifies every shipped graph, commits it
// locally (fsynced via store.ApplyReplicated when the follower is
// durable, registry-only when it runs in memory), and advances the
// cursor only past records that fully applied. Any verification or
// apply failure aborts the round without advancing the cursor, so a
// misbehaving stream turns into visible lag (and a failed readiness
// check) rather than a silently diverged replica.
//
// The determinism contract is what makes follower reads safe: the same
// digest with the same parameters answers byte-identically on any node,
// so a replica that holds a graph serves exactly the leader's numbers.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qcongest/internal/graph"
	"qcongest/internal/store"
)

const (
	// replWaitMs is the long-poll park the follower requests per round.
	replWaitMs = 5_000
	// replRoundTimeout bounds one full catch-up round (park + stream).
	replRoundTimeout = 60 * time.Second
)

// replState is a follower's replication ledger and loop handle.
type replState struct {
	leader string
	maxLag uint64
	poll   time.Duration
	client *http.Client
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// cursor is the highest fully applied sequence; head is the
	// leader's last reported head. Lag = head - cursor. chain is the
	// in-memory follower's digest chain fold (durable followers read
	// the store's chain instead — it covers pre-follow recovery too).
	cursor      atomic.Uint64
	head        atomic.Uint64
	chain       atomic.Uint64
	applied     atomic.Int64
	skipped     atomic.Int64
	rejected    atomic.Int64
	streamErrs  atomic.Int64
	lastApply   atomic.Int64 // unix nanos of the last applied record
	lastContact atomic.Int64 // unix nanos of the last leader 200
}

// startFollower validates cfg.FollowURL, seeds the cursor from local
// durable state, and launches the catch-up loop. Called by Open only.
func (s *Server) startFollower() error {
	return s.startFollowerTo(s.cfg.FollowURL)
}

// startFollowerTo launches a catch-up loop against the leader at the
// given base URL — the boot path (Open with cfg.FollowURL) and the
// demotion path (promote.go) share it. Callers must hold roleMu or be
// pre-serving (Open).
func (s *Server) startFollowerTo(leader string) error {
	u, err := url.Parse(leader)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("svc: leader URL %q is not an absolute http(s) base URL", leader)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rp := &replState{
		leader: strings.TrimRight(leader, "/"),
		maxLag: s.cfg.MaxLagSeq,
		poll:   s.cfg.FollowPoll,
		client: &http.Client{Timeout: replRoundTimeout + 10*time.Second},
		ctx:    ctx,
		cancel: cancel,
	}
	if s.store != nil {
		// The sequence clock (not the graph head) is the resume point: a
		// dir that once logged local records — or a demoted leader whose
		// unsynced touches ran the clock ahead — may have consumed
		// sequences past its last graph, and ApplyReplicated will refuse
		// anything at or below it. Epoch fencing (store/epoch.go)
		// guarantees a legitimate new leader only mints above this.
		rp.cursor.Store(s.store.Stats().LastSeq)
		rp.head.Store(rp.cursor.Load())
	}
	s.repl.Store(rp)
	rp.wg.Add(1)
	go func() {
		defer rp.wg.Done()
		s.followLoop(rp)
	}()
	return nil
}

// followLoop drives catch-up rounds until Close cancels it. A round
// that applied something re-polls immediately (the leader likely has
// more); an idle or failed round backs off by cfg.FollowPoll.
func (s *Server) followLoop(rp *replState) {
	for {
		applied, err := s.replicateOnce(rp)
		if rp.ctx.Err() != nil {
			return
		}
		if err != nil {
			rp.streamErrs.Add(1)
		}
		if err != nil || applied == 0 {
			select {
			case <-rp.ctx.Done():
				return
			case <-time.After(rp.poll):
			}
		}
	}
}

// replicateOnce runs one catch-up round: long-poll the leader from the
// cursor, record its head, and apply the streamed records in order.
func (s *Server) replicateOnce(rp *replState) (applied int64, err error) {
	ctx, cancel := context.WithTimeout(rp.ctx, replRoundTimeout)
	defer cancel()
	u := fmt.Sprintf("%s/v1/replicate?from=%d&wait=%d", rp.leader, rp.cursor.Load(), replWaitMs)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := rp.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		// Drain a bounded remainder so the connection can be reused.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("svc: leader %s answered %d to /v1/replicate", rp.leader, resp.StatusCode)
	}
	rp.lastContact.Store(time.Now().UnixNano())
	if h, perr := strconv.ParseUint(resp.Header.Get(replHeadHeader), 10, 64); perr == nil {
		for {
			cur := rp.head.Load()
			if h <= cur || rp.head.CompareAndSwap(cur, h) {
				break
			}
		}
	}
	return s.consumeReplicationStream(rp, resp.Body)
}

// consumeReplicationStream applies one replication stream to this
// follower. Invariants, fuzz-pinned by FuzzReplicationStream:
//
//   - a record becomes visible only after its frame CRC held, its
//     payload's recomputed digest matched, and (durable followers) its
//     local fsync settled;
//   - the cursor advances monotonically and only past applied records,
//     so duplicates and reordered-below-cursor frames are skipped, a
//     rejected record stops the round with the committed prefix intact,
//     and a torn tail is reported, never applied;
//   - garbage never panics: the frame scanner bounds and checksums
//     every read, and the graph decoders enforce the configured limits
//     before allocating.
func (s *Server) consumeReplicationStream(rp *replState, r io.Reader) (applied int64, err error) {
	outcome, err := store.ScanStream(r, func(seq uint64, kind string, payload []byte) error {
		if kind != store.RecordGraph {
			rp.skipped.Add(1) // leaders never ship these; tolerate, don't apply
			return nil
		}
		if seq <= rp.cursor.Load() {
			rp.skipped.Add(1) // duplicate or reordered below the cursor
			return nil
		}
		digest, aerr := s.applyReplicatedRecord(seq, payload)
		if aerr != nil {
			rp.rejected.Add(1)
			return aerr
		}
		// Fold the in-memory chain in apply order (which is ascending-seq
		// by the cursor check above) so parity audits can compare this
		// replica against the leader's chain even without a local store.
		rp.chain.Store(store.ChainMix(rp.chain.Load(), seq, digest))
		rp.cursor.Store(seq)
		rp.applied.Add(1)
		rp.lastApply.Store(time.Now().UnixNano())
		for { // the leader's head is at least what it shipped
			cur := rp.head.Load()
			if seq <= cur || rp.head.CompareAndSwap(cur, seq) {
				break
			}
		}
		applied++
		return nil
	})
	if err != nil {
		return applied, err
	}
	if outcome.Torn {
		return applied, fmt.Errorf("svc: torn replication stream after %d bytes: %w", outcome.Good, outcome.TornErr)
	}
	return applied, nil
}

// applyReplicatedRecord commits one verified graph record: through the
// store (decode, digest-verify, append, fsync, register) on durable
// followers, by direct decode on in-memory ones, then into the serving
// registry either way. The registry entry's durable latch settles
// immediately — on a follower, "durable" means "the leader acknowledged
// it", and the leader only streams fsynced records.
func (s *Server) applyReplicatedRecord(seq uint64, payload []byte) (uint64, error) {
	var g *graph.Graph
	if s.store != nil {
		var err error
		g, _, err = s.store.ApplyReplicated(seq, payload)
		if err != nil {
			return 0, err
		}
	} else {
		var err error
		_, _, g, err = store.DecodeGraphRecord(payload, s.cfg.MaxNodes, s.cfg.MaxEdges)
		if err != nil {
			return 0, err
		}
	}
	e, created, err := s.reg.put(g)
	if err != nil {
		return 0, err // registry full: visible as lag + readiness failure
	}
	if created {
		close(e.durable)
	}
	return g.Digest(), nil
}
