package svc

// The control plane of replica promotion: POST /v1/promote turns a
// follower into the shard leader, POST /v1/demote turns a (usually
// revived, stale) leader back into a follower. Both are driven by the
// router's health prober (internal/cluster/promote.go) and fenced by a
// monotone epoch number:
//
//   - promotion carries epoch E+1 (one above the router's topology
//     epoch). The node persists it in the store manifest and fences its
//     sequence clock to store.EpochBase(E+1), so every record it mints
//     outranks all prior-epoch history — including the unsynced touch
//     records that can leave a dead leader's clock ahead of its head.
//   - demotion carries the epoch of the leadership it acknowledges. A
//     revived old leader (epoch E) accepts a demote at E+1, persists
//     the epoch, and re-syncs through the ordinary follow path; a
//     *stale* demote (epoch below the node's own) is refused 409, so a
//     router restarted with an old topology can never demote the
//     legitimate leader.
//
// Transitions serialize on roleMu; request handlers read the role
// lock-free through the repl atomic pointer. With Config.ClusterToken
// set, both endpoints require a matching X-Cluster-Token header.

import (
	"crypto/subtle"
	"net/http"
	"net/url"
	"strings"

	"qcongest/internal/store"
)

// trimURL normalizes a leader base URL the way startFollowerTo does,
// so idempotence checks compare like with like.
func trimURL(u string) string { return strings.TrimRight(u, "/") }

// clusterTokenHeader authenticates control-plane calls.
const clusterTokenHeader = "X-Cluster-Token"

// clusterAuth enforces Config.ClusterToken on control-plane endpoints
// (open when unset), writing the 403 itself on mismatch.
func (s *Server) clusterAuth(w http.ResponseWriter, r *http.Request) bool {
	want := s.cfg.ClusterToken
	if want == "" {
		return true
	}
	got := r.Header.Get(clusterTokenHeader)
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
		writeError(w, http.StatusForbidden, "missing or wrong %s", clusterTokenHeader)
		return false
	}
	return true
}

// roleResponse assembles the settled-role answer for both transitions.
// Called with roleMu held (the role cannot flap mid-assembly).
func (s *Server) roleResponse() RoleResponse {
	resp := RoleResponse{Role: "leader", Epoch: s.epoch.Load()}
	if rp := s.repl.Load(); rp != nil {
		resp.Role = "follower"
		resp.Seq = rp.cursor.Load()
		resp.Chain = formatChain(rp.chain.Load())
	}
	if s.store != nil {
		resp.Chain = formatChain(s.store.Chain())
		if resp.Role == "leader" {
			resp.Seq = s.store.ReplicationHead()
		}
	}
	return resp
}

// handlePromote makes this node the shard leader at the requested
// epoch: stop the follow loop, persist + fence the epoch, and reopen
// for writes. Idempotent for a leader already at (or above) the epoch;
// refused 409 when the epoch does not beat this node's own — promoting
// a follower at its *current* epoch would seat two leaders in one
// generation.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !s.clusterAuth(w, r) {
		return
	}
	var req PromoteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Epoch == 0 {
		writeError(w, http.StatusBadRequest, "epoch must be >= 1")
		return
	}
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	cur := s.epoch.Load()
	rp := s.repl.Load()
	if req.Epoch < cur || (rp != nil && req.Epoch == cur) {
		writeError(w, http.StatusConflict,
			"promotion epoch %d does not beat this node's epoch %d", req.Epoch, cur)
		return
	}
	if rp == nil && req.Epoch == cur {
		writeJSON(w, http.StatusOK, s.roleResponse()) // already the leader
		return
	}
	if rp != nil {
		// Stop tailing before the fence: a record applying mid-promotion
		// must not interleave with the clock raise.
		rp.cancel()
		rp.wg.Wait()
	}
	if s.store != nil {
		if err := s.store.SetEpoch(req.Epoch); err != nil {
			// The epoch is not durably acknowledged, so leadership cannot
			// be either; fall back to following the old leader.
			if rp != nil {
				_ = s.startFollowerTo(rp.leader)
			}
			writeError(w, http.StatusInternalServerError, "persisting epoch: %v", err)
			return
		}
		s.store.Fence(store.EpochBase(req.Epoch))
	}
	s.epoch.Store(req.Epoch)
	s.repl.Store(nil)
	writeJSON(w, http.StatusOK, s.roleResponse())
}

// handleDemote makes this node a follower of the given leader at the
// requested epoch. The epoch must be at least this node's own — a
// stale router (or a partitioned prober working from old topology)
// must never demote the legitimate current leader.
func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	if !s.clusterAuth(w, r) {
		return
	}
	var req DemoteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if u, err := url.Parse(req.Leader); err != nil || u.Scheme == "" || u.Host == "" {
		writeError(w, http.StatusBadRequest, "leader %q is not an absolute http(s) base URL", req.Leader)
		return
	}
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	cur := s.epoch.Load()
	if req.Epoch < cur {
		writeError(w, http.StatusConflict,
			"demotion epoch %d is below this node's epoch %d", req.Epoch, cur)
		return
	}
	if rp := s.repl.Load(); rp != nil {
		if rp.leader == trimURL(req.Leader) && req.Epoch == cur {
			writeJSON(w, http.StatusOK, s.roleResponse()) // already following
			return
		}
		// Retarget: stop the old loop before seeding a new cursor.
		rp.cancel()
		rp.wg.Wait()
	}
	if s.store != nil {
		// Persist the acknowledgment before following: a crash mid-demote
		// must revive already knowing about the new generation, or it
		// would boot believing itself the epoch-cur leader again.
		if err := s.store.SetEpoch(req.Epoch); err != nil {
			writeError(w, http.StatusInternalServerError, "persisting epoch: %v", err)
			return
		}
	}
	s.epoch.Store(req.Epoch)
	if err := s.startFollowerTo(req.Leader); err != nil {
		writeError(w, http.StatusInternalServerError, "starting follower: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.roleResponse())
}
