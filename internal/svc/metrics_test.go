package svc

import (
	"testing"
	"time"
)

// TestQuantileCeilingRank pins the quantile-rank bugfix over hand-built
// histograms: the q-quantile of total samples is the sample at ceiling
// rank ⌈q·total⌉, reported as the upper bound (in ms) of the
// power-of-two bucket holding it. The pre-fix truncation selected the
// sample one rank early whenever q·total was fractional — p50 over 3
// samples answered the 1st, and p99 under-read at low counts.
func TestQuantileCeilingRank(t *testing.T) {
	// Bucket geometry: a sample of d µs lands in bucket ⌊log2 d⌋, whose
	// reported upper bound is 2^(bucket+1) µs.
	build := func(us ...int64) *classMetrics {
		c := &classMetrics{}
		for _, u := range us {
			c.observe(time.Duration(u)*time.Microsecond, 200)
		}
		return c
	}
	for _, tc := range []struct {
		name    string
		samples []int64 // latencies in µs
		q       float64
		wantMs  float64
	}{
		// ⌈0.5·3⌉ = 2: the 2nd sample (2µs, bucket 1, upper 4µs). The
		// truncation bug picked rank 1 and answered 0.002.
		{"p50 of 3 takes the 2nd", []int64{1, 2, 4}, 0.50, 0.004},
		// ⌈0.99·10⌉ = 10: the single slow sample must show up in p99.
		// Truncation picked rank 9 and answered 0.002 — a 1000× under-read.
		{"p99 of 10 sees the outlier", []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1024}, 0.99, 2.048},
		// ⌈0.5·2⌉ = 1: an even count takes the lower middle.
		{"p50 of 2 takes the 1st", []int64{1, 1024}, 0.50, 0.002},
		{"p50 of 1 is the sample", []int64{100}, 0.50, 0.128},
		{"q=1 is the max", []int64{1, 2, 4, 8, 4096}, 1.0, 8.192},
		// ⌈0.25·4⌉ = 1.
		{"p25 of 4 takes the 1st", []int64{1, 2, 4, 8}, 0.25, 0.002},
		// ⌈0.75·4⌉ = 3.
		{"p75 of 4 takes the 3rd", []int64{1, 2, 4, 8}, 0.75, 0.008},
		// All mass in one bucket: every quantile answers that bucket.
		{"uniform bucket", []int64{3, 3, 3}, 0.99, 0.004},
	} {
		if got := build(tc.samples...).quantileMs(tc.q); got != tc.wantMs {
			t.Errorf("%s: quantileMs(%g) = %v, want %v", tc.name, tc.q, got, tc.wantMs)
		}
	}
	// Empty ledger answers 0 for every quantile.
	if got := (&classMetrics{}).quantileMs(0.99); got != 0 {
		t.Errorf("empty histogram: got %v, want 0", got)
	}
}
