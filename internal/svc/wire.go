package svc

// The JSON wire types of the API surface (API.md). The same structs are
// used by the handlers and by Client, so a round trip through the
// service is typed end to end.

import (
	"bytes"
	"fmt"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	// Error is a human-readable description of what was rejected.
	Error string `json:"error"`
	// RequestID echoes the X-Request-Id response header so an error
	// body pasted into a bug report correlates with the daemon's
	// access log on its own.
	RequestID string `json:"requestId,omitempty"`
}

// GraphInfo identifies one registered graph.
type GraphInfo struct {
	// Digest is the canonical 16-hex-digit graph.Digest() value; it is
	// the graph's address in every other endpoint.
	Digest string `json:"digest"`
	// N is the node count.
	N int `json:"n"`
	// M is the undirected-edge count.
	M int `json:"m"`
	// MaxWeight is max_e w(e), the paper's W.
	MaxWeight int64 `json:"maxWeight"`
}

// GenSpec asks the daemon to generate a workload graph server-side
// (POST /v1/graphs with "gen"). Kind selects the generator; the other
// fields parameterize it (see API.md for the per-kind requirements).
type GenSpec struct {
	// Kind is one of "path", "cycle", "star", "complete", "grid",
	// "random", "lowdiameter", "diametercontrolled", "barbell",
	// "spineleaf".
	Kind string `json:"kind"`
	// N is the node count (path, cycle, star, complete, random,
	// lowdiameter, diametercontrolled).
	N int `json:"n,omitempty"`
	// M is the approximate edge count (random).
	M int `json:"m,omitempty"`
	// Rows is the grid generator's row count.
	Rows int `json:"rows,omitempty"`
	// Cols is the grid generator's column count.
	Cols int `json:"cols,omitempty"`
	// AvgDeg is the lowdiameter average degree.
	AvgDeg int `json:"avgDeg,omitempty"`
	// D is the diametercontrolled target unweighted diameter.
	D int `json:"d,omitempty"`
	// K is the barbell clique size.
	K int `json:"k,omitempty"`
	// BridgeLen is the barbell bridge length.
	BridgeLen int `json:"bridgeLen,omitempty"`
	// Spines is the spineleaf spine-switch count.
	Spines int `json:"spines,omitempty"`
	// Leaves is the spineleaf leaf-switch count.
	Leaves int `json:"leaves,omitempty"`
	// Hosts is the spineleaf hosts-per-leaf count.
	Hosts int `json:"hosts,omitempty"`
	// WCore is the spineleaf spine-leaf link weight (default 1).
	WCore int64 `json:"wCore,omitempty"`
	// WEdge is the spineleaf host-leaf link weight (default 1).
	WEdge int64 `json:"wEdge,omitempty"`
	// MaxW, when > 1, reweights the generated graph with uniform
	// weights in [1, MaxW] drawn from Seed.
	MaxW int64 `json:"maxW,omitempty"`
	// Seed drives every random choice; the same spec always generates
	// the same graph (and therefore the same digest).
	Seed int64 `json:"seed,omitempty"`
}

// EdgeListBytes is an edge-list graph body carried in a JSON string
// field without ever becoming a Go string: it marshals and unmarshals
// directly between []byte and the JSON text, so the legacy JSON upload
// path costs one copy of the graph body instead of the three a string
// field forces (decode to string, convert to []byte, parse). The wire
// representation is an ordinary JSON string — existing clients are
// unaffected.
type EdgeListBytes []byte

// MarshalJSON writes the bytes as a JSON string. Edge-list bodies are
// ASCII ('0'-'9', spaces, newlines, optional '#' comments), so only the
// control/quote/backslash escapes ever fire; non-ASCII bytes pass
// through raw, which is valid for the UTF-8 inputs JSON permits.
func (b EdgeListBytes) MarshalJSON() ([]byte, error) {
	out := make([]byte, 0, len(b)+2)
	out = append(out, '"')
	for _, c := range b {
		switch {
		case c == '"' || c == '\\':
			out = append(out, '\\', c)
		case c == '\n':
			out = append(out, '\\', 'n')
		case c == '\r':
			out = append(out, '\\', 'r')
		case c == '\t':
			out = append(out, '\\', 't')
		case c < 0x20:
			const hex = "0123456789abcdef"
			out = append(out, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			out = append(out, c)
		}
	}
	return append(out, '"'), nil
}

// UnmarshalJSON reads a JSON string into the byte slice. The fast path
// — no backslash anywhere, the shape every FormatEdgeList output
// marshals to — is a single copy of the string contents.
func (b *EdgeListBytes) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*b = nil
		return nil
	}
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("edgelist: not a JSON string")
	}
	body := data[1 : len(data)-1]
	if bytes.IndexByte(body, '\\') < 0 {
		*b = append([]byte(nil), body...)
		return nil
	}
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(body) {
			return fmt.Errorf("edgelist: truncated escape")
		}
		e := body[i+1]
		i += 2
		switch e {
		case '"', '\\', '/':
			out = append(out, e)
		case 'b':
			out = append(out, '\b')
		case 'f':
			out = append(out, '\f')
		case 'n':
			out = append(out, '\n')
		case 'r':
			out = append(out, '\r')
		case 't':
			out = append(out, '\t')
		case 'u':
			if i+4 > len(body) {
				return fmt.Errorf("edgelist: truncated \\u escape")
			}
			r, err := hexRune(body[i : i+4])
			if err != nil {
				return err
			}
			i += 4
			if utf16.IsSurrogate(r) {
				// A high surrogate pairs with an immediately following
				// \uXXXX low surrogate; anything else decodes as the
				// replacement rune, matching encoding/json's leniency.
				r2 := unicode.ReplacementChar
				if i+6 <= len(body) && body[i] == '\\' && body[i+1] == 'u' {
					if lo, err := hexRune(body[i+2 : i+6]); err == nil {
						if dec := utf16.DecodeRune(r, lo); dec != unicode.ReplacementChar {
							r2 = dec
							i += 6
						}
					}
				}
				r = r2
			}
			out = utf8.AppendRune(out, r)
		default:
			return fmt.Errorf("edgelist: bad escape \\%c", e)
		}
	}
	*b = out
	return nil
}

func hexRune(h []byte) (rune, error) {
	var r rune
	for _, c := range h {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("edgelist: bad \\u escape %q", h)
		}
	}
	return r, nil
}

// UploadRequest is the body of POST /v1/graphs. Exactly one of
// EdgeList and Gen must be set.
type UploadRequest struct {
	// EdgeList is a graph in the graph.ParseEdgeList wire format
	// ("n <nodes>" header, then one "u v w" line per edge).
	EdgeList EdgeListBytes `json:"edgelist,omitempty"`
	// Gen generates the graph server-side instead.
	Gen *GenSpec `json:"gen,omitempty"`
}

// UploadResponse answers POST /v1/graphs.
type UploadResponse struct {
	GraphInfo
	// Created is false when an identical graph was already registered
	// (the call is idempotent).
	Created bool `json:"created"`
}

// GraphListResponse answers GET /v1/graphs.
type GraphListResponse struct {
	// Graphs lists every registered graph in registration order.
	Graphs []GraphInfo `json:"graphs"`
}

// MetricResponse answers the exact-metric endpoints
// (GET /v1/graphs/{digest}/diameter, /radius, /eccentricity?v=).
type MetricResponse struct {
	// Digest names the graph answered for.
	Digest string `json:"digest"`
	// Metric is "diameter", "radius", or "eccentricity".
	Metric string `json:"metric"`
	// V is the queried vertex (eccentricity only).
	V int `json:"v,omitempty"`
	// Value is the exact weighted metric; graph.Inf (1<<60) marks a
	// disconnected graph.
	Value int64 `json:"value"`
}

// SketchRequest is the body of POST /v1/graphs/{digest}/sketch: the
// full Lemma 3.2 parameter tuple plus the vertices to evaluate.
type SketchRequest struct {
	// Sources is the skeleton node set S_i (non-empty, every vertex in
	// range). Order matters for cache identity: permutations are
	// distinct cache lines that answer identically.
	Sources []int `json:"sources"`
	// L is the hop budget ℓ (1 <= l <= 4·n: no simple path exceeds n-1
	// hops, so larger budgets only waste build time).
	L int `json:"l"`
	// K is the Algorithm 4 sparsification parameter (>= 1).
	K int `json:"k"`
	// EpsT is the inverse rounding parameter T = 1/ε; 0 selects the
	// paper's Eq. (1) default ⌈log₂ n⌉ for this graph. Capped at 2^20
	// so the rational arithmetic stays far from int64 overflow.
	EpsT int64 `json:"epsT,omitempty"`
	// Vertices are the query points ẽ is evaluated at; empty defaults
	// to Sources.
	Vertices []int `json:"vertices,omitempty"`
	// Kernel pins the relaxation engine of the build: "auto", "sparse",
	// "dense", or "delta" (empty uses the daemon's configured default).
	// Every mode returns byte-identical numerators — the field is a
	// performance/verification knob, not a semantic one — but modes are
	// distinct cache lines, so a pinned mode genuinely exercises its
	// engine.
	Kernel string `json:"kernel,omitempty"`
}

// SketchEcc is one approximate-eccentricity answer.
type SketchEcc struct {
	// V is the evaluated vertex.
	V int `json:"v"`
	// Num is the ẽ_{G,w,i}(v) numerator over SketchResponse.Den;
	// graph.Inf (1<<60) marks some vertex unreachable within the hop
	// budget.
	Num int64 `json:"num"`
}

// SketchResponse answers POST /v1/graphs/{digest}/sketch. Same digest
// and same parameters yield byte-identical numerators on every daemon,
// for every worker count — the determinism contract of API.md.
type SketchResponse struct {
	// Digest names the graph answered for.
	Digest string `json:"digest"`
	// EpsT echoes the effective T (resolved when the request left it 0).
	EpsT int64 `json:"epsT"`
	// Den is the common denominator 2·T·ℓ of every numerator.
	Den int64 `json:"den"`
	// Eccentricities holds one entry per requested vertex, in request
	// order.
	Eccentricities []SketchEcc `json:"eccentricities"`
}

// BatchRequest is the body of POST /v1/batch: run the classical exact
// APSP baseline over many registered graphs as one congest.RunBatch.
type BatchRequest struct {
	// Digests names the graphs to sweep (repeats allowed). Each graph
	// must be within the daemon's batch node limit: one APSP job costs
	// Θ(n²) memory while it runs.
	Digests []string `json:"digests"`
	// Workers shards each simulation's round loop (congest
	// Options.Workers; 0 = sequential). Results are identical for
	// every value.
	Workers int `json:"workers,omitempty"`
	// Parallelism bounds how many simulations run at once (0 =
	// GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchEntry is one graph's result within a batch.
type BatchEntry struct {
	// Digest names the graph this row answers for.
	Digest string `json:"digest"`
	// Diameter is the exact weighted diameter the APSP protocol
	// converged to.
	Diameter int64 `json:"diameter"`
	// Radius is the exact weighted radius.
	Radius int64 `json:"radius"`
	// Rounds is the measured CONGEST round count of the run.
	Rounds int `json:"rounds"`
	// Messages is the measured message volume of the run.
	Messages int64 `json:"messages"`
}

// BatchResponse answers POST /v1/batch; Results is in request order.
type BatchResponse struct {
	// Results holds one entry per requested digest.
	Results []BatchEntry `json:"results"`
}

// StoreHealth is the durability section of /healthz, present only when
// the daemon runs over a -data-dir. The daemon is "ok" while warm-up is
// still in progress — warmth affects latency, never correctness — so
// load balancers admit a recovering daemon immediately.
type StoreHealth struct {
	// RecoveredGraphs counts graphs replayed (snapshot + log) at boot.
	RecoveredGraphs int `json:"recoveredGraphs"`
	// QuarantinedRecords counts boot-time casualties: records that
	// failed digest or checksum verification and were moved aside.
	QuarantinedRecords int `json:"quarantinedRecords"`
	// ReplayMs is the boot-time recovery duration in milliseconds.
	ReplayMs float64 `json:"replayMs"`
	// WarmupTarget is the number of graphs the warm-start pass will
	// pre-warm; WarmupDone counts how many it has finished. Equal means
	// the warm-start pass is complete.
	WarmupTarget int64 `json:"warmupTarget"`
	// WarmupDone counts pre-warmed graphs so far.
	WarmupDone int64 `json:"warmupDone"`
}

// ReplicationHealth is the replication section of /healthz and
// /metrics: present on every durable daemon (role "leader") and on
// every follower (role "follower", whatever its storage mode).
type ReplicationHealth struct {
	// Role is "leader" (accepts writes, serves /v1/replicate) or
	// "follower" (read-only, tails a leader).
	Role string `json:"role"`
	// Leader is the followed base URL (followers only).
	Leader string `json:"leader,omitempty"`
	// Epoch is the leadership generation this node last acknowledged —
	// bumped by /v1/promote and /v1/demote, persisted in the store
	// manifest on durable nodes. The router's election fencing compares
	// these (see API.md "Cluster control plane").
	Epoch uint64 `json:"epoch"`
	// Chain is this node's digest chain (16 hex digits): a running fold
	// of (seq, digest) over committed graph records in ascending
	// sequence order. Two replicas with equal Seq and Chain hold
	// byte-identical replicated logs — the parity assertion of the
	// fault e2e and qload's cluster audit.
	Chain string `json:"chain,omitempty"`
	// Seq is this node's replication position: the highest committed
	// graph sequence on a leader, the catch-up cursor on a follower.
	Seq uint64 `json:"seq"`
	// LeaderSeq is the leader's last reported head (followers only).
	LeaderSeq uint64 `json:"leaderSeq,omitempty"`
	// SeqDelta is max(LeaderSeq-Seq, 0) — the replication lag in
	// sequence steps. Readiness fails ("lagging", HTTP 503) while it
	// exceeds MaxLagSeq.
	SeqDelta uint64 `json:"seqDelta"`
	// MaxLagSeq is the configured readiness threshold (followers only).
	MaxLagSeq uint64 `json:"maxLagSeq,omitempty"`
	// MsSinceApply is the time since the follower last applied a
	// record, in milliseconds (0 until the first apply).
	MsSinceApply float64 `json:"msSinceApply,omitempty"`
	// MsSinceContact is the time since the leader last answered a
	// catch-up poll, in milliseconds (0 until the first response).
	MsSinceContact float64 `json:"msSinceContact,omitempty"`
	// AppliedGraphs counts graphs applied from the stream since boot.
	AppliedGraphs int64 `json:"appliedGraphs,omitempty"`
	// SkippedRecords counts stream records skipped as already applied
	// (duplicates below the cursor) or as non-graph kinds.
	SkippedRecords int64 `json:"skippedRecords,omitempty"`
	// RejectedRecords counts records refused by verification (CRC,
	// digest, or sequence-clock failures). Nonzero means the leader
	// stream carried something a healthy leader cannot produce.
	RejectedRecords int64 `json:"rejectedRecords,omitempty"`
	// StreamErrors counts failed catch-up rounds (transport errors,
	// non-200 leader answers, torn transfers).
	StreamErrors int64 `json:"streamErrors,omitempty"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	// Status is "ok" while serving, "draining" during graceful
	// shutdown, "lagging" while a follower trails its leader beyond
	// MaxLagSeq (the latter two with HTTP 503).
	Status string `json:"status"`
	// Graphs is the registry size.
	Graphs int `json:"graphs"`
	// UptimeSeconds is the time since New.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Store reports recovery/warm-up progress (persistent daemons only).
	Store *StoreHealth `json:"store,omitempty"`
	// Replication reports the node's cluster role and catch-up
	// position (durable leaders and all followers).
	Replication *ReplicationHealth `json:"replication,omitempty"`
}

// PromoteRequest is the body of POST /v1/promote: make this node the
// shard leader at the given epoch.
type PromoteRequest struct {
	// Epoch is the new leadership generation — must be strictly above
	// every epoch any prior leader of the shard acknowledged. The
	// router sends its topology epoch + 1.
	Epoch uint64 `json:"epoch"`
}

// DemoteRequest is the body of POST /v1/demote: make this node a
// follower of the given leader at the given epoch.
type DemoteRequest struct {
	// Epoch is the leadership generation being acknowledged (the
	// current leader's); below this node's own epoch it is refused.
	Epoch uint64 `json:"epoch"`
	// Leader is the base URL of the leader to follow.
	Leader string `json:"leader"`
}

// RoleResponse answers /v1/promote and /v1/demote with the node's
// settled role.
type RoleResponse struct {
	// Role is "leader" or "follower" after the transition.
	Role string `json:"role"`
	// Epoch is the acknowledged leadership generation.
	Epoch uint64 `json:"epoch"`
	// Seq is the node's replication position (head or cursor).
	Seq uint64 `json:"seq"`
	// Chain is the node's digest chain at Seq (16 hex digits).
	Chain string `json:"chain,omitempty"`
}

// CacheMetrics is the sketch-cache section of /metrics, mirroring
// server.CacheStats.
type CacheMetrics struct {
	// Hits counts lookups answered from a completed entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that triggered a build.
	Misses int64 `json:"misses"`
	// Waits counts lookups deduplicated onto an in-flight build.
	Waits int64 `json:"waits"`
	// Evictions counts LRU evictions.
	Evictions int64 `json:"evictions"`
	// Size is the resident entry count (including in-flight builds).
	Size int `json:"size"`
	// HitRate is (hits+waits)/lookups — the fraction of sketch lookups
	// that did not trigger a build of their own.
	HitRate float64 `json:"hitRate"`
}

// RequestMetrics is one request class's section of /metrics.
type RequestMetrics struct {
	// Count is the number of completed requests.
	Count int64 `json:"count"`
	// Errors4x counts completed requests with a 4xx status.
	Errors4x int64 `json:"errors4xx"`
	// Errors5x counts completed requests with a 5xx status.
	Errors5x int64 `json:"errors5xx"`
	// InFlight is the number of requests currently executing.
	InFlight int64 `json:"inFlight"`
	// P50Ms is the median latency in milliseconds (upper bound of the
	// containing power-of-two histogram bucket).
	P50Ms float64 `json:"p50Ms"`
	// P99Ms is the 99th-percentile latency in milliseconds.
	P99Ms float64 `json:"p99Ms"`
}

// KeyMetrics is one API key's admission ledger within /metrics,
// present when per-key rate limits or tenant quotas are configured.
type KeyMetrics struct {
	// Allowed counts requests that passed the key's token bucket.
	Allowed int64 `json:"allowed"`
	// Limited counts requests shed with 429.
	Limited int64 `json:"limited"`
	// Graphs counts graphs this key created (the quota ledger).
	Graphs int64 `json:"graphs"`
}

// StoreMetrics is the durability section of /metrics, present only for
// persistent daemons.
type StoreMetrics struct {
	// Graphs is the store's resident graph count.
	Graphs int `json:"graphs"`
	// Appends counts durable graph commits since boot.
	Appends int64 `json:"appends"`
	// Touches counts recorded query-recency hints since boot.
	Touches int64 `json:"touches"`
	// Snapshots counts log-to-snapshot folds since boot.
	Snapshots int64 `json:"snapshots"`
	// WALBytes is the active append-only log's size.
	WALBytes int64 `json:"walBytes"`
	// SnapshotBytes is the latest snapshot's size.
	SnapshotBytes int64 `json:"snapshotBytes"`
	// RecoveredGraphs counts graphs replayed at boot.
	RecoveredGraphs int `json:"recoveredGraphs"`
	// QuarantinedRecords counts boot-time verification casualties.
	QuarantinedRecords int `json:"quarantinedRecords"`
	// TornTailTruncated reports that boot truncated a torn log tail
	// (the expected artifact of a crash mid-append).
	TornTailTruncated bool `json:"tornTailTruncated"`
	// ReplayMs is the boot-time recovery duration in milliseconds.
	ReplayMs float64 `json:"replayMs"`
	// WarmupTarget/WarmupDone track the boot-time warm-start pass.
	WarmupTarget int64 `json:"warmupTarget"`
	// WarmupDone counts pre-warmed graphs so far.
	WarmupDone int64 `json:"warmupDone"`
	// WarmStartHits counts warm reads served against pre-warmed graphs
	// — the payoff ledger of the warm-start pass.
	WarmStartHits int64 `json:"warmStartHits"`
	// LastSnapshotError is the most recent automatic-snapshot failure
	// ("" when healthy); the log keeps committing regardless.
	LastSnapshotError string `json:"lastSnapshotError,omitempty"`
}

// MetricsSnapshot answers GET /metrics.
type MetricsSnapshot struct {
	// UptimeSeconds is the time since New.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Graphs is the registry size.
	Graphs int `json:"graphs"`
	// Cache is the sketch-cache effectiveness section.
	Cache CacheMetrics `json:"cache"`
	// BuildSlotsInUse is the build admission gate's occupancy.
	BuildSlotsInUse int `json:"buildSlotsInUse"`
	// QuerySlotsInUse is the query admission gate's occupancy.
	QuerySlotsInUse int `json:"querySlotsInUse"`
	// Requests maps request class ("upload", "query", "sketch",
	// "batch") to its ledger.
	Requests map[string]RequestMetrics `json:"requests"`
	// RateLimits maps API key to its admission ledger (present only
	// when per-key limits are configured).
	RateLimits map[string]KeyMetrics `json:"rateLimits,omitempty"`
	// Store is the durability section (persistent daemons only).
	Store *StoreMetrics `json:"store,omitempty"`
	// Replication is the cluster-role section (durable leaders and all
	// followers), identical to the /healthz block.
	Replication *ReplicationHealth `json:"replication,omitempty"`
}
