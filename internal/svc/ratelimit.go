package svc

// Per-tenant admission: a token bucket per API key plus a per-key
// created-graph quota, layered in *front* of the build/query gates
// (instrument checks the bucket before a handler can reach admit).
// The gates protect the daemon globally; this layer makes overload
// degrade per tenant — a key that floods the daemon exhausts its own
// bucket and draws 429 + Retry-After while every other key's requests
// keep flowing. Per-key counters surface in both /metrics views.

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// keyState is one API key's ledger: the token bucket (guarded by mu)
// and the lock-free counters both metrics views snapshot.
type keyState struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time

	allowed atomic.Int64
	limited atomic.Int64
	graphs  atomic.Int64
}

// limiter holds every key's state. rate <= 0 disables the token
// buckets (the limiter then only tracks counters and quotas); quota
// <= 0 disables the graph quota.
type limiter struct {
	rate  float64 // sustained tokens/sec per key
	burst float64 // bucket depth
	quota int64   // created graphs per key

	mu   sync.RWMutex
	keys map[string]*keyState
}

// newLimiter returns nil when neither limit is configured — a nil
// limiter means the middleware layer skips per-key work entirely.
func newLimiter(rate float64, burst, quota int) *limiter {
	if rate <= 0 && quota <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		// Default depth: two seconds of sustained rate, at least 1.
		b = math.Max(1, math.Ceil(2*rate))
	}
	return &limiter{rate: rate, burst: b, quota: int64(quota), keys: make(map[string]*keyState)}
}

// state returns key's ledger, creating a full bucket on first sight.
func (l *limiter) state(key string) *keyState {
	l.mu.RLock()
	k := l.keys[key]
	l.mu.RUnlock()
	if k != nil {
		return k
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if k = l.keys[key]; k == nil {
		k = &keyState{tokens: l.burst, last: time.Now()}
		l.keys[key] = k
	}
	return k
}

// allow spends one token from key's bucket. A false return carries the
// Retry-After hint in whole seconds (>= 1): the time until the bucket
// refills one token at the sustained rate.
func (l *limiter) allow(key string) (retryAfter int, ok bool) {
	k := l.state(key)
	if l.rate <= 0 { // quota-only limiter: every request is admitted
		k.allowed.Add(1)
		return 0, true
	}
	k.mu.Lock()
	now := time.Now()
	k.tokens = math.Min(l.burst, k.tokens+now.Sub(k.last).Seconds()*l.rate)
	k.last = now
	if k.tokens >= 1 {
		k.tokens--
		k.mu.Unlock()
		k.allowed.Add(1)
		return 0, true
	}
	need := (1 - k.tokens) / l.rate
	k.mu.Unlock()
	k.limited.Add(1)
	return int(math.Max(1, math.Ceil(need))), false
}

// graphQuotaLeft reports whether key may create another graph. The
// check is advisory against concurrent creates (two racing uploads may
// both pass at quota-1); the quota bounds steady state, not a race
// window.
func (l *limiter) graphQuotaLeft(key string) bool {
	if l.quota <= 0 {
		return true
	}
	return l.state(key).graphs.Load() < l.quota
}

// noteGraph records a successful graph creation against key's quota.
func (l *limiter) noteGraph(key string) {
	l.state(key).graphs.Add(1)
}

// stats snapshots every key's counters for the metrics views.
func (l *limiter) stats() map[string]KeyMetrics {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string]KeyMetrics, len(l.keys))
	for key, k := range l.keys {
		out[key] = KeyMetrics{
			Allowed: k.allowed.Load(),
			Limited: k.limited.Load(),
			Graphs:  k.graphs.Load(),
		}
	}
	return out
}
