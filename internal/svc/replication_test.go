// Replication end-to-end suite: a real leader daemon and real follower
// daemons wired over HTTP — catch-up from scratch, live tailing through
// the long-poll, byte-identical answers on every replica, the follower
// write fence, durable follower restarts, and the lag readiness gate
// (driven by a fake leader that reports a head it never ships).
package svc_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"qcongest/internal/svc"
)

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// getHealth fetches /healthz raw: unlike Client.Health it decodes the
// body even on 503, which is exactly the lagging/draining surface this
// suite asserts on.
func getHealth(t *testing.T, baseURL string) (int, svc.HealthResponse) {
	t.Helper()
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h svc.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return resp.StatusCode, h
}

// TestFollowerReplicationE2E is the tentpole walk: graphs committed to
// a leader appear on a durable follower (catch-up and live tail), every
// answer is byte-identical across nodes, writes bounce off the follower
// with 403, and a follower restart resumes from its durable cursor.
func TestFollowerReplicationE2E(t *testing.T) {
	leaderDir := t.TempDir()
	leader, lc := openPersistent(t, svc.Config{DataDir: leaderDir})
	defer leader.Close()

	// Two graphs before the follower exists: the catch-up path.
	up1, err := lc.Upload(workload(t, 64))
	if err != nil || !up1.Created {
		t.Fatalf("upload 1: (%+v, %v)", up1, err)
	}
	gen, err := lc.Generate(svc.GenSpec{Kind: "barbell", K: 6, BridgeLen: 4, MaxW: 9, Seed: 3})
	if err != nil || !gen.Created {
		t.Fatalf("generate: (%+v, %v)", gen, err)
	}

	followerDir := t.TempDir()
	follower, fc := openPersistent(t, svc.Config{
		DataDir:    followerDir,
		FollowURL:  lc.BaseURL,
		FollowPoll: 20 * time.Millisecond,
	})
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool {
		gs, err := fc.Graphs()
		return err == nil && len(gs) == 2
	})

	// A graph uploaded after the follower is tailing: the long-poll path.
	up2, err := lc.Upload(workload(t, 33))
	if err != nil || !up2.Created {
		t.Fatalf("upload 2: (%+v, %v)", up2, err)
	}
	waitUntil(t, 10*time.Second, "live tail", func() bool {
		gs, err := fc.Graphs()
		return err == nil && len(gs) == 3
	})

	// Byte-identical answers from both nodes, for every graph.
	sketchReq := svc.SketchRequest{Sources: []int{5, 1, 9}, L: 12, K: 2}
	for _, digest := range []string{up1.Digest, gen.Digest, up2.Digest} {
		ld, err := lc.Diameter(digest)
		if err != nil {
			t.Fatalf("leader diameter %s: %v", digest, err)
		}
		fd, err := fc.Diameter(digest)
		if err != nil || fd != ld {
			t.Fatalf("follower diameter %s: (%d, %v), leader %d", digest, fd, err, ld)
		}
		ls, err := lc.Sketch(digest, sketchReq)
		if err != nil {
			t.Fatalf("leader sketch %s: %v", digest, err)
		}
		fs, err := fc.Sketch(digest, sketchReq)
		if err != nil || !reflect.DeepEqual(ls, fs) {
			t.Fatalf("follower sketch %s diverged: (%+v, %v), leader %+v", digest, fs, err, ls)
		}
	}

	// The write fence: followers refuse uploads with 403, naming the leader.
	_, err = fc.Upload(workload(t, 17))
	var se *svc.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusForbidden || !strings.Contains(se.Message, lc.BaseURL) {
		t.Fatalf("follower upload: %v, want 403 naming the leader", err)
	}

	// Role and lag surfaces on both /healthz and both /metrics views.
	code, lh := getHealth(t, lc.BaseURL)
	if code != http.StatusOK || lh.Replication == nil || lh.Replication.Role != "leader" || lh.Replication.Seq == 0 {
		t.Fatalf("leader healthz: %d %+v", code, lh.Replication)
	}
	code, fh := getHealth(t, fc.BaseURL)
	if code != http.StatusOK || fh.Replication == nil || fh.Replication.Role != "follower" ||
		fh.Replication.Leader != lc.BaseURL || fh.Replication.AppliedGraphs != 3 {
		t.Fatalf("follower healthz: %d %+v", code, fh.Replication)
	}
	if fh.Replication.Seq != lh.Replication.Seq {
		t.Fatalf("follower cursor %d != leader head %d after convergence", fh.Replication.Seq, lh.Replication.Seq)
	}
	fm, err := fc.Metrics()
	if err != nil || fm.Replication == nil || fm.Replication.Role != "follower" {
		t.Fatalf("follower metrics replication: (%+v, %v)", fm.Replication, err)
	}
	promResp, err := http.Get(fc.BaseURL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom := readAll(t, promResp)
	if !strings.Contains(prom, "qcongest_replication_follower 1") ||
		!strings.Contains(prom, "qcongest_replication_lag_seq 0") {
		t.Fatalf("prom view missing replication families:\n%s", prom)
	}

	// Durable restart: the follower resumes from its cursor and serves
	// everything without re-tailing from zero.
	wantSeq := fh.Replication.Seq
	if err := follower.Close(); err != nil {
		t.Fatalf("follower close: %v", err)
	}
	re, rc := openPersistent(t, svc.Config{
		DataDir:    followerDir,
		FollowURL:  lc.BaseURL,
		FollowPoll: 20 * time.Millisecond,
	})
	defer re.Close()
	gs, err := rc.Graphs()
	if err != nil || len(gs) != 3 {
		t.Fatalf("restarted follower lists (%d, %v), want 3 recovered graphs", len(gs), err)
	}
	_, rh := getHealth(t, rc.BaseURL)
	if rh.Replication == nil || rh.Replication.Seq != wantSeq {
		t.Fatalf("restarted follower cursor %+v, want seq %d", rh.Replication, wantSeq)
	}
	if d, err := rc.Diameter(up2.Digest); err != nil {
		t.Fatalf("restarted follower diameter: (%d, %v)", d, err)
	}

	// An in-memory follower (no data dir) converges too.
	mem, memc := openPersistent(t, svc.Config{
		FollowURL:  lc.BaseURL,
		FollowPoll: 20 * time.Millisecond,
	})
	defer mem.Close()
	waitUntil(t, 10*time.Second, "in-memory follower catch-up", func() bool {
		gs, err := memc.Graphs()
		return err == nil && len(gs) == 3
	})
	if d, err := memc.Diameter(gen.Digest); err != nil {
		t.Fatalf("in-memory follower diameter: (%d, %v)", d, err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response body: %v", err)
	}
	return string(body)
}

// TestReplicateEndpointValidation pins the endpoint's error surface:
// 501 without a durable store, 400 on malformed cursors, 405 on
// non-GET, and an empty-but-headered 200 for a caught-up cursor.
func TestReplicateEndpointValidation(t *testing.T) {
	mem := svc.New(svc.Config{})
	memTS := httptest.NewServer(mem)
	defer memTS.Close()
	if resp, err := http.Get(memTS.URL + "/v1/replicate"); err != nil || resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("in-memory replicate: %v %v, want 501", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	leader, lc := openPersistent(t, svc.Config{DataDir: t.TempDir()})
	defer leader.Close()
	if _, err := lc.Upload(workload(t, 12)); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"?from=zebra", "?wait=-5", "?wait=soon"} {
		resp, err := http.Get(lc.BaseURL + "/v1/replicate" + q)
		if err != nil || resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("replicate%s: %d %v, want 400", q, resp.StatusCode, err)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(lc.BaseURL+"/v1/replicate", "", nil)
	if err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST replicate: %d %v, want 405", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Caught-up cursor, no wait: immediate empty 200 carrying the head.
	_, lh := getHealth(t, lc.BaseURL)
	head := lh.Replication.Seq
	resp, err = http.Get(fmt.Sprintf("%s/v1/replicate?from=%d", lc.BaseURL, head))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("caught-up replicate: %d %v", resp.StatusCode, err)
	}
	if got := resp.Header.Get("X-Qcongest-Repl-Head"); got != fmt.Sprint(head) {
		t.Fatalf("head header %q, want %d", got, head)
	}
	if body := readAll(t, resp); body != "" {
		t.Fatalf("caught-up stream carried %d bytes", len(body))
	}
}

// TestFollowerLagReadiness drives the satellite-4 fix: a follower whose
// leader reports a head far beyond what it ships must fail readiness
// with status "lagging" and HTTP 503, and report the seq delta and
// time-since-apply in the replication block.
func TestFollowerLagReadiness(t *testing.T) {
	// A fake leader that claims head 5000 but never ships a record: the
	// one reliable way to hold a live follower in a lagging state.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/replicate" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("X-Qcongest-Repl-Head", "5000")
		w.WriteHeader(http.StatusOK)
	}))
	defer fake.Close()

	follower, fc := openPersistent(t, svc.Config{
		FollowURL:  fake.URL,
		MaxLagSeq:  100,
		FollowPoll: 10 * time.Millisecond,
	})
	defer follower.Close()

	waitUntil(t, 10*time.Second, "lagging readiness", func() bool {
		code, h := getHealth(t, fc.BaseURL)
		return code == http.StatusServiceUnavailable && h.Status == "lagging" &&
			h.Replication != nil && h.Replication.SeqDelta == 5000
	})
	// The JSON metrics view carries the same lag.
	m, err := fc.Metrics()
	if err != nil || m.Replication == nil || m.Replication.SeqDelta != 5000 {
		t.Fatalf("metrics lag: (%+v, %v)", m.Replication, err)
	}
}
