package svc

// The leader side of replication: GET /v1/replicate?from=<seq> streams
// every committed graph with sequence above the cursor, framed exactly
// like the store's WAL records (internal/store/replicate.go). An
// optional wait=<ms> long-polls: a caught-up follower parks here until
// the head advances or the wait expires, so steady-state replication
// costs one open request per follower instead of a poll storm, and a
// commit reaches replicas with sub-poll-interval latency.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

const (
	// replHeadHeader carries the leader's head sequence at capture
	// time, so a follower learns its lag even from an empty response.
	replHeadHeader = "X-Qcongest-Repl-Head"
	// ctReplication is the stream's media type.
	ctReplication = "application/x-qcongest-replication"
	// maxReplWaitMs caps a long-poll park (client values above clamp).
	maxReplWaitMs = 30_000
)

func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotImplemented,
			"replication requires a durable store; start the daemon with -data-dir")
		return
	}
	q := r.URL.Query()
	var from uint64
	if raw := q.Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad from=%q: %v", raw, err)
			return
		}
		from = v
	}
	var waitMs int
	if raw := q.Get("wait"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad wait=%q (want milliseconds >= 0)", raw)
			return
		}
		waitMs = min(v, maxReplWaitMs)
	}

	head := s.store.ReplicationHead()
	if head <= from && waitMs > 0 {
		timer := time.NewTimer(time.Duration(waitMs) * time.Millisecond)
		defer timer.Stop()
	park:
		for head <= from {
			// Grab the notify channel first, then re-read the head: an
			// append between the two is caught by the re-read, an append
			// after it closes the channel we already hold. The other
			// order can sleep through a wakeup.
			ch := s.store.SeqNotify()
			if head = s.store.ReplicationHead(); head > from {
				break
			}
			select {
			case <-ch:
				head = s.store.ReplicationHead()
			case <-r.Context().Done():
				break park
			case <-timer.C:
				break park
			}
		}
	}

	w.Header().Set(replHeadHeader, strconv.FormatUint(head, 10))
	w.Header().Set("Content-Type", ctReplication)
	w.WriteHeader(http.StatusOK)
	// Stream errors past this point are connection casualties; the
	// record framing's CRCs let the follower treat a mid-record cut as
	// a torn tail and re-poll from its cursor.
	_, _, _ = s.store.ReplicationStream(from, w)
}

// replicationStatus assembles the shared /healthz + /metrics
// replication block: the follower's live cursor/lag ledger, or a plain
// role-and-head stanza for durable leaders. nil for in-memory
// standalone servers, which have no replication identity at all.
func (s *Server) replicationStatus() *ReplicationHealth {
	if rp := s.repl.Load(); rp != nil {
		cursor, head := rp.cursor.Load(), rp.head.Load()
		st := &ReplicationHealth{
			Role:            "follower",
			Leader:          rp.leader,
			Epoch:           s.epoch.Load(),
			Seq:             cursor,
			LeaderSeq:       head,
			MaxLagSeq:       rp.maxLag,
			Chain:           formatChain(rp.chain.Load()),
			AppliedGraphs:   rp.applied.Load(),
			SkippedRecords:  rp.skipped.Load(),
			RejectedRecords: rp.rejected.Load(),
			StreamErrors:    rp.streamErrs.Load(),
		}
		if s.store != nil {
			// The store's chain also covers graphs recovered before this
			// follow loop started; the in-memory fold only covers applied
			// records.
			st.Chain = formatChain(s.store.Chain())
		}
		if head > cursor {
			st.SeqDelta = head - cursor
		}
		if at := rp.lastApply.Load(); at > 0 {
			st.MsSinceApply = float64(time.Since(time.Unix(0, at)).Microseconds()) / 1000
		}
		if at := rp.lastContact.Load(); at > 0 {
			st.MsSinceContact = float64(time.Since(time.Unix(0, at)).Microseconds()) / 1000
		}
		return st
	}
	if s.store != nil {
		return &ReplicationHealth{
			Role:  "leader",
			Epoch: s.epoch.Load(),
			Seq:   s.store.ReplicationHead(),
			Chain: formatChain(s.store.Chain()),
		}
	}
	return nil
}

// formatChain renders a digest chain in the same 16-hex form as graph
// digests, so parity tooling compares strings it already understands.
func formatChain(c uint64) string { return fmt.Sprintf("%016x", c) }
