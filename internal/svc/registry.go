package svc

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"qcongest/internal/graph"
	"qcongest/internal/store"
)

// FormatDigest renders a graph digest as the canonical 16-hex-digit
// string used in URLs and JSON (graph.DigestString).
func FormatDigest(d uint64) string { return graph.DigestString(d) }

// ParseDigest parses the canonical digest form (any 1-16 digit hex
// string is accepted).
func ParseDigest(s string) (uint64, error) {
	if len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("want 16 hex digits")
	}
	return strconv.ParseUint(s, 16, 64)
}

// entry is one registered graph plus its lazily computed exact metrics.
// The graph is immutable after registration — the digest names it
// forever — so the metric memo never needs invalidation.
type entry struct {
	g      *graph.Graph
	digest uint64
	info   GraphInfo

	once  sync.Once
	ready atomic.Bool // set after once ran; steers admission class
	eccs  []int64
	diam  int64
	rad   int64

	// prewarmed marks an entry whose memo (and recorded sketch, when
	// warmSketch is non-nil) was rebuilt by the boot-time warm-start
	// pass; reads against it count as warm-start hits in /metrics.
	prewarmed atomic.Bool
	// warmSketch is the recovered sketch hint this entry was (or will
	// be) pre-warmed with; immutable after replay.
	warmSketch *store.SketchParams

	// durable is closed once the entry's persistence is settled — the
	// store fsync completed (or failed, or the server is in-memory).
	// A concurrent duplicate upload waits on it before answering, so
	// every 2xx upload response, not just the first, is a durability
	// receipt. persistErr is written before the close.
	durable    chan struct{}
	persistErr error
}

// metrics returns the exact weighted eccentricities, diameter, and
// radius, computing all three on first touch (one Eccentricities sweep
// covers every later exact-metric read of this graph).
func (e *entry) metrics() (diam, radius int64, eccs []int64) {
	e.once.Do(func() {
		e.eccs = e.g.Eccentricities()
		e.diam = graph.Inf
		e.rad = graph.Inf
		var d int64
		for _, ecc := range e.eccs {
			if ecc > d {
				d = ecc
			}
			if ecc < e.rad {
				e.rad = ecc
			}
		}
		e.diam = d
		e.ready.Store(true)
	})
	return e.diam, e.rad, e.eccs
}

// metricsReady reports whether the exact metrics are already memoized
// (a warm read). Used only to pick the admission gate, so the inherent
// race with a concurrent first compute is harmless.
func (e *entry) metricsReady() bool { return e.ready.Load() }

// registry is the digest-addressed store of immutable graphs.
type registry struct {
	max int

	mu       sync.RWMutex
	byDigest map[uint64]*entry
	order    []uint64 // insertion order, for stable listings
}

func newRegistry(max int) *registry {
	return &registry{max: max, byDigest: make(map[uint64]*entry)}
}

// put registers g (which must not be mutated afterwards). Registration
// is idempotent: re-uploading an identical graph returns the existing
// entry with created == false. errRegistryFull is returned at capacity.
func (r *registry) put(g *graph.Graph) (e *entry, created bool, err error) {
	digest := g.Digest()
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byDigest[digest]; ok {
		return e, false, nil
	}
	if len(r.byDigest) >= r.max {
		return nil, false, errRegistryFull
	}
	e = &entry{
		g:       g,
		digest:  digest,
		durable: make(chan struct{}),
		info: GraphInfo{
			Digest:    FormatDigest(digest),
			N:         g.N(),
			M:         g.M(),
			MaxWeight: g.MaxWeight(),
		},
	}
	r.byDigest[digest] = e
	r.order = append(r.order, digest)
	return e, true, nil
}

// remove unregisters a digest. It exists for exactly one caller: the
// upload handler rolling back a registration whose durable append
// failed, so the registry never serves a graph the store could not
// commit.
func (r *registry) remove(digest uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byDigest[digest]; !ok {
		return
	}
	delete(r.byDigest, digest)
	for i, d := range r.order {
		if d == digest {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

func (r *registry) get(digest uint64) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byDigest[digest]
	return e, ok
}

// list returns every registered graph's info in registration order.
func (r *registry) list() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(r.order))
	for _, d := range r.order {
		out = append(out, r.byDigest[d].info)
	}
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byDigest)
}

var errRegistryFull = fmt.Errorf("svc: graph registry is full")
