// Middleware-layer suite: request-ID generation and echo, access-log
// correlation, body caps, and the per-key token buckets and graph
// quotas — all observed over real HTTP, including the error paths.
package svc_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"qcongest/internal/svc"
)

// newRawService starts a daemon and returns its base URL alongside the
// typed client, for tests that assert on raw headers.
func newRawService(t *testing.T, cfg svc.Config) (string, *svc.Client) {
	t.Helper()
	s := svc.New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts.URL, svc.NewClient(ts.URL)
}

// generatedIDPattern matches daemon-minted request IDs: an 8-hex boot
// ID, a dash, and an 8-hex sequence number.
var generatedIDPattern = regexp.MustCompile(`^[0-9a-f]{8}-[0-9a-f]{8}$`)

func get(t *testing.T, url string, header map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	base, _ := newRawService(t, svc.Config{})

	// No inbound ID: the daemon mints one.
	resp := get(t, base+"/healthz", nil)
	id := resp.Header.Get("X-Request-Id")
	if !generatedIDPattern.MatchString(id) {
		t.Fatalf("generated request ID %q does not match %v", id, generatedIDPattern)
	}

	// A second request gets a different ID.
	resp2 := get(t, base+"/healthz", nil)
	if id2 := resp2.Header.Get("X-Request-Id"); id2 == id {
		t.Fatalf("two requests shared request ID %q", id)
	}

	// A well-formed inbound ID is echoed verbatim.
	resp3 := get(t, base+"/healthz", map[string]string{"X-Request-Id": "trace-abc.123_456"})
	if got := resp3.Header.Get("X-Request-Id"); got != "trace-abc.123_456" {
		t.Fatalf("inbound request ID not echoed: got %q", got)
	}

	// Malformed inbound IDs (bad characters, over-long) are replaced,
	// never reflected back.
	for _, bad := range []string{"has space", "quote\"ch", strings.Repeat("x", 65)} {
		resp := get(t, base+"/healthz", map[string]string{"X-Request-Id": bad})
		if got := resp.Header.Get("X-Request-Id"); !generatedIDPattern.MatchString(got) {
			t.Fatalf("malformed inbound ID %q: expected minted replacement, got %q", bad, got)
		}
	}
}

func TestRequestIDOnErrorPaths(t *testing.T) {
	base, _ := newRawService(t, svc.Config{})

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/graphs/nosuchdigest", http.StatusBadRequest},                // malformed digest
		{"/v1/graphs/0123456789abcdef", http.StatusNotFound},              // well-formed, absent
		{"/v1/nope", http.StatusNotFound},                                 // unrouted path
		{"/v1/graphs/0123456789abcdef/eccentricity", http.StatusNotFound}, // absent digest, nested route
	} {
		resp := get(t, base+tc.path, nil)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatalf("%s: error response carries no X-Request-Id", tc.path)
		}
		var er struct {
			Error     string `json:"error"`
			RequestID string `json:"requestId"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s: undecodable error body: %v", tc.path, err)
		}
		if er.RequestID != id {
			t.Fatalf("%s: body requestId %q != header %q", tc.path, er.RequestID, id)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the access-log write
// races the client observing the response, so the reader must lock.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestAccessLogCorrelation(t *testing.T) {
	var logBuf syncBuffer
	base, _ := newRawService(t, svc.Config{AccessLog: &logBuf})

	resp := get(t, base+"/v1/graphs", map[string]string{
		"X-Request-Id": "corr-0001",
		"X-API-Key":    "team-a",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list graphs: status %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)

	// One JSON line per request; find ours and check the fields that
	// make the log joinable with client-side traces.
	var line map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatalf("access log line is not JSON: %q (%v)", raw, err)
		}
		if m["id"] == "corr-0001" {
			line = m
			break
		}
	}
	if line == nil {
		t.Fatalf("no access-log line with id corr-0001 in:\n%s", logBuf.String())
	}
	if line["method"] != "GET" || line["path"] != "/v1/graphs" {
		t.Fatalf("access log line has wrong method/path: %v", line)
	}
	if line["status"] != float64(http.StatusOK) {
		t.Fatalf("access log status = %v, want 200", line["status"])
	}
	if line["key"] != "team-a" {
		t.Fatalf("access log key = %v, want team-a", line["key"])
	}
	if line["class"] != "query" {
		t.Fatalf("access log class = %v, want query", line["class"])
	}
}

func TestBodyLimit413(t *testing.T) {
	base, _ := newRawService(t, svc.Config{MaxBodyBytes: 1024})

	big := strings.Repeat("x", 4096)
	resp, err := http.Post(base+"/v1/graphs", "application/json",
		strings.NewReader(`{"edgeList":"`+big+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413", resp.StatusCode)
	}
	var er struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("413 body undecodable: %v", err)
	}
	if !strings.Contains(er.Error, "1024-byte limit") {
		t.Fatalf("413 message does not state the documented limit: %q", er.Error)
	}
	if er.RequestID == "" || er.RequestID != resp.Header.Get("X-Request-Id") {
		t.Fatalf("413 requestId %q != header %q", er.RequestID, resp.Header.Get("X-Request-Id"))
	}
}

func TestRateLimitPerKeyIsolation(t *testing.T) {
	// A refill rate of 1/1000 rps means the bucket effectively never
	// refills within the test, so admission is exactly the burst depth
	// and the assertions are deterministic.
	base, client := newRawService(t, svc.Config{RatePerKey: 0.001, RateBurst: 2})

	// Key A drains its burst...
	for i := 0; i < 2; i++ {
		resp := get(t, base+"/v1/graphs", map[string]string{"X-API-Key": "key-a"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("key-a request %d: status %d, want 200", i, resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
	}
	// ...and the next call is limited, with a Retry-After hint and a
	// request ID on the error path.
	resp := get(t, base+"/v1/graphs", map[string]string{"X-API-Key": "key-a"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("key-a over burst: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("429 without X-Request-Id header")
	}
	io.Copy(io.Discard, resp.Body)

	// Key B is a different bucket: still admitted.
	respB := get(t, base+"/v1/graphs", map[string]string{"X-API-Key": "key-b"})
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("key-b starved by key-a's limit: status %d", respB.StatusCode)
	}
	io.Copy(io.Discard, respB.Body)

	// The typed client surfaces the 429 as a StatusError with the
	// Retry-After hint.
	client.APIKey = "key-a"
	_, err := client.Graphs()
	var se *svc.StatusError
	if !asStatusError(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("client over-limit call: got %v, want StatusError 429", err)
	}
	if se.RetryAfter < 1 {
		t.Fatalf("StatusError.RetryAfter = %d, want >= 1", se.RetryAfter)
	}

	// Both outcomes are on the per-key ledger in the JSON metrics view;
	// /metrics itself is unmetered so this read cannot be limited.
	snap, err := svc.NewClient(base).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	a, ok := snap.RateLimits["key-a"]
	if !ok {
		t.Fatalf("metrics missing rateLimits entry for key-a: %v", snap.RateLimits)
	}
	if a.Allowed != 2 || a.Limited != 2 {
		t.Fatalf("key-a ledger = %+v, want Allowed 2 Limited 2", a)
	}
	if b := snap.RateLimits["key-b"]; b.Allowed != 1 || b.Limited != 0 {
		t.Fatalf("key-b ledger = %+v, want Allowed 1 Limited 0", b)
	}
}

func TestTenantGraphQuota(t *testing.T) {
	_, client := newRawService(t, svc.Config{TenantMaxGraphs: 1})

	client.APIKey = "tenant-a"
	if _, err := client.Upload(workload(t, 40)); err != nil {
		t.Fatalf("first upload under quota failed: %v", err)
	}
	_, err := client.Upload(workload(t, 60))
	var se *svc.StatusError
	if !asStatusError(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota upload: got %v, want StatusError 429", err)
	}
	if !strings.Contains(se.Message, "quota") {
		t.Fatalf("quota 429 message does not mention the quota: %q", se.Message)
	}

	// Re-uploading the tenant's existing graph is idempotent, not a new
	// creation, so it stays admitted.
	if _, err := client.Upload(workload(t, 40)); err != nil {
		t.Fatalf("idempotent re-upload blocked by quota: %v", err)
	}

	// Another tenant has its own quota.
	client.APIKey = "tenant-b"
	if _, err := client.Upload(workload(t, 80)); err != nil {
		t.Fatalf("tenant-b starved by tenant-a's quota: %v", err)
	}
}

func TestClientRequireRequestID(t *testing.T) {
	// Against the real daemon the assertion passes...
	_, client := newRawService(t, svc.Config{})
	client.RequireRequestID = true
	if _, err := client.Graphs(); err != nil {
		t.Fatalf("RequireRequestID against conforming daemon: %v", err)
	}

	// ...and against a server that strips the header it fails loudly.
	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"graphs":[]}`)
	}))
	t.Cleanup(bare.Close)
	c := svc.NewClient(bare.URL)
	c.RequireRequestID = true
	if _, err := c.Graphs(); err == nil || !strings.Contains(err.Error(), "X-Request-Id") {
		t.Fatalf("RequireRequestID against bare server: got %v, want X-Request-Id error", err)
	}
}

// asStatusError unwraps err into a *svc.StatusError.
func asStatusError(err error, target **svc.StatusError) bool {
	return errors.As(err, target)
}
