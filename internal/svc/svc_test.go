// End-to-end suite of the serving layer, run over real HTTP via
// httptest: upload→query→sketch round trips are asserted byte-identical
// to direct library calls for every worker count, the single-flight and
// eviction behavior of the sketch cache is observed through its Stats
// counters, and the admission gates and error surface are exercised.
package svc_test

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"qcongest/internal/baseline"
	"qcongest/internal/congest"
	"qcongest/internal/dist"
	"qcongest/internal/graph"
	"qcongest/internal/svc"
)

// workload is the shared e2e graph: connected, weighted, small enough
// for exact metrics in test time.
func workload(t *testing.T, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomWeights(graph.LowDiameterExpanderish(n, 4, rng), 16, rng)
	if !g.Connected() {
		t.Fatal("workload graph disconnected")
	}
	return g
}

func newService(t *testing.T, cfg svc.Config) (*svc.Server, *svc.Client) {
	t.Helper()
	s := svc.New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, svc.NewClient(ts.URL)
}

// TestServiceParityWithLibrary is the determinism contract of API.md:
// every number the daemon serves — exact metrics and sketch numerators —
// is byte-identical to a direct library call on the same graph, for
// every sketch worker count.
func TestServiceParityWithLibrary(t *testing.T) {
	g := workload(t, 120)
	sources := []int{3, 1, 4, 15, 9, 2, 6}
	const l, k = 8, 3
	eps := dist.EpsForN(g.N())

	// Library ground truth, built sequentially.
	wantDiam, wantRad := g.Diameter(), g.Radius()
	ref := dist.BuildSkeletonWith(g, sources, l, k, eps, dist.BuildSkeletonOpts{Workers: 1})
	wantNum := make([]int64, g.N())
	for v := 0; v < g.N(); v++ {
		wantNum[v] = ref.ApproxEccentricity(v)
	}

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, client := newService(t, svc.Config{SketchWorkers: workers})
			up, err := client.Upload(g)
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("%016x", g.Digest()); up.Digest != want {
				t.Fatalf("digest %s != %s", up.Digest, want)
			}
			if d, err := client.Diameter(up.Digest); err != nil || d != wantDiam {
				t.Fatalf("diameter (%d, %v) != %d", d, err, wantDiam)
			}
			if r, err := client.Radius(up.Digest); err != nil || r != wantRad {
				t.Fatalf("radius (%d, %v) != %d", r, err, wantRad)
			}
			for _, v := range []int{0, 7, g.N() - 1} {
				want := g.Eccentricity(v)
				if e, err := client.Eccentricity(up.Digest, v); err != nil || e != want {
					t.Fatalf("ecc(%d) = (%d, %v) != %d", v, e, err, want)
				}
			}
			vertices := make([]int, g.N())
			for v := range vertices {
				vertices[v] = v
			}
			resp, err := client.Sketch(up.Digest, svc.SketchRequest{
				Sources: sources, L: l, K: k, EpsT: eps.T, Vertices: vertices,
			})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Den != ref.DenOut || resp.EpsT != eps.T {
				t.Fatalf("den/epsT (%d, %d) != (%d, %d)", resp.Den, resp.EpsT, ref.DenOut, eps.T)
			}
			if len(resp.Eccentricities) != g.N() {
				t.Fatalf("got %d eccentricities, want %d", len(resp.Eccentricities), g.N())
			}
			for i, e := range resp.Eccentricities {
				if e.V != i || e.Num != wantNum[i] {
					t.Fatalf("workers=%d: ẽ(%d) = %d != library %d", workers, e.V, e.Num, wantNum[i])
				}
			}
			// Defaulted epsT resolves to the same Eq. (1) choice.
			resp2, err := client.Sketch(up.Digest, svc.SketchRequest{Sources: sources, L: l, K: k})
			if err != nil || resp2.EpsT != eps.T {
				t.Fatalf("default epsT: (%d, %v), want %d", resp2.EpsT, err, eps.T)
			}
		})
	}
}

// TestServiceSingleFlight fires concurrent identical sketch requests at
// one cold cache entry and asserts exactly one build happened — the
// rest were served as hits or deduplicated waits — via the cache's
// Stats counters.
func TestServiceSingleFlight(t *testing.T) {
	const clients = 12
	s, client := newService(t, svc.Config{
		CacheCapacity: 4, BuildSlots: 2, BuildQueue: 2 * clients, QuerySlots: 64,
	})
	g := workload(t, 300)
	up, err := client.Upload(g)
	if err != nil {
		t.Fatal(err)
	}
	req := svc.SketchRequest{Sources: []int{0, 1, 2, 3, 4, 5, 6, 7}, L: 16, K: 4}

	var wg sync.WaitGroup
	responses := make([]svc.SketchResponse, clients)
	errs := make([]error, clients)
	barrier := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-barrier
			responses[i], errs[i] = client.Sketch(up.Digest, req)
		}(i)
	}
	close(barrier)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if len(responses[i].Eccentricities) != len(req.Sources) {
			t.Fatalf("client %d: %d answers", i, len(responses[i].Eccentricities))
		}
		for j := range responses[i].Eccentricities {
			if responses[i].Eccentricities[j] != responses[0].Eccentricities[j] {
				t.Fatalf("client %d disagrees with client 0 at %d", i, j)
			}
		}
	}
	stats := s.Cache().Stats()
	if stats.Misses != 1 {
		t.Fatalf("expected exactly 1 build, got %d misses (stats %+v)", stats.Misses, stats)
	}
	if stats.Hits+stats.Waits != clients-1 {
		t.Fatalf("hits %d + waits %d != %d (stats %+v)", stats.Hits, stats.Waits, clients-1, stats)
	}
	if stats.Size != 1 {
		t.Fatalf("expected 1 resident entry, got %d", stats.Size)
	}
}

// TestServiceEviction drives more distinct sketch keys than the cache
// holds and asserts LRU eviction through Stats, including the rebuild
// of an evicted key.
func TestServiceEviction(t *testing.T) {
	s, client := newService(t, svc.Config{CacheCapacity: 2})
	g := workload(t, 80)
	up, err := client.Upload(g)
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) svc.SketchRequest {
		return svc.SketchRequest{Sources: []int{i, i + 1, i + 2}, L: 4, K: 2}
	}
	for i := 0; i < 4; i++ {
		if _, err := client.Sketch(up.Digest, key(i)); err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	stats := s.Cache().Stats()
	if stats.Misses != 4 || stats.Evictions < 2 || stats.Size > 2 {
		t.Fatalf("after 4 distinct keys at capacity 2: %+v", stats)
	}
	// Key 0 was evicted; touching it again is a fresh build.
	if _, err := client.Sketch(up.Digest, key(0)); err != nil {
		t.Fatal(err)
	}
	if stats = s.Cache().Stats(); stats.Misses != 5 {
		t.Fatalf("evicted key did not rebuild: %+v", stats)
	}
	// A warm key is a hit, not a build.
	if _, err := client.Sketch(up.Digest, key(0)); err != nil {
		t.Fatal(err)
	}
	if after := s.Cache().Stats(); after.Misses != 5 || after.Hits != stats.Hits+1 {
		t.Fatalf("warm key re-built or missed the hit counter: %+v", after)
	}
}

// TestServiceBatchMatchesLibrary checks the /v1/batch sweep equals
// per-graph baseline.ClassicalDiameter results, including the measured
// round counts.
func TestServiceBatchMatchesLibrary(t *testing.T) {
	_, client := newService(t, svc.Config{})
	g1, g2 := workload(t, 48), graph.SpineLeaf(2, 3, 4, 2, 5)
	up1, err := client.Upload(g1)
	if err != nil {
		t.Fatal(err)
	}
	up2, err := client.Upload(g2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Batch(svc.BatchRequest{Digests: []string{up1.Digest, up2.Digest, up1.Digest}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	for i, g := range []*graph.Graph{g1, g2, g1} {
		diam, rad, stats, err := baseline.ClassicalDiameter(g, congest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := resp.Results[i]
		if r.Diameter != diam || r.Radius != rad || r.Rounds != stats.Rounds {
			t.Fatalf("result %d: (%d, %d, %d) != library (%d, %d, %d)",
				i, r.Diameter, r.Radius, r.Rounds, diam, rad, stats.Rounds)
		}
	}
}

// TestServiceUploadIdempotent checks digest-addressed registration:
// re-uploading is a 200 with Created=false, and the listing stays
// deduplicated.
func TestServiceUploadIdempotent(t *testing.T) {
	_, client := newService(t, svc.Config{})
	g := workload(t, 40)
	up1, err := client.Upload(g)
	if err != nil {
		t.Fatal(err)
	}
	if !up1.Created {
		t.Fatal("first upload not Created")
	}
	up2, err := client.Upload(g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if up2.Created || up2.Digest != up1.Digest {
		t.Fatalf("re-upload: %+v vs %+v", up2, up1)
	}
	list, err := client.Graphs()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Digest != up1.Digest || list[0].N != g.N() || list[0].M != g.M() {
		t.Fatalf("listing %+v", list)
	}
	info, err := client.GraphInfo(up1.Digest)
	if err != nil || info != up1.GraphInfo {
		t.Fatalf("info (%+v, %v) != %+v", info, err, up1.GraphInfo)
	}
}

// TestServiceGenerateDeterministic checks server-side generation is
// reproducible from the spec (same digest on a second daemon).
func TestServiceGenerateDeterministic(t *testing.T) {
	spec := svc.GenSpec{Kind: "spineleaf", Spines: 2, Leaves: 4, Hosts: 3, MaxW: 9, Seed: 42}
	_, c1 := newService(t, svc.Config{})
	_, c2 := newService(t, svc.Config{})
	up1, err := c1.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	up2, err := c2.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if up1.Digest != up2.Digest {
		t.Fatalf("same spec, different digests: %s vs %s", up1.Digest, up2.Digest)
	}
}

// TestServiceErrors walks the documented error surface of API.md.
func TestServiceErrors(t *testing.T) {
	_, client := newService(t, svc.Config{MaxGraphs: 1, MaxNodes: 1000, MaxBatchNodes: 20})
	g := workload(t, 30)
	up, err := client.Upload(g)
	if err != nil {
		t.Fatal(err)
	}

	expectStatus := func(name string, err error, code int) {
		t.Helper()
		se, ok := err.(*svc.StatusError)
		if !ok {
			t.Fatalf("%s: expected StatusError, got %v", name, err)
		}
		if se.Code != code {
			t.Fatalf("%s: status %d, want %d (%s)", name, se.Code, code, se.Message)
		}
	}

	_, err = client.Diameter("zzzz")
	expectStatus("bad digest", err, http.StatusBadRequest)
	_, err = client.Diameter("00000000deadbeef")
	expectStatus("unknown digest", err, http.StatusNotFound)
	_, err = client.Eccentricity(up.Digest, -1)
	expectStatus("vertex out of range", err, http.StatusBadRequest)
	_, err = client.Sketch(up.Digest, svc.SketchRequest{L: 4, K: 2})
	expectStatus("empty sources", err, http.StatusBadRequest)
	_, err = client.Sketch(up.Digest, svc.SketchRequest{Sources: []int{99}, L: 4, K: 2})
	expectStatus("source out of range", err, http.StatusBadRequest)
	_, err = client.Sketch(up.Digest, svc.SketchRequest{Sources: []int{0}, L: 0, K: 2})
	expectStatus("l too small", err, http.StatusBadRequest)
	_, err = client.Sketch(up.Digest, svc.SketchRequest{Sources: []int{0}, L: 2_000_000_000, K: 2})
	expectStatus("l above 4n cap", err, http.StatusBadRequest)
	_, err = client.Sketch(up.Digest, svc.SketchRequest{Sources: []int{0}, L: 4, K: 2, EpsT: 1 << 40})
	expectStatus("epsT above cap", err, http.StatusBadRequest)
	_, err = client.Sketch(up.Digest, svc.SketchRequest{Sources: []int{0}, L: 4, K: 2, Vertices: []int{99}})
	expectStatus("query vertex out of range", err, http.StatusBadRequest)
	_, err = client.Batch(svc.BatchRequest{})
	expectStatus("empty batch", err, http.StatusBadRequest)
	_, err = client.Batch(svc.BatchRequest{Digests: []string{"00000000deadbeef"}})
	expectStatus("batch unknown digest", err, http.StatusNotFound)
	_, err = client.Batch(svc.BatchRequest{Digests: []string{up.Digest}}) // n=30 > MaxBatchNodes=20
	expectStatus("batch graph above node cap", err, http.StatusBadRequest)
	_, err = client.Generate(svc.GenSpec{Kind: "escher"})
	expectStatus("unknown generator", err, http.StatusBadRequest)
	_, err = client.Generate(svc.GenSpec{Kind: "cycle", N: 2})
	expectStatus("generator precondition", err, http.StatusBadRequest)
	_, err = client.Generate(svc.GenSpec{Kind: "path", N: 5000})
	expectStatus("graph too large", err, http.StatusRequestEntityTooLarge)
	// Rejected by the pre-allocation size check: a complete graph on
	// 10^9 nodes would be ~5·10^17 edges — the daemon must answer 413
	// without attempting the build.
	_, err = client.Generate(svc.GenSpec{Kind: "complete", N: 1_000_000_000})
	expectStatus("generator size bomb", err, http.StatusRequestEntityTooLarge)
	_, err = client.Upload(graph.Path(10)) // registry capacity 1, already holding g
	expectStatus("registry full", err, http.StatusInsufficientStorage)

	// Raw-route errors the typed client cannot produce.
	base := client.BaseURL
	for _, tc := range []struct {
		name, method, path, body string
		code                     int
	}{
		{"unknown route", http.MethodGet, "/v2/nope", "", http.StatusNotFound},
		{"method not allowed", http.MethodDelete, "/v1/graphs", "", http.StatusMethodNotAllowed},
		{"sketch via GET", http.MethodGet, "/v1/graphs/" + up.Digest + "/sketch", "", http.StatusMethodNotAllowed},
		{"bad JSON", http.MethodPost, "/v1/graphs", "{", http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/graphs", `{"edgelost":"n 1"}`, http.StatusBadRequest},
		{"both sources", http.MethodPost, "/v1/graphs", `{"edgelist":"n 1","gen":{"kind":"path","n":2}}`, http.StatusBadRequest},
		{"edgelist header bomb", http.MethodPost, "/v1/graphs", `{"edgelist":"n 99999999999"}`, http.StatusRequestEntityTooLarge},
		{"neither source", http.MethodPost, "/v1/graphs", `{}`, http.StatusBadRequest},
		{"ecc missing v", http.MethodGet, "/v1/graphs/" + up.Digest + "/eccentricity", "", http.StatusBadRequest},
		{"unknown graph op", http.MethodGet, "/v1/graphs/" + up.Digest + "/girth", "", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
}

// TestServiceAdmissionControl saturates the build gate with cold sketch
// builds and asserts (a) overflow is rejected with 503, never a 5xx
// crash, and (b) warm reads keep being served while builds are queued.
func TestServiceAdmissionControl(t *testing.T) {
	const colds = 8
	_, client := newService(t, svc.Config{BuildSlots: 1, BuildQueue: 1, QuerySlots: 16})
	g := workload(t, 600)
	up, err := client.Upload(g)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the exact metrics so reads are warm.
	if _, err := client.Diameter(up.Digest); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, colds)
	barrier := make(chan struct{})
	for i := 0; i < colds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-barrier
			_, errs[i] = client.Sketch(up.Digest, svc.SketchRequest{
				Sources: []int{i, i + 10, i + 20, i + 30}, L: 32, K: 3,
			})
		}(i)
	}
	close(barrier)
	// Warm reads proceed while the build gate is saturated.
	for i := 0; i < 5; i++ {
		if _, err := client.Radius(up.Digest); err != nil {
			t.Fatalf("warm read starved during build burst: %v", err)
		}
	}
	wg.Wait()

	var ok, saturated int
	for i, err := range errs {
		switch se, isStatus := err.(*svc.StatusError); {
		case err == nil:
			ok++
		case isStatus && se.Code == http.StatusServiceUnavailable:
			saturated++
		default:
			t.Fatalf("cold %d: unexpected error %v", i, err)
		}
	}
	if ok == 0 {
		t.Fatal("no cold build succeeded")
	}
	if ok+saturated != colds {
		t.Fatalf("ok %d + saturated %d != %d", ok, saturated, colds)
	}
	t.Logf("admission: %d built, %d shed with 503", ok, saturated)
}

// TestServiceHealthAndMetrics checks the operational endpoints: healthz
// flips to draining, and the metrics snapshot reflects traffic and
// exposes consistent cache counters.
func TestServiceHealthAndMetrics(t *testing.T) {
	s, client := newService(t, svc.Config{})
	h, err := client.Health()
	if err != nil || h.Status != "ok" {
		t.Fatalf("health (%+v, %v)", h, err)
	}

	g := workload(t, 60)
	up, err := client.Upload(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Diameter(up.Digest); err != nil {
		t.Fatal(err)
	}
	req := svc.SketchRequest{Sources: []int{0, 1}, L: 4, K: 2}
	for i := 0; i < 3; i++ {
		if _, err := client.Sketch(up.Digest, req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Diameter("zzzz"); err == nil {
		t.Fatal("expected a 400 for the 4xx counter")
	}

	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Graphs != 1 {
		t.Fatalf("metrics graphs %d", m.Graphs)
	}
	if m.Cache.Misses != 1 || m.Cache.Hits != 2 {
		t.Fatalf("cache metrics %+v", m.Cache)
	}
	if rate := m.Cache.HitRate; rate < 0.6 || rate > 0.7 {
		t.Fatalf("hit rate %f, want 2/3", rate)
	}
	if q := m.Requests["query"]; q.Count < 2 || q.Errors4x != 1 || q.P50Ms <= 0 {
		t.Fatalf("query metrics %+v", q)
	}
	if sk := m.Requests["sketch"]; sk.Count != 3 || sk.P99Ms < sk.P50Ms {
		t.Fatalf("sketch metrics %+v", sk)
	}
	if up := m.Requests["upload"]; up.Count != 1 {
		t.Fatalf("upload metrics %+v", up)
	}

	s.SetHealthy(false)
	_, err = client.Health()
	if se, ok := err.(*svc.StatusError); !ok || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining health answered %v", err)
	}
}

// TestServiceSketchKernelModes is the cross-engine determinism contract
// at the HTTP surface: the same sketch request pinned to each kernel
// mode answers byte-identical numerators, each pinned mode is its own
// cache line (a genuine rebuild, observed through Stats.Misses), and a
// bogus mode string draws a 400 before any build starts.
func TestServiceSketchKernelModes(t *testing.T) {
	g := workload(t, 140)
	sources := []int{0, 5, 9, 23, 41}
	const l, k = 7, 2
	eps := dist.EpsForN(g.N())
	vertices := make([]int, g.N())
	for v := range vertices {
		vertices[v] = v
	}
	ref := dist.BuildSkeletonWith(g, sources, l, k, eps, dist.BuildSkeletonOpts{Workers: 1})

	s, client := newService(t, svc.Config{})
	up, err := client.Upload(g)
	if err != nil {
		t.Fatal(err)
	}
	modes := []string{"sparse", "dense", "delta", "auto", ""}
	var first svc.SketchResponse
	for i, mode := range modes {
		resp, err := client.Sketch(up.Digest, svc.SketchRequest{
			Sources: sources, L: l, K: k, EpsT: eps.T, Vertices: vertices, Kernel: mode,
		})
		if err != nil {
			t.Fatalf("kernel %q: %v", mode, err)
		}
		if resp.Den != ref.DenOut {
			t.Fatalf("kernel %q: den %d != library %d", mode, resp.Den, ref.DenOut)
		}
		for _, e := range resp.Eccentricities {
			if want := ref.ApproxEccentricity(e.V); e.Num != want {
				t.Fatalf("kernel %q: vertex %d numerator %d != library %d",
					mode, e.V, e.Num, want)
			}
		}
		if i == 0 {
			first = resp
		} else if resp.Den != first.Den {
			t.Fatalf("kernel %q: den diverged from %q", mode, modes[0])
		}
	}
	// sparse/dense/delta/auto are four distinct cache lines; "" resolves
	// to the daemon default (auto here) and must hit auto's line.
	stats := s.Cache().Stats()
	if stats.Misses != 4 {
		t.Fatalf("expected 4 distinct kernel cache lines, got %d misses (stats %+v)", stats.Misses, stats)
	}
	if stats.Hits != 1 {
		t.Fatalf("hint-less request should hit the default mode's line: %+v", stats)
	}

	_, err = client.Sketch(up.Digest, svc.SketchRequest{
		Sources: sources, L: l, K: k, Kernel: "quantum",
	})
	se, ok := err.(*svc.StatusError)
	if !ok || se.Code != http.StatusBadRequest {
		t.Fatalf("bogus kernel mode: got %v, want 400", err)
	}
	if got := s.Cache().Stats(); got.Misses != stats.Misses {
		t.Fatalf("rejected request still built a sketch: %+v", got)
	}
}
