package svc_test

// Control-plane suite for /v1/promote and /v1/demote: the epoch rules
// (monotone, no same-epoch double leaders, no stale demotions), the
// full follower→leader→follower round trip with epoch-fenced sequence
// numbers and chain parity, and the X-Cluster-Token gate.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"qcongest/internal/svc"
)

// control POSTs one promote/demote request and decodes the answer
// whatever the status.
func control(t *testing.T, baseURL, path, token string, body any) (int, svc.RoleResponse, svc.ErrorResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("X-Cluster-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var role svc.RoleResponse
	var er svc.ErrorResponse
	var payload json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("POST %s: undecodable body: %v", path, err)
	}
	_ = json.Unmarshal(payload, &role)
	_ = json.Unmarshal(payload, &er)
	return resp.StatusCode, role, er
}

// TestPromoteDemoteRoundTrip drives one shard pair through the whole
// transition by hand: promote the in-sync follower, write into the new
// epoch (fenced sequence space), demote the old leader, and watch it
// re-sync to exact seq and chain parity.
func TestPromoteDemoteRoundTrip(t *testing.T) {
	leader, lc := openPersistent(t, svc.Config{DataDir: t.TempDir()})
	defer leader.Close()
	if _, err := lc.Upload(workload(t, 48)); err != nil {
		t.Fatal(err)
	}
	follower, fc := openPersistent(t, svc.Config{
		DataDir:    t.TempDir(),
		FollowURL:  lc.BaseURL,
		FollowPoll: 20 * time.Millisecond,
	})
	defer follower.Close()
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool {
		_, h := getHealth(t, fc.BaseURL)
		_, lh := getHealth(t, lc.BaseURL)
		return h.Replication != nil && h.Replication.Seq == lh.Replication.Seq
	})

	// Epoch 0 sanity: promoting at epoch 0 is malformed, and promoting a
	// follower at its current epoch would seat two epoch-0 leaders.
	if code, _, _ := control(t, fc.BaseURL, "/v1/promote", "", svc.PromoteRequest{Epoch: 0}); code != http.StatusBadRequest {
		t.Fatalf("promote at epoch 0: %d, want 400", code)
	}

	// Promote the follower to epoch 1: it answers leader, stops
	// following, and accepts writes into the fenced sequence space.
	code, role, _ := control(t, fc.BaseURL, "/v1/promote", "", svc.PromoteRequest{Epoch: 1})
	if code != http.StatusOK || role.Role != "leader" || role.Epoch != 1 {
		t.Fatalf("promote: %d %+v, want 200 leader epoch 1", code, role)
	}
	// Idempotent replay of the same promotion.
	if code, role, _ = control(t, fc.BaseURL, "/v1/promote", "", svc.PromoteRequest{Epoch: 1}); code != http.StatusOK || role.Role != "leader" {
		t.Fatalf("promote replay: %d %+v", code, role)
	}
	// A later, stale promotion attempt at an old epoch is refused.
	if code, _, _ = control(t, fc.BaseURL, "/v1/promote", "", svc.PromoteRequest{Epoch: 1}); code != http.StatusOK {
		t.Fatalf("same-epoch leader promote should stay idempotent: %d", code)
	}

	up, err := fc.Upload(workload(t, 80))
	if err != nil || !up.Created {
		t.Fatalf("write on the promoted leader: (%+v, %v)", up, err)
	}
	_, nh := getHealth(t, fc.BaseURL)
	if nh.Replication.Role != "leader" || nh.Replication.Seq < 1<<32 {
		t.Fatalf("promoted head %+v, want leader with seq >= 1<<32 (epoch fence)", nh.Replication)
	}

	// The old leader at epoch 0 refuses a demotion below its own epoch
	// only when stale; epoch 1 is legitimate and turns it around.
	if code, _, _ = control(t, lc.BaseURL, "/v1/demote", "", svc.DemoteRequest{Epoch: 1, Leader: "not a url"}); code != http.StatusBadRequest {
		t.Fatalf("demote with a bogus leader URL: %d, want 400", code)
	}
	code, role, _ = control(t, lc.BaseURL, "/v1/demote", "", svc.DemoteRequest{Epoch: 1, Leader: fc.BaseURL})
	if code != http.StatusOK || role.Role != "follower" || role.Epoch != 1 {
		t.Fatalf("demote: %d %+v, want 200 follower epoch 1", code, role)
	}
	// A stale demotion (epoch below the node's) is refused now.
	if code, _, _ = control(t, lc.BaseURL, "/v1/demote", "", svc.DemoteRequest{Epoch: 0, Leader: fc.BaseURL}); code != http.StatusConflict {
		t.Fatalf("stale demote: %d, want 409", code)
	}

	// The demoted node re-syncs to exact parity with the new leader.
	var oldH svc.HealthResponse
	waitUntil(t, 10*time.Second, "demoted leader parity", func() bool {
		_, oldH = getHealth(t, lc.BaseURL)
		_, nh = getHealth(t, fc.BaseURL)
		return oldH.Replication != nil &&
			oldH.Replication.Seq == nh.Replication.Seq &&
			oldH.Replication.Chain == nh.Replication.Chain
	})
	if oldH.Replication.Chain == "" || oldH.Replication.Chain == "0000000000000000" {
		t.Fatalf("parity chain is trivial: %q", oldH.Replication.Chain)
	}
	// Writes bounce off the demoted node like any follower.
	if _, err := lc.Upload(workload(t, 12)); err == nil {
		t.Fatal("write on the demoted leader succeeded")
	}
	// And a same-epoch promotion of the now-follower is refused: epoch 1
	// already has a leader.
	if code, _, _ = control(t, lc.BaseURL, "/v1/promote", "", svc.PromoteRequest{Epoch: 1}); code != http.StatusConflict {
		t.Fatalf("same-epoch follower promote: %d, want 409", code)
	}
}

// TestClusterTokenGate pins the control-plane auth: with a token
// configured, promote/demote demand the exact X-Cluster-Token and
// everything else on the daemon stays open.
func TestClusterTokenGate(t *testing.T) {
	srv, c := openPersistent(t, svc.Config{DataDir: t.TempDir(), ClusterToken: "s3cret"})
	defer srv.Close()

	if code, _, _ := control(t, c.BaseURL, "/v1/promote", "", svc.PromoteRequest{Epoch: 1}); code != http.StatusForbidden {
		t.Fatalf("tokenless promote: %d, want 403", code)
	}
	if code, _, _ := control(t, c.BaseURL, "/v1/promote", "wrong", svc.PromoteRequest{Epoch: 1}); code != http.StatusForbidden {
		t.Fatalf("wrong-token promote: %d, want 403", code)
	}
	if code, _, _ := control(t, c.BaseURL, "/v1/demote", "bad", svc.DemoteRequest{Epoch: 1, Leader: "http://127.0.0.1:9"}); code != http.StatusForbidden {
		t.Fatalf("wrong-token demote: %d, want 403", code)
	}
	code, role, _ := control(t, c.BaseURL, "/v1/promote", "s3cret", svc.PromoteRequest{Epoch: 1})
	if code != http.StatusOK || role.Role != "leader" || role.Epoch != 1 {
		t.Fatalf("tokened promote: %d %+v", code, role)
	}
	// The data plane is untouched by the gate.
	if _, err := c.Upload(workload(t, 24)); err != nil {
		t.Fatalf("data-plane upload with a cluster token set: %v", err)
	}
}

// TestControlEndpointsMethodGate pins the routing: promote/demote are
// POST-only.
func TestControlEndpointsMethodGate(t *testing.T) {
	srv, c := openPersistent(t, svc.Config{DataDir: t.TempDir()})
	defer srv.Close()
	for _, path := range []string{"/v1/promote", "/v1/demote"} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: %d, want 405", path, resp.StatusCode)
		}
	}
}
