package svc

// The embedded /status page: a single self-refreshing HTML view over
// the same MetricsSnapshot the JSON and Prometheus endpoints read, for
// operators who want live qps/p99/cache-hit/gate-occupancy without a
// scraper. It is rendered server-side from one template with no
// scripts or external assets, so it works over curl and in locked-down
// environments alike.

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
)

// statusRow is one request-class line of the page.
type statusRow struct {
	Class    string
	Count    int64
	QPS      string
	P50Ms    float64
	P99Ms    float64
	Errors4x int64
	Errors5x int64
	InFlight int64
}

// statusKeyRow is one API-key line of the page.
type statusKeyRow struct {
	Key     string
	Allowed int64
	Limited int64
	Graphs  int64
}

// statusView is the template payload.
type statusView struct {
	Uptime       string
	Graphs       int
	CacheHitRate string
	CacheEntries int
	CacheHits    int64
	CacheMisses  int64
	CacheWaits   int64
	Evictions    int64
	BuildInUse   int
	QueryInUse   int
	Rows         []statusRow
	Keys         []statusKeyRow
	Store        *StoreMetrics
}

var statusTmpl = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>qcongestd status</title>
<style>
body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; margin: 2rem; color: #222; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: right; }
th { background: #f2f2f2; } td.k, th.k { text-align: left; }
.muted { color: #777; font-size: .85rem; }
</style>
</head>
<body>
<h1>qcongestd</h1>
<p class="muted">uptime {{.Uptime}} &middot; {{.Graphs}} graphs &middot; auto-refreshes every 5s &middot;
<a href="/metrics">JSON metrics</a> &middot; <a href="/metrics?format=prometheus">Prometheus</a></p>

<h2>Requests</h2>
<table>
<tr><th class="k">class</th><th>count</th><th>qps</th><th>p50 ms</th><th>p99 ms</th><th>4xx</th><th>5xx</th><th>in flight</th></tr>
{{range .Rows}}<tr><td class="k">{{.Class}}</td><td>{{.Count}}</td><td>{{.QPS}}</td><td>{{.P50Ms}}</td><td>{{.P99Ms}}</td><td>{{.Errors4x}}</td><td>{{.Errors5x}}</td><td>{{.InFlight}}</td></tr>
{{end}}</table>

<h2>Sketch cache</h2>
<table>
<tr><th>hit rate</th><th>entries</th><th>hits</th><th>misses</th><th>waits</th><th>evictions</th></tr>
<tr><td>{{.CacheHitRate}}</td><td>{{.CacheEntries}}</td><td>{{.CacheHits}}</td><td>{{.CacheMisses}}</td><td>{{.CacheWaits}}</td><td>{{.Evictions}}</td></tr>
</table>

<h2>Admission gates</h2>
<table>
<tr><th class="k">gate</th><th>slots in use</th></tr>
<tr><td class="k">build</td><td>{{.BuildInUse}}</td></tr>
<tr><td class="k">query</td><td>{{.QueryInUse}}</td></tr>
</table>

{{if .Keys}}<h2>API keys</h2>
<table>
<tr><th class="k">key</th><th>allowed</th><th>limited</th><th>graphs</th></tr>
{{range .Keys}}<tr><td class="k">{{.Key}}</td><td>{{.Allowed}}</td><td>{{.Limited}}</td><td>{{.Graphs}}</td></tr>
{{end}}</table>{{end}}

{{if .Store}}<h2>Durable store</h2>
<table>
<tr><th>graphs</th><th>appends</th><th>snapshots</th><th>WAL bytes</th><th>snapshot bytes</th><th>warm hits</th></tr>
<tr><td>{{.Store.Graphs}}</td><td>{{.Store.Appends}}</td><td>{{.Store.Snapshots}}</td><td>{{.Store.WALBytes}}</td><td>{{.Store.SnapshotBytes}}</td><td>{{.Store.WarmStartHits}}</td></tr>
</table>{{end}}
</body>
</html>
`))

// handleStatus renders the operator page from a fresh snapshot.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed; use GET", r.Method)
		return
	}
	snap := s.snapshot()
	view := statusView{
		Uptime:       fmt.Sprintf("%.0fs", snap.UptimeSeconds),
		Graphs:       snap.Graphs,
		CacheHitRate: fmt.Sprintf("%.1f%%", snap.Cache.HitRate*100),
		CacheEntries: snap.Cache.Size,
		CacheHits:    snap.Cache.Hits,
		CacheMisses:  snap.Cache.Misses,
		CacheWaits:   snap.Cache.Waits,
		Evictions:    snap.Cache.Evictions,
		BuildInUse:   snap.BuildSlotsInUse,
		QueryInUse:   snap.QuerySlotsInUse,
		Store:        snap.Store,
	}
	for _, class := range allClasses {
		rm := snap.Requests[class]
		qps := 0.0
		if snap.UptimeSeconds > 0 {
			qps = float64(rm.Count) / snap.UptimeSeconds
		}
		view.Rows = append(view.Rows, statusRow{
			Class:    class,
			Count:    rm.Count,
			QPS:      fmt.Sprintf("%.2f", qps),
			P50Ms:    rm.P50Ms,
			P99Ms:    rm.P99Ms,
			Errors4x: rm.Errors4x,
			Errors5x: rm.Errors5x,
			InFlight: rm.InFlight,
		})
	}
	if len(snap.RateLimits) > 0 {
		keys := make([]string, 0, len(snap.RateLimits))
		for key := range snap.RateLimits {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			k := snap.RateLimits[key]
			view.Keys = append(view.Keys, statusKeyRow{Key: key, Allowed: k.Allowed, Limited: k.Limited, Graphs: k.Graphs})
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statusTmpl.Execute(w, view); err != nil {
		// Headers are already out; nothing recoverable remains.
		return
	}
}
