package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"qcongest/internal/baseline"
	"qcongest/internal/congest"
	"qcongest/internal/dist"
	"qcongest/internal/graph"
	"qcongest/internal/store"
)

// maxEpsT bounds the client-supplied inverse rounding parameter: with
// T <= 2^20 and l <= 4n <= 2^22 the denominator 2·T·l stays below 2^43,
// leaving int64 headroom for every numerator sum.
const maxEpsT = 1 << 20

// instrument wraps a handler with the class's in-flight gauge and
// latency/status ledger, plus the per-API-key rate-limit layer — the
// bucket check runs inside the ledger so 429s show up in the class's
// 4xx counts and latency histogram like every other rejection.
func (s *Server) instrument(class string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrumentOpts(class, true, h)
}

// instrumentOpts is instrument with the rate limiter made optional:
// /v1/replicate is metered but never limited, because follower catch-up
// traffic carries no API key and throttling it only manufactures lag.
func (s *Server) instrumentOpts(class string, limited bool, h http.HandlerFunc) http.HandlerFunc {
	c := s.metrics.class(class)
	return func(w http.ResponseWriter, r *http.Request) {
		rec, ok := w.(*responseState)
		if !ok {
			// ServeHTTP always wraps; this is the direct-mount fallback.
			rec = &responseState{ResponseWriter: w, status: http.StatusOK}
		}
		rec.class = class
		c.inFlight.Add(1)
		start := time.Now()
		// Deferred so a panicking handler (net/http recovers it) cannot
		// wedge the in-flight gauge.
		defer func() {
			c.inFlight.Add(-1)
			c.observe(time.Since(start), rec.status)
		}()
		if limited && s.limiter != nil {
			if retry, allowed := s.limiter.allow(apiKeyOf(r)); !allowed {
				rec.Header().Set("Retry-After", strconv.Itoa(retry))
				writeError(rec, http.StatusTooManyRequests,
					"rate limit exceeded for this API key, retry in %ds", retry)
				return
			}
		}
		h(rec, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	// The middleware set the correlation header before any handler ran,
	// so every error body can echo it for log correlation.
	writeJSON(w, code, ErrorResponse{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get(requestIDHeader),
	})
}

// decodeBody strictly decodes a JSON request body into v (unknown
// fields are errors). The body was already capped at cfg.MaxBodyBytes
// by the middleware (ServeHTTP); crossing the cap is the documented
// 413, not a generic 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// admit acquires the given gate for the request, answering 503 on
// saturation (or client abandonment) itself. A true return must be
// paired with g.leave().
func admit(w http.ResponseWriter, ctx context.Context, g *gate) bool {
	if err := g.enter(ctx); err != nil {
		if errors.Is(err, errSaturated) {
			writeError(w, http.StatusServiceUnavailable, "server at capacity, retry later")
		} else {
			writeError(w, http.StatusServiceUnavailable, "request abandoned while queued: %v", err)
		}
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := HealthResponse{
		Status:        "ok",
		Graphs:        s.reg.len(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.store != nil {
		resp.Store = &StoreHealth{
			RecoveredGraphs:    s.recovery.SnapshotGraphs + s.recovery.LogGraphs,
			QuarantinedRecords: s.recovery.Quarantined,
			ReplayMs:           float64(s.recovery.Replay.Microseconds()) / 1000,
			WarmupTarget:       s.warmTarget.Load(),
			WarmupDone:         s.warmDone.Load(),
		}
	}
	code := http.StatusOK
	resp.Replication = s.replicationStatus()
	if rp := resp.Replication; rp != nil && rp.SeqDelta > rp.MaxLagSeq && rp.MaxLagSeq > 0 {
		// A follower too far behind its leader must fail readiness: its
		// answers are correct (determinism is per-digest) but its graph
		// set is stale, and the router's any-replica reads depend on
		// lagging replicas taking themselves out of rotation.
		resp.Status = "lagging"
		code = http.StatusServiceUnavailable
	}
	if !s.healthy.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// handleMetrics serves both metrics views by content negotiation: the
// Prometheus exposition format for scrapers (Accept: text/plain or
// application/openmetrics-text, or ?format=prometheus) and the JSON
// snapshot for everything else — the PR 4 default, so existing typed
// clients keep decoding.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if wantsPromText(r) {
		s.writePromText(w)
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot())
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	if !admit(w, r.Context(), s.query) {
		return
	}
	defer s.query.leave()
	writeJSON(w, http.StatusOK, GraphListResponse{Graphs: s.reg.list()})
}

// Raw graph media types, negotiated on POST /v1/graphs by Content-Type
// and on GET /v1/graphs/{digest} by Accept (or ?format=). The JSON
// wrapper stays the default on both sides for compatibility.
const (
	ctBinaryGraph = "application/x-qcongest-graph"
	ctEdgeList    = "application/x-qcongest-edgelist"
)

// mediaType extracts the bare media type from a Content-Type header
// value, dropping parameters like charset.
func mediaType(v string) string {
	if v == "" {
		return ""
	}
	mt, _, err := mime.ParseMediaType(v)
	if err != nil {
		return strings.ToLower(strings.TrimSpace(v))
	}
	return mt
}

// downloadFormat resolves the representation for a graph download:
// an explicit ?format= wins (mirroring /metrics), then the Accept
// header, then the JSON info document the PR 4 API served.
func downloadFormat(r *http.Request) string {
	switch r.URL.Query().Get("format") {
	case "binary":
		return "binary"
	case "edgelist", "text":
		return "edgelist"
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, ctBinaryGraph):
		return "binary"
	case strings.Contains(accept, ctEdgeList):
		return "edgelist"
	}
	return "json"
}

// handleGraphInfo answers GET /v1/graphs/{digest}: the JSON info
// document by default, or — negotiated by Accept/?format= — the graph
// body itself in either wire codec, so a client (or a future replica)
// can fetch exactly the bytes it would re-upload.
func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request, e *entry) {
	var body []byte
	var ct string
	switch downloadFormat(r) {
	case "binary":
		body, ct = graph.FormatBinary(e.g), ctBinaryGraph
	case "edgelist":
		body, ct = graph.FormatEdgeListVersioned(e.g), ctEdgeList
	default:
		writeJSON(w, http.StatusOK, e.info)
		return
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	// Followers are read-only: every graph arrives over the replication
	// stream, and accepting a direct upload here would fork the replica
	// set (the leader would never ship this digest, so no other replica
	// converges to it). 403, not 503 — retrying against this node can
	// never succeed; the error names where writes go.
	if rp := s.repl.Load(); rp != nil {
		writeError(w, http.StatusForbidden,
			"this node is a read-only follower; send writes to the leader at %s", rp.leader)
		return
	}
	// Raw uploads skip the JSON wrapper entirely: the body IS the graph,
	// streamed through the codec's incremental framer. Unrecognized
	// Content-Types (including none) stay on the JSON path so pre-PR 8
	// clients are untouched.
	switch mediaType(r.Header.Get("Content-Type")) {
	case ctBinaryGraph:
		s.handleCreateGraphRaw(w, r, true)
		return
	case ctEdgeList:
		s.handleCreateGraphRaw(w, r, false)
		return
	}
	key := apiKeyOf(r)
	var req UploadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if (len(req.EdgeList) == 0) == (req.Gen == nil) {
		writeError(w, http.StatusBadRequest, "set exactly one of \"edgelist\" and \"gen\"")
		return
	}
	// Parsing and generation are cold work: admit the build gate before
	// touching them so an upload burst is bounded at BuildSlots instead
	// of running unadmitted (the size checks below bound one request's
	// allocation; the gate bounds how many run at once).
	if !admit(w, r.Context(), s.build) {
		return
	}
	defer s.build.leave()
	var g *graph.Graph
	var err error
	if len(req.EdgeList) > 0 {
		// Limits are enforced during the parse — before the adjacency
		// allocation — so a few-byte "n 99999999999" header cannot
		// request terabytes. EdgeListBytes already landed the body as
		// []byte, so no string round trip happens here.
		g, err = graph.ParseEdgeListLimits(req.EdgeList, s.cfg.MaxNodes, s.cfg.MaxEdges)
	} else {
		// Size-check the spec before generating, for the same reason.
		if err := s.checkGenSize(req.Gen); err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
			return
		}
		g, err = generate(req.Gen)
	}
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "exceeds limit") {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "%v", err)
		return
	}
	s.finishCreateGraph(w, r, key, g, req.Gen)
}

// handleCreateGraphRaw is the wire-speed upload path: the request body
// is the graph itself in the binary or text codec, decoded straight off
// the stream — size limits are enforced from the codec's header prefix
// before adjacency is allocated, and at no point does a second copy of
// the body exist (the JSON path holds the decoder buffer, the string
// field, and the parse input simultaneously).
func (s *Server) handleCreateGraphRaw(w http.ResponseWriter, r *http.Request, binary bool) {
	if !admit(w, r.Context(), s.build) {
		return
	}
	defer s.build.leave()
	var g *graph.Graph
	var err error
	switch {
	case binary && r.ContentLength > 0 && r.ContentLength <= s.cfg.MaxBodyBytes:
		// The declared length is within the admitted body budget, so
		// read into one exact-size buffer instead of letting the
		// streaming decoder's buffer grow by doubling — at a million
		// edges the saved reallocation copies are a measurable slice of
		// the ingest budget. ParseBinaryLimits still enforces the
		// node/edge limits from the prefix before graph allocation.
		body := make([]byte, r.ContentLength)
		if _, err = io.ReadFull(r.Body, body); err == nil {
			g, err = graph.ParseBinaryLimits(body, s.cfg.MaxNodes, s.cfg.MaxEdges)
		}
	case binary:
		g, err = graph.DecodeBinary(r.Body, s.cfg.MaxNodes, s.cfg.MaxEdges)
	default:
		g, err = graph.DecodeEdgeList(r.Body, s.cfg.MaxNodes, s.cfg.MaxEdges)
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		code := http.StatusBadRequest
		switch {
		case errors.As(err, &tooBig):
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
			return
		case strings.Contains(err.Error(), "exceeds limit"):
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "%v", err)
		return
	}
	s.finishCreateGraph(w, r, apiKeyOf(r), g, nil)
}

// finishCreateGraph is the codec-independent back half of every upload:
// post-parse limit enforcement, tenant quota, registration, durable
// persistence, and the response. Callers hold the build gate.
func (s *Server) finishCreateGraph(w http.ResponseWriter, r *http.Request, key string, g *graph.Graph, genSpec *GenSpec) {
	if g.N() > s.cfg.MaxNodes || g.M() > s.cfg.MaxEdges {
		writeError(w, http.StatusRequestEntityTooLarge,
			"graph n=%d m=%d exceeds limits (n <= %d, m <= %d)", g.N(), g.M(), s.cfg.MaxNodes, s.cfg.MaxEdges)
		return
	}
	// The tenant quota caps *created* graphs, so it is enforced at the
	// point where creation is decided: a re-upload of an already
	// registered digest stays idempotent even for an at-quota key.
	// (Advisory against concurrent creates — see limiter.graphQuotaLeft.)
	if s.limiter != nil && !s.limiter.graphQuotaLeft(key) {
		if _, ok := s.reg.get(g.Digest()); !ok {
			writeError(w, http.StatusTooManyRequests,
				"API key %q reached its graph quota (%d created graphs)", key, s.cfg.TenantMaxGraphs)
			return
		}
	}
	e, created, err := s.reg.put(g)
	if err != nil {
		writeError(w, http.StatusInsufficientStorage, "%v (capacity %d)", err, s.cfg.MaxGraphs)
		return
	}
	if created {
		// Durably commit before acknowledging (in-memory servers no-op):
		// a 2xx upload must survive a crash at any later byte boundary.
		var gen []byte
		if genSpec != nil {
			gen, _ = json.Marshal(genSpec)
		}
		if err := s.persistGraph(e, gen); err != nil {
			writeError(w, http.StatusInternalServerError, "persisting graph: %v", err)
			return
		}
	} else if err := s.awaitDurable(r.Context(), e); err != nil {
		// We raced the creating request and its durable append failed
		// (the entry was rolled back): this acknowledgment would be a
		// durability receipt for nothing.
		writeError(w, http.StatusInternalServerError, "persisting graph: %v", err)
		return
	}
	if created && s.limiter != nil {
		s.limiter.noteGraph(key)
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, UploadResponse{GraphInfo: e.info, Created: created})
}

// checkGenSize predicts a generator spec's output size and rejects
// anything beyond the configured graph limits before allocation.
// Negative or unknown-kind parameters fall through — generate reports
// those with the generator's own message.
func (s *Server) checkGenSize(spec *GenSpec) error {
	return CheckGenSize(spec, s.cfg.MaxNodes, s.cfg.MaxEdges)
}

// CheckGenSize is the upload path's pre-generation size gate, exported
// for the cluster router: anyone who must materialize a GenSpec to
// learn its digest needs the same refuse-before-allocating bound the
// daemon applies, or a crafted spec turns the router into the bomb the
// daemon refuses to be.
func CheckGenSize(spec *GenSpec, maxNodes, maxEdges int) error {
	maxN, maxM := int64(maxNodes), int64(maxEdges)
	// Bound every raw factor first so the size formulas below cannot
	// overflow (products of two factors each <= 2^30 fit int64 easily).
	lim := maxN
	if maxM > lim {
		lim = maxM
	}
	if lim > 1<<30 {
		lim = 1 << 30
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"n", spec.N}, {"m", spec.M}, {"rows", spec.Rows}, {"cols", spec.Cols},
		{"avgDeg", spec.AvgDeg}, {"k", spec.K}, {"bridgeLen", spec.BridgeLen},
		{"spines", spec.Spines}, {"leaves", spec.Leaves}, {"hosts", spec.Hosts},
	} {
		if int64(p.v) > lim {
			return fmt.Errorf("gen %s=%d exceeds the graph limits (n <= %d, m <= %d)", p.name, p.v, maxN, maxM)
		}
	}
	var n, m int64
	switch spec.Kind {
	case "path", "cycle", "star":
		n, m = int64(spec.N), int64(spec.N)
	case "complete":
		n = int64(spec.N)
		m = n * (n - 1) / 2
	case "grid":
		n = int64(spec.Rows) * int64(spec.Cols)
		m = 2 * n
	case "random":
		n, m = int64(spec.N), int64(spec.M)
	case "lowdiameter":
		n = int64(spec.N)
		deg := int64(spec.AvgDeg)
		if deg < 2 {
			deg = 2
		}
		m = n * deg / 2
	case "diametercontrolled":
		n, m = int64(spec.N), 2*int64(spec.N)
	case "barbell":
		k := int64(spec.K)
		n = 2*k + int64(spec.BridgeLen)
		m = k*(k-1) + int64(spec.BridgeLen)
	case "spineleaf":
		leaves, hosts := int64(spec.Leaves), int64(spec.Hosts)
		n = int64(spec.Spines) + leaves + leaves*hosts
		m = int64(spec.Spines)*leaves + leaves*hosts
	default:
		return nil
	}
	if n > maxN || m > maxM {
		return fmt.Errorf("generated graph would have n=%d m=%d, exceeding limits (n <= %d, m <= %d)", n, m, maxN, maxM)
	}
	return nil
}

// GenerateGraph materializes a generator spec exactly as POST
// /v1/graphs with "gen" would — same generators, same seed handling,
// same digest. Exported for the cluster router, which must compute a
// gen upload's digest to pick its shard before any daemon has seen the
// spec.
func GenerateGraph(spec *GenSpec) (*graph.Graph, error) { return generate(spec) }

// generate runs a GenSpec through the graph generators. The generators
// report invalid parameters by panicking; that is recovered into a
// client error rather than taking the daemon down.
func generate(spec *GenSpec) (g *graph.Graph, err error) {
	defer func() {
		if p := recover(); p != nil {
			g, err = nil, fmt.Errorf("%v", p)
		}
	}()
	rng := rand.New(rand.NewSource(spec.Seed))
	switch spec.Kind {
	case "path":
		g = graph.Path(spec.N)
	case "cycle":
		g = graph.Cycle(spec.N)
	case "star":
		g = graph.Star(spec.N)
	case "complete":
		g = graph.Complete(spec.N)
	case "grid":
		g = graph.Grid(spec.Rows, spec.Cols)
	case "random":
		g = graph.RandomConnected(spec.N, spec.M, rng)
	case "lowdiameter":
		g = graph.LowDiameterExpanderish(spec.N, spec.AvgDeg, rng)
	case "diametercontrolled":
		g = graph.DiameterControlled(spec.N, spec.D, rng)
	case "barbell":
		g = graph.Barbell(spec.K, spec.BridgeLen)
	case "spineleaf":
		wCore, wEdge := spec.WCore, spec.WEdge
		if wCore == 0 {
			wCore = 1
		}
		if wEdge == 0 {
			wEdge = 1
		}
		g = graph.SpineLeaf(spec.Spines, spec.Leaves, spec.Hosts, wCore, wEdge)
	default:
		return nil, fmt.Errorf("unknown generator kind %q", spec.Kind)
	}
	if spec.MaxW > 1 {
		g = graph.RandomWeights(g, spec.MaxW, rng)
	}
	return g, nil
}

// handleExactMetric answers diameter/radius/eccentricity from the
// per-graph exact-metric memo. The first touch of a graph computes all
// eccentricities under the build gate; every later read is warm and
// rides the query gate.
func (s *Server) handleExactMetric(w http.ResponseWriter, r *http.Request, e *entry, metric string) {
	v := 0
	if metric == "eccentricity" {
		raw := r.URL.Query().Get("v")
		if raw == "" {
			writeError(w, http.StatusBadRequest, "eccentricity needs a ?v= vertex parameter")
			return
		}
		var err error
		v, err = strconv.Atoi(raw)
		if err != nil || v < 0 || v >= e.g.N() {
			writeError(w, http.StatusBadRequest, "vertex %q out of range [0,%d)", raw, e.g.N())
			return
		}
	}
	g, warm := s.query, e.metricsReady()
	if !warm {
		g = s.build
	}
	if !admit(w, r.Context(), g) {
		return
	}
	defer g.leave()
	if warm {
		// Counted only for admitted requests: shed traffic never
		// inflates the warm-start payoff ledger.
		s.noteWarmHit(e)
	}
	s.touch(e, nil)
	diam, rad, eccs := e.metrics()
	resp := MetricResponse{Digest: e.info.Digest, Metric: metric}
	switch metric {
	case "diameter":
		resp.Value = diam
	case "radius":
		resp.Value = rad
	default:
		resp.V = v
		resp.Value = eccs[v]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request, e *entry) {
	var req SketchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	n := e.g.N()
	if len(req.Sources) == 0 {
		writeError(w, http.StatusBadRequest, "sources must be non-empty")
		return
	}
	for _, u := range req.Sources {
		if u < 0 || u >= n {
			writeError(w, http.StatusBadRequest, "source %d out of range [0,%d)", u, n)
			return
		}
	}
	if req.L < 1 || req.K < 1 {
		writeError(w, http.StatusBadRequest, "need l >= 1 and k >= 1, got l=%d k=%d", req.L, req.K)
		return
	}
	// No simple path exceeds n-1 hops, so larger budgets only burn CPU
	// in a build slot (mirrors core.ParamsFor's 4n clamp, as a hard
	// error at the API boundary).
	if req.L > 4*n {
		writeError(w, http.StatusBadRequest, "hop budget l=%d exceeds 4*n = %d", req.L, 4*n)
		return
	}
	// maxEpsT keeps the denominator 2*T*l and the per-scale cap
	// (1+2T)*l far from int64 overflow (Eq. (1) uses T = ceil(log2 n)).
	if req.EpsT < 0 || req.EpsT > maxEpsT {
		writeError(w, http.StatusBadRequest, "epsT must be in [0, %d], got %d", int64(maxEpsT), req.EpsT)
		return
	}
	eps := dist.Eps{T: req.EpsT}
	if eps.T == 0 {
		eps = dist.EpsForN(n)
	}
	// An explicit request mode overrides the daemon default; the empty
	// string defers to it. The resolved mode is part of the cache
	// identity (not of the answer: numerators are byte-identical across
	// modes).
	kernel := s.cfg.SketchKernel
	if req.Kernel != "" {
		var err error
		if kernel, err = graph.ParseKernelMode(req.Kernel); err != nil {
			writeError(w, http.StatusBadRequest, "bad kernel: %v", err)
			return
		}
	}
	vertices := req.Vertices
	if len(vertices) == 0 {
		vertices = req.Sources
	}
	for _, v := range vertices {
		if v < 0 || v >= n {
			writeError(w, http.StatusBadRequest, "vertex %d out of range [0,%d)", v, n)
			return
		}
	}

	// Route by cache temperature: a completed entry serves on the query
	// gate, while likely-cold requests (misses and joins of an in-flight
	// build) pay the build gate, so a burst of cold builds saturates at
	// BuildSlots instead of displacing warm traffic. The probe is
	// advisory — an entry completing (or evicting) between Peek and
	// Skeleton just means this request holds the other gate's slot,
	// which is harmless. leave() is deferred: a panic out of a failed
	// deduplicated build must not leak the slot.
	gate, warm := s.query, s.cache.PeekKernel(e.g, req.Sources, req.L, req.K, eps, kernel)
	if !warm {
		gate = s.build
	}
	if !admit(w, r.Context(), gate) {
		return
	}
	defer gate.leave()
	if warm {
		s.noteWarmHit(e)
	}
	sk := s.cache.SkeletonKernel(e.g, req.Sources, req.L, req.K, eps, kernel)
	// Record the tuple as the graph's warm-start hint only now that the
	// build succeeded: a tuple that panics the builder (failed
	// deduplicated flight) must never become a persisted hint the next
	// boot replays. The kernel mode is deliberately not part of the
	// hint: warm starts rebuild on the daemon's configured default.
	s.touch(e, &store.SketchParams{Sources: req.Sources, L: req.L, K: req.K, EpsT: req.EpsT})
	resp := SketchResponse{
		Digest:         e.info.Digest,
		EpsT:           eps.T,
		Den:            sk.DenOut,
		Eccentricities: make([]SketchEcc, len(vertices)),
	}
	for i, v := range vertices {
		resp.Eccentricities[i] = SketchEcc{V: v, Num: sk.ApproxEccentricity(v)}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Digests) == 0 {
		writeError(w, http.StatusBadRequest, "digests must be non-empty")
		return
	}
	if len(req.Digests) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Digests), s.cfg.MaxBatch)
		return
	}
	gs := make([]*graph.Graph, len(req.Digests))
	for i, dh := range req.Digests {
		e, ok := s.lookup(w, dh)
		if !ok {
			return
		}
		// The APSP protocol holds an n-length distance vector per node,
		// so one oversized job costs Θ(n²) memory.
		if n := e.g.N(); n > s.cfg.MaxBatchNodes {
			writeError(w, http.StatusBadRequest,
				"graph %s has n=%d, above the batch limit %d", dh, n, s.cfg.MaxBatchNodes)
			return
		}
		gs[i] = e.g
	}
	if !admit(w, r.Context(), s.build) {
		return
	}
	defer s.build.leave()
	diams, radii, stats, err := baseline.ClassicalDiameterBatch(gs, congest.Options{Workers: req.Workers}, req.Parallelism)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "batch APSP failed: %v", err)
		return
	}
	resp := BatchResponse{Results: make([]BatchEntry, len(gs))}
	for i := range gs {
		resp.Results[i] = BatchEntry{
			Digest:   req.Digests[i],
			Diameter: diams[i],
			Radius:   radii[i],
			Rounds:   stats[i].Rounds,
			Messages: stats[i].Messages,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
