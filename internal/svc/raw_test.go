// End-to-end suite of the raw codec-negotiated data plane: uploads via
// the JSON wrapper, the raw text codec, and the raw binary codec must
// converge on the same digest and the same sketch numerators;
// Accept-negotiated downloads must round-trip exactly; and the error
// surface (bad magic, corrupt CRC, over-limit headers, oversized
// bodies) must answer the documented status codes.
package svc_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"qcongest/internal/graph"
	"qcongest/internal/svc"
)

func rawPost(t *testing.T, base string, body []byte, ct string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/graphs", ct, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRawUploadCrossCodecParity uploads the same graph three ways and
// asserts all three register the same digest (only the first creates)
// and that sketch numerators served afterward are identical regardless
// of which encoding carried the graph in.
func TestRawUploadCrossCodecParity(t *testing.T) {
	g := workload(t, 96)
	_, client := newService(t, svc.Config{})

	upJSON, err := client.Upload(g)
	if err != nil {
		t.Fatal(err)
	}
	if !upJSON.Created {
		t.Fatal("first upload did not create")
	}
	upText, err := client.UploadWire(g, false)
	if err != nil {
		t.Fatal(err)
	}
	upBin, err := client.UploadWire(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if upText.Digest != upJSON.Digest || upBin.Digest != upJSON.Digest {
		t.Fatalf("digests diverge across codecs: json=%s text=%s binary=%s",
			upJSON.Digest, upText.Digest, upBin.Digest)
	}
	if upText.Created || upBin.Created {
		t.Fatal("raw re-uploads of the same graph were not idempotent")
	}

	req := svc.SketchRequest{Sources: []int{0, 5, 9}, L: 8, K: 3}
	ref, err := client.Sketch(upJSON.Digest, req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := client.Sketch(upBin.Digest, req)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Den != again.Den || !reflect.DeepEqual(ref.Eccentricities, again.Eccentricities) {
		t.Fatal("sketch numerators depend on the upload codec")
	}
}

// TestGraphDownloadNegotiation pins the Accept/?format= download path:
// both codecs round-trip the digest exactly, unknown Accept values keep
// serving the JSON info document.
func TestGraphDownloadNegotiation(t *testing.T) {
	g := workload(t, 64)
	_, client := newService(t, svc.Config{})
	up, err := client.Upload(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, binary := range []bool{false, true} {
		got, err := client.FetchGraph(up.Digest, binary)
		if err != nil {
			t.Fatalf("fetch binary=%v: %v", binary, err)
		}
		if got.Digest() != g.Digest() {
			t.Fatalf("fetch binary=%v changed digest", binary)
		}
	}
	// Default stays the JSON info document.
	info, err := client.GraphInfo(up.Digest)
	if err != nil || info.Digest != up.Digest || info.M != g.M() {
		t.Fatalf("info fetch: (%+v, %v)", info, err)
	}
}

// TestRawUploadErrors pins the raw path's error surface.
func TestRawUploadErrors(t *testing.T) {
	server, client := newService(t, svc.Config{MaxNodes: 128, MaxEdges: 256, MaxBodyBytes: 1 << 16})
	_ = server
	base := strings.TrimRight(client.BaseURL, "/")

	valid := graph.FormatBinary(workload(t, 64))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x40

	for _, tc := range []struct {
		name string
		body []byte
		ct   string
		code int
		want string
	}{
		{"bad magic", []byte("garbage"), "application/x-qcongest-graph", http.StatusBadRequest, "bad binary magic"},
		{"text through binary type", graph.FormatEdgeList(workload(t, 64)), "application/x-qcongest-graph", http.StatusBadRequest, "bad binary magic"},
		{"corrupt crc", corrupt, "application/x-qcongest-graph", http.StatusBadRequest, "checksum"},
		{"over node limit binary", graph.FormatBinary(graph.Path(500)), "application/x-qcongest-graph", http.StatusRequestEntityTooLarge, "exceeds limit"},
		{"over node limit text", graph.FormatEdgeList(graph.Path(500)), "application/x-qcongest-edgelist", http.StatusRequestEntityTooLarge, "exceeds limit"},
		{"bad text", []byte("not an edge list"), "application/x-qcongest-edgelist", http.StatusBadRequest, "header"},
	} {
		resp := rawPost(t, base, tc.body, tc.ct)
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d (body %s), want %d", tc.name, resp.StatusCode, raw, tc.code)
		}
		var er svc.ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || !strings.Contains(er.Error, tc.want) {
			t.Fatalf("%s: error body %q does not mention %q", tc.name, raw, tc.want)
		}
	}

	// A body over MaxBodyBytes draws the documented 413 even when its
	// codec header is valid (the stream hits the MaxBytesReader cap).
	big := graph.FormatEdgeList(workload(t, 128))
	for len(big) <= 1<<16 {
		big = append(big, "# padding comment line\n"...)
	}
	resp := rawPost(t, base, big, "application/x-qcongest-edgelist")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// An unknown Content-Type falls back to the JSON path and reports a
	// JSON decode error, exactly as pre-PR 8 clients would see.
	resp = rawPost(t, base, []byte("n 2\n0 1 1\n"), "text/plain")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown content type: status %d, want 400", resp.StatusCode)
	}
}

// TestEdgeListBytesJSON pins the one-copy JSON field type: its marshal
// output must decode identically under encoding/json, and its unmarshal
// must invert both its own output and stdlib-escaped content.
func TestEdgeListBytesJSON(t *testing.T) {
	for _, in := range []string{
		"", "n 3\n0 1 2\n", "quote \" backslash \\ tab \t cr \r bell \x07",
		"unicode é 世 raw bytes", "ctrl \x01\x1f",
	} {
		got, err := json.Marshal(svc.EdgeListBytes(in))
		if err != nil {
			t.Fatalf("marshal %q: %v", in, err)
		}
		want, _ := json.Marshal(in)
		var viaStd string
		if err := json.Unmarshal(got, &viaStd); err != nil || viaStd != in {
			t.Fatalf("custom marshal of %q (%s) not stdlib-decodable: (%q, %v)", in, got, viaStd, err)
		}
		var back svc.EdgeListBytes
		if err := json.Unmarshal(want, &back); err != nil || string(back) != in {
			t.Fatalf("custom unmarshal of stdlib %s: (%q, %v)", want, back, err)
		}
		if err := json.Unmarshal(got, &back); err != nil || string(back) != in {
			t.Fatalf("custom round trip of %q: (%q, %v)", in, back, err)
		}
	}
	// Escaped surrogate pairs and lone surrogates decode with stdlib's
	// leniency (replacement rune), not an error.
	for _, tc := range []struct{ in, want string }{
		{`"\ud83d\ude00"`, "\U0001f600"},
		{`"\ud800x"`, "�x"},
		{`"é\t"`, "é\t"},
	} {
		var got svc.EdgeListBytes
		if err := json.Unmarshal([]byte(tc.in), &got); err != nil || string(got) != tc.want {
			t.Fatalf("unmarshal %s: (%q, %v), want %q", tc.in, got, err, tc.want)
		}
	}
	var bad svc.EdgeListBytes
	for _, in := range []string{`"\q"`, `"\u12`, `"unterminated`, `42`} {
		if err := json.Unmarshal([]byte(in), &bad); err == nil {
			t.Fatalf("unmarshal %s: expected error", in)
		}
	}
}
