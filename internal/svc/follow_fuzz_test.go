package svc

// FuzzReplicationStream throws arbitrary bytes at the follower apply
// path — the satellite-3 offensive. The invariants (also documented on
// consumeReplicationStream): no input panics the follower; nothing
// enters the registry without passing the frame CRC, the graph decode
// limits, and the digest recomputation; the cursor only moves forward,
// and only past fully applied records; and a hostile stream never
// poisons an already committed prefix.

import (
	"bytes"
	"testing"
	"time"

	"qcongest/internal/graph"
	"qcongest/internal/store"
)

// fuzzFollower builds an in-memory follower with a hand-wired
// replication state — no leader, no loop; the fuzz target feeds the
// stream consumer directly.
func fuzzFollower() *Server {
	s := New(Config{MaxNodes: 1 << 12, MaxEdges: 1 << 14})
	s.repl.Store(&replState{leader: "http://fuzz", maxLag: 1024, poll: time.Millisecond})
	return s
}

// checkFollowerInvariants asserts the structural invariants that must
// hold after consuming any stream whatsoever.
func checkFollowerInvariants(t *testing.T, s *Server, cursorBefore uint64) {
	t.Helper()
	rp := s.repl.Load()
	if c := rp.cursor.Load(); c < cursorBefore {
		t.Fatalf("cursor moved backwards: %d -> %d", cursorBefore, c)
	}
	if n := int64(s.reg.len()); n > rp.applied.Load() {
		t.Fatalf("%d resident graphs but only %d applied records", n, rp.applied.Load())
	}
	// Every resident graph re-digests to its registry address: nothing
	// got in without surviving verification.
	for _, info := range s.reg.list() {
		d, err := ParseDigest(info.Digest)
		if err != nil {
			t.Fatalf("registry digest %q unparsable: %v", info.Digest, err)
		}
		e, ok := s.reg.get(d)
		if !ok {
			t.Fatalf("listed digest %s not resident", info.Digest)
		}
		if e.g.Digest() != d {
			t.Fatalf("resident graph re-digests to %016x, registered as %s", e.g.Digest(), info.Digest)
		}
	}
}

func FuzzReplicationStream(f *testing.F) {
	// A genuine leader stream as seed corpus material: three graphs
	// through a real durable store, framed exactly as /v1/replicate
	// frames them.
	leader, _, _, err := store.Open(store.Options{Dir: f.TempDir()})
	if err != nil {
		f.Fatal(err)
	}
	defer leader.Close()
	for _, g := range []*graph.Graph{graph.Path(8), graph.Star(5), graph.Cycle(7)} {
		if err := leader.AppendGraph(g, nil); err != nil {
			f.Fatal(err)
		}
	}
	var valid bytes.Buffer
	if _, _, err := leader.ReplicationStream(0, &valid); err != nil {
		f.Fatal(err)
	}
	stream := valid.Bytes()

	f.Add(stream)                                         // clean stream
	f.Add(stream[:len(stream)/2])                         // torn mid-record
	f.Add(append(append([]byte{}, stream...), stream...)) // full duplicate (reordered/stale seqs)
	corrupted := append([]byte{}, stream...)
	corrupted[len(corrupted)/3] ^= 0x80
	f.Add(corrupted) // bit flip inside a frame
	f.Add([]byte("rec 1 graph 4 12345\nXXXX\n"))
	f.Add([]byte("not a stream at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes into a fresh follower.
		s := fuzzFollower()
		before := s.repl.Load().cursor.Load()
		_, _ = s.consumeReplicationStream(s.repl.Load(), bytes.NewReader(data))
		checkFollowerInvariants(t, s, before)

		// Determinism: the same bytes replayed into another fresh
		// follower land in exactly the same state.
		s2 := fuzzFollower()
		_, _ = s2.consumeReplicationStream(s2.repl.Load(), bytes.NewReader(data))
		if s2.repl.Load().cursor.Load() != s.repl.Load().cursor.Load() ||
			s2.repl.Load().applied.Load() != s.repl.Load().applied.Load() ||
			s2.reg.len() != s.reg.len() {
			t.Fatalf("same stream, diverged followers: cursor %d/%d applied %d/%d graphs %d/%d",
				s.repl.Load().cursor.Load(), s2.repl.Load().cursor.Load(),
				s.repl.Load().applied.Load(), s2.repl.Load().applied.Load(),
				s.reg.len(), s2.reg.len())
		}

		// Committed-prefix safety: a follower that already applied the
		// real stream keeps every graph — and their digests — no matter
		// what arrives afterwards.
		s3 := fuzzFollower()
		if _, err := s3.consumeReplicationStream(s3.repl.Load(), bytes.NewReader(stream)); err != nil {
			t.Fatalf("clean stream refused: %v", err)
		}
		wantGraphs := s3.reg.len()
		cursorAfterClean := s3.repl.Load().cursor.Load()
		_, _ = s3.consumeReplicationStream(s3.repl.Load(), bytes.NewReader(data))
		checkFollowerInvariants(t, s3, cursorAfterClean)
		if s3.reg.len() < wantGraphs {
			t.Fatalf("hostile stream evicted committed graphs: %d -> %d", wantGraphs, s3.reg.len())
		}
		for _, g := range []*graph.Graph{graph.Path(8), graph.Star(5), graph.Cycle(7)} {
			if _, ok := s3.reg.get(g.Digest()); !ok {
				t.Fatalf("committed graph %016x lost after hostile stream", g.Digest())
			}
		}
	})
}
