// Package svc is the serving layer: a long-running HTTP/JSON daemon
// (cmd/qcongestd) that owns a registry of immutable graphs addressed by
// graph.Digest() and answers diameter/radius/eccentricity, Lemma 3.2
// sketch, and batch APSP queries over the network, so consumers no
// longer need to link the library for every lookup.
//
// This package is infrastructure, not paper machinery: the paper's
// three-party Server model of Lemma 4.1 lives in internal/server (and
// internal/server also hosts the SketchCache this daemon serves from).
// The data flow is
//
//	registry (digest → immutable *graph.Graph)
//	  → server.SketchCache (bounded LRU + single-flight, keyed by
//	    digest + the full Lemma 3.2 parameter tuple)
//	    → graph.DistWorkspace frontier kernel (the §3 distance builds)
//
// Because graphs are registered once and never mutated, a digest is a
// permanent name for a topology, which is what makes both cache layers
// (the sketch LRU and the per-graph exact-metric memo) safe without
// invalidation. Every numeric answer is computed by the same library
// code a direct caller would run, so responses are byte-identical to
// in-process results for any worker count (the determinism contract of
// API.md).
//
// Admission control is a pair of bounded gates: cold work (sketch
// builds, batch sweeps, first-touch exact metrics, upload parsing and
// generation) competes for a small build gate, while warm reads go
// through a wide query gate — a burst of cold builds saturates the
// build gate and returns 503, it cannot starve warm traffic. See
// DESIGN.md §8 for the architecture chapter.
//
// With Config.DataDir set (and the Open constructor), the registry is
// durable: every committed graph is fsynced into the crash-safe store
// of internal/store before the upload is acknowledged, a reboot replays
// it with digest verification (corrupt records are quarantined, never
// served), and the K most-recently-queried graphs are optionally
// pre-warmed back into the metric memos and sketch cache. Recovery and
// warm-up progress surface through /healthz and /metrics. See DESIGN.md
// §9 for the durability chapter.
package svc

import (
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qcongest/internal/graph"
	"qcongest/internal/server"
	"qcongest/internal/store"
)

// Config tunes the daemon. The zero value is runnable: every field has
// a default applied by New.
type Config struct {
	// CacheCapacity bounds the sketch LRU (default 64 skeletons).
	CacheCapacity int
	// SketchWorkers is the per-build worker fan-out handed to
	// dist.BuildSkeletonWith (0 uses dist.DefaultSkeletonWorkers).
	// Numerators are byte-identical for every value.
	SketchWorkers int
	// SketchKernel is the default relaxation engine for sketch builds
	// whose request does not pin one (graph.KernelAuto, the zero value,
	// is the heuristic crossover). Numerators are byte-identical for
	// every mode.
	SketchKernel graph.KernelMode
	// BuildSlots bounds concurrently executing cold work: sketch
	// builds, batch sweeps, first-touch exact-metric computations, and
	// upload parsing/generation (default 2).
	BuildSlots int
	// BuildQueue bounds callers waiting for a build slot; beyond it the
	// daemon answers 503 immediately (default 4×BuildSlots).
	BuildQueue int
	// QuerySlots bounds concurrently executing warm reads (default 256).
	QuerySlots int
	// QueryQueue bounds callers waiting for a query slot (default
	// 4×QuerySlots).
	QueryQueue int
	// MaxGraphs bounds the registry; registering beyond it answers 507
	// (default 128).
	MaxGraphs int
	// MaxNodes and MaxEdges bound one registered graph (defaults 1<<17
	// nodes, 1<<21 edges).
	MaxNodes, MaxEdges int
	// MaxBatch bounds the number of jobs in one /v1/batch call
	// (default 64).
	MaxBatch int
	// MaxBatchNodes bounds one batch job's graph size (default 4096):
	// the APSP protocol keeps an n-length distance vector per node, so
	// a job costs Θ(n²) memory while it runs.
	MaxBatchNodes int
	// MaxBodyBytes bounds one request body (default 64 MiB).
	MaxBodyBytes int64
	// DataDir, when non-empty, makes the registry durable: graphs are
	// committed to a crash-safe on-disk store (internal/store) and
	// replayed — digest-verified — on the next Open over the same
	// directory. Empty keeps the PR 4 in-memory behavior. Only Open
	// honors this field; New always builds an in-memory server.
	DataDir string
	// WarmStart pre-warms the exact-metric memos and the sketch cache
	// for the K most-recently-queried recovered graphs after a
	// persistent boot (0 disables; ignored without DataDir).
	WarmStart int
	// SnapshotEvery is the store's automatic snapshot cadence in graph
	// appends (0 = store default 64, negative disables; ignored without
	// DataDir).
	SnapshotEvery int
	// StoreCodec selects the store's record payload codec:
	// store.CodecBinary (the default when empty) or store.CodecText.
	// Either codec replays records written by the other, so this only
	// governs new writes (ignored without DataDir).
	StoreCodec string
	// RatePerKey, when > 0, enforces a per-API-key token bucket on
	// every /v1 endpoint: sustained RatePerKey requests/sec with
	// RateBurst depth, overflow answered 429 with Retry-After. Keys
	// come from the X-API-Key header (absent = the shared "anonymous"
	// bucket). 0 disables rate limiting.
	RatePerKey float64
	// RateBurst is the token-bucket depth (default ⌈2·RatePerKey⌉,
	// minimum 1; ignored when RatePerKey is 0).
	RateBurst int
	// TenantMaxGraphs, when > 0, caps the graphs one API key may
	// create; uploads beyond it answer 429. 0 disables the quota (the
	// global MaxGraphs bound always applies).
	TenantMaxGraphs int
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (request ID, method, path, status, class, API key,
	// latency, bytes). nil disables request logging.
	AccessLog io.Writer
	// FollowURL, when non-empty, runs this daemon as a read-only
	// follower replica of the leader at that base URL: a background
	// loop tails the leader's committed graphs over /v1/replicate,
	// digest-verifying every record before it is applied (and fsyncing
	// it locally when DataDir is set). Followers reject uploads with
	// 403 and report replication lag through /healthz and /metrics.
	// Only Open honors this field.
	FollowURL string
	// MaxLagSeq is the follower readiness threshold: /healthz answers
	// 503 ("lagging") while the follower is more than this many
	// sequence steps behind the leader's last reported head (default
	// 1024; ignored without FollowURL).
	MaxLagSeq uint64
	// FollowPoll is the follower's idle/backoff re-poll interval
	// (default 250ms; the catch-up loop long-polls the leader, so this
	// only paces reconnects and error backoff).
	FollowPoll time.Duration
	// ClusterToken, when non-empty, authenticates the cluster control
	// plane: POST /v1/promote and /v1/demote require a matching
	// X-Cluster-Token header. Empty leaves them open (single-operator
	// dev clusters); production routers and daemons share one token.
	ClusterToken string
}

func (c Config) withDefaults() Config {
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 64
	}
	if c.BuildSlots <= 0 {
		c.BuildSlots = 2
	}
	if c.BuildQueue <= 0 {
		c.BuildQueue = 4 * c.BuildSlots
	}
	if c.QuerySlots <= 0 {
		c.QuerySlots = 256
	}
	if c.QueryQueue <= 0 {
		c.QueryQueue = 4 * c.QuerySlots
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 128
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 17
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 1 << 21
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatchNodes <= 0 {
		c.MaxBatchNodes = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxLagSeq == 0 {
		c.MaxLagSeq = 1024
	}
	if c.FollowPoll <= 0 {
		c.FollowPoll = 250 * time.Millisecond
	}
	return c
}

// Server is the service state behind one daemon: the graph registry,
// the sketch cache, the admission gates, and the metrics ledger. It
// implements http.Handler; mount it directly on an http.Server (see
// cmd/qcongestd) or an httptest.Server (see the e2e suite).
type Server struct {
	cfg     Config
	reg     *registry
	cache   *server.SketchCache
	metrics *metrics
	build   *gate
	query   *gate
	start   time.Time
	healthy atomic.Bool

	// Middleware state (middleware.go, ratelimit.go): request-ID
	// generation, the optional access logger, and the per-API-key
	// limiter (nil when no per-key limit is configured).
	bootID  string
	reqSeq  atomic.Uint64
	logger  *slog.Logger
	limiter *limiter

	// Replication state (nil = accepts writes). An atomic pointer
	// because promotion and demotion (promote.go) swap the role at
	// runtime while request handlers read it lock-free; roleMu
	// serializes the transitions themselves, and epoch mirrors the
	// store's persisted leadership generation for lock-free reads
	// (authoritative even on in-memory nodes, which persist nothing).
	// See follow.go and promote.go.
	repl   atomic.Pointer[replState]
	roleMu sync.Mutex
	epoch  atomic.Uint64

	// Durability state (nil store = in-memory server). See persist.go.
	store      *store.Store
	recovery   store.RecoveryStats
	warmTarget atomic.Int64
	warmDone   atomic.Int64
	warmHits   atomic.Int64
	warmStop   chan struct{}
	warmWG     sync.WaitGroup
}

// New returns a ready-to-serve in-memory Server with cfg's defaults
// applied. Use Open to honor Config.DataDir.
func New(cfg Config) *Server {
	return newServer(cfg.withDefaults())
}

func newServer(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		reg:     newRegistry(cfg.MaxGraphs),
		cache:   server.NewSketchCache(cfg.CacheCapacity, cfg.SketchWorkers),
		metrics: newMetrics(),
		build:   newGate(cfg.BuildSlots, cfg.BuildQueue),
		query:   newGate(cfg.QuerySlots, cfg.QueryQueue),
		start:   time.Now(),
		bootID:  newBootID(),
		limiter: newLimiter(cfg.RatePerKey, cfg.RateBurst, cfg.TenantMaxGraphs),
	}
	if cfg.AccessLog != nil {
		s.logger = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	s.healthy.Store(true)
	return s
}

// Cache exposes the sketch cache (the e2e suite asserts its Stats
// counters through this).
func (s *Server) Cache() *server.SketchCache { return s.cache }

// SetHealthy flips the /healthz answer; cmd/qcongestd marks the daemon
// unhealthy at the start of graceful shutdown so load balancers drain
// it before the listener closes.
func (s *Server) SetHealthy(ok bool) { s.healthy.Store(ok) }

// ServeHTTP is the middleware entry point: every request — metered or
// not — is wrapped once with a response recorder, a correlation ID on
// the response header (set before any handler runs, so every error
// path carries it), and a body cap, then routed; the access log line,
// when enabled, is emitted after the handler returns.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rs := &responseState{ResponseWriter: w, status: http.StatusOK}
	id := s.requestID(r)
	rs.Header().Set(requestIDHeader, id)
	if r.Body != nil {
		// Capped before any parse: crossing MaxBodyBytes surfaces as a
		// 413 from decodeBody, and no handler path reads an unbounded
		// body (the over-limit upload e2e pins this).
		r.Body = http.MaxBytesReader(rs, r.Body, s.cfg.MaxBodyBytes)
	}
	s.route(rs, r)
	if s.logger != nil {
		s.logRequest(r, rs, id, time.Since(start))
	}
}

// route dispatches the API surface documented in API.md.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		s.handleHealthz(w, r)
	case path == "/metrics":
		s.handleMetrics(w, r)
	case path == "/status":
		s.handleStatus(w, r)
	case path == "/v1/graphs":
		switch r.Method {
		case http.MethodGet:
			s.instrument(classQuery, s.handleListGraphs)(w, r)
		case http.MethodPost:
			s.instrument(classUpload, s.handleCreateGraph)(w, r)
		default:
			writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		}
	case strings.HasPrefix(path, "/v1/graphs/"):
		s.routeGraph(w, r, strings.TrimPrefix(path, "/v1/graphs/"))
	case path == "/v1/batch":
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		s.instrument(classBatch, s.handleBatch)(w, r)
	case path == "/v1/replicate":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		// Metered but never rate-limited: follower catch-up traffic
		// carries no API key, and a throttled replica is a stale replica.
		s.instrumentOpts(classReplicate, false, s.handleReplicate)(w, r)
	case path == "/v1/promote" || path == "/v1/demote":
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		// Control-plane traffic is authenticated by token, not API key,
		// and never rate-limited: a throttled promotion is an outage.
		if path == "/v1/promote" {
			s.instrumentOpts(classControl, false, s.handlePromote)(w, r)
		} else {
			s.instrumentOpts(classControl, false, s.handleDemote)(w, r)
		}
	default:
		writeError(w, http.StatusNotFound, "no such route (see API.md)")
	}
}

// routeGraph dispatches /v1/graphs/{digest}[/{op}]. Digest resolution
// happens inside the instrumented handler so bad-digest traffic shows
// up in the class's 4xx ledger.
func (s *Server) routeGraph(w http.ResponseWriter, r *http.Request, rest string) {
	digestHex, op, _ := strings.Cut(rest, "/")
	class, method := classQuery, http.MethodGet
	switch op {
	case "", "diameter", "radius", "eccentricity":
	case "sketch":
		class, method = classSketch, http.MethodPost
	default:
		writeError(w, http.StatusNotFound, "unknown graph operation %q", op)
		return
	}
	if r.Method != method {
		writeError(w, http.StatusMethodNotAllowed, "use %s", method)
		return
	}
	s.instrument(class, func(w http.ResponseWriter, r *http.Request) {
		e, ok := s.lookup(w, digestHex)
		if !ok {
			return
		}
		switch op {
		case "":
			s.handleGraphInfo(w, r, e)
		case "sketch":
			s.handleSketch(w, r, e)
		default:
			s.handleExactMetric(w, r, e, op)
		}
	})(w, r)
}

// lookup resolves a digest path segment, writing the error response on
// failure.
func (s *Server) lookup(w http.ResponseWriter, digestHex string) (*entry, bool) {
	digest, err := ParseDigest(digestHex)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad digest %q: %v", digestHex, err)
		return nil, false
	}
	e, ok := s.reg.get(digest)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph with digest %s (upload it via POST /v1/graphs)", digestHex)
		return nil, false
	}
	return e, true
}
