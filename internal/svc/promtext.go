package svc

// The Prometheus exposition view of /metrics: a small hand-rolled
// text-format (version 0.0.4) encoder over the same lock-free counters
// the JSON snapshot reads, selected by content negotiation
// (handleMetrics). The request-latency histograms are emitted as
// *native* Prometheus histograms — the raw power-of-two buckets,
// cumulative, with _sum and _count — so quantiles come from the
// scraper's histogram_quantile over real buckets instead of this
// daemon's bucket-upper-bound estimate. No client library is linked;
// the format is simple enough that a strict in-repo parser test
// (promtext_test.go) machine-checks every scrape.

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promContentType is the exposition content type scrapers expect.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPromText decides the /metrics view: ?format=prometheus (or
// json) wins, then an Accept header asking for text/plain or
// OpenMetrics — what every Prometheus scraper sends. The default stays
// JSON so PR 4 clients keep working unchanged.
func wantsPromText(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// promEscape escapes a label value per the exposition format.
var promEscape = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabels renders pairs of (name, value) as a {…} label block.
func promLabels(kv ...string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(promEscape.Replace(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promBuf accumulates one exposition payload.
type promBuf struct{ bytes.Buffer }

// family writes the # HELP / # TYPE preamble of one metric family.
func (p *promBuf) family(name, typ, help string) {
	fmt.Fprintf(p, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line; labels is "" or a promLabels block.
func (p *promBuf) sample(name, labels string, v float64) {
	p.WriteString(name)
	p.WriteString(labels)
	p.WriteByte(' ')
	p.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.WriteByte('\n')
}

// writePromText renders the full exposition payload. Families and
// label sets are emitted in deterministic order so scrapes diff
// cleanly and the parser test can make exact assertions.
func (s *Server) writePromText(w http.ResponseWriter) {
	var p promBuf
	snap := s.snapshot()

	p.family("qcongest_uptime_seconds", "gauge", "Seconds since the daemon started.")
	p.sample("qcongest_uptime_seconds", "", snap.UptimeSeconds)
	p.family("qcongest_registry_graphs", "gauge", "Graphs resident in the registry.")
	p.sample("qcongest_registry_graphs", "", float64(snap.Graphs))

	p.family("qcongest_cache_hits_total", "counter", "Sketch lookups answered from a completed cache entry.")
	p.sample("qcongest_cache_hits_total", "", float64(snap.Cache.Hits))
	p.family("qcongest_cache_misses_total", "counter", "Sketch lookups that triggered a build.")
	p.sample("qcongest_cache_misses_total", "", float64(snap.Cache.Misses))
	p.family("qcongest_cache_waits_total", "counter", "Sketch lookups deduplicated onto an in-flight build.")
	p.sample("qcongest_cache_waits_total", "", float64(snap.Cache.Waits))
	p.family("qcongest_cache_evictions_total", "counter", "Sketch cache LRU evictions.")
	p.sample("qcongest_cache_evictions_total", "", float64(snap.Cache.Evictions))
	p.family("qcongest_cache_entries", "gauge", "Resident sketch cache entries, including in-flight builds.")
	p.sample("qcongest_cache_entries", "", float64(snap.Cache.Size))

	p.family("qcongest_gate_slots_in_use", "gauge", "Admission gate occupancy by gate.")
	p.sample("qcongest_gate_slots_in_use", promLabels("gate", "build"), float64(snap.BuildSlotsInUse))
	p.sample("qcongest_gate_slots_in_use", promLabels("gate", "query"), float64(snap.QuerySlotsInUse))

	p.family("qcongest_requests_total", "counter", "Completed requests by class.")
	for _, class := range allClasses {
		p.sample("qcongest_requests_total", promLabels("class", class), float64(snap.Requests[class].Count))
	}
	p.family("qcongest_request_errors_total", "counter", "Completed requests with error statuses, by class and family.")
	for _, class := range allClasses {
		p.sample("qcongest_request_errors_total", promLabels("class", class, "family", "4xx"), float64(snap.Requests[class].Errors4x))
		p.sample("qcongest_request_errors_total", promLabels("class", class, "family", "5xx"), float64(snap.Requests[class].Errors5x))
	}
	p.family("qcongest_requests_in_flight", "gauge", "Requests currently executing, by class.")
	for _, class := range allClasses {
		p.sample("qcongest_requests_in_flight", promLabels("class", class), float64(snap.Requests[class].InFlight))
	}

	// The native histograms: cumulative power-of-two buckets straight
	// from the lock-free ledger, le in seconds. Bucket i of the ledger
	// counts [2^i, 2^(i+1)) µs, so its cumulative upper bound is
	// 2^(i+1) µs; the top bucket absorbs everything beyond the range,
	// making +Inf equal to the running total by construction.
	p.family("qcongest_request_duration_seconds", "histogram", "Request latency by class.")
	for _, class := range allClasses {
		c := s.metrics.class(class)
		var cum int64
		for i := 0; i < latencyBuckets; i++ {
			cum += c.hist[i].Load()
			le := strconv.FormatFloat(float64(uint64(1)<<uint(i+1))/1e6, 'g', -1, 64)
			p.sample("qcongest_request_duration_seconds_bucket", promLabels("class", class, "le", le), float64(cum))
		}
		p.sample("qcongest_request_duration_seconds_bucket", promLabels("class", class, "le", "+Inf"), float64(cum))
		p.sample("qcongest_request_duration_seconds_sum", promLabels("class", class), float64(c.sumUs.Load())/1e6)
		p.sample("qcongest_request_duration_seconds_count", promLabels("class", class), float64(cum))
	}

	if len(snap.RateLimits) > 0 {
		keys := make([]string, 0, len(snap.RateLimits))
		for key := range snap.RateLimits {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		p.family("qcongest_key_requests_total", "counter", "Per-API-key admission outcomes.")
		for _, key := range keys {
			k := snap.RateLimits[key]
			p.sample("qcongest_key_requests_total", promLabels("key", key, "result", "allowed"), float64(k.Allowed))
			p.sample("qcongest_key_requests_total", promLabels("key", key, "result", "limited"), float64(k.Limited))
		}
		p.family("qcongest_key_graphs", "gauge", "Graphs created per API key (the quota ledger).")
		for _, key := range keys {
			p.sample("qcongest_key_graphs", promLabels("key", key), float64(snap.RateLimits[key].Graphs))
		}
	}

	if st := snap.Store; st != nil {
		p.family("qcongest_store_graphs", "gauge", "Graphs resident in the durable store.")
		p.sample("qcongest_store_graphs", "", float64(st.Graphs))
		p.family("qcongest_store_appends_total", "counter", "Durable graph commits since boot.")
		p.sample("qcongest_store_appends_total", "", float64(st.Appends))
		p.family("qcongest_store_touches_total", "counter", "Recorded query-recency hints since boot.")
		p.sample("qcongest_store_touches_total", "", float64(st.Touches))
		p.family("qcongest_store_snapshots_total", "counter", "Log-to-snapshot folds since boot.")
		p.sample("qcongest_store_snapshots_total", "", float64(st.Snapshots))
		p.family("qcongest_store_wal_bytes", "gauge", "Active append-only log size.")
		p.sample("qcongest_store_wal_bytes", "", float64(st.WALBytes))
		p.family("qcongest_store_snapshot_bytes", "gauge", "Latest snapshot size.")
		p.sample("qcongest_store_snapshot_bytes", "", float64(st.SnapshotBytes))
		p.family("qcongest_store_recovered_graphs", "gauge", "Graphs replayed at boot.")
		p.sample("qcongest_store_recovered_graphs", "", float64(st.RecoveredGraphs))
		p.family("qcongest_store_quarantined_records", "gauge", "Boot-time digest/checksum verification casualties.")
		p.sample("qcongest_store_quarantined_records", "", float64(st.QuarantinedRecords))
		p.family("qcongest_store_replay_seconds", "gauge", "Boot-time recovery duration.")
		p.sample("qcongest_store_replay_seconds", "", st.ReplayMs/1000)
		p.family("qcongest_store_warmup_target", "gauge", "Graphs the warm-start pass will pre-warm.")
		p.sample("qcongest_store_warmup_target", "", float64(st.WarmupTarget))
		p.family("qcongest_store_warmup_done", "gauge", "Graphs pre-warmed so far.")
		p.sample("qcongest_store_warmup_done", "", float64(st.WarmupDone))
		p.family("qcongest_store_warm_start_hits_total", "counter", "Warm reads served against pre-warmed graphs.")
		p.sample("qcongest_store_warm_start_hits_total", "", float64(st.WarmStartHits))
	}

	if rp := snap.Replication; rp != nil {
		p.family("qcongest_replication_follower", "gauge", "1 when this node is a read-only follower, 0 for a leader.")
		follower := 0.0
		if rp.Role == "follower" {
			follower = 1
		}
		p.sample("qcongest_replication_follower", "", follower)
		p.family("qcongest_replication_seq", "gauge", "This node's replication position (leader head, or follower catch-up cursor).")
		p.sample("qcongest_replication_seq", "", float64(rp.Seq))
		if rp.Role == "follower" {
			p.family("qcongest_replication_leader_seq", "gauge", "The leader's last reported head sequence.")
			p.sample("qcongest_replication_leader_seq", "", float64(rp.LeaderSeq))
			p.family("qcongest_replication_lag_seq", "gauge", "Sequence steps this follower trails its leader by.")
			p.sample("qcongest_replication_lag_seq", "", float64(rp.SeqDelta))
			p.family("qcongest_replication_applied_total", "counter", "Graphs applied from the replication stream since boot.")
			p.sample("qcongest_replication_applied_total", "", float64(rp.AppliedGraphs))
			p.family("qcongest_replication_skipped_total", "counter", "Stream records skipped as duplicates or non-graph kinds.")
			p.sample("qcongest_replication_skipped_total", "", float64(rp.SkippedRecords))
			p.family("qcongest_replication_rejected_total", "counter", "Stream records refused by CRC, digest, or sequence verification.")
			p.sample("qcongest_replication_rejected_total", "", float64(rp.RejectedRecords))
			p.family("qcongest_replication_stream_errors_total", "counter", "Failed catch-up rounds (transport, non-200, torn stream).")
			p.sample("qcongest_replication_stream_errors_total", "", float64(rp.StreamErrors))
		}
	}

	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(p.Bytes())
}
