package svc

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Request classes for metrics and admission. Every routed endpoint
// belongs to exactly one class; /healthz and /metrics are unmetered.
const (
	classUpload    = "upload"    // POST /v1/graphs
	classQuery     = "query"     // graph listings, info, exact metrics
	classSketch    = "sketch"    // POST /v1/graphs/{digest}/sketch
	classBatch     = "batch"     // POST /v1/batch
	classReplicate = "replicate" // GET /v1/replicate (follower catch-up)
	classControl   = "control"   // POST /v1/promote, /v1/demote (role transitions)
)

var allClasses = []string{classUpload, classQuery, classSketch, classBatch, classReplicate, classControl}

// latencyBuckets is the histogram resolution: bucket i counts requests
// with latency in [2^i, 2^(i+1)) microseconds, so the range spans 1 µs
// to ~17 minutes. Percentiles are reported as the upper bound of the
// bucket containing the quantile — a ≤2× overestimate, stable and
// allocation-free under concurrent load.
const latencyBuckets = 30

// classMetrics is the lock-free ledger of one request class. sumUs
// accumulates total observed latency so the Prometheus histogram
// (promtext.go) can emit a native _sum alongside the buckets.
type classMetrics struct {
	count    atomic.Int64
	err4xx   atomic.Int64
	err5xx   atomic.Int64
	inFlight atomic.Int64
	sumUs    atomic.Int64
	hist     [latencyBuckets]atomic.Int64
}

func (c *classMetrics) observe(d time.Duration, status int) {
	c.count.Add(1)
	switch {
	case status >= 500:
		c.err5xx.Add(1)
	case status >= 400:
		c.err4xx.Add(1)
	}
	us := d.Microseconds()
	c.sumUs.Add(us)
	b := 0
	if us > 0 {
		b = bits.Len64(uint64(us)) - 1
	}
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	c.hist[b].Add(1)
}

// quantileMs returns the q-quantile (0 < q <= 1) of the recorded
// latencies in milliseconds, as the upper bound of the histogram bucket
// the quantile falls in (0 when nothing was recorded).
func (c *classMetrics) quantileMs(q float64) float64 {
	var counts [latencyBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = c.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	// The q-quantile of total ordered samples is the one at ceiling
	// rank ⌈q·total⌉: p50 over 3 samples is the 2nd, p99 over 10 the
	// 10th. Truncating here (the pre-fix bug) selected the sample one
	// rank early whenever q·total was fractional, under-reading p99 at
	// low counts — pinned by TestQuantileCeilingRank.
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen int64
	for i, n := range counts {
		seen += n
		if seen >= target {
			upperUs := uint64(1) << uint(i+1)
			return float64(upperUs) / 1000
		}
	}
	return float64(uint64(1)<<latencyBuckets) / 1000
}

// metrics aggregates per-class ledgers.
type metrics struct {
	byClass map[string]*classMetrics
}

func newMetrics() *metrics {
	m := &metrics{byClass: make(map[string]*classMetrics, len(allClasses))}
	for _, c := range allClasses {
		m.byClass[c] = &classMetrics{}
	}
	return m
}

func (m *metrics) class(name string) *classMetrics { return m.byClass[name] }

// snapshot assembles the /metrics payload.
func (s *Server) snapshot() MetricsSnapshot {
	cs := s.cache.Stats()
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Graphs:        s.reg.len(),
		Cache: CacheMetrics{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Waits:     cs.Waits,
			Evictions: cs.Evictions,
			Size:      cs.Size,
		},
		BuildSlotsInUse: s.build.inUse(),
		QuerySlotsInUse: s.query.inUse(),
		Requests:        make(map[string]RequestMetrics, len(allClasses)),
	}
	if lookups := cs.Hits + cs.Misses + cs.Waits; lookups > 0 {
		// Waits join another caller's build, so they count as served-
		// from-flight rather than as builds.
		snap.Cache.HitRate = float64(cs.Hits+cs.Waits) / float64(lookups)
	}
	for _, name := range allClasses {
		c := s.metrics.class(name)
		snap.Requests[name] = RequestMetrics{
			Count:    c.count.Load(),
			Errors4x: c.err4xx.Load(),
			Errors5x: c.err5xx.Load(),
			InFlight: c.inFlight.Load(),
			P50Ms:    c.quantileMs(0.50),
			P99Ms:    c.quantileMs(0.99),
		}
	}
	if s.limiter != nil {
		snap.RateLimits = s.limiter.stats()
	}
	snap.Replication = s.replicationStatus()
	if s.store != nil {
		ss := s.store.Stats()
		snap.Store = &StoreMetrics{
			Graphs:             ss.Graphs,
			Appends:            ss.Appends,
			Touches:            ss.Touches,
			Snapshots:          ss.Snapshots,
			WALBytes:           ss.WALBytes,
			SnapshotBytes:      ss.SnapshotBytes,
			RecoveredGraphs:    s.recovery.SnapshotGraphs + s.recovery.LogGraphs,
			QuarantinedRecords: s.recovery.Quarantined,
			TornTailTruncated:  s.recovery.TornTail,
			ReplayMs:           float64(s.recovery.Replay.Microseconds()) / 1000,
			WarmupTarget:       s.warmTarget.Load(),
			WarmupDone:         s.warmDone.Load(),
			WarmStartHits:      s.warmHits.Load(),
			LastSnapshotError:  ss.LastSnapshotError,
		}
	}
	return snap
}
