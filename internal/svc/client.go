package svc

// Client is the typed Go client of the qcongestd API, used by
// cmd/qload, examples/service, and the e2e suite. It is a thin wrapper
// over net/http: every method is one request, safe for concurrent use.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"qcongest/internal/graph"
)

// Client talks to one qcongestd daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// APIKey, when set, is sent as X-API-Key on every request so the
	// daemon's per-key rate limits and graph quotas attribute traffic
	// to this caller instead of the shared "anonymous" bucket.
	APIKey string
	// RequireRequestID makes every call fail if the daemon does not
	// echo an X-Request-Id response header. Load drivers set it to turn
	// the observability contract into a hard assertion.
	RequireRequestID bool
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// StatusError is the typed error for every non-2xx response.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's ErrorResponse.Error body.
	Message string
	// RequestID is the daemon's X-Request-Id for the failed call, for
	// correlating client-side failures with the daemon's access log.
	RequestID string
	// RetryAfter is the Retry-After hint in seconds on 429 responses,
	// 0 when absent.
	RetryAfter int
}

// Error formats the status and server message.
func (e *StatusError) Error() string {
	return fmt.Sprintf("svc: server answered %d: %s", e.Code, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do runs one JSON request and decodes the JSON response into out.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	ct := ""
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("svc: encoding request: %w", err)
		}
		body, ct = bytes.NewReader(raw), "application/json"
	}
	return c.send(method, path, body, ct, out)
}

// send runs one request with an arbitrary body and decodes the JSON
// response into out — the transport half of do, shared with the raw
// codec-negotiated calls.
func (c *Client) send(method, path string, body io.Reader, contentType string, out any) error {
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("svc: building request: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("svc: %s %s: %w", method, path, err)
	}
	// Drain to EOF before closing (Encode's trailing newline is never
	// read by Decode) so the transport can reuse the connection.
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if c.RequireRequestID && resp.Header.Get("X-Request-Id") == "" {
		return fmt.Errorf("svc: %s %s: daemon sent no X-Request-Id (status %d)", method, path, resp.StatusCode)
	}
	if resp.StatusCode/100 != 2 {
		var er ErrorResponse
		msg := "(undecodable error body)"
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return &StatusError{
			Code:       resp.StatusCode,
			Message:    msg,
			RequestID:  resp.Header.Get("X-Request-Id"),
			RetryAfter: retry,
		}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("svc: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Upload registers g with the daemon via the JSON-wrapped edge-list
// form and returns its identity. Uploading an already registered graph
// succeeds with Created == false.
func (c *Client) Upload(g *graph.Graph) (UploadResponse, error) {
	var out UploadResponse
	err := c.do(http.MethodPost, "/v1/graphs", UploadRequest{EdgeList: graph.FormatEdgeList(g)}, &out)
	return out, err
}

// UploadWire registers g via a raw codec-negotiated upload: the request
// body is the graph itself (binary codec when binary is true, text edge
// list otherwise) with no JSON wrapper — the daemon streams it straight
// into the parser.
func (c *Client) UploadWire(g *graph.Graph, binary bool) (UploadResponse, error) {
	if binary {
		return c.UploadRaw(graph.FormatBinary(g), ctBinaryGraph)
	}
	return c.UploadRaw(graph.FormatEdgeList(g), ctEdgeList)
}

// UploadRaw posts an already-encoded graph body under the given
// Content-Type ("application/x-qcongest-graph" or
// "application/x-qcongest-edgelist"). Load drivers use it to replay one
// encode over many requests.
func (c *Client) UploadRaw(body []byte, contentType string) (UploadResponse, error) {
	var out UploadResponse
	err := c.send(http.MethodPost, "/v1/graphs", bytes.NewReader(body), contentType, &out)
	return out, err
}

// FetchGraph downloads a registered graph's body in the requested wire
// codec (Accept-negotiated) and decodes it. The decoded graph carries
// the digest it was addressed by — the round trip is exact, insertion
// order included.
func (c *Client) FetchGraph(digest string, binary bool) (*graph.Graph, error) {
	format := "edgelist"
	if binary {
		format = "binary"
	}
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/v1/graphs/"+url.PathEscape(digest)+"?format="+format, nil)
	if err != nil {
		return nil, fmt.Errorf("svc: building request: %w", err)
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("svc: fetching graph %s: %w", digest, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var er ErrorResponse
		msg := "(undecodable error body)"
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, &StatusError{Code: resp.StatusCode, Message: msg, RequestID: resp.Header.Get("X-Request-Id")}
	}
	if binary {
		return graph.DecodeBinary(resp.Body, 0, 0)
	}
	return graph.DecodeEdgeList(resp.Body, 0, 0)
}

// Generate asks the daemon to generate and register a workload graph
// server-side.
func (c *Client) Generate(spec GenSpec) (UploadResponse, error) {
	var out UploadResponse
	err := c.do(http.MethodPost, "/v1/graphs", UploadRequest{Gen: &spec}, &out)
	return out, err
}

// Graphs lists every registered graph.
func (c *Client) Graphs() ([]GraphInfo, error) {
	var out GraphListResponse
	err := c.do(http.MethodGet, "/v1/graphs", nil, &out)
	return out.Graphs, err
}

// GraphInfo fetches one registered graph's identity.
func (c *Client) GraphInfo(digest string) (GraphInfo, error) {
	var out GraphInfo
	err := c.do(http.MethodGet, "/v1/graphs/"+url.PathEscape(digest), nil, &out)
	return out, err
}

// Diameter returns the exact weighted diameter of the registered graph.
func (c *Client) Diameter(digest string) (int64, error) {
	var out MetricResponse
	err := c.do(http.MethodGet, "/v1/graphs/"+url.PathEscape(digest)+"/diameter", nil, &out)
	return out.Value, err
}

// Radius returns the exact weighted radius of the registered graph.
func (c *Client) Radius(digest string) (int64, error) {
	var out MetricResponse
	err := c.do(http.MethodGet, "/v1/graphs/"+url.PathEscape(digest)+"/radius", nil, &out)
	return out.Value, err
}

// Eccentricity returns the exact weighted eccentricity of vertex v.
func (c *Client) Eccentricity(digest string, v int) (int64, error) {
	var out MetricResponse
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/graphs/%s/eccentricity?v=%d", url.PathEscape(digest), v), nil, &out)
	return out.Value, err
}

// Sketch builds (or serves from cache) the Lemma 3.2 skeleton for the
// request's parameter tuple and evaluates approximate eccentricities.
func (c *Client) Sketch(digest string, req SketchRequest) (SketchResponse, error) {
	var out SketchResponse
	err := c.do(http.MethodPost, "/v1/graphs/"+url.PathEscape(digest)+"/sketch", req, &out)
	return out, err
}

// Batch runs the classical exact APSP baseline over the named graphs
// as one congest.RunBatch on the daemon.
func (c *Client) Batch(req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(http.MethodPost, "/v1/batch", req, &out)
	return out, err
}

// Health fetches /healthz. A draining daemon answers with a
// *StatusError of code 503 and a decodable body; this method decodes
// the body for 2xx only.
func (c *Client) Health() (HealthResponse, error) {
	var out HealthResponse
	err := c.do(http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Metrics fetches the /metrics snapshot.
func (c *Client) Metrics() (MetricsSnapshot, error) {
	var out MetricsSnapshot
	err := c.do(http.MethodGet, "/metrics", nil, &out)
	return out, err
}
