package svc

// Durability wiring: Open boots a Server over a crash-safe data dir,
// replaying the store into the registry and pre-warming the hottest
// recovered graphs. The recovery ordering is deliberate —
//
//  1. store.Open replays manifest → snapshot → log, digest-verifying
//     every graph (quarantining mismatches) and truncating torn tails;
//  2. every recovered graph is registered before the listener is ever
//     handed the Server, so a client can never observe a half-replayed
//     registry;
//  3. warm-start runs in the background after that: correctness never
//     waits on warmth, cold reads against a recovering daemon are
//     merely first-touch builds.
//
// Every numeric answer after a reboot is byte-identical to the answers
// before it: the digest names the graph, and the API.md determinism
// contract (same digest + params ⇒ same numerators) does the rest.

import (
	"context"
	"fmt"
	"sort"

	"qcongest/internal/dist"
	"qcongest/internal/store"
)

// Open is New plus durability: when cfg.DataDir is set, it opens (or
// creates) the crash-safe graph store there, replays every committed
// graph into the registry, and starts the warm-start pass for the
// cfg.WarmStart most-recently-queried graphs. With an empty DataDir it
// is exactly New. The caller owns Close.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := newServer(cfg)
	if cfg.DataDir == "" {
		if cfg.FollowURL != "" {
			// In-memory follower: graphs apply to the registry only
			// (digest-verified but not persisted locally); a restart
			// re-tails the leader from zero.
			if err := s.startFollower(); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	st, recovered, stats, err := store.Open(store.Options{
		Dir:           cfg.DataDir,
		SnapshotEvery: cfg.SnapshotEvery,
		Codec:         cfg.StoreCodec,
		MaxNodes:      cfg.MaxNodes,
		MaxEdges:      cfg.MaxEdges,
	})
	if err != nil {
		return nil, err
	}
	if len(recovered) > cfg.MaxGraphs {
		st.Close()
		return nil, fmt.Errorf("svc: data dir holds %d graphs, above MaxGraphs %d — raise the registry capacity", len(recovered), cfg.MaxGraphs)
	}
	s.store = st
	s.recovery = stats
	s.epoch.Store(st.Epoch())
	type candidate struct {
		e         *entry
		lastQuery uint64
	}
	var warm []candidate
	for _, rg := range recovered {
		e, _, err := s.reg.put(rg.Graph)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("svc: replaying recovered graph %016x: %w", rg.Digest, err)
		}
		close(e.durable) // recovered from disk: persistence is settled
		e.warmSketch = rg.Sketch
		if rg.LastQuery > 0 {
			warm = append(warm, candidate{e, rg.LastQuery})
		}
	}
	if cfg.WarmStart > 0 && len(warm) > 0 {
		// Rank by recency; LastQuery is the store's logical query clock.
		sort.Slice(warm, func(i, j int) bool { return warm[i].lastQuery > warm[j].lastQuery })
		if len(warm) > cfg.WarmStart {
			warm = warm[:cfg.WarmStart]
		}
		entries := make([]*entry, len(warm))
		for i, c := range warm {
			entries[i] = c.e
		}
		s.warmTarget.Store(int64(len(entries)))
		s.warmStop = make(chan struct{})
		s.warmWG.Add(1)
		go func() {
			defer s.warmWG.Done()
			s.warmup(entries)
		}()
	}
	if cfg.FollowURL != "" {
		// Durable follower: resume the catch-up cursor from the local
		// sequence clock (every recovered graph sits at its original
		// leader sequence, so the clock IS the replication position).
		if err := s.startFollower(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// warmup sequentially rebuilds the exact-metric memo (and, when a
// sketch hint was recovered, the cached skeleton) of each entry,
// hottest first. It runs outside the admission gates: boot-time warming
// competes with early cold traffic for CPU, not for admission slots, so
// it can never 503 a real client.
func (s *Server) warmup(entries []*entry) {
	for _, e := range entries {
		select {
		case <-s.warmStop:
			return // Close was called; stop burning CPU for a dead server
		default:
		}
		s.warmOne(e)
		s.warmDone.Add(1)
	}
}

// warmOne warms a single entry, containing any panic to that entry:
// warming is an optimization replaying persisted hints, and a daemon
// must never crash-loop at boot because a durable hint turned out to
// panic the builder (the request path survives the same panic through
// net/http's recover).
func (s *Server) warmOne(e *entry) {
	defer func() {
		if p := recover(); p != nil {
			return // this graph stays cold; the next one still warms
		}
		e.prewarmed.Store(true)
	}()
	e.metrics()
	if sk := e.warmSketch; sk != nil {
		// Hints are shape-validated by the store at replay and recorded
		// only after a successful build (handleSketch), so this should
		// not panic; the recover above is the backstop, not the plan.
		// EpsT resolves the way a request would, so the warmed cache
		// line matches a repeat request byte for byte.
		eps := dist.Eps{T: sk.EpsT}
		if eps.T == 0 {
			eps = dist.EpsForN(e.g.N())
		}
		// Warm starts build on the daemon's configured default kernel —
		// the mode a hint-less repeat request resolves to, so the warmed
		// cache line is the one such requests hit.
		s.cache.SkeletonKernel(e.g, sk.Sources, sk.L, sk.K, eps, s.cfg.SketchKernel)
	}
}

// persistGraph durably commits a freshly created registry entry,
// rolling the registration back when the store refuses — an upload is
// never acknowledged unless it will survive a crash. It always settles
// e.durable, releasing any concurrent duplicate upload blocked in
// awaitDurable.
func (s *Server) persistGraph(e *entry, gen []byte) (err error) {
	defer func() {
		e.persistErr = err
		close(e.durable)
	}()
	if s.store == nil {
		return nil
	}
	if err := s.store.AppendGraph(e.g, gen); err != nil {
		s.reg.remove(e.digest)
		return err
	}
	return nil
}

// awaitDurable blocks until e's persistence is settled and reports its
// outcome. A duplicate upload that raced the creating request must not
// answer 2xx while the creator's fsync is still in flight (or after it
// was rolled back): the 2xx-is-a-durability-receipt contract of API.md
// holds for every acknowledgment, not just the first. The wait honors
// the request context so a stalled disk cannot pin build-gate slots
// under abandoned duplicate uploads.
func (s *Server) awaitDurable(ctx context.Context, e *entry) error {
	if s.store == nil {
		return nil
	}
	select {
	case <-e.durable:
		return e.persistErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// touch records query recency (and the sketch tuple, for sketch
// queries) as a warm-start hint. Free on in-memory servers. Followers
// never touch: a touch record consumes a local sequence number, and a
// follower clock running ahead of the leader's would make every
// subsequent replicated graph look stale (ApplyReplicated refuses
// records at or below the clock). Follower warmth comes from serving
// reads, not from recorded hints.
func (s *Server) touch(e *entry, sk *store.SketchParams) {
	if s.store != nil && s.repl.Load() == nil {
		s.store.Touch(e.digest, sk)
	}
}

// noteWarmHit counts a read served from pre-warmed state.
func (s *Server) noteWarmHit(e *entry) {
	if s.store != nil && e.prewarmed.Load() {
		s.warmHits.Add(1)
	}
}

// Recovery returns the boot-time recovery accounting (zero for
// in-memory servers); cmd/qcongestd logs it at startup.
func (s *Server) Recovery() store.RecoveryStats { return s.recovery }

// Close stops the follower loop and the warm-start pass, then
// snapshots and closes the durable store (a no-op for in-memory
// servers). cmd/qcongestd calls it after the HTTP listener drains, so
// the close-time snapshot is the SIGTERM path's final fold of the log.
// Waiting for the background goroutines matters beyond tidiness: Close
// releases the data-dir lock, and a successor process must not overlap
// with this one still building or applying.
func (s *Server) Close() error {
	// Hold roleMu so a concurrent promote/demote cannot swap in a fresh
	// follow loop between the cancel and the store close.
	s.roleMu.Lock()
	if rp := s.repl.Load(); rp != nil {
		// Stop tailing before the store closes under the apply path.
		rp.cancel()
		rp.wg.Wait()
	}
	s.roleMu.Unlock()
	if s.store == nil {
		return nil
	}
	if s.warmStop != nil {
		close(s.warmStop)
		s.warmWG.Wait()
		s.warmStop = nil
	}
	return s.store.Close()
}

// Crash is a test hook simulating SIGKILL: the store is dropped without
// flushing or snapshotting (see store.Crash). In-memory servers no-op.
func (s *Server) Crash() {
	if s.store != nil {
		s.store.Crash()
	}
}
