// End-to-end durability suite: the ISSUE 5 acceptance criterion — a
// daemon restarted over a populated data dir serves every previously
// committed graph with byte-identical digests and sketch numerators —
// plus the PR 4 error-surface gaps (restart during drain, double boot,
// read-only data dir) and the warm-start behavior, all over real HTTP.
package svc_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"qcongest/internal/svc"
)

// openPersistent boots a persistent Server over dir and serves it.
func openPersistent(t *testing.T, cfg svc.Config) (*svc.Server, *svc.Client) {
	t.Helper()
	s, err := svc.Open(cfg)
	if err != nil {
		t.Fatalf("svc.Open(%s): %v", cfg.DataDir, err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, svc.NewClient(ts.URL)
}

// TestServiceRestartServesCommitted is the acceptance walk: commit
// graphs (uploaded and generated), record every answer, SIGKILL the
// daemon, reboot over the same dir, and assert the full answer surface
// is byte-identical — then do it again through the graceful
// (snapshotting) shutdown path.
func TestServiceRestartServesCommitted(t *testing.T) {
	dir := t.TempDir()
	g := workload(t, 96)
	sketchReq := svc.SketchRequest{Sources: []int{3, 1, 4, 15}, L: 8, K: 3}

	s1, c1 := openPersistent(t, svc.Config{DataDir: dir})
	up, err := c1.Upload(g)
	if err != nil || !up.Created {
		t.Fatalf("upload: (%+v, %v)", up, err)
	}
	gen, err := c1.Generate(svc.GenSpec{Kind: "spineleaf", Spines: 2, Leaves: 3, Hosts: 2, Seed: 5})
	if err != nil || !gen.Created {
		t.Fatalf("generate: (%+v, %v)", gen, err)
	}
	wantDiam, err := c1.Diameter(up.Digest)
	if err != nil {
		t.Fatal(err)
	}
	wantSketch, err := c1.Sketch(up.Digest, sketchReq)
	if err != nil {
		t.Fatal(err)
	}
	wantGenDiam, err := c1.Diameter(gen.Digest)
	if err != nil {
		t.Fatal(err)
	}

	verify := func(t *testing.T, c *svc.Client, recovered int) {
		t.Helper()
		h, err := c.Health()
		if err != nil {
			t.Fatal(err)
		}
		if h.Store == nil || h.Store.RecoveredGraphs != recovered {
			t.Fatalf("healthz store section: %+v, want %d recovered", h.Store, recovered)
		}
		graphs, err := c.Graphs()
		if err != nil || len(graphs) != 2 {
			t.Fatalf("listing: (%v, %v), want both graphs", graphs, err)
		}
		// Re-registering answers the recovered entry, never a fresh one.
		reUp, err := c.Upload(g)
		if err != nil || reUp.Created || reUp.Digest != up.Digest {
			t.Fatalf("re-upload: (%+v, %v)", reUp, err)
		}
		if d, err := c.Diameter(up.Digest); err != nil || d != wantDiam {
			t.Fatalf("diameter (%d, %v) != %d across restart", d, err, wantDiam)
		}
		if d, err := c.Diameter(gen.Digest); err != nil || d != wantGenDiam {
			t.Fatalf("generated diameter (%d, %v) != %d across restart", d, err, wantGenDiam)
		}
		sk, err := c.Sketch(up.Digest, sketchReq)
		if err != nil {
			t.Fatal(err)
		}
		if sk.Den != wantSketch.Den || sk.EpsT != wantSketch.EpsT || len(sk.Eccentricities) != len(wantSketch.Eccentricities) {
			t.Fatalf("sketch envelope drifted: %+v != %+v", sk, wantSketch)
		}
		for i := range sk.Eccentricities {
			if sk.Eccentricities[i] != wantSketch.Eccentricities[i] {
				t.Fatalf("sketch numerator %d drifted: %+v != %+v", i, sk.Eccentricities[i], wantSketch.Eccentricities[i])
			}
		}
		m, err := c.Metrics()
		if err != nil || m.Store == nil {
			t.Fatalf("metrics store section missing: %v", err)
		}
		if m.Store.RecoveredGraphs != recovered || m.Store.QuarantinedRecords != 0 {
			t.Fatalf("metrics store section: %+v", m.Store)
		}
	}

	t.Run("after SIGKILL (log replay)", func(t *testing.T) {
		s1.Crash()
		s2, c2 := openPersistent(t, svc.Config{DataDir: dir})
		verify(t, c2, 2)
		if err := s2.Close(); err != nil {
			t.Fatalf("graceful close: %v", err)
		}
	})
	t.Run("after graceful close (snapshot replay)", func(t *testing.T) {
		_, c3 := openPersistent(t, svc.Config{DataDir: dir})
		verify(t, c3, 2)
	})
}

// TestServiceWarmStart closes a queried daemon gracefully, reboots with
// WarmStart, waits for the warm-up pass, and asserts a repeat of the
// recorded sketch tuple is a pure cache hit whose service is counted in
// the warm-start ledger.
func TestServiceWarmStart(t *testing.T) {
	dir := t.TempDir()
	sketchReq := svc.SketchRequest{Sources: []int{0, 2, 5}, L: 6, K: 2}

	s1, c1 := openPersistent(t, svc.Config{DataDir: dir})
	up, err := c1.Generate(svc.GenSpec{Kind: "lowdiameter", N: 64, AvgDeg: 4, MaxW: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Diameter(up.Digest); err != nil {
		t.Fatal(err)
	}
	want, err := c1.Sketch(up.Digest, sketchReq)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, c2 := openPersistent(t, svc.Config{DataDir: dir, WarmStart: 4})
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c2.Health()
		if err != nil {
			t.Fatal(err)
		}
		if h.Store != nil && h.Store.WarmupTarget == 1 && h.Store.WarmupDone == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm-up never completed: %+v", h.Store)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The warmed cache line must serve the recorded tuple as a hit.
	before := s2.Cache().Stats()
	if before.Misses != 1 {
		t.Fatalf("warm-up should have built exactly 1 skeleton, stats %+v", before)
	}
	got, err := c2.Sketch(up.Digest, sketchReq)
	if err != nil {
		t.Fatal(err)
	}
	after := s2.Cache().Stats()
	if after.Misses != before.Misses || after.Hits != before.Hits+1 {
		t.Fatalf("repeat of the warmed tuple was not a pure hit: %+v -> %+v", before, after)
	}
	if got.Den != want.Den || fmt.Sprint(got.Eccentricities) != fmt.Sprint(want.Eccentricities) {
		t.Fatalf("warmed sketch drifted: %+v != %+v", got, want)
	}
	// The exact-metric memo was pre-warmed too: a diameter read rides
	// the query gate and lands in the warm-start ledger.
	if _, err := c2.Diameter(up.Digest); err != nil {
		t.Fatal(err)
	}
	m, err := c2.Metrics()
	if err != nil || m.Store == nil {
		t.Fatal(err)
	}
	if m.Store.WarmStartHits < 2 {
		t.Fatalf("warm-start hits = %d, want >= 2 (sketch + diameter)", m.Store.WarmStartHits)
	}
}

// TestServiceRestartDuringDrain closes the server while uploads are in
// flight (the SIGTERM-while-snapshotting race) and asserts every upload
// that was acknowledged with a 2xx survives the reboot; uploads caught
// by the closing store fail their request rather than corrupting state.
func TestServiceRestartDuringDrain(t *testing.T) {
	dir := t.TempDir()
	s, c := openPersistent(t, svc.Config{DataDir: dir, BuildSlots: 4})

	const uploaders = 8
	var (
		mu    sync.Mutex
		acked []string
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < uploaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < 6; j++ {
				up, err := c.Generate(svc.GenSpec{Kind: "cycle", N: 10 + i*16 + j})
				if err != nil {
					continue // rejected by the drain: must not be acked
				}
				mu.Lock()
				acked = append(acked, up.Digest)
				mu.Unlock()
			}
		}(i)
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let some uploads land mid-close
	if err := s.Close(); err != nil {
		t.Fatalf("close during drain: %v", err)
	}
	wg.Wait()
	if len(acked) == 0 {
		t.Skip("close won the race before any upload was acknowledged")
	}

	_, c2 := openPersistent(t, svc.Config{DataDir: dir})
	graphs, err := c2.Graphs()
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(graphs))
	for _, gi := range graphs {
		have[gi.Digest] = true
	}
	for _, d := range acked {
		if !have[d] {
			t.Fatalf("acknowledged graph %s lost across the drain restart", d)
		}
	}
}

// TestServiceUploadRollbackWhenStoreRefuses drives the upload path
// against a store that can no longer commit (closed underneath the
// server, the deterministic stand-in for a disk failure) and asserts
// the contract around a failed durable append: the upload answers 5xx,
// the registration is rolled back, and a duplicate upload can never
// harvest a 2xx durability receipt from the failed attempt.
func TestServiceUploadRollbackWhenStoreRefuses(t *testing.T) {
	dir := t.TempDir()
	s, c := openPersistent(t, svc.Config{DataDir: dir})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	g := workload(t, 32)
	if _, err := c.Upload(g); err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("upload against a refusing store = %v, want 500", err)
	}
	// Rolled back: not listed, and a retry hits the created=true path
	// again (another 500), never a stale created=false 200.
	if graphs, err := c.Graphs(); err != nil || len(graphs) != 0 {
		t.Fatalf("rolled-back upload still listed: (%v, %v)", graphs, err)
	}
	if _, err := c.Upload(g); err == nil {
		t.Fatal("duplicate upload harvested an acknowledgment from a failed append")
	}
}

// TestServiceDoubleBoot asserts a second daemon over a live data dir
// fails with the lock error instead of corrupting the store.
func TestServiceDoubleBoot(t *testing.T) {
	dir := t.TempDir()
	s, _ := openPersistent(t, svc.Config{DataDir: dir})
	defer s.Close()
	_, err := svc.Open(svc.Config{DataDir: dir})
	if err == nil || !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("double boot error = %v", err)
	}
}

// TestServiceDataDirErrors asserts hostile data-dir shapes yield clean
// startup errors, never panics: a path that is a file, and a read-only
// directory.
func TestServiceDataDirErrors(t *testing.T) {
	t.Run("path is a file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "flat")
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Open(svc.Config{DataDir: path}); err == nil {
			t.Fatal("expected a startup error for a file data dir")
		}
	})
	t.Run("read-only dir", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ro")
		if err := os.Mkdir(dir, 0o500); err != nil {
			t.Fatal(err)
		}
		if probe := os.WriteFile(filepath.Join(dir, "probe"), nil, 0o644); probe == nil {
			t.Skip("running with CAP_DAC_OVERRIDE; read-only dir not enforceable")
		}
		_, err := svc.Open(svc.Config{DataDir: dir})
		if err == nil || !strings.Contains(err.Error(), "not writable") {
			t.Fatalf("read-only data dir error = %v", err)
		}
	})
}

// TestServiceInMemoryUnchanged pins the PR 4 behavior when no data dir
// is configured: Open == New, no store sections, Close is a no-op.
func TestServiceInMemoryUnchanged(t *testing.T) {
	s, err := svc.Open(svc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := svc.NewClient(ts.URL)
	if h, err := c.Health(); err != nil || h.Store != nil {
		t.Fatalf("in-memory healthz grew a store section: (%+v, %v)", h, err)
	}
	if m, err := c.Metrics(); err != nil || m.Store != nil {
		t.Fatalf("in-memory metrics grew a store section: (%+v, %v)", m, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("in-memory close: %v", err)
	}
}
