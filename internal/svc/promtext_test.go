// Strict machine-check of the Prometheus exposition view of /metrics:
// an in-repo text-format 0.0.4 parser validates every scrape line by
// line — TYPE/HELP discipline, label syntax, histogram bucket
// monotonicity and +Inf == _count — so a format regression fails CI
// even on runners without promtool.
package svc_test

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"qcongest/internal/svc"
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promFamily is one parsed metric family.
type promFamily struct {
	name    string
	typ     string
	help    string
	samples []promSample
}

// validMetricName and validLabelName are the exposition grammar.
func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// baseFamily strips histogram/summary sample suffixes.
func baseFamily(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

// parseLabels parses a {k="v",...} block with exposition escaping.
func parseLabels(t *testing.T, line string, s string) map[string]string {
	t.Helper()
	labels := map[string]string{}
	s = strings.TrimPrefix(s, "{")
	for s != "}" {
		eq := strings.Index(s, "=")
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			t.Fatalf("malformed label block in %q", line)
		}
		name := s[:eq]
		if !validMetricName(name) {
			t.Fatalf("bad label name %q in %q", name, line)
		}
		// Scan the quoted value honoring \" escapes.
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("bad escape \\%c in %q", rest[i+1], line)
				}
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i == len(rest) {
			t.Fatalf("unterminated label value in %q", line)
		}
		labels[name] = val.String()
		s = rest[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return labels
}

// parsePromText is the strict parser: it fails the test on any line it
// cannot account for, and returns families keyed by name.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	seen := map[string]bool{} // name + sorted label set, for duplicate detection
	var current string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !validMetricName(parts[0]) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			f := families[parts[0]]
			if f == nil {
				f = &promFamily{name: parts[0]}
				families[parts[0]] = f
			}
			f.help = parts[1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !validMetricName(parts[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[1])
			}
			f := families[parts[0]]
			if f == nil {
				f = &promFamily{name: parts[0]}
				families[parts[0]] = f
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, parts[0])
			}
			f.typ = parts[1]
			current = parts[0]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		// Sample line: name[{labels}] value
		name := line
		rest := ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validMetricName(name) {
			t.Fatalf("line %d: bad metric name in %q", ln+1, line)
		}
		labels := map[string]string{}
		if strings.HasPrefix(rest, "{") {
			end := strings.LastIndex(rest, "}")
			if end < 0 {
				t.Fatalf("line %d: unterminated label block: %q", ln+1, line)
			}
			labels = parseLabels(t, line, rest[:end+1])
			rest = rest[end+1:]
		}
		valStr := strings.TrimSpace(rest)
		if strings.Contains(valStr, " ") {
			// A trailing timestamp would appear here; this encoder never
			// emits one.
			t.Fatalf("line %d: unexpected extra fields: %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			t.Fatalf("line %d: unparsable value %q: %v", ln+1, valStr, err)
		}
		fam := baseFamily(name)
		f := families[fam]
		if f == nil || f.typ == "" {
			// Non-histogram families must match exactly.
			if f = families[name]; f == nil || f.typ == "" {
				t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, name)
			}
			fam = name
		}
		if fam != current && name != current && baseFamily(name) != current {
			t.Fatalf("line %d: sample %q outside its family block (current %q)", ln+1, name, current)
		}
		// Duplicate detection over the full identity.
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		id := name
		for _, k := range keys {
			id += fmt.Sprintf("|%s=%s", k, labels[k])
		}
		if seen[id] {
			t.Fatalf("line %d: duplicate sample %q", ln+1, id)
		}
		seen[id] = true
		f.samples = append(f.samples, promSample{name: name, labels: labels, value: val})
	}
	return families
}

// checkHistogram validates one histogram family: per label set, buckets
// are cumulative and monotone, le="+Inf" is present and equals _count,
// and _sum/_count exist.
func checkHistogram(t *testing.T, f *promFamily) {
	t.Helper()
	type series struct {
		buckets map[string]float64 // le → cumulative count
		sum     *float64
		count   *float64
	}
	byLabels := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		id := ""
		for _, k := range keys {
			id += fmt.Sprintf("|%s=%s", k, labels[k])
		}
		return id
	}
	for _, s := range f.samples {
		key := keyOf(s.labels)
		sr := byLabels[key]
		if sr == nil {
			sr = &series{buckets: map[string]float64{}}
			byLabels[key] = sr
		}
		v := s.value
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s: bucket sample without le label", f.name)
			}
			sr.buckets[le] = v
		case strings.HasSuffix(s.name, "_sum"):
			sr.sum = &v
		case strings.HasSuffix(s.name, "_count"):
			sr.count = &v
		default:
			t.Fatalf("%s: stray sample %q in histogram family", f.name, s.name)
		}
	}
	for key, sr := range byLabels {
		if sr.sum == nil || sr.count == nil {
			t.Fatalf("%s{%s}: histogram without _sum/_count", f.name, key)
		}
		inf, ok := sr.buckets["+Inf"]
		if !ok {
			t.Fatalf("%s{%s}: histogram without le=\"+Inf\" bucket", f.name, key)
		}
		if inf != *sr.count {
			t.Fatalf("%s{%s}: le=\"+Inf\" bucket %v != _count %v", f.name, key, inf, *sr.count)
		}
		// Monotone in increasing le.
		type bound struct {
			le  float64
			cum float64
		}
		var bounds []bound
		for le, cum := range sr.buckets {
			if le == "+Inf" {
				bounds = append(bounds, bound{math.Inf(1), cum})
				continue
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s{%s}: unparsable le %q", f.name, key, le)
			}
			bounds = append(bounds, bound{v, cum})
		}
		sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })
		for i := 1; i < len(bounds); i++ {
			if bounds[i].cum < bounds[i-1].cum {
				t.Fatalf("%s{%s}: bucket counts not cumulative at le=%v: %v < %v",
					f.name, key, bounds[i].le, bounds[i].cum, bounds[i-1].cum)
			}
		}
	}
}

func scrape(t *testing.T, base, path string, header map[string]string) (*http.Response, string) {
	t.Helper()
	resp := get(t, base+path, header)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsPrometheusExposition(t *testing.T) {
	base, client := newRawService(t, svc.Config{RatePerKey: 0.001, RateBurst: 4})

	// Drive traffic so every family has real numbers: an upload, warm
	// and cold reads, a sketch, an error, and a rate-limited key.
	client.APIKey = "scrape-key"
	up, err := client.Upload(workload(t, 60))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Diameter(up.Digest); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Sketch(up.Digest, svc.SketchRequest{Sources: []int{0, 1, 2}, L: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	get(t, base+"/v1/graphs/0123456789abcdef", nil) // a 404 for the error ledger
	for i := 0; i < 6; i++ {                        // exhaust scrape-key's burst of 4
		resp := get(t, base+"/v1/graphs", map[string]string{"X-API-Key": "limited-key"})
		io.Copy(io.Discard, resp.Body)
	}

	resp, body := scrape(t, base, "/metrics?format=prometheus", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("scrape Content-Type = %q, want text/plain version=0.0.4", ct)
	}

	families := parsePromText(t, body)

	// The families the dashboards are built on must all be present.
	for _, want := range []struct {
		name, typ string
	}{
		{"qcongest_uptime_seconds", "gauge"},
		{"qcongest_registry_graphs", "gauge"},
		{"qcongest_cache_hits_total", "counter"},
		{"qcongest_cache_misses_total", "counter"},
		{"qcongest_cache_entries", "gauge"},
		{"qcongest_gate_slots_in_use", "gauge"},
		{"qcongest_requests_total", "counter"},
		{"qcongest_request_errors_total", "counter"},
		{"qcongest_requests_in_flight", "gauge"},
		{"qcongest_request_duration_seconds", "histogram"},
		{"qcongest_key_requests_total", "counter"},
		{"qcongest_key_graphs", "gauge"},
	} {
		f := families[want.name]
		if f == nil {
			t.Fatalf("family %s missing from scrape", want.name)
		}
		if f.typ != want.typ {
			t.Fatalf("family %s has type %q, want %q", want.name, f.typ, want.typ)
		}
		if f.help == "" {
			t.Fatalf("family %s has no HELP", want.name)
		}
		if len(f.samples) == 0 {
			t.Fatalf("family %s has no samples", want.name)
		}
	}

	checkHistogram(t, families["qcongest_request_duration_seconds"])

	// Counters never go negative; the driven traffic must be visible.
	for _, f := range families {
		if f.typ != "counter" {
			continue
		}
		for _, s := range f.samples {
			if s.value < 0 {
				t.Fatalf("counter %s went negative: %v", s.name, s.value)
			}
		}
	}
	var uploads, limited float64
	for _, s := range families["qcongest_requests_total"].samples {
		if s.labels["class"] == "upload" {
			uploads = s.value
		}
	}
	if uploads < 1 {
		t.Fatalf("qcongest_requests_total{class=\"upload\"} = %v after an upload", uploads)
	}
	for _, s := range families["qcongest_key_requests_total"].samples {
		if s.labels["key"] == "limited-key" && s.labels["result"] == "limited" {
			limited = s.value
		}
	}
	if limited < 1 {
		t.Fatalf("qcongest_key_requests_total{key=\"limited-key\",result=\"limited\"} = %v after overdriving the bucket", limited)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	base, _ := newRawService(t, svc.Config{})

	// Default stays JSON — the PR 4 client contract.
	resp, body := scrape(t, base, "/metrics", nil)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default /metrics Content-Type = %q, want JSON", ct)
	}
	if !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Fatalf("default /metrics body is not JSON: %.60q", body)
	}

	// A Prometheus scraper's Accept header selects the exposition.
	resp, body = scrape(t, base, "/metrics", map[string]string{
		"Accept": "text/plain;version=0.0.4;q=0.5,*/*;q=0.1",
	})
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("Accept text/plain Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	parsePromText(t, body)

	// ?format=json overrides even a text Accept header.
	resp, _ = scrape(t, base, "/metrics?format=json", map[string]string{"Accept": "text/plain"})
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("format=json Content-Type = %q, want JSON", resp.Header.Get("Content-Type"))
	}

	// ?format=prometheus works without any Accept header (curl-style).
	resp, body = scrape(t, base, "/metrics?format=prometheus", nil)
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("format=prometheus Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	parsePromText(t, body)
}

func TestStatusPage(t *testing.T) {
	base, client := newRawService(t, svc.Config{RatePerKey: 100, RateBurst: 100})
	client.APIKey = "ops"
	if _, err := client.Upload(workload(t, 40)); err != nil {
		t.Fatal(err)
	}

	resp, body := scrape(t, base, "/status", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status: %d", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("/status Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"qcongestd", "upload", "query", "sketch", "batch", "ops", "hit rate"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/status page missing %q", want)
		}
	}

	// Non-GET is rejected with the JSON error surface.
	req, _ := http.NewRequest(http.MethodPost, base+"/status", nil)
	postResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /status: %d, want 405", postResp.StatusCode)
	}
}
