package svc

import (
	"context"
	"errors"
	"sync/atomic"
)

// errSaturated is returned by gate.enter when the gate's slots are all
// busy and its waiting queue is full; handlers map it to 503 so load
// generators back off instead of piling goroutines onto the daemon.
var errSaturated = errors.New("svc: admission gate saturated")

// gate is a bounded-worker admission semaphore: at most `slots` callers
// execute concurrently, at most `queue` more wait for a slot, and every
// caller beyond that is rejected immediately. Two instances partition
// the daemon's work (svc.go: the build gate for cold work, the query
// gate for warm reads) so one class cannot starve the other.
type gate struct {
	slots   chan struct{}
	queue   int64
	waiting atomic.Int64
}

func newGate(slots, queue int) *gate {
	g := &gate{slots: make(chan struct{}, slots), queue: int64(queue)}
	for i := 0; i < slots; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// enter acquires a slot, waiting in the bounded queue if necessary. It
// returns errSaturated when the queue is full, or the context error if
// the caller went away while waiting. Callers must pair a nil return
// with leave.
func (g *gate) enter(ctx context.Context) error {
	select {
	case <-g.slots:
		return nil
	default:
	}
	if g.waiting.Add(1) > g.queue {
		g.waiting.Add(-1)
		return errSaturated
	}
	defer g.waiting.Add(-1)
	select {
	case <-g.slots:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) leave() { g.slots <- struct{}{} }

// inUse reports how many slots are currently held (for /metrics).
func (g *gate) inUse() int { return cap(g.slots) - len(g.slots) }
