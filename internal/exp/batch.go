package exp

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"qcongest/internal/baseline"
	"qcongest/internal/congest"
	"qcongest/internal/core"
	"qcongest/internal/graph"
)

// concurrently evaluates f(i) for every i in [0, k) on the shared
// congest.ForEach pool and returns the lowest-index error among the
// points that ran. Each f(i) must write its result into its own slot of
// a pre-sized output slice, so the assembled output is identical to a
// sequential loop: per-point work is seeded per index, never from
// shared mutable state. Like the sequential drivers it replaced, the
// sweep fails fast: once any point errors, unstarted points are
// skipped.
func concurrently(k int, f func(i int) error) error {
	errs := make([]error, k)
	var failed atomic.Bool
	congest.ForEach(k, 0, func(i int) {
		if failed.Load() {
			return
		}
		if err := f(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SpineLeafConfig describes one two-tier datacenter fabric scale for the
// E14 sweep (see graph.SpineLeaf for the node layout).
type SpineLeafConfig struct {
	// Spines, Leaves, Hosts parameterize graph.SpineLeaf: spine switch
	// count, leaf switch count, and hosts per leaf.
	Spines, Leaves, Hosts int
}

// SpineLeafPoint is one E14 measurement: quantum vs classical rounds on a
// randomly weighted spine-leaf fabric.
type SpineLeafPoint struct {
	SpineLeafConfig
	N               int     // total node count of the fabric
	D               int     // measured unweighted diameter (≤ 4 by construction)
	QuantumRounds   int64   // measured Theorem 1.1 rounds
	ClassicalRounds int64   // measured APSP baseline rounds
	TheoremQ        float64 // n^0.9 · D^0.3 (uncapped)
}

// SpineLeafSweep runs E14: for each fabric configuration, generate the
// spine-leaf topology with random weights in [1, maxW], then measure the
// Theorem 1.1 quantum algorithm against the classical exact APSP
// baseline. The constant unweighted diameter (≤ 4) of the family makes
// it the extreme low-D regime of the theorem. Classical runs go through
// congest.RunBatch with `parallelism` simulations in flight and `workers`
// engine shards each; quantum points run concurrently per configuration.
func SpineLeafSweep(cfgs []SpineLeafConfig, maxW int64, seed int64, workers, parallelism int) ([]SpineLeafPoint, error) {
	if maxW < 1 {
		maxW = 1
	}
	pts := make([]SpineLeafPoint, len(cfgs))
	gs := make([]*graph.Graph, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.Spines < 1 || cfg.Leaves < 1 || cfg.Hosts < 0 {
			return nil, fmt.Errorf("exp: invalid spine-leaf config %+v", cfg)
		}
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		gs[i] = graph.RandomWeights(graph.SpineLeaf(cfg.Spines, cfg.Leaves, cfg.Hosts, 1, 1), maxW, rng)
		pts[i] = SpineLeafPoint{SpineLeafConfig: cfg, N: gs[i].N()}
	}
	_, _, stats, err := baseline.ClassicalDiameterBatch(gs, congest.Options{Workers: workers}, parallelism)
	if err != nil {
		return nil, err
	}
	err = concurrently(len(cfgs), func(i int) error {
		res, aerr := core.Approximate(gs[i], core.DiameterMode, core.Options{Seed: seed + int64(i)})
		if aerr != nil {
			return fmt.Errorf("spine-leaf %+v: %w", cfgs[i], aerr)
		}
		pts[i].D = int(res.Params.D)
		pts[i].QuantumRounds = res.Rounds
		pts[i].ClassicalRounds = int64(stats[i].Rounds)
		pts[i].TheoremQ = math.Pow(float64(pts[i].N), 0.9) * math.Pow(float64(res.Params.D), 0.3)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}
