package exp

import (
	"fmt"
	"math/rand"

	"qcongest/internal/congest"
	"qcongest/internal/dist"
	"qcongest/internal/gadget"
	"qcongest/internal/server"
)

// GadgetInputs draws lower-bound inputs for the Eq. (2) parameters of h.
func GadgetInputs(h int, force bool, seed int64) (*gadget.Input, *gadget.Input, error) {
	s, l, err := gadget.EqTwoParams(h)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	x, y := gadget.RandomInput(1<<uint(s), l, force, func() bool { return rng.Intn(2) == 0 }, rng.Intn)
	return x, y, nil
}

// Fig1Report summarizes the E6 structural experiment.
type Fig1Report struct {
	H         int                    // the height parameter checked
	Structure gadget.StructureReport // measured structural invariants
	Err       error                  // non-nil when construction or checking failed
}

// Figure1Suite builds the base construction for a range of h and checks
// the structural invariants (E6).
func Figure1Suite(hs []int, seed int64) []Fig1Report {
	var out []Fig1Report
	for _, h := range hs {
		rep := Fig1Report{H: h}
		x, y, err := GadgetInputs(h, true, seed+int64(h))
		if err != nil {
			rep.Err = err
			out = append(out, rep)
			continue
		}
		c, err := gadget.BuildDiameter(h, x, y, 3, 5)
		if err != nil {
			rep.Err = err
			out = append(out, rep)
			continue
		}
		rep.Structure, rep.Err = c.CheckStructure()
		out = append(out, rep)
	}
	return out
}

// GapExperiment runs E7 (diameter, Lemma 4.4) or E9 (radius, Lemma 4.9)
// over several random inputs of both F-values and returns the reports.
func GapExperiment(h int, radius bool, trials int, seed int64) ([]gadget.GapReport, error) {
	alpha, beta, err := gadget.TheoremWeights(h)
	if err != nil {
		return nil, err
	}
	var out []gadget.GapReport
	for trial := 0; trial < trials; trial++ {
		force := trial%2 == 0
		var x, y *gadget.Input
		if radius {
			x, y, err = radiusInputs(h, force, seed+int64(trial))
		} else {
			x, y, err = GadgetInputs(h, force, seed+int64(trial))
		}
		if err != nil {
			return nil, err
		}
		var c *gadget.Construction
		if radius {
			c, err = gadget.BuildRadius(h, x, y, alpha, beta)
		} else {
			c, err = gadget.BuildDiameter(h, x, y, alpha, beta)
		}
		if err != nil {
			return nil, err
		}
		if radius {
			out = append(out, c.VerifyLemma49(x, y))
		} else {
			out = append(out, c.VerifyLemma44(x, y))
		}
	}
	return out, nil
}

// radiusInputs forces F' rather than F.
func radiusInputs(h int, force bool, seed int64) (*gadget.Input, *gadget.Input, error) {
	s, l, err := gadget.EqTwoParams(h)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	x := gadget.NewInput(1<<uint(s), l)
	y := gadget.NewInput(1<<uint(s), l)
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			x.Set(i, j, rng.Intn(2) == 0)
			y.Set(i, j, rng.Intn(2) == 0)
			if !force && x.Get(i, j) && y.Get(i, j) {
				y.Set(i, j, false)
			}
		}
	}
	if force {
		x.Set(0, 0, true)
		y.Set(0, 0, true)
	}
	return x, y, nil
}

// Table2Experiment runs E8: the contracted-graph distance table.
func Table2Experiment(h int, trials int, seed int64) (violations int, checked int, err error) {
	alpha, beta, err := gadget.TheoremWeights(h)
	if err != nil {
		return 0, 0, err
	}
	for trial := 0; trial < trials; trial++ {
		x, y, err := GadgetInputs(h, trial%2 == 0, seed+int64(trial))
		if err != nil {
			return violations, checked, err
		}
		c, err := gadget.BuildDiameter(h, x, y, alpha, beta)
		if err != nil {
			return violations, checked, err
		}
		violations += len(c.CheckTable2(x, y))
		checked++
	}
	return violations, checked, nil
}

// SimulationExperiment runs E10: a real distributed algorithm on the
// gadget under the Lemma 4.1 ownership schedule.
func SimulationExperiment(h int, seed int64) (server.Report, error) {
	x, y, err := GadgetInputs(h, true, seed)
	if err != nil {
		return server.Report{}, err
	}
	alpha, beta, err := gadget.TheoremWeights(h)
	if err != nil {
		return server.Report{}, err
	}
	c, err := gadget.BuildDiameter(h, x, y, alpha, beta)
	if err != nil {
		return server.Report{}, err
	}
	o := server.NewOwnership(c)
	budget := o.MaxRounds() - 1
	// Root the flood on Alice's side: path traffic then chases the
	// ownership frontier without ever crossing it (the lemma's schedule is
	// built for exactly that), while tree-climbing traffic crosses into
	// the server's region and is charged — at most 2h messages per round.
	root := c.A[0]
	return server.Simulate(c, func(int) congest.Proc {
		return &dist.BFSTreeProc{Root: root, Budget: budget}
	}, congest.Options{MaxRounds: budget + 2, Seed: seed})
}

// ReductionReport is one E11 end-to-end reduction outcome.
type ReductionReport struct {
	H        int                     // the gadget height parameter
	Radius   bool                    // true for the Theorem 4.8 radius reduction
	Outcome  server.ReductionOutcome // the decision rule's result vs truth
	LowerBnd float64                 // the Theorem 4.2 round bound shape for this n
}

// ReductionExperiment runs E11 for both metrics over several inputs.
func ReductionExperiment(h, trials int, seed int64) ([]ReductionReport, error) {
	alpha, beta, err := gadget.TheoremWeights(h)
	if err != nil {
		return nil, err
	}
	var out []ReductionReport
	for trial := 0; trial < trials; trial++ {
		force := trial%2 == 0

		x, y, err := GadgetInputs(h, force, seed+int64(trial))
		if err != nil {
			return nil, err
		}
		c, err := gadget.BuildDiameter(h, x, y, alpha, beta)
		if err != nil {
			return nil, err
		}
		out = append(out, ReductionReport{
			H: h, Outcome: server.DecideDiameter(c, x, y),
			LowerBnd: server.LowerBoundRounds(c.G.N()),
		})

		xr, yr, err := radiusInputs(h, force, seed+int64(trial)+1000)
		if err != nil {
			return nil, err
		}
		cr, err := gadget.BuildRadius(h, xr, yr, alpha, beta)
		if err != nil {
			return nil, err
		}
		out = append(out, ReductionReport{
			H: h, Radius: true, Outcome: server.DecideRadius(cr, xr, yr),
			LowerBnd: server.LowerBoundRounds(cr.G.N()),
		})
	}
	return out, nil
}

// FormulaReport summarizes E13.
type FormulaReport struct {
	H          int  // the Eq. (2) parameter the formulas were built for
	FSize      int  // leaf count of F (must equal 2^s·ℓ)
	FReadOnce  bool // F is read-once (Lemma 4.6 hypothesis)
	FpReadOnce bool // F′ is read-once
	VEROk      bool // VER embeds in GDT on the whole promise domain
}

// FormulaExperiment instantiates the Lemma 4.5-4.7 machinery (E13).
func FormulaExperiment(h int) (FormulaReport, error) {
	s, l, err := gadget.EqTwoParams(h)
	if err != nil {
		return FormulaReport{}, err
	}
	rows := 1 << uint(s)
	f := gadget.FFormula(rows, l)
	fp := gadget.FPrimeFormula(rows, l)
	rep := FormulaReport{
		H: h, FSize: f.Size(),
		FReadOnce:  f.ReadOnce(),
		FpReadOnce: fp.ReadOnce(),
		VEROk:      true,
	}
	for x := uint8(0); x < 4; x++ {
		for y := uint8(0); y < 4; y++ {
			if gadget.GDT(gadget.VEREncodeAlice(x), gadget.VEREncodeBob(y)) != gadget.VER(x, y) {
				rep.VEROk = false
			}
		}
	}
	if rep.FSize != rows*l {
		return rep, fmt.Errorf("exp: F size %d != 2^s·ℓ = %d", rep.FSize, rows*l)
	}
	return rep, nil
}
