package exp

import (
	"math"
	"testing"

	"qcongest/internal/core"
)

func TestFitLogLogExact(t *testing.T) {
	// y = 3·x² should fit slope 2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	fit := FitLogLog(xs, ys)
	if math.Abs(fit.Slope-2) > 1e-9 {
		t.Fatalf("slope = %f, want 2", fit.Slope)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R² = %f", fit.R2)
	}
}

func TestFitLogLogDegenerate(t *testing.T) {
	if f := FitLogLog([]float64{1}, []float64{1}); !math.IsNaN(f.Slope) {
		t.Fatal("single point should not fit")
	}
	if f := FitLogLog([]float64{2, 2}, []float64{1, 5}); !math.IsNaN(f.Slope) {
		t.Fatal("zero x-variance should not fit")
	}
}

func TestScalingInNSmall(t *testing.T) {
	pts, fit, err := ScalingInN([]int{32, 64, 128}, 6, core.DiameterMode, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Rounds <= 0 || p.Theorem <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	// Rounds must grow with n; the slope should be positive and sublinear
	// plus polylog wiggle (asserted loosely at these tiny sizes).
	if fit.Slope <= 0 || fit.Slope > 2.0 {
		t.Fatalf("implausible n-slope %f", fit.Slope)
	}
}

func TestQualitySmall(t *testing.T) {
	rep, err := Quality(3, 40, core.DiameterMode, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstRatio > rep.EpsBound+1e-9 {
		t.Fatalf("worst ratio %f above (1+ε)² = %f", rep.WorstRatio, rep.EpsBound)
	}
	if rep.Undershoots > 1 {
		t.Fatalf("%d/3 undershoots", rep.Undershoots)
	}
}

func TestMeasuredTable1Small(t *testing.T) {
	entries, err := MeasuredTable1(36, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("got %d entries, want 6", len(entries))
	}
	for _, e := range entries {
		if e.Measured <= 0 || e.Analytic <= 0 {
			t.Fatalf("bad entry %+v", e)
		}
	}
}

func TestFigure1Suite(t *testing.T) {
	reps := Figure1Suite([]int{2, 4}, 1)
	for _, r := range reps {
		if r.Err != nil {
			t.Fatalf("h=%d: %v", r.H, r.Err)
		}
	}
}

func TestGapExperiments(t *testing.T) {
	for _, radius := range []bool{false, true} {
		reps, err := GapExperiment(2, radius, 4, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range reps {
			if !r.Satisfied {
				t.Fatalf("radius=%v trial %d: %v", radius, i, r)
			}
			if r.FValue != (i%2 == 0) {
				t.Fatalf("radius=%v trial %d: forcing failed", radius, i)
			}
		}
	}
}

func TestTable2Experiment(t *testing.T) {
	vio, checked, err := Table2Experiment(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vio != 0 || checked != 3 {
		t.Fatalf("violations=%d checked=%d", vio, checked)
	}
}

func TestSimulationExperiment(t *testing.T) {
	rep, err := SimulationExperiment(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WithinLemmaBounds {
		t.Fatalf("lemma bounds violated: %v", rep)
	}
}

func TestReductionExperiment(t *testing.T) {
	reps, err := ReductionExperiment(2, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		if !r.Outcome.Correct {
			t.Fatalf("reduction failed: %+v", r)
		}
	}
}

func TestFormulaExperiment(t *testing.T) {
	rep, err := FormulaExperiment(2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FReadOnce || !rep.FpReadOnce || !rep.VEROk {
		t.Fatalf("formula machinery broken: %+v", rep)
	}
	if rep.FSize != 8*2 {
		t.Fatalf("F size %d, want 16", rep.FSize)
	}
}

func TestIntsDedup(t *testing.T) {
	got := Ints([]int{4, 1, 4, 2, 1})
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
