// Package exp contains the experiment drivers that regenerate the paper's
// tables and figures (DESIGN.md's per-experiment index E1-E13). The cmd/
// binaries and the top-level benchmarks are thin wrappers over this
// package so that every reported number has exactly one implementation.
package exp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qcongest/internal/baseline"
	"qcongest/internal/congest"
	"qcongest/internal/core"
	"qcongest/internal/graph"
)

// Fit is a least-squares fit of log(y) = Slope·log(x) + Intercept.
type Fit struct {
	Slope     float64 // the power-law exponent
	Intercept float64 // log of the power-law constant
	R2        float64 // coefficient of determination of the log-log fit
}

// FitLogLog fits a power law y ≈ c·x^Slope to the points.
func FitLogLog(xs, ys []float64) Fit {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Fit{Slope: math.NaN()}
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	var sx, sy float64
	for i := range xs {
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
		sx += lx[i]
		sy += ly[i]
	}
	mx, my := sx/float64(len(xs)), sy/float64(len(ys))
	var sxx, sxy, syy float64
	for i := range lx {
		dx, dy := lx[i]-mx, ly[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Slope: math.NaN()}
	}
	slope := sxy / sxx
	r2 := 0.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return Fit{Slope: slope, Intercept: my - slope*mx, R2: r2}
}

// ScalingPoint is one measurement of the core algorithm.
type ScalingPoint struct {
	N, D    int     // workload size and measured unweighted diameter
	Rounds  int64   // measured rounds of the full nested search
	Budget  int64   // the outer Lemma 3.1 fixed budget for the same run
	Theorem float64 // min{n^0.9 D^0.3, n}
}

// PolylogPower is the polylog exponent the cost model composes on top of
// the theorem's n^(9/10)·D^(3/10): Algorithm 3 contributes log⁴ (rounding
// indices × (1/ε) × ℓ's log × subround stretching) and the outer search
// √log, as derived in DESIGN.md §4 / EXPERIMENTS.md.
const PolylogPower = 4.5

// Normalized returns Rounds with the cost model's polylog factor divided
// out, the quantity whose log-log slope against n should approach the
// theorem's 0.9.
func (p ScalingPoint) Normalized() float64 {
	l := math.Log2(float64(p.N))
	return float64(p.Rounds) / math.Pow(l, PolylogPower)
}

// workload builds the standard sweep workload: a connected graph with the
// requested size and (approximate) unweighted diameter, randomly weighted.
func workload(n, d int, maxW int64, rng *rand.Rand) *graph.Graph {
	var g *graph.Graph
	if d <= 0 {
		g = graph.LowDiameterExpanderish(n, 4, rng)
	} else {
		g = graph.DiameterControlled(n, d, rng)
	}
	return graph.RandomWeights(g, maxW, rng)
}

// ScalingInN measures the core algorithm's rounds as n grows at a fixed
// small unweighted diameter (E2). The raw rounds include the cost model's
// polylog factors; the returned fit is on the polylog-normalized rounds,
// whose slope the theorem pins at ≈ 0.9 (the classical baseline's
// normalized slope stays 1.0 — it has no such factors to remove, see
// EXPERIMENTS.md).
func ScalingInN(ns []int, d int, mode core.Mode, seed int64) ([]ScalingPoint, Fit, error) {
	pts := make([]ScalingPoint, len(ns))
	err := concurrently(len(ns), func(i int) error {
		n := ns[i]
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := workload(n, d, 16, rng)
		res, err := core.Approximate(g, mode, core.Options{Seed: seed + int64(n)})
		if err != nil {
			return fmt.Errorf("n=%d: %w", n, err)
		}
		pts[i] = ScalingPoint{
			N: n, D: int(res.Params.D),
			Rounds: res.Rounds, Budget: res.BudgetRounds, Theorem: res.TheoremBound,
		}
		return nil
	})
	if err != nil {
		return nil, Fit{}, err
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.N)
		ys[i] = p.Normalized()
	}
	return pts, FitLogLog(xs, ys), nil
}

// ScalingInD measures rounds as D grows at fixed n (E3); slope ≈ 0.3
// until the min{·, n} cap bites.
func ScalingInD(n int, ds []int, mode core.Mode, seed int64) ([]ScalingPoint, Fit, error) {
	pts := make([]ScalingPoint, len(ds))
	err := concurrently(len(ds), func(i int) error {
		d := ds[i]
		rng := rand.New(rand.NewSource(seed + int64(d)))
		g := workload(n, d, 16, rng)
		res, err := core.Approximate(g, mode, core.Options{Seed: seed + int64(d)})
		if err != nil {
			return fmt.Errorf("d=%d: %w", d, err)
		}
		pts[i] = ScalingPoint{
			N: n, D: int(res.Params.D),
			Rounds: res.Rounds, Budget: res.BudgetRounds, Theorem: res.TheoremBound,
		}
		return nil
	})
	if err != nil {
		return nil, Fit{}, err
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = float64(p.D)
		ys[i] = float64(p.Rounds)
	}
	return pts, FitLogLog(xs, ys), nil
}

// CrossPoint compares quantum and classical rounds at one (n, D).
type CrossPoint struct {
	N, D            int     // workload size and measured unweighted diameter
	QuantumRounds   int64   // measured Theorem 1.1 rounds
	ClassicalRounds int64   // measured APSP baseline rounds on the same graph
	TheoremQ        float64 // n^0.9 D^0.3 (uncapped)
	CrossoverD      float64 // n^(1/3)
}

// Crossover sweeps D at fixed n and reports where the quantum bound stops
// beating the classical Θ(n) (E4): at D ≈ n^(1/3) per §1.1. The classical
// baselines run as one congest.RunBatch; the quantum points run
// concurrently per D. Both sides measure the same per-D workload graph.
func Crossover(n int, ds []int, seed int64) ([]CrossPoint, error) {
	gs := make([]*graph.Graph, len(ds))
	for i, d := range ds {
		rng := rand.New(rand.NewSource(seed + int64(d)*7))
		gs[i] = workload(n, d, 16, rng)
	}
	_, _, stats, err := baseline.ClassicalDiameterBatch(gs, congest.Options{}, 0)
	if err != nil {
		return nil, err
	}
	pts := make([]CrossPoint, len(ds))
	err = concurrently(len(ds), func(i int) error {
		d := ds[i]
		res, aerr := core.Approximate(gs[i], core.DiameterMode, core.Options{Seed: seed + int64(d)})
		if aerr != nil {
			return aerr
		}
		pts[i] = CrossPoint{
			N: n, D: int(res.Params.D),
			QuantumRounds:   res.Rounds,
			ClassicalRounds: int64(stats[i].Rounds),
			TheoremQ:        math.Pow(float64(n), 0.9) * math.Pow(float64(res.Params.D), 0.3),
			CrossoverD:      baseline.CrossoverD(float64(n)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// QualityReport summarizes the approximation-quality experiment (E5).
type QualityReport struct {
	Trials        int       // number of independent runs aggregated
	Mode          core.Mode // metric approximated (diameter or radius)
	WorstRatio    float64   // max estimate/truth
	MeanRatio     float64   // mean estimate/truth
	EpsBound      float64   // (1+ε)²
	Undershoots   int       // estimate < truth (search landed outside the good mass)
	GoodScaleFail int       // runs whose chosen scale missed the good-index promise
}

// Quality runs repeated approximations on random weighted graphs and
// reports the measured estimate/truth ratios against the (1+ε)² bound of
// Theorem 1.1 / Lemma 3.4 (E5).
func Quality(trials, n int, mode core.Mode, seed int64) (QualityReport, error) {
	rep := QualityReport{Trials: trials, Mode: mode, WorstRatio: 1}
	type trialResult struct {
		epsBound  float64
		ratio     float64
		goodScale bool
	}
	results := make([]trialResult, trials)
	err := concurrently(trials, func(trial int) error {
		rng := rand.New(rand.NewSource(seed + int64(trial)*101))
		g := workload(n, 0, 12, rng)
		var truth int64
		if mode == core.DiameterMode {
			truth = g.Diameter()
		} else {
			truth = g.Radius()
		}
		res, err := core.Approximate(g, mode, core.Options{Seed: seed + int64(trial)})
		if err != nil {
			return err
		}
		eps := res.Params.Eps.Float()
		results[trial] = trialResult{
			epsBound:  (1 + eps) * (1 + eps),
			ratio:     res.Estimate / float64(truth),
			goodScale: res.GoodScale,
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	// Reduce in trial order so the report is identical to a sequential run.
	var sum float64
	for _, r := range results {
		rep.EpsBound = r.epsBound
		if r.ratio < 1 {
			rep.Undershoots++
		}
		if r.ratio > rep.WorstRatio {
			rep.WorstRatio = r.ratio
		}
		if !r.goodScale {
			rep.GoodScaleFail++
		}
		sum += r.ratio
	}
	rep.MeanRatio = sum / float64(trials)
	return rep, nil
}

// Table1Entry is one measured row of the E1 experiment.
type Table1Entry struct {
	Label    string  // the Table 1 row name
	N, D     int     // workload size and measured unweighted diameter
	Measured int64   // measured rounds on the shared workload
	Analytic float64 // the row's Õ(·) shape evaluated with constant 1
}

// MeasuredTable1 runs every executable Table 1 row on one workload and
// returns measured-vs-analytic pairs (E1). The analytic column evaluates
// the paper's Õ(·) shape with constant 1. The two APSP rows run as one
// congest.RunBatch; the remaining rows run concurrently, each writing a
// fixed slot, so the row order matches the previous sequential driver.
func MeasuredTable1(n int, seed int64) ([]Table1Entry, error) {
	rng := rand.New(rand.NewSource(seed))
	g := workload(n, 0, 12, rng)
	d := g.UnweightedDiameter()
	nf, df := float64(n), float64(d)
	unweighted := g.Unweighted()

	_, _, stats, err := baseline.ClassicalDiameterBatch([]*graph.Graph{unweighted, g}, congest.Options{}, 0)
	if err != nil {
		return nil, err
	}
	out := make([]Table1Entry, 6)
	out[0] = Table1Entry{Label: "classical exact unweighted diameter (APSP)", N: n, D: int(d), Measured: int64(stats[0].Rounds), Analytic: nf}
	out[2] = Table1Entry{Label: "classical exact weighted diameter (APSP)", N: n, D: int(d), Measured: int64(stats[1].Rounds), Analytic: nf}

	rows := []func() error{
		func() error {
			q, err := baseline.QuantumUnweightedDiameter(unweighted, seed)
			if err != nil {
				return err
			}
			out[1] = Table1Entry{Label: "quantum unweighted diameter (LM18-style)", N: n, D: int(d), Measured: q.Rounds, Analytic: math.Sqrt(nf * df)}
			return nil
		},
		func() error {
			a32, err := baseline.ClassicalDiameter32(unweighted, seed)
			if err != nil {
				return err
			}
			out[3] = Table1Entry{Label: "classical 3/2-approx unweighted diameter", N: n, D: int(d), Measured: a32.Rounds, Analytic: math.Sqrt(nf) + df}
			return nil
		},
		func() error {
			res, err := core.Approximate(g, core.DiameterMode, core.Options{Seed: seed})
			if err != nil {
				return err
			}
			out[4] = Table1Entry{
				Label:    fmt.Sprintf("quantum weighted %s (1+o(1)) [THIS WORK]", core.DiameterMode),
				N:        n,
				D:        int(res.Params.D),
				Measured: res.Rounds,
				Analytic: res.TheoremBound,
			}
			return nil
		},
		func() error {
			res, err := core.Approximate(g, core.RadiusMode, core.Options{Seed: seed})
			if err != nil {
				return err
			}
			out[5] = Table1Entry{
				Label:    fmt.Sprintf("quantum weighted %s (1+o(1)) [THIS WORK]", core.RadiusMode),
				N:        n,
				D:        int(res.Params.D),
				Measured: res.Rounds,
				Analytic: res.TheoremBound,
			}
			return nil
		},
	}
	if err := concurrently(len(rows), func(i int) error { return rows[i]() }); err != nil {
		return nil, err
	}
	return out, nil
}

// Ints parses nothing; it sorts and dedups an int slice (shared by cmd
// flag handling).
func Ints(vs []int) []int {
	sort.Ints(vs)
	out := vs[:0]
	prev := math.MinInt
	for _, v := range vs {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}
