package exp

import "testing"

func TestAblateR(t *testing.T) {
	rep, err := AblateR(40, []float64{0.5, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("got %d points", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Rounds <= 0 {
			t.Fatalf("variant %s: no rounds", p.Label)
		}
		if p.Ratio < 0.5 || p.Ratio > 2 {
			t.Fatalf("variant %s: implausible ratio %f", p.Label, p.Ratio)
		}
	}
}

func TestAblateKMonotoneEmbedCost(t *testing.T) {
	rep, err := AblateK(40, []int{1, 2, 4, 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		if p.Params.K < 1 {
			t.Fatalf("bad k in %+v", p.Params)
		}
		if p.Rounds <= 0 {
			t.Fatal("no rounds")
		}
	}
}

func TestAblateEpsQualityTradeoff(t *testing.T) {
	rep, err := AblateEps(40, []int64{1, 3, 6, 12}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Coarser ε (T=1, ε=1) must still be within its own (1+ε)² = 4 bound.
	for _, p := range rep.Points {
		bound := (1 + p.Params.Eps.Float()) * (1 + p.Params.Eps.Float())
		if p.Ratio > bound+1e-9 {
			t.Fatalf("variant %s: ratio %f above its own (1+ε)² = %f", p.Label, p.Ratio, bound)
		}
	}
	// Finer ε should never be cheaper than the coarsest (its 1/ε round
	// terms strictly grow).
	if rep.Points[0].Rounds > rep.Points[len(rep.Points)-1].Rounds {
		t.Logf("note: ε=1 rounds %d vs finest %d (search randomness can flip small cases)",
			rep.Points[0].Rounds, rep.Points[len(rep.Points)-1].Rounds)
	}
}
