package exp

import (
	"fmt"
	"math/rand"

	"qcongest/internal/core"
	"qcongest/internal/dist"
)

// AblationPoint is one run of the core algorithm with a perturbed
// parameter choice.
type AblationPoint struct {
	Label      string      // human-readable variant name (e.g. "r=12 (×0.5)")
	Params     core.Params // the perturbed parameter choice this point ran with
	Rounds     int64       // measured rounds under the variant
	Ratio      float64     // estimate / truth
	Undershoot bool        // search landed outside the good mass
}

// AblationReport groups the sweep for one knob.
type AblationReport struct {
	Knob   string          // the perturbed parameter ("r", "k", or "eps")
	Points []AblationPoint // one point per variant, in sweep order
}

// ablate runs the algorithm on one workload per parameter variant.
func ablate(knob string, n int, variants []core.Params, labels []string, seed int64) (AblationReport, error) {
	rep := AblationReport{Knob: knob}
	rng := rand.New(rand.NewSource(seed))
	g := workload(n, 0, 12, rng)
	truth := g.Diameter()
	for i, p := range variants {
		res, err := core.ApproximateWithParams(g, core.DiameterMode, p, core.Options{Seed: seed + int64(i)})
		if err != nil {
			return rep, fmt.Errorf("%s variant %s: %w", knob, labels[i], err)
		}
		rep.Points = append(rep.Points, AblationPoint{
			Label:      labels[i],
			Params:     p,
			Rounds:     res.Rounds,
			Ratio:      res.Estimate / float64(truth),
			Undershoot: res.Estimate < float64(truth),
		})
	}
	return rep, nil
}

// baseParams computes the Eq. (1) defaults for the standard workload.
func baseParams(n int, seed int64) (core.Params, error) {
	rng := rand.New(rand.NewSource(seed))
	g := workload(n, 0, 12, rng)
	return core.ParamsFor(g.N(), g.UnweightedDiameter(), g.MaxWeight())
}

// AblateR sweeps the sampling rate r around the paper's n^(2/5)·D^(-1/5)
// choice. Smaller r shrinks the skeletons (cheaper inner searches, fewer
// good indices — more undershoot risk); larger r inflates ℓ's cost term
// n/(ε·r) more slowly but pays r·k in embedding.
func AblateR(n int, factors []float64, seed int64) (AblationReport, error) {
	base, err := baseParams(n, seed)
	if err != nil {
		return AblationReport{}, err
	}
	var variants []core.Params
	var labels []string
	for _, f := range factors {
		p := base
		p.R = max(1, int(float64(base.R)*f))
		p.L = max(1, base.L*base.R/p.R) // keep ℓ·r = n·log n invariant
		variants = append(variants, p)
		labels = append(labels, fmt.Sprintf("r=%d (×%.2g)", p.R, f))
	}
	return ablate("r", n, variants, labels, seed)
}

// AblateK sweeps the shortcut parameter k around ⌈√D⌉. Larger k means
// denser shortcut graphs (larger embeddings, shorter overlay hop bounds).
func AblateK(n int, ks []int, seed int64) (AblationReport, error) {
	base, err := baseParams(n, seed)
	if err != nil {
		return AblationReport{}, err
	}
	var variants []core.Params
	var labels []string
	for _, k := range ks {
		p := base
		p.K = max(1, k)
		variants = append(variants, p)
		labels = append(labels, fmt.Sprintf("k=%d", p.K))
	}
	return ablate("k", n, variants, labels, seed)
}

// AblateEps sweeps ε = 1/T around 1/log n. Coarser ε loosens the
// approximation bound (1+ε)² and shrinks every (1/ε)-proportional round
// term.
func AblateEps(n int, ts []int64, seed int64) (AblationReport, error) {
	base, err := baseParams(n, seed)
	if err != nil {
		return AblationReport{}, err
	}
	var variants []core.Params
	var labels []string
	for _, t := range ts {
		p := base
		if t < 1 {
			t = 1
		}
		p.Eps = dist.Eps{T: t}
		variants = append(variants, p)
		labels = append(labels, fmt.Sprintf("ε=1/%d", t))
	}
	return ablate("eps", n, variants, labels, seed)
}
