package store

// The manifest is the store's small JSON root document, rewritten
// atomically at every snapshot: wire-format versions, the snapshot file
// it blesses, the sequence number the snapshot covers, and one entry
// per snapshotted graph (digest, shape, generator spec, and the
// warm-start hints — last-query recency and the most recent sketch
// parameter tuple). Graphs appended after the snapshot live in the log
// only, carrying the same metadata in their record payloads.

import (
	"encoding/json"
	"fmt"
	"strconv"

	"qcongest/internal/graph"
)

const (
	// storeFormatVersion names the directory layout + record framing.
	storeFormatVersion = 1
	// maxManifestBytes bounds a manifest read, checked before parsing.
	maxManifestBytes = 16 << 20
	// maxManifestGraphs bounds the declared graph list.
	maxManifestGraphs = 1 << 20
)

// SketchParams is the Lemma 3.2 parameter tuple persisted as a
// warm-start hint: on reboot the service can rebuild exactly the sketch
// the graph was last queried with.
type SketchParams struct {
	// Sources is the skeleton source set, in request order (order is
	// part of the cache identity).
	Sources []int `json:"sources"`
	// L is the hop budget.
	L int `json:"l"`
	// K is the sparsification parameter.
	K int `json:"k"`
	// EpsT is the requested inverse rounding parameter (0 = server
	// default for the graph).
	EpsT int64 `json:"epsT,omitempty"`
}

// clone returns a deep copy so the store never aliases request slices.
func (p *SketchParams) clone() *SketchParams {
	if p == nil {
		return nil
	}
	c := *p
	c.Sources = append([]int(nil), p.Sources...)
	return &c
}

// manifestGraph is one snapshotted graph's manifest entry.
type manifestGraph struct {
	Digest string          `json:"digest"`
	N      int             `json:"n"`
	M      int             `json:"m"`
	Gen    json.RawMessage `json:"gen,omitempty"`
	// Seq is the append sequence the graph originally committed at —
	// the replication cursor identity, preserved across snapshot folds.
	// 0 in pre-PR 9 manifests (recovery synthesizes ordinals).
	Seq       uint64        `json:"seq,omitempty"`
	LastQuery uint64        `json:"lastQuery,omitempty"`
	Sketch    *SketchParams `json:"sketch,omitempty"`
}

// manifest is the root document (manifest.json).
type manifest struct {
	FormatVersion int    `json:"formatVersion"`
	CodecVersion  int    `json:"codecVersion"`
	SnapshotSeq   uint64 `json:"snapshotSeq"`
	// Epoch is the leadership generation this replica last acknowledged
	// (epoch.go); 0 in pre-promotion manifests.
	Epoch    uint64          `json:"epoch,omitempty"`
	Snapshot string          `json:"snapshot,omitempty"`
	Graphs   []manifestGraph `json:"graphs"`
}

// parseManifest decodes and validates a manifest document. Size limits
// are enforced before decoding so arbitrary bytes can neither panic nor
// demand allocation beyond a multiple of their own length (the fuzz
// contract of FuzzManifestParse).
func parseManifest(data []byte) (*manifest, error) {
	if len(data) > maxManifestBytes {
		return nil, fmt.Errorf("store: manifest of %d bytes exceeds limit %d", len(data), maxManifestBytes)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parsing manifest: %w", err)
	}
	if m.FormatVersion != storeFormatVersion {
		return nil, fmt.Errorf("store: manifest format version %d (this build reads %d)", m.FormatVersion, storeFormatVersion)
	}
	if m.CodecVersion != graph.EdgeListVersion {
		return nil, fmt.Errorf("store: manifest codec version %d (this build reads %d)", m.CodecVersion, graph.EdgeListVersion)
	}
	if len(m.Graphs) > maxManifestGraphs {
		return nil, fmt.Errorf("store: manifest declares %d graphs, above limit %d", len(m.Graphs), maxManifestGraphs)
	}
	for i := range m.Graphs {
		mg := &m.Graphs[i]
		if _, err := parseDigest(mg.Digest); err != nil {
			return nil, fmt.Errorf("store: manifest graph %d: %w", i, err)
		}
		if mg.N < 0 || mg.M < 0 {
			return nil, fmt.Errorf("store: manifest graph %s declares negative shape n=%d m=%d", mg.Digest, mg.N, mg.M)
		}
		if mg.Seq > m.SnapshotSeq {
			return nil, fmt.Errorf("store: manifest graph %s declares seq %d beyond snapshot seq %d", mg.Digest, mg.Seq, m.SnapshotSeq)
		}
		if err := validateSketchShape(mg.Sketch, mg.N); err != nil {
			return nil, fmt.Errorf("store: manifest graph %s: %w", mg.Digest, err)
		}
	}
	return &m, nil
}

// maxHintEpsT mirrors the serving layer's maxEpsT request bound
// (internal/svc/handlers.go): with T <= 2^20 the rational arithmetic
// stays far from int64 overflow. A recovered hint outside the bounds a
// live request must satisfy could never have been recorded by a
// healthy store, so it is rot — rejected, not replayed.
const maxHintEpsT = 1 << 20

// maxHintSources bounds a hint's source-set size. Requests may repeat
// sources (order and multiplicity are cache identity), so the bound is
// an absolute sanity cap against rot, not the graph's node count.
const maxHintSources = 1 << 16

// validateSketchShape rejects warm-start hints that could not have come
// from a real query — out-of-range sources, non-positive l/k, or l/epsT
// beyond the serving layer's request caps — so a corrupt hint can
// neither panic the skeleton builder nor turn boot-time warming into an
// overflow or a CPU runaway.
func validateSketchShape(p *SketchParams, n int) error {
	if p == nil {
		return nil
	}
	if len(p.Sources) == 0 || len(p.Sources) > maxHintSources {
		return fmt.Errorf("sketch hint has %d sources (need 1..%d)", len(p.Sources), maxHintSources)
	}
	for _, s := range p.Sources {
		if s < 0 || s >= n {
			return fmt.Errorf("sketch hint source %d out of range [0,%d)", s, n)
		}
	}
	if p.L < 1 || p.L > 4*n {
		return fmt.Errorf("sketch hint hop budget l=%d outside [1, 4n=%d]", p.L, 4*n)
	}
	if p.K < 1 || p.EpsT < 0 || p.EpsT > maxHintEpsT {
		return fmt.Errorf("sketch hint has k=%d epsT=%d (need k >= 1, 0 <= epsT <= %d)", p.K, p.EpsT, int64(maxHintEpsT))
	}
	return nil
}

// formatDigest renders the canonical digest form used in every
// persisted document (graph.DigestString).
func formatDigest(d uint64) string { return graph.DigestString(d) }

// parseDigest is the inverse of formatDigest. Stricter than the HTTP
// layer's ParseDigest (exactly 16 digits, never 1-15): persisted
// documents are machine-written, so any deviation is corruption.
func parseDigest(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("store: digest %q is not 16 hex digits", s)
	}
	d, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("store: bad digest %q", s)
	}
	return d, nil
}
