package store

// Pins for epoch fencing and the digest chain: the promotion
// invariants (internal/svc/promote.go) only hold if SetEpoch survives
// reopen, Fence actually partitions the sequence space, and the chain
// is a pure function of the committed (seq, digest) set regardless of
// arrival order.

import (
	"sort"
	"testing"
)

func TestEpochPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, Options{Dir: dir})
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", s.Epoch())
	}
	gs := testGraphs(t, 3)
	for _, g := range gs {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetEpoch(7); err != nil {
		t.Fatal(err)
	}
	// A lower (or equal) epoch never rolls the clock back.
	if err := s.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 7 {
		t.Fatalf("epoch after SetEpoch(3) = %d, want 7 (monotone)", s.Epoch())
	}
	chain := s.Chain()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, recovered, _ := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	assertRecovered(t, recovered, gs)
	if s2.Epoch() != 7 {
		t.Fatalf("epoch after reopen = %d, want 7", s2.Epoch())
	}
	if s2.Chain() != chain {
		t.Fatalf("chain after reopen = %016x, want %016x", s2.Chain(), chain)
	}
}

// TestSetEpochAloneIsDurable pins the epochDirty path: persisting an
// epoch with no new graph appends must still reach the manifest, or a
// freshly promoted idle leader would revive believing its old epoch.
func TestSetEpochAloneIsDurable(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, Options{Dir: dir})
	if err := s.SetEpoch(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, _ := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	if s2.Epoch() != 2 {
		t.Fatalf("epoch after epoch-only reopen = %d, want 2", s2.Epoch())
	}
}

func TestFencePartitionsSequenceSpace(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, Options{Dir: dir})
	defer s.Close()
	gs := testGraphs(t, 2)
	if err := s.AppendGraph(gs[0], nil); err != nil {
		t.Fatal(err)
	}
	base := EpochBase(1)
	if base != 1<<32 {
		t.Fatalf("EpochBase(1) = %d, want 1<<32", base)
	}
	s.Fence(base)
	if err := s.AppendGraph(gs[1], nil); err != nil {
		t.Fatal(err)
	}
	if head := s.ReplicationHead(); head <= base {
		t.Fatalf("post-fence append minted seq %d, want > %d", head, base)
	}
	// A fence below the clock is a no-op, never a rollback.
	s.Fence(1)
	if head := s.ReplicationHead(); head <= base {
		t.Fatalf("Fence(1) rolled the clock back to %d", head)
	}
}

// TestChainIsOrderIndependent pins the chain as a pure function of the
// committed record set: a follower applying records in replication
// order and a recovering store folding a sorted snapshot must agree.
func TestChainIsOrderIndependent(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, Options{Dir: dir})
	defer s.Close()
	gs := testGraphs(t, 5)
	type rec struct{ seq, digest uint64 }
	var recs []rec
	for _, g := range gs {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Reconstruct the expected fold from the store's own records,
	// ascending seq, via the exported mix.
	s.mu.Lock()
	for _, r := range s.graphs {
		recs = append(recs, rec{r.seq, r.digest})
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	var want uint64
	for _, r := range recs {
		want = ChainMix(want, r.seq, r.digest)
	}
	if got := s.Chain(); got != want || got == 0 {
		t.Fatalf("chain = %016x, manual ascending fold = %016x", got, want)
	}
}
