package store

// Fuzzers of ISSUE 5: FuzzStoreRoundTrip drives arbitrary parseable
// graphs through persist → reload and pins digest equality;
// FuzzManifestParse feeds arbitrary bytes to the manifest parser and
// asserts it never panics and enforces its size limits before
// allocation (the ParseEdgeListLimits hardening discipline of PR 4).

import (
	"bytes"
	"encoding/json"
	"testing"

	"qcongest/internal/graph"
)

// FuzzStoreRoundTrip: any graph the wire codec accepts must survive
// persist → crash → reload with a byte-identical digest and wire form,
// both via pure log replay and via a snapshot.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte("n 4\n0 1 2\n2 3 9\n"), false)
	f.Add([]byte("v 1\nn 3\n0 1 1\n1 2 1\n0 2 7\n"), true)
	f.Add([]byte("n 1\n"), false)
	f.Add([]byte("n 0\n"), true)
	f.Add([]byte("# c\nn 6\n0 5 3\n5 1 1\n1 4 1\n4 2 1\n2 3 1\n"), false)
	f.Fuzz(func(t *testing.T, wire []byte, snapshot bool) {
		g, err := graph.ParseEdgeListLimits(wire, 256, 1024)
		if err != nil {
			t.Skip()
		}
		dir := t.TempDir()
		s, _, _, err := Open(Options{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := s.AppendGraph(g, json.RawMessage(`{"kind":"fuzz"}`)); err != nil {
			t.Fatalf("append: %v", err)
		}
		if snapshot {
			if err := s.Snapshot(); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
		}
		s.Crash()

		s2, recovered, stats, err := Open(Options{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer s2.Close()
		if stats.TornTail || stats.Quarantined != 0 {
			t.Fatalf("clean round trip reported damage: %+v", stats)
		}
		if len(recovered) != 1 {
			t.Fatalf("recovered %d graphs, want 1", len(recovered))
		}
		rg := recovered[0]
		if rg.Digest != g.Digest() || rg.Graph.Digest() != g.Digest() {
			t.Fatalf("digest drift: stored %016x, recovered %016x", g.Digest(), rg.Graph.Digest())
		}
		if !bytes.Equal(graph.FormatEdgeList(rg.Graph), graph.FormatEdgeList(g)) {
			t.Fatal("wire form drift across recovery")
		}
		if string(rg.Gen) != `{"kind":"fuzz"}` {
			t.Fatalf("gen spec drift: %q", rg.Gen)
		}
	})
}

// FuzzManifestParse: arbitrary bytes never panic the manifest parser,
// oversized inputs are rejected before allocation, and anything
// accepted re-marshals to something the parser accepts again.
func FuzzManifestParse(f *testing.F) {
	valid, _ := json.Marshal(manifest{
		FormatVersion: storeFormatVersion,
		CodecVersion:  graph.EdgeListVersion,
		SnapshotSeq:   7,
		Snapshot:      "snapshot-0000000000000007.qcs",
		Graphs: []manifestGraph{{
			Digest: "0123456789abcdef", N: 4, M: 3,
			Gen:       json.RawMessage(`{"kind":"path","n":4}`),
			LastQuery: 9,
			Sketch:    &SketchParams{Sources: []int{0, 2}, L: 4, K: 2, EpsT: 8},
		}},
	})
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"formatVersion":1,"codecVersion":1,"graphs":[{"digest":"tooshort"}]}`))
	f.Add([]byte(`{"formatVersion":99}`))
	f.Add([]byte(`{"formatVersion":1,"codecVersion":1,"graphs":[{"digest":"0123456789abcdef","n":-1}]}`))
	f.Add([]byte(`{"formatVersion":1,"codecVersion":1,"graphs":[{"digest":"0123456789abcdef","n":2,"sketch":{"sources":[5],"l":1,"k":1}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data) // must not panic
		if len(data) > maxManifestBytes && err == nil {
			t.Fatal("oversized manifest accepted")
		}
		if err != nil {
			return
		}
		// Accepted manifests satisfy the validated invariants…
		if m.FormatVersion != storeFormatVersion || m.CodecVersion != graph.EdgeListVersion {
			t.Fatalf("accepted foreign versions: %+v", m)
		}
		for _, mg := range m.Graphs {
			if _, err := parseDigest(mg.Digest); err != nil {
				t.Fatalf("accepted bad digest %q", mg.Digest)
			}
			if mg.N < 0 || mg.M < 0 {
				t.Fatalf("accepted negative shape %+v", mg)
			}
			if err := validateSketchShape(mg.Sketch, mg.N); err != nil {
				t.Fatalf("accepted bad sketch hint: %v", err)
			}
		}
		// …and survive a re-marshal round trip.
		again, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := parseManifest(again); err != nil {
			t.Fatalf("re-marshaled manifest rejected: %v", err)
		}
	})
}
