package store

// Tests of the PR 8 persistence codec surface: the binary-vs-text
// record codec option, mixed-codec replay, and the snapshot index
// footer (zero-copy indexed reads, demotion to the sequential scan on
// any footer damage, per-record quarantine through the indexed path).

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"qcongest/internal/graph"
)

func snapshotFile(t *testing.T, dir string) string {
	t.Helper()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.qcs"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %v", snaps)
	}
	return snaps[0]
}

// TestStoreCodecMixedReplay boots a text-codec store, commits graphs,
// then reboots it under the binary default (and vice versa): every
// record must replay regardless of which codec wrote it, because the
// payload bytes identify their own wire form.
func TestStoreCodecMixedReplay(t *testing.T) {
	dir := t.TempDir()
	gs := testGraphs(t, 6)

	s, _, _ := mustOpen(t, Options{Dir: dir, Codec: CodecText, SnapshotEvery: -1})
	for _, g := range gs[:3] {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // folds a text-codec snapshot
		t.Fatal(err)
	}

	// Reboot under the binary default: text snapshot replays, new
	// appends land binary in the fresh log.
	s2, recovered, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	assertRecovered(t, recovered, gs[:3])
	for _, g := range gs[3:] {
		if err := s2.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Crash (no close-time snapshot): the next boot replays the text
	// snapshot AND the binary log records together.
	s2.Crash()
	s3, recovered, _ := mustOpen(t, Options{Dir: dir, Codec: CodecText, SnapshotEvery: -1})
	defer s3.Close()
	assertRecovered(t, recovered, gs)

	if _, _, _, err := Open(Options{Dir: t.TempDir(), Codec: "gzip"}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestSnapshotIndexFooter pins the footer layout end to end: a written
// snapshot carries a valid index that the reader resolves (and the
// binary payloads make the file dramatically smaller than text).
func TestSnapshotIndexFooter(t *testing.T) {
	dir := t.TempDir()
	gs := testGraphs(t, 5)
	s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	for _, g := range gs {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snapshotFile(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	index, recEnd, ok := snapIndex(data)
	if !ok {
		t.Fatal("written snapshot has no valid index footer")
	}
	if len(index) != len(gs)*snapIndexEntryLen {
		t.Fatalf("index holds %d entries, want %d", len(index)/snapIndexEntryLen, len(gs))
	}
	// Entries tile the record region exactly.
	var off uint64
	for i := 0; i < len(gs); i++ {
		e := index[i*snapIndexEntryLen:]
		if got := binary.LittleEndian.Uint64(e); got != off {
			t.Fatalf("entry %d offset %d, want %d", i, got, off)
		}
		off += uint64(binary.LittleEndian.Uint32(e[8:]))
	}
	if off != recEnd {
		t.Fatalf("entries cover %d bytes, record region is %d", off, recEnd)
	}
	// Every indexed record parses zero-copy and round-trips its graph.
	for i := 0; i < len(gs); i++ {
		e := index[i*snapIndexEntryLen:]
		ro := binary.LittleEndian.Uint64(e)
		rn := uint64(binary.LittleEndian.Uint32(e[8:]))
		_, kind, payload, err := parseFramedRecord(data[ro : ro+rn])
		if err != nil || kind != recGraph {
			t.Fatalf("record %d: (%s, %v)", i, kind, err)
		}
		digest, _, g, err := decodeGraphPayload(payload, 0, 0)
		if err != nil || digest != gs[i].Digest() || g.Digest() != digest {
			t.Fatalf("record %d decode: digest %016x err %v", i, digest, err)
		}
	}
}

// TestSnapshotFooterDamage corrupts the footer in every way that should
// demote the reader to the sequential scanner — which must still
// recover every intact record.
func TestSnapshotFooterDamage(t *testing.T) {
	seed := func(t *testing.T) (string, []*graph.Graph) {
		dir := t.TempDir()
		gs := testGraphs(t, 4)
		s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		for _, g := range gs {
			if err := s.AppendGraph(g, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, gs
	}

	for _, tc := range []struct {
		name   string
		mangle func(data []byte) []byte
	}{
		{"flipped magic", func(d []byte) []byte { d[len(d)-1] ^= 0x40; return d }},
		{"flipped index byte", func(d []byte) []byte {
			// Damages the index CRC: the reader must not trust any entry.
			idxOff := binary.LittleEndian.Uint64(d[len(d)-snapTrailerLen:])
			d[idxOff] ^= 0x40
			return d
		}},
		{"truncated trailer", func(d []byte) []byte { return d[:len(d)-8] }},
		{"stripped footer", func(d []byte) []byte {
			idxOff := binary.LittleEndian.Uint64(d[len(d)-snapTrailerLen:])
			return d[:idxOff] // a pre-PR 8 footer-less snapshot
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, gs := seed(t)
			path := snapshotFile(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			s, recovered, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
			defer s.Close()
			assertRecovered(t, recovered, gs)
		})
	}
}

// TestSnapshotIndexedQuarantine flips one byte inside one record while
// the footer stays valid: the indexed reader must quarantine exactly
// that record and recover the rest — per-record containment, same as
// the scanner's.
func TestSnapshotIndexedQuarantine(t *testing.T) {
	dir := t.TempDir()
	gs := testGraphs(t, 4)
	s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	for _, g := range gs {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := snapshotFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	index, _, ok := snapIndex(data)
	if !ok {
		t.Fatal("no index footer")
	}
	// Corrupt a payload byte of record 1 (past its header line).
	e := index[1*snapIndexEntryLen:]
	ro := binary.LittleEndian.Uint64(e)
	rec := data[ro : ro+uint64(binary.LittleEndian.Uint32(e[8:]))]
	hEnd := bytes.IndexByte(rec, '\n')
	rec[hEnd+5] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, recovered, stats := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	defer s2.Close()
	assertRecovered(t, recovered, []*graph.Graph{gs[0], gs[2], gs[3]})
	if stats.Quarantined != 1 {
		t.Fatalf("quarantined %d records, want 1", stats.Quarantined)
	}
}
