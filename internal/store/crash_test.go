package store

// The crash-recovery harness of ISSUE 5: interrupt writes at randomized
// byte offsets — truncations and torn (garbage-tail) writes on the log
// and snapshot — restart the store over the damaged dir, and assert the
// recovery contract: every graph whose commit point precedes the damage
// is recovered with a byte-identical digest, and no uncommitted partial
// ever surfaces.

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"qcongest/internal/graph"
)

// copyDir clones a data dir so one committed state can be damaged many
// ways.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue // quarantine/ is not part of committed state
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// activeWAL returns the single log file of dir.
func activeWAL(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "wal-*.qcl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly 1 log in %s, got %v (%v)", dir, files, err)
	}
	return files[0]
}

// buildCommitted appends graphs one at a time, recording the log's size
// after each fsynced commit — the ground-truth commit boundaries the
// torn-write assertions compare against.
func buildCommitted(t *testing.T, dir string, gs []*graph.Graph) (commitEnd []int64) {
	t.Helper()
	s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	for i, g := range gs {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		info, err := os.Stat(activeWAL(t, dir))
		if err != nil {
			t.Fatal(err)
		}
		commitEnd = append(commitEnd, info.Size())
	}
	s.Crash()
	return commitEnd
}

// assertPrefixRecovered opens a damaged dir and asserts exactly the
// graphs committed at or before boundary survive, byte-identical, in
// order.
func assertPrefixRecovered(t *testing.T, dir string, gs []*graph.Graph, commitEnd []int64, boundary int64) {
	t.Helper()
	s, recovered, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	defer s.Close()
	var want []*graph.Graph
	for i, g := range gs {
		if commitEnd[i] <= boundary {
			want = append(want, g)
		}
	}
	assertRecovered(t, recovered, want)
}

// TestStoreCrashRecoveryRandomTruncate truncates the log at randomized
// byte offsets (plus every exact commit boundary) and asserts the
// committed-prefix contract at each.
func TestStoreCrashRecoveryRandomTruncate(t *testing.T) {
	base := t.TempDir()
	gs := testGraphs(t, 8)
	commitEnd := buildCommitted(t, base, gs)
	total := commitEnd[len(commitEnd)-1]

	rng := rand.New(rand.NewSource(1))
	offsets := append([]int64(nil), commitEnd...) // exact boundaries
	offsets = append(offsets, 0)
	for i := 0; i < 24; i++ {
		offsets = append(offsets, rng.Int63n(total+1))
	}
	for _, off := range offsets {
		dir := copyDir(t, base)
		if err := os.Truncate(activeWAL(t, dir), off); err != nil {
			t.Fatal(err)
		}
		assertPrefixRecovered(t, dir, gs, commitEnd, off)
	}
}

// TestStoreCrashRecoveryTornWrite simulates a torn write: the log is
// truncated at a random offset and garbage of random length is written
// after it — the shape a crash mid-pwrite leaves. Only graphs committed
// before the tear may survive, and the reopened store must keep working
// (a fresh append after recovery commits durably past the repaired
// tail).
func TestStoreCrashRecoveryTornWrite(t *testing.T) {
	base := t.TempDir()
	gs := testGraphs(t, 8)
	commitEnd := buildCommitted(t, base, gs)
	total := commitEnd[len(commitEnd)-1]

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 24; i++ {
		off := rng.Int63n(total)
		garbage := make([]byte, 1+rng.Intn(200))
		rng.Read(garbage)
		dir := copyDir(t, base)
		wal := activeWAL(t, dir)
		if err := os.Truncate(wal, off); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(garbage); err != nil {
			t.Fatal(err)
		}
		f.Close()

		s, recovered, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		var want []*graph.Graph
		for j, g := range gs {
			if commitEnd[j] <= off {
				want = append(want, g)
			}
		}
		// Garbage starting exactly at a commit boundary can, with
		// astronomically small probability, frame a valid record; the
		// CRC over random bytes makes that negligible, so the recovered
		// set must be exactly the committed prefix.
		assertRecovered(t, recovered, want)

		// The store must be writable again after tail repair.
		fresh := graph.Star(33 + i)
		if err := s.AppendGraph(fresh, nil); err != nil {
			t.Fatalf("append after torn-tail recovery: %v", err)
		}
		s.Crash()
		s2, recovered2, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		assertRecovered(t, recovered2, append(append([]*graph.Graph(nil), want...), fresh))
		s2.Close()
	}
}

// TestStoreCrashDuringSnapshotPublish simulates crashes at each stage
// of the snapshot→manifest→rotate sequence by reconstructing the
// on-disk states those crash points leave, and asserts no committed
// graph is lost at any of them.
func TestStoreCrashDuringSnapshotPublish(t *testing.T) {
	gs := testGraphs(t, 6)

	// Stage A: crash after the snapshot file is published but before
	// the manifest names it (orphan snapshot + manifest + full log).
	t.Run("orphan snapshot", func(t *testing.T) {
		dir := t.TempDir()
		s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		for _, g := range gs {
			if err := s.AppendGraph(g, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil { // publishes a real manifest
			t.Fatal(err)
		}
		orphan := filepath.Join(dir, "snapshot-00000000000000ff.qcs")
		if err := os.WriteFile(orphan, []byte("half-written snapsho"), 0o644); err != nil {
			t.Fatal(err)
		}
		s2, recovered, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		defer s2.Close()
		assertRecovered(t, recovered, gs)
		if _, err := os.Stat(orphan); !os.IsNotExist(err) {
			t.Fatalf("orphan snapshot not collected: %v", err)
		}
	})

	// Stage A′: the same crash shape before ANY manifest exists. With
	// no manifest an orphan cannot be told apart from a blessed
	// snapshot, so nothing may be deleted — and recovery still serves
	// everything from the log.
	t.Run("orphan snapshot without manifest", func(t *testing.T) {
		dir := t.TempDir()
		buildCommitted(t, dir, gs)
		orphan := filepath.Join(dir, "snapshot-00000000000000ff.qcs")
		if err := os.WriteFile(orphan, []byte("half-written snapsho"), 0o644); err != nil {
			t.Fatal(err)
		}
		s2, recovered, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		defer s2.Close()
		assertRecovered(t, recovered, gs)
		if _, err := os.Stat(orphan); err != nil {
			t.Fatalf("manifest-less boot deleted a snapshot file: %v", err)
		}
	})

	// Stage A″: the manifest itself is corrupt. It must be quarantined
	// — and the snapshot it blessed must NOT be deleted, since it may
	// be the only surviving copy of rotated-away graphs.
	t.Run("corrupt manifest keeps the blessed snapshot", func(t *testing.T) {
		dir := t.TempDir()
		s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		for _, g := range gs {
			if err := s.AppendGraph(g, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.qcs"))
		if len(snaps) != 1 {
			t.Fatalf("want 1 snapshot, got %v", snaps)
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
		s2, _, stats := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		defer s2.Close()
		if stats.Quarantined == 0 {
			t.Fatalf("corrupt manifest not quarantined: %+v", stats)
		}
		if _, err := os.Stat(snaps[0]); err != nil {
			t.Fatalf("corrupt-manifest boot destroyed the blessed snapshot: %v", err)
		}
	})

	// Stage B: crash after the manifest is published but before the log
	// is rotated — the log still holds records the snapshot already
	// covers, which must replay as no-ops (no duplicates).
	t.Run("manifest before rotation", func(t *testing.T) {
		dir := t.TempDir()
		s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		for _, g := range gs {
			if err := s.AppendGraph(g, nil); err != nil {
				t.Fatal(err)
			}
		}
		preRotation, err := os.ReadFile(activeWAL(t, dir))
		if err != nil {
			t.Fatal(err)
		}
		walName := activeWAL(t, dir)
		if err := s.Close(); err != nil { // snapshots + rotates + prunes
			t.Fatal(err)
		}
		// Resurrect the pre-rotation log next to the published manifest.
		if err := os.WriteFile(walName, preRotation, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, recovered, stats := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		defer s2.Close()
		assertRecovered(t, recovered, gs)
		if stats.LogGraphs != 0 {
			t.Fatalf("snapshot-covered records replayed as new graphs: %+v", stats)
		}
	})

	// Stage C: the published snapshot itself is later damaged (storage
	// rot). Recovery quarantines the damage and still boots; graphs
	// beyond the damage are reported missing, not invented.
	t.Run("snapshot rot", func(t *testing.T) {
		dir := t.TempDir()
		s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		for _, g := range gs {
			if err := s.AppendGraph(g, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.qcs"))
		if len(snaps) != 1 {
			t.Fatalf("want 1 snapshot, got %v", snaps)
		}
		raw, err := os.ReadFile(snaps[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(snaps[0], int64(len(raw))/2); err != nil {
			t.Fatal(err)
		}
		s2, recovered, stats := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
		defer s2.Close()
		if len(recovered) >= len(gs) {
			t.Fatalf("recovered %d graphs from a half snapshot", len(recovered))
		}
		for i, rg := range recovered {
			if rg.Digest != gs[i].Digest() {
				t.Fatalf("graph %d digest drifted", i)
			}
		}
		if stats.MissingGraphs == 0 {
			t.Fatal("destroyed snapshot tail reported no missing graphs")
		}
	})
}
