// Package store is the durable graph store behind qcongestd's
// -data-dir flag: a crash-safe on-disk registry of immutable graphs
// that survives process restarts, so a reboot serves every previously
// committed graph — byte-identical digests, and therefore (by the
// API.md determinism contract) byte-identical sketch numerators.
//
// Layout of one data dir:
//
//	LOCK                  flock'd double-boot guard
//	manifest.json         root document: versions, blessed snapshot,
//	                      snapshot sequence, warm-start hints
//	snapshot-<seq>.qcs    framed graph records, registration order
//	wal-<seq>.qcl         append-only log (name = first sequence number
//	                      it may contain)
//	quarantine/           records that failed replay verification
//
// Durability model (DESIGN.md §9): a graph append is committed once its
// framed record (wal.go) is written and fsynced to the active log —
// AppendGraph does not return success before that point. Periodically
// (and at Close) the store folds the log into a snapshot: snapshot file
// and manifest are each published via temp + fsync + atomic rename,
// then the log is rotated and superseded files are deleted. Every
// intermediate crash point recovers: an orphaned snapshot is garbage-
// collected, a not-yet-rotated log replays records the manifest already
// covers as no-ops (sequence numbers at or below SnapshotSeq are
// skipped), and a torn log tail is detected by record checksums and
// truncated. Recovered graphs are digest-verified against their own
// stored metadata; mismatches are quarantined, never served and never
// fatal.
//
// Touch records are the one deliberately lossy artifact: they persist
// query recency and the last sketch parameter tuple (the warm-restart
// hints) through the write buffer without fsync, so heavy read traffic
// does not turn into synchronous log I/O. Losing the tail of them in a
// crash costs warmth, not correctness.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"qcongest/internal/graph"
)

const (
	lockFileName   = "LOCK"
	manifestName   = "manifest.json"
	quarantineName = "quarantine"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Options configure Open.
type Options struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// SnapshotEvery is the number of graph appends between automatic
	// snapshots (default 64; negative disables automatic snapshots —
	// Close still snapshots).
	SnapshotEvery int
	// TouchLogEvery throttles touch records: a graph's recency is
	// logged at most once per this many sequence steps (default 64; the
	// in-memory state always updates, and a changed sketch tuple is
	// always logged).
	TouchLogEvery uint64
	// MaxNodes and MaxEdges bound one recovered graph's parse, checked
	// before allocation (0 = unbounded). Pass the serving limits so a
	// corrupt record cannot balloon recovery memory.
	MaxNodes, MaxEdges int
	// Codec selects the wire form of persisted graph payloads:
	// CodecBinary (the default) or CodecText. Replay always accepts
	// both — the payload bytes identify their own codec — so flipping
	// this between boots is safe.
	Codec string
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 64
	}
	if o.TouchLogEvery == 0 {
		o.TouchLogEvery = 64
	}
	if o.Codec == "" {
		o.Codec = CodecBinary
	}
	return o
}

// graphRec is one resident graph with its persistence metadata.
type graphRec struct {
	g          *graph.Graph
	digest     uint64
	gen        json.RawMessage
	seq        uint64 // append sequence the graph committed at
	lastQuery  uint64 // sequence clock of the most recent query
	lastLogged uint64 // sequence of the last logged touch record
	sketch     *SketchParams
}

// RecoveredGraph is one graph handed back by Open, with its warm-start
// hints.
type RecoveredGraph struct {
	// Graph is the recovered, digest-verified graph.
	Graph *graph.Graph
	// Digest is Graph.Digest(), verified against the stored metadata.
	Digest uint64
	// Gen is the generator spec the graph was created from (nil for raw
	// uploads); opaque JSON owned by the caller's schema.
	Gen json.RawMessage
	// LastQuery is the store's logical clock at the graph's most recent
	// recorded query (0 = never queried); higher means more recent.
	LastQuery uint64
	// Sketch is the most recent sketch parameter tuple recorded for the
	// graph, shape-validated against it (nil when none).
	Sketch *SketchParams
}

// RecoveryStats describes what one Open recovered.
type RecoveryStats struct {
	// SnapshotGraphs counts graphs recovered from the snapshot.
	SnapshotGraphs int
	// LogGraphs counts graphs replayed from the log.
	LogGraphs int
	// Quarantined counts records (or files) that failed verification
	// and were moved aside instead of served or crashed on.
	Quarantined int
	// MissingGraphs counts manifest-declared graphs with no surviving
	// snapshot record.
	MissingGraphs int
	// TornTail reports that a log ended in a torn or corrupt write.
	TornTail bool
	// TornTailBytes is the total size of truncated/quarantined tails.
	TornTailBytes int64
	// Replay is the wall-clock duration of recovery.
	Replay time.Duration
	// LastSeq is the store's sequence clock after recovery.
	LastSeq uint64
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	// Graphs is the resident graph count.
	Graphs int
	// Appends counts committed graph appends this process.
	Appends int64
	// Touches counts recorded queries this process (logged or not).
	Touches int64
	// Snapshots counts snapshots taken this process.
	Snapshots int64
	// WALBytes is the active log's size.
	WALBytes int64
	// SnapshotBytes is the latest snapshot's size.
	SnapshotBytes int64
	// LastSeq is the sequence clock.
	LastSeq uint64
	// LastSnapshotError is the most recent automatic-snapshot failure
	// ("" when healthy); appends keep committing to the log regardless.
	LastSnapshotError string
}

// Store is a durable graph store. All methods are safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options
	lock *os.File

	// snapMu serializes whole snapshot folds end to end; mu is held
	// only to stage and commit a fold, never across its file I/O, so
	// appends and touches keep flowing while a snapshot publishes.
	snapMu sync.Mutex

	mu          sync.Mutex
	closed      bool
	failed      error // sticky log-write failure; refuses further writes
	seq         uint64
	snapshotSeq uint64
	hasManifest bool
	wal         *os.File
	walBuf      *bufio.Writer
	walPath     string
	walBytes    int64
	graphs      []*graphRec
	byDigest    map[uint64]*graphRec

	// Append fsyncs run outside mu so touches and reads flow during
	// them. pendingSyncs counts appends between buffer write and
	// registration; rotating blocks new appends while a fold drains
	// them and swaps the log file; syncCond (on mu) signals both.
	// inFlight maps a digest whose record is written but not yet
	// fsynced to a channel closed at settlement, so a concurrent
	// duplicate append cannot return before the graph is durable.
	syncCond     *sync.Cond
	pendingSyncs int
	rotating     bool
	inFlight     map[uint64]chan struct{}

	// headSeq is the highest committed graph sequence (touch records
	// consume sequence numbers too but are unsynced and excluded from
	// replication, so the replication head tracks graphs only).
	// replNotify is closed and replaced whenever headSeq advances, so
	// /v1/replicate long-polls wake without polling.
	headSeq    uint64
	replNotify chan struct{}

	// epoch is the persisted leadership generation (epoch.go); chain is
	// the running digest chain over committed graph records in
	// ascending-seq order. epochDirty forces the next fold to run even
	// when no graph or hint changed, so SetEpoch's persistence
	// guarantee holds.
	epoch      uint64
	chain      uint64
	epochDirty bool

	appendsSinceSnap int
	hintsDirty       bool // any touch (logged or not) since the last fold
	quarantined      int
	appends          int64
	touches          int64
	snapshots        int64
	snapshotBytes    int64
	lastSnapErr      string
}

// Open locks dir, replays manifest + snapshot + log into memory, and
// returns the store with every recovered graph (registration order) and
// the recovery accounting. Double boots, unwritable directories, and
// paths that are not directories fail with clean errors; corrupt or
// torn persisted state is quarantined or truncated, never fatal.
func Open(opts Options) (*Store, []RecoveredGraph, RecoveryStats, error) {
	var stats RecoveryStats
	if opts.Dir == "" {
		return nil, nil, stats, errors.New("store: Options.Dir is required")
	}
	opts = opts.withDefaults()
	if opts.Codec != CodecBinary && opts.Codec != CodecText {
		return nil, nil, stats, fmt.Errorf("store: unknown codec %q (use %q or %q)", opts.Codec, CodecBinary, CodecText)
	}
	start := time.Now()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("store: creating data dir: %w", err)
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, nil, stats, err
	}
	s := &Store{
		dir:        opts.Dir,
		opts:       opts,
		lock:       lock,
		byDigest:   make(map[uint64]*graphRec),
		inFlight:   make(map[uint64]chan struct{}),
		replNotify: make(chan struct{}),
	}
	s.syncCond = sync.NewCond(&s.mu)
	fail := func(err error) (*Store, []RecoveredGraph, RecoveryStats, error) {
		lock.Close()
		return nil, nil, stats, err
	}

	man, err := s.loadManifest(&stats)
	if err != nil {
		return fail(err)
	}
	if man != nil {
		s.loadSnapshot(man, &stats)
		s.seq = man.SnapshotSeq
		s.snapshotSeq = man.SnapshotSeq
		s.epoch = man.Epoch
		s.hasManifest = true
	}
	if err := s.replayLogs(&stats); err != nil {
		return fail(err)
	}
	// Recovery registers near-sorted (snapshot order, then log replay);
	// the chain is defined over strict ascending sequence, so rebuild it
	// once from the settled resident set.
	s.recomputeChain()
	s.removeOrphans(man)
	if err := s.openActiveLog(); err != nil {
		return fail(err)
	}

	recovered := make([]RecoveredGraph, len(s.graphs))
	for i, r := range s.graphs {
		recovered[i] = RecoveredGraph{
			Graph:     r.g,
			Digest:    r.digest,
			Gen:       r.gen,
			LastQuery: r.lastQuery,
			Sketch:    r.sketch.clone(),
		}
	}
	stats.Replay = time.Since(start)
	stats.LastSeq = s.seq
	return s, recovered, stats, nil
}

// loadManifest reads and validates manifest.json. Only a missing file
// means "no manifest"; any other read failure aborts Open — a manifest
// that exists but cannot be read must never be mistaken for an absent
// one, because booting without it would re-bless a manifest covering
// only the log's graphs and let the next fold prune the old snapshot,
// silently destroying everything it held. Unparseable *content* is
// different: the bytes are in hand, so they are quarantined and
// recovery proceeds (with the blessed snapshot file left untouched on
// disk for the operator).
func (s *Store) loadManifest(stats *RecoveryStats) (*manifest, error) {
	path := filepath.Join(s.dir, manifestName)
	// Bound the read before allocating: a replaced multi-gigabyte
	// manifest must be moved aside (a rename, no read), not slurped.
	if info, err := os.Stat(path); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	} else if info.Size() > maxManifestBytes {
		s.quarantined++
		qdir := filepath.Join(s.dir, quarantineName)
		if os.MkdirAll(qdir, 0o755) == nil {
			_ = os.Rename(path, filepath.Join(qdir, fmt.Sprintf("%03d-manifest-oversize", s.quarantined)))
		}
		stats.Quarantined++
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	man, perr := parseManifest(raw)
	if perr != nil {
		s.quarantine("manifest", raw, perr)
		stats.Quarantined++
		return nil, nil
	}
	return man, nil
}

// loadSnapshot registers the snapshot's digest-verified graphs that the
// manifest blesses, attaching the manifest's warm-start hints.
func (s *Store) loadSnapshot(man *manifest, stats *RecoveryStats) {
	if man.Snapshot == "" {
		return
	}
	blessed := make(map[uint64]*manifestGraph, len(man.Graphs))
	for i := range man.Graphs {
		mg := &man.Graphs[i]
		if d, err := parseDigest(mg.Digest); err == nil { // validated by parseManifest
			blessed[d] = mg
		}
	}
	recs, failures := readSnapshot(filepath.Join(s.dir, man.Snapshot), s.opts.MaxNodes, s.opts.MaxEdges)
	for _, f := range failures {
		s.quarantine(f.name, f.raw, f.err)
		stats.Quarantined++
	}
	ordinal := uint64(0)
	for _, r := range recs {
		mg, ok := blessed[r.digest]
		if !ok {
			s.quarantine("snapshot-unblessed-"+formatDigest(r.digest), nil,
				fmt.Errorf("store: snapshot graph %s is not in the manifest", formatDigest(r.digest)))
			stats.Quarantined++
			continue
		}
		if _, dup := s.byDigest[r.digest]; dup {
			continue
		}
		ordinal++
		if mg.Seq != 0 {
			// The manifest's blessing carries the original append
			// sequence, which is the replication cursor identity.
			r.seq = mg.Seq
		} else if r.seq == 0 {
			// Pre-PR 9 manifest: original sequences are gone. Synthesize
			// ascending ordinals — each append consumed a sequence step,
			// so ordinal <= SnapshotSeq and a fresh replica (cursor 0)
			// still receives every graph; the first fold under this build
			// re-blesses the synthetic values as real ones.
			r.seq = ordinal
		}
		r.lastQuery = mg.LastQuery
		if validateSketchShape(mg.Sketch, r.g.N()) == nil {
			r.sketch = mg.Sketch.clone()
		}
		s.register(r)
		stats.SnapshotGraphs++
	}
	for d := range blessed {
		if _, ok := s.byDigest[d]; !ok {
			stats.MissingGraphs++
		}
	}
}

// replayLogs scans every log file in sequence order, applying records
// newer than the snapshot. A torn tail on the active (last) log is
// truncated so appends resume at a clean boundary; a tear in an older
// log quarantines the unreadable remainder and replay continues with
// the next file.
func (s *Store) replayLogs(stats *RecoveryStats) error {
	files, err := s.walFiles()
	if err != nil {
		return err
	}
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("store: opening log %s: %w", path, err)
		}
		res, scanErr := scanRecords(f, func(seq uint64, kind string, payload []byte) error {
			if seq > s.seq {
				s.seq = seq
			}
			if seq <= s.snapshotSeq {
				return nil // already folded into the snapshot
			}
			s.applyRecord(seq, kind, payload, stats)
			return nil
		})
		f.Close()
		if scanErr != nil {
			return scanErr
		}
		if !res.torn {
			continue
		}
		stats.TornTail = true
		if info, err := os.Stat(path); err == nil {
			stats.TornTailBytes += info.Size() - res.good
		}
		if i < len(files)-1 {
			// A tear in a non-active log is corruption, not a crash
			// artifact; keep a copy before repairing it.
			s.quarantineFileTail(path, res.good, res.tornErr)
			stats.Quarantined++
		}
		// Repair in place so the tear is handled exactly once — the
		// active log must append after a clean boundary, and an older
		// log must not re-quarantine the same tail on every boot.
		if err := os.Truncate(path, res.good); err != nil {
			return fmt.Errorf("store: truncating torn log tail of %s: %w", path, err)
		}
	}
	return nil
}

// applyRecord replays one committed log record; verification failures
// quarantine the record and continue.
func (s *Store) applyRecord(seq uint64, kind string, payload []byte, stats *RecoveryStats) {
	name := fmt.Sprintf("log-rec-%d", seq)
	switch kind {
	case recGraph:
		digest, gen, g, err := decodeGraphPayload(payload, s.opts.MaxNodes, s.opts.MaxEdges)
		if err != nil {
			s.quarantine(name, payload, err)
			stats.Quarantined++
			return
		}
		if _, dup := s.byDigest[digest]; dup {
			return
		}
		s.register(&graphRec{g: g, digest: digest, gen: gen, seq: seq})
		stats.LogGraphs++
	case recTouch:
		digest, sk, err := decodeTouchPayload(payload)
		if err != nil {
			s.quarantine(name, payload, err)
			stats.Quarantined++
			return
		}
		r, ok := s.byDigest[digest]
		if !ok {
			return // recency hint for a graph that no longer exists
		}
		r.lastQuery = seq
		if sk != nil && validateSketchShape(sk, r.g.N()) == nil {
			r.sketch = sk.clone()
		}
	}
}

// register adds a committed graph to the resident set and advances the
// replication head, waking any /v1/replicate long-polls. Called with mu
// held.
func (s *Store) register(r *graphRec) {
	s.graphs = append(s.graphs, r)
	s.byDigest[r.digest] = r
	if r.seq > s.headSeq {
		s.chain = chainMix(s.chain, r.seq, r.digest)
		s.headSeq = r.seq
		close(s.replNotify)
		s.replNotify = make(chan struct{})
	} else {
		// Out-of-order registration (only recovery replay can do this):
		// the incremental fold would misorder, so rebuild from sorted.
		s.recomputeChain()
	}
}

// removeOrphans garbage-collects snapshot files a crash left
// unpublished (present on disk but not blessed by the manifest). With
// no readable manifest nothing can be told apart from a blessed
// snapshot, so nothing is deleted: a quarantined-manifest boot must
// never destroy the one file an operator could still recover graphs
// from. Leftovers are pruned by the next successful snapshot.
func (s *Store) removeOrphans(man *manifest) {
	if man == nil {
		return
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".qcs") {
			continue
		}
		if name == man.Snapshot {
			continue
		}
		os.Remove(filepath.Join(s.dir, name))
	}
}

// walFiles lists the log files in sequence order.
func (s *Store) walFiles() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading data dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".qcl") {
			names = append(names, name)
		}
	}
	sort.Strings(names) // zero-padded hex sorts by sequence
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(s.dir, n)
	}
	return paths, nil
}

func (s *Store) walPathFor(firstSeq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%016x.qcl", firstSeq))
}

// openActiveLog appends to the newest log (post-truncation) or creates
// the first one.
func (s *Store) openActiveLog() error {
	files, err := s.walFiles()
	if err != nil {
		return err
	}
	path := s.walPathFor(s.seq + 1)
	if len(files) > 0 {
		path = files[len(files)-1]
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening log %s: %w", path, err)
	}
	if len(files) == 0 {
		if err := syncDir(s.dir); err != nil {
			f.Close()
			return err
		}
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: sizing log %s: %w", path, err)
	}
	s.wal, s.walBuf, s.walPath, s.walBytes = f, bufio.NewWriterSize(f, 1<<16), path, info.Size()
	return nil
}

// AppendGraph durably commits g (idempotent on digest): when it returns
// nil, the graph's record is on disk and fsynced, and a crash at any
// later byte boundary recovers it. gen, when non-nil, is the opaque
// generator spec persisted alongside (replayed back via
// RecoveredGraph.Gen).
func (s *Store) AppendGraph(g *graph.Graph, gen json.RawMessage) error {
	digest := g.Digest()
	payload, err := encodeGraphPayload(digest, gen, g, s.opts.Codec)
	if err != nil {
		return err
	}

	// Phase 1 (under mu, cheap): reserve a sequence number and write
	// the framed record into the log buffer.
	s.mu.Lock()
	for {
		switch {
		case s.closed:
			s.mu.Unlock()
			return ErrClosed
		case s.failed != nil:
			err := fmt.Errorf("store: log writes disabled after earlier failure: %w", s.failed)
			s.mu.Unlock()
			return err
		}
		if _, ok := s.byDigest[digest]; ok {
			s.mu.Unlock()
			return nil
		}
		if ch, ok := s.inFlight[digest]; ok {
			// A concurrent append of this digest is mid-fsync. Wait for
			// it to settle, then re-evaluate: AppendGraph must not
			// return before the graph is durable.
			s.mu.Unlock()
			<-ch
			s.mu.Lock()
			continue
		}
		if s.rotating {
			// A fold is swapping the log file; park until it finishes
			// so this record lands in the file its sequence belongs to.
			s.syncCond.Wait()
			continue
		}
		break
	}
	s.seq++
	seq := s.seq
	n, err := appendRecord(s.walBuf, seq, recGraph, payload)
	if err == nil {
		err = s.walBuf.Flush()
	}
	if err != nil {
		// The log tail is now indeterminate; refuse further writes so a
		// later append cannot land after a torn record and be lost to
		// recovery's tail truncation.
		s.failed = fmt.Errorf("store: appending graph %s: %w", formatDigest(digest), err)
		s.mu.Unlock()
		return s.failed
	}
	s.walBytes += n
	ch := make(chan struct{})
	s.inFlight[digest] = ch
	s.pendingSyncs++
	wal := s.wal
	s.mu.Unlock()

	// Phase 2 (no mu): the fsync — the slow part. Touches and reads
	// flow freely while it runs; rotation is held off by pendingSyncs.
	syncErr := wal.Sync()

	// Phase 3 (under mu): settle — register on success, poison on
	// failure — and release duplicate waiters and any waiting fold.
	s.mu.Lock()
	s.pendingSyncs--
	delete(s.inFlight, digest)
	needSnap := false
	if syncErr != nil {
		s.failed = fmt.Errorf("store: appending graph %s: %w", formatDigest(digest), syncErr)
	} else {
		s.register(&graphRec{g: g, digest: digest, gen: append(json.RawMessage(nil), gen...), seq: seq})
		s.appends++
		s.appendsSinceSnap++
		needSnap = s.opts.SnapshotEvery > 0 && s.appendsSinceSnap >= s.opts.SnapshotEvery
	}
	failed := s.failed
	s.syncCond.Broadcast()
	s.mu.Unlock()
	close(ch)

	if syncErr != nil {
		return failed
	}
	if needSnap {
		// The fold runs outside the store mutex (Snapshot holds it only
		// to stage and commit), so this append pays some snapshot
		// latency but concurrent reads and appends keep flowing. The
		// append itself is already durable in the log; a snapshot
		// failure surfaces through Stats instead of failing the put.
		if err := s.Snapshot(); err != nil {
			s.mu.Lock()
			s.lastSnapErr = err.Error()
			s.mu.Unlock()
		}
	}
	return nil
}

// Touch records a query against digest for warm-restart ranking, with
// the sketch parameter tuple when the query was a sketch. Touches are
// best-effort: in-memory recency always updates, and a throttled
// fraction is appended to the log without fsync.
func (s *Store) Touch(digest uint64, sk *SketchParams) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.failed != nil {
		return
	}
	r, ok := s.byDigest[digest]
	if !ok {
		return
	}
	s.seq++
	s.touches++
	s.hintsDirty = true
	r.lastQuery = s.seq
	sketchChanged := false
	if sk != nil && validateSketchShape(sk, r.g.N()) == nil && !sketchEqual(sk, r.sketch) {
		r.sketch = sk.clone()
		sketchChanged = true
	}
	if !sketchChanged && r.lastLogged != 0 && s.seq-r.lastLogged < s.opts.TouchLogEvery {
		return
	}
	payload, err := encodeTouchPayload(digest, r.sketch)
	if err != nil {
		return
	}
	n, err := appendRecord(s.walBuf, s.seq, recTouch, payload)
	if err != nil {
		s.failed = fmt.Errorf("store: appending touch: %w", err)
		return
	}
	s.walBytes += n
	r.lastLogged = s.seq
}

func sketchEqual(a, b *SketchParams) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.L != b.L || a.K != b.K || a.EpsT != b.EpsT || len(a.Sources) != len(b.Sources) {
		return false
	}
	for i, v := range a.Sources {
		if v != b.Sources[i] {
			return false
		}
	}
	return true
}

// snapJob is one staged fold: everything publish needs without the
// store mutex. recs is a copy of the graph list whose publish-time
// reads touch only immutable fields (g, digest, gen); the mutable
// warm-start hints are value-copied into manGraphs at stage time.
type snapJob struct {
	seq           uint64
	epoch         uint64
	name          string
	recs          []*graphRec
	manGraphs     []manifestGraph
	stagedAppends int
	bodyBytes     int64
}

// Snapshot folds the log into a freshly published snapshot + manifest
// and rotates the log. Safe to call at any time; a no-op when nothing
// changed since the last fold. Folds are serialized with each other,
// but the store mutex is held only to stage and to commit — appends,
// touches, and reads proceed while the fold's file I/O runs.
func (s *Store) Snapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	job, err := s.stageSnapshot()
	if job == nil || err != nil {
		return err
	}
	pubErr := s.publishSnapshot(job)
	s.commitSnapshot(job, pubErr)
	return pubErr
}

// stageSnapshot rotates the log and captures a consistent fold input
// under the store mutex. Rotating first is what makes the unlocked
// publish safe: every append after this point lands in the new log
// (sequence numbers above job.seq), so the files the commit deletes
// hold only records the published snapshot covers.
func (s *Store) stageSnapshot() (*snapJob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Quiesce in-flight append fsyncs before capturing the fold: their
	// records are in the current log with sequence numbers at or below
	// the fold's, so rotating under them would let the commit prune a
	// file still owed an fsync — and the snapshot must include every
	// graph those appends are about to register. The rotating flag
	// holds new appends off (they park on syncCond) so a steady upload
	// stream cannot starve the fold.
	s.rotating = true
	defer func() {
		s.rotating = false
		s.syncCond.Broadcast()
	}()
	for s.pendingSyncs > 0 && !s.closed {
		s.syncCond.Wait()
	}
	if s.closed {
		return nil, ErrClosed
	}
	if s.failed != nil {
		return nil, fmt.Errorf("store: log writes disabled after earlier failure: %w", s.failed)
	}
	if s.hasManifest && s.appendsSinceSnap == 0 && !s.hintsDirty && !s.epochDirty {
		return nil, nil
	}
	if err := s.walBuf.Flush(); err != nil {
		s.failed = err
		return nil, fmt.Errorf("store: flushing log before snapshot: %w", err)
	}
	job := &snapJob{
		seq:           s.seq,
		epoch:         s.epoch,
		name:          fmt.Sprintf("snapshot-%016x.qcs", s.seq),
		recs:          append([]*graphRec(nil), s.graphs...),
		manGraphs:     make([]manifestGraph, len(s.graphs)),
		stagedAppends: s.appendsSinceSnap,
	}
	for i, r := range s.graphs {
		// Touch never mutates a published *SketchParams (it swaps in a
		// fresh clone), so stashing the pointer here is race-free.
		job.manGraphs[i] = manifestGraph{
			Digest:    formatDigest(r.digest),
			N:         r.g.N(),
			M:         r.g.M(),
			Gen:       r.gen,
			Seq:       r.seq,
			LastQuery: r.lastQuery,
			Sketch:    r.sketch,
		}
	}
	// Cleared before rotateLog's unlocked window: a touch landing in
	// that window re-dirties the hints and is caught by the next fold.
	// A publish failure re-dirties both in commitSnapshot.
	s.hintsDirty = false
	s.epochDirty = false
	if err := s.rotateLog(job.seq); err != nil {
		return nil, err
	}
	return job, nil
}

// publishSnapshot writes and atomically renames the snapshot and the
// manifest. No store mutex is held; the job carries everything needed.
func (s *Store) publishSnapshot(job *snapJob) error {
	body, err := encodeSnapshot(job.recs, s.opts.Codec)
	if err != nil {
		return err
	}
	job.bodyBytes = int64(len(body))
	if err := writeFileAtomic(filepath.Join(s.dir, job.name), body); err != nil {
		return err
	}
	man := manifest{
		FormatVersion: storeFormatVersion,
		CodecVersion:  graph.EdgeListVersion,
		SnapshotSeq:   job.seq,
		Epoch:         job.epoch,
		Snapshot:      job.name,
		Graphs:        job.manGraphs,
	}
	manRaw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	return writeFileAtomic(filepath.Join(s.dir, manifestName), manRaw)
}

// commitSnapshot records the fold's outcome and prunes superseded
// files. On failure nothing on disk needs undoing — the old manifest
// still blesses the old snapshot, the early-rotated logs replay — so
// the commit just re-arms the fold triggers.
func (s *Store) commitSnapshot(job *snapJob, pubErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pubErr != nil {
		s.lastSnapErr = pubErr.Error()
		s.hintsDirty = true
		s.epochDirty = true
		return
	}
	s.hasManifest = true
	s.snapshotSeq = job.seq
	s.snapshotBytes = job.bodyBytes
	s.snapshots++
	s.appendsSinceSnap -= job.stagedAppends
	s.lastSnapErr = ""
	s.removeSuperseded(job.name)
}

// rotateLog starts a fresh log for records after snapSeq. Called with
// the store mutex held and the rotating flag set; the file creation
// and directory fsync run with the mutex dropped — appends stay parked
// on the flag, while touches may still buffer into the old log during
// the window and be pruned with it (bounded loss of lossy hints).
func (s *Store) rotateLog(snapSeq uint64) error {
	newPath := s.walPathFor(snapSeq + 1)
	if newPath == s.walPath {
		return nil // snapshot of an empty log; keep appending to it
	}
	s.mu.Unlock()
	f, err := os.OpenFile(newPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	var dirErr error
	if err == nil {
		dirErr = syncDir(s.dir)
	}
	s.mu.Lock()
	if err != nil {
		return fmt.Errorf("store: rotating log to %s: %w", newPath, err)
	}
	if dirErr != nil {
		f.Close()
		return dirErr
	}
	if s.closed {
		f.Close()
		return ErrClosed
	}
	_ = s.walBuf.Flush() // window-buffered touches belong to the old file
	s.wal.Close()
	s.wal, s.walBuf, s.walPath, s.walBytes = f, bufio.NewWriterSize(f, 1<<16), newPath, 0
	return nil
}

// removeSuperseded deletes logs and snapshots the just-published
// snapshot makes redundant. Best-effort: leftovers are re-collected by
// the next snapshot or by Open.
func (s *Store) removeSuperseded(keepSnapshot string) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(s.dir, name)
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".qcl") && path != s.walPath:
			os.Remove(path)
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".qcs") && name != keepSnapshot:
			os.Remove(path)
		}
	}
	_ = syncDir(s.dir)
}

// quarantine moves a failed artifact aside (best-effort) so operators
// can inspect what recovery refused to serve.
func (s *Store) quarantine(name string, raw []byte, reason error) {
	s.quarantined++
	qdir := filepath.Join(s.dir, quarantineName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	body := append([]byte(fmt.Sprintf("# quarantined: %v\n", reason)), raw...)
	_ = os.WriteFile(filepath.Join(qdir, fmt.Sprintf("%03d-%s", s.quarantined, name)), body, 0o644)
}

// quarantineFileTail preserves the unreadable remainder of a log file.
func (s *Store) quarantineFileTail(path string, from int64, reason error) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return
	}
	tail, err := io.ReadAll(io.LimitReader(f, maxRecordBytes))
	if err != nil {
		return
	}
	s.quarantine(filepath.Base(path)+"-tail", tail, reason)
}

// Stats returns the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Graphs:            len(s.graphs),
		Appends:           s.appends,
		Touches:           s.touches,
		Snapshots:         s.snapshots,
		WALBytes:          s.walBytes,
		SnapshotBytes:     s.snapshotBytes,
		LastSeq:           s.seq,
		LastSnapshotError: s.lastSnapErr,
	}
}

// Close snapshots (persisting the latest warm-start hints, including
// in-memory-only recency of throttled touches), releases the lock, and
// closes the store. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	failed := s.failed
	s.mu.Unlock()

	// The final fold runs outside the store mutex like any other;
	// snapMu serializes it against an in-flight automatic one.
	var err error
	if failed == nil {
		err = s.Snapshot()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Let in-flight append fsyncs settle before closing the file out
	// from under them.
	for s.pendingSyncs > 0 {
		s.syncCond.Wait()
	}
	if s.closed {
		return err
	}
	if ferr := s.walBuf.Flush(); err == nil && ferr != nil {
		err = ferr
	}
	s.wal.Close()
	s.lock.Close()
	s.closed = true
	s.syncCond.Broadcast()
	return err
}

// Crash is a test hook simulating SIGKILL: it closes the store without
// flushing the write buffer or snapshotting, so only state already
// handed to the operating system survives — exactly the durability a
// killed process has.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.wal.Close()
	s.lock.Close()
	s.syncCond.Broadcast() // wake parked appenders to observe closed
}
