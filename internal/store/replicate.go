package store

// Replication: the WAL framing (wal.go) doubles as the wire format for
// shipping a leader's committed graphs to follower replicas. The stream
// for a cursor `from` is every resident graph with seq > from, re-framed
// with appendRecord at its original append sequence — re-encoding from
// memory rather than tailing files means a fold can prune old logs
// without breaking replicas that are arbitrarily far behind, and the
// snapshot's preserved per-graph seqs (snapshot.go) keep the cursor
// identity stable across leader restarts.
//
// Touch records never enter the stream. They are deliberately unsynced
// (store.go), so a leader crash can lose a logged tail of them and
// restart with its sequence clock rewound below numbers a follower
// already saw — if touches were replicated, the leader would then mint
// *graph* records at sequence numbers the follower skips as duplicates,
// silently diverging the replica set. Graph records are fsynced before
// registration, so a sequence number the stream has carried for a graph
// can never be reissued, and gaps in the follower's view (the touch
// seqs) are expected and harmless.
//
// The apply side (ApplyReplicated) holds followers to exactly the crash
// replay bar: a record enters the follower's store only after its CRC
// survived the frame scan and its payload's recomputed digest matched
// the stored one, and it is fsynced locally before it is visible — a
// follower's 200s are durability receipts just like a leader's.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"qcongest/internal/graph"
)

// RecordGraph is the replicable record kind, re-exported so stream
// consumers outside the package can filter frames without guessing at
// the on-disk vocabulary.
const RecordGraph = recGraph

// ErrStaleRecord reports an ApplyReplicated sequence at or below the
// follower's clock: the caller's cursor tracking let a duplicate
// through, and applying it would re-sequence committed history.
var ErrStaleRecord = errors.New("store: replicated record at or below local sequence clock")

// ScanOutcome reports how a replication stream scan ended.
type ScanOutcome struct {
	// Good is the byte length of the intact record prefix.
	Good int64
	// Torn reports trailing bytes that do not frame an intact record
	// (truncated transfer or corruption); everything before them was
	// delivered to the callback.
	Torn bool
	// TornErr describes the tear (nil when Torn is false).
	TornErr error
}

// ScanStream streams the intact record prefix of r to fn — the exported
// face of the WAL scanner for replication consumers. A malformed or
// checksum-failing frame ends the scan as a torn tail (reported, not an
// error); fn errors abort the scan and are returned verbatim.
func ScanStream(r io.Reader, fn func(seq uint64, kind string, payload []byte) error) (ScanOutcome, error) {
	res, err := scanRecords(r, fn)
	return ScanOutcome{Good: res.good, Torn: res.torn, TornErr: res.tornErr}, err
}

// DecodeGraphRecord decodes and digest-verifies one graph record
// payload without touching disk — the apply path for in-memory
// followers (no -data-dir), and the shared verification step behind
// ApplyReplicated. maxNodes/maxEdges bound the parse (0 = unbounded).
func DecodeGraphRecord(payload []byte, maxNodes, maxEdges int) (digest uint64, gen json.RawMessage, g *graph.Graph, err error) {
	return decodeGraphPayload(payload, maxNodes, maxEdges)
}

// ReplicationHead returns the highest committed graph sequence — what a
// caught-up follower's cursor converges to.
func (s *Store) ReplicationHead() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.headSeq
}

// SeqNotify returns a channel closed the next time the replication head
// advances. Callers re-arm by calling again; check ReplicationHead
// after (not before) grabbing the channel to avoid missing a wakeup.
func (s *Store) SeqNotify() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replNotify
}

// ReplicationStream writes every committed graph with sequence above
// from to w as framed records in ascending sequence order, returning
// the last sequence written and the head at capture time. Only
// registered graphs stream — registration happens strictly after the
// record's fsync settles, so the stream can never ship a record a
// leader crash could still take back. The capture is a consistent cut
// under the store mutex; encoding and writing run unlocked (graph
// payload fields are immutable once registered).
func (s *Store) ReplicationStream(from uint64, w io.Writer) (last, head uint64, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, 0, ErrClosed
	}
	head = s.headSeq
	codec := s.opts.Codec
	var recs []*graphRec
	for _, r := range s.graphs {
		if r.seq > from {
			recs = append(recs, r)
		}
	}
	s.mu.Unlock()

	// Registration order is ascending-seq in steady state, but a mixed
	// recovery (synthesized legacy ordinals + log replay) is only
	// near-sorted; the wire contract is strict ascending.
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	last = from
	for _, r := range recs {
		payload, perr := encodeGraphPayload(r.digest, r.gen, r.g, codec)
		if perr != nil {
			return last, head, perr
		}
		if _, werr := appendRecord(w, r.seq, recGraph, payload); werr != nil {
			return last, head, fmt.Errorf("store: writing replication stream: %w", werr)
		}
		last = r.seq
	}
	return last, head, nil
}

// ApplyReplicated commits one leader-framed graph record at its leader
// sequence: decode + digest-verify (identical to crash replay), append
// to the local log, fsync, register. Idempotent on digest — re-shipping
// a graph the follower already holds returns it and advances the clock
// without writing. A sequence at or below the local clock for a new
// digest is refused with ErrStaleRecord. On success the returned graph
// is durable exactly as if AppendGraph had committed it.
func (s *Store) ApplyReplicated(seq uint64, payload []byte) (*graph.Graph, json.RawMessage, error) {
	digest, gen, g, err := decodeGraphPayload(payload, s.opts.MaxNodes, s.opts.MaxEdges)
	if err != nil {
		return nil, nil, err
	}

	// Phase 1 (under mu): clock checks and the buffered record write —
	// the same shape as AppendGraph, minus duplicate-append arbitration
	// (one follower loop is the only ApplyReplicated caller).
	s.mu.Lock()
	for {
		switch {
		case s.closed:
			s.mu.Unlock()
			return nil, nil, ErrClosed
		case s.failed != nil:
			err := fmt.Errorf("store: log writes disabled after earlier failure: %w", s.failed)
			s.mu.Unlock()
			return nil, nil, err
		}
		if r, ok := s.byDigest[digest]; ok {
			if seq > s.seq {
				s.seq = seq // keep pace with the leader's clock
			}
			g, gen := r.g, r.gen
			s.mu.Unlock()
			return g, gen, nil
		}
		if seq <= s.seq {
			at := s.seq
			s.mu.Unlock()
			return nil, nil, fmt.Errorf("%w: record %d, clock %d", ErrStaleRecord, seq, at)
		}
		if s.rotating {
			s.syncCond.Wait()
			continue
		}
		break
	}
	n, err := appendRecord(s.walBuf, seq, recGraph, payload)
	if err == nil {
		err = s.walBuf.Flush()
	}
	if err != nil {
		s.failed = fmt.Errorf("store: applying replicated graph %s: %w", formatDigest(digest), err)
		failed := s.failed
		s.mu.Unlock()
		return nil, nil, failed
	}
	s.walBytes += n
	s.seq = seq
	s.pendingSyncs++
	wal := s.wal
	s.mu.Unlock()

	// Phase 2 (no mu): the fsync.
	syncErr := wal.Sync()

	// Phase 3 (under mu): settle.
	s.mu.Lock()
	s.pendingSyncs--
	needSnap := false
	if syncErr != nil {
		s.failed = fmt.Errorf("store: applying replicated graph %s: %w", formatDigest(digest), syncErr)
	} else {
		s.register(&graphRec{g: g, digest: digest, gen: append(json.RawMessage(nil), gen...), seq: seq})
		s.appends++
		s.appendsSinceSnap++
		needSnap = s.opts.SnapshotEvery > 0 && s.appendsSinceSnap >= s.opts.SnapshotEvery
	}
	failed := s.failed
	s.syncCond.Broadcast()
	s.mu.Unlock()

	if syncErr != nil {
		return nil, nil, failed
	}
	if needSnap {
		if err := s.Snapshot(); err != nil {
			s.mu.Lock()
			s.lastSnapErr = err.Error()
			s.mu.Unlock()
		}
	}
	return g, gen, nil
}
