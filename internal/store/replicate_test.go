package store

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// applyStream feeds every frame of stream through dst.ApplyReplicated,
// returning the applied sequence numbers.
func applyStream(t *testing.T, dst *Store, stream []byte) []uint64 {
	t.Helper()
	var seqs []uint64
	outcome, err := ScanStream(bytes.NewReader(stream), func(seq uint64, kind string, payload []byte) error {
		if kind != RecordGraph {
			t.Fatalf("replication stream carried a %q record", kind)
		}
		if _, _, err := dst.ApplyReplicated(seq, payload); err != nil {
			return err
		}
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if outcome.Torn {
		t.Fatalf("leader-produced stream reported torn: %v", outcome.TornErr)
	}
	return seqs
}

func digestSet(s *Store) map[uint64]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]uint64, len(s.graphs))
	for _, r := range s.graphs {
		out[r.digest] = r.seq
	}
	return out
}

// TestReplicationStreamRoundTrip ships a leader's committed graphs —
// with touch traffic interleaved — to a fresh follower store and
// asserts the follower converges to the leader's exact seq/digest set,
// durably (it all survives a follower reopen).
func TestReplicationStreamRoundTrip(t *testing.T) {
	leader, _, _ := mustOpen(t, Options{Dir: t.TempDir()})
	defer leader.Close()
	gs := testGraphs(t, 5)
	gen := json.RawMessage(`{"kind":"path","n":9}`)
	for i, g := range gs {
		var meta json.RawMessage
		if i == 1 {
			meta = gen
		}
		if err := leader.AppendGraph(g, meta); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		leader.Touch(g.Digest(), nil) // consumes seqs; must not replicate
	}

	var stream bytes.Buffer
	last, head, err := leader.ReplicationStream(0, &stream)
	if err != nil {
		t.Fatalf("ReplicationStream: %v", err)
	}
	if head != leader.ReplicationHead() || last != head {
		t.Fatalf("stream reported last=%d head=%d, store head %d", last, head, leader.ReplicationHead())
	}

	fdir := t.TempDir()
	follower, _, _ := mustOpen(t, Options{Dir: fdir})
	seqs := applyStream(t, follower, stream.Bytes())
	if len(seqs) != len(gs) {
		t.Fatalf("applied %d records, want %d graphs", len(seqs), len(gs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("stream seqs not ascending: %v", seqs)
		}
	}
	if got, want := digestSet(follower), digestSet(leader); len(got) != len(want) {
		t.Fatalf("follower has %d graphs, leader %d", len(got), len(want))
	} else {
		for d, seq := range want {
			if got[d] != seq {
				t.Fatalf("digest %016x: follower seq %d, leader seq %d", d, got[d], seq)
			}
		}
	}
	if follower.ReplicationHead() != leader.ReplicationHead() {
		t.Fatalf("follower head %d != leader head %d", follower.ReplicationHead(), leader.ReplicationHead())
	}

	// A caught-up cursor gets an empty stream.
	var again bytes.Buffer
	if last, _, err := leader.ReplicationStream(head, &again); err != nil || again.Len() != 0 || last != head {
		t.Fatalf("caught-up stream: last=%d len=%d err=%v", last, again.Len(), err)
	}

	// The applied records are durable: a reopen recovers the same set
	// at the same leader sequences.
	wantSet := digestSet(follower)
	if err := follower.Close(); err != nil {
		t.Fatalf("follower close: %v", err)
	}
	re, recovered, _ := mustOpen(t, Options{Dir: fdir})
	defer re.Close()
	if len(recovered) != len(gs) {
		t.Fatalf("follower reopen recovered %d graphs, want %d", len(recovered), len(gs))
	}
	if got := digestSet(re); len(got) != len(wantSet) {
		t.Fatalf("reopen digest set size %d != %d", len(got), len(wantSet))
	} else {
		for d, seq := range wantSet {
			if got[d] != seq {
				t.Fatalf("reopen digest %016x at seq %d, want %d", d, got[d], seq)
			}
		}
	}
}

// TestReplicationStreamSurvivesFold proves a snapshot fold does not
// break replicas behind the fold point: original append sequences are
// preserved through the snapshot, so a cursor below SnapshotSeq is
// served exactly the missing suffix.
func TestReplicationStreamSurvivesFold(t *testing.T) {
	dir := t.TempDir()
	leader, _, _ := mustOpen(t, Options{Dir: dir})
	gs := testGraphs(t, 6)
	for _, g := range gs[:3] {
		if err := leader.AppendGraph(g, nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	cursor := leader.ReplicationHead() // a replica synced to here

	if err := leader.Snapshot(); err != nil {
		t.Fatalf("fold: %v", err)
	}
	for _, g := range gs[3:] {
		if err := leader.AppendGraph(g, nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}

	// Restart the leader so the stream is served from snapshot-recovered
	// state, not live memory of the original appends.
	if err := leader.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	leader, _, _ = mustOpen(t, Options{Dir: dir})
	defer leader.Close()

	var suffix bytes.Buffer
	if _, _, err := leader.ReplicationStream(cursor, &suffix); err != nil {
		t.Fatalf("suffix stream: %v", err)
	}
	var got []uint64
	if _, err := ScanStream(bytes.NewReader(suffix.Bytes()), func(seq uint64, kind string, payload []byte) error {
		got = append(got, seq)
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(got) != len(gs)-3 {
		t.Fatalf("suffix carried %d records, want %d", len(got), len(gs)-3)
	}
	for _, seq := range got {
		if seq <= cursor {
			t.Fatalf("suffix re-shipped seq %d at or below cursor %d", seq, cursor)
		}
	}

	// From zero, the rebooted leader still streams every graph.
	var full bytes.Buffer
	if _, _, err := leader.ReplicationStream(0, &full); err != nil {
		t.Fatalf("full stream: %v", err)
	}
	follower, _, _ := mustOpen(t, Options{Dir: t.TempDir()})
	defer follower.Close()
	if seqs := applyStream(t, follower, full.Bytes()); len(seqs) != len(gs) {
		t.Fatalf("full stream applied %d graphs, want %d", len(seqs), len(gs))
	}
}

// TestApplyReplicatedRejects pins the apply-side invariants: stale
// sequences and corrupt payloads are refused without mutating the
// store, and a re-shipped digest is idempotent.
func TestApplyReplicatedRejects(t *testing.T) {
	leader, _, _ := mustOpen(t, Options{Dir: t.TempDir()})
	defer leader.Close()
	gs := testGraphs(t, 2)
	for _, g := range gs {
		if err := leader.AppendGraph(g, nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	var stream bytes.Buffer
	if _, _, err := leader.ReplicationStream(0, &stream); err != nil {
		t.Fatalf("stream: %v", err)
	}
	type frame struct {
		seq     uint64
		payload []byte
	}
	var frames []frame
	if _, err := ScanStream(bytes.NewReader(stream.Bytes()), func(seq uint64, kind string, payload []byte) error {
		frames = append(frames, frame{seq, append([]byte(nil), payload...)})
		return nil
	}); err != nil || len(frames) != 2 {
		t.Fatalf("scan: %d frames, err %v", len(frames), err)
	}

	follower, _, _ := mustOpen(t, Options{Dir: t.TempDir()})
	defer follower.Close()

	// Corrupt payload: flip a byte in the wire form; the recomputed
	// digest no longer matches the stored one.
	bad := append([]byte(nil), frames[0].payload...)
	bad[len(bad)-1] ^= 0x40
	if _, _, err := follower.ApplyReplicated(frames[0].seq, bad); err == nil {
		t.Fatal("corrupt payload applied")
	}
	if len(digestSet(follower)) != 0 {
		t.Fatal("rejected record left residue")
	}

	if _, _, err := follower.ApplyReplicated(frames[0].seq, frames[0].payload); err != nil {
		t.Fatalf("apply: %v", err)
	}
	// Duplicate digest: idempotent, returns the resident graph.
	g, _, err := follower.ApplyReplicated(frames[0].seq+100, frames[0].payload)
	if err != nil || g == nil || g.Digest() != gs[0].Digest() {
		t.Fatalf("duplicate apply: g=%v err=%v", g, err)
	}
	// New digest at a stale sequence: refused.
	if _, _, err := follower.ApplyReplicated(frames[0].seq, frames[1].payload); err == nil {
		t.Fatal("stale sequence applied")
	}
	if _, _, err := follower.ApplyReplicated(frames[1].seq+200, frames[1].payload); err != nil {
		t.Fatalf("apply second: %v", err)
	}
	if len(digestSet(follower)) != 2 {
		t.Fatalf("follower holds %d graphs, want 2", len(digestSet(follower)))
	}
}

// TestSeqNotify pins the long-poll wakeup: the channel from SeqNotify
// closes when (and only because) the replication head advances.
func TestSeqNotify(t *testing.T) {
	s, _, _ := mustOpen(t, Options{Dir: t.TempDir()})
	defer s.Close()
	ch := s.SeqNotify()
	select {
	case <-ch:
		t.Fatal("notify fired before any append")
	default:
	}
	s.Touch(12345, nil) // unknown digest; head must not move
	g := testGraphs(t, 1)[0]
	if err := s.AppendGraph(g, nil); err != nil {
		t.Fatalf("append: %v", err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("notify did not fire after a graph append")
	}
	if s.ReplicationHead() == 0 {
		t.Fatal("head did not advance")
	}
}
