package store

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"qcongest/internal/graph"
)

// testGraphs builds a deterministic family of distinct workload graphs.
func testGraphs(t *testing.T, n int) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	gs := make([]*graph.Graph, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			gs = append(gs, graph.Path(3+i))
		case 1:
			gs = append(gs, graph.RandomWeights(graph.Cycle(4+i), 9, rng))
		case 2:
			gs = append(gs, graph.SpineLeaf(2, 2+i%3, 1+i%4, 3, 1))
		default:
			gs = append(gs, graph.RandomWeights(graph.LowDiameterExpanderish(16+i, 3, rng), 50, rng))
		}
	}
	return gs
}

func mustOpen(t *testing.T, opts Options) (*Store, []RecoveredGraph, RecoveryStats) {
	t.Helper()
	s, recovered, stats, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return s, recovered, stats
}

// assertRecovered checks that the recovered set is exactly want, in
// order, with byte-identical wire forms (hence byte-identical digests).
func assertRecovered(t *testing.T, recovered []RecoveredGraph, want []*graph.Graph) {
	t.Helper()
	if len(recovered) != len(want) {
		t.Fatalf("recovered %d graphs, want %d", len(recovered), len(want))
	}
	for i, rg := range recovered {
		if rg.Digest != want[i].Digest() {
			t.Fatalf("graph %d: digest %016x != %016x", i, rg.Digest, want[i].Digest())
		}
		if got, exp := graph.FormatEdgeList(rg.Graph), graph.FormatEdgeList(want[i]); string(got) != string(exp) {
			t.Fatalf("graph %d: wire form changed across recovery", i)
		}
	}
}

// TestStoreRoundTrip commits graphs (with and without generator specs),
// records touches, closes cleanly, and asserts a reopen recovers
// everything byte-identically with the warm-start hints intact.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gs := testGraphs(t, 6)
	gen := json.RawMessage(`{"kind":"path","n":9}`)

	s, recovered, _ := mustOpen(t, Options{Dir: dir})
	if len(recovered) != 0 {
		t.Fatalf("fresh dir recovered %d graphs", len(recovered))
	}
	for i, g := range gs {
		var meta json.RawMessage
		if i == 2 {
			meta = gen
		}
		if err := s.AppendGraph(g, meta); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Touch graph 4 with a sketch tuple and graph 1 with a plain read.
	sk := &SketchParams{Sources: []int{0, 1}, L: 4, K: 2}
	s.Touch(gs[4].Digest(), sk)
	s.Touch(gs[1].Digest(), nil)
	if st := s.Stats(); st.Graphs != len(gs) || st.Appends != int64(len(gs)) || st.Touches != 2 {
		t.Fatalf("stats %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, recovered, stats := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	assertRecovered(t, recovered, gs)
	if stats.SnapshotGraphs != len(gs) || stats.LogGraphs != 0 {
		t.Fatalf("expected all graphs from the close-time snapshot, got %+v", stats)
	}
	if string(recovered[2].Gen) != string(gen) {
		t.Fatalf("gen spec not preserved: %q", recovered[2].Gen)
	}
	if recovered[4].Sketch == nil || recovered[4].Sketch.L != 4 || len(recovered[4].Sketch.Sources) != 2 {
		t.Fatalf("sketch hint not preserved: %+v", recovered[4].Sketch)
	}
	if !(recovered[1].LastQuery > 0 && recovered[4].LastQuery > 0 && recovered[1].LastQuery > recovered[4].LastQuery) {
		t.Fatalf("recency order lost: graph1=%d graph4=%d", recovered[1].LastQuery, recovered[4].LastQuery)
	}
	if recovered[0].LastQuery != 0 {
		t.Fatalf("untouched graph has lastQuery %d", recovered[0].LastQuery)
	}
}

// TestStoreRecoversFromLogWithoutClose kills the store (no snapshot, no
// buffered flush) and asserts every fsynced graph append replays from
// the log alone.
func TestStoreRecoversFromLogWithoutClose(t *testing.T) {
	dir := t.TempDir()
	gs := testGraphs(t, 5)
	s, _, _ := mustOpen(t, Options{Dir: dir})
	for _, g := range gs {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()

	s2, recovered, stats := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	assertRecovered(t, recovered, gs)
	if stats.LogGraphs != len(gs) || stats.SnapshotGraphs != 0 {
		t.Fatalf("expected pure log replay, got %+v", stats)
	}
	if stats.TornTail {
		t.Fatalf("clean log reported torn: %+v", stats)
	}
}

// TestStoreSnapshotRotation drives automatic snapshots and asserts the
// log is rotated and pruned while recovery still sees everything, and
// that appended-after-snapshot graphs replay from the log on top of the
// snapshot.
func TestStoreSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	gs := testGraphs(t, 7)
	s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: 2})
	for _, g := range gs {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Snapshots != 3 || st.SnapshotBytes == 0 {
		t.Fatalf("expected 3 automatic snapshots, got %+v", st)
	}
	s.Crash() // skip the close-time snapshot: the 7th graph must replay from the log

	walFiles, _ := filepath.Glob(filepath.Join(dir, "wal-*.qcl"))
	if len(walFiles) != 1 {
		t.Fatalf("expected 1 rotated log, found %v", walFiles)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.qcs"))
	if len(snaps) != 1 {
		t.Fatalf("expected 1 snapshot, found %v", snaps)
	}

	s2, recovered, stats := mustOpen(t, Options{Dir: dir, SnapshotEvery: 2})
	defer s2.Close()
	assertRecovered(t, recovered, gs)
	if stats.SnapshotGraphs != 6 || stats.LogGraphs != 1 {
		t.Fatalf("expected 6 snapshot + 1 log graphs, got %+v", stats)
	}
}

// TestStoreAppendIdempotent re-appends a committed digest and expects a
// single resident copy.
func TestStoreAppendIdempotent(t *testing.T) {
	dir := t.TempDir()
	g := graph.Path(9)
	s, _, _ := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Graphs != 1 || st.Appends != 1 {
		t.Fatalf("idempotence broken: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, recovered, _ := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	assertRecovered(t, recovered, []*graph.Graph{g})
}

// TestStoreDoubleBootLock asserts the second opener of a data dir fails
// with a clean lock error while the first holds it, and succeeds once
// released.
func TestStoreDoubleBootLock(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, Options{Dir: dir})
	_, _, _, err := Open(Options{Dir: dir})
	if err == nil || !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("double boot error = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, _ := mustOpen(t, Options{Dir: dir})
	s2.Close()
}

// TestStoreDirErrors covers the startup error surface: a data dir path
// that is a regular file, and a read-only directory, both yield clean
// errors (never panics).
func TestStoreDirErrors(t *testing.T) {
	t.Run("path is a file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "not-a-dir")
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := Open(Options{Dir: path}); err == nil {
			t.Fatal("expected error opening a file as data dir")
		}
	})
	t.Run("read-only dir", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ro")
		if err := os.Mkdir(dir, 0o500); err != nil {
			t.Fatal(err)
		}
		// Root (CI containers) ignores mode bits; only assert when the
		// kernel actually enforces them.
		if probe := os.WriteFile(filepath.Join(dir, "probe"), nil, 0o644); probe == nil {
			t.Skip("running with CAP_DAC_OVERRIDE; read-only dir not enforceable")
		}
		_, _, _, err := Open(Options{Dir: dir})
		if err == nil || !strings.Contains(err.Error(), "not writable") {
			t.Fatalf("read-only dir error = %v", err)
		}
	})
	t.Run("missing dir option", func(t *testing.T) {
		if _, _, _, err := Open(Options{}); err == nil {
			t.Fatal("expected error for empty Dir")
		}
	})
}

// TestStoreQuarantineCorruptRecord flips a byte inside the first
// record's payload: the CRC catches it, the scan reports a tear at that
// offset, and recovery truncates — nothing corrupt is ever served.
func TestStoreQuarantineCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	gs := testGraphs(t, 3)
	s, _, _ := mustOpen(t, Options{Dir: dir})
	for _, g := range gs {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()

	// Corrupt a byte in the middle of the first record's payload: the
	// CRC fails, so the scan reports a tear at record 1 and recovery
	// truncates — committed graphs beyond the corruption are casualties
	// of the tear, but nothing corrupt is ever served.
	walFiles, _ := filepath.Glob(filepath.Join(dir, "wal-*.qcl"))
	if len(walFiles) != 1 {
		t.Fatalf("want 1 log, got %v", walFiles)
	}
	raw, err := os.ReadFile(walFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[40] ^= 0xff
	if err := os.WriteFile(walFiles[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, recovered, stats := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	if len(recovered) != 0 || !stats.TornTail {
		t.Fatalf("corrupted-first-record recovery: %d graphs, stats %+v", len(recovered), stats)
	}
}

// TestStoreQuarantineBadSnapshotGraph rewrites one snapshot record so
// its stored digest disagrees with its edges, and asserts recovery
// quarantines exactly that graph and keeps the rest.
func TestStoreQuarantineBadSnapshotGraph(t *testing.T) {
	dir := t.TempDir()
	gs := testGraphs(t, 3)
	s, _, _ := mustOpen(t, Options{Dir: dir})
	for _, g := range gs {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // snapshot now holds all three
		t.Fatal(err)
	}

	// Rebuild the snapshot with record 1 carrying a wrong digest but a
	// valid frame (CRC recomputed), simulating silent payload rot that
	// framing cannot catch — only digest verification can.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.qcs"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %v", snaps)
	}
	var body []byte
	for i, g := range gs {
		digest := g.Digest()
		if i == 1 {
			digest ^= 1 // stored digest no longer matches the edges
		}
		payload, err := encodeGraphPayload(digest, nil, g, CodecBinary)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if _, err := appendRecord(&buf, uint64(i), recGraph, payload); err != nil {
			t.Fatal(err)
		}
		body = append(body, buf.String()...)
	}
	if err := os.WriteFile(snaps[0], body, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, recovered, stats := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	assertRecovered(t, recovered, []*graph.Graph{gs[0], gs[2]})
	if stats.Quarantined == 0 || stats.MissingGraphs != 1 {
		t.Fatalf("expected a quarantined record and one missing graph, got %+v", stats)
	}
	qfiles, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(qfiles) == 0 {
		t.Fatal("quarantine dir is empty")
	}
}

// TestStoreTouchThrottle asserts heavy read traffic logs only a
// throttled fraction of touch records while in-memory recency still
// advances.
func TestStoreTouchThrottle(t *testing.T) {
	dir := t.TempDir()
	g := graph.Path(5)
	s, _, _ := mustOpen(t, Options{Dir: dir, TouchLogEvery: 100})
	if err := s.AppendGraph(g, nil); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().WALBytes
	for i := 0; i < 250; i++ {
		s.Touch(g.Digest(), nil)
	}
	grew := s.Stats().WALBytes - before
	// 250 touches at TouchLogEvery=100 log ~3 records, far below the
	// ~250 an unthrottled store would write.
	if st := s.Stats(); st.Touches != 250 {
		t.Fatalf("touches %d", st.Touches)
	}
	if grew > 1024 {
		t.Fatalf("touch throttle ineffective: log grew %d bytes", grew)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, recovered, _ := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	if recovered[0].LastQuery == 0 {
		t.Fatal("recency lost despite throttle")
	}
}

// TestStoreSeqCorruptionDetected flips the sequence number in a
// committed record's header to one the snapshot already covers. The
// checksum spans the header fields, so the rewrite must surface as a
// detected tear — never as a silent "already folded" skip that loses
// an acknowledged graph with clean recovery stats.
func TestStoreSeqCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	gs := testGraphs(t, 3)
	s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	for _, g := range gs[:2] {
		if err := s.AppendGraph(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil { // snapshotSeq = 2, log rotated
		t.Fatal(err)
	}
	if err := s.AppendGraph(gs[2], nil); err != nil { // seq 3, log only
		t.Fatal(err)
	}
	s.Crash()

	wal := activeWAL(t, dir)
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// "rec 3 graph ..." -> "rec 1 graph ...": a seq the snapshot covers.
	munged := strings.Replace(string(raw), "rec 3 ", "rec 1 ", 1)
	if munged == string(raw) {
		t.Fatalf("expected a seq-3 record in %s", wal)
	}
	if err := os.WriteFile(wal, []byte(munged), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, recovered, stats := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	defer s2.Close()
	assertRecovered(t, recovered, gs[:2])
	if !stats.TornTail {
		t.Fatalf("seq corruption went undetected: %+v", stats)
	}
}

// TestStoreConcurrentAppendTouchSnapshot hammers the off-mutex fsync
// pipeline: concurrent appenders (including duplicate digests racing
// each other), touchers, and explicit folds, all under -race. Every
// append that returned nil must be recovered after a crash.
func TestStoreConcurrentAppendTouchSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: 8, TouchLogEvery: 4})
	var gs []*graph.Graph
	seen := make(map[uint64]bool)
	for _, g := range testGraphs(t, 24) { // the generator family repeats some shapes
		if !seen[g.Digest()] {
			seen[g.Digest()] = true
			gs = append(gs, g)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, g := range gs {
				// Workers race duplicate appends of every graph.
				if err := s.AppendGraph(g, nil); err != nil {
					t.Errorf("worker %d append %d: %v", w, i, err)
					return
				}
				s.Touch(g.Digest(), &SketchParams{Sources: []int{0}, L: 2, K: 1})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := s.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
			}
		}
	}()
	wg.Wait()
	if st := s.Stats(); st.Graphs != len(gs) || st.Appends != int64(len(gs)) {
		t.Fatalf("stats after hammer: %+v", st)
	}
	s.Crash()

	s2, recovered, stats := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	if len(recovered) != len(gs) || stats.Quarantined != 0 || stats.TornTail {
		t.Fatalf("hammered store recovered %d/%d graphs, stats %+v", len(recovered), len(gs), stats)
	}
	want := make(map[uint64]bool, len(gs))
	for _, g := range gs {
		want[g.Digest()] = true
	}
	for _, rg := range recovered {
		if !want[rg.Digest] {
			t.Fatalf("recovered unknown digest %016x", rg.Digest)
		}
		delete(want, rg.Digest)
	}
	if len(want) != 0 {
		t.Fatalf("acknowledged graphs missing after recovery: %v", want)
	}
}

// TestStoreReplayParseLimits asserts the recovery parse honors the
// configured graph bounds: a record committed without limits is
// quarantined, not ballooned, when reopened with tighter ones.
func TestStoreReplayParseLimits(t *testing.T) {
	dir := t.TempDir()
	big := graph.Path(100)
	small := graph.Path(5)
	s, _, _ := mustOpen(t, Options{Dir: dir})
	if err := s.AppendGraph(big, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendGraph(small, nil); err != nil {
		t.Fatal(err)
	}
	s.Crash()

	s2, recovered, stats := mustOpen(t, Options{Dir: dir, MaxNodes: 10})
	defer s2.Close()
	assertRecovered(t, recovered, []*graph.Graph{small})
	if stats.Quarantined != 1 {
		t.Fatalf("expected the oversized record quarantined, got %+v", stats)
	}
}
