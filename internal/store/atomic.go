package store

// Crash-safe file primitives. Every durable artifact of the store is
// published with the same discipline: write to a temp file in the same
// directory, fsync the file, rename it over the final name, fsync the
// directory. A crash at any byte boundary therefore leaves either the
// old complete file or the new complete file — never a torn one. The
// only artifact not written this way is the append-only log, whose
// record framing (wal.go) makes torn tails detectable instead.

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// writeFileAtomic publishes data at path via temp + fsync + rename +
// directory fsync.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any failure below must not leave the temp file behind.
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %s for %s: %w", step, path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("writing temp", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("syncing temp", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("closing temp", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publishing %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-created/renamed/removed entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir %s for sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing dir %s: %w", dir, err)
	}
	return nil
}

// lockDir takes an exclusive advisory flock on dir/LOCK, the
// double-boot guard: a second store opening the same data dir fails
// immediately with a clean error, and a SIGKILLed owner's lock is
// released by the kernel, so no stale-lock recovery is ever needed.
func lockDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: data dir %s is not writable: %w", dir, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK {
			return nil, fmt.Errorf("store: data dir %s is locked by another process (double boot?)", dir)
		}
		return nil, fmt.Errorf("store: locking %s: %w", path, err)
	}
	return f, nil
}
