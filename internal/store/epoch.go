package store

// Epoch fencing and the digest chain — the store-side half of replica
// promotion (DESIGN.md §11.5).
//
// Epoch: a monotone leadership generation persisted in the manifest.
// Sequence numbers minted under epoch E start at E<<32 (Fence), so
// every record a new leader commits carries a sequence strictly above
// anything any prior-epoch node could ever have minted — including the
// unsynced touch records that can leave a demoted old leader's clock
// ahead of the graph head it replicated. A revived old leader therefore
// re-syncs through the ordinary follow path with no ErrStaleRecord
// collisions, and split-brain writes are impossible to confuse: the
// sequence number itself names the epoch that minted it.
//
// Chain: a running splitmix64 fold of (seq, digest) over committed
// graph records in ascending sequence order. Two replicas with equal
// (head, chain) hold byte-identical logs — the election tiebreak and
// the parity assertion the fault e2e pins. Touch records are excluded
// (they never replicate), so leaders and followers fold the same
// stream.

import "sort"

// epochSeqBits is the width of the per-epoch sequence space: sequences
// minted under epoch E live in [E<<32, (E+1)<<32). 2^32 appends per
// leadership generation is orders of magnitude beyond any deployment;
// the manifest's SnapshotSeq stays a plain uint64 either way.
const epochSeqBits = 32

// EpochBase returns the first sequence number of epoch's space — the
// fence a freshly promoted leader raises its clock to.
func EpochBase(epoch uint64) uint64 { return epoch << epochSeqBits }

// chainMix folds one committed graph record into the running chain.
// The splitmix64 finalizer (same constants as the ring hash) avalanches
// the combination so chains diverge immediately on any reorder,
// omission, or digest mismatch.
func chainMix(chain, seq, digest uint64) uint64 {
	x := chain ^ (seq * 0x9e3779b97f4a7c15) ^ digest
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ChainMix is chainMix for out-of-package consumers that fold the same
// chain over an in-memory replica (no -data-dir followers).
func ChainMix(chain, seq, digest uint64) uint64 { return chainMix(chain, seq, digest) }

// Epoch returns the store's persisted leadership epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Chain returns the digest chain over all committed graph records in
// ascending sequence order.
func (s *Store) Chain() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chain
}

// SetEpoch raises the persisted leadership epoch and snapshots so the
// new value survives a crash before the caller acts on it. Epochs only
// move forward; a lower or equal value is a no-op (idempotent re-sends
// from the router are expected).
func (s *Store) SetEpoch(epoch uint64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if epoch <= s.epoch {
		s.mu.Unlock()
		return nil
	}
	s.epoch = epoch
	s.epochDirty = true
	s.mu.Unlock()
	return s.Snapshot()
}

// Fence raises the sequence clock to at least minSeq. A promoted
// leader calls Fence(EpochBase(newEpoch)) before accepting writes so
// every record it mints outranks all prior-epoch history.
func (s *Store) Fence(minSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if minSeq > s.seq {
		s.seq = minSeq
	}
}

// recomputeChain rebuilds the chain from the resident set sorted by
// sequence — the recovery path, where registration order (snapshot
// order + log replay) is only near-sorted. Called with mu held.
func (s *Store) recomputeChain() {
	recs := append([]*graphRec(nil), s.graphs...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	s.chain = 0
	for _, r := range recs {
		s.chain = chainMix(s.chain, r.seq, r.digest)
	}
}
