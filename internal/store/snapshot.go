package store

// Record payload codecs and the snapshot reader. A graph payload is one
// JSON metadata line (digest + optional generator spec) followed by the
// versioned edge-list wire form of the graph; a touch payload is a
// single JSON line. The snapshot file is simply the framed graph
// records of every resident graph in registration order — the same
// framing as the log, so one scanner serves both — published atomically
// and blessed by the manifest.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"qcongest/internal/graph"
)

// graphMeta is the JSON head line of a graph record payload.
type graphMeta struct {
	Digest string          `json:"digest"`
	Gen    json.RawMessage `json:"gen,omitempty"`
}

// touchMeta is a touch record payload: a query recency hint.
type touchMeta struct {
	Digest string        `json:"digest"`
	Sketch *SketchParams `json:"sketch,omitempty"`
}

// encodeGraphPayload renders one graph record payload. The digest is
// stored explicitly (not just recomputed) so replay can distinguish
// "payload corrupted" from "graph legitimately changed encoding".
func encodeGraphPayload(digest uint64, gen json.RawMessage, g *graph.Graph) ([]byte, error) {
	meta, err := json.Marshal(graphMeta{Digest: formatDigest(digest), Gen: gen})
	if err != nil {
		return nil, fmt.Errorf("store: encoding graph meta: %w", err)
	}
	wire := graph.FormatEdgeListVersioned(g)
	payload := make([]byte, 0, len(meta)+1+len(wire))
	payload = append(payload, meta...)
	payload = append(payload, '\n')
	payload = append(payload, wire...)
	return payload, nil
}

// decodeGraphPayload parses a graph record payload and verifies the
// recovered graph's recomputed digest against the stored one — the
// replay-time integrity check the manifest rationale in DESIGN.md §9
// hangs on. maxNodes/maxEdges bound the parse before allocation
// (0 = unbounded).
func decodeGraphPayload(payload []byte, maxNodes, maxEdges int) (digest uint64, gen json.RawMessage, g *graph.Graph, err error) {
	head, rest, ok := bytes.Cut(payload, []byte{'\n'})
	if !ok {
		return 0, nil, nil, fmt.Errorf("store: graph payload missing meta line")
	}
	var meta graphMeta
	if err := json.Unmarshal(head, &meta); err != nil {
		return 0, nil, nil, fmt.Errorf("store: graph payload meta: %w", err)
	}
	digest, err = parseDigest(meta.Digest)
	if err != nil {
		return 0, nil, nil, err
	}
	g, err = graph.ParseEdgeListLimits(rest, maxNodes, maxEdges)
	if err != nil {
		return 0, nil, nil, err
	}
	if got := g.Digest(); got != digest {
		return 0, nil, nil, fmt.Errorf("store: graph digest %s recovered as %s", meta.Digest, formatDigest(got))
	}
	return digest, meta.Gen, g, nil
}

// encodeTouchPayload renders one touch record payload.
func encodeTouchPayload(digest uint64, sk *SketchParams) ([]byte, error) {
	return json.Marshal(touchMeta{Digest: formatDigest(digest), Sketch: sk})
}

// decodeTouchPayload parses a touch record payload.
func decodeTouchPayload(payload []byte) (digest uint64, sk *SketchParams, err error) {
	var meta touchMeta
	if err := json.Unmarshal(payload, &meta); err != nil {
		return 0, nil, fmt.Errorf("store: touch payload: %w", err)
	}
	digest, err = parseDigest(meta.Digest)
	if err != nil {
		return 0, nil, err
	}
	return digest, meta.Sketch, nil
}

// encodeSnapshot renders the snapshot file body: every graph as a
// framed record (seq = registration index; snapshot record seqs only
// order the file, the manifest's SnapshotSeq is what replay compares
// log records against).
func encodeSnapshot(recs []*graphRec) ([]byte, error) {
	var buf bytes.Buffer
	for i, r := range recs {
		payload, err := encodeGraphPayload(r.digest, r.gen, r.g)
		if err != nil {
			return nil, err
		}
		if _, err := appendRecord(&buf, uint64(i), recGraph, payload); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// readSnapshot loads the snapshot file named by the manifest, returning
// the surviving graph records keyed by digest alongside per-record
// failures (quarantined by the caller). A snapshot that cannot be read
// at all is reported as one failure; recovery then proceeds from the
// log alone rather than refusing to boot.
func readSnapshot(path string, maxNodes, maxEdges int) (recs []*graphRec, failures []recFailure) {
	f, err := os.Open(path)
	if err != nil {
		return nil, []recFailure{{name: "snapshot", err: err}}
	}
	defer f.Close()
	res, scanErr := scanRecords(f, func(seq uint64, kind string, payload []byte) error {
		if kind != recGraph {
			failures = append(failures, recFailure{name: fmt.Sprintf("snapshot-rec-%d", seq), err: fmt.Errorf("store: unexpected %s record in snapshot", kind), raw: payload})
			return nil
		}
		digest, gen, g, err := decodeGraphPayload(payload, maxNodes, maxEdges)
		if err != nil {
			failures = append(failures, recFailure{name: fmt.Sprintf("snapshot-rec-%d", seq), err: err, raw: payload})
			return nil
		}
		recs = append(recs, &graphRec{g: g, digest: digest, gen: gen})
		return nil
	})
	if scanErr != nil {
		failures = append(failures, recFailure{name: "snapshot", err: scanErr})
	}
	if res.torn {
		// Snapshots are published atomically, so a torn snapshot means
		// post-publication corruption; salvage the intact prefix.
		failures = append(failures, recFailure{name: "snapshot-tail", err: res.tornErr})
	}
	return recs, failures
}

// recFailure is one quarantinable replay casualty.
type recFailure struct {
	name string
	err  error
	raw  []byte
}
