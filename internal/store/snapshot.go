package store

// Record payload codecs and the snapshot reader. A graph payload is one
// JSON metadata line (digest + optional generator spec) followed by the
// wire form of the graph — the binary codec by default (Options.Codec),
// the versioned text edge list for compatibility; the leading bytes
// disambiguate on replay, so a store can carry a mix. The snapshot file
// is the framed graph records of every resident graph in registration
// order — the same framing as the log, so one scanner serves both —
// followed by an index footer that lets replay seek straight to each
// record and slice payloads zero-copy out of the read buffer instead of
// re-scanning and re-copying the file record by record. The footer is
// strictly optional: a footer-less (pre-PR 8) or corrupt-footer
// snapshot falls back to the sequential scan. Published atomically and
// blessed by the manifest either way.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"qcongest/internal/graph"
)

// Snapshot/record codec names (Options.Codec).
const (
	// CodecBinary persists graph payloads in graph.FormatBinary — the
	// default: ~4x smaller records and a varint decode on replay.
	CodecBinary = "binary"
	// CodecText persists graph payloads as versioned text edge lists,
	// readable in a hex dump and by pre-PR 8 builds.
	CodecText = "text"
)

// graphMeta is the JSON head line of a graph record payload.
type graphMeta struct {
	Digest string          `json:"digest"`
	Gen    json.RawMessage `json:"gen,omitempty"`
}

// touchMeta is a touch record payload: a query recency hint.
type touchMeta struct {
	Digest string        `json:"digest"`
	Sketch *SketchParams `json:"sketch,omitempty"`
}

// encodeGraphPayload renders one graph record payload. The digest is
// stored explicitly (not just recomputed) so replay can distinguish
// "payload corrupted" from "graph legitimately changed encoding".
func encodeGraphPayload(digest uint64, gen json.RawMessage, g *graph.Graph, codec string) ([]byte, error) {
	meta, err := json.Marshal(graphMeta{Digest: formatDigest(digest), Gen: gen})
	if err != nil {
		return nil, fmt.Errorf("store: encoding graph meta: %w", err)
	}
	var wire []byte
	if codec == CodecText {
		wire = graph.FormatEdgeListVersioned(g)
	} else {
		wire = graph.FormatBinary(g)
	}
	payload := make([]byte, 0, len(meta)+1+len(wire))
	payload = append(payload, meta...)
	payload = append(payload, '\n')
	payload = append(payload, wire...)
	return payload, nil
}

// decodeGraphPayload parses a graph record payload and verifies the
// recovered graph's recomputed digest against the stored one — the
// replay-time integrity check the manifest rationale in DESIGN.md §9
// hangs on. maxNodes/maxEdges bound the parse before allocation
// (0 = unbounded).
func decodeGraphPayload(payload []byte, maxNodes, maxEdges int) (digest uint64, gen json.RawMessage, g *graph.Graph, err error) {
	head, rest, ok := bytes.Cut(payload, []byte{'\n'})
	if !ok {
		return 0, nil, nil, fmt.Errorf("store: graph payload missing meta line")
	}
	var meta graphMeta
	if err := json.Unmarshal(head, &meta); err != nil {
		return 0, nil, nil, fmt.Errorf("store: graph payload meta: %w", err)
	}
	digest, err = parseDigest(meta.Digest)
	if err != nil {
		return 0, nil, nil, err
	}
	// The wire form identifies itself: the binary codec's magic starts
	// with a non-ASCII byte no text edge list can begin with, so mixed
	// stores (text log records under a binary-default daemon, or the
	// reverse) replay without any flag.
	if graph.IsBinary(rest) {
		g, err = graph.ParseBinaryLimits(rest, maxNodes, maxEdges)
	} else {
		g, err = graph.ParseEdgeListLimits(rest, maxNodes, maxEdges)
	}
	if err != nil {
		return 0, nil, nil, err
	}
	if got := g.Digest(); got != digest {
		return 0, nil, nil, fmt.Errorf("store: graph digest %s recovered as %s", meta.Digest, formatDigest(got))
	}
	return digest, meta.Gen, g, nil
}

// encodeTouchPayload renders one touch record payload.
func encodeTouchPayload(digest uint64, sk *SketchParams) ([]byte, error) {
	return json.Marshal(touchMeta{Digest: formatDigest(digest), Sketch: sk})
}

// decodeTouchPayload parses a touch record payload.
func decodeTouchPayload(payload []byte) (digest uint64, sk *SketchParams, err error) {
	var meta touchMeta
	if err := json.Unmarshal(payload, &meta); err != nil {
		return 0, nil, fmt.Errorf("store: touch payload: %w", err)
	}
	digest, err = parseDigest(meta.Digest)
	if err != nil {
		return 0, nil, err
	}
	return digest, meta.Sketch, nil
}

// The snapshot index footer. After the framed records the file carries
//
//	index section: per record, uint64 LE offset + uint32 LE length
//	               (the framed record's full on-disk footprint)
//	trailer (24 bytes):
//	  uint64 LE  index section offset
//	  uint32 LE  record count
//	  uint32 LE  CRC32 (IEEE) of the index section
//	  8 bytes    magic "QCSIDX01"
//
// Replay validates the trailer and index checksum, then slices each
// record (and its payload) straight out of the one read buffer —
// zero-copy per record, no re-scan. Anything wrong with the footer
// demotes the file to the sequential scanner, which reads the index
// section as a torn tail and salvages every intact record before it.
const (
	snapIndexEntryLen = 12
	snapTrailerLen    = 24
)

var snapIndexMagic = [8]byte{'Q', 'C', 'S', 'I', 'D', 'X', '0', '1'}

// encodeSnapshot renders the snapshot file body: every graph as a
// framed record carrying its original append sequence (folding must not
// erase the replication cursor identity — a replica resuming below
// SnapshotSeq is served snapshot records re-framed at their true seqs),
// then the index footer. Replay still compares log records against the
// manifest's SnapshotSeq, not the per-record seqs.
func encodeSnapshot(recs []*graphRec, codec string) ([]byte, error) {
	var buf bytes.Buffer
	index := make([]byte, 0, len(recs)*snapIndexEntryLen)
	for _, r := range recs {
		payload, err := encodeGraphPayload(r.digest, r.gen, r.g, codec)
		if err != nil {
			return nil, err
		}
		off := int64(buf.Len())
		n, err := appendRecord(&buf, r.seq, recGraph, payload)
		if err != nil {
			return nil, err
		}
		index = binary.LittleEndian.AppendUint64(index, uint64(off))
		index = binary.LittleEndian.AppendUint32(index, uint32(n))
	}
	indexOff := uint64(buf.Len())
	buf.Write(index)
	var trailer [snapTrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[0:], indexOff)
	binary.LittleEndian.PutUint32(trailer[8:], uint32(len(recs)))
	binary.LittleEndian.PutUint32(trailer[12:], crc32.ChecksumIEEE(index))
	copy(trailer[16:], snapIndexMagic[:])
	buf.Write(trailer[:])
	return buf.Bytes(), nil
}

// snapIndex parses and validates the index footer, returning the index
// section and the end of the record region. ok is false for footer-less
// or corrupt-footer files — the caller falls back to the scanner.
func snapIndex(data []byte) (index []byte, recEnd uint64, ok bool) {
	if len(data) < snapTrailerLen {
		return nil, 0, false
	}
	trailer := data[len(data)-snapTrailerLen:]
	if !bytes.Equal(trailer[16:], snapIndexMagic[:]) {
		return nil, 0, false
	}
	indexOff := binary.LittleEndian.Uint64(trailer[0:])
	count := binary.LittleEndian.Uint32(trailer[8:])
	end := uint64(len(data) - snapTrailerLen)
	if indexOff > end || end-indexOff != uint64(count)*snapIndexEntryLen {
		return nil, 0, false
	}
	index = data[indexOff:end]
	if crc32.ChecksumIEEE(index) != binary.LittleEndian.Uint32(trailer[12:]) {
		return nil, 0, false
	}
	return index, indexOff, true
}

// readSnapshot loads the snapshot file named by the manifest, returning
// the surviving graph records keyed by digest alongside per-record
// failures (quarantined by the caller). A snapshot that cannot be read
// at all is reported as one failure; recovery then proceeds from the
// log alone rather than refusing to boot.
func readSnapshot(path string, maxNodes, maxEdges int) (recs []*graphRec, failures []recFailure) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, []recFailure{{name: "snapshot", err: err}}
	}
	if index, recEnd, ok := snapIndex(data); ok {
		quarantine := func(i int, err error, raw []byte) {
			failures = append(failures, recFailure{name: fmt.Sprintf("snapshot-rec-%d", i), err: err, raw: raw})
		}
		for i := 0; i*snapIndexEntryLen < len(index); i++ {
			e := index[i*snapIndexEntryLen:]
			off := binary.LittleEndian.Uint64(e)
			n := uint64(binary.LittleEndian.Uint32(e[8:]))
			if off > recEnd || recEnd-off < n {
				quarantine(i, fmt.Errorf("store: snapshot index entry %d out of bounds", i), nil)
				continue
			}
			seq, kind, payload, err := parseFramedRecord(data[off : off+n])
			if err != nil {
				quarantine(i, err, data[off:off+n])
				continue
			}
			if kind != recGraph {
				quarantine(i, fmt.Errorf("store: unexpected %s record in snapshot", kind), payload)
				continue
			}
			digest, gen, g, err := decodeGraphPayload(payload, maxNodes, maxEdges)
			if err != nil {
				quarantine(i, err, payload)
				continue
			}
			recs = append(recs, &graphRec{g: g, digest: digest, gen: gen, seq: seq})
		}
		return recs, failures
	}
	// Footer-less (pre-PR 8) or corrupt-footer snapshot: sequential
	// scan, which copies each payload but reads everything salvageable.
	res, scanErr := scanRecords(bytes.NewReader(data), func(seq uint64, kind string, payload []byte) error {
		if kind != recGraph {
			failures = append(failures, recFailure{name: fmt.Sprintf("snapshot-rec-%d", seq), err: fmt.Errorf("store: unexpected %s record in snapshot", kind), raw: payload})
			return nil
		}
		digest, gen, g, err := decodeGraphPayload(payload, maxNodes, maxEdges)
		if err != nil {
			failures = append(failures, recFailure{name: fmt.Sprintf("snapshot-rec-%d", seq), err: err, raw: payload})
			return nil
		}
		recs = append(recs, &graphRec{g: g, digest: digest, gen: gen, seq: seq})
		return nil
	})
	if scanErr != nil {
		failures = append(failures, recFailure{name: "snapshot", err: scanErr})
	}
	if res.torn {
		// Snapshots are published atomically, so a torn snapshot means
		// post-publication corruption (or a scan demoted by a bad
		// footer); salvage the intact prefix.
		failures = append(failures, recFailure{name: "snapshot-tail", err: res.tornErr})
	}
	return recs, failures
}

// recFailure is one quarantinable replay casualty.
type recFailure struct {
	name string
	err  error
	raw  []byte
}
