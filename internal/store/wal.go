package store

// The append-only log format. One record is
//
//	rec <seq> <kind> <len> <crc32>\n
//	<len payload bytes>\n
//
// with the CRC32 (IEEE) taken over "<seq> <kind> <len> " followed by
// the payload — covering the header fields too, so a flipped digit in
// a record's sequence number fails the checksum instead of silently
// re-sequencing a committed record past the replay filter. The header
// is line-oriented so a hex dump of a data dir is readable, but the
// payload is length-framed raw bytes, so payloads may contain anything.
//
// The commit point of a record is "header + payload + trailing newline
// fully on disk": replay accepts a record only when all three parse and
// the checksum matches, so a crash mid-write leaves a detectable torn
// tail which recovery truncates. Records carry monotonically increasing
// sequence numbers; replay skips records at or below the manifest's
// snapshot sequence, which is what makes the snapshot→rotate dance
// crash-safe at every intermediate step (see store.go).

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
)

// Record kinds. Graph records are fsynced at append (their commit is
// the durability contract of the API); touch records are best-effort
// recency hints for warm restarts and ride the write buffer.
const (
	recGraph = "graph"
	recTouch = "touch"
)

// maxRecordBytes bounds one record's declared payload length, checked
// before any allocation so a corrupt few-byte header cannot request an
// enormous buffer. It matches the service's default request-body cap.
const maxRecordBytes = 64 << 20

// maxHeaderBytes bounds one header line during a scan. A legitimate
// header is well under 64 bytes; a newline-free corrupt region (a
// zero-filled extent, say) must be rejected after this many bytes, not
// slurped whole into memory looking for the terminator.
const maxHeaderBytes = 128

// recordSum is the record checksum: CRC32 over the header fields and
// the payload, so neither can be corrupted independently of the other.
func recordSum(seq uint64, kind string, payload []byte) uint32 {
	h := crc32.NewIEEE()
	fmt.Fprintf(h, "%d %s %d ", seq, kind, len(payload))
	h.Write(payload)
	return h.Sum32()
}

// appendRecord frames payload as one record onto w, returning the
// record's on-disk footprint.
func appendRecord(w io.Writer, seq uint64, kind string, payload []byte) (int64, error) {
	hn, err := fmt.Fprintf(w, "rec %d %s %d %08x\n", seq, kind, len(payload), recordSum(seq, kind, payload))
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	if _, err := w.Write([]byte{'\n'}); err != nil {
		return 0, err
	}
	return int64(hn) + int64(len(payload)) + 1, nil
}

// scanResult reports what one file scan saw.
type scanResult struct {
	// good is the byte offset just past the last intact record;
	// recovery truncates a torn active log to this.
	good int64
	// torn reports that the file ends (from good onward) in bytes that
	// do not frame an intact record — a torn write or tail corruption.
	torn bool
	// tornErr describes the tear (nil when torn is false).
	tornErr error
}

// scanRecords streams the intact record prefix of r to fn, stopping at
// the first framing or checksum failure (which is reported as the torn
// tail, not an error: a torn tail is an expected crash artifact). fn
// errors abort the scan and are returned verbatim.
func scanRecords(r io.Reader, fn func(seq uint64, kind string, payload []byte) error) (scanResult, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	res := scanResult{}
	for {
		header, err := readHeaderLine(br)
		if err == io.EOF && header == "" {
			return res, nil // clean end
		}
		if err != nil {
			res.torn, res.tornErr = true, fmt.Errorf("store: unterminated record header: %w", err)
			return res, nil
		}
		seq, kind, payloadLen, sum, perr := parseRecordHeader(header)
		if perr != nil {
			res.torn, res.tornErr = true, perr
			return res, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			res.torn, res.tornErr = true, fmt.Errorf("store: record %d: short payload: %w", seq, err)
			return res, nil
		}
		if nl, err := br.ReadByte(); err != nil || nl != '\n' {
			res.torn, res.tornErr = true, fmt.Errorf("store: record %d: missing payload terminator", seq)
			return res, nil
		}
		if got := recordSum(seq, kind, payload); got != sum {
			res.torn, res.tornErr = true, fmt.Errorf("store: record %d: checksum %08x != %08x", seq, got, sum)
			return res, nil
		}
		if err := fn(seq, kind, payload); err != nil {
			return res, err
		}
		res.good += int64(len(header)) + int64(payloadLen) + 1
	}
}

// parseFramedRecord parses one complete framed record held in memory,
// returning the payload as a subslice of rec — no copy. rec must be
// exactly the record's on-disk footprint (header line + payload +
// trailing newline), which is what the snapshot index stores; any
// mismatch or checksum failure is an error. This is the zero-copy
// counterpart of one scanRecords step for index-addressed reads.
func parseFramedRecord(rec []byte) (seq uint64, kind string, payload []byte, err error) {
	hEnd := bytes.IndexByte(rec, '\n')
	if hEnd < 0 || hEnd >= maxHeaderBytes {
		return 0, "", nil, fmt.Errorf("store: unterminated record header")
	}
	seq, kind, payloadLen, sum, err := parseRecordHeader(string(rec[:hEnd+1]))
	if err != nil {
		return 0, "", nil, err
	}
	if len(rec) != hEnd+1+payloadLen+1 || rec[len(rec)-1] != '\n' {
		return 0, "", nil, fmt.Errorf("store: record %d: framed length %d does not match payload length %d", seq, len(rec), payloadLen)
	}
	payload = rec[hEnd+1 : hEnd+1+payloadLen]
	if got := recordSum(seq, kind, payload); got != sum {
		return 0, "", nil, fmt.Errorf("store: record %d: checksum %08x != %08x", seq, got, sum)
	}
	return seq, kind, payload, nil
}

// readHeaderLine reads one newline-terminated header line of at most
// maxHeaderBytes. io.EOF with an empty result is a clean file end.
func readHeaderLine(br *bufio.Reader) (string, error) {
	buf := make([]byte, 0, 64)
	for len(buf) < maxHeaderBytes {
		c, err := br.ReadByte()
		if err != nil {
			return string(buf), err
		}
		buf = append(buf, c)
		if c == '\n' {
			return string(buf), nil
		}
	}
	return string(buf), fmt.Errorf("store: record header exceeds %d bytes", maxHeaderBytes)
}

// parseRecordHeader validates one "rec <seq> <kind> <len> <crc32>" line.
// The length bound is enforced here, before the payload buffer exists.
func parseRecordHeader(header string) (seq uint64, kind string, payloadLen int, sum uint32, err error) {
	fields := strings.Fields(strings.TrimSuffix(header, "\n"))
	if len(fields) != 5 || fields[0] != "rec" {
		return 0, "", 0, 0, fmt.Errorf("store: malformed record header %q", header)
	}
	seq, err = strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, "", 0, 0, fmt.Errorf("store: bad record seq %q", fields[1])
	}
	kind = fields[2]
	if kind != recGraph && kind != recTouch {
		return 0, "", 0, 0, fmt.Errorf("store: unknown record kind %q", kind)
	}
	payloadLen, err = strconv.Atoi(fields[3])
	if err != nil || payloadLen < 0 || payloadLen > maxRecordBytes {
		return 0, "", 0, 0, fmt.Errorf("store: record %d: payload length %q out of [0, %d]", seq, fields[3], maxRecordBytes)
	}
	if len(fields[4]) != 8 {
		return 0, "", 0, 0, fmt.Errorf("store: record %d: malformed checksum %q", seq, fields[4])
	}
	sum64, err := strconv.ParseUint(fields[4], 16, 32)
	if err != nil {
		return 0, "", 0, 0, fmt.Errorf("store: record %d: malformed checksum %q", seq, fields[4])
	}
	return seq, kind, payloadLen, uint32(sum64), nil
}
