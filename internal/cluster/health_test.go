package cluster_test

// Pins for the router bugfix sweep: the default forwarding client's
// timeout (a stalled backend must cost a bounded shed, not a pinned
// request), the synchronous seed probe sweep (the first request after
// NewRouter sees real verdicts), and probe connection reuse (a drained
// healthz body keeps the keep-alive connection alive).

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"qcongest/internal/cluster"
	"qcongest/internal/graph"
	"qcongest/internal/svc"
)

// healthzOnly serves a minimal daemon-shaped /healthz and delegates
// everything else to handle (nil = 404).
func healthzOnly(handle http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
			return
		}
		if handle != nil {
			handle(w, r)
			return
		}
		http.NotFound(w, r)
	}
}

// TestForwardTimeoutShedsStalledBackend pins satellite fix 1: the
// default client must carry a timeout. A backend that answers probes
// but sits on the upload forever used to pin the proxied request until
// the client gave up on its own; now the exchange dies at
// ForwardTimeout and the write sheds 503.
func TestForwardTimeoutShedsStalledBackend(t *testing.T) {
	stall := make(chan struct{})
	backend := httptest.NewServer(healthzOnly(func(w http.ResponseWriter, r *http.Request) {
		<-stall // black hole: never answers
	}))
	defer backend.Close()
	defer close(stall) // LIFO: unblock the handler before Close waits on it

	topo, err := cluster.ParseTopology(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Topology:       topo,
		ProbeEvery:     time.Hour, // only the seed sweep runs
		PromoteAfter:   -1,
		ForwardTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	started := time.Now()
	_, err = svc.NewClient(ts.URL).Upload(graph.Path(4))
	elapsed := time.Since(started)
	var se *svc.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("upload into a stalled backend answered %v, want a 503 shed", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("shed took %v; the forwarding client's timeout is not bounding the exchange", elapsed)
	}
}

// TestSeedSweepReadiness pins satellite fix 2: NewRouter must not
// return until the seed probe sweep settles, so the very first routed
// request already sees the cluster as ready instead of shedding
// against zero-valued probe state.
func TestSeedSweepReadiness(t *testing.T) {
	s, err := svc.Open(svc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	backend := httptest.NewServer(s)
	defer backend.Close()

	topo, err := cluster.ParseTopology(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	// An hour-long probe interval: if the write below succeeds, only the
	// synchronous seed sweep can have marked the leader ready.
	rt, err := cluster.NewRouter(cluster.Config{Topology: topo, ProbeEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	resp, err := svc.NewClient(ts.URL).Upload(graph.Star(5))
	if err != nil {
		t.Fatalf("first write after NewRouter shed: %v", err)
	}
	if !resp.Created {
		t.Fatalf("first write answered created=false: %+v", resp)
	}
}

// TestProbeConnectionReuse pins satellite fix 3: probeOnce must drain
// the healthz body before closing it, or every probe abandons its
// keep-alive connection and re-handshakes. Many sweeps against one
// backend must cost O(1) TCP connections, not O(sweeps).
func TestProbeConnectionReuse(t *testing.T) {
	var newConns atomic.Int64
	backend := httptest.NewUnstartedServer(healthzOnly(nil))
	backend.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			newConns.Add(1)
		}
	}
	backend.Start()
	defer backend.Close()

	topo, err := cluster.ParseTopology(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Topology:     topo,
		ProbeEvery:   10 * time.Millisecond,
		PromoteAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Wait until well over a dozen sweeps have run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		var m cluster.RouterMetrics
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		if len(m.Peers) == 1 && m.Peers[0].Probes >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 20 probes: %+v", m.Peers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := newConns.Load(); n > 3 {
		t.Fatalf("20+ probes opened %d TCP connections; the probe is not reusing keep-alives", n)
	}
}
