package cluster

// The router's /metrics: the JSON snapshot by default, the Prometheus
// exposition format under the same content negotiation the daemons use
// (?format=prometheus, or an Accept asking for text/plain/OpenMetrics),
// with every family under the qrouter_ namespace so a scrape of the
// whole cluster never collides with the daemons' qcongest_ families.

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

func wantsPromText(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if wantsPromText(r) {
		rt.writePromText(w)
		return
	}
	writeJSON(w, http.StatusOK, rt.snapshot())
}

func (rt *Router) snapshot() RouterMetrics {
	st := rt.state.Load()
	m := RouterMetrics{
		UptimeSeconds:   time.Since(rt.start).Seconds(),
		Epoch:           st.epoch,
		Promotions:      rt.promotions.Load(),
		Demotions:       rt.demotions.Load(),
		Adoptions:       rt.adoptions.Load(),
		PromoteFails:    rt.promoteFails.Load(),
		LastPromotionMs: rt.lastPromotionMs.Load(),
	}
	for si, s := range st.topo.Shards {
		stats := st.stats[si]
		m.Shards = append(m.Shards, ShardMetrics{
			Name:          s.Name,
			Writes:        stats.writes.Load(),
			WriteSheds:    stats.writeSheds.Load(),
			Reads:         stats.reads.Load(),
			ReadFailovers: stats.readFailovers.Load(),
			ReadFailures:  stats.readFailures.Load(),
		})
	}
	for si, s := range st.topo.Shards {
		for ni, p := range st.shards[si] {
			role := "follower"
			if ni == 0 {
				role = "leader"
			}
			m.Peers = append(m.Peers, PeerMetrics{
				URL:        p.url,
				Shard:      s.Name,
				Role:       role,
				Forwards:   p.forwards.Load(),
				Errors:     p.errors.Load(),
				Probes:     p.probes.Load(),
				ProbeFails: p.probeFails.Load(),
				Ready:      p.ready.Load(),
				Alive:      p.alive.Load(),
				Epoch:      p.repEpoch.Load(),
				Seq:        p.repSeq.Load(),
			})
		}
	}
	return m
}

var promEscape = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func promLabel(name, value string) string {
	return "{" + name + `="` + promEscape.Replace(value) + `"}`
}

type promBuf struct{ bytes.Buffer }

func (p *promBuf) family(name, typ, help string) {
	fmt.Fprintf(p, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promBuf) sample(name, labels string, v float64) {
	p.WriteString(name)
	p.WriteString(labels)
	p.WriteByte(' ')
	p.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.WriteByte('\n')
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (rt *Router) writePromText(w http.ResponseWriter) {
	snap := rt.snapshot()
	var p promBuf

	p.family("qrouter_uptime_seconds", "gauge", "Seconds since the router started.")
	p.sample("qrouter_uptime_seconds", "", snap.UptimeSeconds)

	p.family("qrouter_topology_epoch", "gauge", "Leadership generation of the live topology.")
	p.sample("qrouter_topology_epoch", "", float64(snap.Epoch))
	p.family("qrouter_promotions_total", "counter", "Followers auto-promoted to shard leader.")
	p.sample("qrouter_promotions_total", "", float64(snap.Promotions))
	p.family("qrouter_demotions_total", "counter", "Stale leaders demoted back to followers.")
	p.sample("qrouter_demotions_total", "", float64(snap.Demotions))
	p.family("qrouter_adoptions_total", "counter", "Higher-epoch leaders adopted into the topology.")
	p.sample("qrouter_adoptions_total", "", float64(snap.Adoptions))
	p.family("qrouter_promote_fails_total", "counter", "Promotion attempts that did not end in a 200.")
	p.sample("qrouter_promote_fails_total", "", float64(snap.PromoteFails))
	p.family("qrouter_last_promotion_ms", "gauge", "Wall-clock cost of the most recent promotion, election to ack.")
	p.sample("qrouter_last_promotion_ms", "", float64(snap.LastPromotionMs))

	p.family("qrouter_shard_writes_total", "counter", "Uploads routed to the shard leader.")
	for _, s := range snap.Shards {
		p.sample("qrouter_shard_writes_total", promLabel("shard", s.Name), float64(s.Writes))
	}
	p.family("qrouter_shard_write_sheds_total", "counter", "Uploads shed with 503 because the shard leader was down.")
	for _, s := range snap.Shards {
		p.sample("qrouter_shard_write_sheds_total", promLabel("shard", s.Name), float64(s.WriteSheds))
	}
	p.family("qrouter_shard_reads_total", "counter", "Read requests routed into the shard.")
	for _, s := range snap.Shards {
		p.sample("qrouter_shard_reads_total", promLabel("shard", s.Name), float64(s.Reads))
	}
	p.family("qrouter_shard_read_failovers_total", "counter", "Reads that had to try more than one node.")
	for _, s := range snap.Shards {
		p.sample("qrouter_shard_read_failovers_total", promLabel("shard", s.Name), float64(s.ReadFailovers))
	}
	p.family("qrouter_shard_read_failures_total", "counter", "Reads that exhausted every node of the shard.")
	for _, s := range snap.Shards {
		p.sample("qrouter_shard_read_failures_total", promLabel("shard", s.Name), float64(s.ReadFailures))
	}

	p.family("qrouter_peer_forwards_total", "counter", "Requests proxied to the daemon.")
	for _, pe := range snap.Peers {
		p.sample("qrouter_peer_forwards_total", promLabel("peer", pe.URL), float64(pe.Forwards))
	}
	p.family("qrouter_peer_errors_total", "counter", "Proxied requests that failed (transport or 5xx).")
	for _, pe := range snap.Peers {
		p.sample("qrouter_peer_errors_total", promLabel("peer", pe.URL), float64(pe.Errors))
	}
	p.family("qrouter_peer_probes_total", "counter", "Health probes sent to the daemon.")
	for _, pe := range snap.Peers {
		p.sample("qrouter_peer_probes_total", promLabel("peer", pe.URL), float64(pe.Probes))
	}
	p.family("qrouter_peer_probe_fails_total", "counter", "Health probes that did not answer 200.")
	for _, pe := range snap.Peers {
		p.sample("qrouter_peer_probe_fails_total", promLabel("peer", pe.URL), float64(pe.ProbeFails))
	}
	p.family("qrouter_peer_ready", "gauge", "1 when the daemon's last probe answered 200.")
	for _, pe := range snap.Peers {
		p.sample("qrouter_peer_ready", promLabel("peer", pe.URL), boolGauge(pe.Ready))
	}
	p.family("qrouter_peer_alive", "gauge", "1 when the daemon's last probe got any HTTP answer.")
	for _, pe := range snap.Peers {
		p.sample("qrouter_peer_alive", promLabel("peer", pe.URL), boolGauge(pe.Alive))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(p.Bytes())
}
