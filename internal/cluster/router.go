package cluster

// The digest-routing reverse proxy. Uploads are parsed just far enough
// to learn the graph's digest (the same codecs and generators the
// daemons use, so router and daemon can never disagree about identity),
// the ring maps the digest to a shard, and the request forwards to the
// shard leader — or is shed with 503 + Retry-After when the leader is
// down, because acknowledging a write no leader fsynced would break the
// 2xx-is-a-durability-receipt contract. Reads go to any in-sync replica
// of the owning shard, rotating for load spread, with per-request
// failover past dead or stale nodes; the determinism contract (same
// digest + params ⇒ byte-identical answers everywhere) is what makes
// any-replica reads sound. Listings fan out and merge; batches split by
// shard and reassemble in request order.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qcongest/internal/graph"
	"qcongest/internal/svc"
)

// Config parameterizes a Router.
type Config struct {
	// Topology is the boot shard layout (required, non-empty). It
	// becomes the epoch-0 live topology; promotion and Reload evolve it
	// from there.
	Topology Topology
	// ProbeEvery is the health-probe cadence (default 500ms).
	ProbeEvery time.Duration
	// PromoteAfter is how many consecutive probe sweeps a shard leader
	// must be unreachable before the router elects and promotes an
	// in-sync follower (default 3; negative disables auto-promotion).
	// The promotion budget is therefore about PromoteAfter×ProbeEvery
	// plus one promote round-trip.
	PromoteAfter int
	// ClusterToken is sent as X-Cluster-Token on /v1/promote and
	// /v1/demote calls; it must match the daemons' -cluster-token.
	// Empty sends no header (open dev clusters).
	ClusterToken string
	// MaxBodyBytes caps request bodies (default 64 MiB, matching the
	// daemons).
	MaxBodyBytes int64
	// MaxNodes / MaxEdges bound upload parsing at the router (defaults
	// match the daemons').
	MaxNodes, MaxEdges int
	// ForwardTimeout bounds one proxied backend exchange on the default
	// client (default 60s) — a hung daemon must cost a bounded wait,
	// never pin the request forever. Ignored when Client is set.
	ForwardTimeout time.Duration
	// Client overrides the forwarding HTTP client (tests).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 500 * time.Millisecond
	}
	if c.PromoteAfter == 0 {
		c.PromoteAfter = 3
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 17
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 1 << 21
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 60 * time.Second
	}
	return c
}

// shardStats is one shard's routing ledger.
type shardStats struct {
	writes        atomic.Int64
	writeSheds    atomic.Int64
	reads         atomic.Int64
	readFailovers atomic.Int64
	readFailures  atomic.Int64
	rr            atomic.Uint64 // read rotation cursor
}

// topoState is one immutable live-topology generation: the shard
// layout (leader-first node order), its ring, its peers, and the
// per-shard ledgers. Promotion, demotion adoption, and Reload build a
// successor state and swap the router's pointer; request handlers load
// the pointer once and work against a consistent view. Peer and stats
// objects are reused across generations (keyed by URL and shard name),
// so counters and probe evidence survive every rewrite.
type topoState struct {
	topo   Topology
	epoch  uint64
	ring   *ring
	peers  []*peer   // flat, topology order
	shards [][]*peer // by shard index, leader first
	stats  []*shardStats
}

// leaderOf returns the shard's designated leader (Nodes[0]).
func (st *topoState) leaderOf(shard int) *peer { return st.shards[shard][0] }

// buildState assembles a topoState from a layout, reusing prev's peer
// and stats objects where URL / shard name match.
func buildState(t Topology, epoch uint64, prev *topoState) *topoState {
	oldPeers := make(map[string]*peer)
	oldStats := make(map[string]*shardStats)
	if prev != nil {
		for _, p := range prev.peers {
			oldPeers[p.url] = p
		}
		for si, s := range prev.topo.Shards {
			oldStats[s.Name] = prev.stats[si]
		}
	}
	st := &topoState{topo: t, epoch: epoch, ring: buildRing(t)}
	for _, s := range t.Shards {
		var group []*peer
		for _, u := range s.Nodes {
			p := oldPeers[u]
			if p == nil {
				p = &peer{url: u}
			}
			st.peers = append(st.peers, p)
			group = append(group, p)
		}
		st.shards = append(st.shards, group)
		stats := oldStats[s.Name]
		if stats == nil {
			stats = &shardStats{}
		}
		st.stats = append(st.stats, stats)
	}
	return st
}

// Router is the cluster proxy; it implements http.Handler.
type Router struct {
	cfg     Config
	state   atomic.Pointer[topoState]
	topoMu  sync.Mutex // serializes state rewrites (supervisor, Reload)
	client  *http.Client
	start   time.Time
	healthy atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup

	// Self-healing ledger (promote.go).
	promotions      atomic.Int64
	demotions       atomic.Int64
	adoptions       atomic.Int64
	promoteFails    atomic.Int64
	lastPromotionMs atomic.Int64 // wall time from election to 200, last promotion
}

// NewRouter builds a Router over the topology, runs the seed probe
// sweep to completion, and starts the health prober. Returning only
// after the seed sweep settles closes the boot readiness race: the
// first request the caller routes already sees real probe verdicts,
// not all-false zero values that would shed writes against a perfectly
// healthy cluster. The caller owns Close.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Topology.Shards) == 0 {
		return nil, fmt.Errorf("cluster: empty topology")
	}
	rt := &Router{
		cfg:    cfg,
		client: cfg.Client,
		start:  time.Now(),
		stop:   make(chan struct{}),
	}
	if rt.client == nil {
		// The default forwarding client must bound every exchange: one
		// hung backend would otherwise pin the proxied request (and the
		// daemon-side gate slot it holds) forever. The transport caps
		// idle pool size so steady probe + forward traffic reuses
		// connections instead of re-handshaking.
		rt.client = &http.Client{
			Timeout: cfg.ForwardTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 8,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	rt.state.Store(buildState(cfg.Topology, 0, nil))
	rt.healthy.Store(true)
	rt.probeAll(context.Background()) // seed verdicts before serving
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Reload swaps in a new shard layout (cmd/qrouter calls this on
// SIGHUP). Placement only moves for shards whose name changes — the
// ring hashes names, not node URLs. A shard whose live (possibly
// promoted) leader still appears in the new node list keeps that
// leader, so an operator adding or removing followers cannot
// accidentally un-promote a shard; name a different first node AND
// drop the live leader to force a leadership change.
func (rt *Router) Reload(t Topology) error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("cluster: empty topology")
	}
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()
	prev := rt.state.Load()
	liveLeaders := make(map[string]string, len(prev.topo.Shards))
	for si, s := range prev.topo.Shards {
		liveLeaders[s.Name] = prev.leaderOf(si).url
	}
	for i := range t.Shards {
		s := &t.Shards[i]
		if lead, ok := liveLeaders[s.Name]; ok {
			reorderLeader(s, lead)
		}
	}
	rt.state.Store(buildState(t, prev.epoch, prev))
	return nil
}

// reorderLeader moves url to Nodes[0] when present; no-op otherwise.
func reorderLeader(s *Shard, url string) {
	for i, n := range s.Nodes {
		if n == url && i != 0 {
			nodes := append([]string{url}, append(append([]string(nil), s.Nodes[:i]...), s.Nodes[i+1:]...)...)
			s.Nodes = nodes
			return
		}
	}
}

// SetHealthy flips the router's own /healthz between serving and
// draining; cmd/qrouter uses it for graceful shutdown.
func (rt *Router) SetHealthy(ok bool) { rt.healthy.Store(ok) }

// Close stops the health prober. In-flight proxied requests finish on
// their own contexts.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	if code == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, svc.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		rt.handleHealthz(w, r)
	case path == "/metrics":
		rt.handleMetrics(w, r)
	case path == "/v1/cluster":
		rt.handleCluster(w, r)
	case path == "/v1/replicate":
		// Replication is daemon-to-daemon traffic inside a shard; the
		// router is not a replication source and must not pretend to be.
		writeError(w, http.StatusNotFound, "/v1/replicate is not proxied; followers talk to their shard leader directly")
	case path == "/v1/graphs":
		switch r.Method {
		case http.MethodGet:
			rt.handleList(w, r)
		case http.MethodPost:
			rt.handleUpload(w, r)
		default:
			writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		}
	case strings.HasPrefix(path, "/v1/graphs/"):
		rt.handleGraphRead(w, r)
	case path == "/v1/batch":
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		rt.handleBatch(w, r)
	default:
		writeError(w, http.StatusNotFound, "unknown path %s", path)
	}
}

// readBody buffers the request body under the configured cap. Buffering
// is what makes failover possible: a half-streamed body cannot be
// replayed against the next replica.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		if _, ok := err.(*http.MaxBytesError); ok {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds the %d-byte limit", rt.cfg.MaxBodyBytes)
		} else {
			writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// proxied is one fully buffered backend answer — buffered so a 5xx or
// transport failure can fail over without having leaked half a response
// to the client.
type proxied struct {
	status int
	header http.Header
	body   []byte
}

// forward sends one request to one daemon and buffers the answer.
func (rt *Router) forward(ctx context.Context, p *peer, method, uri string, hdr http.Header, body []byte) (*proxied, error) {
	p.forwards.Add(1)
	req, err := http.NewRequestWithContext(ctx, method, p.url+uri, bytes.NewReader(body))
	if err != nil {
		p.errors.Add(1)
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept", "X-API-Key"} {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		p.errors.Add(1)
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		p.errors.Add(1)
		return nil, err
	}
	if resp.StatusCode >= 500 {
		p.errors.Add(1)
	}
	return &proxied{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// writeProxied relays a buffered backend answer to the client.
func (rt *Router) writeProxied(w http.ResponseWriter, resp *proxied) {
	for _, h := range []string{"Content-Type", "Retry-After", "X-Request-Id"} {
		if v := resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// readCandidates orders a shard's nodes for one read: ready nodes
// first, rotated by the shard's cursor so load spreads across replicas,
// then not-ready-but-configured nodes as a last resort (a lagging
// replica beats a 503 when it is all that's left — determinism makes
// its answers correct for every graph it holds).
func readCandidates(st *topoState, shard int) []*peer {
	peers := st.shards[shard]
	start := int(st.stats[shard].rr.Add(1) % uint64(len(peers)))
	ready := make([]*peer, 0, len(peers))
	var fallback []*peer
	for i := range peers {
		p := peers[(start+i)%len(peers)]
		if p.ready.Load() {
			ready = append(ready, p)
		} else {
			fallback = append(fallback, p)
		}
	}
	return append(ready, fallback...)
}

// tryShard runs one read against a shard with failover: transport
// errors and 5xx answers rotate to the next candidate, and a 404
// rotates too (a lagging replica legitimately lacks graphs its leader
// holds — only a whole-shard 404 is a real miss). Returns the first
// conclusive answer, the last inconclusive one, or an error when no
// node was reachable at all.
func (rt *Router) tryShard(ctx context.Context, st *topoState, shard int, method, uri string, hdr http.Header, body []byte) (*proxied, error) {
	stats := st.stats[shard]
	stats.reads.Add(1)
	var last *proxied
	first := true
	for _, p := range readCandidates(st, shard) {
		if !first {
			stats.readFailovers.Add(1)
		}
		first = false
		resp, err := rt.forward(ctx, p, method, uri, hdr, body)
		if err != nil {
			continue
		}
		if resp.status >= 500 || resp.status == http.StatusNotFound {
			last = resp
			continue
		}
		return resp, nil
	}
	if last != nil {
		if last.status >= 500 {
			stats.readFailures.Add(1)
		}
		return last, nil
	}
	stats.readFailures.Add(1)
	return nil, fmt.Errorf("no node of shard %s is reachable", st.topo.Shards[shard].Name)
}

// handleUpload routes a write: learn the digest, find the shard,
// forward to its leader or shed.
func (rt *Router) handleUpload(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	digest, code, err := rt.uploadDigest(r.Header.Get("Content-Type"), body)
	if err != nil {
		writeError(w, code, "%v", err)
		return
	}
	st := rt.state.Load()
	shard := st.ring.shardFor(digest)
	stats := st.stats[shard]
	leader := st.leaderOf(shard)
	shed := func(reason string) {
		stats.writeSheds.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"shard %s leader %s is down (%s); write shed, not accepted — retry",
			st.topo.Shards[shard].Name, leader.url, reason)
	}
	// Sheds are deliberate: a write acknowledged by anything except the
	// leader's own fsync path would not be a durability receipt.
	if !leader.ready.Load() && !leader.alive.Load() {
		shed("probe reports unreachable")
		return
	}
	stats.writes.Add(1)
	resp, err := rt.forward(r.Context(), leader, http.MethodPost, "/v1/graphs"+querySuffix(r), r.Header, body)
	if err != nil {
		stats.writes.Add(-1)
		shed(err.Error())
		return
	}
	rt.writeProxied(w, resp)
}

func querySuffix(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return ""
	}
	return "?" + r.URL.RawQuery
}

// uploadDigest parses an upload body exactly as the daemons would —
// raw binary, raw edge list, or the JSON wrapper with an edge list or
// generator spec — and returns the graph digest that decides placement.
func (rt *Router) uploadDigest(contentType string, body []byte) (uint64, int, error) {
	var g *graph.Graph
	var err error
	switch mediaTypeOf(contentType) {
	case "application/x-qcongest-graph":
		g, err = graph.ParseBinaryLimits(body, rt.cfg.MaxNodes, rt.cfg.MaxEdges)
	case "application/x-qcongest-edgelist":
		g, err = graph.ParseEdgeListLimits(body, rt.cfg.MaxNodes, rt.cfg.MaxEdges)
	default:
		var req svc.UploadRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if derr := dec.Decode(&req); derr != nil {
			return 0, http.StatusBadRequest, fmt.Errorf("bad request body: %w", derr)
		}
		switch {
		case (len(req.EdgeList) == 0) == (req.Gen == nil):
			return 0, http.StatusBadRequest, fmt.Errorf("set exactly one of \"edgelist\" and \"gen\"")
		case len(req.EdgeList) > 0:
			g, err = graph.ParseEdgeListLimits(req.EdgeList, rt.cfg.MaxNodes, rt.cfg.MaxEdges)
		default:
			if serr := svc.CheckGenSize(req.Gen, rt.cfg.MaxNodes, rt.cfg.MaxEdges); serr != nil {
				return 0, http.StatusRequestEntityTooLarge, serr
			}
			g, err = svc.GenerateGraph(req.Gen)
		}
	}
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "exceeds limit") {
			code = http.StatusRequestEntityTooLarge
		}
		return 0, code, err
	}
	return g.Digest(), 0, nil
}

func mediaTypeOf(v string) string {
	if v == "" {
		return ""
	}
	mt, _, err := mime.ParseMediaType(v)
	if err != nil {
		return strings.ToLower(strings.TrimSpace(v))
	}
	return mt
}

// handleGraphRead routes every /v1/graphs/{digest}[...] request —
// info, download, exact metrics, sketches — to the owning shard.
func (rt *Router) handleGraphRead(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/graphs/")
	digestStr, _, _ := strings.Cut(rest, "/")
	digest, err := svc.ParseDigest(digestStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	st := rt.state.Load()
	resp, err := rt.tryShard(r.Context(), st, st.ring.shardFor(digest), r.Method, r.URL.RequestURI(), r.Header, body)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	rt.writeProxied(w, resp)
}

// handleList fans GET /v1/graphs across every shard and merges. A shard
// that cannot answer fails the listing loudly — a silently partial
// listing would read as deleted graphs.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	var merged []svc.GraphInfo
	st := rt.state.Load()
	for shard := range st.shards {
		resp, err := rt.tryShard(r.Context(), st, shard, http.MethodGet, "/v1/graphs", r.Header, nil)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "listing: %v", err)
			return
		}
		if resp.status != http.StatusOK {
			rt.writeProxied(w, resp)
			return
		}
		var page svc.GraphListResponse
		if err := json.Unmarshal(resp.body, &page); err != nil {
			writeError(w, http.StatusBadGateway, "shard %s sent an undecodable listing: %v", st.topo.Shards[shard].Name, err)
			return
		}
		merged = append(merged, page.Graphs...)
	}
	// Registration order is per-shard and meaningless across shards;
	// digest order is the deterministic merge.
	sort.Slice(merged, func(i, j int) bool { return merged[i].Digest < merged[j].Digest })
	writeJSON(w, http.StatusOK, svc.GraphListResponse{Graphs: merged})
}

// handleBatch splits a batch by owning shard, sub-batches each, and
// reassembles results in the original request order.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req svc.BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Digests) == 0 {
		writeError(w, http.StatusBadRequest, "empty digest list")
		return
	}
	type slot struct {
		digests []string
		idx     []int
	}
	st := rt.state.Load()
	groups := make(map[int]*slot)
	for i, ds := range req.Digests {
		d, err := svc.ParseDigest(ds)
		if err != nil {
			writeError(w, http.StatusBadRequest, "digest %d: %v", i, err)
			return
		}
		shard := st.ring.shardFor(d)
		g := groups[shard]
		if g == nil {
			g = &slot{}
			groups[shard] = g
		}
		g.digests = append(g.digests, ds)
		g.idx = append(g.idx, i)
	}
	results := make([]svc.BatchEntry, len(req.Digests))
	for shard, g := range groups {
		sub, err := json.Marshal(svc.BatchRequest{Digests: g.digests, Workers: req.Workers, Parallelism: req.Parallelism})
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		hdr := r.Header.Clone()
		hdr.Set("Content-Type", "application/json")
		resp, err := rt.tryShard(r.Context(), st, shard, http.MethodPost, "/v1/batch", hdr, sub)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "batch: %v", err)
			return
		}
		if resp.status != http.StatusOK {
			rt.writeProxied(w, resp)
			return
		}
		var page svc.BatchResponse
		if err := json.Unmarshal(resp.body, &page); err != nil || len(page.Results) != len(g.digests) {
			writeError(w, http.StatusBadGateway, "shard %s sent %d batch results for %d digests (%v)",
				st.topo.Shards[shard].Name, len(page.Results), len(g.digests), err)
			return
		}
		for j, res := range page.Results {
			results[g.idx[j]] = res
		}
	}
	writeJSON(w, http.StatusOK, svc.BatchResponse{Results: results})
}

// handleCluster serves the live topology descriptor cluster-aware
// clients use to find every replica (qload's parity checks read it).
// Leader-first node order reflects promotions, Epoch identifies the
// leadership generation, and the per-node Epoch/Seq/Chain are the
// router's last probe observations — evidence, not gospel.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	st := rt.state.Load()
	info := ClusterInfo{Epoch: st.epoch}
	for si, s := range st.topo.Shards {
		si2 := ShardInfo{Name: s.Name, Leader: s.Leader()}
		for ni, p := range st.shards[si] {
			role := "follower"
			if ni == 0 {
				role = "leader"
			}
			si2.Nodes = append(si2.Nodes, NodeInfo{
				URL:   p.url,
				Role:  role,
				Ready: p.ready.Load(),
				Alive: p.alive.Load(),
				Epoch: p.repEpoch.Load(),
				Seq:   p.repSeq.Load(),
				Chain: fmt.Sprintf("%016x", p.repChain.Load()),
			})
		}
		info.Shards = append(info.Shards, si2)
	}
	writeJSON(w, http.StatusOK, info)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	st := rt.state.Load()
	h := RouterHealth{
		Status:        "ok",
		Shards:        len(st.shards),
		Epoch:         st.epoch,
		UptimeSeconds: time.Since(rt.start).Seconds(),
	}
	for shard := range st.shards {
		for _, p := range st.shards[shard] {
			if p.ready.Load() {
				h.ShardsReady++
				break
			}
		}
	}
	code := http.StatusOK
	if h.ShardsReady < h.Shards {
		h.Status = "degraded" // still 200: the router itself is serving
	}
	if !rt.healthy.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
