package cluster_test

// The cluster fault-injection offensive: a live 2-shard × 2-replica
// topology of real daemons behind a real Router, driven through the
// same svc.Client the CLIs use. The test walks the full failure
// ladder — healthy routing, replica parity, follower death (reads keep
// answering with zero 5xx), follower revival and WAL catch-up to exact
// seq parity, leader death (writes shed with 503 + Retry-After, reads
// survive on the replica) — and checks both metrics views along the way.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"qcongest/internal/cluster"
	"qcongest/internal/graph"
	"qcongest/internal/svc"
)

// node is one daemon process stand-in: a svc.Server on a real TCP
// listener whose address survives kill/revive (the topology is static,
// so a revived daemon must come back on the same address).
type node struct {
	t    *testing.T
	cfg  svc.Config
	addr string
	url  string
	srv  *svc.Server
	hs   *http.Server
}

func startNodeAt(t *testing.T, addr string, cfg svc.Config) *node {
	t.Helper()
	s, err := svc.Open(cfg)
	if err != nil {
		t.Fatalf("open node: %v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		t.Fatalf("listen %q: %v", addr, err)
	}
	n := &node{t: t, cfg: cfg, addr: ln.Addr().String(), url: "http://" + ln.Addr().String(), srv: s}
	n.hs = &http.Server{Handler: s}
	go n.hs.Serve(ln)
	t.Cleanup(func() {
		n.hs.Close()
		n.srv.Close()
	})
	return n
}

func startNode(t *testing.T, cfg svc.Config) *node {
	return startNodeAt(t, "127.0.0.1:0", cfg)
}

// kill simulates SIGKILL: the listener drops and the store is crashed
// without any flush or snapshot.
func (n *node) kill() {
	n.t.Helper()
	n.hs.Close()
	n.srv.Crash()
}

// revive restarts the daemon over the same data dir on the same address.
func (n *node) revive() *node {
	n.t.Helper()
	return startNodeAt(n.t, n.addr, n.cfg)
}

func (n *node) client() *svc.Client { return svc.NewClient(n.url) }

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getJSON fetches url and decodes the body whatever the status code
// (health endpoints answer structured bodies on 503 too).
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

func digestSet(t *testing.T, c *svc.Client) map[string]bool {
	t.Helper()
	infos, err := c.Graphs()
	if err != nil {
		t.Fatalf("listing: %v", err)
	}
	set := make(map[string]bool, len(infos))
	for _, gi := range infos {
		set[gi.Digest] = true
	}
	return set
}

func sameDigests(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if !b[d] {
			return false
		}
	}
	return true
}

func TestRouterClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e is not a -short test")
	}
	poll := 20 * time.Millisecond
	token := "e2e-cluster-secret"

	// Shard 0 and shard 1, each a durable leader plus a durable
	// WAL-shipping follower.
	leaders := []*node{
		startNode(t, svc.Config{DataDir: t.TempDir(), ClusterToken: token}),
		startNode(t, svc.Config{DataDir: t.TempDir(), ClusterToken: token}),
	}
	followers := []*node{
		startNode(t, svc.Config{DataDir: t.TempDir(), ClusterToken: token, FollowURL: leaders[0].url, FollowPoll: poll}),
		startNode(t, svc.Config{DataDir: t.TempDir(), ClusterToken: token, FollowURL: leaders[1].url, FollowPoll: poll}),
	}

	spec := fmt.Sprintf("%s;%s,%s;%s", leaders[0].url, followers[0].url, leaders[1].url, followers[1].url)
	topo, err := cluster.ParseTopology(spec)
	if err != nil {
		t.Fatalf("ParseTopology(%q): %v", spec, err)
	}
	// 200ms probes: fast enough that readiness waits stay sub-second,
	// slow enough that the follower-kill phase below gets a real window
	// where the dead node is still marked ready and reads must fail over.
	// PromoteAfter 5 gives the leader-death phase a full second to pin
	// the 503-shed behavior before auto-promotion kicks in.
	probeEvery := 200 * time.Millisecond
	promoteAfter := 5
	rt, err := cluster.NewRouter(cluster.Config{
		Topology:     topo,
		ProbeEvery:   probeEvery,
		PromoteAfter: promoteAfter,
		ClusterToken: token,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()
	rc := svc.NewClient(rts.URL)

	// Let the seed probe sweep finish before the first write: a peer the
	// prober has never reached reads as down, and writes to it shed.
	waitUntil(t, 5*time.Second, "seed probe sweep", func() bool {
		var info cluster.ClusterInfo
		getJSON(t, rts.URL+"/v1/cluster", &info)
		for _, s := range info.Shards {
			for _, nd := range s.Nodes {
				if !nd.Ready {
					return false
				}
			}
		}
		return true
	})

	// --- Healthy routing: uploads spread across shards by digest. ---

	graphs := map[string]*graph.Graph{} // digest -> graph, from upload receipts
	upload := func(g *graph.Graph, binary bool) string {
		t.Helper()
		var resp svc.UploadResponse
		var err error
		if binary {
			resp, err = rc.UploadWire(g, true)
		} else {
			resp, err = rc.Upload(g)
		}
		if err != nil {
			t.Fatalf("upload via router: %v", err)
		}
		graphs[resp.Digest] = g
		return resp.Digest
	}
	upload(graph.Path(9), false)
	upload(graph.Star(6), true)
	upload(graph.Grid(3, 4), false)
	upload(graph.Barbell(4, 3), true)
	// Keep feeding distinct cycles until both shards own at least two
	// graphs, so every later assertion exercises both shards. The ring
	// spreads fnv-hashed digests well; a handful of extras suffices.
	for n := 3; ; n++ {
		if n > 80 {
			t.Fatal("ring never placed two graphs on each shard")
		}
		ok := true
		for _, l := range leaders {
			if len(digestSet(t, l.client())) < 2 {
				ok = false
			}
		}
		if ok {
			break
		}
		upload(graph.Cycle(n), n%2 == 0)
	}

	// Idempotent re-upload routes to the same shard and reports
	// Created=false — the cluster answers exactly like one daemon.
	for d, g := range graphs {
		resp, err := rc.Upload(g)
		if err != nil {
			t.Fatalf("re-upload: %v", err)
		}
		if resp.Created || resp.Digest != d {
			t.Fatalf("re-upload of %s answered created=%v digest=%s", d, resp.Created, resp.Digest)
		}
		break
	}

	// Each upload receipt must have landed on exactly one shard leader.
	shardDigests := make([]map[string]bool, len(leaders))
	total := 0
	for i, l := range leaders {
		shardDigests[i] = digestSet(t, l.client())
		total += len(shardDigests[i])
	}
	if total != len(graphs) {
		t.Fatalf("leaders hold %d graphs, router acknowledged %d", total, len(graphs))
	}
	for d := range graphs {
		if shardDigests[0][d] == shardDigests[1][d] {
			t.Fatalf("digest %s is on %d shards, want exactly 1", d, map[bool]int{true: 2, false: 0}[shardDigests[0][d]])
		}
	}

	// --- Replica parity: followers converge to their leader's set. ---

	for i, f := range followers {
		i, f := i, f
		waitUntil(t, 10*time.Second, fmt.Sprintf("follower %d catch-up", i), func() bool {
			return sameDigests(digestSet(t, f.client()), shardDigests[i])
		})
	}

	// --- Merged listing: all digests, digest-sorted. ---

	infos, err := rc.Graphs()
	if err != nil {
		t.Fatalf("router listing: %v", err)
	}
	if len(infos) != len(graphs) {
		t.Fatalf("router listing has %d graphs, want %d", len(infos), len(graphs))
	}
	if !sort.SliceIsSorted(infos, func(i, j int) bool { return infos[i].Digest < infos[j].Digest }) {
		t.Fatal("router listing is not digest-sorted")
	}

	// --- Reads via router match the owning leader byte for byte. ---

	sketchReq := svc.SketchRequest{Sources: []int{0, 1}, L: 8, K: 2}
	ownerOf := func(d string) *svc.Client {
		for i := range leaders {
			if shardDigests[i][d] {
				return leaders[i].client()
			}
		}
		t.Fatalf("digest %s has no owner", d)
		return nil
	}
	for d := range graphs {
		want, err := ownerOf(d).Diameter(d)
		if err != nil {
			t.Fatalf("direct diameter(%s): %v", d, err)
		}
		got, err := rc.Diameter(d)
		if err != nil {
			t.Fatalf("router diameter(%s): %v", d, err)
		}
		if got != want {
			t.Fatalf("diameter(%s): router %d, owner %d", d, got, want)
		}
		wantSk, err := ownerOf(d).Sketch(d, sketchReq)
		if err != nil {
			t.Fatalf("direct sketch(%s): %v", d, err)
		}
		gotSk, err := rc.Sketch(d, sketchReq)
		if err != nil {
			t.Fatalf("router sketch(%s): %v", d, err)
		}
		if !reflect.DeepEqual(gotSk, wantSk) {
			t.Fatalf("sketch(%s): router and owner disagree", d)
		}
	}

	// --- Batch: split by shard, reassembled in request order. ---

	var all []string
	for d := range graphs {
		all = append(all, d)
	}
	sort.Strings(all)
	all = append(all, all[0]) // a repeat must survive reassembly too
	batch, err := rc.Batch(svc.BatchRequest{Digests: all})
	if err != nil {
		t.Fatalf("router batch: %v", err)
	}
	if len(batch.Results) != len(all) {
		t.Fatalf("batch answered %d results for %d digests", len(batch.Results), len(all))
	}
	for i, res := range batch.Results {
		if res.Digest != all[i] {
			t.Fatalf("batch result %d is for %s, want %s", i, res.Digest, all[i])
		}
		want, err := ownerOf(all[i]).Diameter(all[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Diameter != want {
			t.Fatalf("batch diameter(%s) = %d, owner says %d", all[i], res.Diameter, want)
		}
	}

	// --- Cluster descriptor and router health settle to all-ready. ---

	waitUntil(t, 5*time.Second, "all nodes ready in /v1/cluster", func() bool {
		var info cluster.ClusterInfo
		getJSON(t, rts.URL+"/v1/cluster", &info)
		if len(info.Shards) != 2 {
			return false
		}
		for _, s := range info.Shards {
			if len(s.Nodes) != 2 || s.Nodes[0].Role != "leader" || s.Nodes[1].Role != "follower" {
				t.Fatalf("malformed shard descriptor: %+v", s)
			}
			for _, nd := range s.Nodes {
				if !nd.Ready || !nd.Alive {
					return false
				}
			}
		}
		return true
	})
	var rh cluster.RouterHealth
	if code := getJSON(t, rts.URL+"/healthz", &rh); code != http.StatusOK || rh.Status != "ok" || rh.ShardsReady != 2 {
		t.Fatalf("router healthz: code=%d %+v", code, rh)
	}

	// --- Kill shard 0's follower: reads must keep answering, zero 5xx. ---

	var shard0 []string
	for d := range shardDigests[0] {
		shard0 = append(shard0, d)
	}
	sort.Strings(shard0)
	deadFollower := followers[0]
	deadFollower.kill()
	// Read immediately, inside the probe interval: the router still
	// believes the follower is ready, so rotation lands reads on the
	// corpse and per-request failover is what keeps them answering.
	for round := 0; round < 6; round++ {
		for _, d := range shard0 {
			if _, err := rc.Diameter(d); err != nil {
				t.Fatalf("read of %s failed right after the follower died: %v", d, err)
			}
		}
	}
	var rm cluster.RouterMetrics
	getJSON(t, rts.URL+"/metrics", &rm)
	if n := rm.Shards[0].ReadFailovers; n == 0 {
		t.Fatal("follower death produced no read failovers in the ledger")
	}
	// Once the probe notices, the dead node leaves rotation and reads
	// keep working without ever surfacing an error.
	waitUntil(t, 5*time.Second, "probe to notice the dead follower", func() bool {
		var info cluster.ClusterInfo
		getJSON(t, rts.URL+"/v1/cluster", &info)
		nd := info.Shards[0].Nodes[1]
		return !nd.Alive && !nd.Ready
	})
	for round := 0; round < 4; round++ {
		for _, d := range shard0 {
			if _, err := rc.Diameter(d); err != nil {
				t.Fatalf("read of %s failed with the follower dead: %v", d, err)
			}
		}
	}
	getJSON(t, rts.URL+"/metrics", &rm)
	if n := rm.Shards[0].ReadFailures; n != 0 {
		t.Fatalf("reads failed %d times with the leader still up", n)
	}

	// --- Revive the follower: it must catch up over /v1/replicate to
	// exact seq parity with its leader, losing nothing. ---

	revived := deadFollower.revive()
	waitUntil(t, 10*time.Second, "revived follower catch-up", func() bool {
		return sameDigests(digestSet(t, revived.client()), shardDigests[0])
	})
	var lh, fh svc.HealthResponse
	getJSON(t, leaders[0].url+"/healthz", &lh)
	waitUntil(t, 5*time.Second, "revived follower seq parity", func() bool {
		getJSON(t, revived.url+"/healthz", &fh)
		return fh.Replication != nil && fh.Replication.Seq == lh.Replication.Seq
	})
	if fh.Replication.Role != "follower" || lh.Replication.Role != "leader" {
		t.Fatalf("roles: leader=%q follower=%q", lh.Replication.Role, fh.Replication.Role)
	}
	waitUntil(t, 5*time.Second, "probe to re-admit the revived follower", func() bool {
		var info cluster.ClusterInfo
		getJSON(t, rts.URL+"/v1/cluster", &info)
		return info.Shards[0].Nodes[1].Ready
	})

	// --- Kill shard 0's leader: writes shed with 503 + Retry-After,
	// reads survive on the revived replica. ---

	leaders[0].kill()
	waitUntil(t, 5*time.Second, "probe to notice the dead leader", func() bool {
		var info cluster.ClusterInfo
		getJSON(t, rts.URL+"/v1/cluster", &info)
		nd := info.Shards[0].Nodes[0]
		return !nd.Alive && !nd.Ready
	})
	_, err = rc.Upload(graphs[shard0[0]]) // digest provably owned by shard 0
	var se *svc.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("write to a leaderless shard answered %v, want a 503 shed", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("shed 503 carried no Retry-After hint: %+v", se)
	}
	if !strings.Contains(se.Message, "s0") || !strings.Contains(se.Message, "retry") {
		t.Fatalf("shed message does not name the shard and the remedy: %q", se.Message)
	}
	for _, d := range shard0 {
		got, err := rc.Diameter(d)
		if err != nil {
			t.Fatalf("read of %s failed with the leader dead: %v", d, err)
		}
		want, err := revived.client().Diameter(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("diameter(%s) from the surviving replica: router %d, replica %d", d, got, want)
		}
	}
	getJSON(t, rts.URL+"/metrics", &rm)
	if rm.Shards[0].WriteSheds == 0 {
		t.Fatal("leader death produced no write shed in the ledger")
	}

	// Shard 0 still has a ready replica, so the router reports ok; a
	// drain flips it to 503 regardless.
	if code := getJSON(t, rts.URL+"/healthz", &rh); code != http.StatusOK || rh.ShardsReady != 2 {
		t.Fatalf("router healthz with a dead leader but live replica: code=%d %+v", code, rh)
	}
	rt.SetHealthy(false)
	if code := getJSON(t, rts.URL+"/healthz", &rh); code != http.StatusServiceUnavailable || rh.Status != "draining" {
		t.Fatalf("draining healthz: code=%d %+v", code, rh)
	}
	rt.SetHealthy(true)

	// --- Both metrics views agree on the qrouter_ namespace. ---

	resp, err := http.Get(rts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	_, _ = prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"qrouter_uptime_seconds",
		`qrouter_shard_writes_total{shard="s0"}`,
		`qrouter_shard_write_sheds_total{shard="s0"}`,
		`qrouter_shard_read_failovers_total{shard="s0"}`,
		`qrouter_peer_forwards_total{peer="` + leaders[0].url + `"}`,
		`qrouter_peer_ready{peer="` + revived.url + `"} 1`,
		`qrouter_peer_alive{peer="` + leaders[0].url + `"} 0`,
	} {
		if !strings.Contains(prom.String(), family) {
			t.Fatalf("prometheus view lacks %q:\n%s", family, prom.String())
		}
	}

	// --- Auto-promotion: after PromoteAfter failed sweeps the router
	// elects the in-sync follower, promotes it at epoch 1, and rewrites
	// the topology so shard-0 writes resume without any restart. ---

	// Budget: the supervisor needs PromoteAfter consecutive failed
	// sweeps plus one promote round-trip; triple it for slow machines.
	promoteBudget := 3 * time.Duration(promoteAfter+2) * probeEvery
	waitUntil(t, promoteBudget, "auto-promotion of shard 0's follower", func() bool {
		var info cluster.ClusterInfo
		getJSON(t, rts.URL+"/v1/cluster", &info)
		return info.Epoch == 1 && info.Shards[0].Nodes[0].URL == revived.url
	})
	// The promoted daemon itself must agree: leader role, fenced epoch.
	var nh svc.HealthResponse
	getJSON(t, revived.url+"/healthz", &nh)
	if nh.Replication == nil || nh.Replication.Role != "leader" || nh.Replication.Epoch != 1 {
		t.Fatalf("promoted follower reports %+v, want leader at epoch 1", nh.Replication)
	}

	// Writes resume: a re-upload of a shard-0 graph answers 200 through
	// the router, and fresh uploads land on the new leader.
	if resp, err := rc.Upload(graphs[shard0[0]]); err != nil || resp.Created {
		t.Fatalf("shard-0 re-upload after promotion: resp=%+v err=%v", resp, err)
	}
	var newDigest string
	for n := 100; ; n++ {
		if n > 200 {
			t.Fatal("ring never placed a post-promotion graph on shard 0")
		}
		g := graph.Cycle(n)
		resp, err := rc.Upload(g)
		if err != nil {
			t.Fatalf("write after auto-promotion: %v", err)
		}
		graphs[resp.Digest] = g
		if resp.Created && digestSet(t, revived.client())[resp.Digest] {
			newDigest = resp.Digest
			break
		}
	}
	// Epoch fencing is visible in the sequence space: records minted by
	// the epoch-1 leader start at EpochBase(1) = 1<<32.
	getJSON(t, revived.url+"/healthz", &nh)
	if nh.Replication.Seq < 1<<32 {
		t.Fatalf("post-promotion head %d is below the epoch-1 fence", nh.Replication.Seq)
	}
	getJSON(t, rts.URL+"/metrics", &rm)
	if rm.Promotions != 1 || rm.Epoch != 1 {
		t.Fatalf("promotion ledger: %d promotions at epoch %d, want 1 at 1", rm.Promotions, rm.Epoch)
	}

	// --- Revive the old leader: it boots still believing it leads at
	// epoch 0, the router demotes it, and it re-syncs to exact seq and
	// chain parity with the new leader — zero acknowledged writes lost. ---

	oldLeader := leaders[0].revive()
	waitUntil(t, 10*time.Second, "revived old leader demotion", func() bool {
		var h svc.HealthResponse
		getJSON(t, oldLeader.url+"/healthz", &h)
		return h.Replication != nil && h.Replication.Role == "follower" && h.Replication.Epoch == 1
	})
	newShard0 := digestSet(t, revived.client())
	waitUntil(t, 10*time.Second, "demoted leader catch-up", func() bool {
		return sameDigests(digestSet(t, oldLeader.client()), newShard0)
	})
	var newLH, oldLH svc.HealthResponse
	getJSON(t, revived.url+"/healthz", &newLH)
	waitUntil(t, 5*time.Second, "demoted leader seq+chain parity", func() bool {
		getJSON(t, oldLeader.url+"/healthz", &oldLH)
		return oldLH.Replication != nil &&
			oldLH.Replication.Seq == newLH.Replication.Seq &&
			oldLH.Replication.Chain == newLH.Replication.Chain
	})
	if oldLH.Replication.Chain == "" || oldLH.Replication.Chain == "0000000000000000" {
		t.Fatalf("parity chain is trivial: %q", oldLH.Replication.Chain)
	}

	// Zero acknowledged-write loss, cluster-wide: every digest the
	// router ever acknowledged is present on its owning shard, and every
	// shard-0 record now lives on both replicas.
	finalSets := []map[string]bool{newShard0, digestSet(t, leaders[1].client())}
	for d := range graphs {
		if !finalSets[0][d] && !finalSets[1][d] {
			t.Fatalf("acknowledged digest %s was lost by the self-healing ladder", d)
		}
	}
	if !sameDigests(digestSet(t, oldLeader.client()), newShard0) {
		t.Fatal("demoted leader's digest set diverged from the new leader's")
	}

	// Reads of the post-promotion graph answer through the router from
	// either replica.
	if _, err := rc.Diameter(newDigest); err != nil {
		t.Fatalf("reading the post-promotion graph via the router: %v", err)
	}

	// The demotion shows up in the ledger and the live descriptor keeps
	// the promoted leader first.
	getJSON(t, rts.URL+"/metrics", &rm)
	if rm.Demotions == 0 {
		t.Fatal("old-leader revival produced no demotion in the ledger")
	}
	var info cluster.ClusterInfo
	getJSON(t, rts.URL+"/v1/cluster", &info)
	if info.Epoch != 1 || info.Shards[0].Nodes[0].URL != revived.url || info.Shards[0].Nodes[0].Role != "leader" {
		t.Fatalf("live descriptor after the ladder: %+v", info.Shards[0])
	}
	resp, err = http.Get(rts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom.Reset()
	_, _ = prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"qrouter_topology_epoch 1",
		"qrouter_promotions_total 1",
		"qrouter_demotions_total 1",
		"qrouter_last_promotion_ms",
	} {
		if !strings.Contains(prom.String(), family) {
			t.Fatalf("prometheus view lacks %q after the ladder:\n%s", family, prom.String())
		}
	}
}

// TestRouterValidation pins the router's own error surface — everything
// it rejects before any daemon is consulted (the topology points at a
// dead port on purpose).
func TestRouterValidation(t *testing.T) {
	topo, err := cluster.ParseTopology("http://127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(cluster.Config{Topology: topo, ProbeEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e svc.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("POST %s: non-JSON error body: %v", path, err)
		}
		return resp.StatusCode
	}
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("/v1/graphs", "{"); code != http.StatusBadRequest {
		t.Fatalf("truncated JSON upload: %d", code)
	}
	if code := post("/v1/graphs", "{}"); code != http.StatusBadRequest {
		t.Fatalf("upload with neither edgelist nor gen: %d", code)
	}
	if code := post("/v1/graphs", `{"bogus":1}`); code != http.StatusBadRequest {
		t.Fatalf("upload with unknown field: %d", code)
	}
	if code := post("/v1/batch", `{"digests":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
	if code := post("/v1/batch", `{"digests":["zebra"]}`); code != http.StatusBadRequest {
		t.Fatalf("batch with a malformed digest: %d", code)
	}
	if code := get("/v1/graphs/zebra"); code != http.StatusBadRequest {
		t.Fatalf("read with a malformed digest: %d", code)
	}
	if code := get("/v1/replicate"); code != http.StatusNotFound {
		t.Fatalf("/v1/replicate through the router: %d", code)
	}
	if code := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: %d", code)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/graphs", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/graphs: %d", resp.StatusCode)
	}
	// A well-formed write against the dead topology sheds, not hangs:
	// the probe has never seen the leader, so the leader is !alive.
	if code := post("/v1/graphs", `{"edgelist":"n 2\n0 1 1\n"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("write into a dead topology: %d", code)
	}
}
