package cluster

import (
	"reflect"
	"testing"
)

func TestParseTopology(t *testing.T) {
	topo, err := ParseTopology("http://a:1;http://a2:1 , http://b:1;http://b2:1;http://b3:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Shards) != 2 {
		t.Fatalf("parsed %d shards, want 2", len(topo.Shards))
	}
	if topo.Shards[0].Name != "s0" || topo.Shards[0].Leader() != "http://a:1" || len(topo.Shards[0].Nodes) != 2 {
		t.Fatalf("shard 0: %+v", topo.Shards[0])
	}
	if topo.Shards[1].Leader() != "http://b:1" || len(topo.Shards[1].Nodes) != 3 {
		t.Fatalf("shard 1: %+v", topo.Shards[1])
	}

	for _, bad := range []string{
		"",                       // no shards
		"http://a:1,,http://b:1", // empty shard
		"ftp://a:1",              // bad scheme
		"a:1",                    // not absolute
		"http://a:1,http://a:1",  // duplicate across shards
		"http://a:1;http://a:1",  // duplicate within a shard
	} {
		if _, err := ParseTopology(bad); err == nil {
			t.Fatalf("ParseTopology(%q) accepted", bad)
		}
	}
}

// lcg is a cheap deterministic digest stream for placement statistics.
func lcg(d uint64) uint64 { return d*6364136223846793005 + 1442695040888963407 }

func TestRingDeterministicAndBalanced(t *testing.T) {
	topo := Topology{Shards: []Shard{
		{Name: "s0", Nodes: []string{"http://a"}},
		{Name: "s1", Nodes: []string{"http://b"}},
		{Name: "s2", Nodes: []string{"http://c"}},
	}}
	r1, r2 := buildRing(topo), buildRing(topo)
	if !reflect.DeepEqual(r1.points, r2.points) {
		t.Fatal("ring construction is not deterministic")
	}
	const n = 100_000
	counts := make([]int, len(topo.Shards))
	d := uint64(12345)
	for i := 0; i < n; i++ {
		d = lcg(d)
		s := r1.shardFor(d)
		if s != r2.shardFor(d) {
			t.Fatalf("digest %x assigned differently by identical rings", d)
		}
		counts[s]++
	}
	for i, c := range counts {
		// 64 vnodes keep placement within a loose band of uniform; the
		// bound guards against a broken hash collapsing onto one shard.
		if c < n/10 {
			t.Fatalf("shard %d got %d of %d digests — ring badly unbalanced: %v", i, c, n, counts)
		}
	}
}

// TestRingStability pins the consistent-hashing property the design
// leans on: adding a shard only moves digests onto the new shard —
// no digest ever migrates between pre-existing shards.
func TestRingStability(t *testing.T) {
	two := Topology{Shards: []Shard{
		{Name: "s0", Nodes: []string{"http://a"}},
		{Name: "s1", Nodes: []string{"http://b"}},
	}}
	three := Topology{Shards: append(append([]Shard{}, two.Shards...), Shard{Name: "s2", Nodes: []string{"http://c"}})}
	r2, r3 := buildRing(two), buildRing(three)
	const n = 50_000
	moved := 0
	d := uint64(99)
	for i := 0; i < n; i++ {
		d = lcg(d)
		before, after := r2.shardFor(d), r3.shardFor(d)
		if before != after {
			if after != 2 {
				t.Fatalf("digest %x moved between existing shards %d -> %d", d, before, after)
			}
			moved++
		}
	}
	// Expect roughly 1/3 of the space to move to the new shard.
	if moved < n/10 || moved > n*6/10 {
		t.Fatalf("adding a shard moved %d of %d digests — outside the consistent-hashing band", moved, n)
	}
}
