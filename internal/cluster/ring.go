package cluster

// The consistent-hash ring: each shard contributes vnodesPerShard
// points at fnv64a("name#i"), the sorted point list is searched by the
// graph digest, and the owning shard is the first point at or after it
// (wrapping). Placement depends only on shard names, so adding a shard
// moves ~1/(shards+1) of the digest space and nothing else — the
// standard consistent-hashing argument — and every router instance
// computes the identical assignment with no coordination.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerShard balances placement smoothness against ring size: 64
// points per shard keeps the max/min shard load ratio tight (empirically
// ~1.3 at this count) while the whole ring stays a few KB.
const vnodesPerShard = 64

type ringPoint struct {
	hash  uint64
	shard int
}

// mix64 is the splitmix64 finalizer. Raw fnv64a of short, similar
// vnode names ("s0#17", "s1#17", …) clusters badly on the ring —
// measured shard loads varied ~10× — and one avalanche pass flattens
// the point spacing to near-ideal.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type ring struct {
	points []ringPoint
}

func buildRing(t Topology) *ring {
	r := &ring{points: make([]ringPoint, 0, len(t.Shards)*vnodesPerShard)}
	for si, s := range t.Shards {
		for v := 0; v < vnodesPerShard; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", s.Name, v)
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), shard: si})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// shardFor maps a graph digest to its owning shard index.
func (r *ring) shardFor(digest uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= digest })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
