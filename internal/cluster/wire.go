package cluster

// The router's own JSON surfaces: /v1/cluster (the topology descriptor
// cluster-aware clients like qload -mix cluster use to find every
// replica), /healthz, and the JSON half of /metrics.

// NodeInfo is one daemon's entry in the /v1/cluster descriptor.
type NodeInfo struct {
	// URL is the daemon's base URL.
	URL string `json:"url"`
	// Role is the node's position in the live topology: "leader" or
	// "follower". Promotion rewrites it without a restart.
	Role string `json:"role"`
	// Ready reports the last probe answered 200 (serving and in sync).
	Ready bool `json:"ready"`
	// Alive reports the last probe got any HTTP answer at all (a
	// draining or lagging node is alive but not ready).
	Alive bool `json:"alive"`
	// Epoch / Seq / Chain are the node's self-reported leadership
	// epoch, replication position, and digest chain as of the last
	// parsed probe body — the election evidence the promotion
	// supervisor works from. Zero until a probe has read a body.
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	Chain string `json:"chain,omitempty"`
}

// ShardInfo is one shard's entry in the /v1/cluster descriptor.
type ShardInfo struct {
	// Name is the shard's ring identity.
	Name string `json:"name"`
	// Leader is the shard's write endpoint.
	Leader string `json:"leader"`
	// Nodes lists every replica, leader first.
	Nodes []NodeInfo `json:"nodes"`
}

// ClusterInfo answers GET /v1/cluster.
type ClusterInfo struct {
	// Epoch is the router's topology epoch: the leadership generation
	// of the most recent promotion or adoption (0 until the first).
	Epoch uint64 `json:"epoch"`
	// Shards lists the live topology with probe state, leader first.
	Shards []ShardInfo `json:"shards"`
}

// RouterHealth answers GET /healthz on the router.
type RouterHealth struct {
	// Status is "ok" when every shard has a ready node, "degraded"
	// when some shard has none (both HTTP 200 — the router itself is
	// serving), "draining" during shutdown (HTTP 503).
	Status string `json:"status"`
	// Shards is the configured shard count.
	Shards int `json:"shards"`
	// ShardsReady counts shards with at least one ready node.
	ShardsReady int `json:"shardsReady"`
	// Epoch is the router's topology epoch (see ClusterInfo).
	Epoch uint64 `json:"epoch"`
	// UptimeSeconds is the time since the router started.
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// ShardMetrics is one shard's routing ledger within /metrics.
type ShardMetrics struct {
	// Name is the shard's ring identity.
	Name string `json:"name"`
	// Writes counts uploads routed to the shard's leader.
	Writes int64 `json:"writes"`
	// WriteSheds counts uploads shed with 503 because the leader was
	// not ready (shed, never silently dropped: the client owns retry).
	WriteSheds int64 `json:"writeSheds"`
	// Reads counts read requests routed into the shard.
	Reads int64 `json:"reads"`
	// ReadFailovers counts reads that had to try more than one node.
	ReadFailovers int64 `json:"readFailovers"`
	// ReadFailures counts reads that exhausted every node.
	ReadFailures int64 `json:"readFailures"`
}

// PeerMetrics is one daemon's forwarding/probe ledger within /metrics.
type PeerMetrics struct {
	// URL is the daemon's base URL.
	URL string `json:"url"`
	// Shard is the owning shard's name.
	Shard string `json:"shard"`
	// Role is the node's live-topology position, "leader" or
	// "follower".
	Role string `json:"role"`
	// Forwards counts requests proxied to this daemon.
	Forwards int64 `json:"forwards"`
	// Errors counts proxied requests that failed (transport error or
	// 5xx answer).
	Errors int64 `json:"errors"`
	// Probes / ProbeFails count health probes and their failures.
	Probes     int64 `json:"probes"`
	ProbeFails int64 `json:"probeFails"`
	// Ready / Alive mirror the probe state (see NodeInfo).
	Ready bool `json:"ready"`
	Alive bool `json:"alive"`
	// Epoch / Seq mirror the node's last self-reported replication
	// evidence (see NodeInfo).
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// RouterMetrics answers GET /metrics on the router (JSON view).
type RouterMetrics struct {
	// UptimeSeconds is the time since the router started.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Epoch is the router's topology epoch (see ClusterInfo).
	Epoch uint64 `json:"epoch"`
	// Promotions / Demotions / Adoptions count self-healing events:
	// followers promoted to leader, stale leaders demoted, and
	// higher-epoch leaders adopted into the topology (router restart).
	Promotions int64 `json:"promotions"`
	Demotions  int64 `json:"demotions"`
	Adoptions  int64 `json:"adoptions"`
	// PromoteFails counts promotion attempts that did not end in a 200.
	PromoteFails int64 `json:"promoteFails"`
	// LastPromotionMs is the wall-clock cost of the most recent
	// successful promotion, election to acknowledgment (0 when none).
	LastPromotionMs int64 `json:"lastPromotionMs"`
	// Shards holds one routing ledger per shard, topology order.
	Shards []ShardMetrics `json:"shards"`
	// Peers holds one forwarding ledger per daemon, topology order.
	Peers []PeerMetrics `json:"peers"`
}
