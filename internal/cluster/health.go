package cluster

// The health prober. Every ProbeEvery the router probes each daemon's
// /healthz and classifies it against the daemons' readiness semantics:
//
//	200                      ready  (serving, in sync)
//	any other HTTP answer    alive  (draining or lagging — the daemon
//	                                 took itself out of rotation)
//	transport error          down
//
// Readiness drives steady-state routing; the forwarding path does its
// own per-request failover on top, so a node that dies between probes
// costs one extra hop, not an error.
//
// The probe also reads the healthz body: the daemons' replication
// stanza (role, epoch, seq, chain — internal/svc ReplicationHealth) is
// the election evidence the promotion supervisor (promote.go) works
// from, and parsing it costs nothing extra because draining the body
// is what keeps the probe connection reusable in the first place.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qcongest/internal/svc"
)

// maxHealthzBytes bounds one probe body read; a healthz document is a
// few hundred bytes, so anything near the cap is garbage anyway.
const maxHealthzBytes = 1 << 20

// peer is one daemon's live state inside the router. Peers are keyed
// by URL and survive topology rewrites (promotion, SIGHUP reload), so
// their counters are continuous across role changes.
type peer struct {
	url string

	ready      atomic.Bool
	alive      atomic.Bool
	forwards   atomic.Int64
	errors     atomic.Int64
	probes     atomic.Int64
	probeFails atomic.Int64

	// downStreak counts consecutive sweeps the peer was unreachable;
	// the promotion supervisor fires when a leader's streak reaches
	// PromoteAfter. Reset on any HTTP answer.
	downStreak atomic.Int32

	// Replication evidence from the last parsed healthz body (zero
	// until a probe has read one): the node's self-reported role,
	// leadership epoch, replication position, and digest chain.
	repRole  atomic.Int32 // roleNone / roleLeader / roleFollower
	repEpoch atomic.Uint64
	repSeq   atomic.Uint64
	repChain atomic.Uint64
}

// Self-reported roles, from the healthz replication stanza.
const (
	roleNone int32 = iota // no stanza: in-memory standalone daemon
	roleLeader
	roleFollower
)

// probeOnce probes one daemon and settles its classification.
func (rt *Router) probeOnce(ctx context.Context, p *peer) {
	p.probes.Add(1)
	ctx, cancel := context.WithTimeout(ctx, rt.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/healthz", nil)
	if err != nil {
		p.ready.Store(false)
		p.alive.Store(false)
		p.probeFails.Add(1)
		p.downStreak.Add(1)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		p.ready.Store(false)
		p.alive.Store(false)
		p.probeFails.Add(1)
		p.downStreak.Add(1)
		return
	}
	// Read the body to its end before closing: an undrained close kills
	// the keep-alive connection and every probe re-handshakes (the
	// connection-reuse test pins this). The bytes read are the election
	// evidence, so the drain is not even overhead.
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxHealthzBytes))
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	p.alive.Store(true)
	p.downStreak.Store(0)
	ok := resp.StatusCode == http.StatusOK
	p.ready.Store(ok)
	if !ok {
		p.probeFails.Add(1)
	}
	// A draining or lagging daemon still reports its stanza (503 bodies
	// are the same JSON document), so parse regardless of status.
	var h svc.HealthResponse
	if json.Unmarshal(body, &h) != nil || h.Replication == nil {
		p.repRole.Store(roleNone)
		return
	}
	rep := h.Replication
	switch rep.Role {
	case "leader":
		p.repRole.Store(roleLeader)
	case "follower":
		p.repRole.Store(roleFollower)
	default:
		p.repRole.Store(roleNone)
	}
	p.repEpoch.Store(rep.Epoch)
	p.repSeq.Store(rep.Seq)
	if c, err := strconv.ParseUint(rep.Chain, 16, 64); err == nil {
		p.repChain.Store(c)
	}
}

// probeAll sweeps every peer of the current topology concurrently and
// waits for the sweep.
func (rt *Router) probeAll(ctx context.Context) {
	st := rt.state.Load()
	var wg sync.WaitGroup
	for _, p := range st.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			rt.probeOnce(ctx, p)
		}(p)
	}
	wg.Wait()
}

// probeLoop runs the sweep (followed by the promotion supervisor) on
// the configured cadence until Close. NewRouter runs the seed sweep
// synchronously before this loop starts, so the first tick here is
// already the second observation.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	ctx := context.Background()
	ticker := time.NewTicker(rt.cfg.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.probeAll(ctx)
			rt.supervise(ctx)
		}
	}
}

func (rt *Router) probeTimeout() time.Duration {
	if t := rt.cfg.ProbeEvery; t < 2*time.Second {
		return 2 * time.Second
	}
	return rt.cfg.ProbeEvery
}
