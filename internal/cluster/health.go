package cluster

// The health prober. Every ProbeEvery the router probes each daemon's
// /healthz and classifies it against the daemons' readiness semantics:
//
//	200                      ready  (serving, in sync)
//	any other HTTP answer    alive  (draining or lagging — the daemon
//	                                 took itself out of rotation)
//	transport error          down
//
// Readiness drives steady-state routing; the forwarding path does its
// own per-request failover on top, so a node that dies between probes
// costs one extra hop, not an error.

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// peer is one daemon's live state inside the router.
type peer struct {
	url    string
	shard  int
	leader bool

	ready      atomic.Bool
	alive      atomic.Bool
	forwards   atomic.Int64
	errors     atomic.Int64
	probes     atomic.Int64
	probeFails atomic.Int64
}

func (p *peer) role() string {
	if p.leader {
		return "leader"
	}
	return "replica"
}

// probeOnce probes one daemon and settles its classification.
func (rt *Router) probeOnce(ctx context.Context, p *peer) {
	p.probes.Add(1)
	ctx, cancel := context.WithTimeout(ctx, rt.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/healthz", nil)
	if err != nil {
		p.ready.Store(false)
		p.alive.Store(false)
		p.probeFails.Add(1)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		p.ready.Store(false)
		p.alive.Store(false)
		p.probeFails.Add(1)
		return
	}
	resp.Body.Close()
	p.alive.Store(true)
	ok := resp.StatusCode == http.StatusOK
	p.ready.Store(ok)
	if !ok {
		p.probeFails.Add(1)
	}
}

// probeAll sweeps every peer concurrently and waits for the sweep.
func (rt *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range rt.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			rt.probeOnce(ctx, p)
		}(p)
	}
	wg.Wait()
}

// probeLoop runs the sweep on the configured cadence until Close.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	ctx := context.Background()
	rt.probeAll(ctx) // seed state before the first tick
	ticker := time.NewTicker(rt.cfg.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.probeAll(ctx)
		}
	}
}

func (rt *Router) probeTimeout() time.Duration {
	if t := rt.cfg.ProbeEvery; t < 2*time.Second {
		return 2 * time.Second
	}
	return rt.cfg.ProbeEvery
}
