package cluster

// The self-healing supervisor. After every probe sweep the router
// reconciles what the probes observed against the topology it believes
// in, in three moves:
//
//   - adoption: a node claiming leadership at an epoch ABOVE the
//     router's is believed outright — it won an election this router
//     did not see (typically: the router restarted from a stale boot
//     topology). The topology rewrites around it, no RPC needed.
//   - promotion: a shard leader unreachable for PromoteAfter
//     consecutive sweeps is declared dead; the alive follower with the
//     highest replicated position whose seq is at least the leader's
//     last observed head is promoted via POST /v1/promote at epoch+1,
//     and the topology rewrites so writes resume without a restart.
//   - demotion: a node claiming leadership at an epoch at or BELOW the
//     router's, from a follower slot, is a revived old leader (or a
//     misconfigured standalone): POST /v1/demote points it at the
//     designated leader and it re-syncs through the ordinary follow
//     path. Skipped while the designated leader is not ready — a
//     stale leader that still answers beats no leader at all.
//
// All three run under topoMu, so supervisor rewrites and SIGHUP
// reloads serialize; handlers keep reading the old state atomically
// until the swap lands. Election is evidence-based and conservative: a
// follower that might miss acknowledged writes (seq below the dead
// leader's last observed head) is never promoted, because serving
// writes from it would silently fork history. Better a shard that sheds
// writes loudly than one that lies.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"qcongest/internal/svc"
)

// supervise reconciles one sweep's observations into topology actions.
// Called from probeLoop after each probeAll; PromoteAfter < 0 disables
// the whole supervisor (probe classification still runs).
func (rt *Router) supervise(ctx context.Context) {
	if rt.cfg.PromoteAfter < 0 {
		return
	}
	rt.topoMu.Lock()
	defer rt.topoMu.Unlock()

	st := rt.state.Load()
	topo := cloneTopology(st.topo)
	epoch := st.epoch
	changed := false

	for si := range st.shards {
		// Adoption first: a higher-epoch leader claim anywhere in the
		// shard overrides whatever this router thinks it knows.
		if p := higherEpochLeader(st, si, epoch); p != nil {
			reorderLeader(&topo.Shards[si], p.url)
			epoch = p.repEpoch.Load()
			rt.adoptions.Add(1)
			changed = true
			continue
		}

		leader := st.shards[si][0]
		if leader.downStreak.Load() >= int32(rt.cfg.PromoteAfter) {
			if winner := electFollower(st, si); winner != nil {
				started := time.Now()
				if rt.postControl(ctx, winner.url, "/v1/promote", svc.PromoteRequest{Epoch: epoch + 1}) {
					epoch++
					reorderLeader(&topo.Shards[si], winner.url)
					rt.promotions.Add(1)
					rt.lastPromotionMs.Store(time.Since(started).Milliseconds())
					changed = true
					continue
				}
				rt.promoteFails.Add(1)
			}
		}

		// Demotion: stale leader claims from follower slots, only while
		// the designated leader is actually serving.
		if !leader.ready.Load() {
			continue
		}
		for _, p := range st.shards[si][1:] {
			if p.alive.Load() && p.repRole.Load() == roleLeader && p.repEpoch.Load() <= epoch {
				if rt.postControl(ctx, p.url, "/v1/demote", svc.DemoteRequest{Epoch: epoch, Leader: leader.url}) {
					rt.demotions.Add(1)
				}
			}
		}
	}

	if changed {
		rt.state.Store(buildState(topo, epoch, st))
	}
}

// higherEpochLeader returns the shard peer claiming leadership above
// the router's epoch, preferring the highest such epoch; nil when none.
func higherEpochLeader(st *topoState, shard int, epoch uint64) *peer {
	var best *peer
	for _, p := range st.shards[shard] {
		if p.alive.Load() && p.repRole.Load() == roleLeader && p.repEpoch.Load() > epoch {
			if best == nil || p.repEpoch.Load() > best.repEpoch.Load() {
				best = p
			}
		}
	}
	return best
}

// electFollower picks the shard's promotion candidate: the alive
// follower with the highest replicated position, and only if that
// position is at least the dead leader's last observed head —
// promoting a lagging follower would acknowledge-then-lose the records
// it never pulled. Ties break toward topology order, which makes the
// election deterministic across sweeps. nil when no follower qualifies
// (the shard keeps shedding writes loudly instead).
func electFollower(st *topoState, shard int) *peer {
	leaderHead := st.leaderOf(shard).repSeq.Load()
	var best *peer
	for _, p := range st.shards[shard][1:] {
		if !p.alive.Load() || p.repRole.Load() != roleFollower {
			continue
		}
		if seq := p.repSeq.Load(); seq >= leaderHead && (best == nil || seq > best.repSeq.Load()) {
			best = p
		}
	}
	return best
}

// postControl sends one authenticated control-plane request (promote or
// demote) and reports whether the node acknowledged with a 200. The
// call is bounded by the probe timeout, not the forwarding timeout —
// supervise holds topoMu and must never park for a slow minute.
func (rt *Router) postControl(ctx context.Context, base, path string, body any) bool {
	payload, err := json.Marshal(body)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(ctx, rt.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(payload))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	if rt.cfg.ClusterToken != "" {
		req.Header.Set("X-Cluster-Token", rt.cfg.ClusterToken)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// cloneTopology deep-copies a topology so supervisor rewrites never
// mutate the shard slices a published topoState still references.
func cloneTopology(t Topology) Topology {
	out := Topology{Shards: make([]Shard, len(t.Shards))}
	for i, s := range t.Shards {
		out.Shards[i] = Shard{Name: s.Name, Nodes: append([]string(nil), s.Nodes...)}
	}
	return out
}
