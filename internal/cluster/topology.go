// Package cluster is the sharded-deployment tier over qcongestd: a
// static topology of shards (each a leader plus WAL-shipped follower
// replicas, internal/svc follower mode), a consistent-hash ring that
// assigns every graph digest to exactly one shard, a health prober
// aligned with the daemons' /healthz readiness semantics, and the
// digest-routing reverse proxy (router.go) that cmd/qrouter serves.
//
// The division of labor with the daemons is strict: daemons own
// correctness (digest-verified replication, determinism, durability
// receipts), the router owns placement and availability (which shard a
// digest lives on, which replica answers a read, when a write must be
// shed). The router holds no graph state at all — restarting it loses
// nothing.
package cluster

import (
	"fmt"
	"net/url"
	"strings"
)

// Shard is one replication group: a leader that accepts writes and
// serves /v1/replicate, plus zero or more followers tailing it.
type Shard struct {
	// Name is the shard's stable identity on the ring and in metrics
	// ("s0", "s1", … by position). Hashing the name rather than the
	// node URLs keeps placement stable when a shard's nodes move.
	Name string
	// Nodes are the shard's base URLs; Nodes[0] is the leader.
	Nodes []string
}

// Leader returns the shard's write endpoint.
func (s Shard) Leader() string { return s.Nodes[0] }

// Topology is the full static cluster layout.
type Topology struct {
	Shards []Shard
}

// ParseTopology parses the -peers flag format: shards separated by
// commas, replicas within a shard separated by semicolons, the first
// replica of each shard its leader.
//
//	http://a:8080;http://a2:8080,http://b:8080;http://b2:8080
//
// declares two shards of two nodes each. Every node must be an
// absolute http(s) base URL and may appear in only one position.
func ParseTopology(spec string) (Topology, error) {
	var t Topology
	seen := make(map[string]string)
	for i, shardSpec := range strings.Split(spec, ",") {
		name := fmt.Sprintf("s%d", i)
		var nodes []string
		for _, raw := range strings.Split(shardSpec, ";") {
			raw = strings.TrimSpace(raw)
			if raw == "" {
				continue
			}
			u, err := url.Parse(raw)
			if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				return Topology{}, fmt.Errorf("cluster: peer %q is not an absolute http(s) base URL", raw)
			}
			node := strings.TrimRight(raw, "/")
			if prev, dup := seen[node]; dup {
				return Topology{}, fmt.Errorf("cluster: peer %s listed in both %s and %s", node, prev, name)
			}
			seen[node] = name
			nodes = append(nodes, node)
		}
		if len(nodes) == 0 {
			return Topology{}, fmt.Errorf("cluster: shard %d of %q has no nodes", i, spec)
		}
		t.Shards = append(t.Shards, Shard{Name: name, Nodes: nodes})
	}
	if len(t.Shards) == 0 {
		return Topology{}, fmt.Errorf("cluster: empty topology %q", spec)
	}
	return t, nil
}
