// The composed distance algorithm of Lemma 3.5: for one sampled set S_i,
// the three-procedure decomposition (Initialization_i, Setup_i,
// Evaluation_i) with its fixed round schedules, plus a deterministic
// runner that evaluates f(i) = opt_{s in S_i} ẽ_{G,w,i}(s) exhaustively.
// RunAlg is the classical reference implementation the quantum search of
// internal/qdist is measured against: internal/core plugs the same
// schedules and the same skeleton values into Lemma 3.1, replacing the
// exhaustive scan by amplitude amplification.

package dist

import (
	"fmt"

	"qcongest/internal/graph"
)

// Objective selects which extremum of ẽ over the set RunAlg reports.
type Objective int

// Objectives: Maximize is the diameter side of Theorem 1.1 (f(i) is a
// max of approximate eccentricities), Minimize the radius side.
const (
	Maximize Objective = iota
	Minimize
)

// String returns the objective name ("maximize" or "minimize").
func (o Objective) String() string {
	if o == Minimize {
		return "minimize"
	}
	return "maximize"
}

// Procedure is the Lemma 3.5 procedure triple for one set S_i on a
// network, with the fixed round schedules of its three phases. Build it
// with NewProcedure, which derives the schedules from the network and
// parameters exactly as internal/core's cost model does.
type Procedure struct {
	// G is the network.
	G *graph.Graph
	// Sources is the set S_i the procedure evaluates over.
	Sources []int
	// L, K, Eps are the Eq. (1) parameters ℓ, k, ε.
	L, K int
	Eps  Eps

	// InitRounds is T0: the Initialization_i schedule (Algorithm 3
	// multi-source SSSP plus the Algorithm 4 overlay embedding), charged
	// once per search.
	InitRounds int64
	// SetupRounds is T1: the Setup_i schedule (collect S_i, broadcast
	// state, Algorithm 5 overlay SSSP), charged per coherent evaluation.
	SetupRounds int64
	// EvalRounds is T2: the Evaluation_i schedule (local combine and
	// O(D) converge-cast).
	EvalRounds int64
}

// NewProcedure assembles the Lemma 3.5 procedure for the set s with
// parameters (l, k, eps), computing the fixed T0/T1/T2 schedules from
// the network's size, maximum weight, and unweighted diameter.
func NewProcedure(g *graph.Graph, s []int, l, k int, eps Eps) (Procedure, error) {
	if g.N() < 1 {
		return Procedure{}, fmt.Errorf("dist: empty network")
	}
	if len(s) == 0 {
		return Procedure{}, fmt.Errorf("dist: empty source set")
	}
	for _, v := range s {
		if v < 0 || v >= g.N() {
			return Procedure{}, fmt.Errorf("dist: source %d out of range [0,%d)", v, g.N())
		}
	}
	if l < 1 {
		l = 1
	}
	if k < 1 {
		k = 1
	}
	if eps.T < 1 {
		eps.T = 1
	}
	n, w, b := g.N(), maxW(g), len(s)
	d := g.UnweightedDiameter()
	p := Procedure{G: g, Sources: s, L: l, K: k, Eps: eps}
	p.InitRounds = Alg3Schedule(n, w, l, eps, b, d) + EmbedSchedule(d, b, k)
	p.SetupRounds = (d + int64(b)) + d + OverlaySchedule(n, w, b, k, eps, d)
	p.EvalRounds = d
	return p, nil
}

// T returns the per-evaluation schedule T1 + T2.
func (p Procedure) T() int64 { return p.SetupRounds + p.EvalRounds }

// Validate checks the procedure is runnable.
func (p Procedure) Validate() error {
	if p.G == nil || p.G.N() < 1 {
		return fmt.Errorf("dist: procedure has no network")
	}
	if len(p.Sources) == 0 {
		return fmt.Errorf("dist: procedure has an empty source set")
	}
	for _, v := range p.Sources {
		if v < 0 || v >= p.G.N() {
			return fmt.Errorf("dist: procedure source %d out of range [0,%d)", v, p.G.N())
		}
	}
	if p.InitRounds < 0 || p.SetupRounds < 0 || p.EvalRounds < 0 {
		return fmt.Errorf("dist: negative round schedule")
	}
	return nil
}

// Result reports one RunAlg evaluation.
type Result struct {
	// Witness is the vertex in S_i achieving the extremum.
	Witness int
	// Num over Den is the extremal ẽ value as an exact rational.
	Num, Den int64
	// Value is Num/Den as a float64.
	Value float64
	// Evaluations counts skeleton queries (|S_i| for the exhaustive
	// classical scan).
	Evaluations int
	// Rounds is the charged schedule T0 + |S_i|·(T1+T2): the classical
	// sequential cost the Lemma 3.1 search replaces by
	// T0 + O(√(log(1/δ)·|S_i|))·(T1+T2).
	Rounds int64
}

// RunAlg runs the Lemma 3.5 algorithm classically: it builds the
// skeleton of p.Sources and scans every s in S_i for the extremal
// approximate eccentricity, charging the full sequential schedule. The
// returned rational never undershoots the true extremum over S_i of
// e_{G,w}(s) (for Maximize; for Minimize it never undershoots the true
// radius when S_i contains a center).
func RunAlg(p Procedure, obj Objective) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	sk := BuildSkeleton(p.G, p.Sources, p.L, p.K, p.Eps)
	defer sk.Release()
	witness := p.Sources[0]
	best := sk.ApproxEccentricity(witness)
	for _, s := range p.Sources[1:] {
		v := sk.ApproxEccentricity(s)
		if (obj == Maximize && v > best) || (obj == Minimize && v < best) {
			best, witness = v, s
		}
	}
	res := Result{
		Witness:     witness,
		Num:         best,
		Den:         sk.DenOut,
		Evaluations: len(p.Sources),
		Rounds:      p.InitRounds + int64(len(p.Sources))*p.T(),
	}
	if best >= graph.Inf {
		res.Value = float64(graph.Inf)
	} else {
		res.Value = float64(best) / float64(sk.DenOut)
	}
	return res, nil
}

// The fixed schedules of the Lemma 3.5 decomposition. These are the
// single source of truth: internal/core's cost model (core/cost.go)
// charges them inside the quantum search by delegating here, and the
// parity tests in core verify the executable procedures above never
// exceed them.

// Alg1Schedule is the fixed Algorithm 1 schedule: (i_max+1) scales of
// (1+2T)ℓ + 2 rounds each.
func Alg1Schedule(n int, w int64, l int, eps Eps) int64 {
	return int64(IMax(n, w, eps)+1) * ((1+2*eps.T)*int64(l) + 2)
}

// Alg3Schedule is the fixed Algorithm 3 schedule: the delay broadcast
// (D + b), then maxDelay + alg1 + 1 logical rounds stretched into C
// subrounds each.
func Alg3Schedule(n int, w int64, l int, eps Eps, b int, d int64) int64 {
	c := int64(SubroundsPerLogical(n))
	maxDelay := int64(b)*c + 1
	return d + int64(b) + (maxDelay+Alg1Schedule(n, w, l, eps)+1)*c
}

// EmbedSchedule is the Algorithm 4 schedule: every skeleton node
// broadcasts its k shortest overlay edges, pipelined in O(D + b·k).
func EmbedSchedule(d int64, b, k int) int64 {
	return d + int64(b*k) + 1
}

// OverlaySchedule is the Algorithm 5 schedule: Algorithm 1 on the
// overlay (b+1 nodes, weights up to n·W, hop budget ⌈4b/k⌉), each
// logical round a global O(D) broadcast, plus the O(b·C) volume term.
func OverlaySchedule(n int, w int64, b, k int, eps Eps, d int64) int64 {
	lp := (4*b + k - 1) / k
	if lp < 1 {
		lp = 1
	}
	return Alg1Schedule(b+1, int64(n)*w, lp, eps)*(d+1) + int64(b)*int64(SubroundsPerLogical(n))
}
