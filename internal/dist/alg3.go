// Executable Algorithm 3: multi-source (1+ε)-approximate ℓ-hop-bounded
// SSSP. The b sources run staggered copies of Algorithm 1, each starting
// after a random delay (SampleDelays), and every logical round is
// stretched into C = SubroundsPerLogical(n) physical subrounds so one
// edge can carry the C-in-expectation colliding broadcasts; announcements
// that still collide queue and drain one per edge per physical round, so
// the bandwidth constraint is never violated. The run opens with the
// leader's pipelined O(D + b)-round dissemination of the delay vector.
//
// As with Algorithm 1 the overall schedule is a fixed constant of
// (n, W, ℓ, ε, b, D) — exactly the alg3Rounds formula internal/core
// charges — and unused rounds are idle padding.

package dist

import (
	"fmt"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// Message kinds of Algorithm 3. kindDelay carries (token index, delay)
// during the leader's dissemination; kindAlg3 carries
// (source index, scale, value, hops) relaxations.
const (
	kindDelay uint8 = 33
	kindAlg3  uint8 = 34
)

// alg3Proc is one node of the executable Algorithm 3.
type alg3Proc struct {
	sources []int
	delays  []int
	l       int
	eps     Eps
	imax    int
	c       int64 // subrounds per logical round
	base    int64 // D + b: delay-dissemination prologue
	phaseL  int64 // (1+2T)ℓ + 2 logical rounds per scale
	total   int64 // fixed overall schedule

	env     *congest.Env
	weights map[int]int64 // neighbor ID -> edge weight
	den     int64
	capVal  int64
	srcIdx  int // index of this node in sources, or -1
	started []bool

	tokens   map[int]int // delay tokens learned during the prologue
	nextSend []int       // per-neighbor index of the next delay token to forward

	best  [][]int64 // per (source, scale) value
	hops  [][]int64 // hop count witnessing best
	queue [][]qmsg  // per-neighbor pending announcements
}

type qmsg struct{ j, i int }

var _ congest.Proc = (*alg3Proc)(nil)

// Init implements congest.Proc.
func (p *alg3Proc) Init(env *congest.Env) {
	p.env = env
	p.weights = neighborWeights(env)
	p.den = p.eps.Den(p.l)
	p.capVal = (1 + 2*p.eps.T) * int64(p.l)
	p.srcIdx = -1
	for j, s := range p.sources {
		if s == env.ID {
			p.srcIdx = j
			break
		}
	}
	p.started = make([]bool, p.imax+1)
	p.tokens = make(map[int]int)
	if env.ID == 0 {
		for j, d := range p.delays {
			p.tokens[j] = d
		}
	}
	p.nextSend = make([]int, len(env.Neighbors))
	p.best = make([][]int64, len(p.sources))
	p.hops = make([][]int64, len(p.sources))
	for j := range p.best {
		p.best[j] = make([]int64, p.imax+1)
		p.hops[j] = make([]int64, p.imax+1)
		for i := range p.best[j] {
			p.best[j][i] = graph.Inf
		}
	}
	p.queue = make([][]qmsg, len(env.Neighbors))
}

// Step implements congest.Proc.
func (p *alg3Proc) Step(round int, inbox []congest.Received) ([]congest.Send, bool) {
	r := int64(round)
	if r >= p.total {
		return nil, true
	}
	if r < p.base {
		return p.prologue(inbox), false
	}

	t := (r - p.base) / p.c // logical round

	// Absorb relaxations (late arrivals stay sound: every carried value
	// is the length of a real path with its hop count).
	for _, rcv := range inbox {
		if rcv.Msg.Kind != kindAlg3 {
			continue
		}
		j, i := int(rcv.Msg.A), int(rcv.Msg.B)
		if j < 0 || j >= len(p.sources) || i < 0 || i > p.imax {
			continue
		}
		w := ceilDiv(p.weightTo(rcv.From)*p.den, int64(1)<<uint(i))
		cand, nh := rcv.Msg.C+w, rcv.Msg.D+1
		if nh <= int64(p.l) && cand <= p.capVal && cand < p.best[j][i] {
			p.best[j][i] = cand
			p.hops[j][i] = nh
			p.enqueue(j, i)
		}
	}

	// A source opens each of its scales on schedule: scale i begins at
	// logical round delay_j + i·phaseL.
	if p.srcIdx >= 0 {
		d := int64(p.delays[p.srcIdx])
		for i := 0; i <= p.imax; i++ {
			if !p.started[i] && t >= d+int64(i)*p.phaseL {
				p.started[i] = true
				p.best[p.srcIdx][i] = 0
				p.hops[p.srcIdx][i] = 0
				p.enqueue(p.srcIdx, i)
			}
		}
	}

	// Drain one queued announcement per neighbor per physical round.
	var out []congest.Send
	if r < p.total-1 {
		for ni, a := range p.env.Neighbors {
			if len(p.queue[ni]) == 0 {
				continue
			}
			m := p.queue[ni][0]
			p.queue[ni] = p.queue[ni][1:]
			out = append(out, congest.Send{To: a.To, Msg: congest.Message{
				Kind: kindAlg3,
				A:    int64(m.j), B: int64(m.i),
				C: p.best[m.j][m.i], D: p.hops[m.j][m.i],
			}})
		}
	}
	return out, r == p.total-1
}

// prologue is the pipelined leader broadcast of the delay vector: each
// round, each edge forwards the lowest-index token its tail knows and
// has not yet sent on that edge, so token j reaches a node at hop
// distance h by round j+h — all tokens everywhere within D + b rounds.
func (p *alg3Proc) prologue(inbox []congest.Received) []congest.Send {
	for _, rcv := range inbox {
		if rcv.Msg.Kind == kindDelay {
			p.tokens[int(rcv.Msg.A)] = int(rcv.Msg.B)
		}
	}
	var out []congest.Send
	for ni, a := range p.env.Neighbors {
		idx := p.nextSend[ni]
		if d, ok := p.tokens[idx]; ok && idx < len(p.delays) {
			p.nextSend[ni]++
			out = append(out, congest.Send{To: a.To, Msg: congest.Message{
				Kind: kindDelay, A: int64(idx), B: int64(d),
			}})
		}
	}
	return out
}

// enqueue schedules an announcement of (source j, scale i) to every
// neighbor, deduplicating so the eventual send carries the latest value.
func (p *alg3Proc) enqueue(j, i int) {
	for ni := range p.queue {
		dup := false
		for _, m := range p.queue[ni] {
			if m.j == j && m.i == i {
				dup = true
				break
			}
		}
		if !dup {
			p.queue[ni] = append(p.queue[ni], qmsg{j, i})
		}
	}
}

func (p *alg3Proc) weightTo(from int) int64 {
	w, ok := p.weights[from]
	if !ok {
		panic("dist: Algorithm 3 message from non-neighbor")
	}
	return w
}

// RunAlg3 executes Algorithm 3 for the given sources and delays (length
// must match; use SampleDelays to draw them) with hop budget l and
// rounding parameter eps. It returns one DistEstimate per source and the
// exact simulation statistics; the measured rounds equal the fixed
// schedule D + b + (bC+1 + alg1 + 1)·C that internal/core charges.
func RunAlg3(g *graph.Graph, sources []int, delays []int, l int, eps Eps, opts congest.Options) ([]*DistEstimate, congest.Stats, error) {
	if len(sources) == 0 {
		return nil, congest.Stats{}, fmt.Errorf("dist: Algorithm 3 needs at least one source")
	}
	if len(delays) != len(sources) {
		return nil, congest.Stats{}, fmt.Errorf("dist: %d delays for %d sources", len(delays), len(sources))
	}
	for _, s := range sources {
		if s < 0 || s >= g.N() {
			return nil, congest.Stats{}, fmt.Errorf("dist: Algorithm 3 source %d out of range [0,%d)", s, g.N())
		}
	}
	if l < 1 {
		l = 1
	}
	if eps.T < 1 {
		eps.T = 1
	}
	n := g.N()
	b := len(sources)
	c := int64(SubroundsPerLogical(n))
	maxDelay := int64(b)*c + 1
	for j, d := range delays {
		if int64(d) >= maxDelay {
			return nil, congest.Stats{}, fmt.Errorf("dist: delay[%d] = %d >= schedule bound %d", j, d, maxDelay)
		}
	}
	imax := IMax(n, maxW(g), eps)
	phaseL := (1+2*eps.T)*int64(l) + 2
	base := g.UnweightedDiameter() + int64(b)
	total := base + (maxDelay+int64(imax+1)*phaseL+1)*c
	if opts.MaxRounds == 0 {
		opts.MaxRounds = int(total) + 8
	}

	nodes := make([]*alg3Proc, n)
	procs := make([]congest.Proc, n)
	for i := range procs {
		nodes[i] = &alg3Proc{
			sources: sources, delays: delays, l: l, eps: eps,
			imax: imax, c: c, base: base, phaseL: phaseL, total: total,
		}
		procs[i] = nodes[i]
	}
	sim, err := congest.NewSim(g, procs, opts)
	if err != nil {
		return nil, congest.Stats{}, err
	}
	stats, err := sim.Run()
	if err != nil {
		return nil, stats, err
	}
	out := make([]*DistEstimate, b)
	for j, src := range sources {
		est := &DistEstimate{Source: src, Num: make([]int64, n), Den: eps.Den(l)}
		for v, p := range nodes {
			num := graph.Inf
			for i := 0; i <= imax; i++ {
				if bh := p.best[j][i]; bh != graph.Inf {
					if scaled := bh * (int64(1) << uint(i)); scaled < num {
						num = scaled
					}
				}
			}
			est.Num[v] = num
		}
		out[j] = est
	}
	return out, stats, nil
}
