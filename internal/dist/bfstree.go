// An executable BFS-tree flood in the CONGEST simulator. This is the
// simplest real distributed procedure in the repository: internal/server
// runs it on the lower-bound gadgets to exercise the Lemma 4.1 ownership
// schedule with genuine traffic, and the paper's Algorithm 3 uses a BFS
// tree for its leader broadcast/converge-cast phases.

package dist

import (
	"fmt"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// kindBFSTree tags BFS announcements; A carries the sender's depth.
const kindBFSTree uint8 = 31

// BFSTreeProc is a congest.Proc that floods a BFS tree from Root for at
// most Budget rounds. Every node announces its depth once, in the round
// it is discovered; nodes not reached within the budget finish with no
// parent. The procedure quiesces by round Budget+1, so a simulation with
// MaxRounds >= Budget+2 always terminates cleanly.
type BFSTreeProc struct {
	// Root is the flood source.
	Root int
	// Budget is the round budget: no announcements are sent in rounds
	// >= Budget, and every node reports done by round Budget.
	Budget int

	env       *congest.Env
	depth     int64
	parent    int
	announced bool
}

var _ congest.Proc = (*BFSTreeProc)(nil)

// Init implements congest.Proc.
func (p *BFSTreeProc) Init(env *congest.Env) {
	p.env = env
	p.depth = graph.Inf
	p.parent = -1
	p.announced = false
	if env.ID == p.Root {
		p.depth = 0
	}
}

// Step implements congest.Proc: adopt the first (lowest-depth) announcer
// as parent, then announce the node's own depth to every neighbor once.
func (p *BFSTreeProc) Step(round int, inbox []congest.Received) ([]congest.Send, bool) {
	for _, rcv := range inbox {
		if rcv.Msg.Kind != kindBFSTree {
			continue
		}
		if d := rcv.Msg.A + 1; d < p.depth {
			p.depth = d
			p.parent = rcv.From
		}
	}
	var out []congest.Send
	if p.depth != graph.Inf && !p.announced && round < p.Budget {
		p.announced = true
		for _, a := range p.env.Neighbors {
			out = append(out, congest.Send{To: a.To, Msg: congest.Message{Kind: kindBFSTree, A: p.depth}})
		}
	}
	return out, p.announced || round >= p.Budget
}

// Depth returns the node's BFS depth (graph.Inf if not discovered).
func (p *BFSTreeProc) Depth() int64 { return p.depth }

// Parent returns the node's BFS parent (-1 for the root and for nodes
// the flood did not reach within the budget).
func (p *BFSTreeProc) Parent() int { return p.parent }

// RunBFSTree floods a BFS tree from root for at most budget rounds and
// returns the parent pointers (-1 for the root and unreached nodes), the
// hop depths (graph.Inf for unreached nodes), and the exact simulation
// statistics.
func RunBFSTree(g *graph.Graph, root, budget int, opts congest.Options) ([]int, []int64, congest.Stats, error) {
	if root < 0 || root >= g.N() {
		return nil, nil, congest.Stats{}, fmt.Errorf("dist: BFS root %d out of range [0,%d)", root, g.N())
	}
	if budget < 0 {
		budget = 0
	}
	nodes := make([]*BFSTreeProc, g.N())
	procs := make([]congest.Proc, g.N())
	for i := range procs {
		nodes[i] = &BFSTreeProc{Root: root, Budget: budget}
		procs[i] = nodes[i]
	}
	sim, err := congest.NewSim(g, procs, opts)
	if err != nil {
		return nil, nil, congest.Stats{}, err
	}
	stats, err := sim.Run()
	if err != nil {
		return nil, nil, stats, err
	}
	parent := make([]int, g.N())
	depth := make([]int64, g.N())
	for v, p := range nodes {
		parent[v] = p.Parent()
		depth[v] = p.Depth()
	}
	return parent, depth, stats, nil
}
