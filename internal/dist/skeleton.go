// Skeleton-graph machinery of Lemmas 3.2/3.3: from a sampled vertex set
// S_i, build the overlay the distributed algorithm would assemble
// (rounded ℓ-hop distances between skeleton nodes, sparsified to the k
// shortest overlay edges per node, Algorithm 4) and answer approximate
// eccentricity queries ẽ_{G,w,i}(s) through it (Algorithm 5 + the local
// combine of Lemma 3.5).
//
// The centralized build computes exactly what the executable procedures
// (RunAlg1/RunAlg3) converge to; the round cost of assembling it is
// charged by internal/core's cost model, whose schedules the parity
// tests check against the executable procedures.

package dist

import (
	"sort"

	"qcongest/internal/graph"
)

// Skeleton is the Lemma 3.2 overlay for one sampled set S_i, ready to
// answer ẽ_{G,w,i}(·) queries. All distance values are integer
// numerators over the common denominator DenOut; a numerator of
// graph.Inf marks a pair unreachable within the hop budget.
type Skeleton struct {
	// G is the underlying network.
	G *graph.Graph
	// Sources is the skeleton node set S_i (in the order given).
	Sources []int
	// L is the hop budget ℓ of the bounded-hop distance computations.
	L int
	// K is the Algorithm 4 sparsification parameter: each skeleton node
	// keeps its k shortest overlay edges.
	K int
	// Eps is the rounding parameter ε = 1/T.
	Eps Eps
	// DenOut is the common denominator 2·T·ℓ of every numerator this
	// skeleton returns.
	DenOut int64

	idx     map[int]int     // source vertex -> index in Sources
	rows    map[int][]int64 // d̃^ℓ(v, ·) numerators, keyed by vertex
	overlay [][]int64       // b×b overlay distances (numerators)
	ecc     map[int]int64   // memoized ẽ numerators
}

// BuildSkeleton computes the Lemma 3.2 skeleton of the set s in g with
// hop budget l, sparsification parameter k, and rounding parameter eps.
// Degenerate parameters are clamped to 1 so every input is runnable.
//
// For each skeleton node the (1+ε)-rounded ℓ-hop distances to all of V
// are computed (the numerators internal/core's memory note refers to:
// O(|S_i|·n) of them), then the overlay is assembled and sparsified to
// the k shortest edges per node, and overlay distances between skeleton
// nodes are taken with the Algorithm 5 hop bound ⌈4b/k⌉.
func BuildSkeleton(g *graph.Graph, s []int, l, k int, eps Eps) *Skeleton {
	if l < 1 {
		l = 1
	}
	if k < 1 {
		k = 1
	}
	if eps.T < 1 {
		eps.T = 1
	}
	sk := &Skeleton{
		G:       g,
		Sources: s,
		L:       l,
		K:       k,
		Eps:     eps,
		DenOut:  eps.Den(l),
		idx:     make(map[int]int, len(s)),
		rows:    make(map[int][]int64, len(s)),
		ecc:     make(map[int]int64),
	}
	for j, v := range s {
		if _, dup := sk.idx[v]; !dup {
			sk.idx[v] = j
		}
		if _, ok := sk.rows[v]; !ok {
			sk.rows[v] = roundedBoundedHopDist(g, v, l, eps)
		}
	}
	sk.buildOverlay()
	return sk
}

// roundedBoundedHopDist returns the numerators of the (1+ε)-approximate
// ℓ-hop distances d̃^ℓ(src, ·) over denominator eps.Den(l): the min over
// rounding scales i = 0..i_max of the ℓ-hop Bellman-Ford distance under
// weights ⌈w·2Tℓ/2^i⌉, rescaled by 2^i. Rounding up makes every value
// the length of a real path (never an undershoot); for a pair at true
// distance d with a min-weight path of at most ℓ hops, the scale with
// 2^(i-1) < d <= 2^i yields a value of at most (1+ε)·d.
func roundedBoundedHopDist(g *graph.Graph, src, l int, eps Eps) []int64 {
	n := g.N()
	den := eps.Den(l)
	cap64 := (1 + 2*eps.T) * int64(l) // prune bound: scale-i values above it belong to larger scales
	imax := IMax(n, maxW(g), eps)

	out := make([]int64, n)
	for i := range out {
		out[i] = graph.Inf
	}
	cur := make([]int64, n)
	next := make([]int64, n)
	for i := 0; i <= imax; i++ {
		scale := int64(1) << uint(i)
		for v := range cur {
			cur[v] = graph.Inf
		}
		cur[src] = 0
		for hop := 0; hop < l; hop++ {
			copy(next, cur)
			changed := false
			for _, e := range g.Edges() {
				w := ceilDiv(e.W*den, scale)
				if cur[e.U] != graph.Inf && cur[e.U]+w < next[e.V] && cur[e.U]+w <= cap64 {
					next[e.V] = cur[e.U] + w
					changed = true
				}
				if cur[e.V] != graph.Inf && cur[e.V]+w < next[e.U] && cur[e.V]+w <= cap64 {
					next[e.U] = cur[e.V] + w
					changed = true
				}
			}
			cur, next = next, cur
			if !changed {
				break
			}
		}
		for v, bh := range cur {
			if bh == graph.Inf {
				continue
			}
			if scaled := bh * scale; scaled < out[v] {
				out[v] = scaled
			}
		}
	}
	return out
}

// buildOverlay assembles the Algorithm 4 overlay: complete rounded
// distances between skeleton nodes, sparsified to the union of each
// node's k shortest edges, then closed under the Algorithm 5 hop bound
// ⌈4b/k⌉ by Bellman-Ford on the overlay.
func (sk *Skeleton) buildOverlay() {
	b := len(sk.Sources)
	full := make([][]int64, b)
	for j, v := range sk.Sources {
		full[j] = make([]int64, b)
		row := sk.rows[v]
		for t, u := range sk.Sources {
			full[j][t] = row[u]
		}
	}

	// Keep edge (j,t) if it is among the k shortest of either endpoint.
	keep := make([][]bool, b)
	for j := range keep {
		keep[j] = make([]bool, b)
	}
	order := make([]int, b)
	for j := 0; j < b; j++ {
		for t := range order {
			order[t] = t
		}
		sort.Slice(order, func(a, c int) bool { return full[j][order[a]] < full[j][order[c]] })
		kept := 0
		for _, t := range order {
			if t == j || full[j][t] == graph.Inf {
				continue
			}
			keep[j][t] = true
			keep[t][j] = true
			kept++
			if kept >= sk.K {
				break
			}
		}
	}

	// Overlay hop bound ℓ' = ⌈4b/k⌉ (at least 1), per Algorithm 5.
	lp := (4*b + sk.K - 1) / sk.K
	if lp < 1 {
		lp = 1
	}
	sk.overlay = make([][]int64, b)
	cur := make([]int64, b)
	next := make([]int64, b)
	for j := 0; j < b; j++ {
		for t := range cur {
			cur[t] = graph.Inf
		}
		cur[j] = 0
		for hop := 0; hop < lp; hop++ {
			copy(next, cur)
			changed := false
			for u := 0; u < b; u++ {
				if cur[u] == graph.Inf {
					continue
				}
				for t := 0; t < b; t++ {
					if !keep[u][t] {
						continue
					}
					if d := cur[u] + full[u][t]; d < next[t] {
						next[t] = d
						changed = true
					}
				}
			}
			cur, next = next, cur
			if !changed {
				break
			}
		}
		sk.overlay[j] = append([]int64(nil), cur...)
	}
}

// row returns d̃^ℓ(v, ·), computing and caching it for vertices outside
// the skeleton (Lemma 3.5 evaluates ẽ at skeleton nodes, but queries at
// arbitrary vertices are supported for the experiment harness).
func (sk *Skeleton) row(v int) []int64 {
	if r, ok := sk.rows[v]; ok {
		return r
	}
	r := roundedBoundedHopDist(sk.G, v, sk.L, sk.Eps)
	sk.rows[v] = r
	return r
}

// ApproxEccentricity returns the numerator of ẽ_{G,w,i}(v) over DenOut:
// the Lemma 3.3 approximate eccentricity of v through the skeleton,
// max_u min_t [ d̃_H(v, t) + d̃^ℓ(t, u) ] with t ranging over the
// skeleton nodes and v itself. It never undershoots the true
// eccentricity e_{G,w}(v); whenever every min-weight path from v has at
// most ℓ hops it is at most (1+ε)·e_{G,w}(v)·DenOut. A value of
// graph.Inf marks some vertex unreachable within the hop budget.
func (sk *Skeleton) ApproxEccentricity(v int) int64 {
	if e, ok := sk.ecc[v]; ok {
		return e
	}
	rowV := sk.row(v)
	b := len(sk.Sources)

	// entry[t]: best known distance from v to skeleton node t — directly
	// (one rounded ℓ-hop leg) or through the sparsified overlay.
	entry := make([]int64, b)
	if j, isSource := sk.idx[v]; isSource {
		copy(entry, sk.overlay[j])
		for t, u := range sk.Sources {
			if d := rowV[u]; d < entry[t] {
				entry[t] = d
			}
		}
	} else {
		for t, u := range sk.Sources {
			entry[t] = rowV[u]
		}
		for j, u := range sk.Sources {
			if rowV[u] == graph.Inf {
				continue
			}
			for t := 0; t < b; t++ {
				if sk.overlay[j][t] == graph.Inf {
					continue
				}
				if d := rowV[u] + sk.overlay[j][t]; d < entry[t] {
					entry[t] = d
				}
			}
		}
	}

	var ecc int64
	for u := 0; u < sk.G.N(); u++ {
		best := rowV[u]
		for t, tv := range sk.Sources {
			if entry[t] == graph.Inf {
				continue
			}
			rt := sk.rows[tv]
			if rt[u] == graph.Inf {
				continue
			}
			if d := entry[t] + rt[u]; d < best {
				best = d
			}
		}
		if best > ecc {
			ecc = best
		}
		if ecc >= graph.Inf {
			ecc = graph.Inf
			break
		}
	}
	sk.ecc[v] = ecc
	return ecc
}

// TopMass returns the fraction of skeleton nodes s in S_i whose
// approximate eccentricity numerator is at least num: the mass the outer
// Lemma 3.1 search is promised on good indices (Lemma 3.4's Θ(r/n) comes
// from this quantity aggregated over the sampled sets).
func TopMass(sk *Skeleton, num int64) float64 {
	if len(sk.Sources) == 0 {
		return 0
	}
	hit := 0
	for _, s := range sk.Sources {
		if sk.ApproxEccentricity(s) >= num {
			hit++
		}
	}
	return float64(hit) / float64(len(sk.Sources))
}

// BottomMass is the radius-side counterpart of TopMass: the fraction of
// skeleton nodes whose approximate eccentricity numerator is at most
// num. For any threshold, TopMass(sk, t) + BottomMass(sk, t) >= 1, with
// equality exactly when no node sits at the threshold.
func BottomMass(sk *Skeleton, num int64) float64 {
	if len(sk.Sources) == 0 {
		return 0
	}
	hit := 0
	for _, s := range sk.Sources {
		if sk.ApproxEccentricity(s) <= num {
			hit++
		}
	}
	return float64(hit) / float64(len(sk.Sources))
}

// maxW returns the maximum edge weight, at least 1.
func maxW(g *graph.Graph) int64 {
	w := g.MaxWeight()
	if w < 1 {
		w = 1
	}
	return w
}
