// Skeleton-graph machinery of Lemmas 3.2/3.3: from a sampled vertex set
// S_i, build the overlay the distributed algorithm would assemble
// (rounded ℓ-hop distances between skeleton nodes, sparsified to the k
// shortest overlay edges per node, Algorithm 4) and answer approximate
// eccentricity queries ẽ_{G,w,i}(s) through it (Algorithm 5 + the local
// combine of Lemma 3.5).
//
// The centralized build computes exactly what the executable procedures
// (RunAlg1/RunAlg3) converge to; the round cost of assembling it is
// charged by internal/core's cost model, whose schedules the parity
// tests check against the executable procedures. The heavy lifting — the
// per-source rounded bounded-hop sweeps — runs on the frontier kernel of
// graph.DistWorkspace through the pooled build arena in kernel.go, and
// all bookkeeping is index-keyed flat slices (no maps on the hot path).

package dist

import (
	"sort"
	"sync"

	"qcongest/internal/graph"
)

// Skeleton is the Lemma 3.2 overlay for one sampled set S_i, ready to
// answer ẽ_{G,w,i}(·) queries. All distance values are integer
// numerators over the common denominator DenOut; a numerator of
// graph.Inf marks a pair unreachable within the hop budget.
//
// Query methods (ApproxEccentricity, TopMass, BottomMass) are safe for
// concurrent use: the lazy row/eccentricity memo is guarded by an
// internal mutex, so a cached skeleton can serve concurrent requests
// (see internal/server's sketch cache).
type Skeleton struct {
	// G is the underlying network.
	G *graph.Graph
	// Sources is the skeleton node set S_i, deduplicated preserving
	// first occurrences (Lemma 3.2's S_i is a set; duplicate entries in
	// the input are collapsed).
	Sources []int
	// L is the hop budget ℓ of the bounded-hop distance computations.
	L int
	// K is the Algorithm 4 sparsification parameter: each skeleton node
	// keeps its k shortest overlay edges.
	K int
	// Eps is the rounding parameter ε = 1/T.
	Eps Eps
	// DenOut is the common denominator 2·T·ℓ of every numerator this
	// skeleton returns.
	DenOut int64

	imax  int   // hoisted scale count: rounding scales run 0..imax
	cap64 int64 // per-scale prune bound (1+2T)·ℓ

	mu   sync.Mutex
	bufs *skelBuffers
}

// BuildSkeleton computes the Lemma 3.2 skeleton of the set s in g with
// hop budget l, sparsification parameter k, and rounding parameter eps,
// with the default worker setting (see BuildSkeletonWith).
func BuildSkeleton(g *graph.Graph, s []int, l, k int, eps Eps) *Skeleton {
	return BuildSkeletonWith(g, s, l, k, eps, BuildSkeletonOpts{})
}

// BuildSkeletonWith is BuildSkeleton with explicit build options.
// Degenerate parameters are clamped to 1 so every input is runnable.
//
// For each skeleton node the (1+ε)-rounded ℓ-hop distances to all of V
// are computed (the numerators internal/core's memory note refers to:
// O(|S_i|·n) of them), then the overlay is assembled and sparsified to
// the k shortest edges per node, and overlay distances between skeleton
// nodes are taken with the Algorithm 5 hop bound ⌈4b/k⌉. The per-source
// computations fan across opts.Workers goroutines with a deterministic
// source-order merge: numerators are byte-identical for every worker
// count.
func BuildSkeletonWith(g *graph.Graph, s []int, l, k int, eps Eps, opts BuildSkeletonOpts) *Skeleton {
	if l < 1 {
		l = 1
	}
	if k < 1 {
		k = 1
	}
	if eps.T < 1 {
		eps.T = 1
	}
	workers := opts.Workers
	if workers == 0 {
		workers = DefaultSkeletonWorkers
	}
	kernel := opts.Kernel
	if kernel == graph.KernelAuto {
		kernel = DefaultKernelMode
	}
	bufs := getSkelBuffers(g)
	// Worker clones inherit the mode (Clone copies it), so one set here
	// covers the sequential path and the fan-out alike. Recycled arenas
	// may carry a previous build's mode, hence unconditional.
	bufs.ws.SetKernelMode(kernel)
	n := g.N()
	sk := &Skeleton{
		G:      g,
		L:      l,
		K:      k,
		Eps:    eps,
		DenOut: eps.Den(l),
		cap64:  (1 + 2*eps.T) * int64(l), // scale-i values above it belong to larger scales
		bufs:   bufs,
	}
	w := bufs.ws.MaxWeight()
	if w < 1 {
		w = 1
	}
	sk.imax = IMax(n, w, eps)

	// Per-arc numerators w·2Tℓ, shared read-only by every worker: scale
	// i's rounded weight ⌈w·2Tℓ/2^i⌉ becomes an add-and-shift.
	bufs.wden = bufs.ws.ArcWeights(bufs.wden)
	for a := range bufs.wden {
		bufs.wden[a] *= sk.DenOut
	}

	bufs.srcIdx = growInt32(bufs.srcIdx, n)
	sk.Sources = dedupSources(s, bufs.srcIdx)

	bufs.rowOf = growInt32(bufs.rowOf, n)
	bufs.ecc = growInt64(bufs.ecc, n)
	for v := 0; v < n; v++ {
		bufs.rowOf[v] = -1
		bufs.ecc[v] = -1
	}
	sk.buildRows(workers)
	for j, v := range sk.Sources {
		bufs.rowOf[v] = int32(j)
	}
	sk.buildOverlay()
	return sk
}

// buildOverlay assembles the Algorithm 4 overlay: complete rounded
// distances between skeleton nodes, sparsified to the union of each
// node's k shortest edges, then closed under the Algorithm 5 hop bound
// ⌈4b/k⌉ by Bellman-Ford on the overlay. All scratch comes from the
// pooled arena.
func (sk *Skeleton) buildOverlay() {
	bufs := sk.bufs
	b := len(sk.Sources)
	n := bufs.ws.N()
	bufs.full = growInt64(bufs.full, b*b)
	full := bufs.full
	for j := range sk.Sources {
		row := bufs.rows[j*n : (j+1)*n]
		for t, u := range sk.Sources {
			full[j*b+t] = row[u]
		}
	}

	// Keep edge (j,t) if it is among the k shortest of either endpoint.
	bufs.keep = growBool(bufs.keep, b*b)
	keep := bufs.keep
	for i := range keep {
		keep[i] = false
	}
	bufs.order = growInts(bufs.order, b)
	order := bufs.order
	for j := 0; j < b; j++ {
		for t := range order {
			order[t] = t
		}
		fr := full[j*b : (j+1)*b]
		sort.Slice(order, func(a, c int) bool { return fr[order[a]] < fr[order[c]] })
		kept := 0
		for _, t := range order {
			if t == j || fr[t] == graph.Inf {
				continue
			}
			keep[j*b+t] = true
			keep[t*b+j] = true
			kept++
			if kept >= sk.K {
				break
			}
		}
	}

	// Overlay hop bound ℓ' = ⌈4b/k⌉ (at least 1), per Algorithm 5.
	lp := (4*b + sk.K - 1) / sk.K
	if lp < 1 {
		lp = 1
	}
	bufs.overlay = growInt64(bufs.overlay, b*b)
	bufs.cur = growInt64(bufs.cur, b)
	bufs.next = growInt64(bufs.next, b)
	cur, next := bufs.cur, bufs.next
	for j := 0; j < b; j++ {
		for t := range cur {
			cur[t] = graph.Inf
		}
		cur[j] = 0
		for hop := 0; hop < lp; hop++ {
			copy(next, cur)
			changed := false
			for u := 0; u < b; u++ {
				if cur[u] == graph.Inf {
					continue
				}
				for t := 0; t < b; t++ {
					if !keep[u*b+t] {
						continue
					}
					if d := cur[u] + full[u*b+t]; d < next[t] {
						next[t] = d
						changed = true
					}
				}
			}
			cur, next = next, cur
			if !changed {
				break
			}
		}
		copy(bufs.overlay[j*b:(j+1)*b], cur)
	}
	bufs.cur, bufs.next = cur, next
}

// row returns d̃^ℓ(v, ·), computing and caching it for vertices outside
// the skeleton (Lemma 3.5 evaluates ẽ at skeleton nodes, but queries at
// arbitrary vertices are supported for the experiment harness). Callers
// must hold sk.mu.
func (sk *Skeleton) row(v int) []int64 {
	bufs := sk.bufs
	n := bufs.ws.N()
	if j := bufs.rowOf[v]; j >= 0 {
		return bufs.rows[int(j)*n : (int(j)+1)*n]
	}
	j := len(bufs.rows) / n
	if cap(bufs.rows) < (j+1)*n {
		// Grow geometrically: query sweeps over many non-source vertices
		// would otherwise copy the whole slab every other row.
		newCap := 2 * cap(bufs.rows)
		if newCap < (j+1)*n {
			newCap = (j + 1) * n
		}
		grown := make([]int64, (j+1)*n, newCap)
		copy(grown, bufs.rows)
		bufs.rows = grown
	} else {
		bufs.rows = bufs.rows[:(j+1)*n]
	}
	bufs.scale = sk.roundedRowInto(bufs.ws, bufs.scale, bufs.rows[j*n:(j+1)*n], v)
	bufs.rowOf[v] = int32(j)
	return bufs.rows[j*n : (j+1)*n]
}

// ApproxEccentricity returns the numerator of ẽ_{G,w,i}(v) over DenOut:
// the Lemma 3.3 approximate eccentricity of v through the skeleton,
// max_u min_t [ d̃_H(v, t) + d̃^ℓ(t, u) ] with t ranging over the
// skeleton nodes and v itself. It never undershoots the true
// eccentricity e_{G,w}(v); whenever every min-weight path from v has at
// most ℓ hops it is at most (1+ε)·e_{G,w}(v)·DenOut. A value of
// graph.Inf marks some vertex unreachable within the hop budget.
func (sk *Skeleton) ApproxEccentricity(v int) int64 {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	bufs := sk.bufs
	if e := bufs.ecc[v]; e >= 0 {
		return e
	}
	rowV := sk.row(v)
	b := len(sk.Sources)
	n := bufs.ws.N()

	// entry[t]: best known distance from v to skeleton node t — directly
	// (one rounded ℓ-hop leg) or through the sparsified overlay.
	bufs.entry = growInt64(bufs.entry, b)
	entry := bufs.entry
	if j := bufs.srcIdx[v]; j >= 0 {
		copy(entry, bufs.overlay[int(j)*b:(int(j)+1)*b])
		for t, u := range sk.Sources {
			if d := rowV[u]; d < entry[t] {
				entry[t] = d
			}
		}
	} else {
		for t, u := range sk.Sources {
			entry[t] = rowV[u]
		}
		for j, u := range sk.Sources {
			if rowV[u] == graph.Inf {
				continue
			}
			ov := bufs.overlay[j*b : (j+1)*b]
			for t := 0; t < b; t++ {
				if ov[t] == graph.Inf {
					continue
				}
				if d := rowV[u] + ov[t]; d < entry[t] {
					entry[t] = d
				}
			}
		}
	}

	var ecc int64
	for u := 0; u < sk.G.N(); u++ {
		best := rowV[u]
		for t := range sk.Sources {
			if entry[t] == graph.Inf {
				continue
			}
			rt := bufs.rows[t*n : (t+1)*n]
			if rt[u] == graph.Inf {
				continue
			}
			if d := entry[t] + rt[u]; d < best {
				best = d
			}
		}
		if best > ecc {
			ecc = best
		}
		if ecc >= graph.Inf {
			ecc = graph.Inf
			break
		}
	}
	bufs.ecc[v] = ecc
	return ecc
}

// TopMass returns the fraction of skeleton nodes s in S_i whose
// approximate eccentricity numerator is at least num: the mass the outer
// Lemma 3.1 search is promised on good indices (Lemma 3.4's Θ(r/n) comes
// from this quantity aggregated over the sampled sets).
func TopMass(sk *Skeleton, num int64) float64 {
	if len(sk.Sources) == 0 {
		return 0
	}
	hit := 0
	for _, s := range sk.Sources {
		if sk.ApproxEccentricity(s) >= num {
			hit++
		}
	}
	return float64(hit) / float64(len(sk.Sources))
}

// BottomMass is the radius-side counterpart of TopMass: the fraction of
// skeleton nodes whose approximate eccentricity numerator is at most
// num. For any threshold, TopMass(sk, t) + BottomMass(sk, t) >= 1, with
// equality exactly when no node sits at the threshold.
func BottomMass(sk *Skeleton, num int64) float64 {
	if len(sk.Sources) == 0 {
		return 0
	}
	hit := 0
	for _, s := range sk.Sources {
		if sk.ApproxEccentricity(s) <= num {
			hit++
		}
	}
	return float64(hit) / float64(len(sk.Sources))
}
