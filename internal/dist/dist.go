// Package dist implements the distributed distance-computation core of
// the paper's §3 (Lemmas 3.2-3.5): the ε-net of rounding scales behind
// Algorithm 1, the skeleton-graph machinery that turns a sampled vertex
// set S_i into approximate eccentricities ẽ_{G,w,i}(s), and executable
// CONGEST procedures (a BFS-tree flood, single- and multi-source
// bounded-hop SSSP) whose fixed round schedules internal/core's cost
// model charges.
//
// Two design rules hold everywhere:
//
//   - Approximations are one-sided and exact-rational. Every estimate is
//     the length of a real path under weights rounded up, so it never
//     undershoots the true distance, and it is stored as an integer
//     numerator over the common denominator 2·T·ℓ (Eps.Den) so that
//     cross-set comparisons in internal/core stay exact.
//   - Procedures run on fixed schedules. The quantum framework of
//     Lemma 3.1 executes Setup/Evaluation coherently, which requires the
//     round schedule of every subroutine to be a known constant of the
//     parameters, not a data-dependent quantity. The executable
//     procedures here therefore pad to their announced schedule, and the
//     parity tests in internal/core verify the measured rounds never
//     exceed the cost model.
package dist

import (
	"math/bits"
	"math/rand"
)

// Eps is the paper's approximation parameter ε = 1/T (Eq. (1) sets
// T = ⌈log₂ n⌉, giving ε = o(1)). Keeping the integer T rather than a
// float lets every rounded distance stay an exact rational.
type Eps struct {
	// T is the inverse approximation parameter, T = 1/ε >= 1.
	T int64
}

// Float returns ε as a float64 (1 for degenerate T < 1).
func (e Eps) Float() float64 {
	if e.T < 1 {
		return 1
	}
	return 1 / float64(e.T)
}

// Den returns the common denominator 2·T·ℓ under which all rounded
// ℓ-hop distances are represented as integer numerators.
func (e Eps) Den(l int) int64 {
	t := e.T
	if t < 1 {
		t = 1
	}
	if l < 1 {
		l = 1
	}
	return 2 * t * int64(l)
}

// EpsForN returns the Eq. (1) choice ε = 1/⌈log₂ n⌉ (clamped to ε <= 1
// so degenerate networks stay runnable).
func EpsForN(n int) Eps {
	t := int64(ceilLog2(int64(n)))
	if t < 1 {
		t = 1
	}
	return Eps{T: t}
}

// IMax returns the largest rounding index i_max of Algorithm 1: distance
// guesses run over powers of two 2⁰..2^i_max with 2^i_max >= n·W, so
// every pairwise distance (at most (n-1)·W) is covered by some scale.
// The schedule length of Algorithm 1 is (i_max+1) phases. The ε
// parameter does not change the number of scales — it sets the rounding
// resolution within each scale — but it is part of the parameter tuple
// everywhere Algorithm 1 appears, so it is accepted here too.
func IMax(n int, w int64, _ Eps) int {
	if n < 1 {
		n = 1
	}
	if w < 1 {
		w = 1
	}
	return ceilLog2(int64(n) * w)
}

// SubroundsPerLogical returns C = ⌈log₂ n⌉, the number of physical
// CONGEST rounds one logical round of Algorithm 3 is stretched into:
// with random source delays, at most C of the b staggered broadcasts
// collide on one edge per logical round w.h.p., and C subrounds give
// each edge the bandwidth to carry all of them.
func SubroundsPerLogical(n int) int {
	c := ceilLog2(int64(n))
	if c < 1 {
		c = 1
	}
	return c
}

// SampleDelays draws the random start delays of Algorithm 3: one delay
// per source, uniform on {0, ..., b·C} logical rounds where
// C = SubroundsPerLogical(n). The cost model's maximum delay b·C+1
// (internal/core) is a strict upper bound on every sample.
func SampleDelays(b, n int, rng *rand.Rand) []int {
	if b < 0 {
		b = 0
	}
	span := b*SubroundsPerLogical(n) + 1
	out := make([]int, b)
	for i := range out {
		out[i] = rng.Intn(span)
	}
	return out
}

// ceilLog2 returns ⌈log₂ x⌉ for x >= 1 (0 for x <= 1).
func ceilLog2(x int64) int {
	if x <= 1 {
		return 0
	}
	return bits.Len64(uint64(x - 1))
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
