// Executable Algorithm 1: single-source (1+ε)-approximate ℓ-hop-bounded
// SSSP in the CONGEST simulator. The procedure runs one Bellman-Ford
// phase per rounding scale i = 0..i_max on the up-rounded integer
// weights ⌈w·2Tℓ/2^i⌉, each phase on the fixed schedule
// (1+2T)ℓ + 2 rounds that internal/core's cost model charges
// (alg1PhaseRounds). The schedule is a constant of (n, W, ℓ, ε) — never
// data dependent — because Lemma 3.1 executes these procedures
// coherently and needs their length known in advance; rounds the
// relaxation does not use are idle padding.

package dist

import (
	"fmt"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// kindAlg1 tags Algorithm 1 relaxations; A carries the rounding scale i
// and B the sender's scale-i value.
const kindAlg1 uint8 = 32

// DistEstimate is the output of an Algorithm 1/3 run for one source:
// (1+ε)-approximate ℓ-hop-bounded distances as exact rationals — integer
// numerators over the common denominator Den, with graph.Inf marking
// vertices unreachable within the hop budget.
type DistEstimate struct {
	// Source is the SSSP source vertex.
	Source int
	// Num holds one numerator per vertex.
	Num []int64
	// Den is the shared denominator 2·T·ℓ.
	Den int64
}

// Value returns the estimate for v as a float64 (+Inf when the hop
// budget was exceeded).
func (d *DistEstimate) Value(v int) float64 {
	if d.Num[v] >= graph.Inf {
		return float64(graph.Inf)
	}
	return float64(d.Num[v]) / float64(d.Den)
}

// alg1Proc is one node of the executable Algorithm 1.
type alg1Proc struct {
	src   int
	l     int
	eps   Eps
	imax  int
	phase int64 // (1+2T)ℓ + 2: fixed per-scale schedule
	total int64 // (i_max+1)·phase: fixed overall schedule

	env      *congest.Env
	weights  map[int]int64 // neighbor ID -> edge weight
	den      int64
	capVal   int64
	best     []int64 // per-scale value, capped Bellman-Ford state
	announce bool
	out      []int64 // final numerators, min over scales of best·2^i
}

var _ congest.Proc = (*alg1Proc)(nil)

// Init implements congest.Proc.
func (p *alg1Proc) Init(env *congest.Env) {
	p.env = env
	p.weights = neighborWeights(env)
	p.den = p.eps.Den(p.l)
	p.capVal = (1 + 2*p.eps.T) * int64(p.l)
	p.best = make([]int64, p.imax+1)
	for i := range p.best {
		p.best[i] = graph.Inf
	}
	p.out = nil
}

// Step implements congest.Proc. Scale i occupies rounds
// [i·phase, (i+1)·phase); within a scale, offset 0 is the source's
// announcement and offsets 1..ℓ carry the relaxation wave, so a value
// announced at offset t is the length of a path of at most t hops —
// the hop bound is enforced by the schedule itself.
func (p *alg1Proc) Step(round int, inbox []congest.Received) ([]congest.Send, bool) {
	r := int64(round)
	if r >= p.total {
		return nil, true
	}
	scale := r / p.phase
	offset := r % p.phase
	i := int(scale)

	if offset == 0 {
		p.announce = p.env.ID == p.src
		if p.announce {
			p.best[i] = 0
		}
	}
	if offset <= int64(p.l) {
		for _, rcv := range inbox {
			if rcv.Msg.Kind != kindAlg1 || rcv.Msg.A != scale {
				continue
			}
			w := ceilDiv(p.weightTo(rcv.From)*p.den, int64(1)<<uint(i))
			if cand := rcv.Msg.B + w; cand < p.best[i] && cand <= p.capVal {
				p.best[i] = cand
				p.announce = true
			}
		}
	}
	var out []congest.Send
	if p.announce && offset < int64(p.l) {
		p.announce = false
		for _, a := range p.env.Neighbors {
			out = append(out, congest.Send{To: a.To, Msg: congest.Message{Kind: kindAlg1, A: scale, B: p.best[i]}})
		}
	}
	done := r == p.total-1
	if done {
		p.finish()
	}
	return out, done
}

func (p *alg1Proc) finish() {
	v := graph.Inf
	for i, bh := range p.best {
		if bh == graph.Inf {
			continue
		}
		if scaled := bh * (int64(1) << uint(i)); scaled < v {
			v = scaled
		}
	}
	p.out = []int64{v}
}

func (p *alg1Proc) weightTo(from int) int64 {
	w, ok := p.weights[from]
	if !ok {
		panic("dist: Algorithm 1 message from non-neighbor")
	}
	return w
}

// neighborWeights indexes a node's incident weights by neighbor ID
// (keeping the minimum across parallel edges) so per-message lookups in
// the relaxation loops are O(1) instead of a Neighbors scan.
func neighborWeights(env *congest.Env) map[int]int64 {
	m := make(map[int]int64, len(env.Neighbors))
	for _, a := range env.Neighbors {
		if w, ok := m[a.To]; !ok || a.W < w {
			m[a.To] = a.W
		}
	}
	return m
}

// RunAlg1 executes Algorithm 1 from src with hop budget l and rounding
// parameter eps, returning the (1+ε)-approximate ℓ-hop distances and the
// exact simulation statistics. The measured rounds equal the fixed
// schedule (i_max+1)·((1+2T)ℓ+2) that internal/core charges.
func RunAlg1(g *graph.Graph, src, l int, eps Eps, opts congest.Options) (*DistEstimate, congest.Stats, error) {
	if src < 0 || src >= g.N() {
		return nil, congest.Stats{}, fmt.Errorf("dist: Algorithm 1 source %d out of range [0,%d)", src, g.N())
	}
	if l < 1 {
		l = 1
	}
	if eps.T < 1 {
		eps.T = 1
	}
	imax := IMax(g.N(), maxW(g), eps)
	phase := (1+2*eps.T)*int64(l) + 2
	total := int64(imax+1) * phase
	if opts.MaxRounds == 0 {
		opts.MaxRounds = int(total) + 8
	}

	nodes := make([]*alg1Proc, g.N())
	procs := make([]congest.Proc, g.N())
	for i := range procs {
		nodes[i] = &alg1Proc{src: src, l: l, eps: eps, imax: imax, phase: phase, total: total}
		procs[i] = nodes[i]
	}
	sim, err := congest.NewSim(g, procs, opts)
	if err != nil {
		return nil, congest.Stats{}, err
	}
	stats, err := sim.Run()
	if err != nil {
		return nil, stats, err
	}
	est := &DistEstimate{Source: src, Num: make([]int64, g.N()), Den: eps.Den(l)}
	for v, p := range nodes {
		est.Num[v] = p.out[0]
	}
	return est, stats, nil
}
