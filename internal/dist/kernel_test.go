package dist

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"qcongest/internal/graph"
)

// refRoundedBoundedHopDist is the pre-kernel reference implementation
// of the rounded bounded-hop distances (the full-edge-scan Bellman-Ford
// the repository shipped before the frontier kernel), kept verbatim as
// the golden oracle: the kernel's numerators must match it bit for bit.
func refRoundedBoundedHopDist(g *graph.Graph, src, l int, eps Eps) []int64 {
	n := g.N()
	den := eps.Den(l)
	cap64 := (1 + 2*eps.T) * int64(l)
	w := g.MaxWeight()
	if w < 1 {
		w = 1
	}
	imax := IMax(n, w, eps)

	out := make([]int64, n)
	for i := range out {
		out[i] = graph.Inf
	}
	cur := make([]int64, n)
	next := make([]int64, n)
	for i := 0; i <= imax; i++ {
		scale := int64(1) << uint(i)
		for v := range cur {
			cur[v] = graph.Inf
		}
		cur[src] = 0
		for hop := 0; hop < l; hop++ {
			copy(next, cur)
			changed := false
			for _, e := range g.Edges() {
				w := ceilDiv(e.W*den, scale)
				if cur[e.U] != graph.Inf && cur[e.U]+w < next[e.V] && cur[e.U]+w <= cap64 {
					next[e.V] = cur[e.U] + w
					changed = true
				}
				if cur[e.V] != graph.Inf && cur[e.V]+w < next[e.U] && cur[e.V]+w <= cap64 {
					next[e.U] = cur[e.V] + w
					changed = true
				}
			}
			cur, next = next, cur
			if !changed {
				break
			}
		}
		for v, bh := range cur {
			if bh == graph.Inf {
				continue
			}
			if scaled := bh * scale; scaled < out[v] {
				out[v] = scaled
			}
		}
	}
	return out
}

// goldenGraphs is the E1–E14 workload family: the deterministic shapes
// of the unit suites, the random weighted graphs of the scaling and
// quality experiments (E1–E5), the barbell of the determinism suite,
// and the E14 spine-leaf fabric.
func goldenGraphs() []*graph.Graph {
	rng := rand.New(rand.NewSource(41))
	return []*graph.Graph{
		graph.Path(11),
		graph.Cycle(9),
		graph.Star(8),
		graph.Grid(4, 4),
		graph.Barbell(5, 4),
		graph.RandomWeights(graph.RandomConnected(30, 80, rng), 9, rng),
		graph.RandomWeights(graph.LowDiameterExpanderish(36, 4, rng), 16, rng),
		graph.RandomWeights(graph.DiameterControlled(32, 6, rng), 12, rng),
		graph.RandomWeights(graph.SpineLeaf(3, 5, 4, 2, 1), 7, rng),
	}
}

// TestGoldenKernelEquivalence pins the frontier kernel's numerators bit
// identical to the reference implementation across the experiment
// workload family, several sources, hop budgets, and ε values.
func TestGoldenKernelEquivalence(t *testing.T) {
	for gi, g := range goldenGraphs() {
		for _, eps := range []Eps{{T: 1}, {T: 4}, EpsForN(g.N())} {
			for _, l := range []int{1, 2, 5, g.N() / 2, g.N()} {
				sk := &Skeleton{
					G: g, L: l, K: 1, Eps: eps, DenOut: eps.Den(l),
					cap64: (1 + 2*eps.T) * int64(l),
					imax:  IMax(g.N(), maxW(g), eps),
					bufs:  getSkelBuffers(g),
				}
				sk.bufs.wden = sk.bufs.ws.ArcWeights(sk.bufs.wden)
				for a := range sk.bufs.wden {
					sk.bufs.wden[a] *= sk.DenOut
				}
				for src := 0; src < g.N(); src += 1 + g.N()/5 {
					want := refRoundedBoundedHopDist(g, src, l, eps)
					got := make([]int64, g.N())
					sk.bufs.scale = sk.roundedRowInto(sk.bufs.ws, sk.bufs.scale, got, src)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("graph %d, eps T=%d, l=%d, src=%d: kernel diverged from reference",
							gi, eps.T, l, src)
					}
				}
				sk.Release()
			}
		}
	}
}

// TestGoldenSkeletonRows pins the full BuildSkeleton surface: every
// source row equals the reference computation, and every approximate
// eccentricity is reproduced after a rebuild (the overlay assembly is
// a deterministic function of the rows).
func TestGoldenSkeletonRows(t *testing.T) {
	for gi, g := range goldenGraphs() {
		eps := EpsForN(g.N())
		var s []int
		for v := 0; v < g.N(); v += 3 {
			s = append(s, v)
		}
		l, k := g.N()/2+1, 2
		sk := BuildSkeleton(g, s, l, k, eps)
		n := g.N()
		for j, v := range sk.Sources {
			want := refRoundedBoundedHopDist(g, v, l, eps)
			got := sk.bufs.rows[j*n : (j+1)*n]
			if !reflect.DeepEqual([]int64(got), want) {
				t.Fatalf("graph %d: row of source %d diverged from reference", gi, v)
			}
		}
	}
}

func workerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

// TestSkeletonWorkerDeterminism: numerators (rows, overlay, and every
// derived eccentricity) are byte-identical across worker counts.
func TestSkeletonWorkerDeterminism(t *testing.T) {
	for gi, g := range goldenGraphs() {
		eps := EpsForN(g.N())
		var s []int
		for v := 0; v < g.N(); v += 2 {
			s = append(s, v)
		}
		capture := func(workers int) ([]int64, []int64, []int64) {
			sk := BuildSkeletonWith(g, s, 10, 2, eps, BuildSkeletonOpts{Workers: workers})
			rows := append([]int64(nil), sk.bufs.rows...)
			overlay := append([]int64(nil), sk.bufs.overlay...)
			eccs := make([]int64, g.N())
			for v := 0; v < g.N(); v++ {
				eccs[v] = sk.ApproxEccentricity(v)
			}
			sk.Release()
			return rows, overlay, eccs
		}
		refRows, refOverlay, refEccs := capture(1)
		for _, workers := range workerCounts()[1:] {
			rows, overlay, eccs := capture(workers)
			if !reflect.DeepEqual(rows, refRows) {
				t.Fatalf("graph %d, workers=%d: rows diverged", gi, workers)
			}
			if !reflect.DeepEqual(overlay, refOverlay) {
				t.Fatalf("graph %d, workers=%d: overlay diverged", gi, workers)
			}
			if !reflect.DeepEqual(eccs, refEccs) {
				t.Fatalf("graph %d, workers=%d: eccentricities diverged", gi, workers)
			}
		}
	}
}

// TestSkeletonDeduplicatesSources is the duplicate-source regression
// test: repeats in Sources previously kept the first index in the
// lookup but still allocated one overlay column per occurrence. The
// skeleton must collapse duplicates and answer queries identically to
// the deduplicated build.
func TestSkeletonDeduplicatesSources(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := graph.RandomWeights(graph.RandomConnected(20, 45, rng), 8, rng)
	eps := EpsForN(g.N())
	dup := []int{4, 9, 4, 0, 9, 4, 13, 0}
	uniq := []int{4, 9, 0, 13}

	skDup := BuildSkeleton(g, dup, 12, 2, eps)
	skUniq := BuildSkeleton(g, uniq, 12, 2, eps)
	if !reflect.DeepEqual(skDup.Sources, uniq) {
		t.Fatalf("Sources not deduplicated in order: %v", skDup.Sources)
	}
	if len(skDup.bufs.overlay) != len(uniq)*len(uniq) {
		t.Fatalf("overlay holds %d entries, want %d (one column per unique source)",
			len(skDup.bufs.overlay), len(uniq)*len(uniq))
	}
	for v := 0; v < g.N(); v++ {
		if a, b := skDup.ApproxEccentricity(v), skUniq.ApproxEccentricity(v); a != b {
			t.Fatalf("ẽ(%d) differs between duplicated (%d) and unique (%d) source lists", v, a, b)
		}
	}
}

// TestSkeletonReleaseReuse: a released arena serves a different graph
// with results identical to a fresh build (pooled state fully reset).
func TestSkeletonReleaseReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	big := graph.RandomWeights(graph.RandomConnected(30, 70, rng), 9, rng)
	small := graph.RandomWeights(graph.Cycle(7), 5, rng)
	eps := EpsForN(big.N())

	skBig := BuildSkeleton(big, []int{0, 5, 11, 20}, 15, 2, eps)
	for v := 0; v < big.N(); v++ {
		skBig.ApproxEccentricity(v)
	}
	skBig.Release()

	reused := BuildSkeleton(small, []int{0, 3, 5}, 6, 2, eps)
	skFresh := BuildSkeletonWith(small, []int{0, 3, 5}, 6, 2, eps, BuildSkeletonOpts{})
	for v := 0; v < small.N(); v++ {
		if a, b := reused.ApproxEccentricity(v), skFresh.ApproxEccentricity(v); a != b {
			t.Fatalf("recycled arena: ẽ(%d) = %d, fresh build says %d", v, a, b)
		}
	}
	reused.Release()
}

// TestSkeletonConcurrentQueries exercises the query-path mutex: many
// goroutines querying one skeleton (including lazy non-source rows)
// must agree with a sequential pass. Run under -race in CI.
func TestSkeletonConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := graph.RandomWeights(graph.RandomConnected(24, 60, rng), 7, rng)
	eps := EpsForN(g.N())
	sk := BuildSkeleton(g, []int{1, 6, 12, 18}, 10, 2, eps)

	want := make([]int64, g.N())
	ref := BuildSkeleton(g, []int{1, 6, 12, 18}, 10, 2, eps)
	for v := 0; v < g.N(); v++ {
		want[v] = ref.ApproxEccentricity(v)
	}

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for v := 0; v < g.N(); v++ {
				u := (v + w*5) % g.N()
				if got := sk.ApproxEccentricity(u); got != want[u] {
					done <- &mismatchErr{u, got, want[u]}
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type mismatchErr struct {
	v         int
	got, want int64
}

func (e *mismatchErr) Error() string {
	return "concurrent ẽ query mismatch"
}

// TestBuildSkeletonAllocGuard is the allocation-regression guard of the
// CI workflow: a steady-state (pooled) sequential build must stay under
// a fixed allocation ceiling. The ceiling covers the Skeleton header,
// the source list, and the overlay sort closures — not the rows, the
// workspace, or the scratch, which the arena recycles.
func TestBuildSkeletonAllocGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := graph.RandomWeights(graph.RandomConnected(96, 300, rng), 10, rng)
	eps := EpsForN(g.N())
	var s []int
	for v := 0; v < g.N(); v += 6 {
		s = append(s, v)
	}
	// Warm the pool.
	BuildSkeleton(g, s, 24, 3, eps).Release()
	allocs := testing.AllocsPerRun(20, func() {
		sk := BuildSkeleton(g, s, 24, 3, eps)
		sk.Release()
	})
	// 16 sources: header + dedup copy + 16 sort.Slice closures and their
	// reflect headers leave ~4 allocations each of slack.
	if allocs > 80 {
		t.Fatalf("steady-state BuildSkeleton allocates %.0f objects per build, ceiling 80", allocs)
	}
}

// FuzzRoundedHopDist differentially fuzzes the frontier kernel against
// the ℓ-hop reference on arbitrary connected-ish weighted graphs.
func FuzzRoundedHopDist(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(30), uint8(3), uint8(4), uint8(2))
	f.Add(int64(7), uint8(20), uint8(60), uint8(9), uint8(8), uint8(5))
	f.Add(int64(99), uint8(2), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw, wRaw, lRaw, tRaw uint8) {
		n := 2 + int(nRaw)%30
		m := int(mRaw) % (3 * n)
		maxw := 1 + int64(wRaw)%12
		l := 1 + int(lRaw)%(n+2)
		eps := Eps{T: 1 + int64(tRaw)%8}
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(n)
		// A random spanning tree plus extra random edges: connected, with
		// parallel edges permitted (AddEdge allows them).
		for v := 1; v < n; v++ {
			g.MustAddEdge(rng.Intn(v), v, 1+rng.Int63n(maxw))
		}
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.MustAddEdge(u, v, 1+rng.Int63n(maxw))
		}
		src := rng.Intn(n)
		want := refRoundedBoundedHopDist(g, src, l, eps)

		sk := &Skeleton{
			G: g, L: l, K: 1, Eps: eps, DenOut: eps.Den(l),
			cap64: (1 + 2*eps.T) * int64(l),
			imax:  IMax(n, maxW(g), eps),
			bufs:  getSkelBuffers(g),
		}
		sk.bufs.wden = sk.bufs.ws.ArcWeights(sk.bufs.wden)
		for a := range sk.bufs.wden {
			sk.bufs.wden[a] *= sk.DenOut
		}
		got := make([]int64, n)
		sk.bufs.scale = sk.roundedRowInto(sk.bufs.ws, sk.bufs.scale, got, src)
		sk.Release()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kernel diverged from ℓ-hop reference (n=%d m=%d l=%d T=%d src=%d)\n got %v\nwant %v",
				n, g.M(), l, eps.T, src, got, want)
		}
	})
}

// adversarialDistGraphs are the kernel-adversarial shapes of the
// differential suite at the skeleton layer: a star (immediate
// sparse→dense flip), a long path (dense must never engage), a
// high-degree spine-leaf fabric (bottom-up regime), and a disconnected
// union (unreached vertices stay Inf through the rounding scales).
func adversarialDistGraphs() []*graph.Graph {
	rng := rand.New(rand.NewSource(61))
	disconnected := graph.New(44)
	for v := 1; v < 28; v++ {
		disconnected.MustAddEdge(rng.Intn(v), v, 1+rng.Int63n(9))
	}
	for v := 29; v < 44; v++ {
		disconnected.MustAddEdge(28+rng.Intn(v-28), v, 1+rng.Int63n(9))
	}
	return []*graph.Graph{
		graph.RandomWeights(graph.Star(65), 9, rng),
		graph.Path(80),
		graph.RandomWeights(graph.SpineLeaf(4, 8, 6, 2, 1), 11, rng),
		disconnected,
	}
}

// TestKernelModesSkeletonDifferential is the skeleton-layer half of the
// differential harness: over the E1–E14 family plus the adversarial
// shapes, every KernelMode × worker count must reproduce — byte for
// byte — the rows, overlay, and full-vertex eccentricities of the
// sparse sequential build, and the rows themselves must match the
// pre-kernel golden reference (refRoundedBoundedHopDist). CI runs this
// under -race -count=3 in the kernel-differential job.
func TestKernelModesSkeletonDifferential(t *testing.T) {
	graphs := append(goldenGraphs(), adversarialDistGraphs()...)
	for gi, g := range graphs {
		n := g.N()
		eps := EpsForN(n)
		var s []int
		for v := 0; v < n; v += 4 {
			s = append(s, v)
		}
		l, k := n/3+1, 2
		type snapshot struct {
			rows, overlay, eccs []int64
		}
		capture := func(mode graph.KernelMode, workers int) snapshot {
			sk := BuildSkeletonWith(g, s, l, k, eps,
				BuildSkeletonOpts{Workers: workers, Kernel: mode})
			snap := snapshot{
				rows:    append([]int64(nil), sk.bufs.rows...),
				overlay: append([]int64(nil), sk.bufs.overlay...),
				eccs:    make([]int64, n),
			}
			for v := 0; v < n; v++ {
				snap.eccs[v] = sk.ApproxEccentricity(v)
			}
			sk.Release()
			return snap
		}
		ref := capture(graph.KernelSparse, 1)
		for j, v := range s {
			if want := refRoundedBoundedHopDist(g, v, l, eps); !reflect.DeepEqual(ref.rows[j*n:(j+1)*n], want) {
				t.Fatalf("graph %d: sparse row of source %d diverged from the golden reference", gi, v)
			}
		}
		for _, mode := range graph.KernelModes() {
			for _, workers := range workerCounts() {
				got := capture(mode, workers)
				if !reflect.DeepEqual(got.rows[:len(s)*n], ref.rows[:len(s)*n]) {
					t.Fatalf("graph %d mode=%v workers=%d: rows diverged from sparse sequential build", gi, mode, workers)
				}
				if !reflect.DeepEqual(got.overlay, ref.overlay) {
					t.Fatalf("graph %d mode=%v workers=%d: overlay diverged", gi, mode, workers)
				}
				if !reflect.DeepEqual(got.eccs, ref.eccs) {
					t.Fatalf("graph %d mode=%v workers=%d: eccentricities diverged", gi, mode, workers)
				}
			}
		}
	}
}
