package dist

import (
	"math/rand"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

func TestEpsForN(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{48, 6}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := EpsForN(c.n).T; got != c.want {
			t.Errorf("EpsForN(%d).T = %d, want %d", c.n, got, c.want)
		}
	}
	// ε shrinks (T grows) monotonically with n.
	prev := int64(0)
	for n := 2; n <= 4096; n *= 2 {
		cur := EpsForN(n).T
		if cur < prev {
			t.Fatalf("EpsForN not monotone at n=%d: T=%d after %d", n, cur, prev)
		}
		prev = cur
	}
}

func TestEpsFloatAndDen(t *testing.T) {
	cases := []struct {
		eps   Eps
		l     int
		float float64
		den   int64
	}{
		{Eps{T: 1}, 1, 1, 2},
		{Eps{T: 4}, 10, 0.25, 80},
		{Eps{T: 10}, 7, 0.1, 140},
		{Eps{T: 0}, 5, 1, 10}, // degenerate T clamps to 1
	}
	for _, c := range cases {
		if got := c.eps.Float(); got != c.float {
			t.Errorf("Eps{%d}.Float() = %v, want %v", c.eps.T, got, c.float)
		}
		if got := c.eps.Den(c.l); got != c.den {
			t.Errorf("Eps{%d}.Den(%d) = %d, want %d", c.eps.T, c.l, got, c.den)
		}
	}
}

func TestIMaxMonotone(t *testing.T) {
	eps := Eps{T: 4}
	cases := []struct {
		n    int
		w    int64
		want int
	}{
		{1, 1, 0}, {2, 1, 1}, {4, 4, 4}, {1024, 1, 10}, {1024, 16, 14},
	}
	for _, c := range cases {
		if got := IMax(c.n, c.w, eps); got != c.want {
			t.Errorf("IMax(%d, %d) = %d, want %d", c.n, c.w, got, c.want)
		}
	}
	// Monotone in n at fixed w, and in w at fixed n: the scale ladder can
	// only grow with the distance range it must cover.
	for _, w := range []int64{1, 3, 16, 1 << 20} {
		prev := -1
		for n := 1; n <= 1<<12; n *= 2 {
			cur := IMax(n, w, eps)
			if cur < prev {
				t.Fatalf("IMax not monotone in n at (n=%d, w=%d)", n, w)
			}
			prev = cur
		}
	}
	for _, n := range []int{2, 17, 500} {
		prev := -1
		for w := int64(1); w <= 1<<30; w *= 4 {
			cur := IMax(n, w, eps)
			if cur < prev {
				t.Fatalf("IMax not monotone in w at (n=%d, w=%d)", n, w)
			}
			prev = cur
		}
	}
}

func TestSubroundsPerLogical(t *testing.T) {
	cases := []struct{ n, want int }{{1, 1}, {2, 1}, {3, 2}, {16, 4}, {17, 5}, {1000, 10}}
	for _, c := range cases {
		if got := SubroundsPerLogical(c.n); got != c.want {
			t.Errorf("SubroundsPerLogical(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSampleDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ b, n int }{{0, 10}, {1, 2}, {5, 100}, {40, 1000}} {
		delays := SampleDelays(c.b, c.n, rng)
		if len(delays) != c.b {
			t.Fatalf("SampleDelays(%d, %d): %d delays", c.b, c.n, len(delays))
		}
		bound := c.b*SubroundsPerLogical(c.n) + 1 // the cost model's maxDelay
		for i, d := range delays {
			if d < 0 || d >= bound {
				t.Fatalf("delay[%d] = %d outside [0, %d)", i, d, bound)
			}
		}
	}
}

// skeletonCase is one table entry for the eccentricity sandwich.
type skeletonCase struct {
	name string
	g    *graph.Graph
	l, k int
}

func skeletonCases(t *testing.T) []skeletonCase {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return []skeletonCase{
		{"path", graph.Path(12), 16, 2},
		{"cycle-weighted", graph.RandomWeights(graph.Cycle(10), 5, rng), 12, 2},
		{"star", graph.Star(9), 4, 3},
		{"random-weighted", graph.RandomWeights(graph.RandomConnected(20, 45, rng), 9, rng), 25, 3},
		{"expanderish", graph.RandomWeights(graph.LowDiameterExpanderish(24, 4, rng), 12, rng), 30, 3},
	}
}

func TestSkeletonEccentricitySandwich(t *testing.T) {
	// With every vertex in the skeleton and ℓ at least the hop length of
	// every min-weight path, Lemma 3.3 pins ẽ(v) into [e(v), (1+ε)·e(v)].
	for _, c := range skeletonCases(t) {
		eps := EpsForN(c.g.N())
		all := make([]int, c.g.N())
		for i := range all {
			all[i] = i
		}
		sk := BuildSkeleton(c.g, all, c.g.N(), c.k, eps)
		for v := 0; v < c.g.N(); v++ {
			num := sk.ApproxEccentricity(v)
			lo := c.g.Eccentricity(v) * sk.DenOut
			hi := float64(lo) * (1 + eps.Float())
			if num < lo {
				t.Errorf("%s: ẽ(%d) = %d/%d undershoots e(v) = %d/%d",
					c.name, v, num, sk.DenOut, lo, sk.DenOut)
			}
			if float64(num) > hi+1e-9 {
				t.Errorf("%s: ẽ(%d) = %d above (1+ε)·e(v) = %.1f", c.name, v, num, hi)
			}
		}
	}
}

func TestSkeletonSubsetNeverUndershoots(t *testing.T) {
	// For arbitrary skeleton sets and hop budgets, every estimate is the
	// length of a real path: ẽ(s) >= e(s) unconditionally.
	rng := rand.New(rand.NewSource(3))
	for _, c := range skeletonCases(t) {
		eps := EpsForN(c.g.N())
		var s []int
		for v := 0; v < c.g.N(); v++ {
			if rng.Intn(3) == 0 {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			s = []int{0}
		}
		sk := BuildSkeleton(c.g, s, c.l, c.k, eps)
		for _, v := range s {
			if num := sk.ApproxEccentricity(v); num < c.g.Eccentricity(v)*sk.DenOut {
				t.Errorf("%s: subset skeleton undershoots at v=%d", c.name, v)
			}
		}
	}
}

func TestSkeletonMassInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomWeights(graph.RandomConnected(18, 40, rng), 7, rng)
	s := []int{0, 3, 5, 9, 12, 17}
	sk := BuildSkeleton(g, s, g.N(), 3, EpsForN(g.N()))

	lo, hi := sk.ApproxEccentricity(s[0]), sk.ApproxEccentricity(s[0])
	for _, v := range s[1:] {
		e := sk.ApproxEccentricity(v)
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	if TopMass(sk, lo) != 1 || BottomMass(sk, hi) != 1 {
		t.Fatalf("extremal thresholds must capture full mass: top=%v bottom=%v",
			TopMass(sk, lo), BottomMass(sk, hi))
	}
	prev := 2.0
	for _, thr := range []int64{lo, (lo + hi) / 2, hi, hi + 1} {
		top := TopMass(sk, thr)
		if top > prev {
			t.Fatalf("TopMass not non-increasing at threshold %d", thr)
		}
		prev = top
		if top+BottomMass(sk, thr) < 1 {
			t.Fatalf("mass split below 1 at threshold %d: %v + %v", thr, top, BottomMass(sk, thr))
		}
	}
	if TopMass(sk, hi+1) != 0 {
		t.Fatalf("TopMass above the maximum must be 0")
	}
}

func TestBFSTreeMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []*graph.Graph{
		graph.Path(10),
		graph.Grid(4, 5),
		graph.RandomConnected(30, 60, rng),
	}
	for gi, g := range cases {
		root := gi % g.N()
		want := g.BFS(root)
		parent, depth, stats, err := RunBFSTree(g, root, g.N(), congest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Messages == 0 {
			t.Fatal("no traffic recorded")
		}
		for v := range depth {
			if depth[v] != want[v] {
				t.Fatalf("graph %d: depth[%d] = %d, want %d", gi, v, depth[v], want[v])
			}
			if v == root {
				if parent[v] != -1 {
					t.Fatalf("graph %d: root has parent %d", gi, parent[v])
				}
				continue
			}
			if parent[v] < 0 || depth[parent[v]]+1 != depth[v] {
				t.Fatalf("graph %d: node %d has parent %d at depth %d (own depth %d)",
					gi, v, parent[v], depth[parent[v]], depth[v])
			}
			if _, ok := g.HasEdge(v, parent[v]); !ok {
				t.Fatalf("graph %d: parent %d of %d is not a neighbor", gi, parent[v], v)
			}
		}
	}
}

func TestBFSTreeBudgetCutsOff(t *testing.T) {
	g := graph.Path(10)
	budget := 3
	_, depth, stats, err := RunBFSTree(g, 0, budget, congest.Options{MaxRounds: budget + 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > budget+2 {
		t.Fatalf("budgeted BFS ran %d rounds", stats.Rounds)
	}
	for v := 0; v < g.N(); v++ {
		if v <= budget && depth[v] != int64(v) {
			t.Errorf("node %d within budget: depth %d, want %d", v, depth[v], v)
		}
		if v > budget && depth[v] != graph.Inf {
			t.Errorf("node %d beyond budget: depth %d, want Inf", v, depth[v])
		}
	}
}

func TestRunBFSTreeRejectsBadRoot(t *testing.T) {
	g := graph.Path(4)
	if _, _, _, err := RunBFSTree(g, -1, 4, congest.Options{}); err == nil {
		t.Error("negative root accepted")
	}
	if _, _, _, err := RunBFSTree(g, 4, 4, congest.Options{}); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestRunAlg1Sandwich(t *testing.T) {
	// The executable Algorithm 1 computes exact ℓ-hop Bellman-Ford per
	// rounding scale, so the sandwich d^ℓ <= est <= (1+ε)·d^ℓ is
	// deterministic against the centralized ground truth.
	rng := rand.New(rand.NewSource(13))
	cases := []struct {
		name string
		g    *graph.Graph
		src  int
		l    int
	}{
		{"path-full", graph.Path(8), 0, 7},
		{"path-truncated", graph.Path(8), 0, 3},
		{"weighted-random", graph.RandomWeights(graph.RandomConnected(14, 28, rng), 5, rng), 2, 6},
	}
	for _, c := range cases {
		eps := EpsForN(c.g.N())
		est, stats, err := RunAlg1(c.g, c.src, c.l, eps, congest.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if stats.Rounds <= 0 {
			t.Fatalf("%s: no rounds", c.name)
		}
		truth := c.g.BoundedHopDist(c.src, c.l)
		for v := 0; v < c.g.N(); v++ {
			if truth[v] == graph.Inf {
				if est.Num[v] != graph.Inf {
					t.Errorf("%s: node %d reachable in estimate but not within %d hops", c.name, v, c.l)
				}
				continue
			}
			got := float64(est.Num[v]) / float64(est.Den)
			lo, hi := float64(truth[v]), float64(truth[v])*(1+eps.Float())
			if got < lo-1e-9 || got > hi+1e-9 {
				t.Errorf("%s: d̃^ℓ(%d,%d) = %.4f outside [%v, %.4f]", c.name, c.src, v, got, lo, hi)
			}
		}
	}
}

func TestRunAlg3Sound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.RandomWeights(graph.Path(8), 4, rng)
	sources := []int{0, 7}
	l := 7
	eps := EpsForN(g.N())
	delays := SampleDelays(len(sources), g.N(), rng)
	ests, stats, err := RunAlg3(g, sources, delays, l, eps, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds <= 0 || stats.MaxEdgeLoad > 1 {
		t.Fatalf("bad stats: %v", stats)
	}
	for j, src := range sources {
		truth := g.Dijkstra(src)
		for v := 0; v < g.N(); v++ {
			got := float64(ests[j].Num[v]) / float64(ests[j].Den)
			if got < float64(truth[v])-1e-9 {
				t.Errorf("source %d: estimate %.4f undershoots d(%d,%d) = %d", src, got, src, v, truth[v])
			}
			if got > float64(truth[v])*(1+eps.Float())+1e-9 {
				t.Errorf("source %d: estimate %.4f above (1+ε)·%d", src, got, truth[v])
			}
		}
	}
}

func TestRunAlg3Validation(t *testing.T) {
	g := graph.Path(4)
	eps := Eps{T: 2}
	if _, _, err := RunAlg3(g, nil, nil, 2, eps, congest.Options{}); err == nil {
		t.Error("empty source set accepted")
	}
	if _, _, err := RunAlg3(g, []int{0, 1}, []int{0}, 2, eps, congest.Options{}); err == nil {
		t.Error("mismatched delays accepted")
	}
	if _, _, err := RunAlg3(g, []int{9}, []int{0}, 2, eps, congest.Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, _, err := RunAlg3(g, []int{0}, []int{1 << 20}, 2, eps, congest.Options{}); err == nil {
		t.Error("oversized delay accepted")
	}
}

func TestRunAlgObjectives(t *testing.T) {
	// On a weighted path with every vertex in S, the maximizer must be an
	// endpoint-equivalent vertex (ẽ ≈ diameter) and the minimizer a
	// center-equivalent one (ẽ ≈ radius).
	g := graph.Path(9)
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	eps := EpsForN(g.N())
	p, err := NewProcedure(g, all, g.N(), 2, eps)
	if err != nil {
		t.Fatal(err)
	}
	if p.InitRounds <= 0 || p.SetupRounds <= 0 || p.EvalRounds <= 0 {
		t.Fatalf("degenerate schedules: %+v", p)
	}

	maxRes, err := RunAlg(p, Maximize)
	if err != nil {
		t.Fatal(err)
	}
	minRes, err := RunAlg(p, Minimize)
	if err != nil {
		t.Fatal(err)
	}
	diam, radius := float64(g.Diameter()), float64(g.Radius())
	if maxRes.Value < diam || maxRes.Value > diam*(1+eps.Float())+1e-9 {
		t.Errorf("Maximize value %.4f outside [%v, (1+ε)·%v]", maxRes.Value, diam, diam)
	}
	if minRes.Value < radius || minRes.Value > radius*(1+eps.Float())+1e-9 {
		t.Errorf("Minimize value %.4f outside [%v, (1+ε)·%v]", minRes.Value, radius, radius)
	}
	if maxRes.Witness != 0 && maxRes.Witness != g.N()-1 {
		t.Errorf("Maximize witness %d is not a path endpoint", maxRes.Witness)
	}
	if minRes.Witness != g.N()/2 {
		t.Errorf("Minimize witness %d is not the path center", minRes.Witness)
	}
	if maxRes.Rounds != p.InitRounds+int64(len(all))*p.T() {
		t.Errorf("Rounds ledger %d != T0 + b·(T1+T2) = %d", maxRes.Rounds, p.InitRounds+int64(len(all))*p.T())
	}
	if maxRes.Evaluations != len(all) {
		t.Errorf("Evaluations %d != |S| = %d", maxRes.Evaluations, len(all))
	}
}

func TestNewProcedureValidation(t *testing.T) {
	g := graph.Path(4)
	eps := Eps{T: 2}
	if _, err := NewProcedure(g, nil, 2, 1, eps); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewProcedure(g, []int{7}, 2, 1, eps); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := RunAlg(Procedure{}, Maximize); err == nil {
		t.Error("zero procedure accepted")
	}
	// A hand-built Procedure (the fields are exported) must be range
	// checked by Validate, not fail by panic inside BuildSkeleton.
	bad := Procedure{G: g, Sources: []int{7}, L: 1, K: 1, Eps: eps}
	if _, err := RunAlg(bad, Maximize); err == nil {
		t.Error("hand-built procedure with out-of-range source accepted")
	}
}
