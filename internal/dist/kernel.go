// The multi-source rounded-distance kernel behind BuildSkeleton: a
// pooled build arena (graph.DistWorkspace + flat scratch), the shared
// per-arc numerator overlay that turns the per-scale weight rounding
// ⌈w·2Tℓ/2^i⌉ into an add-and-shift, and the worker pool that fans the
// per-source computations out with a deterministic source-order merge.
//
// Determinism contract (mirrors congest.Options.Workers): every row j
// of the skeleton is a pure function of (G, Sources[j], ℓ, ε), computed
// into its own pre-assigned slot rows[j·n : (j+1)·n], so the assembled
// numerators are byte-identical for every worker count.

package dist

import (
	"sync"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// DefaultSkeletonWorkers is the worker count used when
// BuildSkeletonOpts.Workers is 0. Like congest.DefaultWorkers it exists
// for process-wide front-ends (cmd/sweep's and cmd/table1's
// -distworkers flag, the determinism suite) that cannot thread a knob
// through every caller: set it once, before builds start — the read is
// unsynchronized. 0 or 1 builds sequentially.
var DefaultSkeletonWorkers int

// DefaultKernelMode is the relaxation engine used when
// BuildSkeletonOpts.Kernel is graph.KernelAuto (the zero value). Like
// DefaultSkeletonWorkers it exists for process-wide front-ends (the
// -distkernel flag of cmd/sweep and cmd/table1) that cannot thread a
// knob through every caller: set it once, before builds start — the
// read is unsynchronized. Every mode produces byte-identical
// numerators, so this is purely a performance knob.
var DefaultKernelMode graph.KernelMode

// BuildSkeletonOpts configures BuildSkeletonWith.
type BuildSkeletonOpts struct {
	// Workers fans the per-source rounded-distance computations across
	// this many goroutines. 0 uses DefaultSkeletonWorkers; 0 or 1 is
	// sequential. The skeleton's numerators are byte-identical for
	// every value.
	Workers int

	// Kernel selects the graph.DistWorkspace relaxation engine for the
	// per-source sweeps. graph.KernelAuto (the zero value) defers to
	// DefaultKernelMode — which itself defaults to the auto crossover.
	// Numerators are byte-identical for every mode.
	Kernel graph.KernelMode
}

// skelBuffers is the pooled build arena of one skeleton: the distance
// workspace (CSR adjacency + frontier scratch), the shared per-arc
// numerator overlay, and every flat array the skeleton owns. Recycled
// through skelPool by (*Skeleton).Release so a steady-state build
// allocates almost nothing.
type skelBuffers struct {
	ws   *graph.DistWorkspace
	wden []int64 // per-arc w·2Tℓ numerators (scale i divides by 2^i)

	rows    []int64 // flat row-major d̃^ℓ numerators (b base rows + query rows)
	srcIdx  []int32 // vertex -> index in Sources, -1 otherwise
	rowOf   []int32 // vertex -> row index into rows, -1 if uncomputed
	ecc     []int64 // memoized ẽ numerators, -1 if unset
	overlay []int64 // flat b×b overlay distances

	scale []int64 // per-scale bounded-hop scratch (sequential + query path)
	entry []int64 // ApproxEccentricity's per-skeleton-node entry costs
	full  []int64 // overlay build: flat b×b complete distances
	keep  []bool  // overlay build: flat b×b sparsification mask
	order []int   // overlay build: per-node sort order
	cur   []int64 // overlay build: Bellman-Ford front
	next  []int64
}

var skelPool sync.Pool

func getSkelBuffers(g *graph.Graph) *skelBuffers {
	b, _ := skelPool.Get().(*skelBuffers)
	if b == nil {
		b = &skelBuffers{}
	}
	if b.ws == nil {
		b.ws = graph.NewDistWorkspace(g)
	} else {
		b.ws.Reset(g)
	}
	return b
}

// Release returns the skeleton's build arena to the package pool. Call
// it only as the exclusive owner, when no queries against the skeleton
// can follow (internal/core releases the per-evaluation skeletons it
// builds and discards; the sketch cache of internal/server must NOT
// release entries it may still be serving). After Release every query
// method of the skeleton panics.
func (sk *Skeleton) Release() {
	// Taking the query mutex closes the window where a misused Release
	// races an in-flight query: the arena is recycled only after any
	// current query finishes, so the race fails loudly (nil bufs) in the
	// racing caller instead of corrupting a later build.
	sk.mu.Lock()
	defer sk.mu.Unlock()
	b := sk.bufs
	if b == nil {
		return
	}
	sk.bufs = nil
	skelPool.Put(b)
}

// dedupSources returns s with duplicates removed, preserving first
// occurrences, and fills srcIdx (vertex -> index in the deduped order).
// The overlay previously stored one column per occurrence while idx
// kept only the first, skewing every duplicate's overlay column; the
// skeleton now operates on the deduped set only.
func dedupSources(s []int, srcIdx []int32) []int {
	for i := range srcIdx {
		srcIdx[i] = -1
	}
	out := make([]int, 0, len(s))
	for _, v := range s {
		if srcIdx[v] >= 0 {
			continue
		}
		srcIdx[v] = int32(len(out))
		out = append(out, v)
	}
	return out
}

// buildRows computes the rounded ℓ-hop numerator row of every skeleton
// source into its slot of the flat rows array, fanning across a worker
// pool when workers > 1. Worker clones share the read-only CSR and the
// wden overlay; each row slot is written by exactly one worker.
func (sk *Skeleton) buildRows(workers int) {
	b := len(sk.Sources)
	n := sk.bufs.ws.N()
	sk.bufs.rows = growInt64(sk.bufs.rows, b*n)
	rows := sk.bufs.rows
	if workers > b {
		workers = b
	}
	if workers <= 1 {
		for j, v := range sk.Sources {
			sk.bufs.scale = sk.roundedRowInto(sk.bufs.ws, sk.bufs.scale, rows[j*n:(j+1)*n], v)
		}
		return
	}
	type rowWorker struct {
		ws    *graph.DistWorkspace
		scale []int64
	}
	idle := make(chan *rowWorker, workers)
	for w := 0; w < workers; w++ {
		idle <- &rowWorker{ws: sk.bufs.ws.Clone()}
	}
	congest.ForEach(b, workers, func(j int) {
		w := <-idle
		w.scale = sk.roundedRowInto(w.ws, w.scale, rows[j*n:(j+1)*n], sk.Sources[j])
		idle <- w
	})
}

// roundedRowInto computes the numerators of the (1+ε)-approximate
// ℓ-hop distances d̃^ℓ(src, ·) over denominator 2Tℓ into row: the min
// over rounding scales i = 0..i_max of the frontier-based ℓ-hop
// Bellman-Ford distance under weights ⌈w·2Tℓ/2^i⌉, rescaled by 2^i.
// Rounding up makes every value the length of a real path (never an
// undershoot); for a pair at true distance d with a min-weight path of
// at most ℓ hops, the scale with 2^(i-1) < d <= 2^i yields a value of
// at most (1+ε)·d. Scale-i values above (1+2T)ℓ belong to larger
// scales and are pruned inside the kernel, which drains small-scale
// frontiers after a few hops. Returns the (possibly grown) scratch.
func (sk *Skeleton) roundedRowInto(ws *graph.DistWorkspace, scratch, row []int64, src int) []int64 {
	for v := range row {
		row[v] = graph.Inf
	}
	for i := 0; i <= sk.imax; i++ {
		scratch = ws.BoundedHopInto(scratch, src, sk.L, sk.bufs.wden, uint(i), sk.cap64)
		for v, bh := range scratch {
			if bh == graph.Inf {
				continue
			}
			if scaled := bh << uint(i); scaled < row[v] {
				row[v] = scaled
			}
		}
	}
	return scratch
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// maxW returns the maximum edge weight, at least 1.
func maxW(g *graph.Graph) int64 {
	w := g.MaxWeight()
	if w < 1 {
		w = 1
	}
	return w
}
