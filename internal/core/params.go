// Package core implements the paper's primary contribution (Theorem 1.1):
// a quantum CONGEST algorithm that (1+o(1))-approximates the weighted
// diameter and radius in Õ(min{n^(9/10)·D^(3/10), n}) rounds, where D is
// the unweighted diameter of the network.
//
// Structure, mirroring §3 of the paper:
//
//   - Parameters ε, r, ℓ, k are chosen per Eq. (1).
//   - n vertex sets S_1..S_n are sampled, each node joining each set
//     independently with probability r/n.
//   - f_i(s) = ẽ_{G,w,i}(s) is the approximate eccentricity of s through
//     the skeleton of S_i (internal/dist, Lemmas 3.2/3.3), and
//     f(i) = max_{s∈S_i} f_i(s).
//   - A nested quantum search (internal/qdist, Lemma 3.1) finds an index i
//     with f(i) >= D_{G,w} (mass Θ(r/n) by Lemma 3.4), where evaluating
//     f(i) is itself an inner quantum search over S_i (Lemma 3.5).
//
// Rounds are charged by a cost model whose subroutine schedules are the
// exact schedule lengths of the executable distributed procedures in
// internal/dist (validated by parity tests), composed per Lemma 3.5.
package core

import (
	"fmt"
	"math"

	"qcongest/internal/dist"
)

// Params holds the paper's Eq. (1) parameter choices for a given network.
type Params struct {
	N int   // number of nodes
	D int64 // unweighted diameter D_G of the network
	W int64 // maximum edge weight

	Eps dist.Eps // ε = 1/⌈log2 n⌉
	R   int      // r = n^(2/5)·D^(-1/5), the expected skeleton size
	L   int      // ℓ = n·log(n)/r, the hop budget
	K   int      // k = ⌈√D⌉, the shortcut parameter
}

// ParamsFor computes Eq. (1) for a network with n nodes, unweighted
// diameter d, and maximum weight w. All values are clamped to be at least
// 1 so that degenerate inputs (tiny n, D = 1) stay runnable.
func ParamsFor(n int, d, w int64) (Params, error) {
	if n < 2 {
		return Params{}, fmt.Errorf("core: need n >= 2, got %d", n)
	}
	if d < 1 {
		return Params{}, fmt.Errorf("core: need unweighted diameter >= 1, got %d", d)
	}
	if w < 1 {
		return Params{}, fmt.Errorf("core: need max weight >= 1, got %d", w)
	}
	eps := dist.EpsForN(n)
	nf, df := float64(n), float64(d)
	r := int(math.Round(math.Pow(nf, 0.4) * math.Pow(df, -0.2)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	l := int(math.Ceil(nf * math.Log2(nf) / float64(r)))
	if l < 1 {
		l = 1
	}
	if l > 4*n {
		// ℓ beyond n buys nothing (no simple path exceeds n-1 hops) and
		// inflates the rational denominators; cap it.
		l = 4 * n
	}
	k := int(math.Ceil(math.Sqrt(df)))
	if k < 1 {
		k = 1
	}
	return Params{N: n, D: d, W: w, Eps: eps, R: r, L: l, K: k}, nil
}

// TheoremBound returns the paper's headline round bound
// min{n^(9/10)·D^(3/10), n} (up to the hidden polylog factors), used by
// the experiment harness as the reference curve shape.
func (p Params) TheoremBound() float64 {
	q := math.Pow(float64(p.N), 0.9) * math.Pow(float64(p.D), 0.3)
	return math.Min(q, float64(p.N))
}

// String summarizes the parameter choice.
func (p Params) String() string {
	return fmt.Sprintf("params(n=%d D=%d W=%d ε=1/%d r=%d ℓ=%d k=%d)",
		p.N, p.D, p.W, p.Eps.T, p.R, p.L, p.K)
}
