package core

import (
	"fmt"
	"math/rand"

	"qcongest/internal/dist"
	"qcongest/internal/graph"
	"qcongest/internal/qdist"
	"qcongest/internal/qsim"
)

// Mode selects which metric the algorithm approximates.
type Mode int

// Modes.
const (
	DiameterMode Mode = iota
	RadiusMode
)

// String returns the metric name ("diameter" or "radius").
func (m Mode) String() string {
	if m == RadiusMode {
		return "radius"
	}
	return "diameter"
}

// Options configure a run of the algorithm.
type Options struct {
	// Seed drives the set sampling and the quantum search randomness.
	Seed int64
	// Delta is the per-search failure probability; default 1/n².
	Delta float64
	// Engine selects the quantum execution engine; default qsim.Sampled
	// (exact state vectors are available for small domains via qsim.Exact).
	Engine qsim.Engine
	// Sets overrides the number of sampled vertex sets (default n, as in
	// the paper). Lowering it speeds up experiments at the cost of a
	// larger failure probability.
	Sets int
	// SkeletonWorkers fans each skeleton build's per-source distance
	// computations across a worker pool (0 uses
	// dist.DefaultSkeletonWorkers; 0/1 is sequential). Results are
	// byte-identical for every value.
	SkeletonWorkers int
	// Kernel selects the relaxation engine of the skeleton builds'
	// distance kernel (graph.KernelAuto, the zero value, defers to
	// dist.DefaultKernelMode). Results are byte-identical for every
	// mode.
	Kernel graph.KernelMode
}

// Result reports one algorithm run with its full round ledger.
type Result struct {
	Mode     Mode
	Params   Params
	Estimate float64 // the (1+o(1))-approximation of D_{G,w} or R_{G,w}
	Num, Den int64   // Estimate as an exact rational

	Index   int // chosen set index i
	Witness int // chosen node s ∈ S_i achieving f(i)

	// Rounds is the measured round count of the full nested search: the
	// outer Lemma 3.1 search charging the fixed inner Lemma 3.5 budget per
	// evaluation, with the number of amplification iterations drawn from
	// the genuine BBHT schedule. This is the paper-faithful cost.
	Rounds int64
	// BudgetRounds is the fixed Lemma 3.1 budget of the outer search.
	BudgetRounds int64
	// TheoremBound is min{n^(9/10)D^(3/10), n} for shape comparison.
	TheoremBound float64

	OuterIterations  int64
	OuterEvaluations int64
	// InnerRoundsMeasured totals the measured rounds of the inner searches
	// that actually executed (reporting only; Rounds charges the fixed
	// budget as the paper does).
	InnerRoundsMeasured int64
	SetsEvaluated       int
	GoodScale           bool
}

// valueScale converts per-skeleton rationals to a common fixed-point unit
// for cross-set comparisons inside the outer search. Final results are
// reported in the chosen skeleton's exact rational.
const valueScale = int64(1) << 20

// Approximate runs the Theorem 1.1 algorithm on the weighted network g.
func Approximate(g *graph.Graph, mode Mode, opts Options) (*Result, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("core: need at least 2 nodes, got %d", n)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("core: network must be connected")
	}
	d := g.UnweightedDiameter()
	params, err := ParamsFor(n, d, g.MaxWeight())
	if err != nil {
		return nil, err
	}
	return approximateWithParams(g, mode, params, opts)
}

// ApproximateWithParams runs the algorithm with an explicit parameter
// choice instead of Eq. (1) — the entry point for the ablation
// experiments over r, ℓ, k, and ε.
func ApproximateWithParams(g *graph.Graph, mode Mode, params Params, opts Options) (*Result, error) {
	if g.N() < 2 {
		return nil, fmt.Errorf("core: need at least 2 nodes, got %d", g.N())
	}
	if !g.Connected() {
		return nil, fmt.Errorf("core: network must be connected")
	}
	return approximateWithParams(g, mode, params, opts)
}

func approximateWithParams(g *graph.Graph, mode Mode, params Params, opts Options) (*Result, error) {
	n := g.N()
	if opts.Delta <= 0 {
		opts.Delta = 1 / float64(n*n)
	}
	sets := opts.Sets
	if sets <= 0 {
		sets = n
	}
	rng := rand.New(rand.NewSource(opts.Seed*2_654_435_761 + 1))

	// Initialization of the outer procedure: sample S_1..S_n locally
	// (free, §3.2) with per-node probability r/n.
	sampled := sampleSets(n, sets, params.R, rng)
	goodScale := checkGoodScale(sampled, params.R)

	bMax := 1
	for _, s := range sampled {
		if len(s) > bMax {
			bMax = len(s)
		}
	}

	eval := newEvaluator(g, params, mode, opts, rng)

	outer := qdist.Procedure{
		Name:        "theorem-1.1-outer-" + mode.String(),
		InitRounds:  0,
		SetupRounds: params.D,
		EvalRounds:  params.innerBudget(bMax, opts.Delta),
		Domain:      uint64(len(sampled)),
		Value:       func(i uint64) int64 { return eval.outerValue(sampled[i], mode) },
	}
	rho := 0.5 * float64(params.R) / float64(n)
	if rho <= 0 || rho > 1 {
		rho = 1 / float64(len(sampled))
	}

	var res qdist.Result
	var err error
	if mode == DiameterMode {
		res, err = qdist.TopMass(outer, rho, opts.Delta, opts.Engine, rng)
	} else {
		res, err = qdist.BottomMass(outer, rho, opts.Delta, opts.Engine, rng)
	}
	if err != nil {
		return nil, err
	}

	chosen := int(res.X)
	num, den, witness := eval.exactValue(sampled[chosen], mode)
	out := &Result{
		Mode:                mode,
		Params:              params,
		Estimate:            float64(num) / float64(den),
		Num:                 num,
		Den:                 den,
		Index:               chosen,
		Witness:             witness,
		Rounds:              res.MeasuredRounds,
		BudgetRounds:        res.BudgetRounds,
		TheoremBound:        params.TheoremBound(),
		OuterIterations:     res.Iterations,
		OuterEvaluations:    res.Evaluations,
		InnerRoundsMeasured: eval.innerRounds,
		SetsEvaluated:       len(eval.innerVal),
		GoodScale:           goodScale,
	}
	return out, nil
}

// sampleSets draws `sets` vertex sets, each node joining independently
// with probability r/n. Empty draws are resampled once with a forced
// single element so every index has a defined f(i) (an empty set would
// contribute value 0/∞ and never be selected anyway; keeping it nonempty
// simplifies the inner procedure).
func sampleSets(n, sets, r int, rng *rand.Rand) [][]int {
	out := make([][]int, sets)
	p := float64(r) / float64(n)
	for i := range out {
		var s []int
		for v := 0; v < n; v++ {
			if rng.Float64() < p {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			s = []int{rng.Intn(n)}
		}
		out[i] = s
	}
	return out
}

// checkGoodScale verifies the Good-Scale event: every |S_i| within a
// generous constant factor of r.
func checkGoodScale(sets [][]int, r int) bool {
	for _, s := range sets {
		if len(s) > 8*r+8 {
			return false
		}
	}
	return true
}

// evaluator runs the inner quantum searches, memoizing the resulting
// outer values by set identity (the outer search revisits indices).
// Skeletons are rebuilt on demand rather than cached: each one holds
// O(|S_i|·n) numerators, and the outer search touches Θ(n) sets. Each
// skeleton is released back to the dist build-arena pool as soon as its
// queries are done, so the rebuild churn reuses one set of buffers.
type evaluator struct {
	g      *graph.Graph
	params Params
	mode   Mode
	opts   Options
	rng    *rand.Rand

	innerVal    map[string]int64 // fixed-point outer value
	innerRounds int64
}

func newEvaluator(g *graph.Graph, params Params, mode Mode, opts Options, rng *rand.Rand) *evaluator {
	return &evaluator{
		g: g, params: params, mode: mode, opts: opts, rng: rng,
		innerVal: make(map[string]int64),
	}
}

func setKey(s []int) string {
	b := make([]byte, 0, 4*len(s))
	for _, v := range s {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func (e *evaluator) skeleton(s []int) *dist.Skeleton {
	return dist.BuildSkeletonWith(e.g, s, e.params.L, e.params.K, e.params.Eps,
		dist.BuildSkeletonOpts{Workers: e.opts.SkeletonWorkers, Kernel: e.opts.Kernel})
}

// outerValue runs the inner quantum search over S_i and returns f(i) in
// the common fixed-point unit.
func (e *evaluator) outerValue(s []int, mode Mode) int64 {
	key := setKey(s)
	if v, ok := e.innerVal[key]; ok {
		return v
	}
	sk := e.skeleton(s)
	defer sk.Release()
	costs := e.params.innerCosts(len(s))
	inner := qdist.Procedure{
		Name:        "lemma-3.5-inner",
		InitRounds:  costs.T0,
		SetupRounds: costs.T1,
		EvalRounds:  costs.T2,
		Domain:      uint64(len(s)),
		Value:       func(x uint64) int64 { return sk.ApproxEccentricity(s[x]) },
	}
	var res qdist.Result
	var err error
	if mode == DiameterMode {
		res, err = qdist.Maximize(inner, 1/float64(len(s)), e.opts.Delta, e.opts.Engine, e.rng)
	} else {
		res, err = qdist.Minimize(inner, 1/float64(len(s)), e.opts.Delta, e.opts.Engine, e.rng)
	}
	if err != nil {
		// Inner procedures are validated before running; an error here is
		// a programming bug, not an input condition.
		panic(err)
	}
	e.innerRounds += res.MeasuredRounds
	v := fixedPoint(res.Value, sk.DenOut)
	e.innerVal[key] = v
	return v
}

// exactValue recomputes the chosen set's f(i) as an exact rational with
// its witness node.
func (e *evaluator) exactValue(s []int, mode Mode) (num, den int64, witness int) {
	sk := e.skeleton(s)
	defer sk.Release()
	witness = s[0]
	best := sk.ApproxEccentricity(s[0])
	for _, cand := range s[1:] {
		v := sk.ApproxEccentricity(cand)
		if (mode == DiameterMode && v > best) || (mode == RadiusMode && v < best) {
			best, witness = v, cand
		}
	}
	return best, sk.DenOut, witness
}

// fixedPoint converts num/den to the shared valueScale unit.
func fixedPoint(num, den int64) int64 {
	// num·valueScale may overflow for clamped (infinite) values; saturate.
	hi := num / den
	lo := num % den
	v := hi*valueScale + lo*valueScale/den
	if v < 0 {
		return int64(^uint64(0) >> 1)
	}
	return v
}
