package core

import (
	"math/rand"
	"testing"

	"qcongest/internal/graph"
	"qcongest/internal/qsim"
)

// Robustness and failure-injection tests: the algorithm must stay
// correct (estimate within [truth, (1+ε)²·truth] on search success, and
// never crash) on degenerate topologies, extreme weights, and reduced
// failure budgets.

func TestApproximateOnPath(t *testing.T) {
	// D = n-1: the min{n^0.9·D^0.3, n} cap regime; r collapses to 1.
	g := graph.Path(24)
	res, err := Approximate(g, DiameterMode, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.R != 1 {
		t.Logf("r = %d on a path (expected near 1)", res.Params.R)
	}
	if res.Estimate < float64(g.Diameter()) {
		t.Fatalf("estimate %f below diameter %d", res.Estimate, g.Diameter())
	}
	eps := res.Params.Eps.Float()
	if res.Estimate > (1+eps)*(1+eps)*float64(g.Diameter()) {
		t.Fatalf("estimate %f above bound", res.Estimate)
	}
}

func TestApproximateOnCompleteGraph(t *testing.T) {
	// D = 1: maximal quantum advantage regime.
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomWeights(graph.Complete(20), 9, rng)
	res, err := Approximate(g, DiameterMode, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth := g.Diameter()
	if res.Estimate < float64(truth) {
		t.Fatalf("estimate %f below diameter %d", res.Estimate, truth)
	}
}

func TestApproximateOnStar(t *testing.T) {
	g := graph.Star(30)
	for _, mode := range []Mode{DiameterMode, RadiusMode} {
		res, err := Approximate(g, mode, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want := int64(2)
		if mode == RadiusMode {
			want = 1
		}
		if res.Estimate < float64(want) {
			t.Fatalf("%v: estimate %f below truth %d", mode, res.Estimate, want)
		}
	}
}

func TestApproximateUniformWeights(t *testing.T) {
	// All weights equal: weighted metrics collapse to scaled unweighted.
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomConnected(30, 70, rng).Reweight(func(int64) int64 { return 7 })
	res, err := Approximate(g, DiameterMode, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	truth := g.Diameter()
	if truth != 7*g.UnweightedDiameter() {
		t.Fatalf("sanity: weighted %d != 7·unweighted %d", truth, g.UnweightedDiameter())
	}
	if res.Estimate < float64(truth) {
		t.Fatalf("estimate %f below %d", res.Estimate, truth)
	}
}

func TestApproximateLargeWeights(t *testing.T) {
	// Large W stresses the rational arithmetic (clamps must not overflow).
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomWeights(graph.LowDiameterExpanderish(24, 4, rng), 1<<16, rng)
	res, err := Approximate(g, DiameterMode, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	truth := g.Diameter()
	eps := res.Params.Eps.Float()
	if res.Estimate < float64(truth) || res.Estimate > (1+eps)*(1+eps)*float64(truth)+1 {
		t.Fatalf("estimate %f outside bounds for truth %d", res.Estimate, truth)
	}
}

func TestApproximateTinyGraphs(t *testing.T) {
	for n := 2; n <= 5; n++ {
		g := graph.Path(n)
		res, err := Approximate(g, DiameterMode, Options{Seed: int64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Estimate < float64(n-1) {
			t.Fatalf("n=%d: estimate %f below %d", n, res.Estimate, n-1)
		}
	}
}

func TestApproximateReducedSets(t *testing.T) {
	// Options.Sets trades failure probability for speed; the estimate must
	// stay within the upper bound regardless.
	g := testGraph(6, 40, 8)
	res, err := Approximate(g, DiameterMode, Options{Seed: 6, Sets: 8})
	if err != nil {
		t.Fatal(err)
	}
	truth := g.Diameter()
	eps := res.Params.Eps.Float()
	if res.Estimate > (1+eps)*(1+eps)*float64(truth)+1e-9 {
		t.Fatalf("estimate %f above bound with reduced sets", res.Estimate)
	}
}

func TestApproximateExactEngine(t *testing.T) {
	// The exact state-vector engine must agree with the sampled engine on
	// the quality guarantee (domains here are small enough to simulate).
	g := testGraph(7, 24, 6)
	res, err := Approximate(g, DiameterMode, Options{Seed: 7, Engine: qsim.Exact})
	if err != nil {
		t.Fatal(err)
	}
	truth := g.Diameter()
	eps := res.Params.Eps.Float()
	if res.Estimate < float64(truth) || res.Estimate > (1+eps)*(1+eps)*float64(truth)+1e-9 {
		t.Fatalf("exact engine estimate %f outside bounds (truth %d)", res.Estimate, truth)
	}
}

func TestApproximateRadiusOnBarbell(t *testing.T) {
	// Barbell: the center of the bridge minimizes eccentricity.
	g := graph.Barbell(6, 8)
	res, err := Approximate(g, RadiusMode, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	truth := g.Radius()
	if res.Estimate < float64(truth) {
		t.Fatalf("radius estimate %f below %d", res.Estimate, truth)
	}
	eps := res.Params.Eps.Float()
	if res.Estimate > (1+eps)*(1+eps)*float64(truth)+1e-9 {
		t.Fatalf("radius estimate %f above bound (truth %d)", res.Estimate, truth)
	}
}

func TestApproximateWithParamsValidation(t *testing.T) {
	g := graph.Path(6)
	p, err := ParamsFor(6, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApproximateWithParams(graph.New(1), DiameterMode, p, Options{}); err == nil {
		t.Fatal("single-node graph accepted")
	}
	disc := graph.New(4)
	disc.MustAddEdge(0, 1, 1)
	if _, err := ApproximateWithParams(disc, DiameterMode, p, Options{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
	if _, err := ApproximateWithParams(g, DiameterMode, p, Options{Seed: 9}); err != nil {
		t.Fatal(err)
	}
}
