package core

import (
	"math"

	"qcongest/internal/dist"
)

// Cost model for the three procedures of Lemma 3.5 and the outer search of
// Theorem 1.1. The schedule formulas live in internal/dist next to the
// executable procedures they describe (the thin wrappers below keep this
// file's naming); integration tests check the executable procedures stay
// within these schedules.

// alg1Rounds is the fixed schedule of Algorithm 1: one (1+2T)ℓ + 2 round
// phase per rounding index.
func alg1Rounds(n int, w int64, l int, eps dist.Eps) int64 {
	return dist.Alg1Schedule(n, w, l, eps)
}

// alg3Rounds is the fixed schedule of Algorithm 3 with b sources: the
// Algorithm 1 schedule plus the maximum random delay, all stretched by
// C = ⌈log2 n⌉ subrounds, plus the O(D + b) leader broadcast of delays.
func alg3Rounds(n int, w int64, l int, eps dist.Eps, b int, d int64) int64 {
	return dist.Alg3Schedule(n, w, l, eps, b, d)
}

// embedRounds is the Algorithm 4 schedule: each of the b skeleton nodes
// broadcasts its k shortest overlay edges, O(D + b·k) rounds by pipelined
// dissemination.
func embedRounds(d int64, b, k int) int64 {
	return dist.EmbedSchedule(d, b, k)
}

// overlaySSSPRounds is the Algorithm 5 schedule: T' logical rounds of
// Algorithm 1 on the overlay network (hop budget ℓ' = ⌈4b/k⌉, weights up
// to n·W), each implemented by a global broadcast of O(D + a) rounds, plus
// the total broadcast volume O(b·log n).
func overlaySSSPRounds(n int, w int64, b, k int, eps dist.Eps, d int64) int64 {
	return dist.OverlaySchedule(n, w, b, k, eps, d)
}

// InnerCosts is the Lemma 3.5 decomposition for one index i: the fixed
// schedules of Initialization_i (T0), Setup_i (T1), and Evaluation_i (T2).
type InnerCosts struct {
	T0 int64
	T1 int64
	T2 int64
}

// innerCosts instantiates Lemma 3.5's round analysis for skeleton size b:
//
//	T0 = Õ(D + n/(ε·r) + r·k): multi-source bounded-hop SSSP + overlay embed
//	T1 = Õ(r/(ε·k)·D + r):     collect S_i, broadcast state, overlay SSSP
//	T2 = O(D):                 local combine + converge-cast
func (p Params) innerCosts(b int) InnerCosts {
	if b < 1 {
		b = 1
	}
	return InnerCosts{
		T0: alg3Rounds(p.N, p.W, p.L, p.Eps, b, p.D) + embedRounds(p.D, b, p.K),
		T1: (p.D + int64(b)) + p.D + overlaySSSPRounds(p.N, p.W, b, p.K, p.Eps, p.D),
		T2: p.D,
	}
}

// innerBudget is the fixed Lemma 3.1 budget of the inner search over S_i:
// T0 + O(√(log(1/δ)·b))·(T1+T2) with ρ = 1/b (the maximizer may be
// unique).
func (p Params) innerBudget(b int, delta float64) int64 {
	c := p.innerCosts(b)
	k := int64(math.Ceil(math.Sqrt(math.Log(1/delta) * float64(b))))
	return c.T0 + 3*k*(c.T1+c.T2)
}
