package core

import (
	"math/rand"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/dist"
	"qcongest/internal/graph"
	"qcongest/internal/qsim"
)

func TestParamsFor(t *testing.T) {
	p, err := ParamsFor(1024, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eps.T != 10 {
		t.Errorf("ε = 1/%d, want 1/10", p.Eps.T)
	}
	// r = 1024^0.4 · 8^-0.2 ≈ 16.0/1.516 ≈ 10.6 → 11.
	if p.R < 9 || p.R > 12 {
		t.Errorf("r = %d, want ≈ 11", p.R)
	}
	// k = ⌈√8⌉ = 3.
	if p.K != 3 {
		t.Errorf("k = %d, want 3", p.K)
	}
	if p.L < 1 {
		t.Errorf("ℓ = %d", p.L)
	}
}

func TestParamsForErrors(t *testing.T) {
	if _, err := ParamsFor(1, 1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ParamsFor(10, 0, 1); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := ParamsFor(10, 1, 0); err == nil {
		t.Error("w=0 accepted")
	}
}

func TestTheoremBoundCrossover(t *testing.T) {
	// min{n^0.9·D^0.3, n}: for D < n^(1/3) the first term wins.
	small, _ := ParamsFor(1000, 2, 1)
	if small.TheoremBound() >= 1000 {
		t.Errorf("low-D bound %f should be sublinear", small.TheoremBound())
	}
	big, _ := ParamsFor(1000, 500, 1)
	if big.TheoremBound() != 1000 {
		t.Errorf("high-D bound %f should cap at n", big.TheoremBound())
	}
}

func testGraph(seed int64, n int, maxW int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.RandomWeights(graph.LowDiameterExpanderish(n, 4, rng), maxW, rng)
}

func TestApproximateDiameterSandwich(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := testGraph(seed, 48, 8)
		trueD := g.Diameter()
		res, err := Approximate(g, DiameterMode, Options{Seed: seed, Engine: qsim.Sampled})
		if err != nil {
			t.Fatal(err)
		}
		eps := res.Params.Eps.Float()
		upper := (1 + eps) * (1 + eps) * float64(trueD)
		if res.Estimate > upper+1e-9 {
			t.Errorf("seed %d: estimate %.3f above (1+ε)²·D = %.3f (D=%d)", seed, res.Estimate, upper, trueD)
		}
		// Lower bound holds when the search lands in the good mass (w.h.p.;
		// these seeds are fixed and verified).
		if res.Estimate < float64(trueD) {
			t.Errorf("seed %d: estimate %.3f below true diameter %d", seed, res.Estimate, trueD)
		}
		if res.Rounds <= 0 {
			t.Errorf("seed %d: no rounds charged", seed)
		}
	}
}

func TestApproximateRadiusSandwich(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := testGraph(seed+10, 48, 8)
		trueR := g.Radius()
		res, err := Approximate(g, RadiusMode, Options{Seed: seed, Engine: qsim.Sampled})
		if err != nil {
			t.Fatal(err)
		}
		// ẽ(s) >= e(s) >= R for every witness, so the estimate can never
		// undershoot the radius.
		if res.Estimate < float64(trueR) {
			t.Errorf("seed %d: estimate %.3f below true radius %d", seed, res.Estimate, trueR)
		}
		eps := res.Params.Eps.Float()
		upper := (1 + eps) * (1 + eps) * float64(trueR)
		if res.Estimate > upper+1e-9 {
			t.Errorf("seed %d: estimate %.3f above (1+ε)²·R = %.3f (R=%d)", seed, res.Estimate, upper, trueR)
		}
	}
}

func TestApproximateErrors(t *testing.T) {
	if _, err := Approximate(graph.New(1), DiameterMode, Options{}); err == nil {
		t.Error("single node accepted")
	}
	disc := graph.New(4)
	disc.MustAddEdge(0, 1, 1)
	if _, err := Approximate(disc, DiameterMode, Options{}); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestApproximateDeterministicGivenSeed(t *testing.T) {
	g := testGraph(3, 32, 5)
	a, err := Approximate(g, DiameterMode, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Approximate(g, DiameterMode, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate || a.Rounds != b.Rounds || a.Index != b.Index {
		t.Fatalf("same seed, different runs: %+v vs %+v", a, b)
	}
}

func TestLemma34GoodIndicesMass(t *testing.T) {
	// Count indices i with f(i) >= D_{G,w}; Lemma 3.4 says Θ(r) of them.
	g := testGraph(7, 40, 6)
	trueD := g.Diameter()
	d := g.UnweightedDiameter()
	params, err := ParamsFor(g.N(), d, g.MaxWeight())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	sets := sampleSets(g.N(), g.N(), params.R, rng)
	good := 0
	for _, s := range sets {
		sk := dist.BuildSkeleton(g, s, params.L, params.K, params.Eps)
		var f int64
		for _, cand := range s {
			if v := sk.ApproxEccentricity(cand); v > f {
				f = v
			}
		}
		if f >= trueD*sk.DenOut {
			good++
		}
		// Upper half of Lemma 3.4: f(i) <= (1+ε)²·D for every i.
		eps := params.Eps.Float()
		if float64(f)/float64(sk.DenOut) > (1+eps)*(1+eps)*float64(trueD)+1e-9 {
			t.Fatalf("f(i) = %.3f above (1+ε)²·D", float64(f)/float64(sk.DenOut))
		}
	}
	if good < params.R/2 {
		t.Fatalf("only %d good indices for r = %d; Lemma 3.4 wants Θ(r)", good, params.R)
	}
}

func TestSampleSetsScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sets := sampleSets(200, 200, 10, rng)
	if len(sets) != 200 {
		t.Fatalf("got %d sets", len(sets))
	}
	total := 0
	for _, s := range sets {
		if len(s) == 0 {
			t.Fatal("empty set survived sampling")
		}
		total += len(s)
	}
	avg := float64(total) / 200
	if avg < 5 || avg > 20 {
		t.Fatalf("average set size %.1f, expected ≈ 10", avg)
	}
	if !checkGoodScale(sets, 10) {
		t.Fatal("Good-Scale violated at sampling rate r/n")
	}
}

func TestCostModelCoversExecutableAlg1(t *testing.T) {
	// The fixed Algorithm 1 schedule used by the cost model must cover the
	// executable procedure's measured rounds.
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomWeights(graph.RandomConnected(14, 28, rng), 4, rng)
	eps := dist.EpsForN(g.N())
	l := 3
	_, stats, err := dist.RunAlg1(g, 0, l, eps, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if model := alg1Rounds(g.N(), g.MaxWeight(), l, eps); int64(stats.Rounds) > model+2 {
		t.Fatalf("executable Algorithm 1 took %d rounds, model schedule is %d", stats.Rounds, model)
	}
}

func TestCostModelCoversExecutableAlg3(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomWeights(graph.RandomConnected(12, 24, rng), 3, rng)
	eps := dist.EpsForN(g.N())
	l := 2
	sources := []int{0, 5, 9}
	delays := dist.SampleDelays(len(sources), g.N(), rng)
	_, stats, err := dist.RunAlg3(g, sources, delays, l, eps, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := g.UnweightedDiameter()
	if model := alg3Rounds(g.N(), g.MaxWeight(), l, eps, len(sources), d); int64(stats.Rounds) > model {
		t.Fatalf("executable Algorithm 3 took %d rounds, model schedule is %d", stats.Rounds, model)
	}
}

func TestInnerBudgetMonotoneInB(t *testing.T) {
	p, err := ParamsFor(256, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	for _, b := range []int{1, 4, 16, 64} {
		cur := p.innerBudget(b, 1e-6)
		if cur < prev {
			t.Fatalf("inner budget not monotone: b=%d gives %d < %d", b, cur, prev)
		}
		prev = cur
	}
}

func TestFixedPointSaturation(t *testing.T) {
	if v := fixedPoint(1<<55, 3); v <= 0 {
		t.Fatalf("fixedPoint overflowed to %d", v)
	}
	if v := fixedPoint(6, 3); v != 2*valueScale {
		t.Fatalf("fixedPoint(6,3) = %d, want %d", v, 2*valueScale)
	}
	if v := fixedPoint(7, 2); v != 3*valueScale+valueScale/2 {
		t.Fatalf("fixedPoint(7,2) = %d", v)
	}
}

func TestResultLedgerConsistency(t *testing.T) {
	g := testGraph(5, 36, 4)
	res, err := Approximate(g, DiameterMode, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SetsEvaluated <= 0 {
		t.Error("no sets were evaluated")
	}
	if res.OuterEvaluations <= 0 {
		t.Error("no outer evaluations recorded")
	}
	if res.InnerRoundsMeasured <= 0 {
		t.Error("no inner rounds recorded")
	}
	if res.Den <= 0 || res.Num < 0 {
		t.Errorf("bad rational %d/%d", res.Num, res.Den)
	}
	if res.TheoremBound <= 0 {
		t.Error("theorem bound missing")
	}
}
