// Package qdist implements the distributed quantum optimization framework
// of Le Gall-Magniez as stated in Lemma 3.1 of the paper: given three
// quantum procedures (Initialization, Setup, Evaluation) with known round
// schedules, the leader finds an element x with f(x) >= M — where the
// amplitude mass on such elements is at least rho — in
//
//	T0 + O(√(log(1/δ)/ρ)) · T
//
// rounds. The framework is simulated at the algorithm level: Setup and
// Evaluation are reversible classical procedures executed coherently, so
// the round cost per amplitude-amplification iteration is fixed by their
// schedules; the number of iterations is the genuine random variable of
// the BBHT/Dürr-Høyer schedule, reproduced by internal/qsim (exact state
// vectors on small domains, the validated sin² law on large ones).
//
// Every search reports both the measured rounds (what this run consumed)
// and the fixed Lemma 3.1 budget (what the paper charges); experiments use
// the measured value and tests confirm it concentrates below the budget.
package qdist

import (
	"fmt"
	"math"
	"math/rand"

	"qcongest/internal/qsim"
)

// Procedure describes the three black boxes of the framework with their
// fixed round schedules. Value is the classical simulation of the
// Evaluation unitary: the simulator computes f(x) locally, while the round
// ledger charges the distributed schedule the paper's nodes would run.
type Procedure struct {
	Name        string // label for errors and reports
	InitRounds  int64  // T0: Initialization, charged once
	SetupRounds int64  // Setup schedule (and its inverse costs the same)
	EvalRounds  int64  // Evaluation schedule (and inverse)
	Domain      uint64 // search domain size (x ranges over [0, Domain))
	// Value is the classical simulation of the Evaluation unitary.
	Value func(x uint64) int64
}

// T returns the per-iteration schedule T = Setup + Evaluation.
func (p Procedure) T() int64 { return p.SetupRounds + p.EvalRounds }

// Validate checks the procedure is runnable.
func (p Procedure) Validate() error {
	if p.Domain == 0 {
		return fmt.Errorf("qdist: %s: empty domain", p.Name)
	}
	if p.Value == nil {
		return fmt.Errorf("qdist: %s: nil value oracle", p.Name)
	}
	if p.InitRounds < 0 || p.SetupRounds < 0 || p.EvalRounds < 0 {
		return fmt.Errorf("qdist: %s: negative round schedule", p.Name)
	}
	return nil
}

// Result reports one framework search.
type Result struct {
	Found bool   // the search returned an element
	X     uint64 // the returned element
	Value int64  // f(X)

	Iterations  int64 // Grover iterations executed (each costs 2T rounds)
	Evaluations int64 // classical verifications (each costs T rounds)

	MeasuredRounds int64 // T0 + 2T·Iterations + T·Evaluations
	BudgetRounds   int64 // the fixed Lemma 3.1 budget for (rho, delta)
}

// Budget returns the Lemma 3.1 round budget T0 + ⌈√(ln(1/δ)/ρ)⌉·c·T with
// the driver's constant c = 3 (two reflections plus verification per
// amplification step).
func Budget(p Procedure, rho, delta float64) int64 {
	if rho <= 0 {
		rho = 1 / float64(p.Domain)
	}
	if delta <= 0 || delta >= 1 {
		delta = 1e-9
	}
	k := int64(math.Ceil(math.Sqrt(math.Log(1/delta) / rho)))
	return p.InitRounds + 3*k*p.T()
}

// memoOracle caches Value calls: the framework evaluates f coherently, so
// repeated classical evaluation of the same x models re-running the same
// fixed schedule — the ledger still charges every invocation, only the
// simulator-side computation is cached.
type memoOracle struct {
	p     Procedure
	cache map[uint64]int64
}

func newMemoOracle(p Procedure) *memoOracle {
	return &memoOracle{p: p, cache: make(map[uint64]int64)}
}

func (m *memoOracle) value(x uint64) int64 {
	if v, ok := m.cache[x]; ok {
		return v
	}
	v := m.p.Value(x)
	m.cache[x] = v
	return v
}

// FindAtLeast is the literal Lemma 3.1 interface: assuming the uniform
// superposition puts mass at least rho on {x : f(x) >= m}, find such an x
// with probability at least 1-delta. The threshold m is known to the
// caller only through the marked predicate (the paper's M is unknown to
// the nodes; here it parameterizes the experiment).
func FindAtLeast(p Procedure, m int64, rho, delta float64, eng qsim.Engine, rng *rand.Rand) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	oracle := newMemoOracle(p)
	res := Result{BudgetRounds: Budget(p, rho, delta), MeasuredRounds: p.InitRounds}
	attempts := int(math.Ceil(math.Log(1/delta))) + 1
	for a := 0; a < attempts; a++ {
		r := qsim.BBHT(eng, p.Domain, func(x uint64) bool { return oracle.value(x) >= m }, rng)
		res.Iterations += r.Rounds
		res.Evaluations += r.Measures
		if r.Found {
			res.Found = true
			res.X = r.Outcome
			res.Value = oracle.value(r.Outcome)
			break
		}
	}
	res.MeasuredRounds += 2*p.T()*res.Iterations + p.T()*res.Evaluations
	return res, nil
}

// Maximize finds argmax f over the domain by Dürr-Høyer threshold search,
// charging the framework's round schedule. rho and delta parameterize the
// reported Lemma 3.1 budget (the paper's usage: rho is the promised mass
// at or above the unknown maximum).
func Maximize(p Procedure, rho, delta float64, eng qsim.Engine, rng *rand.Rand) (Result, error) {
	return optimize(p, rho, delta, eng, rng, false)
}

// Minimize is the minimizing variant of Maximize (used for the radius).
func Minimize(p Procedure, rho, delta float64, eng qsim.Engine, rng *rand.Rand) (Result, error) {
	return optimize(p, rho, delta, eng, rng, true)
}

// TopMass is the search mode the paper actually uses Lemma 3.1 in: given
// that at least a rho fraction of the domain has f(x) >= M for some
// unknown M, return an element of that top mass with probability >= 1-δ.
// It runs Dürr-Høyer threshold ratcheting but caps the total number of
// Grover iterations at the Lemma 3.1 budget O(√(log(1/δ)/ρ)) and returns
// the best element seen — once an element of the top mass is sampled, the
// returned value can only be at least M.
func TopMass(p Procedure, rho, delta float64, eng qsim.Engine, rng *rand.Rand) (Result, error) {
	return massSearch(p, rho, delta, eng, rng, false)
}

// BottomMass is the minimizing variant of TopMass: it returns an element
// within the bottom rho mass (f(x) <= M for the unknown M), used for the
// radius where the good indices have small approximate eccentricity.
func BottomMass(p Procedure, rho, delta float64, eng qsim.Engine, rng *rand.Rand) (Result, error) {
	return massSearch(p, rho, delta, eng, rng, true)
}

func massSearch(p Procedure, rho, delta float64, eng qsim.Engine, rng *rand.Rand, minimize bool) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if rho <= 0 || rho > 1 {
		rho = 1 / float64(p.Domain)
	}
	if delta <= 0 || delta >= 1 {
		delta = 1e-9
	}
	oracle := newMemoOracle(p)
	f := func(x uint64) int64 {
		if minimize {
			return -oracle.value(x)
		}
		return oracle.value(x)
	}
	iterCap := int64(math.Ceil(math.Sqrt(math.Log(1/delta)/rho))) * 3
	res := Result{BudgetRounds: Budget(p, rho, delta), MeasuredRounds: p.InitRounds}

	best := uint64(rng.Int63n(int64(p.Domain)))
	bv := f(best)
	res.Evaluations++
	for res.Iterations < iterCap {
		r := qsim.BBHT(eng, p.Domain, func(x uint64) bool { return f(x) > bv }, rng)
		res.Iterations += r.Rounds
		res.Evaluations += r.Measures
		if !r.Found {
			break
		}
		best = r.Outcome
		bv = f(best)
	}
	res.Found = true
	res.X = best
	res.Value = oracle.value(best)
	res.MeasuredRounds += 2*p.T()*res.Iterations + p.T()*res.Evaluations
	return res, nil
}

func optimize(p Procedure, rho, delta float64, eng qsim.Engine, rng *rand.Rand, minimize bool) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	oracle := newMemoOracle(p)
	f := func(x uint64) int64 {
		if minimize {
			return -oracle.value(x)
		}
		return oracle.value(x)
	}
	dh := qsim.DurrHoyerMax(eng, p.Domain, f, rng)
	val := dh.Value
	if minimize {
		val = -val
	}
	res := Result{
		Found:          true,
		X:              dh.Index,
		Value:          val,
		Iterations:     dh.Rounds,
		Evaluations:    dh.Queries - dh.Rounds, // queries = iterations + verifications
		BudgetRounds:   Budget(p, rho, delta),
		MeasuredRounds: p.InitRounds,
	}
	res.MeasuredRounds += 2*p.T()*res.Iterations + p.T()*res.Evaluations
	return res, nil
}
