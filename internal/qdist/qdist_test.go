package qdist

import (
	"math"
	"math/rand"
	"testing"

	"qcongest/internal/qsim"
)

func linearProc(vals []int64, t0, setup, eval int64) Procedure {
	return Procedure{
		Name:        "test",
		InitRounds:  t0,
		SetupRounds: setup,
		EvalRounds:  eval,
		Domain:      uint64(len(vals)),
		Value:       func(x uint64) int64 { return vals[x] },
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Procedure
		wantErr bool
	}{
		{"ok", linearProc([]int64{1, 2}, 0, 1, 1), false},
		{"empty domain", Procedure{Domain: 0, Value: func(uint64) int64 { return 0 }}, true},
		{"nil oracle", Procedure{Domain: 4}, true},
		{"negative rounds", Procedure{Domain: 4, InitRounds: -1, Value: func(uint64) int64 { return 0 }}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMaximizeFindsTrueMax(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(120)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(10_000)
		}
		var want int64
		for _, v := range vals {
			if v > want {
				want = v
			}
		}
		res, err := Maximize(linearProc(vals, 5, 3, 7), 1/float64(n), 1e-6, qsim.Sampled, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Fatalf("trial %d: max %d, want %d", trial, res.Value, want)
		}
	}
}

func TestMinimizeFindsTrueMin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := []int64{42, 17, 99, 3, 55, 3, 70}
	res, err := Minimize(linearProc(vals, 0, 1, 1), 1.0/7, 1e-6, qsim.Exact, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Fatalf("min = %d, want 3", res.Value)
	}
}

func TestRoundChargingFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 50)
	for i := range vals {
		vals[i] = int64(i)
	}
	p := linearProc(vals, 11, 4, 6)
	res, err := Maximize(p, 0.02, 1e-6, qsim.Sampled, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := p.InitRounds + 2*p.T()*res.Iterations + p.T()*res.Evaluations
	if res.MeasuredRounds != want {
		t.Fatalf("MeasuredRounds = %d, want %d (ledger identity)", res.MeasuredRounds, want)
	}
	if res.Evaluations <= 0 || res.Iterations < 0 {
		t.Fatalf("implausible ledger: %+v", res)
	}
}

func TestFindAtLeastRespectsPromise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 200
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 10) // 10% of values are >= 9
	}
	misses := 0
	for trial := 0; trial < 40; trial++ {
		res, err := FindAtLeast(linearProc(vals, 0, 1, 1), 9, 0.1, 1e-6, qsim.Sampled, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			misses++
			continue
		}
		if res.Value < 9 {
			t.Fatalf("returned value %d below threshold", res.Value)
		}
	}
	if misses > 1 {
		t.Fatalf("%d/40 runs missed despite the 10%% promise", misses)
	}
}

func TestFindAtLeastImpossibleThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := FindAtLeast(linearProc(vals, 0, 1, 1), 100, 0.5, 1e-3, qsim.Sampled, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("found an element above an impossible threshold")
	}
	if res.MeasuredRounds == 0 {
		t.Fatal("no rounds charged for a failed search")
	}
}

func TestBudgetFormula(t *testing.T) {
	p := linearProc(make([]int64, 100), 7, 2, 3)
	// k = ceil(sqrt(ln(1e6)/0.01)) = ceil(37.17...) = 38; budget = 7+3*38*5.
	got := Budget(p, 0.01, 1e-6)
	k := int64(math.Ceil(math.Sqrt(math.Log(1e6) / 0.01)))
	want := 7 + 3*k*5
	if got != want {
		t.Fatalf("Budget = %d, want %d", got, want)
	}
}

func TestMeasuredRoundsScaleAsSqrtDomain(t *testing.T) {
	// The framework's measured rounds over a domain of size N with a unique
	// maximum should scale ~√N, the quantum signature the paper exploits.
	rng := rand.New(rand.NewSource(6))
	avg := func(n int) float64 {
		var total int64
		const trials = 40
		for i := 0; i < trials; i++ {
			vals := make([]int64, n)
			for j := range vals {
				vals[j] = rng.Int63n(1 << 40)
			}
			res, err := Maximize(linearProc(vals, 0, 1, 1), 1/float64(n), 1e-6, qsim.Sampled, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += res.MeasuredRounds
		}
		return float64(total) / trials
	}
	small, large := avg(64), avg(1024)
	if ratio := large / small; ratio > 8 {
		t.Fatalf("rounds grew %fx over a 16x domain; want ~4x", ratio)
	}
}

func TestMeasuredWithinBudgetTypically(t *testing.T) {
	// A single Lemma 3.1 threshold search (FindAtLeast) must concentrate
	// below the lemma's fixed budget when the promise rho is genuine.
	rng := rand.New(rand.NewSource(7))
	over := 0
	const trials = 30
	const n = 128
	for i := 0; i < trials; i++ {
		vals := make([]int64, n)
		for j := range vals {
			vals[j] = int64(j % 8) // 1/8 of the domain has value 7
		}
		res, err := FindAtLeast(linearProc(vals, 0, 2, 2), 7, 1.0/8, 1e-9, qsim.Sampled, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatal("search missed despite genuine promise")
		}
		if res.MeasuredRounds > res.BudgetRounds {
			over++
		}
	}
	if over > trials/3 {
		t.Fatalf("measured rounds exceeded the Lemma 3.1 budget in %d/%d runs", over, trials)
	}
}

func TestExactAndSampledEnginesAgreeOnArgmax(t *testing.T) {
	vals := []int64{5, 1, 9, 9, 2, 0, 4, 9}
	for _, e := range []qsim.Engine{qsim.Exact, qsim.Sampled} {
		rng := rand.New(rand.NewSource(8))
		res, err := Maximize(linearProc(vals, 0, 1, 1), 3.0/8, 1e-6, e, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != 9 {
			t.Fatalf("engine %v: max %d, want 9", e, res.Value)
		}
	}
}
