package congest

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"qcongest/internal/graph"
)

// scriptProc is a fuzz-driven node: each round it sends to a
// script-selected subset of its neighbors, at most one message per edge
// (always legal under any Capacity >= 1), for a script-derived number of
// rounds. It is a pure function of (node ID, round, script), so two runs
// over the same script are schedule-identical.
type scriptProc struct {
	script []byte
	rounds int
	env    *Env
}

func (p *scriptProc) Init(env *Env) { p.env = env }

func (p *scriptProc) at(i int) byte {
	return p.script[((i%len(p.script))+len(p.script))%len(p.script)]
}

func (p *scriptProc) Step(round int, inbox []Received) ([]Send, bool) {
	if round >= p.rounds {
		return nil, true
	}
	var out []Send
	for j, a := range p.env.Neighbors {
		b := p.at(p.env.ID*131 + round*31 + j*7)
		if b&3 == 0 { // send on ~1/4 of the incident edges
			out = append(out, Send{To: a.To, Msg: Message{Kind: b, A: int64(round), B: int64(p.env.ID)}})
		}
	}
	return out, round == p.rounds-1
}

// burstProc sends `count` copies along one edge in round 0: the probe for
// the exact ErrCongestion threshold.
type burstProc struct {
	count int
	env   *Env
}

func (p *burstProc) Init(env *Env) { p.env = env }

func (p *burstProc) Step(round int, inbox []Received) ([]Send, bool) {
	if round != 0 || p.env.ID != 0 {
		return nil, true
	}
	out := make([]Send, p.count)
	for i := range out {
		out[i] = Send{To: p.env.Neighbors[0].To, Msg: Message{Kind: 1, A: int64(i)}}
	}
	return out, true
}

// FuzzSimCongestion drives random schedules through the sequential and
// parallel engines and checks that (1) the parallel engine is
// bit-identical to the sequential one — Stats, ordered Trace, and error
// text — and (2) Stats stay internally consistent under arbitrary
// procs. The companion TestCongestionThreshold pins the exact
// ErrCongestion boundary over its whole (constant) domain.
func FuzzSimCongestion(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(12), uint8(1), uint8(3), []byte{0, 1, 2, 3})
	f.Add(int64(2), uint8(20), uint8(40), uint8(2), uint8(5), []byte{7, 0, 0, 128, 9})
	f.Add(int64(3), uint8(3), uint8(3), uint8(1), uint8(1), []byte{0})
	f.Add(int64(4), uint8(50), uint8(99), uint8(3), uint8(6), []byte{255, 4, 0, 33, 0, 0, 18})
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw, capRaw, roundsRaw uint8, script []byte) {
		if len(script) == 0 {
			t.Skip()
		}
		n := 2 + int(nRaw)%62
		m := n - 1 + int(mRaw)%(2*n)
		capacity := 1 + int(capRaw)%3
		rounds := 1 + int(roundsRaw)%6
		g := graph.RandomConnected(n, m, rand.New(rand.NewSource(seed)))

		type run struct {
			stats Stats
			log   []traceRec
			err   error
		}
		exec := func(workers int) run {
			var r run
			r.stats, r.err = RunProcs(g, func(int) Proc { return &scriptProc{script: script, rounds: rounds} }, Options{
				Capacity:  capacity,
				MaxRounds: rounds + 2,
				Seed:      seed,
				Workers:   workers,
				Trace: func(round, from, to int, msg Message) {
					r.log = append(r.log, traceRec{round, from, to, msg})
				},
			})
			return r
		}
		seq := exec(1)
		for _, workers := range []int{2, 4} {
			par := exec(workers)
			if seq.stats != par.stats {
				t.Fatalf("workers=%d: stats %+v != sequential %+v", workers, par.stats, seq.stats)
			}
			if !reflect.DeepEqual(seq.log, par.log) {
				t.Fatalf("workers=%d: trace diverged (%d vs %d entries)", workers, len(par.log), len(seq.log))
			}
			if (seq.err == nil) != (par.err == nil) || (seq.err != nil && seq.err.Error() != par.err.Error()) {
				t.Fatalf("workers=%d: err %v != sequential %v", workers, par.err, seq.err)
			}
		}

		// Stats integrity under an arbitrary schedule: the trace is the
		// ground truth the counters must agree with.
		if seq.err != nil {
			t.Fatalf("scripted schedule must be legal (<= 1 msg/edge/round): %v", seq.err)
		}
		if int64(len(seq.log)) != seq.stats.Messages {
			t.Fatalf("stats counted %d messages, trace saw %d", seq.stats.Messages, len(seq.log))
		}
		if seq.stats.MaxEdgeLoad > capacity {
			t.Fatalf("MaxEdgeLoad %d exceeds capacity %d without an error", seq.stats.MaxEdgeLoad, capacity)
		}
		if seq.stats.BusiestVolume > seq.stats.Messages {
			t.Fatalf("busiest round volume %d exceeds total %d", seq.stats.BusiestVolume, seq.stats.Messages)
		}
		perRound := map[int]int64{}
		for _, e := range seq.log {
			perRound[e.round]++
		}
		if perRound[seq.stats.BusiestRound] != seq.stats.BusiestVolume && seq.stats.Messages > 0 {
			t.Fatalf("busiest round %d carried %d messages, stats claim %d",
				seq.stats.BusiestRound, perRound[seq.stats.BusiestRound], seq.stats.BusiestVolume)
		}
	})
}

// TestCongestionThreshold pins the exact bandwidth boundary on both
// engines: k messages on one edge succeed for k <= Capacity with
// MaxEdgeLoad = k, and ErrCongestion fires at exactly Capacity+1. The
// domain is tiny and constant, so it lives here as a table test rather
// than inside the fuzz body.
func TestCongestionThreshold(t *testing.T) {
	two := graph.Path(2)
	for capacity := 1; capacity <= 4; capacity++ {
		for _, workers := range []int{1, 4} {
			okStats, err := RunProcs(two, func(int) Proc { return &burstProc{count: capacity} }, Options{
				Capacity: capacity, Workers: workers,
			})
			if err != nil {
				t.Fatalf("workers=%d: %d messages within capacity %d errored: %v", workers, capacity, capacity, err)
			}
			if okStats.MaxEdgeLoad != capacity {
				t.Fatalf("workers=%d: MaxEdgeLoad = %d, want %d", workers, okStats.MaxEdgeLoad, capacity)
			}
			if _, err := RunProcs(two, func(int) Proc { return &burstProc{count: capacity + 1} }, Options{
				Capacity: capacity, Workers: workers,
			}); !errors.Is(err, ErrCongestion) {
				t.Fatalf("workers=%d: %d messages over capacity %d: err = %v, want ErrCongestion",
					workers, capacity+1, capacity, err)
			}
		}
	}
}

type traceRec struct {
	round, from, to int
	msg             Message
}
