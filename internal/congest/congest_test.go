package congest

import (
	"errors"
	"testing"

	"qcongest/internal/graph"
)

// echoProc broadcasts a single message in round 0 and records what it hears.
type echoProc struct {
	env   *Env
	heard []Received
}

func (p *echoProc) Init(env *Env) { p.env = env }

func (p *echoProc) Step(round int, inbox []Received) ([]Send, bool) {
	p.heard = append(p.heard, inbox...)
	if round == 0 {
		out := make([]Send, 0, len(p.env.Neighbors))
		for _, a := range p.env.Neighbors {
			out = append(out, Send{To: a.To, Msg: Message{Kind: 1, A: int64(p.env.ID)}})
		}
		return out, false
	}
	return nil, round >= 1
}

func TestSingleBroadcastDelivery(t *testing.T) {
	g := graph.Star(4)
	procs := make([]Proc, 4)
	nodes := make([]*echoProc, 4)
	for i := range procs {
		nodes[i] = &echoProc{}
		procs[i] = nodes[i]
	}
	sim, err := NewSim(g, procs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Center (node 0) hears from 3 leaves; each leaf hears from the center.
	if len(nodes[0].heard) != 3 {
		t.Errorf("center heard %d messages, want 3", len(nodes[0].heard))
	}
	for i := 1; i < 4; i++ {
		if len(nodes[i].heard) != 1 || nodes[i].heard[0].From != 0 {
			t.Errorf("leaf %d heard %v, want one message from 0", i, nodes[i].heard)
		}
	}
	if stats.Messages != 6 {
		t.Errorf("total messages = %d, want 6", stats.Messages)
	}
	if stats.MaxEdgeLoad != 1 {
		t.Errorf("max edge load = %d, want 1", stats.MaxEdgeLoad)
	}
}

// floodProc violates capacity by sending two messages on one edge.
type floodProc struct{ env *Env }

func (p *floodProc) Init(env *Env) { p.env = env }
func (p *floodProc) Step(round int, inbox []Received) ([]Send, bool) {
	if round == 0 && p.env.ID == 0 {
		to := p.env.Neighbors[0].To
		return []Send{
			{To: to, Msg: Message{Kind: 1}},
			{To: to, Msg: Message{Kind: 2}},
		}, false
	}
	return nil, true
}

func TestCongestionViolation(t *testing.T) {
	g := graph.Path(2)
	_, err := RunProcs(g, func(int) Proc { return &floodProc{} }, Options{Capacity: 1})
	if !errors.Is(err, ErrCongestion) {
		t.Fatalf("err = %v, want ErrCongestion", err)
	}
	// With capacity 2 the same schedule is legal.
	if _, err := RunProcs(g, func(int) Proc { return &floodProc{} }, Options{Capacity: 2}); err != nil {
		t.Fatalf("capacity-2 run failed: %v", err)
	}
}

// nonNeighborProc sends to a node it has no edge to.
type nonNeighborProc struct{ env *Env }

func (p *nonNeighborProc) Init(env *Env) { p.env = env }
func (p *nonNeighborProc) Step(round int, inbox []Received) ([]Send, bool) {
	if round == 0 && p.env.ID == 0 {
		return []Send{{To: 2, Msg: Message{}}}, false
	}
	return nil, true
}

func TestNonNeighborSendRejected(t *testing.T) {
	g := graph.Path(3) // 0-1-2; node 0 is not adjacent to 2
	_, err := RunProcs(g, func(int) Proc { return &nonNeighborProc{} }, Options{})
	if err == nil {
		t.Fatal("expected error for non-neighbor send")
	}
}

// spinProc never finishes.
type spinProc struct{}

func (p *spinProc) Init(*Env)                           {}
func (p *spinProc) Step(int, []Received) ([]Send, bool) { return nil, false }

func TestRoundLimit(t *testing.T) {
	g := graph.Path(2)
	_, err := RunProcs(g, func(int) Proc { return &spinProc{} }, Options{MaxRounds: 10})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

func TestProcCountMismatch(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewSim(g, make([]Proc, 2), Options{}); err == nil {
		t.Fatal("expected error for proc/node count mismatch")
	}
}

// relayProc forwards a token down a path; node i learns in round i.
type relayProc struct {
	env  *Env
	seen int64
}

func (p *relayProc) Init(env *Env) { p.env = env; p.seen = -1 }
func (p *relayProc) Step(round int, inbox []Received) ([]Send, bool) {
	if round == 0 && p.env.ID == 0 {
		p.seen = 0
		return []Send{{To: 1, Msg: Message{Kind: 1, A: 0}}}, false
	}
	for range inbox {
		if p.seen == -1 {
			p.seen = int64(round)
			next := p.env.ID + 1
			if next < p.env.N {
				return []Send{{To: next, Msg: Message{Kind: 1, A: p.seen}}}, false
			}
		}
	}
	return nil, p.seen >= 0
}

func TestRelayTiming(t *testing.T) {
	n := 8
	g := graph.Path(n)
	nodes := make([]*relayProc, n)
	procs := make([]Proc, n)
	for i := range procs {
		nodes[i] = &relayProc{}
		procs[i] = nodes[i]
	}
	sim, err := NewSim(g, procs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, p := range nodes {
		if p.seen != int64(i) {
			t.Errorf("node %d learned at round %d, want %d (synchronous semantics)", i, p.seen, i)
		}
	}
}

func TestDeterministicSeeding(t *testing.T) {
	// Two runs with the same seed produce identical per-node PRNG streams.
	g := graph.Path(3)
	draw := func(seed int64) []int64 {
		var vals []int64
		_, err := RunProcs(g, func(int) Proc {
			return procFunc(func(env *Env) func(int, []Received) ([]Send, bool) {
				return func(round int, inbox []Received) ([]Send, bool) {
					if round == 0 {
						vals = append(vals, env.Rand.Int63())
					}
					return nil, true
				}
			})
		}, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	a, b := draw(7), draw(7)
	c := draw(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// procFunc adapts a closure factory into a Proc for tests.
type procFuncT struct {
	mk   func(*Env) func(int, []Received) ([]Send, bool)
	step func(int, []Received) ([]Send, bool)
}

func procFunc(mk func(*Env) func(int, []Received) ([]Send, bool)) Proc {
	return &procFuncT{mk: mk}
}

func (p *procFuncT) Init(env *Env) { p.step = p.mk(env) }
func (p *procFuncT) Step(round int, inbox []Received) ([]Send, bool) {
	return p.step(round, inbox)
}

func TestTraceObservesAllMessages(t *testing.T) {
	g := graph.Star(5)
	var traced int64
	opts := Options{Trace: func(round, from, to int, msg Message) {
		traced++
		if round != 0 {
			t.Errorf("message traced in round %d, want 0", round)
		}
	}}
	stats, err := RunProcs(g, func(int) Proc { return &echoProc{} }, opts)
	if err != nil {
		t.Fatal(err)
	}
	if traced != stats.Messages {
		t.Fatalf("traced %d messages, stats counted %d", traced, stats.Messages)
	}
}

func TestBusiestRoundTracking(t *testing.T) {
	g := graph.Complete(4)
	stats, err := RunProcs(g, func(int) Proc { return &echoProc{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BusiestRound != 0 || stats.BusiestVolume != 12 {
		t.Fatalf("busiest = (round %d, %d msgs), want (0, 12)", stats.BusiestRound, stats.BusiestVolume)
	}
}
