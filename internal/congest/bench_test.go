package congest

import (
	"math/rand"
	"testing"

	"qcongest/internal/graph"
)

// gossipProc saturates every directed edge with one message per round for
// a fixed number of rounds: the maximal legal load under Capacity 1, so
// the benchmark measures pure engine overhead (congestion accounting,
// inbox routing, neighbor checks) rather than algorithm logic.
type gossipProc struct {
	rounds int
	env    *Env
	out    []Send
}

func (p *gossipProc) Init(env *Env) {
	p.env = env
	p.out = make([]Send, len(env.Neighbors))
	for i, a := range env.Neighbors {
		p.out[i] = Send{To: a.To, Msg: Message{Kind: 7}}
	}
}

func (p *gossipProc) Step(round int, inbox []Received) ([]Send, bool) {
	if round >= p.rounds {
		return nil, true
	}
	for i := range p.out {
		p.out[i].Msg.A = int64(round)
		p.out[i].Msg.B = int64(len(inbox))
	}
	return p.out, round == p.rounds-1
}

func benchFlood(b *testing.B, n, m, rounds, workers int) {
	rng := rand.New(rand.NewSource(int64(n)))
	g := graph.RandomConnected(n, m, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := RunProcs(g, func(int) Proc { return &gossipProc{rounds: rounds} }, Options{
			MaxRounds: rounds + 2,
			Workers:   workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Rounds != rounds+1 {
			b.Fatalf("rounds = %d, want %d", stats.Rounds, rounds+1)
		}
	}
}

func BenchmarkSimFloodN512(b *testing.B)   { benchFlood(b, 512, 2048, 64, 0) }
func BenchmarkSimFloodN512W4(b *testing.B) { benchFlood(b, 512, 2048, 64, 4) }
func BenchmarkSimFloodN1024(b *testing.B)  { benchFlood(b, 1024, 4096, 64, 0) }

// BenchmarkSimBatchN512 runs 8 independent 512-node floods through
// RunBatch: the sweep shape, where buffer pooling across runs and
// cross-run concurrency carry the win.
func BenchmarkSimBatchN512(b *testing.B) {
	rng := rand.New(rand.NewSource(512))
	g := graph.RandomConnected(512, 2048, rng)
	jobs := make([]BatchJob, 8)
	for j := range jobs {
		jobs[j] = BatchJob{
			G:    g,
			Mk:   func(int) Proc { return &gossipProc{rounds: 64} },
			Opts: Options{MaxRounds: 66, Seed: int64(j)},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range RunBatch(jobs, 0) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}
