// Package congest implements a synchronous CONGEST-model network simulator
// (§2.2 of the paper). The network is a weighted graph; in each round every
// node receives the messages sent to it in the previous round, performs
// unbounded local computation, and sends at most Capacity messages of
// O(log n) bits to each neighbor. The simulator enforces the bandwidth
// constraint (a violation is an error, not silent queueing: CONGEST
// algorithms are responsible for their own scheduling) and counts rounds
// and messages exactly.
//
// Round complexity is a combinatorial property of the schedule, so the
// simulator reproduces the paper's cost measure exactly; wall-clock time is
// irrelevant to the model. The engine is therefore free to execute as fast
// as the hardware allows: node steps are sharded across a worker pool
// (Options.Workers) with a round barrier, and per-shard outboxes are merged
// in node order, so Stats and every Trace callback sequence are
// byte-identical to the sequential engine regardless of worker count. See
// DESIGN.md §2.3 for the determinism contract.
package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"qcongest/internal/graph"
)

// Message is one CONGEST message of O(log n) bits: a kind tag and up to
// four word-sized fields. One Message consumes one unit of per-edge
// bandwidth.
type Message struct {
	Kind       uint8
	A, B, C, D int64
}

// Received pairs a message with its sender. Inbox slices are reused
// between rounds: a Proc must copy anything it wants to keep past the
// Step call that delivered it.
type Received struct {
	From int
	Msg  Message
}

// Send pairs a message with its destination, which must be a neighbor.
type Send struct {
	To  int
	Msg Message
}

// Env is the local knowledge a node has at initialization: its identifier,
// the network size, its incident edges with weights, and a private PRNG
// seeded deterministically from the run seed and node ID.
type Env struct {
	ID        int
	N         int
	Neighbors []graph.Arc
	Rand      *rand.Rand
}

// Proc is a node procedure. Init is called once before round 0. Step is
// called every round with the inbox (messages sent to this node in the
// previous round) and returns the outbox plus whether this node has
// produced its final output. A done node keeps receiving Step calls (its
// links still carry traffic) but typically returns an empty outbox.
//
// When Options.Workers > 1, Step calls for different nodes may run
// concurrently within a round. A Proc must therefore be goroutine-confined:
// it may touch its own state, its Env (including Env.Rand, which is
// per-node), and read-only shared inputs, but not mutable state shared
// with other nodes' procs.
type Proc interface {
	Init(env *Env)
	Step(round int, inbox []Received) (outbox []Send, done bool)
}

// Stats aggregates the cost of a run.
type Stats struct {
	Rounds        int   // rounds until all nodes were done
	Messages      int64 // total messages delivered
	MaxEdgeLoad   int   // max messages on one directed edge in one round
	BusiestRound  int   // round index with the most traffic
	BusiestVolume int64 // messages in that round
}

// String returns a short human-readable summary of the run cost.
func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d maxEdgeLoad=%d", s.Rounds, s.Messages, s.MaxEdgeLoad)
}

// ErrCongestion is returned when a node exceeds the per-edge bandwidth.
var ErrCongestion = errors.New("congest: per-edge bandwidth exceeded")

// ErrRoundLimit is returned when the round limit is hit before all nodes
// finish.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// DefaultWorkers is the worker count used when Options.Workers is 0. It
// exists for process-wide front-ends that cannot thread a knob through
// every experiment driver: the determinism regression suite flips every
// simulation in the repository onto the parallel engine with it, and
// cmd/sweep maps its -workers flag onto it. Set it once, before any
// simulation is constructed — the read in withDefaults is
// unsynchronized. Library callers should set Options.Workers explicitly.
var DefaultWorkers int

// Options configure a run.
type Options struct {
	// Capacity is the number of messages each directed edge can carry per
	// round. The model allows B = O(log n) bits and one Message is O(log n)
	// bits, so the default is 1.
	Capacity int
	// MaxRounds aborts runaway algorithms. Default 4*n^2 + 64.
	MaxRounds int
	// Seed drives all node-local randomness.
	Seed int64
	// Trace, when set, observes every delivered message. Round is the
	// Step index during which the message was sent. Used by the Server-
	// model simulation (Lemma 4.1) to count party-crossing traffic.
	// Within one run, Trace is always invoked from a single goroutine,
	// in the same deterministic order regardless of Workers: messages
	// are observed in sender-node order, and within one sender in outbox
	// order. (Across concurrent RunBatch jobs each run invokes its own
	// Trace concurrently with the others — see RunBatch.)
	Trace func(round, from, to int, msg Message)
	// Workers shards the per-round Step loop across this many goroutines.
	// 0 uses DefaultWorkers (normally sequential); 1 is sequential.
	// Stats and Trace sequences are identical for every value. Procs must
	// be goroutine-confined when Workers > 1 (see Proc).
	Workers int
}

func (o Options) withDefaults(n int) Options {
	if o.Capacity <= 0 {
		o.Capacity = 1
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 4*n*n + 64
	}
	if o.Workers == 0 {
		o.Workers = DefaultWorkers
	}
	if o.Workers > n {
		o.Workers = n
	}
	return o
}

// lazySource defers the expensive 607-word rngSource seeding until a
// node actually draws randomness: most procs never touch Env.Rand, and
// eager per-node seeding dominated the engine profile at n ≥ 512. The
// wrapped source is exactly rand.NewSource(seed), and it is exposed as a
// Source64 like rngSource itself, so every rand.Rand method stream is
// bit-identical to an eagerly seeded generator.
type lazySource struct {
	seed int64
	src  rand.Source64
}

func (s *lazySource) fill() rand.Source64 {
	if s.src == nil {
		s.src = rand.NewSource(s.seed).(rand.Source64)
	}
	return s.src
}

func (s *lazySource) Int63() int64    { return s.fill().Int63() }
func (s *lazySource) Uint64() uint64  { return s.fill().Uint64() }
func (s *lazySource) Seed(seed int64) { s.src = rand.NewSource(seed).(rand.Source64) }

// csr is a flat, CSR-indexed view of the network's directed arcs: node
// i's arcs occupy positions start[i]..start[i+1] of `to`, sorted by
// destination, so a send (i -> v) resolves to a dense arc slot by binary
// search instead of a map lookup. Parallel arcs to the same destination
// share the slot of their first sorted occurrence, matching the
// per-(from,to) bandwidth accounting of the model (parallel edges share
// one logical channel, as the previous map-keyed engine enforced).
type csr struct {
	start []int32
	to    []int32
}

func buildCSR(g *graph.Graph) csr {
	n := g.N()
	c := csr{start: make([]int32, n+1)}
	total := 0
	for i := 0; i < n; i++ {
		total += g.Degree(i)
	}
	c.to = make([]int32, 0, total)
	for i := 0; i < n; i++ {
		lo := len(c.to)
		for _, a := range g.Neighbors(i) {
			c.to = append(c.to, int32(a.To))
		}
		seg := c.to[lo:]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
		c.start[i+1] = int32(len(c.to))
	}
	return c
}

// arc returns the dense slot of the directed channel from -> to, or -1 if
// the nodes are not adjacent. Parallel arcs resolve to one shared slot.
func (c *csr) arc(from, to int) int32 {
	lo, hi := c.start[from], c.start[from+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if c.to[mid] < int32(to) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.start[from+1] && c.to[lo] == int32(to) {
		return lo
	}
	return -1
}

// simBuffers is the per-run scratch state. Buffers are recycled through a
// sync.Pool so batched sweeps (RunBatch) do not re-allocate inboxes and
// load tables per run. Invariant: edgeLoad is all-zero whenever the
// buffer sits in the pool (reset via the dirty list, never a full clear).
type simBuffers struct {
	inboxes     [][]Received
	nextInboxes [][]Received
	done        []bool
	edgeLoad    []int32
	dirty       []int32
	outs        [][]Send // parallel mode: per-node outboxes awaiting merge
	dones       []bool
}

var bufPool sync.Pool

func getBuffers(n, arcs int) *simBuffers {
	b, _ := bufPool.Get().(*simBuffers)
	if b == nil {
		b = &simBuffers{}
	}
	b.inboxes = resizeInboxes(b.inboxes, n)
	b.nextInboxes = resizeInboxes(b.nextInboxes, n)
	b.done = resizeBools(b.done, n)
	b.dones = resizeBools(b.dones, n)
	if cap(b.outs) < n {
		b.outs = make([][]Send, n)
	} else {
		b.outs = b.outs[:n]
	}
	if cap(b.edgeLoad) < arcs {
		b.edgeLoad = make([]int32, arcs)
	} else {
		b.edgeLoad = b.edgeLoad[:arcs]
	}
	b.dirty = b.dirty[:0]
	return b
}

// putBuffers re-establishes the zero-load invariant and drops references
// into caller data (outboxes) before returning the buffer to the pool.
func putBuffers(b *simBuffers) {
	b.resetLoads()
	for i := range b.outs {
		b.outs[i] = nil
	}
	bufPool.Put(b)
}

func (b *simBuffers) resetLoads() {
	for _, e := range b.dirty {
		b.edgeLoad[e] = 0
	}
	b.dirty = b.dirty[:0]
}

func resizeInboxes(s [][]Received, n int) [][]Received {
	if cap(s) < n {
		grown := make([][]Received, n)
		copy(grown, s[:cap(s)])
		s = grown
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = false
	}
	return s
}

// Sim is a configured simulation instance. Construct with NewSim, then Run.
type Sim struct {
	g     *graph.Graph
	procs []Proc
	opts  Options
	edges csr
}

// NewSim builds a simulator over network g where node i runs procs[i].
func NewSim(g *graph.Graph, procs []Proc, opts Options) (*Sim, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("congest: %d procs for %d nodes", len(procs), g.N())
	}
	return &Sim{g: g, procs: procs, opts: opts.withDefaults(g.N()), edges: buildCSR(g)}, nil
}

// roundState carries the accounting a single round accumulates while
// sends are merged in node order.
type roundState struct {
	volume    int64
	anyActive bool
	doneCount int
}

// Run executes the simulation until every node reports done, returning the
// exact round/message statistics.
func (s *Sim) Run() (Stats, error) {
	n := s.g.N()
	for i := 0; i < n; i++ {
		s.procs[i].Init(&Env{
			ID:        i,
			N:         n,
			Neighbors: s.g.Neighbors(i),
			Rand:      rand.New(&lazySource{seed: s.opts.Seed*1_000_003 + int64(i)}),
		})
	}

	bufs := getBuffers(n, len(s.edges.to))
	defer putBuffers(bufs)

	var pool *stepPool
	if s.opts.Workers > 1 {
		pool = s.newStepPool(bufs)
		defer pool.stop()
	}

	var stats Stats
	rs := roundState{}
	for round := 0; ; round++ {
		if round >= s.opts.MaxRounds {
			return stats, fmt.Errorf("%w: %d rounds (limit %d)", ErrRoundLimit, round, s.opts.MaxRounds)
		}
		rs.volume = 0
		rs.anyActive = false
		if pool != nil {
			pool.step(round)
			for i := 0; i < n; i++ {
				err := s.deliver(round, i, bufs.outs[i], bufs.dones[i], bufs, &rs)
				bufs.outs[i] = nil
				if err != nil {
					s.settleMaxLoad(bufs, &stats)
					return stats, err
				}
			}
		} else {
			for i := 0; i < n; i++ {
				out, d := s.procs[i].Step(round, bufs.inboxes[i])
				if err := s.deliver(round, i, out, d, bufs, &rs); err != nil {
					s.settleMaxLoad(bufs, &stats)
					return stats, err
				}
			}
		}
		s.settleMaxLoad(bufs, &stats)
		stats.Messages += rs.volume
		if rs.volume > stats.BusiestVolume {
			stats.BusiestVolume = rs.volume
			stats.BusiestRound = round
		}
		if rs.doneCount == n && !rs.anyActive {
			stats.Rounds = round + 1
			return stats, nil
		}
		for i := 0; i < n; i++ {
			bufs.inboxes[i] = bufs.inboxes[i][:0]
		}
		bufs.inboxes, bufs.nextInboxes = bufs.nextInboxes, bufs.inboxes
		bufs.resetLoads()
	}
}

// stepPool is the persistent worker pool for the sharded Step loop:
// workers are started once per Run and parked on per-worker round
// channels, so a long simulation pays channel handoffs per round, not
// goroutine spawns. Each worker owns a fixed contiguous node range and
// only writes its own nodes' slots of outs/dones; all accounting happens
// afterwards in the deterministic node-order merge. step's final done
// receive is the happens-before edge that lets the merge goroutine read
// every slot, and the next step's round send is the edge that lets
// workers see the swapped inboxes.
type stepPool struct {
	rounds []chan int
	done   chan struct{}
}

func (s *Sim) newStepPool(bufs *simBuffers) *stepPool {
	n := s.g.N()
	chunk := (n + s.opts.Workers - 1) / s.opts.Workers
	p := &stepPool{done: make(chan struct{})}
	for w := 0; w < s.opts.Workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		ch := make(chan int, 1)
		p.rounds = append(p.rounds, ch)
		go func(ch chan int, lo, hi int) {
			for round := range ch {
				for i := lo; i < hi; i++ {
					bufs.outs[i], bufs.dones[i] = s.procs[i].Step(round, bufs.inboxes[i])
				}
				p.done <- struct{}{}
			}
		}(ch, lo, hi)
	}
	return p
}

// step runs one sharded round and returns after every worker finished.
func (p *stepPool) step(round int) {
	for _, ch := range p.rounds {
		ch <- round
	}
	for range p.rounds {
		<-p.done
	}
}

// stop retires the workers. Run defers it before the buffers return to
// the pool (LIFO), so no worker can touch a recycled buffer.
func (p *stepPool) stop() {
	for _, ch := range p.rounds {
		close(ch)
	}
}

// settleMaxLoad folds the round's per-edge loads (the dirty list) into
// Stats.MaxEdgeLoad. Loads are clamped to Capacity so an aborting
// over-capacity send is excluded, exactly as the per-message accounting
// excluded it: a legal load of Capacity was necessarily observed on that
// same edge one message earlier.
func (s *Sim) settleMaxLoad(bufs *simBuffers, stats *Stats) {
	m := int32(stats.MaxEdgeLoad)
	cap32 := int32(s.opts.Capacity)
	for _, e := range bufs.dirty {
		l := bufs.edgeLoad[e]
		if l > cap32 {
			l = cap32
		}
		if l > m {
			m = l
		}
	}
	stats.MaxEdgeLoad = int(m)
}

// deliver merges one node's outbox into the next round's inboxes with
// exact congestion accounting. It runs on a single goroutine in node
// order, which is what makes Stats and Trace identical across worker
// counts.
func (s *Sim) deliver(round, i int, out []Send, d bool, bufs *simBuffers, rs *roundState) error {
	if d && !bufs.done[i] {
		bufs.done[i] = true
		rs.doneCount++
	}
	for _, snd := range out {
		slot := s.edges.arc(i, snd.To)
		if slot < 0 {
			return fmt.Errorf("congest: node %d sent to non-neighbor %d in round %d", i, snd.To, round)
		}
		load := bufs.edgeLoad[slot] + 1
		bufs.edgeLoad[slot] = load
		if load == 1 {
			bufs.dirty = append(bufs.dirty, slot)
		}
		if int(load) > s.opts.Capacity {
			return fmt.Errorf("%w: node %d -> %d sent %d messages in round %d (capacity %d)",
				ErrCongestion, i, snd.To, load, round, s.opts.Capacity)
		}
		bufs.nextInboxes[snd.To] = append(bufs.nextInboxes[snd.To], Received{From: i, Msg: snd.Msg})
		rs.volume++
		if s.opts.Trace != nil {
			s.opts.Trace(round, i, snd.To, snd.Msg)
		}
	}
	if len(out) > 0 {
		rs.anyActive = true
	}
	return nil
}

// RunProcs is a convenience wrapper: it builds one Proc per node via mk and
// runs the simulation.
func RunProcs(g *graph.Graph, mk func(id int) Proc, opts Options) (Stats, error) {
	procs := make([]Proc, g.N())
	for i := range procs {
		procs[i] = mk(i)
	}
	sim, err := NewSim(g, procs, opts)
	if err != nil {
		return Stats{}, err
	}
	return sim.Run()
}
