// Package congest implements a synchronous CONGEST-model network simulator
// (§2.2 of the paper). The network is a weighted graph; in each round every
// node receives the messages sent to it in the previous round, performs
// unbounded local computation, and sends at most Capacity messages of
// O(log n) bits to each neighbor. The simulator enforces the bandwidth
// constraint (a violation is an error, not silent queueing: CONGEST
// algorithms are responsible for their own scheduling) and counts rounds
// and messages exactly.
//
// Round complexity is a combinatorial property of the schedule, so the
// simulator reproduces the paper's cost measure exactly; wall-clock time is
// irrelevant to the model.
package congest

import (
	"errors"
	"fmt"
	"math/rand"

	"qcongest/internal/graph"
)

// Message is one CONGEST message of O(log n) bits: a kind tag and up to
// four word-sized fields. One Message consumes one unit of per-edge
// bandwidth.
type Message struct {
	Kind       uint8
	A, B, C, D int64
}

// Received pairs a message with its sender.
type Received struct {
	From int
	Msg  Message
}

// Send pairs a message with its destination, which must be a neighbor.
type Send struct {
	To  int
	Msg Message
}

// Env is the local knowledge a node has at initialization: its identifier,
// the network size, its incident edges with weights, and a private PRNG
// seeded deterministically from the run seed and node ID.
type Env struct {
	ID        int
	N         int
	Neighbors []graph.Arc
	Rand      *rand.Rand
}

// Proc is a node procedure. Init is called once before round 0. Step is
// called every round with the inbox (messages sent to this node in the
// previous round) and returns the outbox plus whether this node has
// produced its final output. A done node keeps receiving Step calls (its
// links still carry traffic) but typically returns an empty outbox.
type Proc interface {
	Init(env *Env)
	Step(round int, inbox []Received) (outbox []Send, done bool)
}

// Stats aggregates the cost of a run.
type Stats struct {
	Rounds        int   // rounds until all nodes were done
	Messages      int64 // total messages delivered
	MaxEdgeLoad   int   // max messages on one directed edge in one round
	BusiestRound  int   // round index with the most traffic
	BusiestVolume int64 // messages in that round
}

// String returns a short human-readable summary of the run cost.
func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d maxEdgeLoad=%d", s.Rounds, s.Messages, s.MaxEdgeLoad)
}

// ErrCongestion is returned when a node exceeds the per-edge bandwidth.
var ErrCongestion = errors.New("congest: per-edge bandwidth exceeded")

// ErrRoundLimit is returned when the round limit is hit before all nodes
// finish.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// Options configure a run.
type Options struct {
	// Capacity is the number of messages each directed edge can carry per
	// round. The model allows B = O(log n) bits and one Message is O(log n)
	// bits, so the default is 1.
	Capacity int
	// MaxRounds aborts runaway algorithms. Default 4*n^2 + 64.
	MaxRounds int
	// Seed drives all node-local randomness.
	Seed int64
	// Trace, when set, observes every delivered message. Round is the
	// Step index during which the message was sent. Used by the Server-
	// model simulation (Lemma 4.1) to count party-crossing traffic.
	Trace func(round, from, to int, msg Message)
}

func (o Options) withDefaults(n int) Options {
	if o.Capacity <= 0 {
		o.Capacity = 1
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 4*n*n + 64
	}
	return o
}

// Sim is a configured simulation instance. Construct with NewSim, then Run.
type Sim struct {
	g     *graph.Graph
	procs []Proc
	opts  Options
}

// NewSim builds a simulator over network g where node i runs procs[i].
func NewSim(g *graph.Graph, procs []Proc, opts Options) (*Sim, error) {
	if len(procs) != g.N() {
		return nil, fmt.Errorf("congest: %d procs for %d nodes", len(procs), g.N())
	}
	return &Sim{g: g, procs: procs, opts: opts.withDefaults(g.N())}, nil
}

// Run executes the simulation until every node reports done, returning the
// exact round/message statistics.
func (s *Sim) Run() (Stats, error) {
	n := s.g.N()
	for i := 0; i < n; i++ {
		s.procs[i].Init(&Env{
			ID:        i,
			N:         n,
			Neighbors: s.g.Neighbors(i),
			Rand:      rand.New(rand.NewSource(s.opts.Seed*1_000_003 + int64(i))),
		})
	}

	neighborSet := make([]map[int]bool, n)
	for i := 0; i < n; i++ {
		neighborSet[i] = make(map[int]bool, s.g.Degree(i))
		for _, a := range s.g.Neighbors(i) {
			neighborSet[i][a.To] = true
		}
	}

	inboxes := make([][]Received, n)
	nextInboxes := make([][]Received, n)
	done := make([]bool, n)
	doneCount := 0
	var stats Stats
	edgeLoad := make(map[[2]int]int)

	for round := 0; ; round++ {
		if round >= s.opts.MaxRounds {
			return stats, fmt.Errorf("%w: %d rounds (limit %d)", ErrRoundLimit, round, s.opts.MaxRounds)
		}
		var volume int64
		clear(edgeLoad)
		anyActive := false
		for i := 0; i < n; i++ {
			out, d := s.procs[i].Step(round, inboxes[i])
			if d && !done[i] {
				done[i] = true
				doneCount++
			}
			for _, snd := range out {
				if !neighborSet[i][snd.To] {
					return stats, fmt.Errorf("congest: node %d sent to non-neighbor %d in round %d", i, snd.To, round)
				}
				key := [2]int{i, snd.To}
				edgeLoad[key]++
				if edgeLoad[key] > s.opts.Capacity {
					return stats, fmt.Errorf("%w: node %d -> %d sent %d messages in round %d (capacity %d)",
						ErrCongestion, i, snd.To, edgeLoad[key], round, s.opts.Capacity)
				}
				if edgeLoad[key] > stats.MaxEdgeLoad {
					stats.MaxEdgeLoad = edgeLoad[key]
				}
				nextInboxes[snd.To] = append(nextInboxes[snd.To], Received{From: i, Msg: snd.Msg})
				volume++
				if s.opts.Trace != nil {
					s.opts.Trace(round, i, snd.To, snd.Msg)
				}
			}
			if len(out) > 0 {
				anyActive = true
			}
		}
		stats.Messages += volume
		if volume > stats.BusiestVolume {
			stats.BusiestVolume = volume
			stats.BusiestRound = round
		}
		if doneCount == n && !anyActive {
			stats.Rounds = round + 1
			return stats, nil
		}
		for i := 0; i < n; i++ {
			inboxes[i] = inboxes[i][:0]
		}
		inboxes, nextInboxes = nextInboxes, inboxes
	}
}

// RunProcs is a convenience wrapper: it builds one Proc per node via mk and
// runs the simulation.
func RunProcs(g *graph.Graph, mk func(id int) Proc, opts Options) (Stats, error) {
	procs := make([]Proc, g.N())
	for i := range procs {
		procs[i] = mk(i)
	}
	sim, err := NewSim(g, procs, opts)
	if err != nil {
		return Stats{}, err
	}
	return sim.Run()
}
