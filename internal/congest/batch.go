package congest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"qcongest/internal/graph"
)

// BatchJob is one simulation in a RunBatch call: a network, a per-node
// procedure factory, and run options. Procs created by Mk are visible to
// the caller (close over them to harvest node outputs after the batch).
type BatchJob struct {
	G    *graph.Graph
	Mk   func(id int) Proc
	Opts Options
}

// BatchResult pairs one job's statistics with its error.
type BatchResult struct {
	Stats Stats
	Err   error
}

// RunBatch executes many independent simulations concurrently — the
// embarrassingly-parallel shape of the experiment sweeps (many seeds,
// many graphs). At most `parallelism` simulations are in flight at once
// (<= 0 selects GOMAXPROCS). Results are returned in job order, and each
// job runs the exact engine Run uses — inbox and load buffers are drawn
// from a shared sync.Pool, so a sweep's allocation cost is amortized
// across runs — which makes every per-job Stats and Trace sequence
// identical to a standalone Run of that job.
//
// Trace caution: the single-goroutine guarantee of Options.Trace holds
// per job, but concurrent jobs invoke their Trace callbacks from
// different goroutines at once. Jobs sharing one closure over mutable
// state must either synchronize it or run with parallelism 1; prefer a
// per-job closure over per-job state.
func RunBatch(jobs []BatchJob, parallelism int) []BatchResult {
	results := make([]BatchResult, len(jobs))
	ForEach(len(jobs), parallelism, func(i int) {
		results[i] = runJob(jobs[i])
	})
	return results
}

// ForEach invokes f(i) for every i in [0, k) across a bounded pool of
// goroutines (parallelism <= 0 selects GOMAXPROCS; 1 degrades to a plain
// loop). It is the scheduling primitive RunBatch and the experiment
// drivers share: f must confine itself to its own index's state, and
// ForEach returns only after every invocation completed.
func ForEach(k, parallelism int, f func(i int)) {
	if k <= 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > k {
		parallelism = k
	}
	if parallelism == 1 {
		for i := 0; i < k; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

func runJob(j BatchJob) BatchResult {
	if j.G == nil || j.Mk == nil {
		return BatchResult{Err: fmt.Errorf("congest: batch job needs a graph and a proc factory")}
	}
	procs := make([]Proc, j.G.N())
	for id := range procs {
		procs[id] = j.Mk(id)
	}
	sim, err := NewSim(j.G, procs, j.Opts)
	if err != nil {
		return BatchResult{Err: err}
	}
	stats, err := sim.Run()
	return BatchResult{Stats: stats, Err: err}
}
