package server

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qcongest/internal/congest"
	"qcongest/internal/dist"
	"qcongest/internal/gadget"
)

func buildGadget(t *testing.T, h int, seed int64, force bool) (*gadget.Construction, *gadget.Input, *gadget.Input) {
	t.Helper()
	s, l, err := gadget.EqTwoParams(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	x, y := gadget.RandomInput(1<<uint(s), l, force, func() bool { return rng.Intn(2) == 0 }, rng.Intn)
	alpha, beta, err := gadget.TheoremWeights(h)
	if err != nil {
		t.Fatal(err)
	}
	c, err := gadget.BuildDiameter(h, x, y, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	return c, x, y
}

func TestOwnershipInitialState(t *testing.T) {
	c, _, _ := buildGadget(t, 4, 1, true)
	o := NewOwnership(c)
	// Round 0: the server owns every VS node, Alice owns VA, Bob owns VB.
	for _, v := range c.VS {
		if got := o.Owner(0, v); got != ServerParty {
			t.Fatalf("round 0: VS node %d owned by %v", v, got)
		}
	}
	for _, v := range c.VA {
		if got := o.Owner(0, v); got != AliceParty {
			t.Fatalf("round 0: VA node %d owned by %v", v, got)
		}
	}
	for _, v := range c.VB {
		if got := o.Owner(0, v); got != BobParty {
			t.Fatalf("round 0: VB node %d owned by %v", v, got)
		}
	}
}

func TestOwnershipAdvance(t *testing.T) {
	c, _, _ := buildGadget(t, 4, 2, true)
	o := NewOwnership(c)
	width := 1 << uint(c.H)
	// After r rounds, Alice owns the first r path positions, Bob the last r.
	for r := 1; r <= o.MaxRounds(); r++ {
		for i := range c.Paths {
			for j0, id := range c.Paths[i] {
				j := j0 + 1
				var want Party
				switch {
				case j < 1+r:
					want = AliceParty
				case j > width-r:
					want = BobParty
				default:
					want = ServerParty
				}
				if got := o.Owner(r, id); got != want {
					t.Fatalf("r=%d path(%d,%d): owner %v, want %v", r, i, j, got, want)
				}
			}
		}
	}
	// The tree root stays with the server for all valid rounds.
	for r := 0; r <= o.MaxRounds(); r++ {
		if got := o.Owner(r, c.Tree[0][0]); got != ServerParty {
			t.Fatalf("r=%d: root owned by %v", r, got)
		}
	}
}

func TestOwnershipMonotone(t *testing.T) {
	// Once Alice owns a node she owns it forever (the lemma's frontier only
	// advances inward); same for Bob.
	c, _, _ := buildGadget(t, 4, 3, false)
	o := NewOwnership(c)
	for _, v := range c.VS {
		prev := o.Owner(0, v)
		for r := 1; r <= o.MaxRounds(); r++ {
			cur := o.Owner(r, v)
			if prev == AliceParty && cur != AliceParty {
				t.Fatalf("node %d left Alice at round %d", v, r)
			}
			if prev == BobParty && cur != BobParty {
				t.Fatalf("node %d left Bob at round %d", v, r)
			}
			prev = cur
		}
	}
}

func TestPropertyOwnershipPartition(t *testing.T) {
	c, _, _ := buildGadget(t, 4, 4, true)
	o := NewOwnership(c)
	f := func(rSeed uint8) bool {
		r := int(rSeed) % (o.MaxRounds() + 1)
		for v := 0; v < c.G.N(); v++ {
			p := o.Owner(r, v)
			if p != ServerParty && p != AliceParty && p != BobParty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateBFSWithinLemmaBounds(t *testing.T) {
	// Run a real distributed algorithm (BFS flood from the tree root) for
	// T < 2^h/2 rounds and verify the charged communication obeys the
	// lemma: at most 2h messages per round cross from Alice/Bob into the
	// server's region.
	c, _, _ := buildGadget(t, 4, 5, true)
	o := NewOwnership(c)
	root := c.Tree[0][0]
	budget := o.MaxRounds() - 1
	rep, err := Simulate(c, func(int) congest.Proc {
		return &dist.BFSTreeProc{Root: root, Budget: budget}
	}, congest.Options{MaxRounds: budget + 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WithinLemmaBounds {
		t.Fatalf("lemma bounds violated: %v", rep)
	}
	if rep.TotalMessages == 0 {
		t.Fatal("no traffic recorded")
	}
	if rep.ChargedMessages > rep.LemmaTotalCap {
		t.Fatalf("charged %d > cap %d", rep.ChargedMessages, rep.LemmaTotalCap)
	}
	// Most traffic must be free: the tree/paths flood is server-internal
	// in early rounds and party-internal on the sides.
	if rep.ChargedMessages*4 > rep.TotalMessages {
		t.Fatalf("implausibly high charged fraction: %v", rep)
	}
}

func TestSimulateRejectsTooManyRounds(t *testing.T) {
	c, _, _ := buildGadget(t, 2, 6, true)
	o := NewOwnership(c)
	budget := o.MaxRounds() + 5
	_, err := Simulate(c, func(int) congest.Proc {
		return &dist.BFSTreeProc{Root: c.Tree[0][0], Budget: budget}
	}, congest.Options{MaxRounds: budget + 4})
	if err == nil {
		t.Fatal("schedule accepted T >= 2^h/2")
	}
}

func TestDecideDiameterReduction(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		force := seed%2 == 0
		c, x, y := buildGadget(t, 2, seed+20, force)
		out := DecideDiameter(c, x, y)
		if !out.Correct {
			t.Fatalf("seed %d: reduction decided %v, truth %v (estimate %d, threshold %d)",
				seed, out.Decided, out.Truth, out.Estimate, out.Threshold)
		}
	}
}

func TestDecideRadiusReduction(t *testing.T) {
	s, l, err := gadget.EqTwoParams(2)
	if err != nil {
		t.Fatal(err)
	}
	alpha, beta, err := gadget.TheoremWeights(2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		force := seed%2 == 0
		rng := rand.New(rand.NewSource(seed + 40))
		x := gadget.NewInput(1<<uint(s), l)
		y := gadget.NewInput(1<<uint(s), l)
		for i := 0; i < x.Rows; i++ {
			for j := 0; j < x.Cols; j++ {
				x.Set(i, j, rng.Intn(2) == 0)
				y.Set(i, j, rng.Intn(2) == 0)
				if !force && x.Get(i, j) && y.Get(i, j) {
					y.Set(i, j, false)
				}
			}
		}
		if force {
			x.Set(1, 0, true)
			y.Set(1, 0, true)
		}
		c, err := gadget.BuildRadius(2, x, y, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		out := DecideRadius(c, x, y)
		if !out.Correct {
			t.Fatalf("seed %d: radius reduction decided %v, truth %v (estimate %d)",
				seed, out.Decided, out.Truth, out.Estimate)
		}
	}
}

func TestLowerBoundRoundsShape(t *testing.T) {
	// n^(2/3)/log²n grows with n and is sublinear.
	prev := 0.0
	for _, n := range []int{100, 1000, 10_000, 100_000} {
		v := LowerBoundRounds(n)
		if v <= prev {
			t.Fatalf("lower bound not increasing at n=%d", n)
		}
		if v >= float64(n) {
			t.Fatalf("lower bound superlinear at n=%d", n)
		}
		prev = v
	}
}
