// Package server implements the Server *model* of Elkin et al. (§2.3)
// and the Quantum Simulation Lemma (Lemma 4.1): a three-party protocol —
// Alice, Bob, and a server whose messages are free — that simulates any
// T-round CONGEST algorithm on the Figure 1/2/4 gadget networks with only
// O(T·h·B) charged communication. "Server" here is the paper's proof
// device, not a network daemon: the repository's serving layer (the
// qcongestd HTTP service) lives in internal/svc, and the two are
// unrelated beyond this package also hosting SketchCache, the
// process-level skeleton cache the svc daemon serves from.
//
// The package provides the exact round-by-round node-ownership schedule
// from the lemma's proof, a runner that executes a real distributed
// algorithm on the gadget while classifying every message as charged
// (Alice/Bob to server) or free, and the end-to-end reduction driver of
// Theorems 4.2/4.8: deciding F(x,y) (or F'(x,y)) from a diameter (radius)
// approximation.
package server

import (
	"fmt"
	"math"
	"math/bits"

	"qcongest/internal/congest"
	"qcongest/internal/gadget"
)

// Party identifies who simulates a node at a given round.
type Party int

// Parties.
const (
	ServerParty Party = iota
	AliceParty
	BobParty
)

// String returns the party name.
func (p Party) String() string {
	switch p {
	case AliceParty:
		return "Alice"
	case BobParty:
		return "Bob"
	default:
		return "Server"
	}
}

// nodeKind classifies gadget nodes for the ownership schedule.
type nodeKind int

const (
	kindAlice nodeKind = iota
	kindBob
	kindPath
	kindTree
)

// Ownership is the Lemma 4.1 node-ownership schedule for a gadget
// construction. The schedule is valid for rounds r < 2^h / 2.
type Ownership struct {
	c     *gadget.Construction
	width int // 2^h
	kind  []nodeKind
	col   []int // 1-based column (paths and tree)
	depth []int // tree depth
}

// NewOwnership precomputes the schedule tables for a construction.
func NewOwnership(c *gadget.Construction) *Ownership {
	n := c.G.N()
	o := &Ownership{
		c:     c,
		width: 1 << uint(c.H),
		kind:  make([]nodeKind, n),
		col:   make([]int, n),
		depth: make([]int, n),
	}
	for _, v := range c.VA {
		o.kind[v] = kindAlice
	}
	for _, v := range c.VB {
		o.kind[v] = kindBob
	}
	for i := range c.Paths {
		for j, id := range c.Paths[i] {
			o.kind[id] = kindPath
			o.col[id] = j + 1
		}
	}
	for d := range c.Tree {
		for j, id := range c.Tree[d] {
			o.kind[id] = kindTree
			o.col[id] = j + 1
			o.depth[id] = d
		}
	}
	return o
}

// MaxRounds returns the largest round count the schedule supports
// (T < 2^h / 2).
func (o *Ownership) MaxRounds() int { return o.width/2 - 1 }

// Owner returns who simulates node v at the end of round r (r = 0 is the
// initial state: the server owns all of VS).
func (o *Ownership) Owner(r, v int) Party {
	switch o.kind[v] {
	case kindAlice:
		return AliceParty
	case kindBob:
		return BobParty
	case kindPath:
		j := o.col[v]
		switch {
		case j < 1+r:
			return AliceParty
		case j > o.width-r:
			return BobParty
		default:
			return ServerParty
		}
	default: // tree node at depth d, 1-based column j among 2^d
		j := o.col[v]
		shift := o.width >> uint(o.depth[v]) // 2^(h-i)
		lo := ceilDiv(1+r, shift)
		hi := ceilDiv(o.width-r, shift)
		switch {
		case j < lo:
			return AliceParty
		case j > hi:
			return BobParty
		default:
			return ServerParty
		}
	}
}

// Report is the outcome of a Lemma 4.1 simulation.
type Report struct {
	Rounds            int   // rounds the simulated algorithm ran
	TotalMessages     int64 // all messages the algorithm delivered
	ChargedMessages   int64 // Alice/Bob -> server-owned targets
	FreeMessages      int64 // everything else (intra-party or server-sent)
	MaxChargedPerRnd  int64 // busiest round's charged-message count
	BitsPerMessage    int   // B = Θ(log n)
	ChargedBits       int64 // ChargedMessages · B
	LemmaPerRoundCap  int64 // 2h, from the lemma's proof
	LemmaTotalCap     int64 // 2h · Rounds
	WithinLemmaBounds bool  // both charged caps held
}

// String summarizes the accounting on one line.
func (r Report) String() string {
	return fmt.Sprintf("simulation(rounds=%d charged=%d free=%d chargedBits=%d cap=%d ok=%v)",
		r.Rounds, r.ChargedMessages, r.FreeMessages, r.ChargedBits, r.LemmaTotalCap, r.WithinLemmaBounds)
}

// Simulate runs the given distributed algorithm on the gadget network
// while the three parties simulate it per the Lemma 4.1 ownership
// schedule, and counts the charged communication: messages sent in round
// r by a node Alice or Bob owns (at the end of round r) to a node the
// server owns at the ends of rounds r and r+1. All other traffic is
// either internal to a party or sent by the free server.
func Simulate(c *gadget.Construction, mk func(id int) congest.Proc, opts congest.Options) (Report, error) {
	o := NewOwnership(c)
	rep := Report{
		BitsPerMessage:   bits.Len(uint(c.G.N())),
		LemmaPerRoundCap: int64(2 * c.H),
	}
	perRound := make(map[int]int64)
	opts.Trace = func(round, from, to int, _ congest.Message) {
		rep.TotalMessages++
		sender := o.Owner(round, from)
		if sender != ServerParty && o.Owner(round, to) == ServerParty && o.Owner(round+1, to) == ServerParty {
			rep.ChargedMessages++
			perRound[round]++
		} else {
			rep.FreeMessages++
		}
	}
	stats, err := congest.RunProcs(c.G, mk, opts)
	if err != nil {
		return rep, err
	}
	rep.Rounds = stats.Rounds
	if rep.Rounds > o.MaxRounds() {
		return rep, fmt.Errorf("server: algorithm ran %d rounds, schedule supports %d (need T < 2^h/2)",
			rep.Rounds, o.MaxRounds())
	}
	for _, v := range perRound {
		if v > rep.MaxChargedPerRnd {
			rep.MaxChargedPerRnd = v
		}
	}
	rep.ChargedBits = rep.ChargedMessages * int64(rep.BitsPerMessage)
	rep.LemmaTotalCap = rep.LemmaPerRoundCap * int64(rep.Rounds)
	rep.WithinLemmaBounds = rep.MaxChargedPerRnd <= rep.LemmaPerRoundCap &&
		rep.ChargedMessages <= rep.LemmaTotalCap
	return rep, nil
}

// ReductionOutcome is the result of the Theorem 4.2/4.8 decision rule.
type ReductionOutcome struct {
	Estimate  int64 // the metric value the protocol observed
	Threshold int64 // 3α = 3n²: the decision boundary
	Decided   bool  // the protocol's output for F (or F')
	Truth     bool  // F(x,y) (or F'(x,y)) computed directly
	Correct   bool  // Decided == Truth
}

// DecideDiameter runs the end-to-end Theorem 4.2 reduction on a diameter
// gadget built with the theorem's weights α = n², β = 2n²: any
// (3/2−ε)-approximation Dhat satisfies Dhat < 3n² exactly when F(x,y)=1,
// so the parties output F = [Dhat < 3α]. Here the approximation is the
// exact diameter (the strongest adversary: if even the exact value obeys
// the dichotomy, any (3/2−ε)-approximation does too, by Lemma 4.4).
func DecideDiameter(c *gadget.Construction, x, y *gadget.Input) ReductionOutcome {
	est := c.G.Diameter()
	out := ReductionOutcome{
		Estimate:  est,
		Threshold: 3 * c.Alpha,
		Decided:   est < 3*c.Alpha,
		Truth:     gadget.F(x, y),
	}
	out.Correct = out.Decided == out.Truth
	return out
}

// DecideRadius is the Theorem 4.8 counterpart on a radius gadget.
func DecideRadius(c *gadget.Construction, x, y *gadget.Input) ReductionOutcome {
	est := c.G.Radius()
	out := ReductionOutcome{
		Estimate:  est,
		Threshold: 3 * c.Alpha,
		Decided:   est < 3*c.Alpha,
		Truth:     gadget.FPrime(x, y),
	}
	out.Correct = out.Decided == out.Truth
	return out
}

// LowerBoundRounds returns the Theorem 4.2 round lower bound shape
// Ω(n^(2/3)/log²n) evaluated with constant 1, for reporting next to
// measured values.
func LowerBoundRounds(n int) float64 {
	ln := math.Log2(float64(n))
	return math.Pow(float64(n), 2.0/3.0) / (ln * ln)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
