// The sketch-serving layer: a bounded LRU cache of distance skeletons
// with single-flight deduplication, so a deployment serving many
// concurrent diameter/radius/eccentricity queries against a fixed
// topology builds each sketch once and answers the rest from memory.
// Entries are keyed by the full query identity — graph digest, source
// set, hop budget ℓ, sparsification k, and rounding ε — matching the
// parameter tuple of Lemma 3.2.

package server

import (
	"container/list"
	"encoding/binary"
	"sync"

	"qcongest/internal/dist"
	"qcongest/internal/graph"
)

// SketchCache is a bounded, thread-safe LRU cache of built skeletons.
// Concurrent Skeleton calls with the same key are deduplicated: one
// caller builds, the rest block until the build completes and share the
// result (the skeleton's query path is internally synchronized).
// Evicted skeletons are handed to the garbage collector, never
// recycled — waiters may still hold them.
type SketchCache struct {
	capacity int
	workers  int

	mu      sync.Mutex
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used *cacheEntry

	hits, misses, waits, evictions int64
}

type cacheEntry struct {
	key   string
	elem  *list.Element
	ready chan struct{}
	sk    *dist.Skeleton // non-nil once done
	done  bool           // guarded by SketchCache.mu (readers may also wait on ready)
}

// NewSketchCache returns a cache holding at most capacity skeletons
// (minimum 1), building misses with the given skeleton worker count
// (0 uses dist.DefaultSkeletonWorkers).
func NewSketchCache(capacity, workers int) *SketchCache {
	if capacity < 1 {
		capacity = 1
	}
	return &SketchCache{
		capacity: capacity,
		workers:  workers,
		entries:  make(map[string]*cacheEntry, capacity+1),
		lru:      list.New(),
	}
}

// sketchKey serializes the query identity. The source order is part of
// the key: two requests naming the same set in different orders are
// distinct cache lines (their skeletons answer identically, but the
// exported Sources differ). The kernel mode is part of the key too, so
// requests pinning different engines build (and cache) separately —
// the determinism contract makes their numerators byte-identical, and
// the cross-mode service smoke asserts exactly that against two
// genuinely distinct builds.
func sketchKey(g *graph.Graph, s []int, l, k int, eps dist.Eps, mode graph.KernelMode) string {
	buf := make([]byte, 0, 8*(6+len(s)))
	var tmp [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(tmp[:], x)
		buf = append(buf, tmp[:]...)
	}
	put(g.Digest())
	put(uint64(l))
	put(uint64(k))
	put(uint64(eps.T))
	put(uint64(mode))
	put(uint64(len(s)))
	for _, v := range s {
		put(uint64(v))
	}
	return string(buf)
}

// Peek reports whether a completed build for (g, s, l, k, eps) is
// resident, without blocking, building, or touching the counters and
// LRU state — a purely observational probe. Callers (internal/svc's
// admission control) use it to route likely-cold work through a
// different bounded path before committing to Skeleton, which does the
// counted lookup and hands out the shared result.
func (c *SketchCache) Peek(g *graph.Graph, s []int, l, k int, eps dist.Eps) bool {
	return c.PeekKernel(g, s, l, k, eps, graph.KernelAuto)
}

// PeekKernel is Peek for a sketch pinned to a specific kernel mode.
func (c *SketchCache) PeekKernel(g *graph.Graph, s []int, l, k int, eps dist.Eps, mode graph.KernelMode) bool {
	key := sketchKey(g, s, l, k, eps, mode)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.done
}

// Skeleton returns the cached skeleton for (g, s, l, k, eps), building
// it on a miss. The returned skeleton is shared: callers must not
// Release it.
func (c *SketchCache) Skeleton(g *graph.Graph, s []int, l, k int, eps dist.Eps) *dist.Skeleton {
	return c.SkeletonKernel(g, s, l, k, eps, graph.KernelAuto)
}

// SkeletonKernel is Skeleton for a sketch pinned to a specific kernel
// mode: the build runs that relaxation engine, and the entry is a
// distinct cache line from other modes of the same query. Numerators
// are byte-identical across modes regardless.
func (c *SketchCache) SkeletonKernel(g *graph.Graph, s []int, l, k int, eps dist.Eps, mode graph.KernelMode) *dist.Skeleton {
	key := sketchKey(g, s, l, k, eps, mode)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		if e.done {
			c.hits++
			c.mu.Unlock()
			return e.sk
		}
		c.waits++
		c.mu.Unlock()
		<-e.ready
		if e.sk == nil {
			panic("server: sketch build failed on the deduplicated flight (invalid query)")
		}
		return e.sk
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.misses++
	c.evictLocked()
	c.mu.Unlock()

	// If the build panics (e.g. an out-of-range source), drop the
	// in-flight entry and release its waiters instead of poisoning the
	// key: the panic propagates to this caller, waiters panic on the nil
	// result above, and the next request for the key builds afresh.
	built := false
	defer func() {
		if !built {
			c.mu.Lock()
			c.lru.Remove(e.elem)
			delete(c.entries, e.key)
			c.mu.Unlock()
			close(e.ready)
		}
	}()
	sk := dist.BuildSkeletonWith(g, s, l, k, eps, dist.BuildSkeletonOpts{Workers: c.workers, Kernel: mode})
	c.mu.Lock()
	e.sk = sk
	e.done = true
	c.mu.Unlock()
	built = true
	close(e.ready)
	return sk
}

// ApproxEccentricity answers one ẽ query through the cache: the
// numerator over den = eps.Den(l) of the Lemma 3.3 approximate
// eccentricity of v through the (g, s, l, k, eps) skeleton.
func (c *SketchCache) ApproxEccentricity(g *graph.Graph, s []int, l, k int, eps dist.Eps, v int) (num, den int64) {
	sk := c.Skeleton(g, s, l, k, eps)
	return sk.ApproxEccentricity(v), sk.DenOut
}

// evictLocked drops least-recently-used completed entries until the
// cache fits its capacity. In-flight builds are never evicted (their
// waiters hold the entry); the cache may transiently exceed capacity
// while every resident entry is in flight.
func (c *SketchCache) evictLocked() {
	for len(c.entries) > c.capacity {
		evicted := false
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			if !e.done {
				continue
			}
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.evictions++
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      int64 // answered from a completed entry
	Misses    int64 // triggered a build
	Waits     int64 // deduplicated onto another caller's in-flight build
	Evictions int64 // completed entries dropped by the LRU policy
	Size      int   // resident entries (including in-flight)
}

// Stats returns a snapshot of the cache counters.
func (c *SketchCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Waits:     c.waits,
		Evictions: c.evictions,
		Size:      len(c.entries),
	}
}
