package server

import (
	"math/rand"
	"runtime"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/dist"
	"qcongest/internal/gadget"
)

// TestSimulateParallelEngineDeterminism pins the Lemma 4.1 accounting on
// the parallel engine: the charged/free classification of every message
// is a function of the trace *order* (a message is charged by the
// ownership schedule at its send round), so any reordering would corrupt
// the per-round charged counters. Running Simulate over Figure 1/2
// (diameter) and Figure 4 (radius) gadgets must give byte-identical
// Reports for every worker count.
func TestSimulateParallelEngineDeterminism(t *testing.T) {
	h := 4
	alpha, beta, err := gadget.TheoremWeights(h)
	if err != nil {
		t.Fatal(err)
	}
	s, l, err := gadget.EqTwoParams(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	x, y := gadget.RandomInput(1<<uint(s), l, true, func() bool { return rng.Intn(2) == 0 }, rng.Intn)

	fig1, err := gadget.BuildDiameter(h, x, y, 3, 5) // Figure 1 base with nominal weights
	if err != nil {
		t.Fatal(err)
	}
	fig2, err := gadget.BuildDiameter(h, x, y, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	fig4, err := gadget.BuildRadius(h, x, y, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		c    *gadget.Construction
	}{
		{"figure1-base", fig1},
		{"figure2-diameter", fig2},
		{"figure4-radius", fig4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := NewOwnership(tc.c)
			budget := o.MaxRounds() - 1
			root := tc.c.A[0]
			run := func(workers int) Report {
				rep, err := Simulate(tc.c, func(int) congest.Proc {
					return &dist.BFSTreeProc{Root: root, Budget: budget}
				}, congest.Options{MaxRounds: budget + 2, Seed: 11, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return rep
			}
			ref := run(1)
			if ref.ChargedMessages == 0 || ref.FreeMessages == 0 {
				t.Fatalf("degenerate reference report %+v: both classes must occur for the test to bite", ref)
			}
			if !ref.WithinLemmaBounds {
				t.Fatalf("reference run violates Lemma 4.1 bounds: %+v", ref)
			}
			for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
				if got := run(workers); got != ref {
					t.Errorf("workers=%d: report %+v != sequential %+v", workers, got, ref)
				}
			}
		})
	}
}
