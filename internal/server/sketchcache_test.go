package server

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"qcongest/internal/dist"
	"qcongest/internal/graph"
)

func cacheWorkload(t testing.TB) (*graph.Graph, []int, dist.Eps) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	g := graph.RandomWeights(graph.RandomConnected(40, 110, rng), 9, rng)
	return g, []int{0, 7, 13, 21, 33}, dist.EpsForN(g.N())
}

func TestSketchCacheHitsAndKeying(t *testing.T) {
	g, s, eps := cacheWorkload(t)
	c := NewSketchCache(4, 1)

	sk1 := c.Skeleton(g, s, 12, 2, eps)
	sk2 := c.Skeleton(g, s, 12, 2, eps)
	if sk1 != sk2 {
		t.Fatal("identical query did not hit the cache")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats after hit: %+v", st)
	}

	// Every component of the key must miss on change.
	if c.Skeleton(g, s, 13, 2, eps) == sk1 {
		t.Fatal("different ℓ shared a cache line")
	}
	if c.Skeleton(g, s, 12, 3, eps) == sk1 {
		t.Fatal("different k shared a cache line")
	}
	if c.Skeleton(g, s, 12, 2, dist.Eps{T: eps.T + 1}) == sk1 {
		t.Fatal("different ε shared a cache line")
	}
	if c.Skeleton(g, s[:4], 12, 2, eps) == sk1 {
		t.Fatal("different source set shared a cache line")
	}
	g2 := g.Clone()
	g2.MustAddEdge(0, 39, 3)
	if c.Skeleton(g2, s, 12, 2, eps) == sk1 {
		t.Fatal("different graph (digest) shared a cache line")
	}
}

func TestSketchCacheEviction(t *testing.T) {
	g, s, eps := cacheWorkload(t)
	c := NewSketchCache(2, 1)
	a := c.Skeleton(g, s, 4, 2, eps)
	_ = c.Skeleton(g, s, 5, 2, eps)
	_ = c.Skeleton(g, s, 6, 2, eps) // evicts the (l=4) entry
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if c.Skeleton(g, s, 4, 2, eps) == a {
		// A rebuild returns a different *Skeleton instance.
		t.Fatal("evicted entry still resident")
	}
	if st := c.Stats(); st.Misses != 4 {
		t.Fatalf("re-query of evicted entry must rebuild: %+v", st)
	}

	// Touching an entry protects it: (l=4) is now most recent, so the
	// next insert evicts (l=6).
	sk4 := c.Skeleton(g, s, 4, 2, eps)
	_ = c.Skeleton(g, s, 7, 2, eps)
	if c.Skeleton(g, s, 4, 2, eps) != sk4 {
		t.Fatal("most-recently-used entry was evicted")
	}
}

// TestSketchCacheSingleFlight: concurrent identical queries must
// compute once and all observe the same skeleton. Runs under -race in
// CI, which also exercises the shared skeleton's query-path mutex.
func TestSketchCacheSingleFlight(t *testing.T) {
	g, s, eps := cacheWorkload(t)
	c := NewSketchCache(4, 1)

	const goroutines = 16
	var wg sync.WaitGroup
	var distinct sync.Map
	var eccSum atomic.Int64
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sk := c.Skeleton(g, s, 10, 2, eps)
			distinct.Store(sk, true)
			eccSum.Add(sk.ApproxEccentricity(i % g.N()))
		}(i)
	}
	wg.Wait()
	count := 0
	distinct.Range(func(any, any) bool { count++; return true })
	if count != 1 {
		t.Fatalf("%d distinct skeletons built for one key", count)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("single-flight broke: %d builds for %d concurrent queries (%+v)", st.Misses, goroutines, st)
	}
	if st.Hits+st.Waits != goroutines-1 {
		t.Fatalf("hits+waits = %d, want %d (%+v)", st.Hits+st.Waits, goroutines-1, st)
	}
}

func TestSketchCacheEccentricityEndpoint(t *testing.T) {
	g, s, eps := cacheWorkload(t)
	c := NewSketchCache(2, 1)
	ref := dist.BuildSkeleton(g, s, 12, 2, eps)
	for v := 0; v < g.N(); v += 5 {
		num, den := c.ApproxEccentricity(g, s, 12, 2, eps, v)
		if den != ref.DenOut || num != ref.ApproxEccentricity(v) {
			t.Fatalf("cached ẽ(%d) = %d/%d, direct build says %d/%d",
				v, num, den, ref.ApproxEccentricity(v), ref.DenOut)
		}
	}
}

// TestServerCachedAllocGuard pins the allocation ceiling of the warm
// cached path: a hit costs the key serialization and map lookup, not a
// build.
func TestServerCachedAllocGuard(t *testing.T) {
	g, s, eps := cacheWorkload(t)
	c := NewSketchCache(2, 1)
	c.Skeleton(g, s, 12, 2, eps) // warm
	allocs := testing.AllocsPerRun(50, func() {
		c.Skeleton(g, s, 12, 2, eps)
	})
	// Key buffer + string conversion; the digest and lookup are
	// allocation-free.
	if allocs > 4 {
		t.Fatalf("warm cached skeleton fetch allocates %.0f objects, ceiling 4", allocs)
	}
}

func BenchmarkServerCachedSkeleton(b *testing.B) {
	g, s, eps := cacheWorkload(b)
	c := NewSketchCache(4, 1)
	c.Skeleton(g, s, 12, 2, eps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Skeleton(g, s, 12, 2, eps)
	}
}

func BenchmarkServerCachedEccentricity(b *testing.B) {
	g, s, eps := cacheWorkload(b)
	c := NewSketchCache(4, 1)
	c.ApproxEccentricity(g, s, 12, 2, eps, 0) // warm build + memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ApproxEccentricity(g, s, 12, 2, eps, i%g.N())
	}
}

// BenchmarkServerUncachedSkeleton is the contrast row for
// BENCH_dist.json: every iteration misses (the graph digest changes),
// measuring the full build through the serving path.
func BenchmarkServerUncachedSkeleton(b *testing.B) {
	rng := rand.New(rand.NewSource(67))
	g := graph.RandomWeights(graph.RandomConnected(40, 110, rng), 9, rng)
	s := []int{0, 7, 13, 21, 33}
	eps := dist.EpsForN(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewSketchCache(1, 1)
		c.Skeleton(g, s, 12, 2, eps)
	}
}
