// Command qcongestd is the serving daemon: a long-running HTTP/JSON
// service over the graph registry and sketch cache (internal/svc).
// See API.md for the endpoint reference and DESIGN.md §8 for the
// architecture.
//
// Usage:
//
//	qcongestd -addr 127.0.0.1:8080 -cache 64 -buildslots 2 -distworkers 0
//	qcongestd -addr 127.0.0.1:8080 -data-dir /var/lib/qcongest -warm 8
//	qcongestd -addr 127.0.0.1:8081 -data-dir /var/lib/qc-replica -follow http://127.0.0.1:8080
//
// With -follow the daemon is a read-only replica (DESIGN.md §11): it
// tails the leader's append-only log over GET /v1/replicate, digest-
// verifies every shipped graph before applying it, rejects uploads with
// 403, and fails /healthz readiness when it falls more than -maxlag
// records behind. cmd/qrouter routes cluster reads across replicas.
//
// With -data-dir the registry is durable (DESIGN.md §9): every
// acknowledged upload is fsynced into a crash-safe log before the 2xx,
// a reboot replays the store with digest verification, and -warm K
// pre-warms the exact-metric memos and sketch cache for the K most
// recently queried graphs. A SIGKILLed daemon loses nothing committed;
// a graceful shutdown additionally folds the log into a snapshot.
//
// The daemon drains gracefully on SIGINT/SIGTERM: /healthz flips to
// 503 "draining", in-flight requests finish (up to -draintimeout), the
// store is snapshotted and closed, and the process exits 0.
//
// Observability (DESIGN.md §8.5): /metrics serves both a JSON snapshot
// and the Prometheus exposition format (content-negotiated), /status
// is a self-refreshing operator page, every response carries an
// X-Request-Id, -access-log emits one structured JSON line per
// request, and -pprof exposes net/http/pprof on a separate listener so
// profiling never shares a port with the public API. -ratelimit and
// -tenantgraphs enforce per-API-key token buckets and graph quotas
// (X-API-Key header; absent keys share the "anonymous" bucket).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qcongest/internal/graph"
	"qcongest/internal/svc"
)

// openAccessLog maps the -access-log flag to a writer: "" disables,
// "-" is stdout, anything else appends to that file.
func openAccessLog(path string) (io.Writer, error) {
	switch path {
	case "":
		return nil, nil
	case "-":
		return os.Stdout, nil
	}
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// pprofMux builds the profiling handler by hand so only the pprof
// routes exist on that listener — nothing registers on
// http.DefaultServeMux, and the public API handler stays pprof-free.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		cache        = flag.Int("cache", 64, "sketch cache capacity (skeletons)")
		distWorkers  = flag.Int("distworkers", 0, "worker fan-out per skeleton build (0 = dist.DefaultSkeletonWorkers)")
		distKernel   = flag.String("distkernel", "auto", "default sketch relaxation engine: auto, sparse, dense, or delta (requests may pin their own)")
		buildSlots   = flag.Int("buildslots", 2, "concurrent cold builds (sketch/batch/first-touch metrics)")
		buildQueue   = flag.Int("buildqueue", 0, "queued cold builds before 503 (0 = 4x buildslots)")
		querySlots   = flag.Int("queryslots", 256, "concurrent warm reads")
		maxGraphs    = flag.Int("maxgraphs", 128, "graph registry capacity")
		maxNodes     = flag.Int("maxnodes", 0, "max nodes per registered graph (0 = 1<<17)")
		maxBatch     = flag.Int("maxbatch", 64, "max jobs per /v1/batch call")
		maxBatchN    = flag.Int("maxbatchnodes", 0, "max graph size per batch APSP job (0 = 4096)")
		drainTimeout = flag.Duration("draintimeout", 15*time.Second, "graceful shutdown deadline")
		dataDir      = flag.String("data-dir", "", "durable store directory (empty = in-memory registry)")
		warm         = flag.Int("warm", 8, "graphs to pre-warm after a persistent boot (0 disables)")
		snapEvery    = flag.Int("snapevery", 0, "graph appends between store snapshots (0 = 64, negative disables)")
		storeCodec   = flag.String("storecodec", "", "store record payload codec: binary or text (empty = binary; either replays the other)")
		pprofAddr    = flag.String("pprof", "", "net/http/pprof listen address on a separate listener, e.g. 127.0.0.1:6060 (empty disables)")
		ratePerKey   = flag.Float64("ratelimit", 0, "sustained requests/sec per API key on /v1 endpoints; overflow answers 429 (0 disables)")
		rateBurst    = flag.Int("rateburst", 0, "token-bucket burst depth per API key (0 = 2x -ratelimit, min 1)")
		tenantGraphs = flag.Int("tenantgraphs", 0, "graphs one API key may create; beyond it uploads answer 429 (0 disables)")
		accessLog    = flag.String("access-log", "", "structured JSON request log destination: a file path, or - for stdout (empty disables)")
		follow       = flag.String("follow", "", "leader base URL to follow as a read-only replica, e.g. http://127.0.0.1:8080 (empty = standalone/leader)")
		maxLag       = flag.Uint64("maxlag", 0, "replication lag in sequence numbers beyond which /healthz fails readiness (0 = 1024; follower only)")
		replPoll     = flag.Duration("replpoll", 0, "idle pause between replication poll rounds (0 = 250ms; follower only)")
		clusterToken = flag.String("cluster-token", "", "shared secret required as X-Cluster-Token on /v1/promote and /v1/demote (empty = open)")
	)
	flag.Parse()

	logDst, err := openAccessLog(*accessLog)
	if err != nil {
		log.Fatalf("qcongestd: opening access log: %v", err)
	}

	kernel, err := graph.ParseKernelMode(*distKernel)
	if err != nil {
		log.Fatalf("qcongestd: %v", err)
	}
	s, err := svc.Open(svc.Config{
		CacheCapacity:   *cache,
		SketchWorkers:   *distWorkers,
		SketchKernel:    kernel,
		BuildSlots:      *buildSlots,
		BuildQueue:      *buildQueue,
		QuerySlots:      *querySlots,
		MaxGraphs:       *maxGraphs,
		MaxNodes:        *maxNodes,
		MaxBatch:        *maxBatch,
		MaxBatchNodes:   *maxBatchN,
		DataDir:         *dataDir,
		WarmStart:       *warm,
		SnapshotEvery:   *snapEvery,
		StoreCodec:      *storeCodec,
		RatePerKey:      *ratePerKey,
		RateBurst:       *rateBurst,
		TenantMaxGraphs: *tenantGraphs,
		AccessLog:       logDst,
		FollowURL:       *follow,
		MaxLagSeq:       *maxLag,
		FollowPoll:      *replPoll,
		ClusterToken:    *clusterToken,
	})
	if err != nil {
		log.Fatalf("qcongestd: opening store: %v", err)
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()

	var pprofServer *http.Server
	if *pprofAddr != "" {
		pprofServer = &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := pprofServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("qcongestd: pprof listener failed: %v", err)
			}
		}()
		log.Printf("qcongestd: pprof on http://%s/debug/pprof/", *pprofAddr)
	}
	if *dataDir != "" {
		rec := s.Recovery()
		log.Printf("qcongestd: durable store %s — recovered %d graphs (%d snapshot + %d log, %d quarantined) in %s",
			*dataDir, rec.SnapshotGraphs+rec.LogGraphs, rec.SnapshotGraphs, rec.LogGraphs, rec.Quarantined, rec.Replay)
	}
	if *follow != "" {
		log.Printf("qcongestd: read-only replica following %s", *follow)
	}
	log.Printf("qcongestd: serving on http://%s (cache=%d buildslots=%d)", *addr, *cache, *buildSlots)

	select {
	case err := <-errCh:
		log.Fatalf("qcongestd: listener failed: %v", err)
	case <-ctx.Done():
	}

	log.Printf("qcongestd: draining (deadline %s)", *drainTimeout)
	s.SetHealthy(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("qcongestd: shutdown: %v", err)
	}
	if pprofServer != nil {
		_ = pprofServer.Shutdown(shutdownCtx)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("qcongestd: serve: %v", err)
	}
	// Fold the log into a final snapshot after the last request drains.
	if err := s.Close(); err != nil {
		log.Fatalf("qcongestd: closing store: %v", err)
	}
	fmt.Println("qcongestd: shut down cleanly")
}
