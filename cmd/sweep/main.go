// Command sweep runs the scaling experiments of DESIGN.md:
//
//	-exp=scaling-n   E2: rounds vs n at fixed D (slope ≈ 0.9)
//	-exp=scaling-d   E3: rounds vs D at fixed n (slope ≈ 0.3)
//	-exp=crossover   E4: quantum vs classical rounds across D (cross at n^(1/3))
//	-exp=quality     E5: approximation quality vs the (1+ε)² bound
//	-exp=spineleaf   E14: quantum vs classical on leaf-spine DCN fabrics
//
// Four engine knobs apply across experiments: -workers shards every
// simulation's round loop (every scenario, via congest.DefaultWorkers;
// 0 = sequential), -distworkers fans every skeleton build's per-source
// distance computations across a worker pool (via
// dist.DefaultSkeletonWorkers; 0 = sequential), -distkernel selects
// the distance-kernel relaxation engine (via dist.DefaultKernelMode:
// auto, sparse, dense, or delta), and -par bounds how many simulations
// a spineleaf batch keeps in flight (the other drivers batch at
// GOMAXPROCS). None changes any reported number — the engine and the
// distance kernel are bit-deterministic across worker counts and
// kernel modes alike.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"qcongest/internal/congest"
	"qcongest/internal/core"
	"qcongest/internal/dist"
	"qcongest/internal/exp"
	"qcongest/internal/graph"
)

func main() {
	var (
		which   = flag.String("exp", "scaling-n", "experiment: scaling-n, scaling-d, crossover, quality, spineleaf")
		ns      = flag.String("ns", "64,96,128,192,256", "comma-separated n values (scaling-n)")
		ds      = flag.String("ds", "4,6,8,12,16,24", "comma-separated D values (scaling-d, crossover)")
		n       = flag.Int("n", 128, "fixed n (scaling-d, crossover, quality)")
		d       = flag.Int("d", 6, "fixed D (scaling-n)")
		trials  = flag.Int("trials", 8, "trials (quality)")
		mode    = flag.String("mode", "diameter", "diameter or radius")
		seed    = flag.Int64("seed", 1, "random seed")
		spines  = flag.Int("spines", 4, "spine switches (spineleaf)")
		leaves  = flag.String("leaves", "4,8,16", "comma-separated leaf counts (spineleaf)")
		hosts   = flag.Int("hosts", 8, "hosts per leaf (spineleaf)")
		maxw    = flag.Int64("maxw", 16, "max random edge weight (spineleaf)")
		workers = flag.Int("workers", 0, "engine worker shards per simulation, all experiments (0 = sequential)")
		dworkrs = flag.Int("distworkers", 0, "distance-kernel workers per skeleton build, all experiments (0 = sequential)")
		dkernel = flag.String("distkernel", "auto", "distance-kernel relaxation engine, all experiments: auto, sparse, dense, or delta")
		par     = flag.Int("par", 0, "concurrent simulations in a spineleaf batch (0 = GOMAXPROCS; other sweeps batch at GOMAXPROCS)")
	)
	flag.Parse()

	// Shard every simulation this process runs. Set once, before any
	// simulation is constructed (see congest.DefaultWorkers). The
	// spineleaf driver additionally receives the same value explicitly
	// for its batched classical runs. The distance kernel gets the same
	// treatment through dist.DefaultSkeletonWorkers.
	congest.DefaultWorkers = *workers
	dist.DefaultSkeletonWorkers = *dworkrs
	kernel, err := graph.ParseKernelMode(*dkernel)
	die(err)
	dist.DefaultKernelMode = kernel

	m := core.DiameterMode
	if *mode == "radius" {
		m = core.RadiusMode
	}

	switch *which {
	case "scaling-n":
		pts, fit, err := exp.ScalingInN(parseInts(*ns), *d, m, *seed)
		die(err)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "n\tD\trounds\tmin{n^0.9·D^0.3, n}")
		for _, p := range pts {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%.0f\n", p.N, p.D, p.Rounds, p.Theorem)
		}
		tw.Flush()
		fmt.Printf("\nlog-log slope vs n: %.3f (R²=%.3f); theorem predicts ≈ 0.9 + polylog\n", fit.Slope, fit.R2)

	case "scaling-d":
		pts, fit, err := exp.ScalingInD(*n, parseInts(*ds), m, *seed)
		die(err)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "n\tD\trounds\tmin{n^0.9·D^0.3, n}")
		for _, p := range pts {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%.0f\n", p.N, p.D, p.Rounds, p.Theorem)
		}
		tw.Flush()
		fmt.Printf("\nlog-log slope vs D: %.3f (R²=%.3f); theorem predicts ≈ 0.3 below the cap\n", fit.Slope, fit.R2)

	case "crossover":
		pts, err := exp.Crossover(*n, parseInts(*ds), *seed)
		die(err)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "n\tD\tquantum rounds\tclassical rounds\tratio\tn^0.9·D^0.3")
		for _, p := range pts {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.2f\t%.0f\n",
				p.N, p.D, p.QuantumRounds, p.ClassicalRounds,
				float64(p.QuantumRounds)/float64(p.ClassicalRounds), p.TheoremQ)
		}
		tw.Flush()
		if len(pts) > 0 {
			fmt.Printf("\npredicted crossover: D = n^(1/3) = %.1f\n", pts[0].CrossoverD)
		}

	case "ablate-r", "ablate-k", "ablate-eps":
		var rep exp.AblationReport
		var err error
		switch *which {
		case "ablate-r":
			rep, err = exp.AblateR(*n, []float64{0.25, 0.5, 1, 2, 4}, *seed)
		case "ablate-k":
			rep, err = exp.AblateK(*n, []int{1, 2, 4, 8, 16}, *seed)
		default:
			rep, err = exp.AblateEps(*n, []int64{1, 2, 4, 8, 16}, *seed)
		}
		die(err)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "ablation over %s (n=%d)\n", rep.Knob, *n)
		fmt.Fprintln(tw, "variant\trounds\testimate/truth\tundershoot")
		for _, p := range rep.Points {
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%v\n", p.Label, p.Rounds, p.Ratio, p.Undershoot)
		}
		tw.Flush()

	case "spineleaf":
		var cfgs []exp.SpineLeafConfig
		for _, l := range parseInts(*leaves) {
			cfgs = append(cfgs, exp.SpineLeafConfig{Spines: *spines, Leaves: l, Hosts: *hosts})
		}
		pts, err := exp.SpineLeafSweep(cfgs, *maxw, *seed, *workers, *par)
		die(err)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "spines\tleaves\thosts\tn\tD\tquantum rounds\tclassical rounds\tratio\tn^0.9·D^0.3")
		for _, p := range pts {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.0f\n",
				p.Spines, p.Leaves, p.Hosts, p.N, p.D, p.QuantumRounds, p.ClassicalRounds,
				float64(p.QuantumRounds)/float64(p.ClassicalRounds), p.TheoremQ)
		}
		tw.Flush()
		fmt.Printf("\nconstant-D fabric: the low-D regime where the n^0.9·D^0.3 bound is farthest below Θ(n)\n")

	case "quality":
		rep, err := exp.Quality(*trials, *n, m, *seed)
		die(err)
		fmt.Printf("mode          %s\n", rep.Mode)
		fmt.Printf("trials        %d (n=%d)\n", rep.Trials, *n)
		fmt.Printf("worst ratio   %.5f\n", rep.WorstRatio)
		fmt.Printf("mean ratio    %.5f\n", rep.MeanRatio)
		fmt.Printf("(1+ε)² bound  %.5f\n", rep.EpsBound)
		fmt.Printf("undershoots   %d (search landed outside the good mass)\n", rep.Undershoots)

	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		die(err)
		out = append(out, v)
	}
	return exp.Ints(out)
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}
