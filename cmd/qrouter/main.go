// Command qrouter is the cluster front door: a stateless reverse proxy
// that consistent-hashes graph digests across qcongestd shards
// (DESIGN.md §11, API.md "Cluster routing"). Uploads go to the owning
// shard's leader — or are shed with 503 + Retry-After when that leader
// is down, preserving the 2xx-is-a-durability-receipt contract — and
// reads rotate across the shard's in-sync replicas with per-request
// failover. Listings fan out and merge; batches split by shard and
// reassemble in request order.
//
// Usage:
//
//	qrouter -addr 127.0.0.1:8090 \
//	  -peers 'http://127.0.0.1:8080;http://127.0.0.1:8081,http://127.0.0.1:8082;http://127.0.0.1:8083'
//
// -peers is the static topology: shards separated by commas, each
// shard's replicas separated by semicolons, first replica = leader
// (the one whose -data-dir the others -follow).
//
// The router serves its own /healthz (ok / degraded / draining),
// /v1/cluster (the live topology descriptor cluster-aware clients
// use), and /metrics (JSON + Prometheus, qrouter_* namespace). It
// drains gracefully on SIGINT/SIGTERM like the daemons.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qcongest/internal/cluster"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8090", "listen address")
		peers        = flag.String("peers", "", "shard topology: comma-separated shards of semicolon-separated replica URLs, leader first (required)")
		probeEvery   = flag.Duration("probeevery", 500*time.Millisecond, "health-probe cadence per daemon")
		maxBody      = flag.Int64("maxbody", 0, "request body cap in bytes (0 = 64 MiB)")
		maxNodes     = flag.Int("maxnodes", 0, "max nodes per upload parsed for routing (0 = 1<<17; match the daemons)")
		maxEdges     = flag.Int("maxedges", 0, "max edges per upload parsed for routing (0 = 1<<21; match the daemons)")
		drainTimeout = flag.Duration("draintimeout", 15*time.Second, "graceful shutdown deadline")
	)
	flag.Parse()

	if *peers == "" {
		log.Fatal("qrouter: -peers is required (see -help)")
	}
	topo, err := cluster.ParseTopology(*peers)
	if err != nil {
		log.Fatalf("qrouter: %v", err)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Topology:     topo,
		ProbeEvery:   *probeEvery,
		MaxBodyBytes: *maxBody,
		MaxNodes:     *maxNodes,
		MaxEdges:     *maxEdges,
	})
	if err != nil {
		log.Fatalf("qrouter: %v", err)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()

	nodes := 0
	for _, s := range topo.Shards {
		nodes += len(s.Nodes)
	}
	log.Printf("qrouter: routing %d shards / %d nodes on http://%s", len(topo.Shards), nodes, *addr)
	for _, s := range topo.Shards {
		log.Printf("qrouter: shard %s leader %s (%d replicas)", s.Name, s.Leader(), len(s.Nodes))
	}

	select {
	case err := <-errCh:
		log.Fatalf("qrouter: listener failed: %v", err)
	case <-ctx.Done():
	}

	log.Printf("qrouter: draining (deadline %s)", *drainTimeout)
	rt.SetHealthy(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("qrouter: shutdown: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("qrouter: serve: %v", err)
	}
	rt.Close()
	fmt.Println("qrouter: shut down cleanly")
}
